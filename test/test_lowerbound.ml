(* Tests for the coin-flipping game (Lemma 12) and the Theorem 2 product
   experiment. *)

let rand () = Sim.Rand.create ~seed:77L ()

let test_imbalance_parity () =
  let r = rand () in
  for _ = 1 to 50 do
    let k = 10 in
    let s = Lowerbound.Coin_game.imbalance r ~k in
    Alcotest.(check bool) "imbalance parity matches k" true ((s - k) mod 2 = 0);
    Alcotest.(check bool) "imbalance in [-k, k]" true (s >= -k && s <= k)
  done

let test_biasable () =
  Alcotest.(check bool) "negative imbalance free" true
    (Lowerbound.Coin_game.biasable ~imbalance:(-3) ~hide:0);
  Alcotest.(check bool) "exact budget" true
    (Lowerbound.Coin_game.biasable ~imbalance:5 ~hide:5);
  Alcotest.(check bool) "insufficient budget" false
    (Lowerbound.Coin_game.biasable ~imbalance:5 ~hide:4)

let test_success_monotone_in_budget () =
  let r = rand () in
  let s1 = Lowerbound.Coin_game.success_rate r ~k:256 ~hide:0 ~trials:400 in
  let r = rand () in
  let s2 = Lowerbound.Coin_game.success_rate r ~k:256 ~hide:16 ~trials:400 in
  let r = rand () in
  let s3 = Lowerbound.Coin_game.success_rate r ~k:256 ~hide:64 ~trials:400 in
  Alcotest.(check bool)
    (Printf.sprintf "monotone: %.2f <= %.2f <= %.2f" s1 s2 s3)
    true
    (s1 <= s2 +. 0.05 && s2 <= s3 +. 0.05);
  Alcotest.(check bool) "big budget nearly always wins" true (s3 > 0.95);
  Alcotest.(check bool) "zero budget wins about half" true
    (s1 > 0.3 && s1 < 0.7)

let test_required_hides_sqrt_scaling () =
  let r = rand () in
  let h64 = Lowerbound.Coin_game.required_hides r ~k:64 ~alpha:0.1 ~trials:1500 in
  let h1024 =
    Lowerbound.Coin_game.required_hides r ~k:1024 ~alpha:0.1 ~trials:1500
  in
  (* quadrupling... sixteen-folding k should roughly 4x the hides *)
  let ratio = float_of_int h1024 /. float_of_int (max 1 h64) in
  Alcotest.(check bool)
    (Printf.sprintf "sqrt scaling: h(1024)/h(64) = %.2f in [2.5, 6]" ratio)
    true
    (ratio > 2.5 && ratio < 6.)

let test_required_below_talagrand () =
  (* the empirical requirement must sit below the paper's upper bound *)
  let r = rand () in
  List.iter
    (fun k ->
      let h = Lowerbound.Coin_game.required_hides r ~k ~alpha:0.05 ~trials:800 in
      let bound = Lowerbound.Coin_game.talagrand_budget ~k ~alpha:0.05 in
      Alcotest.(check bool)
        (Printf.sprintf "k=%d: %d <= %.1f" k h bound)
        true
        (float_of_int h <= bound))
    [ 16; 64; 256 ]

let test_product_bound_holds () =
  (* the vote-splitting adversary forces T*(R+T) >= t^2 / (1024 log n); we
     check the measured product clears the bound shape with a comfortable
     constant *)
  List.iter
    (fun (n, t) ->
      List.iter
        (fun k ->
          let r = Lowerbound.Product.run ~seed:2 ~n ~t ~coin_set:k () in
          Alcotest.(check bool)
            (Printf.sprintf "n=%d t=%d k=%d: product %d >= bound/64 %.1f" n t
               k r.product (r.bound /. 64.))
            true
            (float_of_int r.product >= r.bound /. 64.);
          Alcotest.(check bool) "run decided" true r.decided)
        [ 1; 8; n ])
    [ (48, 6); (96, 12) ]

let test_starved_is_slower () =
  (* the headline: with the same adversary, fewer coins per round means
     more adversary-forced rounds (averaged over seeds); t is set high so
     the stall dominates the algorithm's own convergence tail *)
  let n = 96 and t = 24 in
  let t1, _, _ = Lowerbound.Product.run_avg ~seeds:6 ~n ~t ~coin_set:1 () in
  let t16, _, _ = Lowerbound.Product.run_avg ~seeds:6 ~n ~t ~coin_set:16 () in
  let tn, _, _ = Lowerbound.Product.run_avg ~seeds:6 ~n ~t ~coin_set:n () in
  Alcotest.(check bool)
    (Printf.sprintf "starved %.1f > k=16 %.1f" t1 t16)
    true (t1 > t16);
  Alcotest.(check bool)
    (Printf.sprintf "starved %.1f > full-random %.1f" t1 tn)
    true (t1 > tn)

let test_product_determinism () =
  let a = Lowerbound.Product.run ~seed:5 ~n:48 ~t:6 ~coin_set:48 () in
  let b = Lowerbound.Product.run ~seed:5 ~n:48 ~t:6 ~coin_set:48 () in
  Alcotest.(check int) "same rounds" a.rounds b.rounds;
  Alcotest.(check int) "same randomness" a.rand_calls b.rand_calls

(* Single-round (k=1) coin game: the draw is one +/-1 coin, so every edge
   is enumerable — a budget of 1 hides the only player and always wins, a
   budget of 0 wins exactly when the coin lands -1. *)
let test_coin_game_single_player () =
  let r = rand () in
  for _ = 1 to 50 do
    let s = Lowerbound.Coin_game.imbalance r ~k:1 in
    Alcotest.(check bool) "k=1 imbalance is +/-1" true (s = 1 || s = -1)
  done;
  Alcotest.(check bool) "hide=1 biases a +1 draw" true
    (Lowerbound.Coin_game.biasable ~imbalance:1 ~hide:1);
  Alcotest.(check bool) "hide=0 cannot bias a +1 draw" false
    (Lowerbound.Coin_game.biasable ~imbalance:1 ~hide:0);
  Alcotest.(check bool) "hide=0 wins a -1 draw for free" true
    (Lowerbound.Coin_game.biasable ~imbalance:(-1) ~hide:0);
  Alcotest.(check (float 0.)) "full budget wins every k=1 game" 1.0
    (Lowerbound.Coin_game.success_rate (rand ()) ~k:1 ~hide:1 ~trials:200);
  let rate =
    Lowerbound.Coin_game.success_rate (rand ()) ~k:1 ~hide:0 ~trials:400
  in
  Alcotest.(check bool) "hide=0 success rate ~ P(S = -1) = 1/2" true
    (rate > 0.35 && rate < 0.65);
  Alcotest.(check bool) "required hides for k=1 is 0 or 1" true
    (let h =
       Lowerbound.Coin_game.required_hides (rand ()) ~k:1 ~alpha:0.25
         ~trials:200
     in
     h = 0 || h = 1)

(* Theorem 2 experiment at the fault-budget extremes. t=0: the adversary
   can corrupt nobody, so honest biased-majority voting decides and the
   claimed bound t^2/log n degenerates to 0. t=n-1: the run must still
   terminate with the product identity intact. *)
let test_product_budget_extremes () =
  let check_identity (r : Lowerbound.Product.result) =
    Alcotest.(check int) "product = T x (R + T)"
      (r.rounds * (r.rand_calls + r.rounds))
      r.product
  in
  let r0 = Lowerbound.Product.run ~seed:3 ~n:16 ~t:0 ~coin_set:4 () in
  Alcotest.(check bool) "t=0 decides" true r0.Lowerbound.Product.decided;
  Alcotest.(check (float 0.)) "t=0 bound degenerates to 0" 0.
    r0.Lowerbound.Product.bound;
  check_identity r0;
  let r1 = Lowerbound.Product.run ~seed:3 ~n:16 ~t:15 ~coin_set:4 () in
  Alcotest.(check bool) "t=n-1 terminates with positive rounds" true
    (r1.Lowerbound.Product.rounds > 0);
  check_identity r1;
  Alcotest.(check bool) "t=n-1 forces at least as many rounds as t=0" true
    (r1.Lowerbound.Product.rounds >= r0.Lowerbound.Product.rounds)

(* Regression pin for the Theorem 2 call counting: one small exact
   instance, every counted metric fixed. A change to how the harness
   counts R (the undercounting bug class) or schedules rounds shows up
   here as an exact diff, not a statistical drift. *)
let test_product_call_counting_pin () =
  let r = Lowerbound.Product.run ~seed:7 ~n:24 ~t:4 ~coin_set:6 () in
  Alcotest.(check int) "rounds (T)" 4 r.Lowerbound.Product.rounds;
  Alcotest.(check int) "rand calls (R)" 12 r.Lowerbound.Product.rand_calls;
  Alcotest.(check int) "product" 64 r.Lowerbound.Product.product;
  Alcotest.(check bool) "decided" true r.Lowerbound.Product.decided

let suite =
  [
    Alcotest.test_case "imbalance parity/range" `Quick test_imbalance_parity;
    Alcotest.test_case "biasable" `Quick test_biasable;
    Alcotest.test_case "success monotone in budget" `Quick
      test_success_monotone_in_budget;
    Alcotest.test_case "sqrt scaling of hides" `Quick
      test_required_hides_sqrt_scaling;
    Alcotest.test_case "below Talagrand budget" `Quick
      test_required_below_talagrand;
    Alcotest.test_case "Theorem 2 product bound" `Slow test_product_bound_holds;
    Alcotest.test_case "starved runs are slower" `Slow test_starved_is_slower;
    Alcotest.test_case "product determinism" `Quick test_product_determinism;
    Alcotest.test_case "single-player coin game edges" `Quick
      test_coin_game_single_player;
    Alcotest.test_case "product at t=0 and t=n-1" `Quick
      test_product_budget_extremes;
    Alcotest.test_case "Theorem 2 call-counting pin" `Quick
      test_product_call_counting_pin;
  ]
