let () =
  Alcotest.run "omission_consensus"
    [
      ("rand", Test_rand.suite);
      ("stats", Test_stats.suite);
      ("exec", Test_exec.suite);
      ("expander", Test_expander.suite);
      ("groups", Test_groups.suite);
      ("engine", Test_engine.suite);
      ("supervise", Test_supervise.suite);
      ("voting", Test_voting.suite);
      ("core", Test_core.suite);
      ("auth", Test_auth.suite);
      ("adversary", Test_adversary.suite);
      ("optimal-omissions", Test_optimal.suite);
      ("param-omissions", Test_param.suite);
      ("baselines", Test_baselines.suite);
      ("operative-broadcast", Test_broadcast.suite);
      ("crash-subquadratic", Test_crash_sub.suite);
      ("lower-bound", Test_lowerbound.suite);
      ("valency", Test_valency.suite);
      ("phase-king", Test_phase_king.suite);
      ("harness", Test_harness.suite);
      ("trace", Test_trace.suite);
    ("mailbox", Test_mailbox.suite);
    ("engine-equiv", Test_engine_equiv.suite);
    ("net", Test_net.suite);
    ("cache", Test_cache.suite);
    ]
