(* Tests for the content-addressed run cache (lib/cache), the cache-aware
   supervision wrappers (Supervise.Cached), the canonical Run_spec API,
   and the fuzz-harness store dedup. The load-bearing property throughout:
   a cache hit is indistinguishable from a recompute — identical outcome,
   identical JSON rows — except for the cache-hit provenance event. *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec at i =
    i + nl <= hl && (String.sub haystack i nl = needle || at (i + 1))
  in
  at 0

let temp_dir () =
  let path = Filename.temp_file "cache_test" ".dir" in
  Sys.remove path;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_store ?fingerprint f =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir (fun () -> Cache.Store.open_ ?fingerprint ~dir ()))

(* --- the store itself --- *)

let test_store_roundtrip () =
  with_store (fun _dir open_ ->
      let s = open_ () in
      Cache.Store.add s ~key:"k1" "payload one";
      Cache.Store.add s ~key:"k2" "payload\ntwo with\nnewlines";
      Cache.Store.add s ~key:"k1" "never stored: k1 already present";
      Alcotest.(check (option string))
        "k1" (Some "payload one")
        (Cache.Store.lookup s "k1");
      Alcotest.(check (option string))
        "k2"
        (Some "payload\ntwo with\nnewlines")
        (Cache.Store.lookup s "k2");
      Alcotest.(check (option string)) "absent" None (Cache.Store.lookup s "k3");
      let st = Cache.Store.stats s in
      Alcotest.(check int) "hits" 2 st.Cache.Stats.hits;
      Alcotest.(check int) "misses" 1 st.Cache.Stats.misses;
      Alcotest.(check int) "writes (dup skipped)" 2 st.Cache.Stats.writes;
      Cache.Store.close s;
      (* persistence across reopen *)
      let s2 = open_ () in
      Alcotest.(check int) "entries persist" 2 (Cache.Store.entries s2);
      Alcotest.(check (option string))
        "k1 persists" (Some "payload one")
        (Cache.Store.lookup s2 "k1");
      Alcotest.(check int) "no corrupt lines" 0 (Cache.Store.corrupt s2);
      Cache.Store.close s2)

let test_corrupt_index_skipped () =
  with_store (fun dir open_ ->
      let s = open_ () in
      Cache.Store.add s ~key:"good" "survives";
      Cache.Store.close s;
      (* a torn append (no tab), a bad size, and trailing garbage *)
      let oc =
        open_out_gen [ Open_append ] 0o644 (Filename.concat dir "index")
      in
      output_string oc "deadbeef\n";
      output_string oc "0123456789abcdef0123456789abcdef\tnotasize\n";
      output_string oc "0123456789abcdef0123456789abcde";
      close_out oc;
      let s = open_ () in
      Alcotest.(check int) "good entry kept" 1 (Cache.Store.entries s);
      Alcotest.(check int) "corrupt lines counted" 3 (Cache.Store.corrupt s);
      Alcotest.(check (option string))
        "good payload intact" (Some "survives")
        (Cache.Store.lookup s "good");
      Cache.Store.close s)

let test_torn_payload_self_repair () =
  with_store (fun dir open_ ->
      let s = open_ () in
      Cache.Store.add s ~key:"k" "full payload";
      let hex = Cache.Store.digest_key s "k" in
      Cache.Store.close s;
      (* truncate the object: a torn write the rename never committed over *)
      let obj = Filename.concat (Filename.concat dir "objects") hex in
      let oc = open_out obj in
      output_string oc "full pay";
      close_out oc;
      let s = open_ () in
      Alcotest.(check (option string))
        "torn payload dropped" None (Cache.Store.lookup s "k");
      Alcotest.(check int) "counted corrupt" 1 (Cache.Store.corrupt s);
      (* exactly one recompute repairs it *)
      Cache.Store.add s ~key:"k" "full payload";
      Alcotest.(check (option string))
        "repaired" (Some "full payload")
        (Cache.Store.lookup s "k");
      Cache.Store.close s)

let test_fingerprint_invalidates () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () ->
      let s = Cache.Store.open_ ~fingerprint:"v1" ~dir () in
      Cache.Store.add s ~key:"k" "computed under v1";
      Cache.Store.close s;
      (* a fingerprint bump addresses different objects: a stale store
         never serves results computed by other code *)
      let s2 = Cache.Store.open_ ~fingerprint:"v2" ~dir () in
      Alcotest.(check (option string))
        "v1 entry invisible under v2" None (Cache.Store.lookup s2 "k");
      Cache.Store.add s2 ~key:"k" "computed under v2";
      Alcotest.(check (option string))
        "v2 entry" (Some "computed under v2")
        (Cache.Store.lookup s2 "k");
      Cache.Store.close s2;
      (* the v1 entry was never clobbered *)
      let s1 = Cache.Store.open_ ~fingerprint:"v1" ~dir () in
      Alcotest.(check (option string))
        "v1 entry survives" (Some "computed under v1")
        (Cache.Store.lookup s1 "k");
      Cache.Store.close s1)

let test_concurrent_writers () =
  with_store (fun _dir open_ ->
      let s = open_ () in
      (* 4 domains, overlapping key ranges: every key lands exactly once,
         no torn index lines, every payload reads back intact *)
      let worker lo =
        Domain.spawn (fun () ->
            for i = lo to lo + 59 do
              Cache.Store.add s
                ~key:(Printf.sprintf "key-%03d" i)
                (Printf.sprintf "payload for %03d" i)
            done)
      in
      let ds = List.map worker [ 0; 20; 40; 60 ] in
      List.iter Domain.join ds;
      Cache.Store.close s;
      let s = open_ () in
      Alcotest.(check int) "120 unique keys" 120 (Cache.Store.entries s);
      Alcotest.(check int) "no torn lines" 0 (Cache.Store.corrupt s);
      for i = 0 to 119 do
        Alcotest.(check (option string))
          (Printf.sprintf "key-%03d" i)
          (Some (Printf.sprintf "payload for %03d" i))
          (Cache.Store.lookup s (Printf.sprintf "key-%03d" i))
      done;
      Cache.Store.close s)

(* --- cache hit == recompute, across the whole registry --- *)

(* A small decided run per registry protocol: adversary none, mixed
   inputs, the registry's own rounds bound. *)
let spec_for (e : Harness.Registry.entry) ~engine =
  let n = max e.Harness.Registry.min_n 8 in
  let t = min 1 (e.Harness.Registry.max_t n) in
  Run_spec.make ~protocol:e.Harness.Registry.id ~n ~t_max:t ~seed:3 ~engine ()

let test_hit_equals_recompute () =
  with_store (fun _dir open_ ->
      let s = open_ () in
      List.iter
        (fun (e : Harness.Registry.entry) ->
          List.iter
            (fun engine ->
              let spec = spec_for e ~engine in
              let name =
                Printf.sprintf "%s/%s" e.Harness.Registry.id
                  (match engine with
                  | Run_spec.Auto -> "auto"
                  | Run_spec.Legacy -> "legacy")
              in
              let cold =
                match Run_spec.execute ~store:s spec with
                | Ok (o, None) -> o
                | _ -> Alcotest.failf "%s: cold run failed" name
              in
              let sink, events = Trace.Sink.memory () in
              let warm =
                match Run_spec.execute ~trace:sink ~store:s spec with
                | Ok (o, None) -> o
                | _ -> Alcotest.failf "%s: warm run failed" name
              in
              if warm <> cold then
                Alcotest.failf "%s: warm outcome differs from cold" name;
              (* provenance: the warm trace is exactly one cache-hit
                 event carrying the content digest *)
              match events () with
              | [ Trace.Event.Cache_hit { key } ] ->
                  Alcotest.(check string)
                    (name ^ " digest")
                    (Cache.Store.digest_key s (Run_spec.to_string spec))
                    key
              | evs ->
                  Alcotest.failf "%s: expected exactly one cache-hit, got %d"
                    name (List.length evs))
            [ Run_spec.Auto; Run_spec.Legacy ])
        Harness.Registry.all;
      (* every protocol ran once per engine path; auto and legacy have
         distinct canonical strings, so distinct entries *)
      Alcotest.(check int)
        "one entry per protocol per engine"
        (2 * List.length Harness.Registry.all)
        (Cache.Store.entries s);
      Cache.Store.close s)

let test_hit_equals_recompute_net () =
  with_store (fun _dir open_ ->
      let s = open_ () in
      let net = { Net.Spec.default with Net.Spec.drop = 0.1; retries = 8 } in
      let spec =
        Run_spec.make ~protocol:"flood" ~n:16 ~t_max:2 ~seed:5 ~net ()
      in
      let cold =
        match Run_spec.execute ~store:s spec with
        | Ok (o, Some d) -> (o, d)
        | _ -> Alcotest.fail "cold net run failed"
      in
      let warm =
        match Run_spec.execute ~store:s spec with
        | Ok (o, Some d) -> (o, d)
        | _ -> Alcotest.fail "warm net run failed"
      in
      if warm <> cold then
        Alcotest.fail "net warm (outcome, degradation) differs from cold";
      let st = Cache.Store.stats s in
      Alcotest.(check int) "one miss then one hit" 1 st.Cache.Stats.hits;
      Cache.Store.close s)

let test_corrupt_entry_one_recompute () =
  with_store (fun dir open_ ->
      let s = open_ () in
      let spec =
        Run_spec.make ~protocol:"flood" ~n:8 ~t_max:1 ~seed:2 ()
      in
      let key = Run_spec.to_string spec in
      (match Run_spec.execute ~store:s spec with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "seed run failed");
      let hex = Cache.Store.digest_key s key in
      Cache.Store.close s;
      (* corrupt the stored outcome *)
      let obj = Filename.concat (Filename.concat dir "objects") hex in
      let oc = open_out obj in
      output_string oc "garbage";
      close_out oc;
      let s = open_ () in
      (* one recompute, no crash, and the entry is repaired *)
      (match Run_spec.execute ~store:s spec with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "recompute after corruption failed");
      Alcotest.(check bool)
        "repaired: next lookup hits" true
        (Cache.Store.lookup s key <> None);
      Cache.Store.close s)

(* --- Supervise.Cached.map --- *)

let test_cached_map_merge () =
  with_store (fun _dir open_ ->
      let s = open_ () in
      let codec = (string_of_int, int_of_string_opt) in
      let key i = Printf.sprintf "map|%d" i in
      (* pre-populate entries 1 and 3 with sentinel values the function
         would never produce: a hit must win over a recompute *)
      Cache.Store.add s ~key:(key 1) "100";
      Cache.Store.add s ~key:(key 3) "300";
      let ran = Array.make 5 false in
      let labels = ref [] in
      let results =
        Supervise.Cached.map ~jobs:1 ~store:s ~key ~codec
          ~describe:(fun i x ->
            labels := (i, x) :: !labels;
            {
              Supervise.d_label = Printf.sprintf "elt-%d" i;
              d_seed = None;
              d_replay = None;
            })
          (fun i ->
            ran.(i) <- true;
            10 * i)
          [| 0; 1; 2; 3; 4 |]
      in
      let got = Array.map (function Ok v -> v | Error _ -> -1) results in
      Alcotest.(check (array int))
        "hits and fresh merge in order"
        [| 0; 100; 20; 300; 40 |]
        got;
      Alcotest.(check (array bool))
        "only misses executed"
        [| true; false; true; false; true |]
        ran;
      (* describe saw the ORIGINAL indices of the misses, not their
         positions in the compacted to-run array *)
      List.iter
        (fun (i, x) ->
          Alcotest.(check int) "describe index = element" x i;
          if not (List.mem i [ 0; 2; 4 ]) then
            Alcotest.failf "describe called for cached element %d" i)
        !labels;
      (* fresh successes were written back *)
      Alcotest.(check (option string))
        "write-back" (Some "40")
        (Cache.Store.lookup s (key 4));
      Cache.Store.close s)

(* --- Run_spec canonical serialization --- *)

let test_run_spec_roundtrip () =
  let specs =
    [
      Run_spec.make ~protocol:"optimal" ~n:31 ~t_max:1 ~seed:7
        ~adversary:"random" ~inputs:"ones" ();
      Run_spec.make ~protocol:"param" ~x:4 ~n:36 ~t_max:1 ~seed:1
        ~engine:Run_spec.Legacy ();
      Run_spec.make ~protocol:"flood" ~n:16 ~t_max:2 ~seed:5
        ~net:{ Net.Spec.default with Net.Spec.drop = 0.05 }
        ~budget:
          (Supervise.Budget.make ~wall_s:1.5 ~max_rounds:100
             ~max_messages:100000 ~max_rand_bits:4096 ())
        ();
    ]
  in
  List.iter
    (fun spec ->
      let s = Run_spec.to_string spec in
      match Run_spec.of_string s with
      | Ok spec' ->
          if spec' <> spec then
            Alcotest.failf "roundtrip changed the spec: %s" s;
          Alcotest.(check string)
            "re-serialization is canonical" s
            (Run_spec.to_string spec')
      | Error e -> Alcotest.failf "of_string rejected %S: %s" s e)
    specs;
  (* the canonical string is frozen: a change here invalidates every
     existing cache, so it must be deliberate (bump Cache.fingerprint) *)
  Alcotest.(check string)
    "frozen format"
    "p=optimal n=31 t=1 x=- seed=7 a=random i=ones engine=auto wall=- \
     rounds=- msgs=- rand=- net=-"
    (Run_spec.to_string
       (Run_spec.make ~protocol:"optimal" ~n:31 ~t_max:1 ~seed:7
          ~adversary:"random" ~inputs:"ones" ()));
  let cmd =
    Run_spec.to_command
      (Run_spec.make ~protocol:"flood" ~n:8 ~t_max:1 ~seed:1 ())
  in
  Alcotest.(check bool)
    "replay one-liner embeds the canonical spec" true
    (contains cmd "run --spec 'p=flood n=8 t=1 ")

let test_run_spec_errors () =
  let err s =
    match Run_spec.of_string s with
    | Ok _ -> Alcotest.failf "of_string accepted %S" s
    | Error e -> e
  in
  Alcotest.(check bool)
    "arity error names the fields" true
    (contains (err "p=flood n=8") "13 space-separated");
  Alcotest.(check bool)
    "unknown adversary lists the table" true
    (contains
       (err
          "p=flood n=8 t=1 x=- seed=1 a=nosuch i=mixed engine=auto wall=- \
           rounds=- msgs=- rand=- net=-")
       "unknown adversary");
  Alcotest.(check bool)
    "bad engine" true
    (contains
       (err
          "p=flood n=8 t=1 x=- seed=1 a=none i=mixed engine=turbo wall=- \
           rounds=- msgs=- rand=- net=-")
       "engine must be auto or legacy");
  match Run_spec.resolve (Run_spec.make ~protocol:"nope" ~n:8 ~t_max:1 ~seed:1 ()) with
  | Ok _ -> Alcotest.fail "resolved an unknown protocol"
  | Error msg ->
      Alcotest.(check bool) "lists registry" true (contains msg "flood");
      Alcotest.(check bool) "mentions param" true (contains msg "param")

let test_cli_budget_flags () =
  let b =
    Run_spec.Cli.budget_of_flags
      { Run_spec.Cli.wall = 0.; rounds = -1; msgs = 0; rand = 0 }
  in
  Alcotest.(check bool)
    "zero and negative mean unlimited" true
    (b = Supervise.Budget.unlimited);
  let b =
    Run_spec.Cli.budget_of_flags
      { Run_spec.Cli.wall = 2.5; rounds = 10; msgs = 0; rand = 64 }
  in
  Alcotest.(check (option int)) "rounds" (Some 10) b.Supervise.Budget.max_rounds;
  Alcotest.(check (option int)) "msgs off" None b.Supervise.Budget.max_messages;
  Alcotest.(check (option int))
    "rand" (Some 64) b.Supervise.Budget.max_rand_bits;
  Alcotest.(check bool)
    "wall" true
    (b.Supervise.Budget.wall_s = Some 2.5)

(* --- the cache-hit trace event codecs --- *)

let test_cache_hit_event_codec () =
  let ev = Trace.Event.Cache_hit { key = "0123abcd0123abcd0123abcd0123abcd" } in
  (match Trace.Event.of_json (Trace.Event.to_json ev) with
  | Some ev' -> Alcotest.(check bool) "json roundtrip" true (Trace.Event.equal ev ev')
  | None -> Alcotest.fail "json decode failed");
  let b = Buffer.create 64 in
  Trace.Event.to_binary b ev;
  let pos = ref 0 in
  let ev' = Trace.Event.of_binary (Buffer.contents b) pos in
  Alcotest.(check bool) "binary roundtrip" true (Trace.Event.equal ev ev');
  Alcotest.(check int) "binary consumed fully" (Buffer.length b) !pos;
  (* truncated binary raises, never reads past the end *)
  let torn = String.sub (Buffer.contents b) 0 (Buffer.length b - 3) in
  match Trace.Event.of_binary torn (ref 0) with
  | exception Trace.Event.Truncated -> ()
  | _ -> Alcotest.fail "torn cache-hit event decoded"

(* --- fuzz store dedup --- *)

let test_fuzz_store_dedup () =
  with_store (fun _dir open_ ->
      let s = open_ () in
      let run () =
        match Harness.Fuzz.run ~count:12 ~seed:11 ~jobs:1 ~store:s () with
        | Ok stats -> stats
        | Error (f, _) ->
            Alcotest.failf "fuzz found a violation: %a" Harness.Fuzz.pp_failure
              f
      in
      let first = run () in
      (* Stats is the store's live mutable record — copy the counters *)
      let h1 = (Cache.Store.stats s).Cache.Stats.hits
      and w1 = (Cache.Store.stats s).Cache.Stats.writes in
      Alcotest.(check int) "first pass all misses" 0 h1;
      Alcotest.(check int) "every scenario stored" 12 w1;
      let second = run () in
      Alcotest.(check int) "second pass all hits" 12
        ((Cache.Store.stats s).Cache.Stats.hits - h1);
      Alcotest.(check int) "no new writes" w1
        (Cache.Store.stats s).Cache.Stats.writes;
      (* dedup is invisible in the reported stats *)
      Alcotest.(check int) "scenarios" first.Harness.Fuzz.scenarios
        second.Harness.Fuzz.scenarios;
      Alcotest.(check int) "runs" first.Harness.Fuzz.runs
        second.Harness.Fuzz.runs;
      Alcotest.(check int) "checked" first.Harness.Fuzz.checked
        second.Harness.Fuzz.checked;
      Alcotest.(check int) "determinism checks"
        first.Harness.Fuzz.determinism_checks
        second.Harness.Fuzz.determinism_checks;
      Cache.Store.close s)

let suite =
  [
    Alcotest.test_case "store roundtrip + reopen" `Quick test_store_roundtrip;
    Alcotest.test_case "corrupt index lines skipped" `Quick
      test_corrupt_index_skipped;
    Alcotest.test_case "torn payload self-repairs" `Quick
      test_torn_payload_self_repair;
    Alcotest.test_case "fingerprint bump invalidates" `Quick
      test_fingerprint_invalidates;
    Alcotest.test_case "concurrent writers tear-free" `Quick
      test_concurrent_writers;
    Alcotest.test_case "hit = recompute, whole registry x both engines"
      `Quick test_hit_equals_recompute;
    Alcotest.test_case "hit = recompute with a net spec" `Quick
      test_hit_equals_recompute_net;
    Alcotest.test_case "corrupt entry costs one recompute" `Quick
      test_corrupt_entry_one_recompute;
    Alcotest.test_case "Cached.map merges hits and misses" `Quick
      test_cached_map_merge;
    Alcotest.test_case "Run_spec canonical roundtrip" `Quick
      test_run_spec_roundtrip;
    Alcotest.test_case "Run_spec rejects malformed specs" `Quick
      test_run_spec_errors;
    Alcotest.test_case "Cli budget flags" `Quick test_cli_budget_flags;
    Alcotest.test_case "cache-hit event codecs" `Quick
      test_cache_hit_event_codec;
    Alcotest.test_case "fuzz store dedup" `Quick test_fuzz_store_dedup;
  ]
