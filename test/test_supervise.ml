(* Tests for the run supervision layer: watchdog budgets, failure
   quarantine, the checkpoint journal, and chaos-mode fault injection.
   The chaos tests are the containment proof the module's docstring
   promises: injected failures are quarantined while every other task's
   result stays bit-identical to a fault-free run. *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec at i =
    i + nl <= hl && (String.sub haystack i nl = needle || at (i + 1))
  in
  at 0

let cfg ?(n = 8) ?(max_rounds = 10) () =
  Sim.Config.make ~n ~t_max:2 ~seed:1 ~max_rounds ()

let echo = (module Test_engine.Echo : Sim.Protocol_intf.S)

let srun ?budget ?(proto = echo) ?(n = 8) ?(max_rounds = 10) () =
  Supervise.run ?budget proto
    (cfg ~n ~max_rounds ())
    ~adversary:Sim.Adversary_intf.none
    ~inputs:(Array.init n (fun i -> i mod 2))

(* --- watchdog budgets over the engine --- *)

let test_round_budget () =
  (* echo decides at round 4; a 2-round ceiling trips first *)
  match srun ~budget:(Supervise.Budget.make ~max_rounds:2 ()) () with
  | Error (Supervise.Budget_exceeded b, Some partial) ->
      Alcotest.(check string) "metric" "rounds" b.Supervise.metric;
      Alcotest.(check int) "tripped at round 2" 2 b.at_round;
      Alcotest.(check int) "partial outcome kept its counters" 2
        partial.Sim.Engine.rounds_total;
      Alcotest.(check (option int)) "undecided" None partial.decided_round
  | _ -> Alcotest.fail "expected Budget_exceeded(rounds) with partial outcome"

let test_message_budget () =
  (* echo broadcasts 8*7 = 56 messages a round; 60 allows one round *)
  match srun ~budget:(Supervise.Budget.make ~max_messages:60 ()) () with
  | Error (Supervise.Budget_exceeded b, Some partial) ->
      Alcotest.(check string) "metric" "messages" b.Supervise.metric;
      Alcotest.(check int) "tripped at round 2" 2 b.at_round;
      Alcotest.(check int) "actual = cumulative messages" 112
        (int_of_float b.actual);
      Alcotest.(check int) "partial counters intact" 112
        partial.Sim.Engine.messages_sent
  | _ -> Alcotest.fail "expected Budget_exceeded(messages)"

let test_rand_bits_budget () =
  (* only pid 0 flips a coin, one bit per round; ceiling 2 is inclusive,
     so the third bit trips it *)
  match srun ~budget:(Supervise.Budget.make ~max_rand_bits:2 ()) () with
  | Error (Supervise.Budget_exceeded b, Some partial) ->
      Alcotest.(check string) "metric" "rand_bits" b.Supervise.metric;
      Alcotest.(check int) "tripped at round 3" 3 b.at_round;
      Alcotest.(check int) "partial rand bits" 3 partial.Sim.Engine.rand_bits
  | _ -> Alcotest.fail "expected Budget_exceeded(rand_bits)"

let test_wall_budget () =
  match srun ~budget:(Supervise.Budget.make ~wall_s:1e-9 ()) () with
  | Error (Supervise.Timeout { limit_s; elapsed_s }, Some partial) ->
      Alcotest.(check bool) "limit recorded" true (limit_s = 1e-9);
      Alcotest.(check bool) "elapsed > limit" true (elapsed_s > limit_s);
      Alcotest.(check int) "stopped after the first round" 1
        partial.Sim.Engine.rounds_total
  | _ -> Alcotest.fail "expected Timeout"

let test_decided_beats_breach () =
  (* the decision lands at round 4, the same round the ceiling would trip:
     deciding wins — a finished measurement is never a supervision failure *)
  match srun ~budget:(Supervise.Budget.make ~max_rounds:4 ()) () with
  | Ok o ->
      Alcotest.(check (option int)) "decided" (Some 4) o.Sim.Engine.decided_round
  | Error _ -> Alcotest.fail "a decided run must be Ok"

let test_max_rounds_is_not_a_breach () =
  (* running out of cfg.max_rounds undecided is a measurement, not a
     failure: only explicit budget ceilings quarantine *)
  match
    srun ~budget:(Supervise.Budget.make ~max_rounds:50 ()) ~max_rounds:3 ()
  with
  | Ok o ->
      Alcotest.(check (option int)) "undecided" None o.Sim.Engine.decided_round;
      Alcotest.(check int) "capped by config" 3 o.rounds_total
  | Error _ -> Alcotest.fail "cfg.max_rounds exhaustion must stay Ok"

let test_unlimited_budget_ok () =
  match srun ~budget:Supervise.Budget.unlimited () with
  | Ok o ->
      Alcotest.(check (option int)) "decides normally" (Some 4)
        o.Sim.Engine.decided_round
  | Error _ -> Alcotest.fail "unlimited budget must not interfere"

let test_budget_validation () =
  Alcotest.check_raises "non-positive ceiling rejected"
    (Invalid_argument "Budget.make: max_rounds must be positive") (fun () ->
      ignore (Supervise.Budget.make ~max_rounds:0 ()));
  Alcotest.(check bool) "make () is unlimited" true
    (Supervise.Budget.is_unlimited (Supervise.Budget.make ()))

(* --- crash containment in Supervise.run --- *)

let test_protocol_crash_contained () =
  let proto = Supervise.Chaos.protocol ~crash_round:2 echo in
  match srun ~proto () with
  | Error (Supervise.Crashed { exn_text; _ }, None) ->
      Alcotest.(check bool) "exception text identifies the injection" true
        (contains (String.lowercase_ascii exn_text) "injected")
  | _ -> Alcotest.fail "a raising protocol must be Error (Crashed, None)"

let test_protocol_crash_pid_filter () =
  (* the victim pid never exists at n = 8, so the wrapped protocol is
     indistinguishable from the original *)
  let proto = Supervise.Chaos.protocol ~pid:99 ~crash_round:2 echo in
  match (srun ~proto (), srun ()) with
  | Ok a, Ok b ->
      Alcotest.(check bool) "outcome bit-identical to unwrapped" true (a = b)
  | _ -> Alcotest.fail "non-matching pid must not crash"

let test_illegal_plan_contained () =
  let adversary =
    {
      Sim.Adversary_intf.name = "cheater";
      create =
        (fun _ _ _ ->
          Sim.View.pointwise ~new_faults:[] ~omit:(fun _ _ -> true));
    }
  in
  let r =
    Supervise.run echo (cfg ()) ~adversary
      ~inputs:(Array.init 8 (fun i -> i mod 2))
  in
  match r with
  | Error (Supervise.Crashed { exn_text; _ }, None) ->
      Alcotest.(check bool) "Illegal_plan captured as text" true
        (exn_text <> "")
  | _ -> Alcotest.fail "Illegal_plan must be contained, not propagated"

(* --- quarantining map: the chaos containment proof --- *)

(* a real seeded sweep task, pure in its index *)
let sweep_task i =
  let n = 16 and seed = i + 1 in
  let cfg = Sim.Config.make ~n ~t_max:4 ~seed ~max_rounds:2000 () in
  let proto = Consensus.Bjbo.protocol cfg in
  let inputs = Array.init n (fun j -> j mod 2) in
  Sim.Engine.run proto cfg ~adversary:(Adversary.vote_splitter ()) ~inputs

let describe i _ =
  {
    Supervise.d_label = Printf.sprintf "chaos-sweep/seed=%d" (i + 1);
    d_seed = Some (i + 1);
    d_replay =
      Some
        (Printf.sprintf
           "dune exec bin/consensus_sim.exe -- run -p bjbo -n 16 -t 4 \
            --seed %d -a splitter"
           (i + 1));
  }

let test_chaos_containment () =
  let n = 12 in
  let idxs = Array.init n (fun i -> i) in
  let baseline = Array.map sweep_task idxs in
  (* seeded victim selection: 3 crashes, 2 stragglers among the survivors *)
  let crash = Supervise.Chaos.pick ~seed:42 ~n ~k:3 in
  let straggle =
    List.filteri
      (fun i _ -> i < 2)
      (List.filter (fun i -> not (List.mem i crash)) (Array.to_list idxs))
  in
  let plan = Supervise.Chaos.make ~crash ~straggle ~straggle_s:0.01 () in
  let results =
    Supervise.map ~jobs:4 ~describe
      (fun i -> Supervise.Chaos.wrap plan (fun _ j -> sweep_task j) i i)
      idxs
  in
  Alcotest.(check int) "every task has a slot" n (Array.length results);
  let quarantined = ref 0 in
  Array.iteri
    (fun i r ->
      match r with
      | Ok o ->
          Alcotest.(check bool)
            (Printf.sprintf "survivor %d bit-identical to fault-free run" i)
            true
            (o = baseline.(i));
          Alcotest.(check bool)
            (Printf.sprintf "%d was not a crash victim" i)
            false (List.mem i crash)
      | Error fl -> (
          incr quarantined;
          Alcotest.(check bool)
            (Printf.sprintf "%d was a chosen victim" i)
            true (List.mem i crash);
          Alcotest.(check int) "failure index" i fl.Supervise.index;
          Alcotest.(check string) "failure label"
            (Printf.sprintf "chaos-sweep/seed=%d" (i + 1))
            fl.label;
          Alcotest.(check (option int)) "failure seed" (Some (i + 1)) fl.seed;
          Alcotest.(check bool) "replay command present" true
            (fl.replay <> None);
          match fl.kind with
          | Supervise.Crashed { exn_text; _ } ->
              Alcotest.(check bool) "injection visible in record" true
                (contains (String.lowercase_ascii exn_text) "injected")
          | _ -> Alcotest.fail "injected crash must quarantine as Crashed"))
    results;
  Alcotest.(check int) "exactly k quarantined" (List.length crash) !quarantined

let test_map_breach_passthrough () =
  (* a task that raises Breach keeps its precise kind in quarantine *)
  let kind = Supervise.Timeout { limit_s = 1.0; elapsed_s = 2.0 } in
  let r =
    Supervise.map ~jobs:1
      (fun i -> if i = 1 then raise (Supervise.Breach kind) else i)
      [| 0; 1; 2 |]
  in
  (match r.(1) with
  | Error { kind = Supervise.Timeout { limit_s; _ }; _ } ->
      Alcotest.(check bool) "kind preserved" true (limit_s = 1.0)
  | _ -> Alcotest.fail "Breach kind must pass through verbatim");
  match (r.(0), r.(2)) with
  | Ok 0, Ok 2 -> ()
  | _ -> Alcotest.fail "neighbours unaffected"

let test_map_wall_timeout () =
  let budget = Supervise.Budget.make ~wall_s:0.005 () in
  let r =
    Supervise.map ~jobs:1 ~budget
      (fun i ->
        if i = 0 then Unix.sleepf 0.05;
        i)
      [| 0; 1 |]
  in
  (match r.(0) with
  | Error { kind = Supervise.Timeout _; _ } -> ()
  | _ -> Alcotest.fail "overrunning task must time out");
  match r.(1) with
  | Ok 1 -> ()
  | _ -> Alcotest.fail "fast task unaffected"

let test_protect_and_json () =
  let d =
    {
      Supervise.d_label = "solo \"quoted\"";
      d_seed = Some 7;
      d_replay = Some "echo replay";
    }
  in
  match Supervise.protect ~descriptor:d (fun () -> failwith "boom") with
  | Ok _ -> Alcotest.fail "raising task must be quarantined"
  | Error fl ->
      Alcotest.(check int) "single-task index" 0 fl.Supervise.index;
      let j = Supervise.failure_json fl in
      List.iter
        (fun needle ->
          Alcotest.(check bool) (Printf.sprintf "json has %s" needle) true
            (contains j needle))
        [
          "\"kind\":\"quarantine\"";
          "\"failure\":\"crashed\"";
          "\"label\":\"solo \\\"quoted\\\"\"";
          "\"seed\":7";
          "\"replay\":\"echo replay\"";
          "\"exn\":";
          "\"elapsed_s\":";
        ]

(* --- checkpoint journal --- *)

let temp_journal () = Filename.temp_file "supervise_test" ".journal"

let test_journal_roundtrip () =
  let path = temp_journal () in
  let j = Supervise.Journal.open_ ~path ~resume:false in
  Supervise.Journal.record j ~key:"t1|n=64|seed=1" "12 3456 789";
  Supervise.Journal.record j ~key:"t1|n=64|seed=2" "13 3457 790";
  Supervise.Journal.record j ~key:"t1|n=64|seed=1" "99 9999 999";
  Alcotest.(check int) "duplicate keys collapse" 2 (Supervise.Journal.entries j);
  Alcotest.(check (option string)) "latest record wins" (Some "99 9999 999")
    (Supervise.Journal.lookup j "t1|n=64|seed=1");
  Supervise.Journal.close j;
  (* reopen for resume: everything survives the restart *)
  let j2 = Supervise.Journal.open_ ~path ~resume:true in
  Alcotest.(check int) "entries reloaded" 2 (Supervise.Journal.entries j2);
  Alcotest.(check int) "no corruption" 0 (Supervise.Journal.corrupt j2);
  Alcotest.(check (option string)) "lookup after reload" (Some "13 3457 790")
    (Supervise.Journal.lookup j2 "t1|n=64|seed=2");
  Alcotest.(check (option string)) "miss is None" None
    (Supervise.Journal.lookup j2 "t1|n=64|seed=3");
  Supervise.Journal.close j2;
  Sys.remove path

let test_journal_corruption_skipped () =
  let path = temp_journal () in
  let j = Supervise.Journal.open_ ~path ~resume:false in
  Supervise.Journal.record j ~key:"a" "1";
  Supervise.Journal.record j ~key:"b" "2";
  Supervise.Journal.close j;
  (* chaos: a torn write lands mid-file garbage; only that row is lost *)
  Supervise.Chaos.corrupt_journal ~path;
  let j2 = Supervise.Journal.open_ ~path ~resume:true in
  Alcotest.(check int) "good rows survive" 2 (Supervise.Journal.entries j2);
  Alcotest.(check int) "corrupt row counted" 1 (Supervise.Journal.corrupt j2);
  Alcotest.(check (option string)) "good row readable" (Some "2")
    (Supervise.Journal.lookup j2 "b");
  Supervise.Journal.close j2;
  Sys.remove path

let test_journal_fresh_truncates () =
  let path = temp_journal () in
  let j = Supervise.Journal.open_ ~path ~resume:false in
  Supervise.Journal.record j ~key:"stale" "1";
  Supervise.Journal.close j;
  let j2 = Supervise.Journal.open_ ~path ~resume:false in
  Alcotest.(check int) "resume:false starts empty" 0
    (Supervise.Journal.entries j2);
  Alcotest.(check (option string)) "stale row gone" None
    (Supervise.Journal.lookup j2 "stale");
  Supervise.Journal.close j2;
  Sys.remove path

let test_journal_rejects_separators () =
  let path = temp_journal () in
  let j = Supervise.Journal.open_ ~path ~resume:false in
  Alcotest.(check bool) "tab in key rejected" true
    (try
       Supervise.Journal.record j ~key:"a\tb" "1";
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "newline in payload rejected" true
    (try
       Supervise.Journal.record j ~key:"a" "1\n2";
       false
     with Invalid_argument _ -> true);
  Supervise.Journal.close j;
  Sys.remove path

(* --- chaos victim selection --- *)

let test_chaos_pick () =
  let a = Supervise.Chaos.pick ~seed:5 ~n:20 ~k:6 in
  let b = Supervise.Chaos.pick ~seed:5 ~n:20 ~k:6 in
  Alcotest.(check (list int)) "deterministic in seed" a b;
  Alcotest.(check int) "k victims" 6 (List.length a);
  Alcotest.(check (list int)) "sorted" (List.sort compare a) a;
  Alcotest.(check int) "distinct" 6
    (List.length (List.sort_uniq compare a));
  List.iter
    (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 20))
    a;
  let c = Supervise.Chaos.pick ~seed:6 ~n:20 ~k:6 in
  Alcotest.(check bool) "seed changes the draw" true (a <> c);
  Alcotest.(check (list int)) "k=n is everyone"
    (List.init 20 Fun.id)
    (Supervise.Chaos.pick ~seed:1 ~n:20 ~k:20);
  Alcotest.check_raises "k > n rejected"
    (Invalid_argument "Chaos.pick: need 0 <= k <= n") (fun () ->
      ignore (Supervise.Chaos.pick ~seed:1 ~n:3 ~k:4))

(* The plan's membership masks are sized to the largest victim index:
   tasks indexed beyond the masks (and with sparse victim lists, between
   victims) must run untouched, and exactly the listed indices must raise. *)
let test_chaos_mask_bounds () =
  let plan = Supervise.Chaos.make ~crash:[ 1; 7 ] () in
  let ran i =
    try
      Supervise.Chaos.wrap plan (fun _ j -> j * 2) i i |> ignore;
      true
    with Supervise.Chaos.Injected _ -> false
  in
  List.iter
    (fun (i, expect) ->
      Alcotest.(check bool) (Printf.sprintf "task %d" i) expect (ran i))
    [ (0, true); (1, false); (2, true); (6, true); (7, false);
      (8, true) (* first index past the mask *); (500, true) ];
  (* an empty plan touches nothing at any index *)
  let idle = Supervise.Chaos.make () in
  Alcotest.(check int) "empty plan is identity" 84
    (Supervise.Chaos.wrap idle (fun _ j -> j * 2) 123 42)

let suite =
  [
    Alcotest.test_case "round budget breach" `Quick test_round_budget;
    Alcotest.test_case "message budget breach" `Quick test_message_budget;
    Alcotest.test_case "rand-bits budget breach" `Quick test_rand_bits_budget;
    Alcotest.test_case "wall-clock timeout" `Quick test_wall_budget;
    Alcotest.test_case "decided run beats breach" `Quick
      test_decided_beats_breach;
    Alcotest.test_case "max_rounds is a measurement" `Quick
      test_max_rounds_is_not_a_breach;
    Alcotest.test_case "unlimited budget" `Quick test_unlimited_budget_ok;
    Alcotest.test_case "budget validation" `Quick test_budget_validation;
    Alcotest.test_case "protocol crash contained" `Quick
      test_protocol_crash_contained;
    Alcotest.test_case "chaos pid filter" `Quick test_protocol_crash_pid_filter;
    Alcotest.test_case "Illegal_plan contained" `Quick
      test_illegal_plan_contained;
    Alcotest.test_case "chaos containment: N-k bit-identical, k quarantined"
      `Quick test_chaos_containment;
    Alcotest.test_case "Breach kind passthrough" `Quick
      test_map_breach_passthrough;
    Alcotest.test_case "map wall timeout" `Quick test_map_wall_timeout;
    Alcotest.test_case "protect + quarantine JSON schema" `Quick
      test_protect_and_json;
    Alcotest.test_case "journal roundtrip and resume" `Quick
      test_journal_roundtrip;
    Alcotest.test_case "journal corruption skipped" `Quick
      test_journal_corruption_skipped;
    Alcotest.test_case "journal fresh run truncates" `Quick
      test_journal_fresh_truncates;
    Alcotest.test_case "journal separator validation" `Quick
      test_journal_rejects_separators;
    Alcotest.test_case "chaos pick" `Quick test_chaos_pick;
    Alcotest.test_case "chaos masks bound-checked and sparse-safe" `Quick
      test_chaos_mask_bounds;
  ]
