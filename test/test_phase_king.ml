(* Unit tests for the baseline deterministic protocols through the harness
   registry: adversary-free and crash-schedule runs with exact decision and
   round-count assertions. Phase-king had no standalone suite before; the
   dolev-strong and early-stopping round counts close coverage gaps in
   test_auth/test_baselines, which only assert agreement. *)

let run_entry id ~n ~t ~inputs ~strategy =
  let entry =
    match Harness.Registry.find id with
    | Ok e -> e
    | Error msg -> Alcotest.failf "%s" msg
  in
  let strategy = Harness.Strategy.of_string strategy in
  let inputs = Array.of_list inputs in
  let s = Harness.Scenario.make ~n ~t_max:t ~seed:1 ~inputs ~strategy in
  let res = Harness.Runner.run_entry entry s in
  List.iter
    (fun v -> Alcotest.failf "%a" Harness.Runner.pp_violation v)
    res.Harness.Runner.violations;
  match res.outcome with
  | Some o -> o
  | None -> Alcotest.failf "%s produced no outcome" id

let decided (o : Sim.Engine.outcome) =
  match o.decided_round with Some r -> r | None -> -1

let agreed (o : Sim.Engine.outcome) =
  match Sim.Engine.agreed_decision o with
  | Some v -> v
  | None -> Alcotest.fail "no agreement"

(* --- phase-king --- *)

let pk_rounds t = (2 * ((4 * t) + 2)) + 1

let test_pk_rounds_needed () =
  let cfg = Sim.Config.make ~n:7 ~t_max:1 ~seed:1 () in
  Alcotest.(check int) "t=1 schedule" (pk_rounds 1)
    (Consensus.Phase_king.rounds_needed cfg);
  let cfg = Sim.Config.make ~n:13 ~t_max:2 ~seed:1 () in
  Alcotest.(check int) "t=2 schedule" (pk_rounds 2)
    (Consensus.Phase_king.rounds_needed cfg)

let test_pk_fault_free () =
  let o =
    run_entry "phase-king" ~n:7 ~t:1 ~inputs:[ 0; 1; 0; 1; 0; 1; 1 ]
      ~strategy:"idle"
  in
  (* majority of inputs is 1 and no one is strong against it forever;
     decision lands exactly at the finalize round *)
  Alcotest.(check int) "decides at finalize round" (pk_rounds 1) (decided o);
  Alcotest.(check int) "decision" 1 (agreed o);
  Alcotest.(check int) "no faults" 0 o.faults_used

let test_pk_validity_unanimous () =
  List.iter
    (fun b ->
      let o =
        run_entry "phase-king" ~n:7 ~t:1 ~inputs:(List.init 7 (fun _ -> b))
          ~strategy:"again(strike(rnd1,p75))"
      in
      Alcotest.(check int)
        (Printf.sprintf "unanimous %d kept" b)
        b (agreed o))
    [ 0; 1 ]

let test_pk_crash_schedule () =
  let o =
    run_entry "phase-king" ~n:13 ~t:2
      ~inputs:[ 0; 0; 0; 0; 0; 0; 0; 1; 1; 1; 1; 1; 1 ]
      ~strategy:"strike(p0.1,out)"
  in
  Alcotest.(check int) "decides at finalize round" (pk_rounds 2) (decided o);
  Alcotest.(check int) "two faults" 2 o.faults_used;
  (* 11 live votes, 5 zeros vs 6 ones *)
  Alcotest.(check int) "decision follows live majority" 1 (agreed o)

let test_pk_survives_vote_splitter () =
  (* the splitter that breaks a weakened strong-threshold (see the harness
     acceptance experiment) must NOT break the real protocol *)
  let o =
    run_entry "phase-king" ~n:13 ~t:2
      ~inputs:[ 0; 0; 0; 0; 0; 0; 0; 1; 1; 1; 1; 1; 1 ]
      ~strategy:"strike(hold0x2,to1)"
  in
  Alcotest.(check int) "decides at finalize round" (pk_rounds 2) (decided o);
  ignore (agreed o)

let test_pk_undecided_residue () =
  (* a participant that hears nothing across the whole fallback run ends
     with [decision = None] instead of echoing its own input — the caller
     owns that residue (Algorithm 1 lines 18-19) *)
  let t_max = 1 in
  let pk =
    ref
      (Consensus.Phase_king.create ~n:7 ~t_max ~pid:3 ~participating:true
         ~input:1)
  in
  for lr = 1 to Consensus.Phase_king.rounds ~t_max do
    let pk', _out = Consensus.Phase_king.step !pk ~local_round:lr ~inbox:[] in
    pk := pk'
  done;
  let fin = Consensus.Phase_king.finalize !pk ~inbox:[] in
  Alcotest.(check bool) "never heard" false (Consensus.Phase_king.heard fin);
  Alcotest.(check (option int))
    "undecided residue" None
    (Consensus.Phase_king.decision fin);
  Alcotest.(check int) "working value preserved" 1
    (Consensus.Phase_king.value fin)

let test_pk_heard_decides () =
  (* a single received fallback message is enough to clear the residue *)
  let t_max = 1 in
  let pk =
    ref
      (Consensus.Phase_king.create ~n:7 ~t_max ~pid:3 ~participating:true
         ~input:1)
  in
  for lr = 1 to Consensus.Phase_king.rounds ~t_max do
    let inbox = if lr = 2 then [ (0, Consensus.Phase_king.Value 0) ] else [] in
    let pk', _out = Consensus.Phase_king.step !pk ~local_round:lr ~inbox in
    pk := pk'
  done;
  let fin = Consensus.Phase_king.finalize !pk ~inbox:[] in
  Alcotest.(check bool) "heard" true (Consensus.Phase_king.heard fin);
  Alcotest.(check bool) "decided" true
    (Consensus.Phase_king.decision fin <> None)

(* --- dolev-strong --- *)

let test_ds_fault_free () =
  let o =
    run_entry "dolev-strong" ~n:6 ~t:2 ~inputs:[ 1; 0; 1; 0; 1; 1 ]
      ~strategy:"idle"
  in
  Alcotest.(check int) "decides after t+1 relay rounds" 3 (decided o);
  Alcotest.(check int) "decision" 1 (agreed o)

let test_ds_crash_schedule () =
  let o =
    run_entry "dolev-strong" ~n:8 ~t:2 ~inputs:[ 1; 1; 0; 0; 1; 0; 1; 1 ]
      ~strategy:"strike(p0.2,out)"
  in
  (* a silenced sender is only distinguishable one relay round later, so
     the common decision slips from t+1 to t+2 *)
  Alcotest.(check int) "crashes delay decision one round" 4 (decided o);
  Alcotest.(check int) "two faults" 2 o.faults_used;
  ignore (agreed o)

(* --- early-stopping --- *)

let test_es_fault_free () =
  let o =
    run_entry "early-stopping" ~n:9 ~t:2 ~inputs:[ 0; 1; 1; 0; 1; 1; 0; 1; 1 ]
      ~strategy:"idle"
  in
  (* the engine delivers round-r messages into round r+1, so the first
     comparable heard-from set exists at round 3: a fault-free run is one
     clean round after that first comparison *)
  Alcotest.(check int) "stops early with no faults" 3 (decided o);
  Alcotest.(check int) "decides the minimum input" 0 (agreed o)

let test_es_crash_schedule () =
  let o =
    run_entry "early-stopping" ~n:9 ~t:2 ~inputs:[ 0; 1; 1; 0; 1; 1; 0; 1; 1 ]
      ~strategy:"from(2,strike(p1,out))"
  in
  (* a crash at round 2 shrinks the heard-from set at round 3 (dirty), so
     the first clean round — and the decision — shifts to round 4; a crash
     at round 1 would be invisible (the victim never enters any heard set) *)
  Alcotest.(check int) "f=1 adds one round" 4 (decided o);
  Alcotest.(check int) "one fault" 1 o.faults_used;
  ignore (agreed o)

let suite =
  [
    Alcotest.test_case "phase-king schedule length" `Quick
      test_pk_rounds_needed;
    Alcotest.test_case "phase-king fault-free" `Quick test_pk_fault_free;
    Alcotest.test_case "phase-king unanimous validity" `Quick
      test_pk_validity_unanimous;
    Alcotest.test_case "phase-king crash schedule" `Quick
      test_pk_crash_schedule;
    Alcotest.test_case "phase-king survives vote splitter" `Quick
      test_pk_survives_vote_splitter;
    Alcotest.test_case "phase-king undecided residue" `Quick
      test_pk_undecided_residue;
    Alcotest.test_case "phase-king heard clears residue" `Quick
      test_pk_heard_decides;
    Alcotest.test_case "dolev-strong fault-free rounds" `Quick
      test_ds_fault_free;
    Alcotest.test_case "dolev-strong crash schedule" `Quick
      test_ds_crash_schedule;
    Alcotest.test_case "early-stopping fault-free rounds" `Quick
      test_es_fault_free;
    Alcotest.test_case "early-stopping crash schedule" `Quick
      test_es_crash_schedule;
  ]
