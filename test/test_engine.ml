(* Tests for the synchronous round engine and its enforcement of the
   omission-fault model. *)

(* A tiny instrumentable protocol: every process broadcasts its input every
   round and decides at a fixed round on the parity of messages heard. *)
module Echo = struct
  type state = {
    pid : int;
    n : int;
    input : int;
    mutable heard : int;
    mutable senders : int list;
    mutable decided : int option;
    mutable coins : int;
  }

  type msg = Ping of int

  let name = "echo"

  let init (cfg : Sim.Config.t) ~pid ~input =
    { pid; n = cfg.n; input; heard = 0; senders = []; decided = None; coins = 0 }

  let decide_round = 4

  let step _cfg st ~round ~inbox ~rand =
    st.heard <- st.heard + List.length inbox;
    st.senders <- List.map fst inbox @ st.senders;
    (* pid 0 flips a coin every round, to exercise randomness observation *)
    if st.pid = 0 then st.coins <- st.coins + Sim.Rand.bit rand;
    if round = decide_round then st.decided <- Some (st.heard mod 2);
    let out = ref [] in
    if round < decide_round then
      for dst = 0 to st.n - 1 do
        if dst <> st.pid then out := (dst, Ping st.input) :: !out
      done;
    (st, !out)

  let observe st =
    {
      Sim.View.candidate = Some st.input;
      operative = true;
      decided = st.decided;
    }

  let msg_bits (Ping _) = 3
  let msg_hint (Ping v) = Some v
end

let cfg ?(n = 8) ?(t = 2) ?(max_rounds = 10) () =
  Sim.Config.make ~n ~t_max:t ~seed:1 ~max_rounds ()

let run ?(adversary = Sim.Adversary_intf.none) ?(n = 8) ?(t = 2) () =
  let cfg = cfg ~n ~t () in
  Sim.Engine.run (module Echo) cfg ~adversary
    ~inputs:(Array.init n (fun i -> i mod 2))

let test_full_delivery () =
  let o = run () in
  Alcotest.(check int) "terminates at decide round" 4
    (match o.Sim.Engine.decided_round with Some r -> r | None -> -1);
  (* 3 broadcast rounds, 8 processes, 7 receivers *)
  Alcotest.(check int) "messages" (3 * 8 * 7) o.messages_sent;
  Alcotest.(check int) "bits = 3 per message" (3 * 8 * 7 * 3) o.bits_sent;
  Alcotest.(check int) "nothing omitted" 0 o.messages_omitted

let test_randomness_accounting () =
  let o = run () in
  (* pid 0 flips one coin per executed round *)
  Alcotest.(check int) "rand calls" o.Sim.Engine.rounds_total o.rand_calls;
  Alcotest.(check int) "rand bits" o.rounds_total o.rand_bits

let test_determinism () =
  let o1 = run () and o2 = run () in
  Alcotest.(check (array (option int))) "same decisions"
    o1.Sim.Engine.decisions o2.Sim.Engine.decisions;
  Alcotest.(check int) "same bits" o1.bits_sent o2.bits_sent

let test_determinism_bit_identical () =
  (* same seed, randomized adversary in the loop: the entire outcome record
     — decisions, fault set, every counter — must be reproduced exactly *)
  let run () = run ~adversary:(Adversary.random_omission ~p_omit:0.4) () in
  let o1 = run () and o2 = run () in
  Alcotest.(check bool) "outcome records bit-identical" true (o1 = o2);
  Alcotest.(check bool) "adversary actually omitted" true
    (o1.Sim.Engine.messages_omitted > 0)

let test_crash_omits () =
  let adversary = Adversary.crash_schedule [ (1, [ 3 ]) ] in
  let o = run ~adversary () in
  Alcotest.(check int) "one fault" 1 o.Sim.Engine.faults_used;
  Alcotest.(check bool) "pid 3 faulty" true o.faulty.(3);
  (* pid 3 broadcasts 7 messages in each of 3 rounds, all omitted *)
  Alcotest.(check int) "omissions counted" (3 * 7) o.messages_omitted

let test_illegal_omission_rejected () =
  let adversary =
    {
      Sim.Adversary_intf.name = "cheater";
      create =
        (fun _ _ _ ->
          Sim.View.pointwise ~new_faults:[] ~omit:(fun _ _ -> true));
    }
  in
  Alcotest.(check bool) "illegal omission raises" true
    (try
       ignore (run ~adversary ());
       false
     with Sim.Engine.Illegal_plan _ -> true)

let test_budget_enforced () =
  let adversary =
    {
      Sim.Adversary_intf.name = "greedy";
      create =
        (fun _ _ view ->
          ignore view;
          Sim.View.pointwise ~new_faults:[ 0; 1; 2 ] ~omit:(fun _ _ -> false));
    }
  in
  Alcotest.(check bool) "budget overrun raises" true
    (try
       ignore (run ~t:2 ~adversary ());
       false
     with Sim.Engine.Illegal_plan _ -> true)

let test_faulty_omission_allowed () =
  (* omissions touching a faulty endpoint are legal in both directions *)
  let adversary =
    {
      Sim.Adversary_intf.name = "incoming-omitter";
      create =
        (fun _ _ view ->
          if view.Sim.View.round = 1 then
            Sim.View.pointwise ~new_faults:[ 5 ] ~omit:(fun _ dst -> dst = 5)
          else Sim.View.pointwise ~new_faults:[] ~omit:(fun _ dst -> dst = 5));
    }
  in
  let o = run ~adversary () in
  (* 7 senders to pid 5 for 3 rounds *)
  Alcotest.(check int) "incoming omitted" 21 o.Sim.Engine.messages_omitted

let test_inbox_sorted_by_sender () =
  let module Probe = struct
    type state = { pid : int; n : int; mutable ok : bool; mutable decided : int option }
    type msg = M

    let name = "probe"
    let init (cfg : Sim.Config.t) ~pid ~input:_ =
      { pid; n = cfg.n; ok = true; decided = None }

    let step _cfg st ~round ~inbox ~rand:_ =
      let srcs = List.map fst inbox in
      if srcs <> List.sort compare srcs then st.ok <- false;
      if round = 3 then st.decided <- Some (if st.ok then 1 else 0);
      let out = ref [] in
      if round < 3 then
        for dst = 0 to st.n - 1 do
          if dst <> st.pid then out := (dst, M) :: !out
        done;
      (st, !out)

    let observe st =
      { Sim.View.candidate = None; operative = true; decided = st.decided }

    let msg_bits M = 1
    let msg_hint M = None
  end in
  let cfg = cfg () in
  let o =
    Sim.Engine.run (module Probe) cfg ~adversary:Sim.Adversary_intf.none
      ~inputs:(Array.make 8 0)
  in
  Alcotest.(check (option int)) "inboxes sorted" (Some 1)
    (Sim.Engine.agreed_decision o)

let test_max_rounds_cap () =
  let module Forever = struct
    type state = unit
    type msg = |

    let name = "forever"
    let init _ ~pid:_ ~input:_ = ()
    let step _ st ~round:_ ~inbox:_ ~rand:_ = (st, [])
    let observe () =
      { Sim.View.candidate = None; operative = true; decided = None }
    let msg_bits (_ : msg) = 1
    let msg_hint (_ : msg) = None
  end in
  let cfg = cfg ~max_rounds:7 () in
  let o =
    Sim.Engine.run (module Forever) cfg ~adversary:Sim.Adversary_intf.none
      ~inputs:(Array.make 8 0)
  in
  Alcotest.(check int) "capped" 7 o.Sim.Engine.rounds_total;
  Alcotest.(check (option int)) "no termination" None o.decided_round;
  Alcotest.(check bool) "not all decided" false
    (Sim.Engine.all_nonfaulty_decided o)

let test_stop_hook () =
  (* the supervision hook: checked after every round, same halt semantics
     as max_rounds — the run ends undecided with its counters intact *)
  let cfg = cfg () in
  let seen = ref [] in
  let o =
    Sim.Engine.run (module Echo) cfg ~adversary:Sim.Adversary_intf.none
      ~inputs:(Array.init 8 (fun i -> i mod 2))
      ~stop:(fun p ->
        seen := p :: !seen;
        p.Sim.Engine.p_round >= 2)
  in
  Alcotest.(check int) "halted at round 2" 2 o.Sim.Engine.rounds_total;
  Alcotest.(check (option int)) "undecided" None o.decided_round;
  match List.rev !seen with
  | [ p1; p2 ] ->
      Alcotest.(check int) "round 1 progress" 1 p1.Sim.Engine.p_round;
      (* 8 processes broadcast to 7 peers, 3 bits per message *)
      Alcotest.(check int) "messages after round 1" 56 p1.p_messages;
      Alcotest.(check int) "bits after round 1" (56 * 3) p1.p_bits;
      Alcotest.(check int) "rand bits after round 1" 1 p1.p_rand_bits;
      Alcotest.(check int) "counters cumulative" 112 p2.p_messages;
      Alcotest.(check int) "rand calls tracked" 2 p2.p_rand_calls
  | l -> Alcotest.fail (Printf.sprintf "expected 2 probes, got %d" (List.length l))

let test_stop_not_consulted_after_decision () =
  (* a decision at round 4 ends the run before the hook is consulted for
     that round: deciding always wins over supervision *)
  let calls = ref 0 in
  let cfg = cfg () in
  let o =
    Sim.Engine.run (module Echo) cfg ~adversary:Sim.Adversary_intf.none
      ~inputs:(Array.init 8 (fun i -> i mod 2))
      ~stop:(fun _ ->
        incr calls;
        false)
  in
  Alcotest.(check (option int)) "decided normally" (Some 4) o.Sim.Engine.decided_round;
  Alcotest.(check int) "hook consulted for undecided rounds only" 3 !calls

let test_out_of_range_corruption_rejected () =
  let adversary =
    {
      Sim.Adversary_intf.name = "wild";
      create =
        (fun _ _ view ->
          if view.Sim.View.round = 1 then
            Sim.View.pointwise ~new_faults:[ 99 ] ~omit:(fun _ _ -> false)
          else Sim.View.no_op);
    }
  in
  Alcotest.(check bool) "pid 99 corruption raises" true
    (try
       ignore (run ~adversary ());
       false
     with Sim.Engine.Illegal_plan _ -> true)

let test_exact_budget_boundary_allowed () =
  (* corrupting exactly t processes is legal; it is the (t+1)-th that
     the engine rejects *)
  let adversary =
    {
      Sim.Adversary_intf.name = "edge";
      create =
        (fun _ _ view ->
          if view.Sim.View.round = 1 then
            Sim.View.pointwise ~new_faults:[ 0; 1 ] ~omit:(fun _ _ -> false)
          else Sim.View.no_op);
    }
  in
  let o = run ~t:2 ~adversary () in
  Alcotest.(check int) "full budget used" 2 o.Sim.Engine.faults_used;
  Alcotest.(check bool) "both marked" true (o.faulty.(0) && o.faulty.(1))

let test_recorruption_is_free () =
  (* re-declaring an already-faulty process consumes no budget *)
  let adversary =
    {
      Sim.Adversary_intf.name = "repeater";
      create =
        (fun _ _ _ ->
          Sim.View.pointwise ~new_faults:[ 5 ] ~omit:(fun _ _ -> false));
    }
  in
  let o = run ~t:2 ~adversary () in
  Alcotest.(check int) "one fault despite re-declares" 1
    o.Sim.Engine.faults_used;
  Alcotest.(check bool) "pid 5 faulty" true o.faulty.(5)

let test_view_contents () =
  (* the adversary sees candidates, coin usage, and envelopes *)
  let seen_coin = ref false and seen_envelopes = ref false in
  let adversary =
    {
      Sim.Adversary_intf.name = "observer";
      create =
        (fun _ _ view ->
          if view.Sim.View.obs.(0).used_randomness then seen_coin := true;
          let envelopes = Sim.View.envelopes view in
          if Array.length envelopes > 0 then begin
            seen_envelopes := true;
            Array.iter
              (fun e ->
                if e.Sim.View.hint = None then
                  failwith "echo messages carry hints")
              envelopes
          end;
          Sim.View.no_op);
    }
  in
  let (_ : Sim.Engine.outcome) = run ~adversary () in
  Alcotest.(check bool) "coin visible" true !seen_coin;
  Alcotest.(check bool) "envelopes visible" true !seen_envelopes

let test_agreed_decision_helpers () =
  let o = run () in
  (* echo decides on parity of heard count: all hear the same here *)
  Alcotest.(check bool) "all decided" true (Sim.Engine.all_nonfaulty_decided o);
  Alcotest.(check bool) "agreement helper consistent" true
    (Sim.Engine.agreed_decision o <> None)

(* Edge cases for the outcome helpers, on records built directly: faulty
   processes must be ignored entirely, and a single undecided or
   disagreeing non-faulty process must flip the verdict wherever it sits. *)
let test_outcome_helper_edges () =
  let outcome ~decisions ~faulty =
    {
      Sim.Engine.decisions;
      faulty;
      rounds_total = 1;
      decided_round = None;
      messages_sent = 0;
      bits_sent = 0;
      messages_omitted = 0;
      rand_calls = 0;
      rand_bits = 0;
      faults_used = 0;
    }
  in
  let faulty_majority =
    outcome
      ~decisions:[| None; Some 1; None; Some 1; None |]
      ~faulty:[| true; false; true; false; true |]
  in
  Alcotest.(check bool) "faulty majority: undecided faulty ignored" true
    (Sim.Engine.all_nonfaulty_decided faulty_majority);
  Alcotest.(check (option int)) "faulty majority: agreement on survivors"
    (Some 1)
    (Sim.Engine.agreed_decision faulty_majority);
  let all_faulty =
    outcome ~decisions:[| None; None |] ~faulty:[| true; true |]
  in
  Alcotest.(check bool) "all faulty: vacuously decided" true
    (Sim.Engine.all_nonfaulty_decided all_faulty);
  Alcotest.(check (option int)) "all faulty: no agreed value" None
    (Sim.Engine.agreed_decision all_faulty);
  let disagreement =
    outcome
      ~decisions:[| Some 0; Some 1; None |]
      ~faulty:[| false; false; true |]
  in
  Alcotest.(check bool) "disagreement: still all decided" true
    (Sim.Engine.all_nonfaulty_decided disagreement);
  Alcotest.(check (option int)) "disagreement: no agreed value" None
    (Sim.Engine.agreed_decision disagreement);
  let late_disagreement =
    outcome
      ~decisions:[| Some 1; Some 1; Some 0 |]
      ~faulty:[| false; false; false |]
  in
  Alcotest.(check (option int)) "late disagreement detected" None
    (Sim.Engine.agreed_decision late_disagreement);
  let mid_undecided =
    outcome
      ~decisions:[| Some 0; None; Some 0 |]
      ~faulty:[| false; false; false |]
  in
  Alcotest.(check bool) "mid-array undecided non-faulty detected" false
    (Sim.Engine.all_nonfaulty_decided mid_undecided);
  Alcotest.(check (option int)) "undecided blocks agreement" None
    (Sim.Engine.agreed_decision mid_undecided)

let test_instance_construction_linear () =
  (* Mailboxes must start tiny and grow on demand: a ~hint:n at creation
     would allocate 2n buffers of n slots — O(n^2) words — before the
     first round. At n = 4096 that is ~33M words; O(n) construction stays
     under a small multiple of n. *)
  let n = 4096 in
  let cfg = Sim.Config.make ~n ~t_max:1 ~seed:1 ~max_rounds:8 () in
  let proto = Consensus.Flood.protocol_buffered cfg in
  Gc.full_major ();
  let before = Gc.allocated_bytes () in
  let inst = Sim.Engine.instance proto cfg in
  let after = Gc.allocated_bytes () in
  let words = (after -. before) /. float_of_int (Sys.word_size / 8) in
  ignore inst;
  Alcotest.(check bool)
    (Printf.sprintf "instance allocates %.0f words <= 200n" words)
    true
    (words <= 200. *. float_of_int n)

let test_input_validation () =
  let cfg = cfg () in
  Alcotest.(check bool) "wrong input length rejected" true
    (try
       ignore
         (Sim.Engine.run (module Echo) cfg ~adversary:Sim.Adversary_intf.none
            ~inputs:(Array.make 3 0));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "non-bit input rejected" true
    (try
       ignore
         (Sim.Engine.run (module Echo) cfg ~adversary:Sim.Adversary_intf.none
            ~inputs:(Array.make 8 2));
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "full delivery and accounting" `Quick test_full_delivery;
    Alcotest.test_case "randomness accounting" `Quick test_randomness_accounting;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "determinism is bit-identical under adversary" `Quick
      test_determinism_bit_identical;
    Alcotest.test_case "crash omits forever" `Quick test_crash_omits;
    Alcotest.test_case "illegal omission rejected" `Quick
      test_illegal_omission_rejected;
    Alcotest.test_case "fault budget enforced" `Quick test_budget_enforced;
    Alcotest.test_case "incoming omissions at faulty dst" `Quick
      test_faulty_omission_allowed;
    Alcotest.test_case "inbox sorted by sender" `Quick
      test_inbox_sorted_by_sender;
    Alcotest.test_case "max_rounds cap" `Quick test_max_rounds_cap;
    Alcotest.test_case "stop hook halts with counters" `Quick test_stop_hook;
    Alcotest.test_case "decision beats stop hook" `Quick
      test_stop_not_consulted_after_decision;
    Alcotest.test_case "out-of-range corruption rejected" `Quick
      test_out_of_range_corruption_rejected;
    Alcotest.test_case "exact budget boundary allowed" `Quick
      test_exact_budget_boundary_allowed;
    Alcotest.test_case "re-corruption consumes no budget" `Quick
      test_recorruption_is_free;
    Alcotest.test_case "adversary view contents" `Quick test_view_contents;
    Alcotest.test_case "outcome helpers" `Quick test_agreed_decision_helpers;
    Alcotest.test_case "outcome helper edge cases" `Quick
      test_outcome_helper_edges;
    Alcotest.test_case "instance construction is O(n) at n=4096" `Quick
      test_instance_construction_linear;
    Alcotest.test_case "input validation" `Quick test_input_validation;
  ]
