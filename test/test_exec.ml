(* Tests for the deterministic domain-pool executor: serial/parallel result
   equality, task-ordering stability, and exception propagation from worker
   domains. *)

exception Boom of int

let test_matches_serial () =
  let xs = Array.init 100 (fun i -> i) in
  let f i = (i * i) + 7 in
  let serial = Array.map f xs in
  Alcotest.(check (array int)) "jobs=1 = Array.map" serial (Exec.map ~jobs:1 f xs);
  Alcotest.(check (array int)) "jobs=4 = Array.map" serial (Exec.map ~jobs:4 f xs)

let test_seeded_sweep_equality () =
  (* a real seeded simulator sweep: fanning it across domains must give
     bit-identical outcome records in the same order as the serial run *)
  let run seed =
    let n = 16 in
    let cfg = Sim.Config.make ~n ~t_max:4 ~seed ~max_rounds:2000 () in
    let proto = Consensus.Bjbo.protocol cfg in
    let inputs = Array.init n (fun i -> i mod 2) in
    Sim.Engine.run proto cfg ~adversary:(Adversary.vote_splitter ()) ~inputs
  in
  let seeds = List.init 8 (fun i -> i + 1) in
  let serial = Exec.map_list ~jobs:1 run seeds in
  let parallel = Exec.map_list ~jobs:4 run seeds in
  Alcotest.(check bool) "outcome records bit-identical" true (serial = parallel);
  List.iter2
    (fun (a : Sim.Engine.outcome) b ->
      Alcotest.(check int) "same rand_bits" a.Sim.Engine.rand_bits
        b.Sim.Engine.rand_bits)
    serial parallel

let test_ordering_stable () =
  (* skew per-task work so completion order differs from submission order:
     slots must still come back in input order *)
  let n = 64 in
  let f i =
    let spin = (n - i) * 2000 in
    let acc = ref 0 in
    for k = 1 to spin do
      acc := !acc + (k mod 3)
    done;
    ignore !acc;
    i
  in
  let got = Exec.init ~jobs:4 n f in
  Alcotest.(check (array int)) "results in task order"
    (Array.init n (fun i -> i))
    got

let test_exception_propagation () =
  (* every task is attempted; the lowest-indexed failure is re-raised in
     the caller, deterministically *)
  let f i = if i = 11 || i = 37 then raise (Boom i) else i in
  Alcotest.check_raises "lowest-indexed exception wins" (Boom 11) (fun () ->
      ignore (Exec.init ~jobs:4 64 f));
  Alcotest.check_raises "serial path raises too" (Boom 11) (fun () ->
      ignore (Exec.init ~jobs:1 64 f))

let test_early_cancel () =
  (* once a failure is noted, higher-indexed tasks still pending are
     skipped — the raise does not wait for the whole batch *)
  let executed = Atomic.make 0 in
  let n = 600 in
  let f i =
    Atomic.incr executed;
    if i = 0 then raise (Boom 0);
    (* enough work per task that most of the batch is still pending when
       task 0's failure lands *)
    let acc = ref 0 in
    for k = 1 to 20_000 do
      acc := !acc + (k mod 7)
    done;
    ignore !acc;
    i
  in
  Alcotest.check_raises "task 0 failure propagates" (Boom 0) (fun () ->
      ignore (Exec.init ~jobs:4 n f));
  Alcotest.(check bool) "pending tasks were cancelled" true
    (Atomic.get executed < n);
  (* determinism of the propagated exception is untouched: a failure at
     the highest index can cancel nothing below it, so every lower task
     still runs (and would win if it failed) *)
  Atomic.set executed 0;
  let g i =
    Atomic.incr executed;
    if i = n - 1 then raise (Boom (n - 1)) else i
  in
  Alcotest.check_raises "highest-index failure cancels nothing"
    (Boom (n - 1)) (fun () -> ignore (Exec.init ~jobs:4 n g));
  Alcotest.(check int) "every task attempted" n (Atomic.get executed)

let test_empty_and_small () =
  Alcotest.(check (array int)) "empty input" [||]
    (Exec.map ~jobs:4 (fun x -> x) [||]);
  Alcotest.(check (array int)) "single task" [| 9 |]
    (Exec.map ~jobs:4 (fun x -> x * 9) [| 1 |]);
  Alcotest.(check (list int)) "map_list order" [ 2; 4; 6 ]
    (Exec.map_list ~jobs:3 (fun x -> 2 * x) [ 1; 2; 3 ])

let test_jobs_validation () =
  Alcotest.check_raises "jobs=0 rejected"
    (Invalid_argument "Exec.mapi: jobs must be >= 1") (fun () ->
      ignore (Exec.map ~jobs:0 (fun x -> x) [| 1; 2 |]));
  Alcotest.check_raises "negative default rejected"
    (Invalid_argument "Exec.set_default_jobs: jobs must be >= 0") (fun () ->
      Exec.set_default_jobs (-1))

let test_default_jobs () =
  let saved = Exec.default_jobs () in
  Exec.set_default_jobs 3;
  Alcotest.(check int) "override takes" 3 (Exec.default_jobs ());
  Exec.set_default_jobs 0;
  Alcotest.(check int) "0 restores recommended" (Exec.recommended_jobs ())
    (Exec.default_jobs ());
  Alcotest.(check bool) "recommended >= 1" true (Exec.recommended_jobs () >= 1);
  Exec.set_default_jobs saved

let suite =
  [
    Alcotest.test_case "matches serial map" `Quick test_matches_serial;
    Alcotest.test_case "seeded sweep: jobs 1 = jobs 4" `Quick
      test_seeded_sweep_equality;
    Alcotest.test_case "task ordering stable" `Quick test_ordering_stable;
    Alcotest.test_case "exception propagation" `Quick
      test_exception_propagation;
    Alcotest.test_case "early cancel after failure" `Quick test_early_cancel;
    Alcotest.test_case "empty and small inputs" `Quick test_empty_and_small;
    Alcotest.test_case "jobs validation" `Quick test_jobs_validation;
    Alcotest.test_case "default jobs override" `Quick test_default_jobs;
  ]
