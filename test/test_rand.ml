(* Unit and property tests for the counted random source. *)

let check = Alcotest.check

let test_determinism () =
  let a = Sim.Rand.create ~seed:7L () in
  let b = Sim.Rand.create ~seed:7L () in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Sim.Rand.bits a 30) (Sim.Rand.bits b 30)
  done

let test_seed_sensitivity () =
  let a = Sim.Rand.create ~seed:7L () in
  let b = Sim.Rand.create ~seed:8L () in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Sim.Rand.bit a = Sim.Rand.bit b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 64)

let test_derive_independent () =
  let root = Sim.Rand.create ~seed:1L () in
  let a = Sim.Rand.derive root 1 and b = Sim.Rand.derive root 2 in
  let equal = ref 0 in
  for _ = 1 to 64 do
    if Sim.Rand.bits a 16 = Sim.Rand.bits b 16 then incr equal
  done;
  Alcotest.(check bool) "derived streams differ" true (!equal < 4)

let test_derive_stable () =
  let root = Sim.Rand.create ~seed:1L () in
  (* deriving again after the root advanced gives the same stream *)
  let a = Sim.Rand.derive root 5 in
  let x = Sim.Rand.bits a 30 in
  let (_ : int) = Sim.Rand.bits root 30 in
  let b = Sim.Rand.derive root 5 in
  check Alcotest.int "derive ignores root position" x (Sim.Rand.bits b 30)

let test_counting () =
  let c = Sim.Rand.Counter.create () in
  let r = Sim.Rand.create ~counter:c ~seed:3L () in
  let (_ : int) = Sim.Rand.bit r in
  let (_ : int) = Sim.Rand.bits r 10 in
  check Alcotest.int "calls" 2 (Sim.Rand.Counter.calls c);
  check Alcotest.int "bits" 11 (Sim.Rand.Counter.bits c);
  let d = Sim.Rand.derive r 4 in
  let (_ : int) = Sim.Rand.bit d in
  check Alcotest.int "derived stream shares counter" 3
    (Sim.Rand.Counter.calls c);
  Sim.Rand.Counter.reset c;
  check Alcotest.int "reset" 0 (Sim.Rand.Counter.calls c)

let test_private_counter () =
  let a = Sim.Rand.create ~seed:1L () in
  let (_ : int) = Sim.Rand.bit a in
  check Alcotest.int "private counter counts" 1
    (Sim.Rand.Counter.calls (Sim.Rand.counter a))

let test_int_below_rejection_bits () =
  (* m = 5 needs k = 3 bits per attempt and rejects 3 of 8 raw values, so
     over many calls the counted bits must strictly exceed the old
     per-call charge of k — the re-draws are real randomness spent. *)
  let c = Sim.Rand.Counter.create () in
  let r = Sim.Rand.create ~counter:c ~seed:9L () in
  let calls = 2_000 in
  for _ = 1 to calls do
    ignore (Sim.Rand.int_below r 5)
  done;
  let k = 3 in
  Alcotest.(check int) "one call per int_below" calls
    (Sim.Rand.Counter.calls c);
  Alcotest.(check bool)
    (Printf.sprintf "bits %d > old per-call charge %d"
       (Sim.Rand.Counter.bits c) (calls * k))
    true
    (Sim.Rand.Counter.bits c > calls * k);
  (* bits are charged in whole attempts: k bits per draw, >= 1 draw/call *)
  Alcotest.(check int) "bits are a multiple of k" 0
    (Sim.Rand.Counter.bits c mod k);
  (* acceptance probability is 5/8, so attempts/call averages 8/5 = 1.6 *)
  let attempts = Sim.Rand.Counter.bits c / k in
  let per_call = float_of_int attempts /. float_of_int calls in
  Alcotest.(check bool)
    (Printf.sprintf "mean attempts/call %.2f near 1.6" per_call)
    true
    (per_call > 1.45 && per_call < 1.75)

let test_int_below_exact_power_of_two_bits () =
  (* a power-of-two bound never rejects: exactly k bits per call *)
  let c = Sim.Rand.Counter.create () in
  let r = Sim.Rand.create ~counter:c ~seed:9L () in
  for _ = 1 to 500 do
    ignore (Sim.Rand.int_below r 8)
  done;
  Alcotest.(check int) "exactly 3 bits per call" (500 * 3)
    (Sim.Rand.Counter.bits c)

let test_bit_balance () =
  let r = Sim.Rand.create ~seed:11L () in
  let ones = ref 0 in
  let trials = 10_000 in
  for _ = 1 to trials do
    ones := !ones + Sim.Rand.bit r
  done;
  let frac = float_of_int !ones /. float_of_int trials in
  Alcotest.(check bool) "fair coin" true (frac > 0.47 && frac < 0.53)

let test_int_below_range =
  QCheck.Test.make ~name:"int_below in range" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, m) ->
      let r = Sim.Rand.create ~seed:(Int64.of_int seed) () in
      let v = Sim.Rand.int_below r m in
      v >= 0 && v < m)

let test_int_below_uniform () =
  let r = Sim.Rand.create ~seed:5L () in
  let counts = Array.make 10 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    let v = Sim.Rand.int_below r 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "each bucket near 10%" true (c > 1700 && c < 2300))
    counts

let test_bits_bounds =
  QCheck.Test.make ~name:"bits k within [0, 2^k)" ~count:500
    QCheck.(pair small_int (int_range 1 30))
    (fun (seed, k) ->
      let r = Sim.Rand.create ~seed:(Int64.of_int seed) () in
      let v = Sim.Rand.bits r k in
      v >= 0 && v < 1 lsl k)

let test_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (int_range 1 50))
    (fun (seed, len) ->
      let r = Sim.Rand.create ~seed:(Int64.of_int seed) () in
      let a = Array.init len (fun i -> i) in
      Sim.Rand.shuffle r a;
      let sorted = Array.copy a in
      Array.sort compare sorted;
      sorted = Array.init len (fun i -> i))

let test_float_range () =
  let r = Sim.Rand.create ~seed:2L () in
  for _ = 1 to 1000 do
    let f = Sim.Rand.float r in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0. && f < 1.)
  done

let test_bits_invalid () =
  let r = Sim.Rand.create ~seed:1L () in
  Alcotest.check_raises "k=0 rejected"
    (Invalid_argument "Rand.bits: k must be in [1, 62]") (fun () ->
      ignore (Sim.Rand.bits r 0));
  Alcotest.check_raises "k=63 rejected"
    (Invalid_argument "Rand.bits: k must be in [1, 62]") (fun () ->
      ignore (Sim.Rand.bits r 63))

let test_int_below_invalid () =
  let r = Sim.Rand.create ~seed:1L () in
  Alcotest.check_raises "m=0 rejected"
    (Invalid_argument "Rand.int_below: bound must be positive") (fun () ->
      ignore (Sim.Rand.int_below r 0))

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "derive independence" `Quick test_derive_independent;
    Alcotest.test_case "derive stability" `Quick test_derive_stable;
    Alcotest.test_case "counting" `Quick test_counting;
    Alcotest.test_case "private counter" `Quick test_private_counter;
    Alcotest.test_case "bit balance" `Quick test_bit_balance;
    Alcotest.test_case "int_below charges rejection re-draws" `Quick
      test_int_below_rejection_bits;
    Alcotest.test_case "int_below power-of-two bound charges exactly k" `Quick
      test_int_below_exact_power_of_two_bits;
    Alcotest.test_case "int_below uniform" `Quick test_int_below_uniform;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "bits invalid args" `Quick test_bits_invalid;
    Alcotest.test_case "int_below invalid args" `Quick test_int_below_invalid;
    QCheck_alcotest.to_alcotest test_int_below_range;
    QCheck_alcotest.to_alcotest test_bits_bounds;
    QCheck_alcotest.to_alcotest test_shuffle_permutation;
  ]
