(* Tests for the lossy-link transport layer (lib/net): spec parsing and its
   error paths, transport determinism, the zero-fault byte-identity
   guarantee over every registry protocol on both engine paths, the
   synchronizer's masking guarantee, the graceful degradation of residual
   losses into induced omission faults, and the greedy-cover attribution. *)

let spec_of s =
  match Net.Spec.of_string s with
  | Ok spec -> spec
  | Error m -> Alcotest.failf "spec %S rejected: %s" s m

(* --- Spec parsing --- *)

let test_spec_parse () =
  let s = spec_of "drop=0.25,dup=0.1,delay=0.2:3,stall=0.05:2,retries=6" in
  Alcotest.(check (float 0.)) "drop" 0.25 s.Net.Spec.drop;
  Alcotest.(check (float 0.)) "dup" 0.1 s.Net.Spec.dup;
  Alcotest.(check (float 0.)) "delay" 0.2 s.Net.Spec.delay;
  Alcotest.(check int) "delay_max" 3 s.Net.Spec.delay_max;
  Alcotest.(check (float 0.)) "stall" 0.05 s.Net.Spec.stall;
  Alcotest.(check int) "stall_len" 2 s.Net.Spec.stall_len;
  Alcotest.(check int) "retries" 6 s.Net.Spec.retries;
  Alcotest.(check bool) "not zero-fault" false (Net.Spec.zero_fault s);
  let b = spec_of "burst=0.1:0.4:0.8,backoff=2:16" in
  Alcotest.(check (float 0.)) "burst_to_bad" 0.1 b.Net.Spec.burst_to_bad;
  Alcotest.(check (float 0.)) "burst_to_good" 0.4 b.Net.Spec.burst_to_good;
  Alcotest.(check (float 0.)) "burst_drop" 0.8 b.Net.Spec.burst_drop;
  Alcotest.(check int) "backoff_base" 2 b.Net.Spec.backoff_base;
  Alcotest.(check int) "backoff_cap" 16 b.Net.Spec.backoff_cap;
  Alcotest.(check bool) "drop=0 is zero-fault" true
    (Net.Spec.zero_fault (spec_of "drop=0"))

let test_spec_roundtrip () =
  List.iter
    (fun str ->
      let s = spec_of str in
      let s' = spec_of (Net.Spec.to_string s) in
      if s <> s' then
        Alcotest.failf "spec %S changed over to_string (%s)" str
          (Net.Spec.to_string s))
    [
      "drop=0";
      "drop=0.3";
      "drop=0.2,dup=0.05,delay=0.1:4";
      "stall=0.01:3,retries=0";
      "burst=0.2:0.6:0.9";
      "drop=0.1,retries=9,backoff=2:32";
    ];
  Alcotest.(check string) "default prints as drop=0" "drop=0"
    (Net.Spec.to_string Net.Spec.default)

(* Satellite: every malformed spec is rejected with a one-line error naming
   the offending key. Exact strings, so the CLI message stays stable. *)
let test_spec_errors () =
  List.iter
    (fun (input, want) ->
      match Net.Spec.of_string input with
      | Ok _ -> Alcotest.failf "spec %S unexpectedly accepted" input
      | Error m -> Alcotest.(check string) input want m)
    [
      ("", "net spec: empty spec");
      ("drop", "net spec: missing '=' in \"drop\"");
      ("drop=1.5", "net spec: drop: probability must be within [0,1] (got 1.5)");
      ("drop=-0.1", "net spec: drop: probability must be within [0,1] (got -0.1)");
      ("dup=abc", "net spec: dup: not a number (got \"abc\")");
      ("frop=0.1", "net spec: unknown key \"frop\"");
      ( "burst=0.1:0.2",
        "net spec: burst: wrong number of ':'-separated fields in \"0.1:0.2\"" );
      ("retries=-1", "net spec: retries: must be >= 0 (got -1)");
      ("backoff=4:2", "net spec: backoff: cap 2 < base 4");
      ("delay=0.1:0", "net spec: delay: must be >= 1 (got 0)");
      ("retries=two", "net spec: retries: not an integer (got \"two\")");
    ]

(* --- Transport determinism --- *)

let drive tr ~n ~rounds =
  let link = Net.Transport.link tr in
  let verdicts = ref [] in
  for r = 1 to rounds do
    link.Sim.Link_intf.begin_round ~round:r;
    for src = 0 to n - 1 do
      for dst = 0 to n - 1 do
        if src <> dst then
          verdicts :=
            link.Sim.Link_intf.transmit ~trace:None ~round:r ~src ~dst
            :: !verdicts
      done
    done
  done;
  (List.rev !verdicts, Net.Transport.stats tr)

let test_transport_deterministic () =
  let spec = spec_of "drop=0.3,dup=0.1,delay=0.1:2,stall=0.05" in
  let cfg = Sim.Config.make ~n:6 ~t_max:1 ~seed:11 () in
  let tr = Net.Transport.create spec cfg in
  let link = Net.Transport.link tr in
  link.Sim.Link_intf.reset ~seed:11;
  let a = drive tr ~n:6 ~rounds:8 in
  link.Sim.Link_intf.reset ~seed:11;
  let b = drive tr ~n:6 ~rounds:8 in
  Alcotest.(check bool) "same seed, same run" true (a = b);
  link.Sim.Link_intf.reset ~seed:12;
  let c = drive tr ~n:6 ~rounds:8 in
  Alcotest.(check bool) "different seed, different faults" true (a <> c)

(* Zero-fault transport: every exchange delivered, and nothing reaches the
   trace sink (the sink here raises on any emission). *)
let test_zero_fault_silent () =
  let poisoned =
    Trace.Sink.make
      ~emit:(fun e ->
        Alcotest.failf "zero-fault transport emitted %s"
          (Trace.Event.to_json e))
      ~close:(fun () -> ())
  in
  let cfg = Sim.Config.make ~n:5 ~t_max:1 ~seed:3 () in
  let tr = Net.Transport.create Net.Spec.default cfg in
  let link = Net.Transport.link tr in
  link.Sim.Link_intf.reset ~seed:3;
  for r = 1 to 4 do
    link.Sim.Link_intf.begin_round ~round:r;
    for src = 0 to 4 do
      for dst = 0 to 4 do
        if src <> dst then
          match
            link.Sim.Link_intf.transmit ~trace:(Some poisoned) ~round:r ~src
              ~dst
          with
          | Sim.Link_intf.Delivered -> ()
          | Sim.Link_intf.Lost -> Alcotest.fail "zero-fault transport lost"
      done
    done
  done;
  let s = Net.Transport.stats tr in
  Alcotest.(check int) "attempts" (4 * 5 * 4) s.Net.Transport.attempts;
  Alcotest.(check int) "retransmits" 0 s.Net.Transport.retransmits;
  Alcotest.(check int) "slots = 2 per active round" 8 s.Net.Transport.slots;
  Alcotest.(check int) "active rounds" 4 s.Net.Transport.active_rounds

(* --- Zero-fault byte-identity over the whole registry --- *)

let capture ~n ~adv_idx run =
  let adversary = List.nth (Adversary.standard_suite ~n) adv_idx in
  let sink, events = Trace.Sink.memory () in
  let res =
    try Ok (run ~adversary ~trace:sink)
    with Sim.Engine.Illegal_plan m -> Error m
  in
  (res, List.map Trace.Event.to_json (events ()))

let check_equal ~ctx (res_a, trace_a) (res_b, trace_b) =
  if res_a <> res_b then
    Alcotest.failf "%s: outcomes differ (%s vs %s)" ctx
      (match res_a with Ok _ -> "Ok" | Error m -> "Illegal_plan " ^ m)
      (match res_b with Ok _ -> "Ok" | Error m -> "Illegal_plan " ^ m);
  if trace_a <> trace_b then
    Alcotest.failf "%s: traces differ (%d vs %d events)" ctx
      (List.length trace_a) (List.length trace_b)

(* With every fault probability at zero, running over the transport must be
   byte-identical — outcome and JSONL trace — to running without one, for
   every registry protocol on both engine paths. *)
let test_zero_fault_identity entry () =
  let n = max entry.Harness.Registry.min_n 12 in
  let t = max 1 (min 3 (entry.Harness.Registry.max_t n)) in
  let seed = 7 in
  let cfg0 = Sim.Config.make ~n ~t_max:t ~seed () in
  let cfg =
    Sim.Config.make ~n ~t_max:t ~seed
      ~max_rounds:(Harness.Registry.rounds_bound entry cfg0)
      ()
  in
  let inputs = Array.init n (fun i -> i mod 2) in
  let adversary_count = List.length (Adversary.standard_suite ~n) in
  for adv_idx = 0 to adversary_count - 1 do
    let ctx =
      Printf.sprintf "%s adv=%d" entry.Harness.Registry.id adv_idx
    in
    let with_link run =
      capture ~n ~adv_idx (fun ~adversary ~trace ->
          let tr = Net.Transport.create Net.Spec.default cfg in
          run ~link:(Net.Transport.link tr) ~adversary ~trace)
    in
    let legacy =
      capture ~n ~adv_idx (fun ~adversary ~trace ->
          Sim.Engine.run ~trace (Harness.Registry.build entry cfg) cfg
            ~adversary ~inputs)
    in
    let legacy_linked =
      with_link (fun ~link ~adversary ~trace ->
          Sim.Engine.run ~trace ~link (Harness.Registry.build entry cfg) cfg
            ~adversary ~inputs)
    in
    check_equal ~ctx:(ctx ^ " [legacy]") legacy legacy_linked;
    let preferred =
      capture ~n ~adv_idx (fun ~adversary ~trace ->
          Sim.Engine.run_any ~trace
            (Harness.Registry.build_any entry cfg)
            cfg ~adversary ~inputs)
    in
    let preferred_linked =
      with_link (fun ~link ~adversary ~trace ->
          Sim.Engine.run_any ~trace ~link
            (Harness.Registry.build_any entry cfg)
            cfg ~adversary ~inputs)
    in
    check_equal ~ctx:(ctx ^ " [preferred]") preferred preferred_linked
  done

(* --- Synchronizer masking --- *)

let flood_cfg ~n ~t ~seed =
  let cfg0 = Sim.Config.make ~n ~t_max:t ~seed () in
  Sim.Config.make ~n ~t_max:t ~seed ~max_rounds:(cfg0.Sim.Config.t_max + 3) ()

let flood_any cfg =
  Sim.Protocol_intf.Buffered (Consensus.Flood.protocol_buffered cfg)

(* A loss rate the retry budget covers is fully masked: zero residual, no
   induced faults, and the outcome equals the linkless run's bit for bit. *)
let test_masking () =
  let cfg = flood_cfg ~n:12 ~t:2 ~seed:5 in
  let inputs = Array.init 12 (fun i -> i mod 2) in
  let baseline =
    match
      Supervise.run_any (flood_any cfg) cfg ~adversary:Adversary.none ~inputs
    with
    | Ok o -> o
    | Error _ -> Alcotest.fail "baseline run failed"
  in
  let net = spec_of "drop=0.3,retries=10" in
  match
    Supervise.run_net ~net (flood_any cfg) cfg ~adversary:Adversary.none
      ~inputs
  with
  | Error _ -> Alcotest.fail "masked run reported a failure"
  | Ok (o, d) ->
      Alcotest.(check int) "residual" 0 d.Net.Degradation.residual;
      Alcotest.(check (list int)) "induced" [] d.Net.Degradation.induced_faulty;
      Alcotest.(check bool) "in model" false d.Net.Degradation.beyond_model;
      Alcotest.(check bool) "outcome identical to linkless run" true
        (o = baseline);
      Alcotest.(check bool) "losses were actually recovered" true
        (d.Net.Degradation.retransmits > 0);
      Alcotest.(check bool) "agreement holds" true
        (Net.Degradation.agreed_decision d o <> None)

(* --- Graceful degradation --- *)

let test_beyond_model () =
  let cfg = flood_cfg ~n:8 ~t:1 ~seed:2 in
  let inputs = Array.init 8 (fun i -> i mod 2) in
  let net = spec_of "drop=0.9,retries=0" in
  match
    Supervise.run_net ~net (flood_any cfg) cfg ~adversary:Adversary.none
      ~inputs
  with
  | Ok (_, d) ->
      Alcotest.failf "beyond-model run reported Ok (%s)"
        (Net.Degradation.to_json d)
  | Error (kind, partial) -> (
      (match kind with
      | Supervise.Degraded { induced; adversarial; t_max; residual } ->
          Alcotest.(check int) "t_max" 1 t_max;
          Alcotest.(check int) "no adversarial faults" 0 adversarial;
          Alcotest.(check bool) "induced exceeds t" true (induced > t_max);
          Alcotest.(check bool) "residual losses recorded" true (residual > 0)
      | k ->
          Alcotest.failf "expected Degraded, got %s"
            (Fmt.str "%a" Supervise.pp_failure_kind k));
      (match partial with
      | None -> Alcotest.fail "degraded run lost its forensic outcome"
      | Some (_, d) ->
          Alcotest.(check bool) "report flags beyond_model" true
            d.Net.Degradation.beyond_model;
          Alcotest.(check bool) "effective set exceeds t" true
            (List.length d.Net.Degradation.effective_faulty > 1));
      let failure =
        {
          Supervise.index = 0;
          label = "test/degraded";
          seed = Some 2;
          replay = None;
          kind;
          elapsed_s = 0.;
          trace = [];
        }
      in
      let json = Supervise.failure_json failure in
      let has_sub sub =
        let ls = String.length sub and lj = String.length json in
        let rec go i = i + ls <= lj && (String.sub json i ls = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "quarantine json says degraded" true
        (has_sub {|"failure":"degraded"|});
      Alcotest.(check bool) "quarantine json carries t_max" true
        (has_sub {|"t_max":1|}))

(* Stalled processes lose every exchange they touch. *)
let test_stall_blackout () =
  let spec = spec_of "stall=1:3,retries=2" in
  let cfg = Sim.Config.make ~n:4 ~t_max:1 ~seed:9 () in
  let tr = Net.Transport.create spec cfg in
  let link = Net.Transport.link tr in
  link.Sim.Link_intf.reset ~seed:9;
  link.Sim.Link_intf.begin_round ~round:1;
  for src = 0 to 3 do
    for dst = 0 to 3 do
      if src <> dst then
        match link.Sim.Link_intf.transmit ~trace:None ~round:1 ~src ~dst with
        | Sim.Link_intf.Lost -> ()
        | Sim.Link_intf.Delivered ->
            Alcotest.failf "stalled exchange %d->%d delivered" src dst
    done
  done;
  let s = Net.Transport.stats tr in
  Alcotest.(check int) "every exchange residual" 12 s.Net.Transport.residual

(* Duplication and delay are visible (traced, counted) but harmless: the
   exchange still delivers. *)
let test_dup_delay_events () =
  let spec = spec_of "dup=1,delay=1:3" in
  let cfg = Sim.Config.make ~n:3 ~t_max:1 ~seed:4 () in
  let tr = Net.Transport.create spec cfg in
  let link = Net.Transport.link tr in
  link.Sim.Link_intf.reset ~seed:4;
  link.Sim.Link_intf.begin_round ~round:1;
  let sink, events = Trace.Sink.memory () in
  (match link.Sim.Link_intf.transmit ~trace:(Some sink) ~round:1 ~src:0 ~dst:1 with
  | Sim.Link_intf.Delivered -> ()
  | Sim.Link_intf.Lost -> Alcotest.fail "dup/delay lost the exchange");
  let evs = events () in
  let has p = List.exists p evs in
  Alcotest.(check bool) "dup event" true
    (has (function Trace.Event.Dup _ -> true | _ -> false));
  Alcotest.(check bool) "delay event" true
    (has
       (function
         | Trace.Event.Delay { slots; _ } -> slots >= 1 && slots <= 3
         | _ -> false));
  let s = Net.Transport.stats tr in
  Alcotest.(check int) "dup counted" 1 s.Net.Transport.dups;
  Alcotest.(check int) "delay counted" 1 s.Net.Transport.delays;
  Alcotest.(check bool) "delay stretched the round" true
    (s.Net.Transport.slots > 2)

(* --- Greedy cover attribution --- *)

let test_greedy_cover () =
  Alcotest.(check (list int)) "star blames the hub" [ 0 ]
    (Net.Degradation.greedy_cover ~n:5 [ (0, 1); (0, 2); (0, 3); (0, 4) ]);
  Alcotest.(check int) "disjoint edges need two" 2
    (List.length (Net.Degradation.greedy_cover ~n:6 [ (0, 1); (2, 3) ]));
  Alcotest.(check (list int)) "empty" []
    (Net.Degradation.greedy_cover ~n:4 []);
  (* path a-b-c: one middle vertex covers both edges *)
  Alcotest.(check (list int)) "path blames the middle" [ 1 ]
    (Net.Degradation.greedy_cover ~n:3 [ (0, 1); (1, 2) ])

let suite =
  [
    Alcotest.test_case "spec: parses every key" `Quick test_spec_parse;
    Alcotest.test_case "spec: to_string round-trips" `Quick
      test_spec_roundtrip;
    Alcotest.test_case "spec: malformed specs name the offending key" `Quick
      test_spec_errors;
    Alcotest.test_case "transport: bit-identical under one seed" `Quick
      test_transport_deterministic;
    Alcotest.test_case "transport: zero-fault is silent and lossless" `Quick
      test_zero_fault_silent;
    Alcotest.test_case "synchronizer: masks covered loss rates" `Quick
      test_masking;
    Alcotest.test_case "degradation: beyond-model runs fail loudly" `Quick
      test_beyond_model;
    Alcotest.test_case "transport: stalls black out their process" `Quick
      test_stall_blackout;
    Alcotest.test_case "transport: dup/delay traced but delivered" `Quick
      test_dup_delay_events;
    Alcotest.test_case "degradation: greedy cover attribution" `Quick
      test_greedy_cover;
  ]
  @ List.map
      (fun entry ->
        Alcotest.test_case
          (Printf.sprintf "%s: zero-fault link is byte-invisible"
             entry.Harness.Registry.id)
          `Quick
          (test_zero_fault_identity entry))
      Harness.Registry.all
