(* Tests for the structured tracing layer: event codecs (JSONL and binary),
   ring/tail capture bounds, metrics-vs-outcome agreement, first-divergence
   diff, determinism of the event stream at any executor width, and the
   quarantine path that ships a trace tail inside the failure record. *)

let cfg ?(n = 8) ?(seed = 1) ?(max_rounds = 10) () =
  Sim.Config.make ~n ~t_max:2 ~seed ~max_rounds ()

let echo = (module Test_engine.Echo : Sim.Protocol_intf.S)
let inputs n = Array.init n (fun i -> i mod 2)

let traced_run ?(n = 8) ?(seed = 1) ?(adversary = Sim.Adversary_intf.none) ()
    =
  let sink, events = Trace.Sink.memory () in
  let o =
    Sim.Engine.run ~trace:sink echo (cfg ~n ~seed ()) ~adversary
      ~inputs:(inputs n)
  in
  (o, events ())

let omission_adversary () = Adversary.random_omission ~p_omit:0.5

(* --- codecs --- *)

let test_json_roundtrip () =
  let _, events = traced_run ~adversary:(omission_adversary ()) () in
  Alcotest.(check bool) "trace is non-trivial" true (List.length events > 50);
  List.iter
    (fun e ->
      match Trace.Event.of_json (Trace.Event.to_json e) with
      | Some e' ->
          if not (Trace.Event.equal e e') then
            Alcotest.failf "json roundtrip changed %s" (Trace.Event.to_json e)
      | None ->
          Alcotest.failf "json roundtrip lost %s" (Trace.Event.to_json e))
    events

let test_binary_roundtrip () =
  let _, events = traced_run ~adversary:(omission_adversary ()) () in
  let buf = Buffer.create 1024 in
  List.iter (Trace.Event.to_binary buf) events;
  let s = Buffer.contents buf in
  let pos = ref 0 in
  let decoded = ref [] in
  while !pos < String.length s do
    decoded := Trace.Event.of_binary s pos :: !decoded
  done;
  let decoded = List.rev !decoded in
  Alcotest.(check int) "event count" (List.length events)
    (List.length decoded);
  List.iter2
    (fun a b ->
      if not (Trace.Event.equal a b) then
        Alcotest.failf "binary roundtrip changed %s" (Trace.Event.to_json a))
    events decoded

let test_binary_truncated () =
  let _, events = traced_run () in
  let buf = Buffer.create 1024 in
  List.iter (Trace.Event.to_binary buf) events;
  let s = Buffer.contents buf in
  let cut = String.sub s 0 (String.length s - 1) in
  let pos = ref 0 in
  Alcotest.check_raises "short read" Trace.Event.Truncated (fun () ->
      while !pos < String.length cut do
        ignore (Trace.Event.of_binary cut pos)
      done)

let test_file_roundtrip () =
  let _, events = traced_run ~adversary:(omission_adversary ()) () in
  let check format =
    let path = Filename.temp_file "trace" ("." ^ Trace.format_extension format) in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Trace.File.write ~path ~format events;
        (* File.read auto-detects the format from the content *)
        let back = Trace.File.read path in
        Alcotest.(check bool)
          (Trace.format_to_string format ^ " file roundtrip")
          true
          (List.length back = List.length events
          && List.for_all2 Trace.Event.equal events back))
  in
  check Trace.Jsonl;
  check Trace.Binary

let test_file_corrupt () =
  let path = Filename.temp_file "trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"ev\":\"no-such-event\"}\n";
      close_out oc;
      match Trace.File.read path with
      | _ -> Alcotest.fail "expected File.Corrupt"
      | exception Trace.File.Corrupt _ -> ())

(* --- engine stream semantics --- *)

let test_traced_outcome_unchanged () =
  (* the sink is an observer: outcome counters are bit-identical with and
     without it *)
  let adversary = omission_adversary () in
  let o_plain =
    Sim.Engine.run echo (cfg ()) ~adversary:(omission_adversary ())
      ~inputs:(inputs 8)
  in
  let o_traced, _ = traced_run ~adversary () in
  Alcotest.(check bool) "outcomes identical" true (o_plain = o_traced)

let test_stream_deterministic_across_jobs () =
  (* the same seeds traced through a 1-wide and a 4-wide pool produce
     byte-identical JSONL streams *)
  let seeds = [| 1; 2; 3; 4; 5; 6 |] in
  let trace_of seed =
    let _, events = traced_run ~seed ~adversary:(omission_adversary ()) () in
    String.concat "\n" (List.map Trace.Event.to_json events)
  in
  let serial = Array.map trace_of seeds in
  let wide = Exec.map ~jobs:4 trace_of seeds in
  Array.iteri
    (fun i s ->
      Alcotest.(check string)
        (Printf.sprintf "seed %d byte-identical" seeds.(i))
        s wide.(i))
    serial

let test_send_omit_deliver_accounting () =
  (* every Send is resolved by exactly one Omit or Deliver, and the totals
     match the outcome's counters *)
  let o, events = traced_run ~adversary:(omission_adversary ()) () in
  let sends = ref 0 and omits = ref 0 and delivers = ref 0 in
  List.iter
    (function
      | Trace.Event.Send _ -> incr sends
      | Trace.Event.Omit _ -> incr omits
      | Trace.Event.Deliver _ -> incr delivers
      | _ -> ())
    events;
  Alcotest.(check int) "sends = outcome messages" o.Sim.Engine.messages_sent
    !sends;
  Alcotest.(check int) "omits = outcome omitted" o.messages_omitted !omits;
  Alcotest.(check int) "send = omit + deliver" !sends (!omits + !delivers)

let test_metrics_match_outcome () =
  let o, events = traced_run ~adversary:(omission_adversary ()) () in
  let m = Trace.Metrics.of_events events in
  Alcotest.(check int) "rounds" o.Sim.Engine.rounds_total m.Trace.Metrics.rounds;
  Alcotest.(check int) "messages" o.messages_sent m.messages;
  Alcotest.(check int) "bits" o.bits_sent m.bits;
  Alcotest.(check int) "omitted" o.messages_omitted m.omitted;
  Alcotest.(check int) "coin calls" o.rand_calls m.coin_calls;
  Alcotest.(check int) "coin bits" o.rand_bits m.coin_bits;
  Alcotest.(check int) "corruptions" o.faults_used m.corruptions;
  Alcotest.(check int) "per-round rows" m.rounds
    (List.length m.per_round);
  (* per-round deltas sum to the totals *)
  let sum f = List.fold_left (fun a r -> a + f r) 0 m.per_round in
  Alcotest.(check int) "round messages sum" m.messages
    (sum (fun r -> r.Trace.Metrics.messages));
  Alcotest.(check int) "round bits sum" m.bits
    (sum (fun r -> r.Trace.Metrics.bits))

let test_decides_once_per_process () =
  let o, events = traced_run () in
  let n = Array.length o.Sim.Engine.decisions in
  let decided = Array.make n 0 in
  List.iter
    (function
      | Trace.Event.Decide { pid; value; _ } ->
          decided.(pid) <- decided.(pid) + 1;
          (match o.decisions.(pid) with
          | Some v -> Alcotest.(check int) "decide value" v value
          | None -> Alcotest.fail "Decide event for undecided process")
      | _ -> ())
    events;
  Array.iteri
    (fun pid k ->
      let expect = if o.decisions.(pid) = None then 0 else 1 in
      Alcotest.(check int) (Printf.sprintf "pid %d decides once" pid) expect k)
    decided

(* --- ring / tail bounds --- *)

let ev_round r = Trace.Event.Round_start { round = r }

let test_ring_bounds () =
  let ring = Trace.Ring.create ~capacity:4 in
  for r = 1 to 10 do
    Trace.Ring.add ring (ev_round r)
  done;
  Alcotest.(check int) "length capped" 4 (Trace.Ring.length ring);
  Alcotest.(check bool) "keeps newest, oldest first" true
    (List.for_all2 Trace.Event.equal (Trace.Ring.to_list ring)
       [ ev_round 7; ev_round 8; ev_round 9; ev_round 10 ])

let test_tail_last_rounds () =
  let _, events = traced_run ~adversary:(omission_adversary ()) () in
  let tail = Trace.Tail.create ~rounds:2 () in
  let sink = Trace.Tail.sink tail in
  List.iter (Trace.Sink.emit sink) events;
  let kept = Trace.Tail.events tail in
  Alcotest.(check bool) "non-empty" true (kept <> []);
  let rounds =
    List.sort_uniq compare (List.map Trace.Event.round kept)
  in
  let last = List.fold_left max 0 (List.map Trace.Event.round events) in
  Alcotest.(check (list int)) "exactly the last 2 rounds"
    [ last - 1; last ] rounds;
  (* and the lines render back to the same events *)
  List.iter2
    (fun e line ->
      match Trace.Event.of_json line with
      | Some e' when Trace.Event.equal e e' -> ()
      | _ -> Alcotest.fail "tail line does not parse back")
    kept (Trace.Tail.lines tail)

(* --- diff --- *)

let test_diff_identical () =
  let _, events = traced_run () in
  match Trace.Diff.events events events with
  | Trace.Diff.Identical n ->
      Alcotest.(check int) "count" (List.length events) n
  | Trace.Diff.Diverged _ -> Alcotest.fail "expected Identical"

let test_diff_mutated () =
  let _, events = traced_run () in
  let mutated =
    List.mapi
      (fun i e ->
        if i = 5 then Trace.Event.Corrupt { round = 99; pid = 0 } else e)
      events
  in
  match Trace.Diff.events events mutated with
  | Trace.Diff.Diverged d ->
      Alcotest.(check int) "first divergence index" 5 d.Trace.Diff.index;
      Alcotest.(check bool) "both sides present" true
        (d.left <> None && d.right <> None)
  | Trace.Diff.Identical _ -> Alcotest.fail "expected Diverged"

let test_diff_prefix () =
  let _, events = traced_run () in
  let shorter = List.filteri (fun i _ -> i < 7) events in
  match Trace.Diff.events events shorter with
  | Trace.Diff.Diverged d ->
      Alcotest.(check int) "diverges where the prefix ends" 7 d.Trace.Diff.index;
      Alcotest.(check bool) "right side ended" true (d.right = None)
  | Trace.Diff.Identical _ -> Alcotest.fail "expected Diverged"

(* --- quarantine integration: failures ship their trace tail --- *)

let test_breach_traced_in_failure_record () =
  let lines = [ {|{"ev":"round-start","round":7}|} ] in
  match
    Supervise.protect (fun () ->
        raise
          (Supervise.Breach_traced
             ( Supervise.Crashed { exn_text = "boom"; backtrace = "" },
               lines )))
  with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error f ->
      Alcotest.(check (list string)) "tail stored" lines f.Supervise.trace;
      let js = Supervise.failure_json f in
      Alcotest.(check bool) "record embeds the tail" true
        (let needle = {|"trace":[{"ev":"round-start","round":7}]|} in
         let nl = String.length needle and hl = String.length js in
         let rec at i =
           i + nl <= hl && (String.sub js i nl = needle || at (i + 1))
         in
         at 0)

let test_counterexample_trace_tail () =
  (* the fuzz failure path: re-run a violating protocol with a tail sink
     and get a non-empty last-K-rounds tail for the quarantine record *)
  let disagree : Sim.Protocol_intf.builder =
    (module struct
      let name = "disagree"
      let build _ = (module Test_harness.Selfish : Sim.Protocol_intf.S)
      let rounds_needed _ = 3
    end)
  in
  let entry =
    Harness.Registry.make ~model:Omission ~kind:Consensus
      ~max_t:(fun n -> n / 4) ~min_n:2 disagree
  in
  let scenario = Harness.Scenario.of_string "8/2/3/01010101/idle" in
  let tail = Trace.Tail.create ~rounds:3 () in
  let r = Harness.Runner.run_entry ~trace:(Trace.Tail.sink tail) entry scenario in
  Alcotest.(check bool) "the run violates a property" false
    (r.Harness.Runner.violations = []);
  Alcotest.(check bool) "tail is non-empty" true (Trace.Tail.lines tail <> [])

(* --- net events --- *)

(* The transport's link events (emitted by lib/net, never by the engine)
   must survive both codecs like every other event. *)
let net_events =
  [
    Trace.Event.Drop { round = 3; src = 1; dst = 2; attempt = 1 };
    Trace.Event.Dup { round = 3; src = 0; dst = 7; copies = 2 };
    Trace.Event.Delay { round = 4; src = 5; dst = 6; slots = 3 };
    Trace.Event.Retransmit { round = 4; src = 1; dst = 2; attempt = 2; backoff = 1 };
    Trace.Event.Retransmit { round = 9; src = 2; dst = 1; attempt = 5; backoff = 8 };
    Trace.Event.Ack { round = 9; src = 2; dst = 1; attempt = 5 };
    Trace.Event.Degrade { round = 12; src = 3; dst = 4; attempts = 9 };
  ]

let test_net_event_json () =
  List.iter
    (fun e ->
      match Trace.Event.of_json (Trace.Event.to_json e) with
      | Some e' ->
          if not (Trace.Event.equal e e') then
            Alcotest.failf "json roundtrip changed %s" (Trace.Event.to_json e)
      | None ->
          Alcotest.failf "json roundtrip lost %s" (Trace.Event.to_json e))
    net_events

let test_net_event_binary () =
  let buf = Buffer.create 256 in
  List.iter (Trace.Event.to_binary buf) net_events;
  let s = Buffer.contents buf in
  let pos = ref 0 in
  List.iter
    (fun e ->
      let e' = Trace.Event.of_binary s pos in
      if not (Trace.Event.equal e e') then
        Alcotest.failf "binary roundtrip changed %s" (Trace.Event.to_json e))
    net_events;
  Alcotest.(check int) "all bytes consumed" (String.length s) !pos

(* Regression for the --stable-json path: a metrics collector on a constant
   clock must fold the same run into byte-identical summaries — no
   Unix.gettimeofday can leak into stable output. *)
let test_stable_collector_deterministic () =
  let collect () =
    let sink, summary = Trace.Metrics.collector ~clock:(fun () -> 0.) () in
    let _ =
      Sim.Engine.run ~trace:sink echo (cfg ())
        ~adversary:(omission_adversary ()) ~inputs:(inputs 8)
    in
    summary ()
  in
  let a = collect () and b = collect () in
  Alcotest.(check bool) "summaries identical" true (a = b);
  Alcotest.(check (float 0.)) "no wall clock in stable summary" 0.
    a.Trace.Metrics.wall_total_s;
  List.iter
    (fun (r : Trace.Metrics.per_round) ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "round %d wall_s" r.Trace.Metrics.round)
        0. r.Trace.Metrics.wall_s)
    a.Trace.Metrics.per_round

(* --- off path --- *)

let test_off_path_no_sink_calls () =
  (* when no tracer is passed the engine must not emit anywhere — a
     poisoned global-ish sink proves no code path calls it *)
  let hits = ref 0 in
  let poison =
    Trace.Sink.make ~emit:(fun _ -> incr hits) ~close:(fun () -> ())
  in
  ignore poison;
  let _ = Sim.Engine.run echo (cfg ()) ~adversary:Sim.Adversary_intf.none
      ~inputs:(inputs 8)
  in
  Alcotest.(check int) "no events emitted" 0 !hits

let suite =
  [
    Alcotest.test_case "json codec roundtrips a real trace" `Quick
      test_json_roundtrip;
    Alcotest.test_case "binary codec roundtrips a real trace" `Quick
      test_binary_roundtrip;
    Alcotest.test_case "binary decode detects truncation" `Quick
      test_binary_truncated;
    Alcotest.test_case "trace files roundtrip in both formats" `Quick
      test_file_roundtrip;
    Alcotest.test_case "corrupt trace file raises" `Quick test_file_corrupt;
    Alcotest.test_case "tracing does not change the outcome" `Quick
      test_traced_outcome_unchanged;
    Alcotest.test_case "traces are byte-identical at any jobs width" `Quick
      test_stream_deterministic_across_jobs;
    Alcotest.test_case "send/omit/deliver accounting matches outcome" `Quick
      test_send_omit_deliver_accounting;
    Alcotest.test_case "metrics summary matches outcome counters" `Quick
      test_metrics_match_outcome;
    Alcotest.test_case "each deciding process emits one Decide" `Quick
      test_decides_once_per_process;
    Alcotest.test_case "ring keeps the newest events, bounded" `Quick
      test_ring_bounds;
    Alcotest.test_case "tail keeps exactly the last K rounds" `Quick
      test_tail_last_rounds;
    Alcotest.test_case "diff: identical traces" `Quick test_diff_identical;
    Alcotest.test_case "diff: pinpoints the first mutated event" `Quick
      test_diff_mutated;
    Alcotest.test_case "diff: detects a truncated trace" `Quick
      test_diff_prefix;
    Alcotest.test_case "quarantine records embed the trace tail" `Quick
      test_breach_traced_in_failure_record;
    Alcotest.test_case "violating run yields a counterexample tail" `Quick
      test_counterexample_trace_tail;
    Alcotest.test_case "no sink, no events (off path)" `Quick
      test_off_path_no_sink_calls;
    Alcotest.test_case "net link events roundtrip as json" `Quick
      test_net_event_json;
    Alcotest.test_case "net link events roundtrip as binary" `Quick
      test_net_event_binary;
    Alcotest.test_case "stable collector is wall-clock free" `Quick
      test_stable_collector_deterministic;
  ]
