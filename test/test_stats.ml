(* Tests for the statistics toolkit. *)

let feq = Alcotest.float 1e-9
let feq_loose = Alcotest.float 1e-2

let test_mean () =
  Alcotest.check feq "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |]);
  Alcotest.check feq "singleton" 7. (Stats.mean [| 7. |])

let test_variance () =
  Alcotest.check feq "variance" 2.5 (Stats.variance [| 1.; 2.; 3.; 4.; 5. |]);
  Alcotest.check feq "constant" 0. (Stats.variance [| 3.; 3.; 3. |]);
  (* a sample variance over fewer than two points is undefined — the old
     silent 0. masked degenerate benchmark summaries *)
  Alcotest.check_raises "singleton rejected"
    (Invalid_argument "Stats.variance: need at least two samples") (fun () ->
      ignore (Stats.variance [| 3. |]));
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Stats.variance: need at least two samples") (fun () ->
      ignore (Stats.variance [||]))

let test_stddev () =
  Alcotest.check feq "stddev" (sqrt 2.5) (Stats.stddev [| 1.; 2.; 3.; 4.; 5. |]);
  Alcotest.check_raises "singleton rejected"
    (Invalid_argument "Stats.variance: need at least two samples") (fun () ->
      ignore (Stats.stddev [| 3. |]))

let test_median () =
  Alcotest.check feq "odd" 3. (Stats.median [| 5.; 1.; 3. |]);
  Alcotest.check feq "even" 2.5 (Stats.median [| 4.; 1.; 2.; 3. |])

let test_quantile () =
  let xs = [| 10.; 20.; 30.; 40.; 50. |] in
  Alcotest.check feq "q0" 10. (Stats.quantile 0. xs);
  Alcotest.check feq "q1" 50. (Stats.quantile 1. xs);
  Alcotest.check feq "q0.25" 20. (Stats.quantile 0.25 xs);
  Alcotest.check feq "interpolated" 15. (Stats.quantile 0.125 xs)

let test_quantile_invalid () =
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Stats.quantile: q outside [0,1]") (fun () ->
      ignore (Stats.quantile 1.5 [| 1. |]));
  Alcotest.check_raises "empty"
    (Invalid_argument "Stats.quantile: empty") (fun () ->
      ignore (Stats.quantile 0.5 [||]));
  Alcotest.check_raises "NaN q rejected"
    (Invalid_argument "Stats.quantile: q outside [0,1]") (fun () ->
      ignore (Stats.quantile Float.nan [| 1.; 2. |]));
  Alcotest.check_raises "NaN input rejected"
    (Invalid_argument "Stats.quantile: NaN input") (fun () ->
      ignore (Stats.quantile 0.5 [| 1.; Float.nan; 3. |]))

let test_quantile_boundaries () =
  (* q at and next to the extremes must hit the end slots, never index
     past n-1 through float rounding of q * (n-1) *)
  let xs = Array.init 97 (fun i -> float_of_int i) in
  Alcotest.check feq "q=1 is max" 96. (Stats.quantile 1. xs);
  Alcotest.check feq "q=0 is min" 0. (Stats.quantile 0. xs);
  let below_one = Float.pred 1. in
  let v = Stats.quantile below_one xs in
  Alcotest.(check bool) "q just below 1 stays in range" true
    (v >= 95. && v <= 96.)

let test_linear_fit () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  let ys = Array.map (fun x -> (3. *. x) +. 1.) xs in
  let f = Stats.linear_fit xs ys in
  Alcotest.check feq_loose "slope" 3. f.Stats.slope;
  Alcotest.check feq_loose "intercept" 1. f.intercept;
  Alcotest.check feq_loose "r2" 1. f.r2

let test_linear_fit_noise () =
  let rand = Sim.Rand.create ~seed:4L () in
  let xs = Array.init 200 (fun i -> float_of_int i) in
  let ys =
    Array.map (fun x -> (2. *. x) -. 5. +. (Sim.Rand.float rand -. 0.5)) xs
  in
  let f = Stats.linear_fit xs ys in
  Alcotest.(check bool) "slope ~2" true (abs_float (f.Stats.slope -. 2.) < 0.01);
  Alcotest.(check bool) "r2 high" true (f.r2 > 0.99)

let test_loglog_fit () =
  let xs = [| 2.; 4.; 8.; 16.; 32. |] in
  let ys = Array.map (fun x -> 5. *. (x ** 1.5)) xs in
  let f = Stats.loglog_fit xs ys in
  Alcotest.check feq_loose "exponent" 1.5 f.Stats.slope

let test_growth_exponent () =
  let ns = [| 64.; 128.; 256.; 512.; 1024. |] in
  (* y = n^2 * log^3 n: dividing the polylog out should recover 2 *)
  let ys = Array.map (fun n -> n *. n *. (log n ** 3.)) ns in
  let e = Stats.growth_exponent ~log_power:3 ns ys in
  Alcotest.(check bool) "exponent ~2" true (abs_float (e -. 2.) < 0.01);
  (* without correction, the measured exponent is inflated *)
  let e' = Stats.growth_exponent ns ys in
  Alcotest.(check bool) "uncorrected exponent > 2" true (e' > 2.1)

let test_growth_exponent_degenerate () =
  (* n = 1 makes the polylog divisor log^k 1 = 0: must be rejected, not
     fed into loglog_fit as infinity *)
  Alcotest.check_raises "n = 1 with log_power > 0"
    (Invalid_argument "Stats.growth_exponent: n <= 1 with log_power > 0")
    (fun () ->
      ignore
        (Stats.growth_exponent ~log_power:2 [| 1.; 2.; 4. |] [| 1.; 2.; 4. |]));
  (* log_power = 0 divides by (log n)^0 = 1, so n = 1 stays legal there *)
  let e = Stats.growth_exponent [| 1.; 2.; 4. |] [| 2.; 4.; 8. |] in
  Alcotest.(check bool) "log_power 0 unaffected" true (abs_float (e -. 1.) < 0.01)

let qcheck_quantile_monotone =
  QCheck.Test.make ~name:"quantile is monotone in q" ~count:200
    QCheck.(pair (array_of_size Gen.(1 -- 40) (float_bound_exclusive 100.))
              (pair (float_bound_inclusive 1.) (float_bound_inclusive 1.)))
    (fun (xs, (q1, q2)) ->
      QCheck.assume (Array.length xs > 0);
      let lo = min q1 q2 and hi = max q1 q2 in
      Stats.quantile lo xs <= Stats.quantile hi xs +. 1e-9)

let qcheck_mean_bounds =
  QCheck.Test.make ~name:"mean within min/max" ~count:200
    QCheck.(array_of_size Gen.(1 -- 40) (float_bound_exclusive 100.))
    (fun xs ->
      QCheck.assume (Array.length xs > 0);
      let m = Stats.mean xs in
      let mn = Array.fold_left min xs.(0) xs in
      let mx = Array.fold_left max xs.(0) xs in
      m >= mn -. 1e-9 && m <= mx +. 1e-9)

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "variance" `Quick test_variance;
    Alcotest.test_case "stddev" `Quick test_stddev;
    Alcotest.test_case "median" `Quick test_median;
    Alcotest.test_case "quantile" `Quick test_quantile;
    Alcotest.test_case "quantile invalid" `Quick test_quantile_invalid;
    Alcotest.test_case "quantile boundaries" `Quick test_quantile_boundaries;
    Alcotest.test_case "growth exponent degenerate" `Quick
      test_growth_exponent_degenerate;
    Alcotest.test_case "linear fit exact" `Quick test_linear_fit;
    Alcotest.test_case "linear fit noisy" `Quick test_linear_fit_noise;
    Alcotest.test_case "loglog fit" `Quick test_loglog_fit;
    Alcotest.test_case "growth exponent" `Quick test_growth_exponent;
    QCheck_alcotest.to_alcotest qcheck_quantile_monotone;
    QCheck_alcotest.to_alcotest qcheck_mean_bounds;
  ]
