(* Bit-identity equivalence suite for the two engine paths.

   For every protocol in the registry, across a grid of (adversary
   strategy, seed, input pattern), the preferred path ({!Registry.build_any}
   — buffered [step_into] for ported protocols) must produce exactly the
   same outcome record and exactly the same JSONL trace, byte for byte, as
   the legacy list-based [step] run through the compatibility shim. Runs
   that abort with [Illegal_plan] (the grid deliberately includes
   over-budget strategies) must abort with the same message after the same
   trace prefix.

   Ported protocols additionally run through one reusable
   {!Sim.Engine.instance} twice, proving that cross-run buffer reuse leaks
   no state: the second run is byte-identical to a fresh one. *)

let grid_n entry = max entry.Harness.Registry.min_n 12
let grid_t entry ~n = max 1 (min 3 (entry.Harness.Registry.max_t n))

let input_patterns =
  [ ("alternating", fun i -> i mod 2); ("all-ones", fun _ -> 1) ]

let seeds = [ 1; 42 ]

let cfg_for entry ~seed =
  let n = grid_n entry in
  let t = grid_t entry ~n in
  let cfg0 = Sim.Config.make ~n ~t_max:t ~seed () in
  Sim.Config.make ~n ~t_max:t ~seed
    ~max_rounds:(Harness.Registry.rounds_bound entry cfg0)
    ()

(* One traced run: outcome (or the Illegal_plan message) plus the trace as
   JSON lines. The adversary strategy is rebuilt per run — some strategies
   close over mutable state, and sharing one across compared runs would
   let the first run's state bleed into the second. [strip] replaces the
   strategy with its {!Adversary.pointwise} form (compiled masks removed),
   putting the engine on the per-message predicate path. *)
let capture ?(strip = false) ~n ~adv_idx run =
  let adversary = List.nth (Adversary.standard_suite ~n) adv_idx in
  let adversary = if strip then Adversary.pointwise adversary else adversary in
  let sink, events = Trace.Sink.memory () in
  let res =
    try Ok (run ~adversary ~trace:sink)
    with Sim.Engine.Illegal_plan m -> Error m
  in
  (res, List.map Trace.Event.to_json (events ()))

(* Untraced run: outcome only. Without a tracer the engine takes the
   mask-blit fast path whenever the plan carries compiled verdicts, so
   comparing this against the stripped (predicate-path) run is what
   actually exercises the fast path's delivery, counters and legality
   scan. *)
let capture_untraced ?(strip = false) ~n ~adv_idx run =
  let adversary = List.nth (Adversary.standard_suite ~n) adv_idx in
  let adversary = if strip then Adversary.pointwise adversary else adversary in
  try Ok (run ~adversary) with Sim.Engine.Illegal_plan m -> Error m

let check_outcome_equal ~ctx a b =
  if a <> b then
    Alcotest.failf "%s: outcomes differ (%s vs %s)" ctx
      (match a with Ok _ -> "Ok" | Error m -> "Illegal_plan " ^ m)
      (match b with Ok _ -> "Ok" | Error m -> "Illegal_plan " ^ m)

let adversary_count =
  List.length (Adversary.standard_suite ~n:12)

let check_equal ~ctx (res_a, trace_a) (res_b, trace_b) =
  if res_a <> res_b then
    Alcotest.failf "%s: outcomes differ (%s vs %s)" ctx
      (match res_a with Ok _ -> "Ok" | Error m -> "Illegal_plan " ^ m)
      (match res_b with Ok _ -> "Ok" | Error m -> "Illegal_plan " ^ m);
  if trace_a <> trace_b then begin
    let rec first_diff i = function
      | a :: tl_a, b :: tl_b ->
          if a <> b then
            Alcotest.failf "%s: traces diverge at event %d:\n  %s\n  %s" ctx i
              a b
          else first_diff (i + 1) (tl_a, tl_b)
      | _ ->
          Alcotest.failf "%s: trace lengths differ (%d vs %d)" ctx
            (List.length trace_a) (List.length trace_b)
    in
    first_diff 0 (trace_a, trace_b)
  end

let test_entry entry () =
  let n = grid_n entry in
  List.iter
    (fun seed ->
      let cfg = cfg_for entry ~seed in
      List.iter
        (fun (pat_name, pat) ->
          let inputs = Array.init n pat in
          for adv_idx = 0 to adversary_count - 1 do
            let ctx =
              Printf.sprintf "%s seed=%d inputs=%s adv=%d"
                entry.Harness.Registry.id seed pat_name adv_idx
            in
            let legacy =
              capture ~n ~adv_idx (fun ~adversary ~trace ->
                  Sim.Engine.run ~trace
                    (Harness.Registry.build entry cfg)
                    cfg ~adversary ~inputs)
            in
            let preferred =
              capture ~n ~adv_idx (fun ~adversary ~trace ->
                  Sim.Engine.run_any ~trace
                    (Harness.Registry.build_any entry cfg)
                    cfg ~adversary ~inputs)
            in
            check_equal ~ctx:(ctx ^ " [shim vs preferred]") legacy preferred;
            (* same grid with compiled masks stripped: the traced general
               path must make identical per-message decisions whether it
               reads the mask bytes or calls the predicate *)
            let stripped =
              capture ~strip:true ~n ~adv_idx (fun ~adversary ~trace ->
                  Sim.Engine.run_any ~trace
                    (Harness.Registry.build_any entry cfg)
                    cfg ~adversary ~inputs)
            in
            check_equal ~ctx:(ctx ^ " [mask vs predicate]") legacy stripped;
            (* untraced: compiled plans take the mask-blit fast path,
               stripped ones the general path — outcomes must agree *)
            let fast =
              capture_untraced ~n ~adv_idx (fun ~adversary ->
                  Sim.Engine.run_any
                    (Harness.Registry.build_any entry cfg)
                    cfg ~adversary ~inputs)
            in
            let general =
              capture_untraced ~strip:true ~n ~adv_idx (fun ~adversary ->
                  Sim.Engine.run_any
                    (Harness.Registry.build_any entry cfg)
                    cfg ~adversary ~inputs)
            in
            check_outcome_equal ~ctx:(ctx ^ " [fast vs general]") fast general;
            (* tracing must not perturb the run: the untraced fast-path
               outcome equals the traced legacy one, Illegal_plan message
               included *)
            check_outcome_equal ~ctx:(ctx ^ " [fast vs legacy]") (fst legacy)
              fast;
            match entry.Harness.Registry.buffered with
            | None -> ()
            | Some bf ->
                (* Cross-run reuse: the same instance twice, each run
                   byte-identical to the fresh legacy run. *)
                let inst = Sim.Engine.instance (bf cfg) cfg in
                let via_instance () =
                  capture ~n ~adv_idx (fun ~adversary ~trace ->
                      Sim.Engine.run_instance ~trace inst ~adversary ~inputs)
                in
                check_equal ~ctx:(ctx ^ " [instance run 1]") legacy
                  (via_instance ());
                check_equal ~ctx:(ctx ^ " [instance run 2]") legacy
                  (via_instance ())
          done)
        input_patterns)
    seeds

let suite =
  List.map
    (fun entry ->
      Alcotest.test_case
        (Printf.sprintf "%s: buffered path bit-identical to shim"
           entry.Harness.Registry.id)
        `Quick (test_entry entry))
    Harness.Registry.all
