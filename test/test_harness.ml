(* Property-based tests for the fuzzing harness: the strategy codec, the
   crash-compatible sub-algebra, compiled-strategy legality, differential
   conformance across the whole registry, and the failure minimiser. All
   QCheck tests run from a fixed random state so CI is deterministic. *)

let qcheck t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xace5 |]) t

(* --- codec --- *)

let qcheck_strategy_roundtrip =
  QCheck.Test.make ~name:"strategy codec roundtrips" ~count:300
    (Harness.Qgen.strategy ~n:16 ())
    (fun s -> Harness.Strategy.(of_string (to_string s)) = s)

let qcheck_scenario_roundtrip =
  QCheck.Test.make ~name:"scenario codec roundtrips" ~count:200
    (Harness.Qgen.scenario ())
    (fun s -> Harness.Scenario.(of_string (to_string s)) = s)

let test_codec_rejects_garbage () =
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        (Printf.sprintf "%S rejected" bad)
        true
        (try
           ignore (Harness.Scenario.of_string bad);
           false
         with Harness.Scenario.Parse_error _ -> true))
    [
      "";
      "5/1/1/00011";
      "5/1/1/0001/idle";
      "5/1/1/00012/idle";
      "5/9/1/00011/idle";
      "5/1/1/00011/strike(p0)";
      "5/1/1/00011/blast(p0,out)";
    ]

(* --- sub-algebra and shrinking --- *)

let qcheck_crash_subalgebra =
  QCheck.Test.make ~name:"crash-mode generator stays crash-compatible"
    ~count:300
    (Harness.Qgen.scenario ~crash_bias:1.0 ())
    (fun s -> Harness.Strategy.crash_compatible s.Harness.Scenario.strategy)

let qcheck_strategy_shrink_decreases =
  QCheck.Test.make ~name:"strategy shrink strictly decreases size" ~count:300
    (Harness.Qgen.strategy ~n:16 ())
    (fun s ->
      List.for_all
        (fun c -> Harness.Strategy.size c < Harness.Strategy.size s)
        (Harness.Strategy.shrink s))

let test_crash_compatible_examples () =
  let check str expect =
    Alcotest.(check bool) str expect
      (Harness.Strategy.crash_compatible (Harness.Strategy.of_string str))
  in
  check "strike(low1,out)" true;
  check "strike(low1,all)" true;
  check "from(3,strike(p2,out))" true;
  check "strike(low1,in)" false;
  check "strike(low1,half)" false;
  check "strike(low1,to1)" false;
  check "until(5,strike(low1,out))" false;
  check "seq[strike(p0,out);idle]" false

(* --- differential conformance: the tentpole property ---

   Every registered protocol, on any generated scenario inside its fault
   model, satisfies its spec; every run (in model or not) satisfies the
   engine metric invariants; and no generated strategy ever produces an
   illegal plan. One property exercises all of it. *)

let qcheck_conformance =
  QCheck.Test.make ~name:"registry conforms on generated scenarios" ~count:40
    (Harness.Qgen.scenario ~max_n:24 ())
    (fun s ->
      let report = Harness.Runner.run ~include_out_of_model:true s in
      match Harness.Runner.report_violations report with
      | [] -> true
      | v :: _ ->
          QCheck.Test.fail_reportf "%a on %a" Harness.Runner.pp_violation v
            Harness.Scenario.pp s)

(* --- failure detection and minimisation ---

   A deliberately broken protocol — everyone decides its own input
   immediately — must be caught by the fuzzing loop, shrunk to a smaller
   scenario that still reproduces the same violation, and the printed
   replay command must reference the shrunk scenario. *)

module Selfish = struct
  type state = { input : int; mutable decision : int option }
  type msg = unit

  let name = "selfish"
  let init _cfg ~pid:_ ~input = { input; decision = None }

  let step _cfg st ~round ~inbox:_ ~rand:_ =
    if round = 1 then st.decision <- Some st.input;
    (st, [])

  let observe st =
    {
      Sim.View.candidate = Some st.input;
      operative = true;
      decided = st.decision;
    }

  let msg_bits () = 1
  let msg_hint () = None
end

let selfish_entry =
  Harness.Registry.make ~model:Omission ~kind:Consensus
    ~max_t:(fun n -> n / 4)
    ~min_n:2
    (module struct
      let name = "selfish"
      let build _ = (module Selfish : Sim.Protocol_intf.S)
      let rounds_needed _ = 3
    end : Sim.Protocol_intf.BUILDER)

let test_broken_protocol_caught () =
  match Harness.Fuzz.run ~protocols:[ selfish_entry ] ~count:50 ~seed:3 () with
  | Ok _ -> Alcotest.fail "fuzzer missed the broken protocol"
  | Error (f, _) ->
      Alcotest.(check string) "agreement violated" "agreement"
        f.Harness.Fuzz.violation.property;
      Alcotest.(check bool) "shrunk is no larger" true
        (Harness.Scenario.measure f.shrunk
        <= Harness.Scenario.measure f.original);
      (* the shrunk scenario still reproduces the same violation *)
      let report = Harness.Runner.run ~protocols:[ selfish_entry ] f.shrunk in
      Alcotest.(check bool) "shrunk reproduces" true
        (List.exists
           (fun v -> v.Harness.Runner.property = "agreement")
           (Harness.Runner.report_violations report));
      (* and the replay one-liner names exactly the shrunk scenario *)
      let cmd = Harness.Fuzz.replay_command f.shrunk in
      let sub = Harness.Scenario.to_string f.shrunk in
      let contains hay needle =
        let lh = String.length hay and ln = String.length needle in
        let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "replay command mentions scenario" true
        (contains cmd sub)

(* --- registry sanity --- *)

let test_registry_complete () =
  let ids = Harness.Registry.ids () in
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " registered") true (List.mem id ids))
    [
      "flood";
      "early-stopping";
      "bjbo";
      "crash-sub";
      "dolev-strong";
      "phase-king";
      "optimal";
      "param-x2";
      "operative-broadcast";
    ];
  Alcotest.(check bool) "find hit" true
    (Result.is_ok (Harness.Registry.find "optimal"));
  (match Harness.Registry.find "no-such-protocol" with
  | Ok _ -> Alcotest.fail "find miss must be Error"
  | Error msg ->
      Alcotest.(check bool) "error names the id" true
        (let sub = {|"no-such-protocol"|} in
         let rec has i =
           i + String.length sub <= String.length msg
           && (String.sub msg i (String.length sub) = sub || has (i + 1))
         in
         has 0);
      List.iter
        (fun id ->
          Alcotest.(check bool)
            (Printf.sprintf "error lists %s" id)
            true
            (let rec has i =
               i + String.length id <= String.length msg
               && (String.sub msg i (String.length id) = id || has (i + 1))
             in
             has 0))
        (Harness.Registry.ids ()))

let test_runner_determinism () =
  let s =
    Harness.Scenario.of_string "9/2/77/010110110/again(strike(rnd2,p50))"
  in
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (e.Harness.Registry.id ^ " deterministic")
        true
        (Harness.Runner.determinism_violation e s = None))
    Harness.Registry.all

let suite =
  [
    qcheck qcheck_strategy_roundtrip;
    qcheck qcheck_scenario_roundtrip;
    Alcotest.test_case "codec rejects garbage" `Quick test_codec_rejects_garbage;
    qcheck qcheck_crash_subalgebra;
    qcheck qcheck_strategy_shrink_decreases;
    Alcotest.test_case "crash-compatible examples" `Quick
      test_crash_compatible_examples;
    qcheck qcheck_conformance;
    Alcotest.test_case "broken protocol caught and shrunk" `Quick
      test_broken_protocol_caught;
    Alcotest.test_case "registry complete" `Quick test_registry_complete;
    Alcotest.test_case "replay determinism per protocol" `Quick
      test_runner_determinism;
  ]
