(* Contract tests for the adversary strategies: budgets respected, plans
   legal (the engine would raise otherwise), and each strategy does what
   its name says. *)

let run_bjbo ?(n = 64) ?(t = 8) ?(seed = 1) adversary =
  let cfg = Sim.Config.make ~n ~t_max:t ~seed ~max_rounds:2000 () in
  let proto = Consensus.Bjbo.protocol cfg in
  let inputs = Array.init n (fun i -> i mod 2) in
  Sim.Engine.run proto cfg ~adversary ~inputs

let test_vote_splitter_spends_budget () =
  let o = run_bjbo (Adversary.vote_splitter ()) in
  Alcotest.(check int) "full budget spent" 8 o.Sim.Engine.faults_used;
  Alcotest.(check bool) "messages omitted" true (o.messages_omitted > 0);
  Alcotest.(check bool) "still decides" true
    (Sim.Engine.all_nonfaulty_decided o)

let test_vote_splitter_slack () =
  (* with slack it kills less *)
  let o0 = run_bjbo (Adversary.vote_splitter ~slack:0 ()) in
  let o5 = run_bjbo (Adversary.vote_splitter ~slack:1000 ()) in
  Alcotest.(check bool) "slack reduces kills" true
    (o5.Sim.Engine.faults_used <= o0.Sim.Engine.faults_used)

let test_crash_schedule_clamped () =
  (* asks for 3 victims with budget 1: must clamp, not raise *)
  let adversary = Adversary.crash_schedule [ (1, [ 0; 1; 2 ]) ] in
  let o = run_bjbo ~t:1 adversary in
  Alcotest.(check int) "clamped to budget" 1 o.Sim.Engine.faults_used

let test_crash_schedule_timing () =
  let adversary = Adversary.crash_schedule [ (2, [ 5 ]); (4, [ 6 ]) ] in
  let o = run_bjbo ~t:4 adversary in
  Alcotest.(check bool) "both victims corrupted" true
    (o.Sim.Engine.faulty.(5) && o.faulty.(6));
  Alcotest.(check int) "only scheduled victims" 2 o.faults_used

let test_random_omission_budget () =
  let o = run_bjbo (Adversary.random_omission ~p_omit:0.9) in
  Alcotest.(check int) "corrupts the full budget at once" 8
    o.Sim.Engine.faults_used

let test_random_omission_zero_p () =
  let o = run_bjbo (Adversary.random_omission ~p_omit:0.) in
  Alcotest.(check int) "p=0 omits nothing" 0 o.Sim.Engine.messages_omitted

let test_staggered_crash_rate () =
  let o = run_bjbo ~t:6 (Adversary.staggered_crash ~per_round:2) in
  Alcotest.(check int) "budget fully spent" 6 o.Sim.Engine.faults_used

let test_group_killer_target () =
  (* against Algorithm 1 at a size where t covers half a group *)
  let n = 100 in
  (* group size 10, majority 6; allow t = 6 *)
  let t = 3 in
  let cfg = Sim.Config.make ~n ~t_max:t ~seed:1 ~max_rounds:4000 () in
  let proto = Consensus.Optimal_omissions.protocol cfg in
  let inputs = Array.init n (fun i -> i mod 2) in
  let o = Sim.Engine.run proto cfg ~adversary:(Adversary.group_killer ()) ~inputs in
  (* victims are the first pids (group 0 is contiguous) *)
  Alcotest.(check int) "corrupts within budget" t o.Sim.Engine.faults_used;
  for pid = 0 to t - 1 do
    Alcotest.(check bool) "victims in group 0" true o.faulty.(pid)
  done;
  Alcotest.(check bool) "consensus survives" true
    (Sim.Engine.agreed_decision o <> None)

let test_eclipse_targets_victim_links () =
  let n = 64 in
  let victim = 9 in
  let o = run_bjbo ~n ~t:8 (Adversary.eclipse ~victim) in
  (* the victim itself must never be corrupted by eclipse *)
  Alcotest.(check bool) "victim left non-faulty" false
    o.Sim.Engine.faulty.(victim);
  Alcotest.(check bool) "neighbors corrupted" true (o.faults_used > 0)

let test_standard_suite_runs () =
  let suite = Adversary.standard_suite ~n:64 in
  Alcotest.(check bool) "several strategies" true (List.length suite >= 6);
  List.iter
    (fun adversary ->
      let o = run_bjbo adversary in
      Alcotest.(check bool)
        ("legal and consensus-preserving: " ^ adversary.Sim.Adversary_intf.name)
        true
        (Sim.Engine.agreed_decision o <> None))
    suite

(* --- Bytes-snapshot refactor equality (random_omission / chaotic) ---

   The fault-set probe inside the randomized omission predicates moved
   from a Hashtbl to a per-pid Bytes flag. The refactor must be invisible
   bit-for-bit: the && short-circuit means the predicate draws one random
   float exactly when an endpoint is faulty, so any change to the probe's
   answer (or its evaluation order) shifts the whole downstream random
   stream. Re-create the OLD Hashtbl-probing implementations here and
   compare full traced runs. *)

let old_random_omission ~p_omit =
  {
    Sim.Adversary_intf.name = Printf.sprintf "random-omission(p=%.2f)" p_omit;
    create =
      (fun cfg rand ->
        let faulty_set = Hashtbl.create 16 in
        let chosen = ref false in
        fun view ->
          let new_faults =
            if !chosen then []
            else begin
              chosen := true;
              let perm = Array.init cfg.Sim.Config.n (fun i -> i) in
              Sim.Rand.shuffle rand perm;
              let victims =
                Array.to_list (Array.sub perm 0 cfg.Sim.Config.t_max)
              in
              List.iter (fun pid -> Hashtbl.replace faulty_set pid ()) victims;
              victims
            end
          in
          ignore view;
          Sim.View.pointwise ~new_faults
            ~omit:(fun src dst ->
              (Hashtbl.mem faulty_set src || Hashtbl.mem faulty_set dst)
              && Sim.Rand.float rand < p_omit));
  }

let old_chaotic ?(corrupt_rate = 0.3) ?(omit_rate = 0.5) () =
  {
    Sim.Adversary_intf.name = "chaotic";
    create =
      (fun cfg rand ->
        let faulty_set = Hashtbl.create 16 in
        fun view ->
          let new_faults =
            if
              view.Sim.View.faults_used < cfg.Sim.Config.t_max
              && Sim.Rand.float rand < corrupt_rate
            then begin
              let live = ref [] in
              for pid = cfg.Sim.Config.n - 1 downto 0 do
                if not view.faulty.(pid) then live := pid :: !live
              done;
              match !live with
              | [] -> []
              | l ->
                  let arr = Array.of_list l in
                  let victim =
                    arr.(Sim.Rand.int_below rand (Array.length arr))
                  in
                  Hashtbl.replace faulty_set victim ();
                  [ victim ]
            end
            else []
          in
          Sim.View.pointwise ~new_faults
            ~omit:(fun src dst ->
              (Hashtbl.mem faulty_set src || Hashtbl.mem faulty_set dst)
              && Sim.Rand.float rand < omit_rate));
  }

let traced_run ~n ~t ~seed adversary =
  let cfg = Sim.Config.make ~n ~t_max:t ~seed ~max_rounds:2000 () in
  let proto = Consensus.Bjbo.protocol cfg in
  let inputs = Array.init n (fun i -> i mod 2) in
  let sink, events = Trace.Sink.memory () in
  let o = Sim.Engine.run ~trace:sink proto cfg ~adversary ~inputs in
  (o, List.map Trace.Event.to_json (events ()))

let qcheck t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xadf |]) t

let qcheck_random_omission_snapshot =
  QCheck.Test.make ~name:"random_omission: Bytes probe = old Hashtbl probe"
    ~count:20
    QCheck.(pair (int_range 1 1000) (int_range 0 100))
    (fun (seed, p100) ->
      let p_omit = float_of_int p100 /. 100. in
      traced_run ~n:24 ~t:5 ~seed (Adversary.random_omission ~p_omit)
      = traced_run ~n:24 ~t:5 ~seed (old_random_omission ~p_omit))

let qcheck_chaotic_snapshot =
  QCheck.Test.make ~name:"chaotic: Bytes probe = old Hashtbl probe" ~count:20
    QCheck.(int_range 1 1000)
    (fun seed ->
      traced_run ~n:24 ~t:5 ~seed (Adversary.chaotic ())
      = traced_run ~n:24 ~t:5 ~seed (old_chaotic ()))

(* --- mask-vs-predicate plan equivalence on random fault sets ---

   A hand-built crash-style adversary over an arbitrary fault set, in two
   forms: compiled (Omit_all per crashed sender) and pointwise. Both runs
   (traced, so the general path consults the mask bytes message by
   message) must be byte-identical. *)

let masked_crash ~victims =
  {
    Sim.Adversary_intf.name = "masked-crash";
    create =
      (fun cfg _rand ->
        let crashed_b = Bytes.make cfg.Sim.Config.n '\000' in
        let done_ = ref false in
        fun _view ->
          let new_faults =
            if !done_ then []
            else begin
              done_ := true;
              List.iter (fun pid -> Bytes.set crashed_b pid '\001') victims;
              victims
            end
          in
          {
            Sim.View.new_faults;
            omit = (fun src _dst -> Bytes.get crashed_b src <> '\000');
            compiled =
              Some
                (fun src ->
                  if Bytes.get crashed_b src <> '\000' then Sim.View.Omit_all
                  else Sim.View.Deliver_all);
          });
  }

let qcheck_mask_equals_predicate =
  QCheck.Test.make ~name:"compiled masks = pointwise predicate (random faults)"
    ~count:30
    QCheck.(pair (int_range 1 1000) (list_of_size (Gen.return 5) (int_range 0 23)))
    (fun (seed, pids) ->
      let victims = List.sort_uniq compare pids in
      let t = max 1 (List.length victims) in
      traced_run ~n:24 ~t ~seed (masked_crash ~victims)
      = traced_run ~n:24 ~t ~seed
          (Adversary.pointwise (masked_crash ~victims)))

let suite =
  [
    Alcotest.test_case "vote splitter spends budget" `Quick
      test_vote_splitter_spends_budget;
    Alcotest.test_case "vote splitter slack" `Quick test_vote_splitter_slack;
    Alcotest.test_case "crash schedule clamped" `Quick
      test_crash_schedule_clamped;
    Alcotest.test_case "crash schedule timing" `Quick
      test_crash_schedule_timing;
    Alcotest.test_case "random omission budget" `Quick
      test_random_omission_budget;
    Alcotest.test_case "random omission p=0" `Quick test_random_omission_zero_p;
    Alcotest.test_case "staggered crash rate" `Quick test_staggered_crash_rate;
    Alcotest.test_case "group killer target" `Quick test_group_killer_target;
    Alcotest.test_case "eclipse spares the victim" `Quick
      test_eclipse_targets_victim_links;
    Alcotest.test_case "standard suite" `Quick test_standard_suite_runs;
    qcheck qcheck_random_omission_snapshot;
    qcheck qcheck_chaotic_snapshot;
    qcheck qcheck_mask_equals_predicate;
  ]
