(* Tests for the baseline protocols: BJBO biased-majority (crash model) and
   flooding min-consensus (crash model). *)

let run_proto proto_of ?(n = 48) ?t ?(seed = 1) ?(max_rounds = 2000)
    ?(adversary = Sim.Adversary_intf.none) inputs =
  let t = match t with Some t -> t | None -> max 1 (n / 8) in
  let cfg = Sim.Config.make ~n ~t_max:t ~seed ~max_rounds () in
  Sim.Engine.run (proto_of cfg) cfg ~adversary ~inputs

let run_bjbo = run_proto (fun cfg -> Consensus.Bjbo.protocol cfg)
let run_flood = run_proto (fun cfg -> Consensus.Flood.protocol cfg)

let check ~what ~inputs o =
  Alcotest.(check bool) (what ^ ": all decided") true
    (Sim.Engine.all_nonfaulty_decided o);
  match Sim.Engine.agreed_decision o with
  | None -> Alcotest.fail (what ^ ": agreement violated")
  | Some v ->
      Alcotest.(check bool) (what ^ ": weak validity") true
        (Array.exists (fun b -> b = v) inputs);
      v

let mixed n = Array.init n (fun i -> i mod 2)

(* --- BJBO --- *)

let test_bjbo_unanimous () =
  List.iter
    (fun b ->
      let inputs = Array.make 48 b in
      let o = run_bjbo inputs in
      Alcotest.(check int) "validity" b (check ~what:"bjbo" ~inputs o);
      Alcotest.(check (option int)) "fast decision" (Some 2) o.decided_round;
      Alcotest.(check int) "no randomness" 0 o.rand_calls)
    [ 0; 1 ]

let test_bjbo_mixed_no_adversary () =
  List.iter
    (fun seed ->
      let inputs = mixed 48 in
      let o = run_bjbo ~seed inputs in
      ignore (check ~what:"bjbo mixed" ~inputs o))
    [ 1; 2; 3; 4; 5 ]

let test_bjbo_crash_adversaries () =
  List.iter
    (fun adversary ->
      List.iter
        (fun seed ->
          let inputs = mixed 48 in
          let o = run_bjbo ~seed ~adversary inputs in
          ignore
            (check
               ~what:("bjbo vs " ^ adversary.Sim.Adversary_intf.name)
               ~inputs o))
        [ 1; 2 ])
    [
      Adversary.crash_schedule [ (1, [ 0; 1 ]); (2, [ 2 ]) ];
      Adversary.staggered_crash ~per_round:2;
      Adversary.vote_splitter ();
    ]

let test_bjbo_splitter_stalls () =
  (* the vote splitter must actually slow the run down relative to the
     adversary-free baseline *)
  let inputs = mixed 64 in
  let free = run_bjbo ~n:64 ~t:8 inputs in
  let stalled =
    run_bjbo ~n:64 ~t:8 ~adversary:(Adversary.vote_splitter ()) inputs
  in
  let r o =
    match o.Sim.Engine.decided_round with Some r -> r | None -> max_int
  in
  ignore (check ~what:"stalled still decides" ~inputs stalled);
  Alcotest.(check bool)
    (Printf.sprintf "stalled %d >= free %d" (r stalled) (r free))
    true
    (r stalled >= r free)

let test_bjbo_coin_starved () =
  (* with coin_set_size = k only pids < k may flip *)
  List.iter
    (fun k ->
      let n = 48 in
      let cfg = Sim.Config.make ~n ~t_max:4 ~seed:2 ~max_rounds:2000 () in
      let proto = Consensus.Bjbo.protocol ~coin_set_size:k cfg in
      let inputs = mixed n in
      let o =
        Sim.Engine.run proto cfg ~adversary:(Adversary.vote_splitter ())
          ~inputs
      in
      ignore (check ~what:(Printf.sprintf "k=%d" k) ~inputs o);
      Alcotest.(check bool)
        (Printf.sprintf "rand calls %d bounded by k*T" o.rand_calls)
        true
        (o.rand_calls <= k * o.rounds_total))
    [ 0; 1; 4; 48 ]

(* --- flooding --- *)

let test_flood_no_adversary () =
  let inputs = mixed 48 in
  let o = run_flood inputs in
  Alcotest.(check int) "min decided" 0 (check ~what:"flood" ~inputs o)

let test_flood_all_ones () =
  let inputs = Array.make 48 1 in
  let o = run_flood inputs in
  Alcotest.(check int) "validity 1" 1 (check ~what:"flood" ~inputs o)

let test_flood_single_zero_crashed_late () =
  (* the classic t+1-round necessity scenario: the only 0-holder is crashed
     mid-broadcast; agreement must still hold (on either value) *)
  let n = 16 in
  let inputs = Array.init n (fun i -> if i = 0 then 0 else 1) in
  let adversary =
    {
      Sim.Adversary_intf.name = "partial-crash";
      create =
        (fun _ _ view ->
          if view.Sim.View.round = 1 then
            (* pid 0 delivers its 0 only to pid 1, then dies *)
            Sim.View.pointwise ~new_faults:[ 0 ]
              ~omit:(fun src dst -> src = 0 && dst <> 1)
          else
            Sim.View.pointwise ~new_faults:[] ~omit:(fun src _ -> src = 0));
    }
  in
  let o = run_flood ~n ~t:3 ~adversary inputs in
  ignore (check ~what:"flood chain" ~inputs o)

let test_flood_round_complexity () =
  let n = 32 in
  List.iter
    (fun t ->
      let inputs = mixed n in
      let o = run_flood ~n ~t inputs in
      Alcotest.(check (option int))
        (Printf.sprintf "decides at t+2 = %d" (t + 2))
        (Some (t + 2)) o.Sim.Engine.decided_round)
    [ 1; 3; 7 ]

let test_flood_message_bound () =
  (* each process broadcasts each value at most once: <= 2 n^2 messages *)
  let n = 32 in
  let o = run_flood ~n ~t:5 (mixed n) in
  Alcotest.(check bool) "message bound" true
    (o.messages_sent <= 2 * n * n)

let test_flood_quadratic_floor () =
  (* the Omega(t^2) message lower bound of [1] is respected by the
     baseline: with mixed inputs it floods ~2 n (n-1) messages *)
  let n = 32 in
  let t = n / 4 in
  let o = run_flood ~n ~t (mixed n) in
  Alcotest.(check bool) "messages >= t^2" true (o.messages_sent >= t * t)

let suite =
  [
    Alcotest.test_case "bjbo unanimity" `Quick test_bjbo_unanimous;
    Alcotest.test_case "bjbo mixed" `Quick test_bjbo_mixed_no_adversary;
    Alcotest.test_case "bjbo crash adversaries" `Quick
      test_bjbo_crash_adversaries;
    Alcotest.test_case "bjbo splitter stalls" `Quick test_bjbo_splitter_stalls;
    Alcotest.test_case "bjbo coin starvation" `Quick test_bjbo_coin_starved;
    Alcotest.test_case "flood basic" `Quick test_flood_no_adversary;
    Alcotest.test_case "flood validity" `Quick test_flood_all_ones;
    Alcotest.test_case "flood late chain" `Quick
      test_flood_single_zero_crashed_late;
    Alcotest.test_case "flood round complexity" `Quick
      test_flood_round_complexity;
    Alcotest.test_case "flood message bound" `Quick test_flood_message_bound;
    Alcotest.test_case "flood quadratic floor" `Quick
      test_flood_quadratic_floor;
  ]

(* --- early stopping --- *)

let run_es = run_proto (fun cfg -> Consensus.Early_stopping.protocol cfg)

let test_es_no_faults_fast () =
  let inputs = mixed 48 in
  let o = run_es ~t:10 inputs in
  Alcotest.(check int) "decides min" 0 (check ~what:"es" ~inputs o);
  (* f = 0: decision at the first clean round, independent of t *)
  Alcotest.(check (option int)) "fast decision" (Some 3) o.decided_round

let test_es_early_stopping_rounds () =
  (* f actual crashes => ~f+3 rounds, well below the t+2 worst case *)
  let n = 48 and t = 12 in
  List.iter
    (fun f ->
      let schedule = List.init f (fun i -> (i + 1, [ i ])) in
      let inputs = mixed n in
      let o = run_es ~n ~t ~adversary:(Adversary.crash_schedule schedule) inputs in
      ignore (check ~what:"es rounds" ~inputs o);
      let r = match o.decided_round with Some r -> r | None -> max_int in
      Alcotest.(check bool)
        (Printf.sprintf "f=%d decides at %d <= f+4 = %d" f r (f + 4))
        true
        (r <= f + 4))
    [ 0; 1; 3; 6 ]

let test_es_validity () =
  List.iter
    (fun b ->
      let inputs = Array.make 32 b in
      let o = run_es ~n:32 inputs in
      Alcotest.(check int) "validity" b (check ~what:"es" ~inputs o))
    [ 0; 1 ]

let test_es_crash_grid () =
  List.iter
    (fun adversary ->
      List.iter
        (fun seed ->
          let inputs = mixed 40 in
          let o = run_es ~n:40 ~t:10 ~seed ~adversary inputs in
          ignore
            (check
               ~what:("es vs " ^ adversary.Sim.Adversary_intf.name)
               ~inputs o))
        [ 1; 2; 3 ])
    [
      Adversary.staggered_crash ~per_round:1;
      Adversary.staggered_crash ~per_round:3;
      Adversary.vote_splitter ();
      Adversary.crash_schedule [ (1, [ 0; 1 ]); (2, [ 2 ]); (3, [ 3; 4 ]) ];
    ]

let test_es_mid_round_crash_chain () =
  (* the minimum travels through a crashing chain: deciders must not
     outrun it (the clean-round argument) *)
  let n = 16 in
  let inputs = Array.init n (fun i -> if i = 0 then 0 else 1) in
  let adversary =
    {
      Sim.Adversary_intf.name = "chain";
      create =
        (fun _ _ view ->
          match view.Sim.View.round with
          | 1 ->
              Sim.View.pointwise ~new_faults:[ 0 ]
                ~omit:(fun src dst -> src = 0 && dst <> 1)
          | 2 ->
              Sim.View.pointwise ~new_faults:[ 1 ]
                ~omit:(fun src dst -> src <= 1 && not (src = 1 && dst = 2))
          | _ ->
              Sim.View.pointwise ~new_faults:[] ~omit:(fun src _ -> src <= 1));
    }
  in
  let o = run_es ~n ~t:4 ~adversary inputs in
  ignore (check ~what:"es chain" ~inputs o)

let suite =
  suite
  @ [
      Alcotest.test_case "early-stopping fast path" `Quick
        test_es_no_faults_fast;
      Alcotest.test_case "early-stopping f+O(1) rounds" `Quick
        test_es_early_stopping_rounds;
      Alcotest.test_case "early-stopping validity" `Quick test_es_validity;
      Alcotest.test_case "early-stopping crash grid" `Quick test_es_crash_grid;
      Alcotest.test_case "early-stopping crash chain" `Quick
        test_es_mid_round_crash_chain;
    ]
