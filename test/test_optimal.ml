(* Integration tests for OptimalOmissionsConsensus (Algorithm 1):
   agreement, validity, termination, the operative-set bound (Lemma 7),
   randomness accounting, and determinism — across the adversary suite. *)

let run ?(n = 64) ?t ?(seed = 1) ?(adversary = Sim.Adversary_intf.none)
    ?(params = Consensus.Params.default) inputs =
  let t = match t with Some t -> t | None -> max 1 (n / 31) in
  let cfg = Sim.Config.make ~n ~t_max:t ~seed ~max_rounds:4000 () in
  let proto = Consensus.Optimal_omissions.protocol ~params cfg in
  Sim.Engine.run proto cfg ~adversary ~inputs

let check_consensus ~what ~inputs o =
  Alcotest.(check bool)
    (what ^ ": all non-faulty decided")
    true
    (Sim.Engine.all_nonfaulty_decided o);
  match Sim.Engine.agreed_decision o with
  | None -> Alcotest.fail (what ^ ": agreement violated")
  | Some v ->
      (* weak validity: the decision is some process's input *)
      Alcotest.(check bool)
        (what ^ ": decision is an input")
        true
        (Array.exists (fun b -> b = v) inputs);
      v

let mixed n = Array.init n (fun i -> i mod 2)
let thirds n = Array.init n (fun i -> if i mod 3 = 0 then 1 else 0)

let test_no_adversary_mixed () =
  let inputs = mixed 64 in
  let o = run inputs in
  ignore (check_consensus ~what:"mixed" ~inputs o)

let test_validity_unanimous () =
  List.iter
    (fun b ->
      let inputs = Array.make 64 b in
      let o = run inputs in
      let v = check_consensus ~what:"unanimous" ~inputs o in
      Alcotest.(check int) "validity" b v;
      Alcotest.(check int) "unanimity uses no randomness" 0 o.rand_calls)
    [ 0; 1 ]

let test_validity_under_all_adversaries () =
  List.iter
    (fun adversary ->
      List.iter
        (fun b ->
          let inputs = Array.make 50 b in
          let o = run ~n:50 ~adversary inputs in
          let v =
            check_consensus
              ~what:("validity vs " ^ adversary.Sim.Adversary_intf.name)
              ~inputs o
          in
          Alcotest.(check int) "validity" b v)
        [ 0; 1 ])
    (Adversary.standard_suite ~n:50)

let test_agreement_under_all_adversaries () =
  List.iter
    (fun adversary ->
      List.iter
        (fun seed ->
          let inputs = mixed 64 in
          let o = run ~seed ~adversary inputs in
          ignore
            (check_consensus
               ~what:
                 (Printf.sprintf "agreement vs %s (seed %d)"
                    adversary.Sim.Adversary_intf.name seed)
               ~inputs o))
        [ 1; 2; 3 ])
    (Adversary.standard_suite ~n:64)

let test_eclipse_adversary () =
  let inputs = thirds 64 in
  let o = run ~adversary:(Adversary.eclipse ~victim:0) inputs in
  ignore (check_consensus ~what:"eclipse" ~inputs o)

let test_larger_t () =
  (* t at the paper's bound n/30 for a bigger system *)
  let n = 128 in
  let t = max 1 ((n / 30) - 1) in
  List.iter
    (fun adversary ->
      let inputs = mixed n in
      let o = run ~n ~t ~adversary inputs in
      ignore
        (check_consensus
           ~what:("t=n/30 vs " ^ adversary.Sim.Adversary_intf.name)
           ~inputs o))
    [ Adversary.vote_splitter (); Adversary.random_omission ~p_omit:1.0 ]

let test_operative_lower_bound () =
  (* Lemma 7: at least n - 3t processes stay operative, whatever the
     adversary does *)
  let n = 90 in
  let t = max 1 (n / 31) in
  List.iter
    (fun adversary ->
      let min_ops = ref max_int in
      let probe =
        {
          Sim.Adversary_intf.name = "probe";
          create =
            (fun cfg rand ->
              let inner = adversary.Sim.Adversary_intf.create cfg rand in
              fun view ->
                let ops =
                  Array.fold_left
                    (fun a o -> if o.Sim.View.core.operative then a + 1 else a)
                    0 view.Sim.View.obs
                in
                if ops < !min_ops then min_ops := ops;
                inner view);
        }
      in
      let inputs = mixed n in
      let o = run ~n ~t ~adversary:probe inputs in
      ignore (check_consensus ~what:"lemma7" ~inputs o);
      Alcotest.(check bool)
        (Printf.sprintf "operative >= n-3t under %s (got %d)"
           adversary.Sim.Adversary_intf.name !min_ops)
        true
        (!min_ops >= n - (3 * t)))
    (Adversary.standard_suite ~n:90)

let test_randomness_budget () =
  (* at most one coin per process per epoch: rand_calls <= n * epochs and
     every call draws exactly one bit *)
  let n = 64 in
  let params = Consensus.Params.default in
  let epochs =
    Consensus.Params.epoch_count params ~n ~t_max:(max 1 (n / 31))
  in
  let o = run ~n (mixed n) in
  Alcotest.(check bool) "rand calls bounded" true (o.rand_calls <= n * epochs);
  Alcotest.(check int) "one bit per call" o.rand_calls o.rand_bits

let test_determinism () =
  let inputs = mixed 50 in
  let o1 = run ~n:50 ~seed:7 ~adversary:(Adversary.vote_splitter ()) inputs in
  let o2 = run ~n:50 ~seed:7 ~adversary:(Adversary.vote_splitter ()) inputs in
  Alcotest.(check (array (option int))) "same decisions" o1.decisions
    o2.decisions;
  Alcotest.(check int) "same bits" o1.bits_sent o2.bits_sent;
  Alcotest.(check int) "same randomness" o1.rand_calls o2.rand_calls

let test_seed_changes_run () =
  let inputs = mixed 50 in
  let o1 = run ~n:50 ~seed:1 inputs and o2 = run ~n:50 ~seed:2 inputs in
  (* outcomes may coincide, but the runs should not be bit-identical *)
  Alcotest.(check bool) "different seeds differ somewhere" true
    (o1.bits_sent <> o2.bits_sent
    || o1.rand_calls <> o2.rand_calls
    || o1.rounds_total <> o2.rounds_total
    || o1.decisions <> o2.decisions
    || true);
  (* the above can't distinguish reliably; check the graph differs via
     message counts across a batch of seeds instead *)
  let distinct = Hashtbl.create 8 in
  List.iter
    (fun seed ->
      let o = run ~n:50 ~seed inputs in
      Hashtbl.replace distinct (o.bits_sent, o.rand_calls, o.rounds_total) ())
    [ 1; 2; 3; 4; 5 ];
  Alcotest.(check bool) "some variation across seeds" true
    (Hashtbl.length distinct > 1)

let test_small_systems () =
  (* degenerate sizes must still decide *)
  List.iter
    (fun n ->
      let inputs = mixed n in
      let o = run ~n ~t:(max 0 (n / 31)) inputs in
      ignore (check_consensus ~what:(Printf.sprintf "n=%d" n) ~inputs o))
    [ 4; 5; 9; 16; 33 ]

let test_decided_round_within_schedule () =
  let n = 64 in
  let cfg = Sim.Config.make ~n ~t_max:2 ~seed:1 ~max_rounds:4000 () in
  let limit = Consensus.Optimal_omissions.rounds_needed cfg in
  let o = run ~n (mixed n) in
  match o.decided_round with
  | None -> Alcotest.fail "no termination"
  | Some r ->
      Alcotest.(check bool)
        (Printf.sprintf "decided at %d <= schedule %d" r limit)
        true (r <= limit)

let test_fixed_epoch_params () =
  (* a caller can force a short schedule; the fallback then guarantees
     probability-1 termination *)
  let params =
    { Consensus.Params.default with Consensus.Params.epochs = Consensus.Params.Fixed 1 }
  in
  let inputs = mixed 36 in
  let o = run ~n:36 ~params inputs in
  ignore (check_consensus ~what:"fixed-1-epoch" ~inputs o)

(* Regression for the undecided-fallback residue (Algorithm 1 lines
   18-19): corrupt one fallback participant and omit every message TO it
   for the whole phase-king window, so its fallback run ends having heard
   nothing. It must not fabricate a decision from its own candidate — the
   old code finalized the phase-king state into an unconditional decision
   (and then kept re-finalizing it), letting the eclipsed process decide a
   value that can differ from the agreed one. Post-fix it either adopts a
   line-18 [Decided] broadcast or stays undecided (it is faulty; faulty
   processes need not terminate) — never disagrees. *)
let eclipse_fallback ~victim ~from_round ~to_round =
  {
    Sim.Adversary_intf.name = "eclipse-fallback";
    create =
      (fun _cfg _rand view ->
        let r = view.Sim.View.round in
        if r < from_round || r > to_round then Sim.View.no_op
        else
          Sim.View.pointwise
            ~new_faults:(if r = from_round then [ victim ] else [])
            ~omit:(fun _src dst -> dst = victim));
  }

let test_undecided_fallback_regression () =
  let n = 36 in
  let t = 1 in
  (* one epoch keeps the whp-decision from firing, forcing the fallback *)
  let params =
    { Consensus.Params.default with
      Consensus.Params.epochs = Consensus.Params.Fixed 1
    }
  in
  let members = Array.init n (fun i -> i) in
  let fallback_runs = ref 0 in
  List.iter
    (fun seed ->
      let shared =
        Consensus.Core.make_shared ~members ~seed ~params ~t_max:t ()
      in
      let v_rounds = Consensus.Core.rounds shared in
      let p_rounds = Consensus.Phase_king.rounds ~t_max:t in
      let victim = 1 in
      (* the fallback exchanges messages sent in rounds V+1 .. V+P *)
      let adversary =
        eclipse_fallback ~victim ~from_round:(v_rounds + 1)
          ~to_round:(v_rounds + p_rounds)
      in
      let inputs = mixed n in
      let o = run ~n ~t ~seed ~adversary ~params inputs in
      Alcotest.(check bool)
        (Printf.sprintf "non-faulty decided (seed %d)" seed)
        true
        (Sim.Engine.all_nonfaulty_decided o);
      (match o.decided_round with
      | Some r when r > v_rounds + 1 -> incr fallback_runs
      | _ -> ());
      match Sim.Engine.agreed_decision o with
      | None ->
          Alcotest.failf "agreement violated among non-faulty (seed %d)" seed
      | Some agreed ->
          Array.iteri
            (fun pid d ->
              match d with
              | Some dv ->
                  Alcotest.(check int)
                    (Printf.sprintf
                       "pid %d must not fabricate a decision (seed %d)" pid
                       seed)
                    agreed dv
              | None -> ())
            o.decisions)
    [ 1; 2; 3; 4; 5 ];
  Alcotest.(check bool) "the fallback window was actually exercised" true
    (!fallback_runs > 0)

let test_vote_log () =
  (* the Figure-3 trace hook records one event per operative process per
     epoch *)
  let n = 36 in
  let log = ref [] in
  let cfg = Sim.Config.make ~n ~t_max:1 ~seed:1 ~max_rounds:4000 () in
  let proto = Consensus.Optimal_omissions.protocol ~vote_log:log cfg in
  let o =
    Sim.Engine.run proto cfg ~adversary:Sim.Adversary_intf.none
      ~inputs:(mixed n)
  in
  ignore o;
  Alcotest.(check bool) "events recorded" true (List.length !log > 0);
  List.iter
    (fun ev ->
      Alcotest.(check bool) "counts positive" true
        (ev.Consensus.Core.ev_ones + ev.Consensus.Core.ev_zeros > 0);
      Alcotest.(check bool) "rule named" true
        (List.exists
           (fun p -> String.length ev.ev_rule >= String.length p
                     && String.sub ev.ev_rule 0 (String.length p) = p)
           [ "one"; "zero"; "coin" ]))
    !log

let suite =
  [
    Alcotest.test_case "mixed inputs, no adversary" `Quick
      test_no_adversary_mixed;
    Alcotest.test_case "validity (unanimous, zero randomness)" `Quick
      test_validity_unanimous;
    Alcotest.test_case "validity under all adversaries" `Slow
      test_validity_under_all_adversaries;
    Alcotest.test_case "agreement under all adversaries" `Slow
      test_agreement_under_all_adversaries;
    Alcotest.test_case "eclipse adversary" `Quick test_eclipse_adversary;
    Alcotest.test_case "t close to n/30" `Slow test_larger_t;
    Alcotest.test_case "Lemma 7 operative bound" `Slow
      test_operative_lower_bound;
    Alcotest.test_case "randomness budget" `Quick test_randomness_budget;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed variation" `Quick test_seed_changes_run;
    Alcotest.test_case "small systems" `Quick test_small_systems;
    Alcotest.test_case "termination within schedule" `Quick
      test_decided_round_within_schedule;
    Alcotest.test_case "fixed 1-epoch params (fallback path)" `Quick
      test_fixed_epoch_params;
    Alcotest.test_case "undecided-fallback residue regression" `Quick
      test_undecided_fallback_regression;
    Alcotest.test_case "Figure-3 vote log" `Quick test_vote_log;
  ]

let qcheck_chaotic_adversaries =
  (* property: agreement + weak validity hold for arbitrary randomized
     legal adversaries (seeds sweep both the adversary and the protocol) *)
  QCheck.Test.make ~name:"consensus under chaotic adversaries" ~count:12
    QCheck.(pair (int_range 1 1000) (int_range 0 2))
    (fun (seed, style) ->
      let n = 36 in
      let adversary =
        match style with
        | 0 -> Adversary.chaotic ()
        | 1 -> Adversary.chaotic ~corrupt_rate:1.0 ~omit_rate:1.0 ()
        | _ -> Adversary.chaotic ~corrupt_rate:0.1 ~omit_rate:0.9 ()
      in
      let inputs = Array.init n (fun i -> (i * 13 + seed) mod 2) in
      let o = run ~n ~seed ~adversary inputs in
      Sim.Engine.all_nonfaulty_decided o
      &&
      match Sim.Engine.agreed_decision o with
      | Some v -> Array.exists (fun b -> b = v) inputs
      | None -> false)

let suite = suite @ [ QCheck_alcotest.to_alcotest qcheck_chaotic_adversaries ]
