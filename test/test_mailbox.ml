(* Property tests for the engine's flat message buffer (Sim.Mailbox):
   insertion order through growth, reset-by-count reuse never leaking
   stale entries, the monomorphic stable sort agreeing with the old
   [List.sort] ordering the legacy engine used, and the protocols'
   mailbox-native filtered iteration agreeing with the legacy
   list-materializing [List.filter_map] path. *)

let qcheck t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xb0f |]) t

(* A mailbox load: list of (peer, msg) pushes. Peers from a small range so
   duplicates (the stability-sensitive case) are common. *)
let load =
  QCheck.(small_list (pair (int_range 0 7) small_int))

let fill mb pushes =
  List.iter (fun (peer, m) -> Sim.Mailbox.push mb ~peer m) pushes

let qcheck_order =
  QCheck.Test.make ~name:"push/iter/to_list preserve insertion order"
    ~count:300 load (fun pushes ->
      let mb = Sim.Mailbox.create () in
      fill mb pushes;
      let via_iter = ref [] in
      Sim.Mailbox.iter mb (fun peer m -> via_iter := (peer, m) :: !via_iter);
      Sim.Mailbox.length mb = List.length pushes
      && Sim.Mailbox.to_list mb = pushes
      && List.rev !via_iter = pushes)

let qcheck_growth =
  QCheck.Test.make ~name:"order survives growth past any capacity" ~count:50
    QCheck.(pair (int_range 1 5) (int_range 100 400))
    (fun (hint, len) ->
      (* Force many doubling steps from a tiny hinted capacity. *)
      let mb = Sim.Mailbox.create ~hint () in
      let pushes = List.init len (fun i -> (i mod 9, i * 3)) in
      fill mb pushes;
      Sim.Mailbox.to_list mb = pushes)

let qcheck_reuse =
  QCheck.Test.make
    ~name:"clear-then-refill never exposes stale entries" ~count:300
    QCheck.(pair load load)
    (fun (first, second) ->
      let mb = Sim.Mailbox.create () in
      fill mb first;
      Sim.Mailbox.clear mb;
      (* A cleared buffer reads as empty even though slots keep old data. *)
      Sim.Mailbox.length mb = 0
      && Sim.Mailbox.to_list mb = []
      &&
      (fill mb second;
       Sim.Mailbox.to_list mb = second
       && Sim.Mailbox.fold mb ~init:0 (fun acc _ _ -> acc + 1)
          = List.length second))

let qcheck_sort =
  QCheck.Test.make
    ~name:"sort_by_peer = stable List.sort by peer (duplicates kept)"
    ~count:500 load (fun pushes ->
      let mb = Sim.Mailbox.create () in
      fill mb pushes;
      Sim.Mailbox.sort_by_peer mb;
      let expected =
        List.stable_sort (fun (a, _) (b, _) -> compare a b) pushes
      in
      Sim.Mailbox.to_list mb = expected)

let qcheck_sorted_flag =
  QCheck.Test.make ~name:"is_sorted_by_peer agrees with the list order"
    ~count:300 load (fun pushes ->
      let mb = Sim.Mailbox.create () in
      fill mb pushes;
      let rec non_decreasing = function
        | a :: (b :: _ as rest) -> a <= b && non_decreasing rest
        | _ -> true
      in
      let before =
        Sim.Mailbox.is_sorted_by_peer mb
        = non_decreasing (List.map fst pushes)
      in
      Sim.Mailbox.sort_by_peer mb;
      before && Sim.Mailbox.is_sorted_by_peer mb)

(* The buffered protocols filter their whole-inbox iterator during
   iteration (pk_iter / sub_iter-style views) instead of materializing a
   filtered (src, msg) list. Check the two against each other on
   arbitrary mailboxes with duplicate peers. *)
type tagged = A of int | B of int

let tagged_load =
  QCheck.(small_list (pair (int_range 0 7) (pair bool small_int)))

let fill_tagged mb pushes =
  List.iter
    (fun (peer, (is_a, v)) ->
      Sim.Mailbox.push mb ~peer (if is_a then A v else B v))
    pushes

let filter_iter mb f =
  Sim.Mailbox.iter mb (fun src m -> match m with A v -> f src v | B _ -> ())

let filtered_list mb =
  List.filter_map
    (fun (src, m) -> match m with A v -> Some (src, v) | B _ -> None)
    (Sim.Mailbox.to_list mb)

let collect_filtered mb =
  let acc = ref [] in
  filter_iter mb (fun src v -> acc := (src, v) :: !acc);
  List.rev !acc

let qcheck_filter_equiv =
  QCheck.Test.make
    ~name:"filtered iteration = List.filter_map over to_list" ~count:300
    tagged_load (fun pushes ->
      let mb = Sim.Mailbox.create () in
      fill_tagged mb pushes;
      collect_filtered mb = filtered_list mb)

let qcheck_filter_reuse =
  QCheck.Test.make
    ~name:"filtered view survives growth and clear-then-refill" ~count:100
    QCheck.(pair (int_range 100 300) tagged_load)
    (fun (len, second) ->
      (* grow well past the hinted capacity with duplicate peers *)
      let mb = Sim.Mailbox.create ~hint:1 () in
      for i = 0 to len - 1 do
        Sim.Mailbox.push mb ~peer:(i mod 5) (if i mod 3 = 0 then A i else B i)
      done;
      let first_ok = collect_filtered mb = filtered_list mb in
      Sim.Mailbox.clear mb;
      fill_tagged mb second;
      first_ok && collect_filtered mb = filtered_list mb)

(* --- broadcast segments --- *)

(* A mixed load: pointwise pushes interleaved with broadcast ranges over a
   small pid space, descending and ascending, with and without a skipped
   destination (including skips outside the range and empty ranges). *)
let op =
  QCheck.(
    map
      (fun (point, (lo, span), (skip, desc), m) ->
        if point then `P (lo, m)
        else `B (lo, min 7 (lo + span), (if skip > 7 then -1 else skip), desc, m))
      (quad bool
         (pair (int_range 0 7) (int_range 0 7))
         (pair (int_range 0 9) bool)
         small_int))

let mixed_load = QCheck.small_list op

let apply_ops mb ops =
  List.iter
    (function
      | `P (peer, m) -> Sim.Mailbox.push mb ~peer m
      | `B (lo, hi, skip, desc, m) ->
          Sim.Mailbox.push_all mb ~lo ~hi ~skip ~desc m)
    ops

(* The reference semantics: every broadcast expanded pointwise at its
   emission position, in its declared direction. *)
let expand_ops ops =
  List.concat_map
    (function
      | `P (peer, m) -> [ (peer, m) ]
      | `B (lo, hi, skip, desc, m) ->
          let dsts = ref [] in
          if desc then
            for d = lo to hi do
              if d <> skip then dsts := d :: !dsts
            done
          else
            for d = hi downto lo do
              if d <> skip then dsts := d :: !dsts
            done;
          List.map (fun d -> (d, m)) !dsts)
    ops

let qcheck_broadcast_equiv =
  QCheck.Test.make
    ~name:"push_all = pointwise pushes under iter/riter/to_list/length"
    ~count:500 mixed_load (fun ops ->
      let mb = Sim.Mailbox.create () in
      apply_ops mb ops;
      let expected = expand_ops ops in
      let via_riter = ref [] in
      Sim.Mailbox.riter mb (fun peer m -> via_riter := (peer, m) :: !via_riter);
      Sim.Mailbox.length mb = List.length expected
      && Sim.Mailbox.to_list mb = expected
      && !via_riter = expected
      && Sim.Mailbox.fold mb ~init:[] (fun acc p m -> (p, m) :: acc)
         = List.rev expected)

let qcheck_broadcast_flatten =
  QCheck.Test.make
    ~name:"flatten rewrites segments in place, emission order kept"
    ~count:500 mixed_load (fun ops ->
      let mb = Sim.Mailbox.create () in
      apply_ops mb ops;
      let expected = expand_ops ops in
      Sim.Mailbox.flatten mb;
      Sim.Mailbox.seg_count mb = 0
      && Sim.Mailbox.point_length mb = List.length expected
      && Sim.Mailbox.to_list mb = expected
      && List.for_all
           (fun i ->
             (Sim.Mailbox.peer mb i, Sim.Mailbox.msg mb i)
             = List.nth expected i)
           (List.init (List.length expected) Fun.id))

let qcheck_broadcast_entries =
  QCheck.Test.make
    ~name:"iter_entries/riter_entries visit segments at their positions"
    ~count:300 mixed_load (fun ops ->
      let mb = Sim.Mailbox.create () in
      apply_ops mb ops;
      let expand_entry ~lo ~hi ~skip ~desc ~size m =
        let l = ref [] in
        if desc then
          for d = lo to hi do
            if d <> skip then l := (d, m) :: !l
          done
        else
          for d = hi downto lo do
            if d <> skip then l := (d, m) :: !l
          done;
        assert (List.length !l = size);
        !l
      in
      let fwd = ref [] in
      Sim.Mailbox.iter_entries mb
        ~point:(fun p m -> fwd := (p, m) :: !fwd)
        ~seg:(fun ~lo ~hi ~skip ~desc ~size m ->
          fwd := List.rev_append (expand_entry ~lo ~hi ~skip ~desc ~size m) !fwd);
      let bwd = ref [] in
      Sim.Mailbox.riter_entries mb
        ~point:(fun p m -> bwd := (p, m) :: !bwd)
        ~seg:(fun ~lo ~hi ~skip ~desc ~size m ->
          bwd :=
            List.rev_append
              (List.rev (expand_entry ~lo ~hi ~skip ~desc ~size m))
              !bwd);
      let expected = expand_ops ops in
      List.rev !fwd = expected && !bwd = expected)

let qcheck_broadcast_reuse =
  QCheck.Test.make
    ~name:"broadcast clear-then-refill never exposes stale segments"
    ~count:300
    QCheck.(pair mixed_load mixed_load)
    (fun (first, second) ->
      let mb = Sim.Mailbox.create () in
      apply_ops mb first;
      Sim.Mailbox.clear mb;
      Sim.Mailbox.length mb = 0
      && Sim.Mailbox.seg_count mb = 0
      && Sim.Mailbox.to_list mb = []
      &&
      (apply_ops mb second;
       Sim.Mailbox.to_list mb = expand_ops second))

let test_broadcast_identity () =
  (* one push_all stores ONE shared record: every expanded slot must be
     physically identical ([==]) to the pushed message, across segment
     growth and across flatten *)
  let mb = Sim.Mailbox.create () in
  let records = Array.init 12 (fun i -> ref i) in
  Array.iter (fun r -> Sim.Mailbox.push_all mb ~lo:0 ~hi:30 ~skip:7 r) records;
  let ok = ref true in
  let seen = Array.make 12 0 in
  Sim.Mailbox.iter mb (fun _peer m ->
      if not (m == records.(!m)) then ok := false;
      seen.(!m) <- seen.(!m) + 1);
  Alcotest.(check bool) "shared identity through growth" true !ok;
  Array.iteri
    (fun i c -> Alcotest.(check int) (Printf.sprintf "fanout %d" i) 30 c)
    seen;
  Sim.Mailbox.flatten mb;
  let ok = ref true in
  Sim.Mailbox.iter mb (fun _peer m -> if not (m == records.(!m)) then ok := false);
  Alcotest.(check bool) "shared identity after flatten" true !ok;
  Alcotest.(check int) "flattened size" (12 * 30) (Sim.Mailbox.point_length mb)

let test_bounds () =
  let mb = Sim.Mailbox.create () in
  Sim.Mailbox.push mb ~peer:3 "x";
  Alcotest.(check string) "msg 0" "x" (Sim.Mailbox.msg mb 0);
  Alcotest.(check int) "peer 0" 3 (Sim.Mailbox.peer mb 0);
  Alcotest.check_raises "peer out of bounds"
    (Invalid_argument "Mailbox.peer: index out of bounds") (fun () ->
      ignore (Sim.Mailbox.peer mb 1));
  Sim.Mailbox.clear mb;
  Alcotest.check_raises "cleared slot unreadable"
    (Invalid_argument "Mailbox.msg: index out of bounds") (fun () ->
      ignore (Sim.Mailbox.msg mb 0))

let suite =
  [
    qcheck qcheck_order;
    qcheck qcheck_growth;
    qcheck qcheck_reuse;
    qcheck qcheck_sort;
    qcheck qcheck_sorted_flag;
    qcheck qcheck_filter_equiv;
    qcheck qcheck_filter_reuse;
    qcheck qcheck_broadcast_equiv;
    qcheck qcheck_broadcast_flatten;
    qcheck qcheck_broadcast_entries;
    qcheck qcheck_broadcast_reuse;
    Alcotest.test_case "push_all keeps one shared record" `Quick
      test_broadcast_identity;
    Alcotest.test_case "bounds checks and clear semantics" `Quick test_bounds;
  ]
