lib/consensus/crash_subquadratic.mli: Params Sim
