lib/consensus/optimal_omissions.mli: Core Params Sim
