lib/consensus/dolev_strong.ml: Array Auth Hashtbl List Sim
