lib/consensus/param_omissions.ml: Array Core Expander Groups Hashtbl Int64 List Params Phase_king Printf Sim Voting
