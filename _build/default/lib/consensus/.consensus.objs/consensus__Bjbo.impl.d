lib/consensus/bjbo.ml: Array List Sim
