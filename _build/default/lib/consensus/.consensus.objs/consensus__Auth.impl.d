lib/consensus/auth.ml: Hashtbl List
