lib/consensus/params.mli:
