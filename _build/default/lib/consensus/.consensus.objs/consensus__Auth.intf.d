lib/consensus/auth.mli:
