lib/consensus/optimal_omissions.ml: Array Core List Params Phase_king Sim
