lib/consensus/voting.mli: Sim
