lib/consensus/dolev_strong.mli: Sim
