lib/consensus/flood.ml: List Sim
