lib/consensus/phase_king.ml: Array List
