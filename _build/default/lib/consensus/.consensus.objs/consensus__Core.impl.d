lib/consensus/core.ml: Array Expander Groups Hashtbl Int64 List Params Voting
