lib/consensus/params.ml: Float
