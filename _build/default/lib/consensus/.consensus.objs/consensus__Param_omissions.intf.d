lib/consensus/param_omissions.mli: Params Sim
