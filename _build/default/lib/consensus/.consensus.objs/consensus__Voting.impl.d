lib/consensus/voting.ml: Sim
