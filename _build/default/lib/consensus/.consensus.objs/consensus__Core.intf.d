lib/consensus/core.mli: Expander Groups Hashtbl Params Sim
