lib/consensus/operative_broadcast.mli: Params Sim
