lib/consensus/early_stopping.mli: Sim
