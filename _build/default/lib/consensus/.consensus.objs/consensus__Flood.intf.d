lib/consensus/flood.mli: Sim
