lib/consensus/bjbo.mli: Sim
