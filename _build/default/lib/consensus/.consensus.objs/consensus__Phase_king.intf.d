lib/consensus/phase_king.mli:
