lib/consensus/operative_broadcast.ml: Array Expander Hashtbl Int64 List Params Printf Sim
