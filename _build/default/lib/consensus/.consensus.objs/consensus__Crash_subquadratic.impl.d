lib/consensus/crash_subquadratic.ml: Array Core Expander Hashtbl List Params Phase_king Sim
