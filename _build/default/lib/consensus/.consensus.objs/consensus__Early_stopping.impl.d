lib/consensus/early_stopping.ml: Int List Set Sim
