(** Tunable constants of the paper's algorithms.

    The paper's constants (Delta = 832 log n, 8 log n spreading rounds,
    (t / sqrt n) log n epochs) are calibrated for asymptotic proofs and are
    unusable at simulation scale (832 log2 1024 > n). We keep every Theta(.)
    shape and expose the constants; defaults are chosen so that the
    mechanisms the proofs rely on (quorums, dense cores, good epochs) hold
    at n in the hundreds-to-thousands range. See DESIGN.md, substitution 1. *)

type epochs_spec =
  | Auto of float
      (** [Auto f]: ceil(f * max(1, t/sqrt n) * log2 n) epochs — the paper's
          (t / sqrt n) log n shape. *)
  | Fixed of int

type t = {
  delta_c : int;  (** expander expected degree = delta_c * ceil(log2 n) *)
  spread_c : int;  (** spreading rounds = spread_c * ceil(log2 n) *)
  epochs : epochs_spec;
  graph_attempts : int;  (** resampling attempts for a Theorem-4 graph *)
}

let default =
  { delta_c = 8; spread_c = 1; epochs = Auto 1.0; graph_attempts = 30 }

let log2_ceil n =
  if n <= 1 then 1
  else begin
    let rec go acc cap = if cap >= n then acc else go (acc + 1) (cap * 2) in
    go 0 1
  end

let delta t ~n = min (n - 1) (max 4 (t.delta_c * log2_ceil n))
let spread_rounds t ~n = max 2 (t.spread_c * log2_ceil n)

let epoch_count t ~n ~t_max =
  match t.epochs with
  | Fixed e -> max 1 e
  | Auto f ->
      let sqrt_n = sqrt (float_of_int n) in
      let ratio = Float.max 1. (float_of_int t_max /. sqrt_n) in
      (* the +4 cushion matters at small n: after the votes unify, one more
         epoch must observe the unanimous counts to arm the decided flag *)
      4
      + max 1 (int_of_float (ceil (f *. ratio *. float_of_int (log2_ceil n))))
