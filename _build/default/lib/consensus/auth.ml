(** Simulated authentication for Dolev-Strong: unforgeable signature chains.

    The model has no PKI — the paper's fallback reference [15] assumes one,
    which is why our in-protocol fallback is phase-king instead (DESIGN.md,
    substitution 3). For the *baseline comparison* we still reproduce
    Dolev-Strong faithfully by simulating the setup: a {!signature} can only
    be created through {!sign}, so within the simulation signatures are
    unforgeable by construction (module abstraction plays the role of the
    cryptography). Omission-faulty processes follow the protocol anyway;
    the abstraction is what would keep a Byzantine implementation honest. *)

type signature = { signer : int; digest : int }

(* The digest binds the signer, the payload and the entire chain prefix,
   like a real chained signature. Hashtbl.hash stands in for a collision-
   resistant hash; adequate inside a simulation. *)
let digest_of ~signer ~payload ~prefix =
  Hashtbl.hash (signer, payload, List.map (fun s -> (s.signer, s.digest)) prefix)

(** [sign ~signer ~payload ~chain] appends [signer]'s signature over
    [payload] and the existing [chain]. *)
let sign ~signer ~payload ~chain =
  { signer; digest = digest_of ~signer ~payload ~prefix:chain } :: chain

let signer s = s.signer

(** A chain is valid for [payload] if every link's digest checks out over
    its suffix and all signers are distinct. Chains are stored newest
    first; the original sender's signature is the last element. *)
let valid_chain ~payload chain =
  let rec go seen = function
    | [] -> true
    | s :: rest ->
        (not (List.mem s.signer seen))
        && s.digest = digest_of ~signer:s.signer ~payload ~prefix:rest
        && go (s.signer :: seen) rest
  in
  go [] chain

let origin chain =
  match List.rev chain with [] -> None | s :: _ -> Some s.signer

let length = List.length

(** Wire size: a real deployment would carry ~256 bits per signature; we
    charge a symbolic constant so message-complexity *shapes* stay honest
    relative to the paper's O(log n)-bit accounting. *)
let bits chain = 8 * List.length chain
