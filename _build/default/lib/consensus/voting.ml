(** The biased-majority voting rule of Algorithm 1, lines 9-12 (Figure 3).

    [ones] and [zeros] are the operative counts computed by the epoch's
    communication; thresholds are exact rational comparisons (integer
    arithmetic, no rounding). *)

type update = { b : int; used_coin : bool }

(** Lines 9-11: fraction of ones above 18/30 forces 1, below 15/30 forces 0,
    the window in between flips a fair coin (one random bit — the only
    randomness in the whole algorithm). *)
let update ~ones ~zeros ~rand =
  let tot = ones + zeros in
  if tot <= 0 then invalid_arg "Voting.update: no counts";
  if 30 * ones > 18 * tot then { b = 1; used_coin = false }
  else if 30 * ones < 15 * tot then { b = 0; used_coin = false }
  else { b = Sim.Rand.bit rand; used_coin = true }

(** Line 12: the safety rule arming the [decided] flag when the counts are
    overwhelming. *)
let ready ~ones ~zeros =
  let tot = ones + zeros in
  tot > 0 && ((30 * ones > 27 * tot) || (30 * ones < 3 * tot))

(** Deterministic variant used by the safety rule of Algorithm 4
    (lines 19-22): same thresholds, but in the middle window the candidate is
    left unchanged instead of randomized. *)
let update_deterministic ~ones ~zeros ~current =
  let tot = ones + zeros in
  if tot <= 0 then current
  else if 30 * ones > 18 * tot then 1
  else if 30 * ones < 15 * tot then 0
  else current
