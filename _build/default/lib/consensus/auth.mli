(** Simulated authentication for Dolev-Strong: signature chains that are
    unforgeable *by module abstraction* — a {!signature} can only come from
    {!sign}, playing the role of the PKI the paper's reference [15]
    assumes. *)

type signature

val sign : signer:int -> payload:int -> chain:signature list -> signature list
(** Append [signer]'s signature over [payload] and the existing chain.
    Chains are newest-first; the origin's signature is last. *)

val signer : signature -> int

val valid_chain : payload:int -> signature list -> bool
(** Every link checks out over its suffix and all signers are distinct. *)

val origin : signature list -> int option
(** The first signer (chain creator), if any. *)

val length : signature list -> int

val bits : signature list -> int
(** Symbolic wire size charged per signature. *)
