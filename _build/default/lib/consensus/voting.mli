(** The biased-majority voting rule of Algorithm 1, lines 9-12 (Figure 3):
    exact integer threshold comparisons at 18/30, 15/30, 27/30 and 3/30. *)

type update = { b : int; used_coin : bool }

val update : ones:int -> zeros:int -> rand:Sim.Rand.t -> update
(** Fraction of ones above 18/30 forces 1, below 15/30 forces 0; the window
    between flips one fair coin (the only randomness in Algorithm 1).
    Raises [Invalid_argument] when both counts are zero. *)

val ready : ones:int -> zeros:int -> bool
(** Line 12: true when the counts are overwhelming (above 27/30 or below
    3/30), arming the decided flag. False on empty counts. *)

val update_deterministic : ones:int -> zeros:int -> current:int -> int
(** The Algorithm 4 safety-rule variant (lines 19-22): same thresholds, but
    the middle window keeps [current] instead of flipping a coin. *)
