(** Tunable constants of the paper's algorithms (DESIGN.md, substitution 1:
    every Theta(.) shape of the paper is kept; the constants are scaled to
    simulation sizes and the properties the proofs need are verified
    instead). *)

type epochs_spec =
  | Auto of float
      (** [Auto f]: ceil(f * max(1, t / sqrt n) * log2 n) + 4 epochs — the
          paper's (t / sqrt n) log n shape with a small-n cushion (one
          extra epoch must observe unanimity before the decided flag can
          arm). *)
  | Fixed of int

type t = {
  delta_c : int;  (** expander expected degree = delta_c * ceil(log2 n) *)
  spread_c : int;  (** spreading rounds = spread_c * ceil(log2 n) *)
  epochs : epochs_spec;
  graph_attempts : int;  (** resampling attempts for a Theorem-4 graph *)
}

val default : t
(** delta_c = 8, spread_c = 1, Auto 1.0, 30 attempts. *)

val log2_ceil : int -> int
(** ceil(log2 n), at least 1. *)

val delta : t -> n:int -> int
val spread_rounds : t -> n:int -> int
val epoch_count : t -> n:int -> t_max:int -> int
