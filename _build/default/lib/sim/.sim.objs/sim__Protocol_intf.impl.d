lib/sim/protocol_intf.ml: Config Rand View
