lib/sim/config.ml: Fmt
