lib/sim/adversary_intf.ml: Config Rand View
