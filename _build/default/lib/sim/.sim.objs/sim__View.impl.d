lib/sim/view.ml: Config Hashtbl List
