lib/sim/engine.mli: Adversary_intf Config Protocol_intf View
