lib/sim/engine.ml: Adversary_intf Array Config Fmt Int64 List Protocol_intf Rand View
