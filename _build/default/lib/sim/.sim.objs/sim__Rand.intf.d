lib/sim/rand.mli:
