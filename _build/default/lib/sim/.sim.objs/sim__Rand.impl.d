lib/sim/rand.ml: Array Int64
