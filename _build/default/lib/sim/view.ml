(** What the full-information adaptive adversary sees each round, and the
    intervention it may order.

    The adversary intervenes between the local-computation phase and the
    communication phase: it has already seen the random bits drawn this round
    (they are reflected in [candidate] / [used_randomness]) and the messages
    the processes are about to send, and only then picks new corruptions and
    omissions. *)

type obs_core = {
  candidate : int option;  (** current candidate decision bit, if any *)
  operative : bool;  (** protocol-level operative status (paper's notion) *)
  decided : int option;  (** final decision once taken *)
}

type obs = {
  pid : int;
  core : obs_core;
  used_randomness : bool;  (** accessed the random source this round *)
}

type envelope = {
  src : int;
  dst : int;
  bits : int;  (** message size charged to communication complexity *)
  hint : int option;  (** candidate value carried, when meaningful *)
}

type t = {
  round : int;
  cfg : Config.t;
  faulty : bool array;  (** fault set before this round's intervention *)
  faults_used : int;
  obs : obs array;
  envelopes : envelope array;  (** all messages produced this round *)
}

type plan = {
  new_faults : int list;
      (** processes to corrupt now; lifetime total must stay within t_max *)
  omit : int -> int -> bool;
      (** [omit src dst]: drop this round's message from [src] to [dst].
          Must return [false] whenever neither endpoint is faulty — the
          engine enforces this. *)
}

let no_op = { new_faults = []; omit = (fun _ _ -> false) }

(** Omission predicate dropping every message to or from any pid in [pids]. *)
let omit_all_of pids =
  let set = Hashtbl.create (List.length pids * 2) in
  List.iter (fun p -> Hashtbl.replace set p ()) pids;
  fun src dst -> Hashtbl.mem set src || Hashtbl.mem set dst

(** Crash-style plan: corrupt [pids] and silence them completely. *)
let crash pids = { new_faults = pids; omit = omit_all_of pids }
