(** Run configuration shared by every protocol and adversary. *)

type t = {
  n : int;  (** number of processes, IDs [0 .. n-1] *)
  t_max : int;  (** adversary's lifetime corruption budget *)
  seed : int;  (** root seed; the run is a pure function of it *)
  max_rounds : int;  (** hard stop for the engine *)
}

let make ?(seed = 0) ?max_rounds ~n ~t_max () =
  if n <= 0 then invalid_arg "Config.make: n must be positive";
  if t_max < 0 || t_max >= n then
    invalid_arg "Config.make: t_max must be in [0, n)";
  let max_rounds =
    match max_rounds with Some r -> r | None -> 200 + (40 * (t_max + 1))
  in
  { n; t_max; seed; max_rounds }

let pp ppf c =
  Fmt.pf ppf "{n=%d; t=%d; seed=%d; max_rounds=%d}" c.n c.t_max c.seed
    c.max_rounds
