(** Adaptive full-information adversaries.

    An adversary is a factory: [create cfg rand] returns a per-run closure
    holding whatever mutable strategy state it needs. Its randomness is
    private (not charged to the algorithm's randomness complexity — the
    model's adversary is computationally unbounded). *)

type t = {
  name : string;
  create : Config.t -> Rand.t -> (View.t -> View.plan);
}

let none = { name = "none"; create = (fun _ _ _ -> View.no_op) }
