lib/lowerbound/valency.mli:
