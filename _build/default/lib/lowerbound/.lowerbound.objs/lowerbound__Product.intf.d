lib/lowerbound/product.mli:
