lib/lowerbound/product.ml: Adversary Array Consensus Sim
