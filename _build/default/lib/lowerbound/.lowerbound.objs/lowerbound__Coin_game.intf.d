lib/lowerbound/coin_game.mli: Sim
