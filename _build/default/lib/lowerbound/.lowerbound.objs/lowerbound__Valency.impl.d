lib/lowerbound/valency.ml: Array Hashtbl List
