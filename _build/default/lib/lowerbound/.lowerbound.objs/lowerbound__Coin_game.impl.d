lib/lowerbound/coin_game.ml: Array Sim Stats
