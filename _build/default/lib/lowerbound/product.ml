(** The Theorem 2 experiment: an adaptive vote-splitting adversary (the
    constructive strategy from Lemmas 13-15, played as a per-round
    coin-flipping game) against the canonical biased-majority voting
    algorithm, measuring the forced product T x (R + T) against the paper's
    Omega(t^2 / log n) bound.

    Varying [coin_set] reproduces the randomness-starved regimes: with only
    k processes allowed to flip coins per round, the adversary needs to hide
    only ~sqrt(k log n) values per round, so the run is stalled for
    ~t / sqrt(k log n) rounds — "why a lot of randomness is needed". *)

type result = {
  n : int;
  t : int;
  coin_set : int;
  rounds : int;  (** T: round by which every live process had decided *)
  rand_calls : int;  (** R: calls to the random source *)
  product : int;  (** T x (R + T) *)
  bound : float;  (** t^2 / log2 n, the Omega shape (constants elided) *)
  decided : bool;
}

let run ?(seed = 1) ~n ~t ~coin_set () =
  let cfg = Sim.Config.make ~n ~t_max:t ~seed ~max_rounds:(40 * (t + 10)) () in
  let proto = Consensus.Bjbo.protocol ~coin_set_size:coin_set cfg in
  let inputs = Array.init n (fun i -> i mod 2) in
  let adversary = Adversary.vote_splitter () in
  let o = Sim.Engine.run proto cfg ~adversary ~inputs in
  let rounds =
    match o.Sim.Engine.decided_round with
    | Some r -> r
    | None -> o.rounds_total
  in
  let product = rounds * (o.rand_calls + rounds) in
  {
    n;
    t;
    coin_set;
    rounds;
    rand_calls = o.rand_calls;
    product;
    bound =
      float_of_int (t * t) /. (log (float_of_int n) /. log 2.);
    decided = o.decided_round <> None;
  }

(** Average over seeds; returns (mean rounds, mean rand_calls, mean
    product). *)
let run_avg ?(seeds = 5) ~n ~t ~coin_set () =
  let rs = ref 0. and rcs = ref 0. and ps = ref 0. in
  for seed = 1 to seeds do
    let r = run ~seed ~n ~t ~coin_set () in
    rs := !rs +. float_of_int r.rounds;
    rcs := !rcs +. float_of_int r.rand_calls;
    ps := !ps +. float_of_int r.product
  done;
  let f x = x /. float_of_int seeds in
  (f !rs, f !rcs, f !ps)
