(** Exact valency analysis of small consensus games — the Lemma 13 /
    Appendix C state classification made executable by exhaustive minimax
    over every adaptive crash strategy (including Lemma 15's mid-round
    partial-delivery crashes) and every coin outcome.

    The analyzed protocol is a minimal one-coin biased majority: broadcast
    the bit; a unanimous view decides; otherwise adopt the majority,
    flipping a fair coin on ties. *)

type game = {
  n : int;  (** processes (exact analysis is feasible for n <= 4) *)
  t : int;  (** crash budget, at most one new crash per round *)
  horizon : int;  (** rounds analyzed *)
}

type analysis = {
  force1 : float;
      (** sup over strategies of Pr(all non-faulty decide 1 by the horizon) *)
  force0 : float;
  stall : float;  (** sup of Pr(someone undecided at the horizon) *)
  disagree : float;
      (** sup of Pr(two non-faulty processes decide differently) — 0 is an
          exhaustive safety proof for the budget *)
}

val optimal :
  game ->
  inputs:int array ->
  objective:([ `All_one | `All_zero | `Stall | `Disagree ] -> bool) ->
  float
(** The optimal probability of reaching a horizon state satisfying the
    objective, the adversary playing best-response each round with full
    information. *)

val analyze : game -> inputs:int array -> analysis

type valence = Zero_valent | One_valent | Null_valent | Bivalent

val classify : ?threshold:float -> analysis -> valence
(** The paper's classification with an explicit threshold (default 0.5)
    replacing the asymptotic bands. *)

val lemma13_witness :
  ?threshold:float -> game -> (int array * analysis) option
(** Scan all 2^n input assignments for one that is bivalent or null-valent
    — the initial state Lemma 13 guarantees when the adversary controls at
    least one process. *)
