(** Exact valency analysis of small consensus games — the machinery behind
    Lemma 13 and the state classification of Appendix C, made executable.

    The paper classifies algorithm states as 0-valent / 1-valent /
    null-valent / bivalent by quantifying over *all* adversarial
    strategies. For a toy voting protocol on a handful of processes we can
    do that quantification exhaustively: enumerate every adversary action
    (which process to crash this round and which subset of its final
    messages to deliver — the mid-round crash of Lemma 15), average over
    every coin outcome, and compute by backward induction the exact optimal
    probabilities

    - [force1] / [force0]: sup over strategies of Pr(all non-faulty decide
      1 / 0 within the horizon) — both large = the paper's *bivalent*;
    - [stall]: sup of Pr(someone still undecided at the horizon) — the
      currency of the round lower bound;
    - [disagree]: sup of Pr(two non-faulty processes decide differently) —
      0 proves the protocol safe against *every* t-strategy, exhaustively.

    The toy protocol is a one-coin biased majority: every live process
    broadcasts its bit; a process that receives only copies of v decides v;
    otherwise it adopts the majority, flipping a fair coin on ties. This is
    the minimal member of the Ben-Or family the paper's Section 4 abstracts
    over, and small enough (n <= 4) for exact analysis. *)

type game = {
  n : int;
  t : int;  (** adversary crash budget (at most one new crash per round) *)
  horizon : int;  (** rounds analyzed *)
}

(* Global configuration: candidate bits, alive mask, decision per process
   (-1 undecided), faults used. Packed into an integer key for memoization. *)
type cfg = {
  bits : int array;
  alive : bool array;
  decided : int array;
  faults : int;
}

let key game cfg round =
  let acc = ref round in
  for i = 0 to game.n - 1 do
    acc := (!acc * 2) + cfg.bits.(i);
    acc := (!acc * 2) + if cfg.alive.(i) then 1 else 0;
    acc := (!acc * 3) + (cfg.decided.(i) + 1)
  done;
  (!acc * (game.t + 1)) + cfg.faults

(* One adversary action: crash nobody, or crash [victim] now, delivering
   this round's broadcast only to the receivers in [deliver] (the mid-round
   partial crash). *)
type action = No_crash | Crash of { victim : int; deliver : bool array }

let actions game cfg =
  let acc = ref [ No_crash ] in
  if cfg.faults < game.t then
    for victim = 0 to game.n - 1 do
      if cfg.alive.(victim) then begin
        (* enumerate delivery subsets over the other alive processes *)
        let receivers = ref [] in
        for q = 0 to game.n - 1 do
          if q <> victim && cfg.alive.(q) then receivers := q :: !receivers
        done;
        let rs = Array.of_list !receivers in
        let subsets = 1 lsl Array.length rs in
        for mask = 0 to subsets - 1 do
          let deliver = Array.make game.n false in
          Array.iteri
            (fun idx q -> if mask land (1 lsl idx) <> 0 then deliver.(q) <- true)
            rs;
          acc := Crash { victim; deliver } :: !acc
        done
      end
    done;
  !acc

(* Apply one round under a fixed action and fixed coin outcomes for the
   processes that would flip. Returns the next configuration. [coins] maps
   a dense index over tie-processes to a bit. *)
let round_step game cfg action ~coin_of =
  let n = game.n in
  let alive' = Array.copy cfg.alive in
  let faults' =
    match action with
    | No_crash -> cfg.faults
    | Crash { victim; _ } ->
        alive'.(victim) <- false;
        cfg.faults + 1
  in
  let delivers src dst =
    src <> dst && cfg.alive.(src)
    &&
    match action with
    | Crash { victim; deliver } when src = victim -> deliver.(dst)
    | Crash _ | No_crash -> true
  in
  let bits' = Array.copy cfg.bits in
  let decided' = Array.copy cfg.decided in
  let tie_idx = ref 0 in
  for p = 0 to n - 1 do
    (* the crashed victim still runs its local phase this round; its later
       state is irrelevant, so skip it for speed *)
    if alive'.(p) && cfg.decided.(p) = -1 then begin
      let c = [| 0; 0 |] in
      c.(cfg.bits.(p)) <- 1;
      for q = 0 to n - 1 do
        if delivers q p then c.(cfg.bits.(q)) <- c.(cfg.bits.(q)) + 1
      done;
      if c.(0) = 0 then begin
        decided'.(p) <- 1;
        bits'.(p) <- 1
      end
      else if c.(1) = 0 then begin
        decided'.(p) <- 0;
        bits'.(p) <- 0
      end
      else if c.(1) > c.(0) then bits'.(p) <- 1
      else if c.(0) > c.(1) then bits'.(p) <- 0
      else begin
        bits'.(p) <- coin_of !tie_idx;
        incr tie_idx
      end
    end
  done;
  { bits = bits'; alive = alive'; decided = decided'; faults = faults' }

(* Count the tie-processes of a configuration under an action (to know how
   many coin outcomes to enumerate). *)
let tie_count game cfg action =
  let n = game.n in
  let alive_after p =
    cfg.alive.(p)
    && match action with Crash { victim; _ } -> p <> victim | No_crash -> true
  in
  let delivers src dst =
    src <> dst && cfg.alive.(src)
    &&
    match action with
    | Crash { victim; deliver } when src = victim -> deliver.(dst)
    | Crash _ | No_crash -> true
  in
  let ties = ref 0 in
  for p = 0 to n - 1 do
    if alive_after p && cfg.decided.(p) = -1 then begin
      let c = [| 0; 0 |] in
      c.(cfg.bits.(p)) <- 1;
      for q = 0 to n - 1 do
        if delivers q p then c.(cfg.bits.(q)) <- c.(cfg.bits.(q)) + 1
      done;
      if c.(0) > 0 && c.(1) > 0 && c.(0) = c.(1) then incr ties
    end
  done;
  !ties

(* Predicates over terminal-ish configurations (evaluated at every state;
   the induction handles the rest). *)
let all_decided_on v cfg =
  let ok = ref true in
  Array.iteri
    (fun p alive -> if alive && cfg.decided.(p) <> v then ok := false)
    cfg.alive;
  !ok

let someone_undecided cfg =
  let some = ref false in
  Array.iteri
    (fun p alive -> if alive && cfg.decided.(p) = -1 then some := true)
    cfg.alive;
  !some

let disagreement cfg =
  let seen0 = ref false and seen1 = ref false in
  Array.iteri
    (fun p alive ->
      if alive then
        match cfg.decided.(p) with
        | 0 -> seen0 := true
        | 1 -> seen1 := true
        | _ -> ())
    cfg.alive;
  !seen0 && !seen1

(** The optimal (sup over adversary strategies) probability that [objective]
    holds when the horizon is reached, starting from the given inputs. The
    adversary is adaptive: it picks each round's action knowing the full
    configuration, and future coin outcomes remain random. *)
let optimal game ~inputs ~objective =
  if Array.length inputs <> game.n then invalid_arg "Valency.optimal: inputs";
  let memo = Hashtbl.create 4096 in
  let rec value cfg round =
    if disagreement cfg then
      (* disagreement is absorbing: decisions are final *)
      if objective `Disagree then 1. else 0.
    else if round > game.horizon then begin
      let hit =
        match
          ( all_decided_on 1 cfg && not (someone_undecided cfg),
            all_decided_on 0 cfg && not (someone_undecided cfg),
            someone_undecided cfg )
        with
        | true, _, _ -> objective `All_one
        | _, true, _ -> objective `All_zero
        | _, _, true -> objective `Stall
        | _ -> false
      in
      if hit then 1. else 0.
    end
    else if (not (someone_undecided cfg)) && round <= game.horizon then
      (* everyone decided already: fast-forward to the horizon *)
      value cfg (game.horizon + 1)
    else begin
      let k = key game cfg round in
      match Hashtbl.find_opt memo k with
      | Some v -> v
      | None ->
          let best = ref 0. in
          List.iter
            (fun action ->
              let ties = tie_count game cfg action in
              let outcomes = 1 lsl ties in
              let p = 1. /. float_of_int outcomes in
              let total = ref 0. in
              for mask = 0 to outcomes - 1 do
                let coin_of idx = (mask lsr idx) land 1 in
                let cfg' = round_step game cfg action ~coin_of in
                total := !total +. (p *. value cfg' (round + 1))
              done;
              if !total > !best then best := !total)
            (actions game cfg);
          Hashtbl.replace memo k !best;
          !best
    end
  in
  let cfg =
    {
      bits = Array.copy inputs;
      alive = Array.make game.n true;
      decided = Array.make game.n (-1);
      faults = 0;
    }
  in
  value cfg 1

type analysis = {
  force1 : float;
  force0 : float;
  stall : float;
  disagree : float;
}

let analyze game ~inputs =
  let obj tag = optimal game ~inputs ~objective:(fun x -> x = tag) in
  {
    force1 = obj `All_one;
    force0 = obj `All_zero;
    stall = obj `Stall;
    disagree = obj `Disagree;
  }

(** The paper's classification, with an explicit threshold in place of the
    asymptotic 1/(n log n) +- i/n^2 bands. *)
type valence = Zero_valent | One_valent | Null_valent | Bivalent

let classify ?(threshold = 0.5) a =
  match (a.force1 >= threshold, a.force0 >= threshold) with
  | true, true -> Bivalent
  | true, false -> One_valent
  | false, true -> Zero_valent
  | false, false -> Null_valent

(** Lemma 13, exhaustively: scan every input assignment and report one that
    is bivalent or null-valent (the paper proves one must exist whenever
    the adversary controls at least one process). *)
let lemma13_witness ?(threshold = 0.5) game =
  let inputs_of i = Array.init game.n (fun p -> (i lsr p) land 1) in
  let rec scan i =
    if i >= 1 lsl game.n then None
    else begin
      let inputs = inputs_of i in
      let a = analyze game ~inputs in
      match classify ~threshold a with
      | Bivalent | Null_valent -> Some (inputs, a)
      | Zero_valent | One_valent -> scan (i + 1)
    end
  in
  scan 0
