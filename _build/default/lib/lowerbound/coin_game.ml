(** The one-round coin-flipping game of Section 4 / Appendix C (Lemma 12).

    k players draw independent uniform coins in {-1, +1}; the outcome is 1
    when the sum of the *visible* values is positive. The adversary, seeing
    all coins, may hide (set to bottom) some players' values; it can force
    outcome 0 exactly when the number of hidden +1 players is at least the
    drawn imbalance S = sum of coins.

    Lemma 12 (via Talagrand's inequality): hiding 8 sqrt(k log(1/alpha))
    values biases the game with probability > 1 - alpha. Empirically the
    required hide count is the (1-alpha)-quantile of S — Theta(sqrt(k
    log(1/alpha))) by the Gaussian tail, which is what {!required_hides}
    measures and the L12 bench compares against {!talagrand_budget}. *)

(** Draw the k coins and return the imbalance S (sum of the +/-1 values). *)
let imbalance rand ~k =
  let s = ref 0 in
  for _ = 1 to k do
    s := !s + if Sim.Rand.bit rand = 1 then 1 else -1
  done;
  !s

(** Can the adversary force outcome 0 by hiding at most [hide] values, for
    this draw? It hides majority (+1) players; success iff S <= hide. *)
let biasable ~imbalance ~hide = imbalance <= hide

(** Fraction of [trials] games the adversary wins with a hiding budget. *)
let success_rate rand ~k ~hide ~trials =
  let wins = ref 0 in
  for _ = 1 to trials do
    if biasable ~imbalance:(imbalance rand ~k) ~hide then incr wins
  done;
  float_of_int !wins /. float_of_int trials

(** Smallest hiding budget winning a (1 - alpha) fraction of [trials]
    games: the empirical (1-alpha)-quantile of max(0, S). *)
let required_hides rand ~k ~alpha ~trials =
  let samples =
    Array.init trials (fun _ -> float_of_int (max 0 (imbalance rand ~k)))
  in
  int_of_float (ceil (Stats.quantile (1. -. alpha) samples))

(** The paper's Lemma 12 budget: 8 sqrt(k log(1/alpha)). *)
let talagrand_budget ~k ~alpha =
  8. *. sqrt (float_of_int k *. log (1. /. alpha))
