(** The Theorem 2 experiment: the constructive vote-splitting adversary
    against biased-majority voting with k coin-flippers per round,
    measuring the forced product T x (R + T) against Omega(t^2 / log n). *)

type result = {
  n : int;
  t : int;
  coin_set : int;
  rounds : int;  (** T *)
  rand_calls : int;  (** R *)
  product : int;  (** T x (R + T) *)
  bound : float;  (** t^2 / log2 n (constants elided) *)
  decided : bool;
}

val run : ?seed:int -> n:int -> t:int -> coin_set:int -> unit -> result

val run_avg :
  ?seeds:int -> n:int -> t:int -> coin_set:int -> unit -> float * float * float
(** Averages over seeds 1..[seeds]: (mean T, mean R, mean product). *)
