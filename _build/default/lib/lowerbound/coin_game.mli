(** The one-round coin-flipping game of Appendix C (Lemma 12): k players
    draw uniform +/-1 coins; the adversary, seeing all of them, hides some
    to force the visible sum non-positive. *)

val imbalance : Sim.Rand.t -> k:int -> int
(** Draw the k coins; return the sum S. *)

val biasable : imbalance:int -> hide:int -> bool
(** Can outcome 0 be forced by hiding at most [hide] values for this draw?
    (Hiding majority players: success iff S <= hide.) *)

val success_rate : Sim.Rand.t -> k:int -> hide:int -> trials:int -> float

val required_hides : Sim.Rand.t -> k:int -> alpha:float -> trials:int -> int
(** Smallest hiding budget winning a (1 - alpha) fraction of games — the
    empirical (1-alpha)-quantile of max(0, S), Theta(sqrt(k log 1/alpha)). *)

val talagrand_budget : k:int -> alpha:float -> float
(** The paper's Lemma 12 budget: 8 sqrt(k log(1/alpha)). *)
