(** Sparse random communication graphs and the combinatorial properties of
    Theorem 4 / Lemmas 3-4 of the paper.

    The paper's processes agree on a predetermined graph with the Theorem 4
    properties (they pick the lexicographically smallest one). We instead
    sample R(n, delta/(n-1)) from a seed shared by all processes and
    re-sample until the property checks pass — equivalent functionality: a
    common predetermined graph with verified properties, no communication
    needed (see DESIGN.md, substitution 2).

    The paper's constant Delta = 832 log n is meaningless at simulation
    scale, so the degree parameter is explicit; defaults live in
    {!default_delta}. *)

type t = {
  n : int;
  delta : int;  (** expected degree used at sampling time *)
  adj : int array array;  (** sorted adjacency lists *)
}

let n t = t.n
let delta t = t.delta
let neighbors t v = t.adj.(v)
let degree t v = Array.length t.adj.(v)

let mem_edge t u v =
  let a = t.adj.(u) in
  let rec bsearch lo hi =
    if lo >= hi then false
    else begin
      let mid = (lo + hi) / 2 in
      if a.(mid) = v then true
      else if a.(mid) < v then bsearch (mid + 1) hi
      else bsearch lo mid
    end
  in
  bsearch 0 (Array.length a)

let edge_count t =
  Array.fold_left (fun acc a -> acc + Array.length a) 0 t.adj / 2

(** Default expected degree: c * ceil(log2 n), clamped to n-1. The paper
    uses 832 log n; we keep the Theta(log n) shape with a constant that
    leaves the graph sparse at laptop scale. *)
let default_delta ?(c = 8) n =
  min (n - 1) (max 6 (c * int_of_float (ceil (log (float_of_int n) /. log 2.))))

let sample ~n ~delta ~seed =
  if n < 2 then invalid_arg "Expander.sample: n must be >= 2";
  let delta = min delta (n - 1) in
  let rand = Sim.Rand.create ~seed () in
  let p = float_of_int delta /. float_of_int (n - 1) in
  let lists = Array.make n [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Sim.Rand.float rand < p then begin
        lists.(i) <- j :: lists.(i);
        lists.(j) <- i :: lists.(j)
      end
    done
  done;
  let adj = Array.map (fun l -> Array.of_list (List.rev l)) lists in
  Array.iter (fun a -> Array.sort compare a) adj;
  { n; delta; adj }

(* ------------------------------------------------------------------ *)
(* Theorem 4 property checks                                           *)
(* ------------------------------------------------------------------ *)

(** Property (iii): every degree within [lo*delta, hi*delta]. The paper
    proves [19/20, 21/20] for Delta = 832 log n; at small Delta the
    concentration is weaker, so callers pass looser factors. *)
let degree_bounds_ok t ~lo ~hi =
  let d = float_of_int t.delta in
  let ok = ref true in
  for v = 0 to t.n - 1 do
    let dv = float_of_int (degree t v) in
    if dv < lo *. d || dv > hi *. d then ok := false
  done;
  !ok

let count_internal_edges t subset_mask =
  let count = ref 0 in
  for v = 0 to t.n - 1 do
    if subset_mask.(v) then
      Array.iter (fun u -> if u > v && subset_mask.(u) then incr count) t.adj.(v)
  done;
  !count

let random_subset_mask rand n size =
  let perm = Array.init n (fun i -> i) in
  Sim.Rand.shuffle rand perm;
  let mask = Array.make n false in
  for i = 0 to size - 1 do
    mask.(perm.(i)) <- true
  done;
  mask

(** Property (ii), sampled: random subsets X with |X| <= max_size have at
    most [alpha * |X|] internal edges. (Exhaustive checking is exponential;
    random subsets are exactly the first moment the paper's union bound
    controls.) *)
let edge_sparsity_ok ?(samples = 50) t ~max_size ~alpha ~seed =
  let rand = Sim.Rand.create ~seed () in
  let ok = ref true in
  for _ = 1 to samples do
    let size = 2 + Sim.Rand.int_below rand (max 1 (max_size - 1)) in
    let mask = random_subset_mask rand t.n size in
    let internal = count_internal_edges t mask in
    if float_of_int internal > alpha *. float_of_int size then ok := false
  done;
  !ok

(** Property (i), sampled: random disjoint vertex sets of size [set_size]
    are always connected by at least one edge. *)
let expansion_ok ?(samples = 50) t ~set_size ~seed =
  let rand = Sim.Rand.create ~seed () in
  let ok = ref true in
  for _ = 1 to samples do
    let perm = Array.init t.n (fun i -> i) in
    Sim.Rand.shuffle rand perm;
    let in_x = Array.make t.n false and in_y = Array.make t.n false in
    for i = 0 to set_size - 1 do
      in_x.(perm.(i)) <- true;
      in_y.(perm.(set_size + i)) <- true
    done;
    let connected = ref false in
    for v = 0 to t.n - 1 do
      if in_x.(v) then
        Array.iter (fun u -> if in_y.(u) then connected := true) t.adj.(v)
    done;
    if not !connected then ok := false
  done;
  !ok

(* ------------------------------------------------------------------ *)
(* Lemma 4: pruning to a high-degree core                              *)
(* ------------------------------------------------------------------ *)

(** [prune t ~removed ~min_deg] iteratively discards vertices (beyond the
    initially [removed] ones) whose degree among survivors falls below
    [min_deg], and returns the survivor mask — the set A of Lemma 4: after
    the adversary disables the [removed] set, A is a core in which every
    member keeps at least [min_deg] live links. *)
let prune t ~removed ~min_deg =
  let alive = Array.map not removed in
  let deg = Array.make t.n 0 in
  for v = 0 to t.n - 1 do
    if alive.(v) then
      Array.iter (fun u -> if alive.(u) then deg.(v) <- deg.(v) + 1) t.adj.(v)
  done;
  let queue = Queue.create () in
  for v = 0 to t.n - 1 do
    if alive.(v) && deg.(v) < min_deg then Queue.add v queue
  done;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    if alive.(v) then begin
      alive.(v) <- false;
      Array.iter
        (fun u ->
          if alive.(u) then begin
            deg.(u) <- deg.(u) - 1;
            if deg.(u) < min_deg then Queue.add u queue
          end)
        t.adj.(v)
    end
  done;
  alive

let mask_size mask = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 mask

(* ------------------------------------------------------------------ *)
(* Lemma 3: dense neighborhoods grow fast                              *)
(* ------------------------------------------------------------------ *)

(** BFS layer sizes from [v] restricted to [mask]: element d is
    |N^d(v) ∩ mask|. Used to measure the "shallow" property — the dense
    core has logarithmic diameter. *)
let neighborhood_growth t ~mask ~v ~max_depth =
  if not mask.(v) then invalid_arg "Expander.neighborhood_growth: v not in mask";
  let dist = Array.make t.n (-1) in
  dist.(v) <- 0;
  let frontier = ref [ v ] in
  let reached = ref 1 in
  let sizes = Array.make (max_depth + 1) 0 in
  sizes.(0) <- 1;
  (try
     for d = 1 to max_depth do
       let next = ref [] in
       List.iter
         (fun u ->
           Array.iter
             (fun w ->
               if mask.(w) && dist.(w) = -1 then begin
                 dist.(w) <- d;
                 incr reached;
                 next := w :: !next
               end)
             t.adj.(u))
         !frontier;
       frontier := !next;
       sizes.(d) <- !reached;
       if !next = [] then raise Exit
     done
   with Exit -> begin
     (* fill the tail: the ball stopped growing *)
     let last = !reached in
     for d = 0 to max_depth do
       if sizes.(d) = 0 then sizes.(d) <- last
     done
   end);
  sizes

(** Eccentricity of [v] within [mask] (longest shortest path), or [None]
    if some mask vertex is unreachable. *)
let eccentricity_within t ~mask ~v =
  let dist = Array.make t.n (-1) in
  dist.(v) <- 0;
  let q = Queue.create () in
  Queue.add v q;
  let ecc = ref 0 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun w ->
        if mask.(w) && dist.(w) = -1 then begin
          dist.(w) <- dist.(u) + 1;
          if dist.(w) > !ecc then ecc := dist.(w);
          Queue.add w q
        end)
      t.adj.(u)
  done;
  let all_reached = ref true in
  for w = 0 to t.n - 1 do
    if mask.(w) && dist.(w) = -1 then all_reached := false
  done;
  if !all_reached then Some !ecc else None

(* ------------------------------------------------------------------ *)
(* The common predetermined graph                                      *)
(* ------------------------------------------------------------------ *)

exception No_good_graph of string

(** Resample until the Theorem 4 checks pass. All processes call this with
    the same (n, delta, seed) and hence obtain the same graph. Degree
    bounds are checked with factors loosened for small Delta; sparsity and
    expansion are sampled. *)
let create_good ?(attempts = 20) ~n ~delta ~seed () =
  let rec go k =
    if k >= attempts then
      raise
        (No_good_graph
           (Printf.sprintf "no good graph for n=%d delta=%d after %d attempts"
              n delta attempts));
    let g = sample ~n ~delta ~seed:(Int64.add seed (Int64.of_int (k * 7919))) in
    let degree_ok = degree_bounds_ok g ~lo:0.5 ~hi:1.6 in
    let set_size = max 2 (n / 10) in
    (* concentration is meaningless below a few dozen nodes — tiny graphs
       are (near-)complete and trivially well-connected *)
    let sparsity_ok =
      n < 20
      || edge_sparsity_ok g ~samples:30 ~max_size:set_size
           ~alpha:(float_of_int delta /. 4.)
           ~seed:(Int64.of_int (Int64.to_int seed + 13))
    in
    let expansion_ok' =
      n < 20
      || expansion_ok g ~samples:30 ~set_size
           ~seed:(Int64.of_int (Int64.to_int seed + 17))
    in
    if degree_ok && sparsity_ok && expansion_ok' then g else go (k + 1)
  in
  go 0
