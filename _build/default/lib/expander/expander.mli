(** Sparse random communication graphs with the combinatorial properties of
    Theorem 4 of the paper, and the pruning/growth lemmas (Lemmas 3-4) that
    make the operative/inoperative partition work.

    All processes construct the same graph locally from [(n, delta, seed)]
    — the reproduction's stand-in for the paper's "lexicographically
    smallest graph satisfying Theorem 4" (see DESIGN.md, substitution 2). *)

type t

val n : t -> int
(** Number of vertices. *)

val delta : t -> int
(** Expected degree the graph was sampled with. *)

val neighbors : t -> int -> int array
(** Sorted adjacency list of a vertex. *)

val degree : t -> int -> int

val mem_edge : t -> int -> int -> bool
(** [mem_edge g u v] — edge test by binary search, O(log degree). *)

val edge_count : t -> int

val default_delta : ?c:int -> int -> int
(** [default_delta n] = [c * ceil(log2 n)] clamped to [n-1]; [c] defaults
    to 8. The paper's Delta = 832 log n shape with a simulation-scale
    constant. *)

val sample : n:int -> delta:int -> seed:int64 -> t
(** One draw of R(n, delta/(n-1)): each edge present independently.
    Deterministic in the seed. Raises [Invalid_argument] if [n < 2]. *)

(** {1 Theorem 4 property checks} *)

val degree_bounds_ok : t -> lo:float -> hi:float -> bool
(** Property (iii): every degree within [[lo*delta, hi*delta]]. *)

val count_internal_edges : t -> bool array -> int
(** Edges with both endpoints inside the mask. *)

val edge_sparsity_ok :
  ?samples:int -> t -> max_size:int -> alpha:float -> seed:int64 -> bool
(** Property (ii), sampled: random subsets of size at most [max_size] have
    at most [alpha * size] internal edges. *)

val expansion_ok : ?samples:int -> t -> set_size:int -> seed:int64 -> bool
(** Property (i), sampled: random disjoint [set_size]-subsets are always
    joined by an edge. Requires [2 * set_size <= n]. *)

(** {1 Lemmas 3-4} *)

val prune : t -> removed:bool array -> min_deg:int -> bool array
(** Iteratively discard vertices whose degree among survivors drops below
    [min_deg], starting from the complement of [removed]. The survivor mask
    is Lemma 4's dense core: if the input graph satisfies Theorem 4 and
    [removed] has at most n/15 vertices, at least [n - 4/3 |removed|]
    vertices survive with [min_deg = delta/3]. *)

val mask_size : bool array -> int

val neighborhood_growth :
  t -> mask:bool array -> v:int -> max_depth:int -> int array
(** Element [d] is |ball of radius d around [v]| within [mask] — the
    doubling growth of Lemma 3. *)

val eccentricity_within : t -> mask:bool array -> v:int -> int option
(** Longest shortest path from [v] within [mask], or [None] if [mask] is
    disconnected from [v] — the "shallow" property. *)

(** {1 The common predetermined graph} *)

exception No_good_graph of string

val create_good :
  ?attempts:int -> n:int -> delta:int -> seed:int64 -> unit -> t
(** Resample until the Theorem 4 checks pass (degree bounds always; sampled
    sparsity and expansion for [n >= 20]). Deterministic in the seed, hence
    identical at every process. Raises {!No_good_graph} after [attempts]
    failures. *)
