(** Deterministic partitions of a member set and the binary-tree bag
    decomposition of GroupBitsAggregation (Figures 1-2 of the paper).
    Everything is a pure function of the member array, so all processes
    compute identical structures without communication. *)

type t = {
  members : int array;
  group_size : int;  (** maximum group size S *)
  group_count : int;
  group_of : (int, int) Hashtbl.t;
  rank_of : (int, int) Hashtbl.t;
  groups : int array array;
}

val partition_with_size : int array -> int -> t
(** Contiguous groups of at most the given size. *)

val sqrt_partition : int array -> t
(** The paper's sqrt-decomposition: ceil(sqrt m) groups of size at most
    ceil(sqrt m). *)

val partition_into : int array -> int -> t
(** Exactly [parts] groups of size at most ceil(m/parts) — the
    super-processes of Algorithm 4. *)

val group_of : t -> int -> int
(** Group index of a member pid. Raises [Invalid_argument] on non-members. *)

val rank_of : t -> int -> int
(** Rank of a member within its group. *)

val group : t -> int -> int array
val group_count : t -> int

(** {1 Binary-tree bags}

    Layers are 1-based. Layer 1 holds singleton bags in rank order; bag [k]
    of layer [j] is the union of bags [2k] and [2k+1] of layer [j-1]; the
    top layer holds one bag covering the whole group. *)

val layers : int -> int
(** Number of layers for a group of the given size (1 for singletons). *)

val stages : int -> int
(** Relay stages of GroupBitsAggregation: [layers size - 1]. *)

val bag_at : layer:int -> rank:int -> int
(** Bag containing the member of [rank] at [layer]. *)

val children : bag:int -> int * int
(** Children bag indices (they live one layer down). *)

val bag_ranks : size:int -> layer:int -> bag:int -> int * int
(** Rank half-open interval [lo, hi) a bag covers, clipped to the group
    size (possibly empty — the paper's empty bags). *)

val bag_members : t -> group:int -> layer:int -> bag:int -> int array
