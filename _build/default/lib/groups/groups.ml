(** Deterministic partitions of the process set and the binary-tree bag
    decomposition used by GroupBitsAggregation (Figures 1-2 of the paper).

    Everything here is a pure function of the member list, so all processes
    compute identical structures locally without communication — exactly the
    paper's "predefined partition". *)

type t = {
  members : int array;  (** the processes being partitioned, in order *)
  group_size : int;  (** maximum group size S *)
  group_count : int;
  group_of : (int, int) Hashtbl.t;  (** pid -> group index *)
  rank_of : (int, int) Hashtbl.t;  (** pid -> rank within its group *)
  groups : int array array;  (** group index -> member pids *)
}

(** Partition [members] into [ceil (m / size)] contiguous groups of at most
    [size] members each. *)
let partition_with_size members size =
  let m = Array.length members in
  if m = 0 then invalid_arg "Groups.partition_with_size: no members";
  if size <= 0 then invalid_arg "Groups.partition_with_size: size <= 0";
  let group_count = (m + size - 1) / size in
  let groups =
    Array.init group_count (fun g ->
        let start = g * size in
        let len = min size (m - start) in
        Array.sub members start len)
  in
  let group_of = Hashtbl.create m and rank_of = Hashtbl.create m in
  Array.iteri
    (fun g grp ->
      Array.iteri
        (fun rank pid ->
          Hashtbl.replace group_of pid g;
          Hashtbl.replace rank_of pid rank)
        grp)
    groups;
  { members; group_size = size; group_count; group_of; rank_of; groups }

(** The paper's sqrt-decomposition: ceil(sqrt m) groups of size at most
    ceil(sqrt m). *)
let sqrt_partition members =
  let m = Array.length members in
  let s = int_of_float (ceil (sqrt (float_of_int m))) in
  partition_with_size members (max 1 s)

(** Partition into exactly [parts] groups of size at most ceil(m/parts) —
    the super-processes SP_1..SP_x of Algorithm 4. *)
let partition_into members parts =
  let m = Array.length members in
  if parts <= 0 || parts > m then
    invalid_arg "Groups.partition_into: parts must be in [1, m]";
  partition_with_size members ((m + parts - 1) / parts)

let group_of t pid =
  match Hashtbl.find_opt t.group_of pid with
  | Some g -> g
  | None -> invalid_arg "Groups.group_of: pid not a member"

let rank_of t pid =
  match Hashtbl.find_opt t.rank_of pid with
  | Some r -> r
  | None -> invalid_arg "Groups.rank_of: pid not a member"

let group t g = t.groups.(g)
let group_count t = t.group_count

(* ------------------------------------------------------------------ *)
(* Binary-tree bag decomposition within a group                        *)
(* ------------------------------------------------------------------ *)

(** Layers are 1-based: layer 1 holds [size] singleton bags; bag [k] of
    layer [j] is the union of bags [2k] and [2k+1] of layer [j-1] (0-based
    bag indices; the paper writes 1-based [2k-1], [2k]). The top layer
    [layers size] holds the single bag equal to the whole group. *)

(** Number of layers for a group of [size] members: ceil(log2 size) + 1
    (a singleton group has one layer and no relay stages). *)
let layers size =
  if size <= 0 then invalid_arg "Groups.layers: size <= 0";
  let rec go acc cap = if cap >= size then acc else go (acc + 1) (cap * 2) in
  go 1 1

(** Relay stages executed by GroupBitsAggregation: one per layer above the
    first. *)
let stages size = layers size - 1

(** Bag containing the member of rank [rank] at layer [j]. *)
let bag_at ~layer ~rank =
  if layer < 1 then invalid_arg "Groups.bag_at: layer < 1";
  rank lsr (layer - 1)

(** Children bag indices of bag [k] at layer [j] (they live at layer j-1). *)
let children ~bag = (2 * bag, (2 * bag) + 1)

(** Ranks covered by bag [k] of layer [j], clipped to the group [size]. The
    range may be empty (the paper's empty bags). *)
let bag_ranks ~size ~layer ~bag =
  let lo = bag lsl (layer - 1) in
  let hi = min size (lo + (1 lsl (layer - 1))) in
  if lo >= size then (size, size) else (lo, hi)

let bag_members t ~group:g ~layer ~bag =
  let grp = t.groups.(g) in
  let lo, hi = bag_ranks ~size:(Array.length grp) ~layer ~bag in
  Array.sub grp lo (hi - lo)
