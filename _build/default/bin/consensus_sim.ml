(** Command-line driver: run any protocol against any adversary and print
    the three complexity metrics, or inspect a Theorem-4 communication
    graph. *)

open Cmdliner

let protocol_conv =
  Arg.enum
    [ ("optimal", `Optimal);
      ("param", `Param);
      ("bjbo", `Bjbo);
      ("flood", `Flood);
      ("dolev-strong", `Dolev_strong);
      ("crash-sub", `Crash_sub);
    ]

let adversary_conv =
  Arg.enum
    [
      ("none", `None);
      ("crash", `Crash);
      ("random", `Random);
      ("group", `Group);
      ("splitter", `Splitter);
      ("staggered", `Staggered);
      ("eclipse", `Eclipse);
    ]

let inputs_conv =
  Arg.enum [ ("mixed", `Mixed); ("ones", `Ones); ("zeros", `Zeros); ("random", `Random) ]

let make_inputs kind n seed =
  match kind with
  | `Mixed -> Array.init n (fun i -> i mod 2)
  | `Ones -> Array.make n 1
  | `Zeros -> Array.make n 0
  | `Random ->
      let rand = Sim.Rand.create ~seed:(Int64.of_int (seed + 99)) () in
      Array.init n (fun _ -> Sim.Rand.bit rand)

let make_adversary kind =
  match kind with
  | `None -> Adversary.none
  | `Crash -> Adversary.crash_schedule [ (1, [ 0 ]); (2, [ 1 ]); (5, [ 2; 3 ]) ]
  | `Random -> Adversary.random_omission ~p_omit:0.7
  | `Group -> Adversary.group_killer ()
  | `Splitter -> Adversary.vote_splitter ()
  | `Staggered -> Adversary.staggered_crash ~per_round:3
  | `Eclipse -> Adversary.eclipse ~victim:0

let run_cmd protocol n t x seed adversary inputs_kind =
  let cfg0 = Sim.Config.make ~n ~t_max:t ~seed () in
  let proto, max_rounds =
    match protocol with
    | `Optimal ->
        ( Consensus.Optimal_omissions.protocol cfg0,
          Consensus.Optimal_omissions.rounds_needed cfg0 )
    | `Param ->
        ( Consensus.Param_omissions.protocol ~x cfg0,
          Consensus.Param_omissions.rounds_needed ~x cfg0 )
    | `Bjbo -> (Consensus.Bjbo.protocol cfg0, 60 * (t + 10))
    | `Flood -> (Consensus.Flood.protocol cfg0, t + 10)
    | `Dolev_strong -> (Consensus.Dolev_strong.protocol cfg0, t + 10)
    | `Crash_sub ->
        ( Consensus.Crash_subquadratic.protocol cfg0,
          Consensus.Crash_subquadratic.rounds_needed cfg0 )
  in
  let cfg = { cfg0 with Sim.Config.max_rounds } in
  let inputs = make_inputs inputs_kind n seed in
  let o = Sim.Engine.run proto cfg ~adversary:(make_adversary adversary) ~inputs in
  Fmt.pr "protocol           : %s@."
    (let module P = (val proto : Sim.Protocol_intf.S) in
     P.name);
  Fmt.pr "n / t / seed       : %d / %d / %d@." n t seed;
  Fmt.pr "adversary          : %s (faults used %d)@."
    (make_adversary adversary).Sim.Adversary_intf.name o.Sim.Engine.faults_used;
  Fmt.pr "rounds (T)         : %d%s@." o.rounds_total
    (match o.decided_round with
    | Some r -> Printf.sprintf " (all non-faulty decided by round %d)" r
    | None -> " (DID NOT TERMINATE within max_rounds)");
  Fmt.pr "messages / bits    : %d / %d@." o.messages_sent o.bits_sent;
  Fmt.pr "rand calls / bits  : %d / %d@." o.rand_calls o.rand_bits;
  Fmt.pr "omitted messages   : %d@." o.messages_omitted;
  (match Sim.Engine.agreed_decision o with
  | Some v -> Fmt.pr "decision           : %d (agreement holds)@." v
  | None ->
      Fmt.pr "decision           : DISAGREEMENT OR MISSING DECISIONS@.";
      exit 1);
  ()

let graph_cmd n delta_c seed =
  let delta = Expander.default_delta ~c:delta_c n in
  let g = Expander.create_good ~n ~delta ~seed:(Int64.of_int seed) () in
  let degs = Array.init n (fun v -> float_of_int (Expander.degree g v)) in
  Fmt.pr "n=%d delta=%d edges=%d@." n delta (Expander.edge_count g);
  Fmt.pr "degree: min=%.0f mean=%.1f max=%.0f@."
    (Array.fold_left min degs.(0) degs)
    (Stats.mean degs)
    (Array.fold_left max degs.(0) degs);
  let removed = Array.init n (fun v -> v < n / 15) in
  let core = Expander.prune g ~removed ~min_deg:(delta / 3) in
  Fmt.pr "Lemma 4: removed %d nodes -> dense core of %d (bound n - 4/3|T| = %d)@."
    (n / 15)
    (Expander.mask_size core)
    (n - (4 * (n / 15) / 3));
  let v = ref 0 in
  while !v < n && not core.(!v) do
    incr v
  done;
  if !v < n then
    match Expander.eccentricity_within g ~mask:core ~v:!v with
    | Some e -> Fmt.pr "core eccentricity from node %d: %d@." !v e
    | None -> Fmt.pr "core is disconnected@."

let n_arg =
  Arg.(value & opt int 128 & info [ "n" ] ~doc:"Number of processes.")

let t_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "t" ] ~doc:"Fault budget (default n/31).")

let x_arg =
  Arg.(value & opt int 4 & info [ "x" ] ~doc:"Super-process count (param).")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.")

let delta_c_arg =
  Arg.(value & opt int 8 & info [ "delta-c" ] ~doc:"Degree constant.")

let run_term =
  let protocol =
    Arg.(
      value
      & opt protocol_conv `Optimal
      & info [ "protocol"; "p" ] ~doc:"Protocol: optimal, param, bjbo, flood, dolev-strong, crash-sub.")
  in
  let adversary =
    Arg.(
      value
      & opt adversary_conv `None
      & info [ "adversary"; "a" ]
          ~doc:"Adversary: none, crash, random, group, splitter, staggered, eclipse.")
  in
  let inputs =
    Arg.(
      value
      & opt inputs_conv `Mixed
      & info [ "inputs"; "i" ] ~doc:"Inputs: mixed, ones, zeros, random.")
  in
  Term.(
    const (fun protocol n t x seed adversary inputs ->
        let t = match t with Some t -> t | None -> max 1 (n / 31) in
        run_cmd protocol n t x seed adversary inputs)
    $ protocol $ n_arg $ t_arg $ x_arg $ seed_arg $ adversary $ inputs)

let graph_term =
  Term.(const graph_cmd $ n_arg $ delta_c_arg $ seed_arg)

let cmds =
  [
    Cmd.v (Cmd.info "run" ~doc:"Run a consensus protocol in the simulator")
      run_term;
    Cmd.v (Cmd.info "graph" ~doc:"Inspect a Theorem-4 communication graph")
      graph_term;
  ]

let () =
  let doc = "Omission-tolerant consensus simulator (PODC 2024 reproduction)" in
  exit (Cmd.eval (Cmd.group (Cmd.info "consensus_sim" ~doc) cmds))
