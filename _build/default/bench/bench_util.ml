(* Shared plumbing for the experiment harness. *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n-- %s --\n" title

let row fmt = Printf.printf fmt

type run_measure = {
  rounds : int;  (** decided round, or total if not terminated *)
  decided : bool;
  messages : int;
  bits : int;
  rand_calls : int;
  rand_bits : int;
  faults : int;
}

let measure ?on_round proto cfg ~adversary ~inputs =
  let o = Sim.Engine.run ?on_round proto cfg ~adversary ~inputs in
  (match Sim.Engine.agreed_decision o with
  | Some _ -> ()
  | None ->
      failwith
        "experiment run violated consensus — this is a bug, please report");
  {
    rounds =
      (match o.Sim.Engine.decided_round with
      | Some r -> r
      | None -> o.rounds_total);
    decided = o.decided_round <> None;
    messages = o.messages_sent;
    bits = o.bits_sent;
    rand_calls = o.rand_calls;
    rand_bits = o.rand_bits;
    faults = o.faults_used;
  }

(* Average a measurement over seeds. *)
let avg_measure ~seeds f =
  let ms = List.map f seeds in
  let n = float_of_int (List.length ms) in
  let favg g = List.fold_left (fun a m -> a +. float_of_int (g m)) 0. ms /. n in
  ( favg (fun m -> m.rounds),
    favg (fun m -> m.bits),
    favg (fun m -> m.rand_bits),
    favg (fun m -> m.messages) )

let optimal_run ?(adversary = Adversary.vote_splitter ()) ~n ~t ~seed () =
  let cfg = Sim.Config.make ~n ~t_max:t ~seed ~max_rounds:20000 () in
  let proto = Consensus.Optimal_omissions.protocol cfg in
  let inputs = Array.init n (fun i -> i mod 2) in
  measure proto cfg ~adversary ~inputs

let fit_exponent ?(log_power = 0) ns ys =
  Stats.growth_exponent ~log_power
    (Array.of_list (List.map float_of_int ns))
    (Array.of_list ys)
