(* Bechamel micro-benchmarks: one Test.make per Table-1 experiment (a
   scaled-down instance of each), plus the substrate hot paths. *)

open Bechamel
open Toolkit

let run_protocol make_proto ~n ~t ~adversary () =
  let cfg = Sim.Config.make ~n ~t_max:t ~seed:1 ~max_rounds:20000 () in
  let proto = make_proto cfg in
  let inputs = Array.init n (fun i -> i mod 2) in
  let o = Sim.Engine.run proto cfg ~adversary ~inputs in
  assert (Sim.Engine.agreed_decision o <> None)

let test_thm1 =
  Test.make ~name:"T1-thm1: optimal-omissions n=36"
    (Staged.stage
       (run_protocol
          (fun cfg -> Consensus.Optimal_omissions.protocol cfg)
          ~n:36 ~t:1
          ~adversary:(Adversary.vote_splitter ())))

let test_thm3 =
  Test.make ~name:"T1-thm3: param-omissions n=36 x=4"
    (Staged.stage (fun () ->
         let n = 36 in
         let cfg0 = Sim.Config.make ~n ~t_max:1 ~seed:1 () in
         let max_rounds =
           Consensus.Param_omissions.rounds_needed ~x:4 cfg0 + 5
         in
         let cfg = Sim.Config.make ~n ~t_max:1 ~seed:1 ~max_rounds () in
         let proto = Consensus.Param_omissions.protocol ~x:4 cfg in
         let inputs = Array.init n (fun i -> i mod 2) in
         let o =
           Sim.Engine.run proto cfg ~adversary:Sim.Adversary_intf.none ~inputs
         in
         assert (Sim.Engine.agreed_decision o <> None)))

let test_bjbo =
  Test.make ~name:"T1-bjbo: biased-majority n=64"
    (Staged.stage
       (run_protocol
          (fun cfg -> Consensus.Bjbo.protocol cfg)
          ~n:64 ~t:8
          ~adversary:(Adversary.vote_splitter ())))

let test_abraham =
  Test.make ~name:"T1-abraham: flood-min n=64"
    (Staged.stage
       (run_protocol
          (fun cfg -> Consensus.Flood.protocol cfg)
          ~n:64 ~t:8
          ~adversary:(Adversary.staggered_crash ~per_round:2)))

let test_thm2 =
  Test.make ~name:"T1-thm2: product experiment n=64"
    (Staged.stage (fun () ->
         let r = Lowerbound.Product.run ~seed:1 ~n:64 ~t:16 ~coin_set:8 () in
         assert r.Lowerbound.Product.decided))

let test_coin_game =
  Test.make ~name:"L12: coin game k=1024"
    (Staged.stage (fun () ->
         let rand = Sim.Rand.create ~seed:1L () in
         ignore (Lowerbound.Coin_game.imbalance rand ~k:1024)))

let test_expander =
  Test.make ~name:"G4: expander sample+prune n=256"
    (Staged.stage (fun () ->
         let g = Expander.sample ~n:256 ~delta:64 ~seed:9L in
         let removed = Array.init 256 (fun v -> v < 17) in
         ignore (Expander.prune g ~removed ~min_deg:21)))

let benchmark () =
  let tests =
    [
      test_thm1;
      test_thm3;
      test_bjbo;
      test_abraham;
      test_thm2;
      test_coin_game;
      test_expander;
    ]
  in
  Bench_util.section "Bechamel micro-benchmarks (one per experiment)";
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) ()
  in
  let instances = Instance.[ monotonic_clock ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true
                       ~predictors:[| Measure.run |])
          (Instance.monotonic_clock) results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              Printf.printf "  %-40s %12.0f ns/run\n%!" name est
          | _ -> Printf.printf "  %-40s (no estimate)\n%!" name)
        analyzed)
    tests
