bench/bench_util.ml: Adversary Array Consensus List Printf Sim Stats String
