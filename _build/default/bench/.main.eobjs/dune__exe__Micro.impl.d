bench/micro.ml: Adversary Analyze Array Bechamel Bench_util Benchmark Consensus Expander Hashtbl Instance List Lowerbound Measure Printf Sim Staged Test Time Toolkit
