bench/ablations.ml: Adversary Array Bench_util Consensus List Printf Sim
