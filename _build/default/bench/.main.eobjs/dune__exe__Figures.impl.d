bench/figures.ml: Adversary Array Bench_util Consensus Expander Groups Hashtbl List Lowerbound Printf Sim String
