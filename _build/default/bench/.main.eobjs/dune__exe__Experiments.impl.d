bench/experiments.ml: Adversary Array Bench_util Consensus Float List Lowerbound Printf Sim
