bench/main.mli:
