bench/main.ml: Ablations Arg Experiments Figures List Micro Printf String Unix
