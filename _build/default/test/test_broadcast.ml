(* Tests for the operative-partition broadcast (the Section 6 extension). *)

let run ?(n = 64) ?(t = 2) ?(seed = 1) ?(source = 0)
    ?(adversary = Sim.Adversary_intf.none) input =
  let cfg = Sim.Config.make ~n ~t_max:t ~seed ~max_rounds:200 () in
  let proto = Consensus.Operative_broadcast.protocol ~source cfg in
  let inputs = Array.init n (fun i -> if i = source then input else 0) in
  Sim.Engine.run proto cfg ~adversary ~inputs

let test_delivery () =
  List.iter
    (fun input ->
      let o = run input in
      Array.iteri
        (fun pid d ->
          if not o.Sim.Engine.faulty.(pid) then
            Alcotest.(check (option int))
              (Printf.sprintf "pid %d delivers" pid)
              (Some input) d)
        o.decisions)
    [ 0; 1 ]

let test_nonzero_source () =
  let o = run ~source:17 1 in
  Alcotest.(check (option int)) "delivered from source 17" (Some 1)
    (Sim.Engine.agreed_decision o)

let test_under_adversaries () =
  List.iter
    (fun adversary ->
      (* source 5 may itself be corrupted by some strategies; we only
         require that *non-faulty* processes agree among themselves *)
      let o = run ~n:100 ~t:3 ~source:5 ~adversary 1 in
      Alcotest.(check bool)
        ("agreement under " ^ adversary.Sim.Adversary_intf.name)
        true
        (Sim.Engine.agreed_decision o <> None))
    [
      Adversary.none;
      Adversary.random_omission ~p_omit:0.8;
      Adversary.staggered_crash ~per_round:1;
      Adversary.group_killer ();
    ]

let test_log_rounds () =
  let o = run ~n:256 1 in
  (* 2 log2 n gossip rounds + 1 decision round *)
  Alcotest.(check (option int)) "O(log n) rounds" (Some 17) o.decided_round

let test_subquadratic_bits () =
  let o = run ~n:256 1 in
  Alcotest.(check bool) "bits well below n^2 (t+1) flooding" true
    (o.bits_sent < 256 * 256 * 5)

let test_crashed_source_default () =
  (* crash the source before it speaks: everyone times out to the default *)
  let adversary = Adversary.crash_schedule [ (1, [ 0 ]) ] in
  let o = run ~adversary 1 in
  Array.iteri
    (fun pid d ->
      if not o.Sim.Engine.faulty.(pid) then
        Alcotest.(check (option int)) "default on silent source" (Some 0) d)
    o.decisions

let suite =
  [
    Alcotest.test_case "delivery" `Quick test_delivery;
    Alcotest.test_case "non-zero source" `Quick test_nonzero_source;
    Alcotest.test_case "under adversaries" `Quick test_under_adversaries;
    Alcotest.test_case "O(log n) rounds" `Quick test_log_rounds;
    Alcotest.test_case "subquadratic bits" `Quick test_subquadratic_bits;
    Alcotest.test_case "crashed source defaults" `Quick
      test_crashed_source_default;
  ]
