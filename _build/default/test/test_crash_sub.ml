(* Tests for the Appendix B.3 crash-model subquadratic variant. *)

let run ?(n = 64) ?t ?(seed = 1) ?(adversary = Sim.Adversary_intf.none) inputs =
  let t = match t with Some t -> t | None -> max 1 (n / 31) in
  let cfg0 = Sim.Config.make ~n ~t_max:t ~seed () in
  let max_rounds = Consensus.Crash_subquadratic.rounds_needed cfg0 + 10 in
  let cfg = Sim.Config.make ~n ~t_max:t ~seed ~max_rounds () in
  Sim.Engine.run (Consensus.Crash_subquadratic.protocol cfg) cfg ~adversary
    ~inputs

let check ~what ~inputs o =
  Alcotest.(check bool) (what ^ ": all decided") true
    (Sim.Engine.all_nonfaulty_decided o);
  match Sim.Engine.agreed_decision o with
  | None -> Alcotest.fail (what ^ ": agreement violated")
  | Some v ->
      Alcotest.(check bool) (what ^ ": weak validity") true
        (Array.exists (fun b -> b = v) inputs);
      v

let mixed n = Array.init n (fun i -> i mod 2)

let test_basic () =
  let inputs = mixed 64 in
  let o = run inputs in
  ignore (check ~what:"crash-sub" ~inputs o)

let test_validity () =
  List.iter
    (fun b ->
      let inputs = Array.make 48 b in
      let o = run ~n:48 inputs in
      Alcotest.(check int) "validity" b (check ~what:"crash-sub" ~inputs o);
      Alcotest.(check int) "unanimity uses no coins" 0 o.rand_calls)
    [ 0; 1 ]

let test_crash_adversaries () =
  List.iter
    (fun adversary ->
      List.iter
        (fun seed ->
          let inputs = mixed 60 in
          let o = run ~n:60 ~seed ~adversary inputs in
          ignore
            (check
               ~what:("crash-sub vs " ^ adversary.Sim.Adversary_intf.name)
               ~inputs o))
        [ 1; 2 ])
    [
      Adversary.crash_schedule [ (1, [ 0 ]); (4, [ 1 ]) ];
      Adversary.staggered_crash ~per_round:1;
      Adversary.vote_splitter ();
    ]

let test_dissemination_cheaper () =
  (* the whole point: the post-voting dissemination is far below the n^2
     broadcast Algorithm 1 pays *)
  let n = 144 in
  let t = max 1 (n / 31) in
  let members = Array.init n (fun i -> i) in
  let sh =
    Consensus.Core.make_shared ~members ~seed:1
      ~params:Consensus.Params.default ~t_max:t ()
  in
  let v = Consensus.Core.rounds sh in
  let dissem proto_of =
    let acc = ref 0 in
    let cfg0 = Sim.Config.make ~n ~t_max:t ~seed:1 () in
    let cfg = { cfg0 with Sim.Config.max_rounds = 20000 } in
    let o =
      Sim.Engine.run
        ~on_round:(fun ~round envelopes ->
          if round >= v then
            Array.iter (fun e -> acc := !acc + e.Sim.View.bits) envelopes)
        (proto_of cfg) cfg
        ~adversary:(Adversary.staggered_crash ~per_round:1)
        ~inputs:(mixed n)
    in
    Alcotest.(check bool) "decided" true (Sim.Engine.agreed_decision o <> None);
    !acc
  in
  let om = dissem (fun cfg -> Consensus.Optimal_omissions.protocol cfg) in
  let cr = dissem (fun cfg -> Consensus.Crash_subquadratic.protocol cfg) in
  Alcotest.(check bool)
    (Printf.sprintf "dissemination %d < %d / 2" cr om)
    true
    (2 * cr < om)

let test_straggler_rescue () =
  (* cut one process off from the whole voting phase: it must still decide
     through the help protocol. We use the engine's omission mechanism via
     a corrupted neighborhood — simplest: crash the victim itself is not
     allowed (faulty processes need no guarantees), so instead corrupt a
     handful of its expander neighbors early and verify termination. *)
  let inputs = mixed 64 in
  let adversary = Adversary.eclipse ~victim:3 in
  let o = run ~adversary inputs in
  ignore (check ~what:"straggler" ~inputs o)

let test_determinism () =
  let inputs = mixed 48 in
  let o1 = run ~n:48 ~seed:5 inputs and o2 = run ~n:48 ~seed:5 inputs in
  Alcotest.(check (array (option int))) "same decisions" o1.decisions
    o2.decisions;
  Alcotest.(check int) "same bits" o1.bits_sent o2.bits_sent

let suite =
  [
    Alcotest.test_case "basic consensus" `Quick test_basic;
    Alcotest.test_case "validity" `Quick test_validity;
    Alcotest.test_case "crash adversaries" `Quick test_crash_adversaries;
    Alcotest.test_case "dissemination subquadratic" `Quick
      test_dissemination_cheaper;
    Alcotest.test_case "straggler rescue" `Quick test_straggler_rescue;
    Alcotest.test_case "determinism" `Quick test_determinism;
  ]
