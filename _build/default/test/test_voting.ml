(* Tests for the biased-majority thresholds (Figure 3) and the phase-king
   fallback. *)

let counted_rand () =
  let c = Sim.Rand.Counter.create () in
  (Sim.Rand.create ~counter:c ~seed:3L (), c)

let test_update_forced_one () =
  let rand, c = counted_rand () in
  (* 19/30 > 18/30 *)
  let u = Consensus.Voting.update ~ones:19 ~zeros:11 ~rand in
  Alcotest.(check int) "forced 1" 1 u.Consensus.Voting.b;
  Alcotest.(check bool) "no coin" false u.used_coin;
  Alcotest.(check int) "no randomness drawn" 0 (Sim.Rand.Counter.calls c)

let test_update_forced_zero () =
  let rand, c = counted_rand () in
  (* 14/30 < 15/30 *)
  let u = Consensus.Voting.update ~ones:14 ~zeros:16 ~rand in
  Alcotest.(check int) "forced 0" 0 u.Consensus.Voting.b;
  Alcotest.(check int) "no randomness drawn" 0 (Sim.Rand.Counter.calls c)

let test_update_window_coin () =
  let rand, c = counted_rand () in
  (* exactly half: 15/30 is not < 15/30 and not > 18/30 *)
  let u = Consensus.Voting.update ~ones:15 ~zeros:15 ~rand in
  Alcotest.(check bool) "coin flipped" true u.Consensus.Voting.used_coin;
  Alcotest.(check int) "one random bit" 1 (Sim.Rand.Counter.calls c)

let test_update_boundaries () =
  let rand, _ = counted_rand () in
  (* ones = 18/30 exactly: NOT forced one (strict >) -> window *)
  let u = Consensus.Voting.update ~ones:18 ~zeros:12 ~rand in
  Alcotest.(check bool) "18/30 is window" true u.Consensus.Voting.used_coin;
  (* just above *)
  let u = Consensus.Voting.update ~ones:181 ~zeros:119 ~rand in
  Alcotest.(check int) "181/300 forced 1" 1 u.Consensus.Voting.b;
  Alcotest.(check bool) "no coin" false u.used_coin

let test_update_unanimous () =
  let rand, c = counted_rand () in
  let u1 = Consensus.Voting.update ~ones:30 ~zeros:0 ~rand in
  let u0 = Consensus.Voting.update ~ones:0 ~zeros:30 ~rand in
  Alcotest.(check int) "all ones" 1 u1.Consensus.Voting.b;
  Alcotest.(check int) "all zeros" 0 u0.Consensus.Voting.b;
  Alcotest.(check int) "unanimity never draws" 0 (Sim.Rand.Counter.calls c)

let test_ready () =
  Alcotest.(check bool) "28/30 ready" true
    (Consensus.Voting.ready ~ones:28 ~zeros:2);
  Alcotest.(check bool) "2/30 ready" true
    (Consensus.Voting.ready ~ones:2 ~zeros:28);
  Alcotest.(check bool) "27/30 not ready (strict)" false
    (Consensus.Voting.ready ~ones:27 ~zeros:3);
  Alcotest.(check bool) "3/30 not ready (strict)" false
    (Consensus.Voting.ready ~ones:3 ~zeros:27);
  Alcotest.(check bool) "half not ready" false
    (Consensus.Voting.ready ~ones:15 ~zeros:15);
  Alcotest.(check bool) "empty not ready" false
    (Consensus.Voting.ready ~ones:0 ~zeros:0)

let test_update_deterministic () =
  Alcotest.(check int) "window keeps current" 1
    (Consensus.Voting.update_deterministic ~ones:16 ~zeros:14 ~current:1);
  Alcotest.(check int) "window keeps current 0" 0
    (Consensus.Voting.update_deterministic ~ones:16 ~zeros:14 ~current:0);
  Alcotest.(check int) "forced one" 1
    (Consensus.Voting.update_deterministic ~ones:19 ~zeros:11 ~current:0);
  Alcotest.(check int) "forced zero" 0
    (Consensus.Voting.update_deterministic ~ones:14 ~zeros:16 ~current:1)

let test_update_empty_rejected () =
  let rand, _ = counted_rand () in
  Alcotest.check_raises "no counts rejected"
    (Invalid_argument "Voting.update: no counts") (fun () ->
      ignore (Consensus.Voting.update ~ones:0 ~zeros:0 ~rand))

let qcheck_no_contradiction =
  (* two processes whose counts differ by at most the inoperative drift
     cannot be deterministically forced to opposite values when the drift
     is below the threshold gap (the 18/30 vs 15/30 separation) *)
  QCheck.Test.make ~name:"threshold gap prevents contradiction" ~count:1000
    QCheck.(triple (int_range 0 300) (int_range 0 300) (int_range 0 10))
    (fun (ones, zeros, drift) ->
      let tot = ones + zeros in
      QCheck.assume (tot > 0 && tot >= 10 * drift);
      let rand = Sim.Rand.create ~seed:1L () in
      let u1 = Consensus.Voting.update ~ones ~zeros ~rand in
      (* the other process misses up to [drift] ones *)
      let ones' = max 0 (ones - drift) in
      QCheck.assume (ones' + zeros > 0);
      let u2 = Consensus.Voting.update ~ones:ones' ~zeros ~rand in
      not
        ((not u1.Consensus.Voting.used_coin)
        && (not u2.Consensus.Voting.used_coin)
        && u1.b <> u2.b))

(* --- phase king --- *)

(* Drive phase-king instances directly over a lossless network. *)
let run_phase_king ~n ~t_max ~participating ~inputs =
  let sts =
    Array.init n (fun pid ->
        Consensus.Phase_king.create ~n ~t_max ~pid
          ~participating:(participating pid) ~input:(inputs pid))
  in
  let inboxes = Array.make n [] in
  let rounds = Consensus.Phase_king.rounds ~t_max in
  for r = 1 to rounds do
    let next = Array.make n [] in
    Array.iteri
      (fun pid st ->
        let st, out =
          Consensus.Phase_king.step st ~local_round:r ~inbox:inboxes.(pid)
        in
        sts.(pid) <- st;
        List.iter (fun (dst, m) -> next.(dst) <- (pid, m) :: next.(dst)) out)
      sts;
    Array.iteri
      (fun i l -> inboxes.(i) <- List.sort (fun (a, _) (b, _) -> compare a b) l)
      next
  done;
  Array.iteri
    (fun pid st ->
      sts.(pid) <- Consensus.Phase_king.finalize st ~inbox:inboxes.(pid))
    sts;
  Array.map Consensus.Phase_king.decision sts

let test_pk_agreement_mixed () =
  let d =
    run_phase_king ~n:12 ~t_max:2 ~participating:(fun _ -> true)
      ~inputs:(fun pid -> pid mod 2)
  in
  let v = match d.(0) with Some v -> v | None -> Alcotest.fail "no decision" in
  Array.iter
    (fun x -> Alcotest.(check (option int)) "agreement" (Some v) x)
    d

let test_pk_validity () =
  List.iter
    (fun b ->
      let d =
        run_phase_king ~n:9 ~t_max:1 ~participating:(fun _ -> true)
          ~inputs:(fun _ -> b)
      in
      Array.iter
        (fun x -> Alcotest.(check (option int)) "validity" (Some b) x)
        d)
    [ 0; 1 ]

let test_pk_nonparticipants_silent () =
  (* only a subset participates; non-participants must not decide *)
  let d =
    run_phase_king ~n:10 ~t_max:1
      ~participating:(fun pid -> pid >= 5)
      ~inputs:(fun _ -> 1)
  in
  for pid = 0 to 4 do
    Alcotest.(check (option int)) "silent" None d.(pid)
  done;
  for pid = 5 to 9 do
    Alcotest.(check (option int)) "participants decide input" (Some 1) d.(pid)
  done

let test_pk_unanimous_subset () =
  (* a small unanimous participant set decides its value even with large
     t_max (the mixed case of Lemma 11) *)
  let d =
    run_phase_king ~n:20 ~t_max:4
      ~participating:(fun pid -> pid mod 7 = 0)
      ~inputs:(fun _ -> 0)
  in
  Array.iteri
    (fun pid x ->
      if pid mod 7 = 0 then
        Alcotest.(check (option int)) "unanimous subset" (Some 0) x)
    d

let test_pk_rounds_linear () =
  Alcotest.(check int) "t=0" 4 (Consensus.Phase_king.rounds ~t_max:0);
  Alcotest.(check int) "t=3" 28 (Consensus.Phase_king.rounds ~t_max:3)

let suite =
  [
    Alcotest.test_case "update forced one" `Quick test_update_forced_one;
    Alcotest.test_case "update forced zero" `Quick test_update_forced_zero;
    Alcotest.test_case "update window coin" `Quick test_update_window_coin;
    Alcotest.test_case "update boundaries" `Quick test_update_boundaries;
    Alcotest.test_case "update unanimity" `Quick test_update_unanimous;
    Alcotest.test_case "ready thresholds" `Quick test_ready;
    Alcotest.test_case "deterministic update" `Quick test_update_deterministic;
    Alcotest.test_case "empty counts rejected" `Quick test_update_empty_rejected;
    QCheck_alcotest.to_alcotest qcheck_no_contradiction;
    Alcotest.test_case "phase-king agreement" `Quick test_pk_agreement_mixed;
    Alcotest.test_case "phase-king validity" `Quick test_pk_validity;
    Alcotest.test_case "phase-king non-participants" `Quick
      test_pk_nonparticipants_silent;
    Alcotest.test_case "phase-king unanimous subset" `Quick
      test_pk_unanimous_subset;
    Alcotest.test_case "phase-king round count" `Quick test_pk_rounds_linear;
  ]
