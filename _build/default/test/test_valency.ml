(* Exhaustive valency analysis of the toy voting game (Lemma 13 and the
   Appendix C state classification, on instances small enough to solve
   exactly). These tests quantify over EVERY adaptive crash strategy within
   the budget — they are exhaustive model-checking results, not sampled
   runs. *)

module V = Lowerbound.Valency

let game ?(n = 3) ?(t = 1) ?(horizon = 4) () = { V.n; t; horizon }

let test_validity_exhaustive () =
  (* all-zeros input: NO adversary strategy can force a 1-decision (the
     protocol's validity, proved exhaustively); symmetrically for ones *)
  let a = V.analyze (game ()) ~inputs:[| 0; 0; 0 |] in
  Alcotest.(check (float 0.)) "force1 = 0 on zeros" 0. a.V.force1;
  Alcotest.(check (float 0.)) "immediate decision" 0. a.stall;
  let a = V.analyze (game ()) ~inputs:[| 1; 1; 1 |] in
  Alcotest.(check (float 0.)) "force0 = 0 on ones" 0. a.V.force0

let test_safety_exhaustive_t1 () =
  (* with t = 1 no strategy can cause disagreement, on any input *)
  for mask = 0 to 7 do
    let inputs = Array.init 3 (fun p -> (mask lsr p) land 1) in
    let a = V.analyze (game ~t:1 ()) ~inputs in
    Alcotest.(check (float 0.))
      (Printf.sprintf "disagree = 0 for inputs %d%d%d" inputs.(0) inputs.(1)
         inputs.(2))
      0. a.V.disagree
  done

let test_safety_exhaustive_t2 () =
  (* stronger: even with t = 2 of 3 the unanimity decision rule is safe —
     a decided value sits in every later view while its holder is alive,
     and two opposite unanimous views in one round would need a process to
     out-vote its own bit. The analyzer proves this exhaustively. *)
  let a = V.analyze (game ~t:2 ()) ~inputs:[| 1; 0; 1 |] in
  Alcotest.(check (float 0.)) "disagree = 0 even at t=2" 0. a.V.disagree

let test_mixed_is_bivalent () =
  (* the adversary can steer a mixed input both ways: crash the minority
     holder for 1, or a majority holder and win the coin war for 0 *)
  let a = V.analyze (game ~horizon:6 ()) ~inputs:[| 1; 0; 1 |] in
  Alcotest.(check (float 0.)) "can force 1 outright" 1. a.V.force1;
  (* forcing 0 goes through the coin war: 1/4 per double-coin round, so it
     approaches 1/2 as the horizon grows *)
  Alcotest.(check bool)
    (Printf.sprintf "can force 0 with good probability (%.2f)" a.V.force0)
    true (a.V.force0 >= 0.4);
  Alcotest.(check bool) "classified bivalent" true
    (V.classify ~threshold:0.4 a = V.Bivalent)

let test_no_adversary_no_bivalence () =
  (* with t = 0 the run is a fixed Markov chain: force1 + force0 + stall
     sum to at most 1 and nothing can be steered *)
  let a = V.analyze (game ~t:0 ()) ~inputs:[| 1; 0; 1 |] in
  Alcotest.(check bool) "probabilities consistent" true
    (a.V.force1 +. a.force0 +. a.stall <= 1. +. 1e-9);
  (* majority 1 with full delivery: everyone adopts 1 and decides next
     round — deterministic *)
  Alcotest.(check (float 1e-9)) "deterministic convergence to 1" 1. a.V.force1

let test_stalling_costs_budget () =
  (* keeping the execution undecided requires spending crashes: with t = 1
     the adversary can stall for a while but not forever; more budget
     stalls longer (the round-lower-bound currency) *)
  let s1 = (V.analyze (game ~t:1 ~horizon:4 ()) ~inputs:[| 1; 0; 1 |]).V.stall in
  let s2 = (V.analyze (game ~t:2 ~horizon:4 ()) ~inputs:[| 1; 0; 1 |]).V.stall in
  Alcotest.(check bool)
    (Printf.sprintf "stall grows with budget (%.3f <= %.3f)" s1 s2)
    true (s1 <= s2 +. 1e-9)

let test_lemma13_witness () =
  (* Lemma 13: some input assignment is bivalent or null-valent when the
     adversary controls one process *)
  match V.lemma13_witness ~threshold:0.4 (game ~horizon:6 ()) with
  | None -> Alcotest.fail "no bivalent/null-valent input found"
  | Some (inputs, a) ->
      Alcotest.(check bool) "witness is mixed" true
        (Array.exists (fun b -> b = 0) inputs
        && Array.exists (fun b -> b = 1) inputs);
      Alcotest.(check bool) "witness really steerable" true
        (a.V.force1 >= 0.4 && a.force0 >= 0.4)

let test_unanimous_is_univalent () =
  let a0 = V.analyze (game ()) ~inputs:[| 0; 0; 0 |] in
  let a1 = V.analyze (game ()) ~inputs:[| 1; 1; 1 |] in
  Alcotest.(check bool) "zeros are 0-valent" true
    (V.classify a0 = V.Zero_valent);
  Alcotest.(check bool) "ones are 1-valent" true (V.classify a1 = V.One_valent)

let test_four_processes () =
  (* a slightly bigger exact instance *)
  let g = game ~n:4 ~t:1 ~horizon:3 () in
  let a = V.analyze g ~inputs:[| 1; 1; 0; 0 |] in
  Alcotest.(check (float 0.)) "safe at t=1" 0. a.V.disagree;
  Alcotest.(check bool) "steerable both ways" true
    (a.V.force1 > 0.4 && a.force0 > 0.2)

let suite =
  [
    Alcotest.test_case "validity, exhaustively" `Quick test_validity_exhaustive;
    Alcotest.test_case "safety at t=1, exhaustively" `Quick
      test_safety_exhaustive_t1;
    Alcotest.test_case "safety at t=2, exhaustively" `Quick
      test_safety_exhaustive_t2;
    Alcotest.test_case "mixed inputs are bivalent" `Quick
      test_mixed_is_bivalent;
    Alcotest.test_case "t=0 has no bivalence" `Quick
      test_no_adversary_no_bivalence;
    Alcotest.test_case "stalling costs budget" `Quick
      test_stalling_costs_budget;
    Alcotest.test_case "Lemma 13 witness" `Quick test_lemma13_witness;
    Alcotest.test_case "unanimity is univalent" `Quick
      test_unanimous_is_univalent;
    Alcotest.test_case "four processes" `Slow test_four_processes;
  ]
