(* Tests for the sqrt-decomposition and binary-tree bag structure. *)

let test_sqrt_partition_sizes () =
  List.iter
    (fun m ->
      let members = Array.init m (fun i -> i * 3) in
      let p = Groups.sqrt_partition members in
      let s = int_of_float (ceil (sqrt (float_of_int m))) in
      Alcotest.(check bool) "group count <= ceil(sqrt m)+1" true
        (Groups.group_count p <= s + 1);
      for g = 0 to Groups.group_count p - 1 do
        Alcotest.(check bool) "group size <= ceil(sqrt m)" true
          (Array.length (Groups.group p g) <= s)
      done)
    [ 1; 2; 5; 16; 17; 64; 100; 101; 144 ]

let test_partition_cover_disjoint () =
  let m = 97 in
  let members = Array.init m (fun i -> i) in
  let p = Groups.sqrt_partition members in
  let seen = Hashtbl.create 97 in
  for g = 0 to Groups.group_count p - 1 do
    Array.iter
      (fun pid ->
        Alcotest.(check bool) "pid not seen twice" false (Hashtbl.mem seen pid);
        Hashtbl.replace seen pid ())
      (Groups.group p g)
  done;
  Alcotest.(check int) "covers all members" m (Hashtbl.length seen)

let test_group_of_rank_of () =
  let members = Array.init 50 (fun i -> 100 + i) in
  let p = Groups.sqrt_partition members in
  for g = 0 to Groups.group_count p - 1 do
    Array.iteri
      (fun rank pid ->
        Alcotest.(check int) "group_of" g (Groups.group_of p pid);
        Alcotest.(check int) "rank_of" rank (Groups.rank_of p pid))
      (Groups.group p g)
  done

let test_group_of_nonmember () =
  let p = Groups.sqrt_partition (Array.init 10 (fun i -> i)) in
  Alcotest.check_raises "nonmember rejected"
    (Invalid_argument "Groups.group_of: pid not a member") (fun () ->
      ignore (Groups.group_of p 11))

let test_partition_into () =
  let members = Array.init 64 (fun i -> i) in
  let p = Groups.partition_into members 4 in
  Alcotest.(check int) "exactly 4 parts" 4 (Groups.group_count p);
  for g = 0 to 3 do
    Alcotest.(check int) "equal sizes" 16 (Array.length (Groups.group p g))
  done;
  let p = Groups.partition_into members 5 in
  Alcotest.(check int) "ceil sizes" 5 (Groups.group_count p)

let test_layers_and_stages () =
  Alcotest.(check int) "layers 1" 1 (Groups.layers 1);
  Alcotest.(check int) "layers 2" 2 (Groups.layers 2);
  Alcotest.(check int) "layers 3" 3 (Groups.layers 3);
  Alcotest.(check int) "layers 4" 3 (Groups.layers 4);
  Alcotest.(check int) "layers 8" 4 (Groups.layers 8);
  Alcotest.(check int) "layers 9" 5 (Groups.layers 9);
  Alcotest.(check int) "stages 8" 3 (Groups.stages 8);
  Alcotest.(check int) "stages 1" 0 (Groups.stages 1)

let test_bag_structure () =
  (* bag k at layer j is the union of its children at layer j-1 *)
  let size = 13 in
  let layers = Groups.layers size in
  for j = 2 to layers do
    let bag_count = (size + (1 lsl (j - 1)) - 1) / (1 lsl (j - 1)) in
    for k = 0 to bag_count - 1 do
      let lo, hi = Groups.bag_ranks ~size ~layer:j ~bag:k in
      let lc, rc = Groups.children ~bag:k in
      let llo, lhi = Groups.bag_ranks ~size ~layer:(j - 1) ~bag:lc in
      let rlo, rhi = Groups.bag_ranks ~size ~layer:(j - 1) ~bag:rc in
      Alcotest.(check int) "left child starts the bag" lo llo;
      Alcotest.(check bool) "children adjacent" true
        (lhi = rlo || (rlo = rhi && lhi = hi));
      Alcotest.(check int) "right child ends the bag" hi (max lhi rhi)
    done
  done

let test_bag_at_root () =
  (* every rank lands in bag 0 of the top layer *)
  List.iter
    (fun size ->
      let top = Groups.layers size in
      for rank = 0 to size - 1 do
        Alcotest.(check int) "root bag" 0 (Groups.bag_at ~layer:top ~rank)
      done)
    [ 1; 2; 7; 8; 13; 16 ]

let test_bag_members () =
  let members = Array.init 20 (fun i -> 1000 + i) in
  let p = Groups.sqrt_partition members in
  (* layer-1 bags of group 0 are singletons in rank order *)
  let g0 = Groups.group p 0 in
  Array.iteri
    (fun rank pid ->
      let bag = Groups.bag_members p ~group:0 ~layer:1 ~bag:rank in
      Alcotest.(check (array int)) "singleton bag" [| pid |] bag)
    g0;
  (* top-layer bag 0 is the whole group *)
  let top = Groups.layers (Array.length g0) in
  Alcotest.(check (array int)) "root bag is group" g0
    (Groups.bag_members p ~group:0 ~layer:top ~bag:0)

let qcheck_bag_at_consistent =
  QCheck.Test.make ~name:"bag_at matches bag_ranks" ~count:300
    QCheck.(triple (int_range 1 64) (int_range 1 8) (int_range 0 63))
    (fun (size, layer, rank) ->
      QCheck.assume (rank < size);
      QCheck.assume (layer <= Groups.layers size);
      let bag = Groups.bag_at ~layer ~rank in
      let lo, hi = Groups.bag_ranks ~size ~layer ~bag in
      rank >= lo && rank < hi)

let qcheck_partition_into_cover =
  QCheck.Test.make ~name:"partition_into covers exactly" ~count:100
    QCheck.(pair (int_range 1 100) (int_range 1 100))
    (fun (m, parts) ->
      QCheck.assume (parts <= m);
      let members = Array.init m (fun i -> i) in
      let p = Groups.partition_into members parts in
      let total =
        let acc = ref 0 in
        for g = 0 to Groups.group_count p - 1 do
          acc := !acc + Array.length (Groups.group p g)
        done;
        !acc
      in
      total = m)

let suite =
  [
    Alcotest.test_case "sqrt partition sizes" `Quick test_sqrt_partition_sizes;
    Alcotest.test_case "partition covers, disjoint" `Quick
      test_partition_cover_disjoint;
    Alcotest.test_case "group_of / rank_of" `Quick test_group_of_rank_of;
    Alcotest.test_case "group_of nonmember" `Quick test_group_of_nonmember;
    Alcotest.test_case "partition_into" `Quick test_partition_into;
    Alcotest.test_case "layers and stages" `Quick test_layers_and_stages;
    Alcotest.test_case "bag tree structure" `Quick test_bag_structure;
    Alcotest.test_case "root bag" `Quick test_bag_at_root;
    Alcotest.test_case "bag members" `Quick test_bag_members;
    QCheck_alcotest.to_alcotest qcheck_bag_at_consistent;
    QCheck_alcotest.to_alcotest qcheck_partition_into_cover;
  ]
