(* Tests for the coin-flipping game (Lemma 12) and the Theorem 2 product
   experiment. *)

let rand () = Sim.Rand.create ~seed:77L ()

let test_imbalance_parity () =
  let r = rand () in
  for _ = 1 to 50 do
    let k = 10 in
    let s = Lowerbound.Coin_game.imbalance r ~k in
    Alcotest.(check bool) "imbalance parity matches k" true ((s - k) mod 2 = 0);
    Alcotest.(check bool) "imbalance in [-k, k]" true (s >= -k && s <= k)
  done

let test_biasable () =
  Alcotest.(check bool) "negative imbalance free" true
    (Lowerbound.Coin_game.biasable ~imbalance:(-3) ~hide:0);
  Alcotest.(check bool) "exact budget" true
    (Lowerbound.Coin_game.biasable ~imbalance:5 ~hide:5);
  Alcotest.(check bool) "insufficient budget" false
    (Lowerbound.Coin_game.biasable ~imbalance:5 ~hide:4)

let test_success_monotone_in_budget () =
  let r = rand () in
  let s1 = Lowerbound.Coin_game.success_rate r ~k:256 ~hide:0 ~trials:400 in
  let r = rand () in
  let s2 = Lowerbound.Coin_game.success_rate r ~k:256 ~hide:16 ~trials:400 in
  let r = rand () in
  let s3 = Lowerbound.Coin_game.success_rate r ~k:256 ~hide:64 ~trials:400 in
  Alcotest.(check bool)
    (Printf.sprintf "monotone: %.2f <= %.2f <= %.2f" s1 s2 s3)
    true
    (s1 <= s2 +. 0.05 && s2 <= s3 +. 0.05);
  Alcotest.(check bool) "big budget nearly always wins" true (s3 > 0.95);
  Alcotest.(check bool) "zero budget wins about half" true
    (s1 > 0.3 && s1 < 0.7)

let test_required_hides_sqrt_scaling () =
  let r = rand () in
  let h64 = Lowerbound.Coin_game.required_hides r ~k:64 ~alpha:0.1 ~trials:1500 in
  let h1024 =
    Lowerbound.Coin_game.required_hides r ~k:1024 ~alpha:0.1 ~trials:1500
  in
  (* quadrupling... sixteen-folding k should roughly 4x the hides *)
  let ratio = float_of_int h1024 /. float_of_int (max 1 h64) in
  Alcotest.(check bool)
    (Printf.sprintf "sqrt scaling: h(1024)/h(64) = %.2f in [2.5, 6]" ratio)
    true
    (ratio > 2.5 && ratio < 6.)

let test_required_below_talagrand () =
  (* the empirical requirement must sit below the paper's upper bound *)
  let r = rand () in
  List.iter
    (fun k ->
      let h = Lowerbound.Coin_game.required_hides r ~k ~alpha:0.05 ~trials:800 in
      let bound = Lowerbound.Coin_game.talagrand_budget ~k ~alpha:0.05 in
      Alcotest.(check bool)
        (Printf.sprintf "k=%d: %d <= %.1f" k h bound)
        true
        (float_of_int h <= bound))
    [ 16; 64; 256 ]

let test_product_bound_holds () =
  (* the vote-splitting adversary forces T*(R+T) >= t^2 / (1024 log n); we
     check the measured product clears the bound shape with a comfortable
     constant *)
  List.iter
    (fun (n, t) ->
      List.iter
        (fun k ->
          let r = Lowerbound.Product.run ~seed:2 ~n ~t ~coin_set:k () in
          Alcotest.(check bool)
            (Printf.sprintf "n=%d t=%d k=%d: product %d >= bound/64 %.1f" n t
               k r.product (r.bound /. 64.))
            true
            (float_of_int r.product >= r.bound /. 64.);
          Alcotest.(check bool) "run decided" true r.decided)
        [ 1; 8; n ])
    [ (48, 6); (96, 12) ]

let test_starved_is_slower () =
  (* the headline: with the same adversary, fewer coins per round means
     more adversary-forced rounds (averaged over seeds); t is set high so
     the stall dominates the algorithm's own convergence tail *)
  let n = 96 and t = 24 in
  let t1, _, _ = Lowerbound.Product.run_avg ~seeds:6 ~n ~t ~coin_set:1 () in
  let t16, _, _ = Lowerbound.Product.run_avg ~seeds:6 ~n ~t ~coin_set:16 () in
  let tn, _, _ = Lowerbound.Product.run_avg ~seeds:6 ~n ~t ~coin_set:n () in
  Alcotest.(check bool)
    (Printf.sprintf "starved %.1f > k=16 %.1f" t1 t16)
    true (t1 > t16);
  Alcotest.(check bool)
    (Printf.sprintf "starved %.1f > full-random %.1f" t1 tn)
    true (t1 > tn)

let test_product_determinism () =
  let a = Lowerbound.Product.run ~seed:5 ~n:48 ~t:6 ~coin_set:48 () in
  let b = Lowerbound.Product.run ~seed:5 ~n:48 ~t:6 ~coin_set:48 () in
  Alcotest.(check int) "same rounds" a.rounds b.rounds;
  Alcotest.(check int) "same randomness" a.rand_calls b.rand_calls

let suite =
  [
    Alcotest.test_case "imbalance parity/range" `Quick test_imbalance_parity;
    Alcotest.test_case "biasable" `Quick test_biasable;
    Alcotest.test_case "success monotone in budget" `Quick
      test_success_monotone_in_budget;
    Alcotest.test_case "sqrt scaling of hides" `Quick
      test_required_hides_sqrt_scaling;
    Alcotest.test_case "below Talagrand budget" `Quick
      test_required_below_talagrand;
    Alcotest.test_case "Theorem 2 product bound" `Slow test_product_bound_holds;
    Alcotest.test_case "starved runs are slower" `Slow test_starved_is_slower;
    Alcotest.test_case "product determinism" `Quick test_product_determinism;
  ]
