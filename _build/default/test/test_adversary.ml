(* Contract tests for the adversary strategies: budgets respected, plans
   legal (the engine would raise otherwise), and each strategy does what
   its name says. *)

let run_bjbo ?(n = 64) ?(t = 8) ?(seed = 1) adversary =
  let cfg = Sim.Config.make ~n ~t_max:t ~seed ~max_rounds:2000 () in
  let proto = Consensus.Bjbo.protocol cfg in
  let inputs = Array.init n (fun i -> i mod 2) in
  Sim.Engine.run proto cfg ~adversary ~inputs

let test_vote_splitter_spends_budget () =
  let o = run_bjbo (Adversary.vote_splitter ()) in
  Alcotest.(check int) "full budget spent" 8 o.Sim.Engine.faults_used;
  Alcotest.(check bool) "messages omitted" true (o.messages_omitted > 0);
  Alcotest.(check bool) "still decides" true
    (Sim.Engine.all_nonfaulty_decided o)

let test_vote_splitter_slack () =
  (* with slack it kills less *)
  let o0 = run_bjbo (Adversary.vote_splitter ~slack:0 ()) in
  let o5 = run_bjbo (Adversary.vote_splitter ~slack:1000 ()) in
  Alcotest.(check bool) "slack reduces kills" true
    (o5.Sim.Engine.faults_used <= o0.Sim.Engine.faults_used)

let test_crash_schedule_clamped () =
  (* asks for 3 victims with budget 1: must clamp, not raise *)
  let adversary = Adversary.crash_schedule [ (1, [ 0; 1; 2 ]) ] in
  let o = run_bjbo ~t:1 adversary in
  Alcotest.(check int) "clamped to budget" 1 o.Sim.Engine.faults_used

let test_crash_schedule_timing () =
  let adversary = Adversary.crash_schedule [ (2, [ 5 ]); (4, [ 6 ]) ] in
  let o = run_bjbo ~t:4 adversary in
  Alcotest.(check bool) "both victims corrupted" true
    (o.Sim.Engine.faulty.(5) && o.faulty.(6));
  Alcotest.(check int) "only scheduled victims" 2 o.faults_used

let test_random_omission_budget () =
  let o = run_bjbo (Adversary.random_omission ~p_omit:0.9) in
  Alcotest.(check int) "corrupts the full budget at once" 8
    o.Sim.Engine.faults_used

let test_random_omission_zero_p () =
  let o = run_bjbo (Adversary.random_omission ~p_omit:0.) in
  Alcotest.(check int) "p=0 omits nothing" 0 o.Sim.Engine.messages_omitted

let test_staggered_crash_rate () =
  let o = run_bjbo ~t:6 (Adversary.staggered_crash ~per_round:2) in
  Alcotest.(check int) "budget fully spent" 6 o.Sim.Engine.faults_used

let test_group_killer_target () =
  (* against Algorithm 1 at a size where t covers half a group *)
  let n = 100 in
  (* group size 10, majority 6; allow t = 6 *)
  let t = 3 in
  let cfg = Sim.Config.make ~n ~t_max:t ~seed:1 ~max_rounds:4000 () in
  let proto = Consensus.Optimal_omissions.protocol cfg in
  let inputs = Array.init n (fun i -> i mod 2) in
  let o = Sim.Engine.run proto cfg ~adversary:(Adversary.group_killer ()) ~inputs in
  (* victims are the first pids (group 0 is contiguous) *)
  Alcotest.(check int) "corrupts within budget" t o.Sim.Engine.faults_used;
  for pid = 0 to t - 1 do
    Alcotest.(check bool) "victims in group 0" true o.faulty.(pid)
  done;
  Alcotest.(check bool) "consensus survives" true
    (Sim.Engine.agreed_decision o <> None)

let test_eclipse_targets_victim_links () =
  let n = 64 in
  let victim = 9 in
  let o = run_bjbo ~n ~t:8 (Adversary.eclipse ~victim) in
  (* the victim itself must never be corrupted by eclipse *)
  Alcotest.(check bool) "victim left non-faulty" false
    o.Sim.Engine.faulty.(victim);
  Alcotest.(check bool) "neighbors corrupted" true (o.faults_used > 0)

let test_standard_suite_runs () =
  let suite = Adversary.standard_suite ~n:64 in
  Alcotest.(check bool) "several strategies" true (List.length suite >= 6);
  List.iter
    (fun adversary ->
      let o = run_bjbo adversary in
      Alcotest.(check bool)
        ("legal and consensus-preserving: " ^ adversary.Sim.Adversary_intf.name)
        true
        (Sim.Engine.agreed_decision o <> None))
    suite

let suite =
  [
    Alcotest.test_case "vote splitter spends budget" `Quick
      test_vote_splitter_spends_budget;
    Alcotest.test_case "vote splitter slack" `Quick test_vote_splitter_slack;
    Alcotest.test_case "crash schedule clamped" `Quick
      test_crash_schedule_clamped;
    Alcotest.test_case "crash schedule timing" `Quick
      test_crash_schedule_timing;
    Alcotest.test_case "random omission budget" `Quick
      test_random_omission_budget;
    Alcotest.test_case "random omission p=0" `Quick test_random_omission_zero_p;
    Alcotest.test_case "staggered crash rate" `Quick test_staggered_crash_rate;
    Alcotest.test_case "group killer target" `Quick test_group_killer_target;
    Alcotest.test_case "eclipse spares the victim" `Quick
      test_eclipse_targets_victim_links;
    Alcotest.test_case "standard suite" `Quick test_standard_suite_runs;
  ]
