(* Tests for the simulated-authentication layer and Dolev-Strong. *)

let test_sign_verify () =
  let chain = Consensus.Auth.sign ~signer:3 ~payload:1 ~chain:[] in
  Alcotest.(check bool) "single signature valid" true
    (Consensus.Auth.valid_chain ~payload:1 chain);
  Alcotest.(check bool) "wrong payload invalid" false
    (Consensus.Auth.valid_chain ~payload:0 chain);
  Alcotest.(check (option int)) "origin" (Some 3)
    (Consensus.Auth.origin chain)

let test_chain_growth () =
  let c1 = Consensus.Auth.sign ~signer:0 ~payload:1 ~chain:[] in
  let c2 = Consensus.Auth.sign ~signer:5 ~payload:1 ~chain:c1 in
  let c3 = Consensus.Auth.sign ~signer:9 ~payload:1 ~chain:c2 in
  Alcotest.(check int) "length" 3 (Consensus.Auth.length c3);
  Alcotest.(check bool) "full chain valid" true
    (Consensus.Auth.valid_chain ~payload:1 c3);
  Alcotest.(check (option int)) "origin preserved" (Some 0)
    (Consensus.Auth.origin c3);
  Alcotest.(check (list int)) "signers newest-first" [ 9; 5; 0 ]
    (List.map Consensus.Auth.signer c3)

let test_duplicate_signer_rejected () =
  let c1 = Consensus.Auth.sign ~signer:0 ~payload:1 ~chain:[] in
  let c2 = Consensus.Auth.sign ~signer:0 ~payload:1 ~chain:c1 in
  Alcotest.(check bool) "duplicate signer invalid" false
    (Consensus.Auth.valid_chain ~payload:1 c2)

let test_truncation_rejected () =
  (* dropping the origin's signature invalidates the chain *)
  let c1 = Consensus.Auth.sign ~signer:0 ~payload:1 ~chain:[] in
  let c2 = Consensus.Auth.sign ~signer:5 ~payload:1 ~chain:c1 in
  let truncated = [ List.hd c2 ] in
  Alcotest.(check bool) "truncated chain invalid" false
    (Consensus.Auth.valid_chain ~payload:1 truncated)

let test_splice_rejected () =
  (* re-parenting a signature onto a different prefix invalidates it *)
  let a = Consensus.Auth.sign ~signer:0 ~payload:1 ~chain:[] in
  let b = Consensus.Auth.sign ~signer:1 ~payload:1 ~chain:[] in
  let spliced = List.hd (Consensus.Auth.sign ~signer:2 ~payload:1 ~chain:a) :: b in
  Alcotest.(check bool) "spliced chain invalid" false
    (Consensus.Auth.valid_chain ~payload:1 spliced)

let test_bits_positive () =
  let c = Consensus.Auth.sign ~signer:0 ~payload:1 ~chain:[] in
  Alcotest.(check bool) "chain bits grow" true
    (Consensus.Auth.bits c > 0
    && Consensus.Auth.bits (Consensus.Auth.sign ~signer:1 ~payload:1 ~chain:c)
       > Consensus.Auth.bits c)

(* --- Dolev-Strong protocol --- *)

let run_ds ?(n = 32) ?(t = 4) ?(seed = 1) ?(adversary = Sim.Adversary_intf.none)
    inputs =
  let cfg = Sim.Config.make ~n ~t_max:t ~seed ~max_rounds:(t + 5) () in
  Sim.Engine.run (Consensus.Dolev_strong.protocol cfg) cfg ~adversary ~inputs

let check ~what ~inputs o =
  Alcotest.(check bool) (what ^ ": all decided") true
    (Sim.Engine.all_nonfaulty_decided o);
  match Sim.Engine.agreed_decision o with
  | None -> Alcotest.fail (what ^ ": agreement violated")
  | Some v ->
      Alcotest.(check bool) (what ^ ": weak validity") true
        (Array.exists (fun b -> b = v) inputs);
      v

let test_ds_validity () =
  List.iter
    (fun b ->
      let inputs = Array.make 32 b in
      let o = run_ds inputs in
      Alcotest.(check int) "validity" b (check ~what:"ds" ~inputs o))
    [ 0; 1 ]

let test_ds_rounds () =
  List.iter
    (fun t ->
      let inputs = Array.init 32 (fun i -> i mod 2) in
      let o = run_ds ~t inputs in
      Alcotest.(check (option int))
        (Printf.sprintf "t+2 rounds (t=%d)" t)
        (Some (t + 2)) o.Sim.Engine.decided_round)
    [ 1; 4; 6 ]

let test_ds_adversaries () =
  List.iter
    (fun adversary ->
      let inputs = Array.init 32 (fun i -> (i / 3) mod 2) in
      let o = run_ds ~adversary inputs in
      ignore
        (check ~what:("ds vs " ^ adversary.Sim.Adversary_intf.name) ~inputs o))
    (Adversary.standard_suite ~n:32)

let test_ds_majority () =
  (* with no faults the decision is the true majority *)
  let n = 33 in
  let inputs = Array.init n (fun i -> if i < 20 then 1 else 0) in
  let o = run_ds ~n ~t:3 inputs in
  Alcotest.(check int) "majority wins" 1 (check ~what:"ds-maj" ~inputs o)

let test_ds_deterministic () =
  let inputs = Array.init 32 (fun i -> i mod 2) in
  let o = run_ds inputs in
  Alcotest.(check int) "zero randomness" 0 o.Sim.Engine.rand_calls

let suite =
  [
    Alcotest.test_case "sign/verify" `Quick test_sign_verify;
    Alcotest.test_case "chain growth" `Quick test_chain_growth;
    Alcotest.test_case "duplicate signer rejected" `Quick
      test_duplicate_signer_rejected;
    Alcotest.test_case "truncation rejected" `Quick test_truncation_rejected;
    Alcotest.test_case "splice rejected" `Quick test_splice_rejected;
    Alcotest.test_case "signature bits" `Quick test_bits_positive;
    Alcotest.test_case "dolev-strong validity" `Quick test_ds_validity;
    Alcotest.test_case "dolev-strong t+2 rounds" `Quick test_ds_rounds;
    Alcotest.test_case "dolev-strong vs adversaries" `Quick
      test_ds_adversaries;
    Alcotest.test_case "dolev-strong majority" `Quick test_ds_majority;
    Alcotest.test_case "dolev-strong deterministic" `Quick
      test_ds_deterministic;
  ]
