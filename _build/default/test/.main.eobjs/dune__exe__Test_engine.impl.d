test/test_engine.ml: Adversary Alcotest Array List Sim
