test/test_valency.ml: Alcotest Array Lowerbound Printf
