test/test_crash_sub.ml: Adversary Alcotest Array Consensus List Printf Sim
