test/test_param.ml: Adversary Alcotest Array Consensus List Printf Sim
