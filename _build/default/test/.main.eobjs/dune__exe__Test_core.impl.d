test/test_core.ml: Alcotest Array Consensus Groups List Printf Sim
