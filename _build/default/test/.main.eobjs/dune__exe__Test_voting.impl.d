test/test_voting.ml: Alcotest Array Consensus List QCheck QCheck_alcotest Sim
