test/test_lowerbound.ml: Alcotest List Lowerbound Printf Sim
