test/test_broadcast.ml: Adversary Alcotest Array Consensus List Printf Sim
