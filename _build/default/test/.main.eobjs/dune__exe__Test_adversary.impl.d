test/test_adversary.ml: Adversary Alcotest Array Consensus List Sim
