test/test_baselines.ml: Adversary Alcotest Array Consensus List Printf Sim
