test/test_optimal.ml: Adversary Alcotest Array Consensus Hashtbl List Printf QCheck QCheck_alcotest Sim String
