test/test_expander.ml: Alcotest Array Expander Int64 List Printf QCheck QCheck_alcotest
