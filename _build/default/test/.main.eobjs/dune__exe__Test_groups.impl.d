test/test_groups.ml: Alcotest Array Groups Hashtbl List QCheck QCheck_alcotest
