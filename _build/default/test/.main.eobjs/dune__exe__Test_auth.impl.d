test/test_auth.ml: Adversary Alcotest Array Consensus List Printf Sim
