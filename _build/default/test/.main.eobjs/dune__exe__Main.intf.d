test/main.mli:
