test/test_rand.ml: Alcotest Array Int64 QCheck QCheck_alcotest Sim
