(* Integration tests for ParamOmissions (Algorithm 4): consensus conditions
   across x, the randomness/time trade-off, and robustness. *)

let run ?(n = 64) ?t ?(x = 4) ?(seed = 1) ?(adversary = Sim.Adversary_intf.none)
    inputs =
  let t = match t with Some t -> t | None -> max 1 (n / 61) in
  let cfg0 = Sim.Config.make ~n ~t_max:t ~seed () in
  let max_rounds = Consensus.Param_omissions.rounds_needed ~x cfg0 + 10 in
  let cfg = { cfg0 with Sim.Config.max_rounds } in
  let proto = Consensus.Param_omissions.protocol ~x cfg in
  Sim.Engine.run proto cfg ~adversary ~inputs

let check_consensus ~what ~inputs o =
  Alcotest.(check bool)
    (what ^ ": all decided")
    true
    (Sim.Engine.all_nonfaulty_decided o);
  match Sim.Engine.agreed_decision o with
  | None -> Alcotest.fail (what ^ ": agreement violated")
  | Some v ->
      Alcotest.(check bool)
        (what ^ ": decision is an input")
        true
        (Array.exists (fun b -> b = v) inputs);
      v

let mixed n = Array.init n (fun i -> i mod 2)

let test_basic_each_x () =
  List.iter
    (fun x ->
      let inputs = mixed 64 in
      let o = run ~x inputs in
      ignore (check_consensus ~what:(Printf.sprintf "x=%d" x) ~inputs o))
    [ 1; 2; 4; 8; 16 ]

let test_validity () =
  List.iter
    (fun b ->
      List.iter
        (fun x ->
          let inputs = Array.make 48 b in
          let o = run ~n:48 ~x inputs in
          let v = check_consensus ~what:"validity" ~inputs o in
          Alcotest.(check int) "validity value" b v;
          Alcotest.(check int) "unanimity uses no randomness" 0 o.rand_calls)
        [ 2; 6 ])
    [ 0; 1 ]

let test_adversaries () =
  List.iter
    (fun adversary ->
      let inputs = mixed 60 in
      let o = run ~n:60 ~x:4 ~adversary inputs in
      ignore
        (check_consensus
           ~what:("x=4 vs " ^ adversary.Sim.Adversary_intf.name)
           ~inputs o))
    (Adversary.standard_suite ~n:60)

let test_tradeoff_monotone () =
  (* more super-processes => no more randomness (Theorem 3's shape) *)
  let inputs = mixed 64 in
  let measures =
    List.map
      (fun x ->
        let o = run ~x ~seed:3 inputs in
        ignore (check_consensus ~what:"tradeoff" ~inputs o);
        (x, o.rand_calls, o.rounds_total))
      [ 1; 4; 16 ]
  in
  match measures with
  | [ (_, r1, t1); (_, r4, _); (_, r16, t16) ] ->
      Alcotest.(check bool)
        (Printf.sprintf "randomness non-increasing: %d >= %d >= %d" r1 r4 r16)
        true
        (r1 >= r4 && r4 >= r16);
      Alcotest.(check bool)
        (Printf.sprintf "rounds increase with x: %d < %d" t1 t16)
        true (t1 < t16)
  | _ -> assert false

let test_x_equals_n_over_2 () =
  (* tiny super-processes of 2 members *)
  let n = 32 in
  let inputs = mixed n in
  let o = run ~n ~x:16 inputs in
  ignore (check_consensus ~what:"x=n/2" ~inputs o)

let test_determinism () =
  let inputs = mixed 48 in
  let o1 = run ~n:48 ~x:4 ~seed:9 ~adversary:(Adversary.vote_splitter ()) inputs in
  let o2 = run ~n:48 ~x:4 ~seed:9 ~adversary:(Adversary.vote_splitter ()) inputs in
  Alcotest.(check (array (option int))) "same decisions" o1.decisions o2.decisions;
  Alcotest.(check int) "same bits" o1.bits_sent o2.bits_sent

let test_sub_runs_confined () =
  (* during phase i only SP_i members and flooders speak: total sub-message
     traffic must stay well below n^2 per sub-round; sanity-check via the
     per-run total being far below an all-to-all equivalent *)
  let n = 64 in
  let inputs = mixed n in
  let o = run ~n ~x:8 inputs in
  let all_to_all = o.rounds_total * n * (n - 1) in
  Alcotest.(check bool) "traffic below all-to-all" true
    (o.messages_sent < all_to_all / 4)

let suite =
  [
    Alcotest.test_case "consensus for each x" `Slow test_basic_each_x;
    Alcotest.test_case "validity" `Quick test_validity;
    Alcotest.test_case "all adversaries" `Slow test_adversaries;
    Alcotest.test_case "randomness/time trade-off" `Slow test_tradeoff_monotone;
    Alcotest.test_case "tiny super-processes" `Quick test_x_equals_n_over_2;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "sub-runs confined" `Quick test_sub_runs_confined;
  ]
