(* Component-level tests of the Algorithm 1 voting core (Consensus.Core):
   driving the epochs directly over a controllable network to check the
   paper's building-block lemmas on real executions:
   - Lemma 1: every operative process contributes to every other operative
     process's group counts;
   - Lemmas 6/8: every operative process learns every group's counts during
     spreading;
   - the quorum rules that turn under-connected processes inoperative. *)

module Core = Consensus.Core

(* Run the full core schedule (epochs + Bcast) over a network where
   [omit ~slot ~src ~dst] drops messages. Returns the states after
   finalize. *)
let drive ?(omit = fun ~slot:_ ~src:_ ~dst:_ -> false) ~m ~inputs () =
  let members = Array.init m (fun i -> i) in
  let sh =
    Core.make_shared ~members ~seed:42 ~params:Consensus.Params.default
      ~t_max:(max 1 (m / 31)) ()
  in
  let sts = Array.init m (fun pid -> Core.create sh ~pid ~input:(inputs pid)) in
  let inboxes = Array.make m [] in
  let rand = Sim.Rand.create ~seed:5L () in
  for slot = 1 to Core.rounds sh do
    let next = Array.make m [] in
    Array.iteri
      (fun pid st ->
        let out = Core.step st ~slot ~inbox:inboxes.(pid) ~rand in
        List.iter
          (fun (dst, msg) ->
            if not (omit ~slot ~src:pid ~dst) then
              next.(dst) <- (pid, msg) :: next.(dst))
          out)
      sts;
    Array.iteri
      (fun i l -> inboxes.(i) <- List.sort (fun (a, _) (b, _) -> compare a b) l)
      next
  done;
  Array.iteri (fun pid st -> Core.finalize st ~inbox:inboxes.(pid)) sts;
  (sh, sts)

let test_clean_run_decides () =
  let m = 36 in
  let _, sts = drive ~m ~inputs:(fun i -> i mod 2) () in
  Array.iter
    (fun st ->
      Alcotest.(check bool) "operative" true (Core.operative st);
      Alcotest.(check bool) "decided flag armed" true (Core.decided_flag st))
    sts;
  (* all line-16 decisions agree *)
  let d0 = Core.line16_decision sts.(0) in
  Alcotest.(check bool) "decision exists" true (d0 <> None);
  Array.iter
    (fun st ->
      Alcotest.(check (option int)) "same decision" d0 (Core.line16_decision st))
    sts

let test_unanimous_validity () =
  List.iter
    (fun b ->
      let m = 25 in
      let _, sts = drive ~m ~inputs:(fun _ -> b) () in
      Array.iter
        (fun st ->
          Alcotest.(check (option int)) "validity" (Some b)
            (Core.line16_decision st))
        sts)
    [ 0; 1 ]

let test_lemma1_contribution () =
  (* clean network, minority of ones: operative counts must be exact, i.e.
     every process's bit is counted by every other — observable through the
     deterministic all-set-0 outcome when ones < 15/30 *)
  let m = 49 in
  let ones = 16 in
  (* 16/49 < 1/2 *)
  let _, sts = drive ~m ~inputs:(fun i -> if i < ones then 1 else 0) () in
  Array.iter
    (fun st ->
      Alcotest.(check int) "exact counting forces 0" 0 (Core.candidate st))
    sts

let test_lemma1_exact_majority () =
  (* > 18/30 of ones forces 1 everywhere: again needs exact counting *)
  let m = 49 in
  let ones = 31 in
  (* 31/49 > 0.6 *)
  let _, sts = drive ~m ~inputs:(fun i -> if i < ones then 1 else 0) () in
  Array.iter
    (fun st ->
      Alcotest.(check int) "exact counting forces 1" 1 (Core.candidate st))
    sts

let test_quorum_kill_one_group () =
  (* silence all intra-group traffic of more than half of group 0: the
     whole group must become inoperative, everyone else must stay
     operative and still decide *)
  let m = 49 in
  let members = Array.init m (fun i -> i) in
  let part = Groups.sqrt_partition members in
  let g0 = Groups.group part 0 in
  let g0_size = Array.length g0 in
  let silenced = Array.to_list (Array.sub g0 0 ((g0_size / 2) + 1)) in
  let in_g0 pid = Array.exists (fun q -> q = pid) g0 in
  let omit ~slot:_ ~src ~dst =
    (List.mem src silenced && in_g0 dst) || (List.mem dst silenced && in_g0 src)
  in
  let _, sts = drive ~omit ~m ~inputs:(fun i -> i mod 2) () in
  Array.iteri
    (fun pid st ->
      if in_g0 pid then
        Alcotest.(check bool)
          (Printf.sprintf "group-0 member %d inoperative" pid)
          false (Core.operative st)
      else
        Alcotest.(check bool)
          (Printf.sprintf "outsider %d operative" pid)
          true (Core.operative st))
    sts;
  (* outsiders still reach a common decision *)
  let d =
    Array.to_list sts
    |> List.filteri (fun pid _ -> not (in_g0 pid))
    |> List.map Core.line16_decision
  in
  match d with
  | first :: rest ->
      Alcotest.(check bool) "outsiders decided" true (first <> None);
      List.iter
        (fun x -> Alcotest.(check (option int)) "outsiders agree" first x)
        rest
  | [] -> assert false

let test_spreading_completeness () =
  (* Lemma 8 flavor: with nobody silenced, the biased-majority outcome
     reflects *global* counts, which requires every group's counts to reach
     every process — checked by an input layout where one group is all-ones
     but the global fraction is below half: if a process only saw its own
     group it would choose 1, globally it must choose 0 *)
  let m = 49 in
  let members = Array.init m (fun i -> i) in
  let part = Groups.sqrt_partition members in
  let g0 = Groups.group part 0 in
  let in_g0 pid = Array.exists (fun q -> q = pid) g0 in
  (* group 0 all ones; everyone else zero: global ones = |g0| = 7/49 < 1/2 *)
  let _, sts = drive ~m ~inputs:(fun i -> if in_g0 i then 1 else 0) () in
  Array.iter
    (fun st ->
      Alcotest.(check int) "global counts dominate" 0 (Core.candidate st))
    sts

let test_inoperative_idles () =
  (* a process whose entire neighborhood omits its traffic must become
     inoperative but still pick up the final decision broadcast *)
  let m = 49 in
  let victim = 11 in
  let omit ~slot:_ ~src ~dst =
    (* cut everything except the Bcast-slot decision traffic; the Bcast slot
       is the last one, identifiable by leaving Final messages through —
       here we simply cut only the victim's incoming/outgoing *non-final*
       slots: approximate by slot number below the last *)
    src = victim || dst = victim
  in
  (* cut all but the last slot *)
  let members = Array.init m (fun i -> i) in
  let sh =
    Core.make_shared ~members ~seed:42 ~params:Consensus.Params.default
      ~t_max:1 ()
  in
  let last = Core.rounds sh in
  let omit ~slot ~src ~dst = slot < last && omit ~slot ~src ~dst in
  let _, sts = drive ~omit ~m ~inputs:(fun i -> i mod 2) () in
  Alcotest.(check bool) "victim inoperative" false (Core.operative sts.(victim));
  Alcotest.(check bool) "victim got the decision" true
    (Core.got_decision sts.(victim));
  Alcotest.(check bool) "victim decides at line 16" true
    (Core.line16_decision sts.(victim) <> None)

let test_singleton_core () =
  let _, sts = drive ~m:1 ~inputs:(fun _ -> 1) () in
  Alcotest.(check (option int)) "singleton decides own input" (Some 1)
    (Core.line16_decision sts.(0))

let test_two_member_core () =
  let _, sts = drive ~m:2 ~inputs:(fun _ -> 0) () in
  Array.iter
    (fun st ->
      Alcotest.(check (option int)) "pair decides" (Some 0)
        (Core.line16_decision st))
    sts

let test_set_candidate () =
  let members = [| 0; 1; 2; 3 |] in
  let sh =
    Core.make_shared ~members ~seed:1 ~params:Consensus.Params.default
      ~t_max:1 ()
  in
  let st = Core.create sh ~pid:0 ~input:0 in
  Core.set_candidate st 1;
  Alcotest.(check int) "candidate overridden" 1 (Core.candidate st);
  Alcotest.check_raises "non-bit rejected"
    (Invalid_argument "Core.set_candidate: bit expected") (fun () ->
      Core.set_candidate st 2)

let test_msg_bits () =
  let members = Array.init 16 (fun i -> i) in
  let sh =
    Core.make_shared ~members ~seed:1 ~params:Consensus.Params.default
      ~t_max:1 ()
  in
  let c = { Core.ones = 3; zeros = 2 } in
  List.iter
    (fun m ->
      Alcotest.(check bool) "positive bits" true (Core.msg_bits sh m > 0))
    [
      Core.Counts { stage = 1; bag = 0; c };
      Core.Confirm { stage = 1 };
      Core.Result { stage = 1; left = Some c; right = None };
      Core.Spread_delta [ (0, c); (1, c) ];
      Core.Final 1;
    ];
  (* spreading deltas are charged per entry *)
  Alcotest.(check bool) "delta grows with entries" true
    (Core.msg_bits sh (Core.Spread_delta [ (0, c); (1, c) ])
    > Core.msg_bits sh (Core.Spread_delta [ (0, c) ]));
  Alcotest.(check (option int)) "final hint" (Some 1)
    (Core.msg_hint (Core.Final 1));
  Alcotest.(check (option int)) "counts carry no hint" None
    (Core.msg_hint (Core.Counts { stage = 1; bag = 0; c }))

let suite =
  [
    Alcotest.test_case "clean run decides" `Quick test_clean_run_decides;
    Alcotest.test_case "unanimous validity" `Quick test_unanimous_validity;
    Alcotest.test_case "Lemma 1: exact minority counting" `Quick
      test_lemma1_contribution;
    Alcotest.test_case "Lemma 1: exact majority counting" `Quick
      test_lemma1_exact_majority;
    Alcotest.test_case "quorum kills an isolated group" `Quick
      test_quorum_kill_one_group;
    Alcotest.test_case "Lemma 8: spreading completeness" `Quick
      test_spreading_completeness;
    Alcotest.test_case "inoperative process still decides" `Quick
      test_inoperative_idles;
    Alcotest.test_case "singleton core" `Quick test_singleton_core;
    Alcotest.test_case "two-member core" `Quick test_two_member_core;
    Alcotest.test_case "set_candidate" `Quick test_set_candidate;
    Alcotest.test_case "message bits" `Quick test_msg_bits;
  ]
