(* Tests for the Theorem-4 graph machinery. *)

let graph ?(n = 256) ?(seed = 1L) () =
  let delta = Expander.default_delta n in
  Expander.create_good ~n ~delta ~seed ()

let test_determinism () =
  let g1 = Expander.sample ~n:64 ~delta:16 ~seed:9L in
  let g2 = Expander.sample ~n:64 ~delta:16 ~seed:9L in
  Alcotest.(check int) "same edge count" (Expander.edge_count g1)
    (Expander.edge_count g2);
  for v = 0 to 63 do
    Alcotest.(check (array int)) "same adjacency" (Expander.neighbors g1 v)
      (Expander.neighbors g2 v)
  done

let test_symmetry () =
  let g = graph () in
  for v = 0 to Expander.n g - 1 do
    Array.iter
      (fun u ->
        Alcotest.(check bool) "edge symmetric" true (Expander.mem_edge g u v))
      (Expander.neighbors g v)
  done

let test_no_self_loops () =
  let g = graph () in
  for v = 0 to Expander.n g - 1 do
    Alcotest.(check bool) "no self loop" false (Expander.mem_edge g v v)
  done

let test_mem_edge_consistent () =
  let g = graph ~n:64 () in
  let n = Expander.n g in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      let in_list = Array.exists (fun w -> w = v) (Expander.neighbors g u) in
      Alcotest.(check bool) "mem_edge = adjacency" in_list
        (Expander.mem_edge g u v)
    done
  done

let test_degree_concentration () =
  let g = graph ~n:512 () in
  Alcotest.(check bool) "degrees within [delta/2, 1.6 delta]" true
    (Expander.degree_bounds_ok g ~lo:0.5 ~hi:1.6)

let test_expansion () =
  let g = graph ~n:512 () in
  Alcotest.(check bool) "n/10-expanding (sampled)" true
    (Expander.expansion_ok g ~samples:40 ~set_size:51 ~seed:3L)

let test_edge_sparsity () =
  let g = graph ~n:512 () in
  let alpha = float_of_int (Expander.delta g) /. 4. in
  Alcotest.(check bool) "edge-sparse (sampled)" true
    (Expander.edge_sparsity_ok g ~samples:40 ~max_size:51 ~alpha ~seed:4L)

let test_prune_lemma4 () =
  (* Lemma 4: removing |T| <= n/15 nodes leaves a core of >= n - 4/3 |T| *)
  let g = graph ~n:512 () in
  let n = Expander.n g in
  let t_size = n / 15 in
  let removed = Array.init n (fun v -> v < t_size) in
  let core = Expander.prune g ~removed ~min_deg:(Expander.delta g / 3) in
  let size = Expander.mask_size core in
  Alcotest.(check bool)
    (Printf.sprintf "core %d >= %d" size (n - (4 * t_size / 3)))
    true
    (size >= n - (4 * t_size / 3));
  (* the core excludes the removed set *)
  for v = 0 to t_size - 1 do
    Alcotest.(check bool) "removed not in core" false core.(v)
  done

let test_prune_min_degree () =
  let g = graph ~n:256 () in
  let n = Expander.n g in
  let removed = Array.init n (fun v -> v mod 13 = 0) in
  let min_deg = Expander.delta g / 3 in
  let core = Expander.prune g ~removed ~min_deg in
  (* every survivor has >= min_deg surviving neighbors *)
  for v = 0 to n - 1 do
    if core.(v) then begin
      let d =
        Array.fold_left
          (fun a u -> if core.(u) then a + 1 else a)
          0 (Expander.neighbors g v)
      in
      Alcotest.(check bool) "survivor degree" true (d >= min_deg)
    end
  done

let test_prune_empty_removed () =
  let g = graph ~n:128 () in
  let removed = Array.make 128 false in
  let core = Expander.prune g ~removed ~min_deg:(Expander.delta g / 3) in
  Alcotest.(check int) "nothing pruned on a good graph" 128
    (Expander.mask_size core)

let test_core_shallow () =
  (* the "shallow" property: the dense core has small diameter *)
  let g = graph ~n:512 () in
  let n = Expander.n g in
  let removed = Array.init n (fun v -> v < n / 15) in
  let core = Expander.prune g ~removed ~min_deg:(Expander.delta g / 3) in
  let v = ref 0 in
  while not core.(!v) do
    incr v
  done;
  match Expander.eccentricity_within g ~mask:core ~v:!v with
  | None -> Alcotest.fail "core disconnected"
  | Some e ->
      let log2n = ceil (log (float_of_int n) /. log 2.) in
      Alcotest.(check bool)
        (Printf.sprintf "eccentricity %d <= 2 log2 n = %.0f" e (2. *. log2n))
        true
        (float_of_int e <= 2. *. log2n)

let test_neighborhood_growth () =
  (* Lemma 3: dense neighborhoods double until they hit Theta(n) *)
  let g = graph ~n:512 () in
  let mask = Array.make (Expander.n g) true in
  let sizes = Expander.neighborhood_growth g ~mask ~v:0 ~max_depth:6 in
  Alcotest.(check bool) "ball reaches n/10 within log rounds" true
    (sizes.(6) >= Expander.n g / 10);
  Alcotest.(check bool) "growth is monotone" true
    (let ok = ref true in
     for d = 1 to 6 do
       if sizes.(d) < sizes.(d - 1) then ok := false
     done;
     !ok)

let test_small_graphs () =
  (* create_good must work at the sizes Algorithm 4's sub-runs use *)
  List.iter
    (fun n ->
      let delta = Expander.default_delta n in
      let g = Expander.create_good ~n ~delta ~seed:5L () in
      Alcotest.(check int) "size" n (Expander.n g))
    [ 2; 3; 5; 8; 16; 33 ]

let test_sample_invalid () =
  Alcotest.check_raises "n=1 rejected"
    (Invalid_argument "Expander.sample: n must be >= 2") (fun () ->
      ignore (Expander.sample ~n:1 ~delta:4 ~seed:1L))

let qcheck_prune_subset =
  QCheck.Test.make ~name:"prune result disjoint from removed" ~count:30
    QCheck.(pair (int_range 10 80) small_int)
    (fun (n, seed) ->
      let g = Expander.sample ~n ~delta:(Expander.default_delta n)
          ~seed:(Int64.of_int seed) in
      let removed = Array.init n (fun v -> v mod 7 = 3) in
      let core = Expander.prune g ~removed ~min_deg:2 in
      Array.for_all2 (fun r c -> not (r && c)) removed core)

let suite =
  [
    Alcotest.test_case "sampling determinism" `Quick test_determinism;
    Alcotest.test_case "edge symmetry" `Quick test_symmetry;
    Alcotest.test_case "no self loops" `Quick test_no_self_loops;
    Alcotest.test_case "mem_edge consistency" `Quick test_mem_edge_consistent;
    Alcotest.test_case "degree concentration (Thm 4 iii)" `Quick
      test_degree_concentration;
    Alcotest.test_case "expansion (Thm 4 i)" `Quick test_expansion;
    Alcotest.test_case "edge sparsity (Thm 4 ii)" `Quick test_edge_sparsity;
    Alcotest.test_case "Lemma 4 core size" `Quick test_prune_lemma4;
    Alcotest.test_case "prune min degree invariant" `Quick
      test_prune_min_degree;
    Alcotest.test_case "prune with nothing removed" `Quick
      test_prune_empty_removed;
    Alcotest.test_case "core is shallow" `Quick test_core_shallow;
    Alcotest.test_case "Lemma 3 neighborhood growth" `Quick
      test_neighborhood_growth;
    Alcotest.test_case "small graphs" `Quick test_small_graphs;
    Alcotest.test_case "sample invalid" `Quick test_sample_invalid;
    QCheck_alcotest.to_alcotest qcheck_prune_subset;
  ]
