(** Quickstart: reach consensus among 100 processes with mixed inputs while
    an adaptive adversary omission-corrupts the maximum n/31 processes.

    Run with: dune exec examples/quickstart.exe *)

let () =
  let n = 100 in
  (* 1. Configure the system: n processes, fault budget t < n/30, a seed
        (every run is a pure function of it). *)
  let cfg = Sim.Config.make ~n ~t_max:(n / 31) ~seed:2024 ~max_rounds:2000 () in

  (* 2. Instantiate the paper's Algorithm 1. All processes deterministically
        agree on the sqrt-decomposition, binary aggregation trees and the
        Theorem-4 expander from (n, seed) — no setup communication. *)
  let protocol = Consensus.Optimal_omissions.protocol cfg in

  (* 3. Pick inputs and an adversary. The vote-splitter is the strongest
        strategy in the library: full-information, adaptive, kills the
        coin-flippers that drift toward agreement. *)
  let inputs = Array.init n (fun i -> i mod 2) in
  let adversary = Adversary.vote_splitter () in

  (* 4. Run. *)
  let o = Sim.Engine.run protocol cfg ~adversary ~inputs in

  (* 5. Inspect the outcome and the three complexity metrics of Table 1. *)
  (match Sim.Engine.agreed_decision o with
  | Some v -> Fmt.pr "consensus reached on %d@." v
  | None -> failwith "consensus failed (this would be a bug)");
  Fmt.pr "rounds        : %d@." o.rounds_total;
  Fmt.pr "communication : %d messages, %d bits@." o.messages_sent o.bits_sent;
  Fmt.pr "randomness    : %d calls, %d bits@." o.rand_calls o.rand_bits;
  Fmt.pr "faults used   : %d/%d, %d messages omitted@." o.faults_used
    cfg.Sim.Config.t_max o.messages_omitted
