examples/quickstart.mli:
