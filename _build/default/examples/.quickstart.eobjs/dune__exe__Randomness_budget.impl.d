examples/randomness_budget.ml: Adversary Array Consensus Fmt List Sim
