examples/ledger_commit.ml: Adversary Array Consensus Fmt List Sim String
