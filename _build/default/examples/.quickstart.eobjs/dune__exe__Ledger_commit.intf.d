examples/ledger_commit.mli:
