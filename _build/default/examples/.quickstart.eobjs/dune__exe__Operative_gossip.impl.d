examples/operative_gossip.ml: Adversary Array Consensus Fmt List Sim
