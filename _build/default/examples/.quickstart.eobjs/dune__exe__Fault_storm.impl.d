examples/fault_storm.ml: Adversary Array Consensus Fmt List Printf Sim
