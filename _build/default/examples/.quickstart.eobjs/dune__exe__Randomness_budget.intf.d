examples/randomness_budget.mli:
