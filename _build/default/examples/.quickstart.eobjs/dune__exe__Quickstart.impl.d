examples/quickstart.ml: Adversary Array Consensus Fmt Sim
