examples/operative_gossip.mli:
