(** Spending a randomness budget — Theorem 3 in action.

    A deployment has a limited entropy source (e.g. a slow hardware RNG or
    an expensive verifiable-randomness beacon) and wants consensus using at
    most R random bits. Algorithm 4 trades time for randomness: splitting
    the n processes into x super-processes costs ~x (n/x)^{3/2} random bits
    and ~x sqrt(n/x) rounds. This example sweeps x, measures both, and
    shows the T x R ~ n^2 invariant of Table 1 (row Thm 3).

    Run with: dune exec examples/randomness_budget.exe *)

let () =
  let n = 144 in
  Fmt.pr "n = %d, t = %d, inputs split 50/50, staggered-crash adversary@.@." n
    (n / 61);
  Fmt.pr "%6s %8s %10s %12s %14s@." "x" "rounds" "rand bits" "comm bits"
    "rounds*rand";
  List.iter
    (fun x ->
      let cfg0 = Sim.Config.make ~n ~t_max:(n / 61) ~seed:5 () in
      let max_rounds = Consensus.Param_omissions.rounds_needed ~x cfg0 + 10 in
      let cfg = { cfg0 with Sim.Config.max_rounds } in
      let protocol = Consensus.Param_omissions.protocol ~x cfg in
      let inputs = Array.init n (fun i -> i mod 2) in
      let o =
        Sim.Engine.run protocol cfg
          ~adversary:(Adversary.staggered_crash ~per_round:1)
          ~inputs
      in
      (match Sim.Engine.agreed_decision o with
      | Some _ -> ()
      | None -> failwith "consensus failed");
      Fmt.pr "%6d %8d %10d %12d %14d@." x o.rounds_total o.rand_bits
        o.bits_sent
        (o.rounds_total * max 1 o.rand_bits))
    [ 1; 2; 4; 8; 16 ];
  Fmt.pr
    "@.Larger x: fewer random bits, more rounds — pick x from your entropy \
     budget.@."
