(** Fault storm: drive Algorithm 1 through every adversary in the library
    at the maximum tolerated fault budget and watch the operative/
    inoperative partition do its job (Lemma 7: at least n - 3t processes
    stay operative, no matter what).

    Run with: dune exec examples/fault_storm.exe *)

let min_operative = ref max_int

(* Piggyback on the adversary hook to observe the operative set each round
   (the view is the full-information snapshot the adversary gets). *)
let with_probe (adv : Sim.Adversary_intf.t) =
  {
    Sim.Adversary_intf.name = adv.name;
    create =
      (fun cfg rand ->
        let inner = adv.create cfg rand in
        fun view ->
          let ops =
            Array.fold_left
              (fun a o -> if o.Sim.View.core.operative then a + 1 else a)
              0 view.Sim.View.obs
          in
          if ops < !min_operative then min_operative := ops;
          inner view);
  }

let () =
  let n = 120 in
  let t = (n / 31) in
  Fmt.pr "n = %d, t = %d (paper bound: >= n - 3t = %d operative)@.@." n t
    (n - (3 * t));
  List.iter
    (fun adv ->
      min_operative := max_int;
      let cfg = Sim.Config.make ~n ~t_max:t ~seed:99 ~max_rounds:3000 () in
      let protocol = Consensus.Optimal_omissions.protocol cfg in
      let inputs = Array.init n (fun i -> (i / 5) mod 2) in
      let o = Sim.Engine.run protocol cfg ~adversary:(with_probe adv) ~inputs in
      let verdict =
        match Sim.Engine.agreed_decision o with
        | Some v -> Printf.sprintf "agreed on %d" v
        | None -> "FAILED"
      in
      Fmt.pr "%-26s rounds=%-5d faults=%-3d omitted=%-6d min-operative=%d  %s@."
        adv.Sim.Adversary_intf.name o.rounds_total o.faults_used
        o.messages_omitted !min_operative verdict)
    (Adversary.standard_suite ~n @ [ Adversary.eclipse ~victim:7 ]);
  Fmt.pr "@.every storm weathered: agreement held throughout@."
