(** Operative-partition information exchange (the paper's Section 6
    direction): broadcast one bit from a source to everyone over the
    Theorem-4 expander, under adaptive omission faults, and compare the
    cost with naive quadratic flooding.

    Run with: dune exec examples/operative_gossip.exe *)

let broadcast_cost n adversary seed =
  let cfg = Sim.Config.make ~n ~t_max:(n / 31) ~seed ~max_rounds:200 () in
  let proto = Consensus.Operative_broadcast.protocol ~source:0 cfg in
  let inputs = Array.init n (fun i -> if i = 0 then 1 else 0) in
  let o = Sim.Engine.run proto cfg ~adversary ~inputs in
  let delivered =
    Array.to_list o.Sim.Engine.decisions
    |> List.mapi (fun pid d -> (pid, d))
    |> List.filter (fun (pid, d) -> (not o.faulty.(pid)) && d = Some 1)
    |> List.length
  in
  (o, delivered)

let () =
  Fmt.pr "source 0 broadcasts bit 1; adaptive omissions at t = n/31@.@.";
  Fmt.pr "%6s %-26s %10s %12s %10s %12s@." "n" "adversary" "rounds" "bits"
    "delivered" "flood n^2(t+1)";
  List.iter
    (fun n ->
      List.iter
        (fun adversary ->
          let o, delivered = broadcast_cost n adversary 7 in
          Fmt.pr "%6d %-26s %10d %12d %7d/%-3d %12d@." n
            adversary.Sim.Adversary_intf.name o.rounds_total o.bits_sent
            delivered
            (n - o.faults_used)
            (n * n * ((n / 31) + 1)))
        [
          Adversary.none;
          Adversary.random_omission ~p_omit:0.8;
          Adversary.staggered_crash ~per_round:1;
        ])
    [ 64; 256; 1024 ];
  Fmt.pr
    "@.the expander gossip delivers to every operative process in O(log n) \
     rounds with\nO(n log^2 n) bits; omission-reliable flooding would pay n^2 \
     messages for t+1 rounds (last column).@."
