(** A replicated-ledger commit loop — the application the paper's
    introduction motivates ("distributed ledger implementations and
    distributed database applications based on consensus").

    A cluster of n replicas receives a stream of proposed blocks. For each
    block, replicas vote 1 (commit) or 0 (abort) based on local validation
    — here, a deterministic per-replica check that disagrees across
    replicas for some blocks — and run one consensus instance per block
    under a fresh omission adversary. The ledger is the sequence of agreed
    decisions; the example checks that all replicas end with identical
    ledgers no matter what the adversary did.

    Run with: dune exec examples/ledger_commit.exe *)

type block = { height : int; payload : string }

let blocks =
  [
    { height = 1; payload = "alice->bob:10" };
    { height = 2; payload = "bob->carol:7" };
    { height = 3; payload = "carol->dave:999999" (* suspicious *) };
    { height = 4; payload = "dave->erin:3" };
    { height = 5; payload = "erin->alice:1" };
  ]

(* Local validation: only a third of the replicas accept the suspicious
   block, so consensus deterministically aborts it; the rest are accepted
   unanimously. *)
let validate ~replica block =
  if String.length block.payload >= 18 then if replica mod 3 = 0 then 1 else 0
  else 1

let adversary_for_height = function
  | 1 -> Adversary.none
  | 2 -> Adversary.random_omission ~p_omit:0.8
  | 3 -> Adversary.vote_splitter ()
  | 4 -> Adversary.group_killer ()
  | _ -> Adversary.staggered_crash ~per_round:2

let () =
  let n = 64 in
  let ledger = ref [] in
  List.iter
    (fun block ->
      let cfg =
        Sim.Config.make ~n ~t_max:(n / 31) ~seed:(1000 + block.height)
          ~max_rounds:2000 ()
      in
      let protocol = Consensus.Optimal_omissions.protocol cfg in
      let inputs = Array.init n (fun replica -> validate ~replica block) in
      let adversary = adversary_for_height block.height in
      let o = Sim.Engine.run protocol cfg ~adversary ~inputs in
      match Sim.Engine.agreed_decision o with
      | Some 1 ->
          ledger := block :: !ledger;
          Fmt.pr "height %d: COMMIT %-22s (%d rounds, adversary %s)@."
            block.height block.payload o.rounds_total
            adversary.Sim.Adversary_intf.name
      | Some _ ->
          Fmt.pr "height %d: ABORT  %-22s (%d rounds, adversary %s)@."
            block.height block.payload o.rounds_total
            adversary.Sim.Adversary_intf.name
      | None -> failwith "ledger diverged: consensus violated")
    blocks;
  Fmt.pr "@.final ledger: %d blocks committed, identical on every replica@."
    (List.length !ledger)
