(* Ablations over the design constants DESIGN.md substitution 1 scales from
   the paper: expander degree, spreading duration, and epoch count. Each
   table shows what the constant buys (resilience, probability of avoiding
   the deterministic fallback) and what it costs (bits, rounds). *)

open Bench_util

let probe_min_operative adversary min_ops =
  {
    Sim.Adversary_intf.name = adversary.Sim.Adversary_intf.name;
    create =
      (fun cfg rand ->
        let inner = adversary.Sim.Adversary_intf.create cfg rand in
        fun view ->
          let ops =
            Array.fold_left
              (fun a o -> if o.Sim.View.core.operative then a + 1 else a)
              0 view.Sim.View.obs
          in
          if ops < !min_ops then min_ops := ops;
          inner view);
  }

let run_with_params ~params ~n ~t ~seed ~adversary =
  let cfg = Sim.Config.make ~n ~t_max:t ~seed ~max_rounds:20000 () in
  let proto = Consensus.Optimal_omissions.protocol ~params cfg in
  let inputs = Array.init n (fun i -> i mod 2) in
  let min_ops = ref max_int in
  let m = measure proto cfg ~adversary:(probe_min_operative adversary min_ops) ~inputs in
  (m, !min_ops)

(* A1: expander degree constant. *)
let abl_delta ~quick () =
  section "ABL-delta: expander degree Delta = c * log2 n (paper: c = 832)";
  Printf.printf
    "Smaller c saves spreading bits but erodes the operative margin under \
     omissions.\n";
  let n = if quick then 100 else 144 in
  let t = max 1 (n / 31) in
  row "%8s %8s %10s %14s %14s %8s\n" "c" "Delta" "rounds" "comm bits"
    "min operative" "n-3t";
  let codec =
    ( (fun (c, delta, m, min_ops) ->
        Printf.sprintf "%d;%d;%s;%d" c delta (measure_to_string m) min_ops),
      fun s ->
        match String.split_on_char ';' s with
        | [ c; delta; ms; mo ] -> (
            try
              Option.map
                (fun m ->
                  (int_of_string c, int_of_string delta, m, int_of_string mo))
                (measure_of_string ms)
            with _ -> None)
        | _ -> None )
  in
  Supervise.Cached.map ~budget:!budget
    ~describe:(fun _ c ->
      {
        Supervise.d_label = Printf.sprintf "abl-delta/c=%d" c;
        d_seed = Some 1;
        d_replay = Some "dune exec bench/main.exe -- --only abl-delta";
      })
    ?store:!store
    ~key:(fun c -> Printf.sprintf "abl-delta|n=%d|c=%d" n c)
    ~codec
    (fun c ->
      let params = { Consensus.Params.default with Consensus.Params.delta_c = c } in
      let m, min_ops =
        run_with_params ~params ~n ~t ~seed:1
          ~adversary:(Adversary.random_omission ~p_omit:1.0)
      in
      (c, Consensus.Params.delta params ~n, m, min_ops))
    [| 2; 4; 8; 12 |]
  |> Array.iter (function
       | Error fl -> quarantine fl
       | Ok (c, delta, m, min_ops) ->
           row "%8d %8d %10d %14d %14d %8d\n" c delta m.rounds m.bits min_ops
             (n - (3 * t));
           Out.emit
             [
               ("c", Out.I c); ("delta", Out.I delta);
               ("rounds", Out.I m.rounds); ("comm_bits", Out.I m.bits);
               ("min_operative", Out.I min_ops);
               ("operative_bound", Out.I (n - (3 * t)));
             ])

(* A2: spreading rounds multiplier. *)
let abl_spread ~quick () =
  section "ABL-spread: spreading rounds = c * log2 n (paper: 8 log n)";
  Printf.printf
    "More spreading rounds cost bits linearly; the dense core's diameter is \
     tiny at\nthese sizes, so extra rounds buy nothing once the counts have \
     flooded.\n";
  let n = if quick then 100 else 144 in
  let t = max 1 (n / 31) in
  row "%8s %10s %10s %14s %14s\n" "c" "rounds" "decided" "comm bits"
    "min operative";
  let codec =
    ( (fun (c, m, min_ops) ->
        Printf.sprintf "%d;%s;%d" c (measure_to_string m) min_ops),
      fun s ->
        match String.split_on_char ';' s with
        | [ c; ms; mo ] -> (
            try
              Option.map
                (fun m -> (int_of_string c, m, int_of_string mo))
                (measure_of_string ms)
            with _ -> None)
        | _ -> None )
  in
  Supervise.Cached.map ~budget:!budget
    ~describe:(fun _ c ->
      {
        Supervise.d_label = Printf.sprintf "abl-spread/c=%d" c;
        d_seed = Some 1;
        d_replay = Some "dune exec bench/main.exe -- --only abl-spread";
      })
    ?store:!store
    ~key:(fun c -> Printf.sprintf "abl-spread|n=%d|c=%d" n c)
    ~codec
    (fun c ->
      let params = { Consensus.Params.default with Consensus.Params.spread_c = c } in
      let m, min_ops =
        run_with_params ~params ~n ~t ~seed:1
          ~adversary:(Adversary.vote_splitter ())
      in
      (c, m, min_ops))
    [| 1; 2; 4 |]
  |> Array.iter (function
       | Error fl -> quarantine fl
       | Ok (c, m, min_ops) ->
           row "%8d %10d %10b %14d %14d\n" c m.rounds m.decided m.bits min_ops;
           Out.emit
             [
               ("c", Out.I c); ("rounds", Out.I m.rounds);
               ("decided", Out.B m.decided); ("comm_bits", Out.I m.bits);
               ("min_operative", Out.I min_ops);
             ])

(* A3: epoch count vs fallback engagement. *)
let abl_epochs ~quick () =
  section "ABL-epochs: epoch count vs deterministic-fallback engagement";
  Printf.printf
    "Each good epoch unifies the votes with constant probability; too few \
     epochs leave\nundecided processes that must run the O(t)-round \
     fallback (the paper's whp argument).\n";
  let n = if quick then 64 else 100 in
  let t = max 1 (n / 31) in
  let seeds = Bench_util.seed_list [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  (* the voting part ends after epochs * epoch_len + 2; later decisions
     mean the fallback ran *)
  row "%8s %12s %16s %12s\n" "epochs" "avg rounds" "fallback runs"
    "avg bits";
  let epoch_codec =
    ( (fun (m, fb) -> measure_to_string m ^ ";" ^ string_of_bool fb),
      fun s ->
        match String.split_on_char ';' s with
        | [ ms; fb ] -> (
            try
              Option.map (fun m -> (m, bool_of_string fb)) (measure_of_string ms)
            with _ -> None)
        | _ -> None )
  in
  let per_e =
    sweep ~codec:epoch_codec
      (* n in the point: quick and full campaigns use different sizes and
         must not share cache entries under the same key *)
      ~point:(fun e -> Printf.sprintf "n=%d/epochs=%d" n e)
      ~params:[ 1; 2; 4; 8; 12 ] ~seeds (fun e seed ->
        let params =
          { Consensus.Params.default with Consensus.Params.epochs = Consensus.Params.Fixed e }
        in
        let m, _ =
          run_with_params ~params ~n ~t ~seed
            ~adversary:(Adversary.vote_splitter ())
        in
        (* compute the voting-phase length for this parameterization *)
        let members = Array.init n (fun i -> i) in
        let sh =
          Consensus.Core.make_shared ~members ~seed:1 ~params ~t_max:t ()
        in
        let voting_end = Consensus.Core.rounds sh + 1 in
        (m, m.rounds > voting_end))
  in
  List.iter
    (fun (e, results) ->
      if results = [] then
        skip_point
          ~label:(Printf.sprintf "epochs=%d" e)
          ~reason:"no surviving runs (all quarantined)"
      else
      let fallbacks =
        List.length (List.filter (fun (_, fb) -> fb) results)
      in
      let k = float_of_int (List.length results) in
      let avg g =
        List.fold_left (fun a (m, _) -> a +. float_of_int (g m)) 0. results
        /. k
      in
      let rounds = avg (fun m -> m.rounds) and bits = avg (fun m -> m.bits) in
      row "%8d %12.0f %11d/%-4d %12.0f\n" e rounds fallbacks
        (List.length results) bits;
      Out.emit
        [
          ("epochs", Out.I e); ("avg_rounds", Out.F rounds);
          ("fallback_runs", Out.I fallbacks);
          ("seeds", Out.I (List.length results)); ("avg_bits", Out.F bits);
        ])
    per_e

let all ~quick () =
  abl_delta ~quick ();
  abl_spread ~quick ();
  abl_epochs ~quick ()
