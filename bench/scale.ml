(* Scale sweep: the broadcast-native fast path against the classic
   pointwise path at n up to 4096.

   Two record kinds go to the JSON sink:

   - kind="scale": deterministic run facts (rounds, messages, bits,
     omissions, decision round) with NO path field. Both delivery paths
     are bit-identical by construction (test/test_engine_equiv.ml), so
     these rows do not depend on --scale-path: CI runs the sweep once
     per path with --stable-json and diffs the files byte-for-byte.
   - kind="scale-throughput": rounds_per_sec and ns_per_message per
     path. Machine-dependent, so omitted in stable mode — like the
     micro-engine experiment's throughput rows, logged but never part
     of a baseline diff. bench/perf_gate.ml picks these up when present
     and enforces the fast/classic headline ratio.

   The classic column reproduces the cost model of the buffered engine
   before the broadcast port: every broadcast re-expanded into n-1
   pointwise outbox rows ([emit_all] routed through
   {!Sim.Protocol_intf.emit_all_pointwise}), compiled masks stripped by
   {!Adversary.pointwise} so delivery calls the per-message [omit]
   predicate, and a no-op [on_round] hook forcing the envelope arena
   fill the old engine performed unconditionally each round. The fast
   column is the same instance with broadcast segments, masks, no hook:
   untraced, the engine takes mask-blit delivery and never materialises
   the arena. Outcomes are asserted equal. *)

open Bench_util

type path_sel = Both | Classic | Fast

let path_sel = ref Both

let set_path = function
  | "both" -> path_sel := Both
  | "classic" -> path_sel := Classic
  | "fast" -> path_sel := Fast
  | s ->
      Printf.eprintf "unknown --scale-path %S (expected both|classic|fast)\n" s;
      exit 2

let timed ?on_round inst ~adversary ~inputs =
  let t0 = Unix.gettimeofday () in
  let o = Sim.Engine.run_instance ?on_round inst ~adversary ~inputs in
  (o, Unix.gettimeofday () -. t0)

(* The pre-broadcast emission model: [emit_all] re-expanded into one
   pointwise row per destination. *)
let pointwise_emission (module P : Sim.Protocol_intf.BUFFERED) :
    Sim.Protocol_intf.buffered =
  (module struct
    include P

    let step_into cfg st ~round ~inbox ~rand ~emit ~emit_all:_ =
      P.step_into cfg st ~round ~inbox ~rand ~emit
        ~emit_all:(Sim.Protocol_intf.emit_all_pointwise emit)
  end)

let emit_throughput ~protocol ~path ~n (o : Sim.Engine.outcome) wall =
  if not (Out.is_stable ()) then
    Out.emit ~kind:"scale-throughput"
      [
        ("protocol", Out.S protocol);
        ("path", Out.S path);
        ("n", Out.I n);
        ("rounds_per_sec", Out.F (float_of_int o.rounds_total /. wall));
        ( "ns_per_message",
          Out.F (wall *. 1e9 /. float_of_int (max 1 o.messages_sent)) );
      ]

let emit_scale ~protocol ~n ~t (o : Sim.Engine.outcome) =
  Out.emit ~kind:"scale"
    [
      ("protocol", Out.S protocol);
      ("n", Out.I n);
      ("t", Out.I t);
      ("rounds", Out.I o.rounds_total);
      ( "decided_round",
        Out.I (match o.decided_round with Some r -> r | None -> -1) );
      ("msgs", Out.I o.messages_sent);
      ("bits", Out.I o.bits_sent);
      ("omitted", Out.I o.messages_omitted);
      ("faults_used", Out.I o.faults_used);
    ]

(* One (protocol, n) point. The adversary strategy is rebuilt per run:
   strategies close over mutable per-run state (crash schedules tick),
   and the classic run must not see the fast run's leftovers.

   [classic_cap] bounds the n above which a default (--scale-path both)
   sweep skips the classic column: optimal-omissions is dominated by its
   local step phase (the two delivery paths measure within noise of each
   other), so duplicating its quarter-hour n=4096 point buys nothing.
   An explicit --scale-path classic still runs every point, keeping the
   per-path kind="scale" row sets identical. *)
let case ~protocol ~buffered ~adversary ~t ~max_rounds ?(classic_cap = max_int)
    n =
  let cfg = Sim.Config.make ~n ~t_max:t ~seed:1 ~max_rounds () in
  let inputs = Array.init n (fun i -> i mod 2) in
  let fast =
    match !path_sel with
    | Classic -> None
    | Both | Fast ->
        let inst = Sim.Engine.instance (buffered cfg) cfg in
        Some (timed inst ~adversary:(adversary ()) ~inputs)
  in
  let classic =
    match !path_sel with
    | Fast -> None
    | Both when n > classic_cap -> None
    | Both | Classic ->
        let inst =
          Sim.Engine.instance (pointwise_emission (buffered cfg)) cfg
        in
        Some
          (timed inst
             ~on_round:(fun ~round:_ _ -> ())
             ~adversary:(Adversary.pointwise (adversary ()))
             ~inputs)
  in
  (match (fast, classic) with
  | Some (of_, _), Some (oc, _) when of_ <> oc ->
      failwith
        (Printf.sprintf "scale: %s n=%d: fast and classic outcomes differ"
           protocol n)
  | _ -> ());
  let o =
    match (fast, classic) with
    | Some (o, _), _ | None, Some (o, _) -> o
    | None, None -> assert false
  in
  if Sim.Engine.agreed_decision o = None then
    failwith (Printf.sprintf "scale: %s n=%d failed to decide" protocol n);
  emit_scale ~protocol ~n ~t o;
  Option.iter
    (fun (o, w) -> emit_throughput ~protocol ~path:"fast" ~n o w)
    fast;
  Option.iter
    (fun (o, w) -> emit_throughput ~protocol ~path:"classic" ~n o w)
    classic;
  let rps = function
    | Some ((o : Sim.Engine.outcome), w) -> float_of_int o.rounds_total /. w
    | None -> nan
  in
  match (fast, classic) with
  | Some _, Some _ ->
      row "%-10s n=%-5d t=%-3d %8d rnds %12d msgs %10.1f rps fast %10.1f rps classic (%.1fx)\n"
        protocol n t o.rounds_total o.messages_sent (rps fast) (rps classic)
        (rps fast /. rps classic)
  | _ ->
      row "%-10s n=%-5d t=%-3d %8d rnds %12d msgs %10.1f rps %s only\n"
        protocol n t o.rounds_total o.messages_sent
        (rps (if fast = None then classic else fast))
        (if fast = None then "classic" else "fast")

let scale ~quick () =
  section "Scale: broadcast fast path vs pointwise classic path";
  Printf.printf "paths: %s (--scale-path)\n"
    (match !path_sel with
    | Both -> "both"
    | Classic -> "classic"
    | Fast -> "fast");
  let ns = if quick then [ 512; 1024 ] else [ 512; 1024; 2048; 4096 ] in
  List.iter
    (fun n ->
      case n ~protocol:"flood" ~t:8 ~max_rounds:20
        ~buffered:Consensus.Flood.protocol_buffered
        ~adversary:(fun () ->
          Adversary.crash_schedule [ (1, [ 0 ]); (2, [ 1 ]); (3, [ 2 ]) ]))
    ns;
  (* t = 0 keeps Dolev-Strong's relay chains out of the O(n^3) regime —
     the sweep measures delivery throughput, not chain bookkeeping *)
  List.iter
    (fun n ->
      case n ~protocol:"dolev-strong" ~t:0 ~max_rounds:10
        ~buffered:Consensus.Dolev_strong.protocol_buffered
        ~adversary:(fun () -> Sim.Adversary_intf.none))
    ns;
  List.iter
    (fun n ->
      let cfg0 = Sim.Config.make ~n ~t_max:2 ~seed:1 () in
      let max_rounds = Consensus.Optimal_omissions.rounds_needed cfg0 + 10 in
      case n ~protocol:"optimal" ~t:2 ~max_rounds ~classic_cap:1024
        ~buffered:(fun cfg -> Consensus.Optimal_omissions.protocol_buffered cfg)
        ~adversary:(fun () ->
          Adversary.crash_schedule [ (1, [ 0 ]); (2, [ 1 ]) ]))
    ns
