(* Shared plumbing for the experiment harness: stdout tables, the
   JSON-lines results sink, and the supervision glue — quarantined sweeps,
   watchdog budgets, and the checkpoint journal behind --resume. *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n-- %s --\n" title

let row fmt = Printf.printf fmt

(* ------------------------------------------------------------------ *)
(* Structured results: every experiment row is teed as a JSON record   *)
(* (JSON Lines) into BENCH_consensus.json, alongside the stdout table. *)
(* ------------------------------------------------------------------ *)

module Out = struct
  type jv = I of int | F of float | S of string | B of bool

  let sink : out_channel option ref = ref None
  let experiment = ref ""
  let started = ref 0.

  (* stable mode omits the wall_s stamp from every record, so two runs of
     the same campaign — e.g. interrupted-then-resumed vs uninterrupted —
     produce byte-identical files *)
  let stable = ref false
  let set_stable b = stable := b

  let set_path = function
    | None -> sink := None
    | Some path -> sink := Some (open_out path)

  let start_experiment id =
    experiment := id;
    started := Unix.gettimeofday ()

  let elapsed () = Unix.gettimeofday () -. !started

  let escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let jv_to_string = function
    | I i -> string_of_int i
    | F f ->
        (* JSON has no inf/nan literals *)
        if Float.is_finite f then Printf.sprintf "%.17g" f else "null"
    | S s -> Printf.sprintf "\"%s\"" (escape s)
    | B b -> string_of_bool b

  (* One self-contained JSON object per line: experiment id, record kind,
     wall-clock seconds since the experiment started (unless in stable
     mode), then the caller's parameter/metric fields in order. *)
  let emit ?(kind = "row") fields =
    match !sink with
    | None -> ()
    | Some ch ->
        let b = Buffer.create 128 in
        Buffer.add_string b
          (Printf.sprintf "{\"experiment\":\"%s\",\"kind\":\"%s\""
             (escape !experiment) (escape kind));
        if not !stable then
          Buffer.add_string b (Printf.sprintf ",\"wall_s\":%.3f" (elapsed ()));
        List.iter
          (fun (k, v) ->
            Buffer.add_string b
              (Printf.sprintf ",\"%s\":%s" (escape k) (jv_to_string v)))
          fields;
        Buffer.add_string b "}\n";
        output_string ch (Buffer.contents b);
        flush ch

  let close () =
    match !sink with
    | None -> ()
    | Some ch ->
        close_out ch;
        sink := None
end

(* ------------------------------------------------------------------ *)
(* Supervision state: watchdog budget, quarantine ledger, journal.     *)
(* ------------------------------------------------------------------ *)

(* wired from --wall-budget / --round-budget / --msg-budget / --rand-budget *)
let budget = ref Supervise.Budget.unlimited

(* the checkpoint journal behind --resume, or None when disabled *)
let journal : Supervise.Journal.t option ref = ref None

let enable_journal ~path ~resume =
  let j = Supervise.Journal.open_ ~path ~resume in
  if resume then begin
    Printf.printf "resume: %d journaled rows loaded from %s%s\n"
      (Supervise.Journal.entries j)
      path
      (match Supervise.Journal.corrupt j with
      | 0 -> ""
      | c -> Printf.sprintf " (%d corrupt lines skipped)" c);
    if Supervise.Journal.corrupt j > 0 then
      Out.emit ~kind:"journal-corrupt"
        [ ("skipped_lines", Out.I (Supervise.Journal.corrupt j)) ]
  end;
  journal := Some j

let close_journal () =
  match !journal with
  | None -> ()
  | Some j ->
      Supervise.Journal.close j;
      journal := None

(* quarantined tasks + skipped points, for the end-of-campaign summary *)
let quarantined = ref 0
let skipped_points = ref 0
let failures () = !quarantined + !skipped_points

let quarantine (f : Supervise.failure) =
  incr quarantined;
  Printf.printf "  QUARANTINED %s: %s\n" f.Supervise.label
    (Fmt.str "%a" Supervise.pp_failure_kind f.Supervise.kind);
  (match f.Supervise.replay with
  | Some cmd -> Printf.printf "    replay: %s\n" cmd
  | None -> ());
  let base =
    [ ("label", Out.S f.Supervise.label); ("index", Out.I f.Supervise.index) ]
  in
  let seed =
    match f.Supervise.seed with Some s -> [ ("seed", Out.I s) ] | None -> []
  in
  let replay =
    match f.Supervise.replay with
    | Some c -> [ ("replay", Out.S c) ]
    | None -> []
  in
  let kind =
    match f.Supervise.kind with
    | Supervise.Crashed { exn_text; _ } ->
        [ ("failure", Out.S "crashed"); ("exn", Out.S exn_text) ]
    | Supervise.Timeout { limit_s; elapsed_s } ->
        [
          ("failure", Out.S "timeout"); ("limit_s", Out.F limit_s);
          ("timeout_elapsed_s", Out.F elapsed_s);
        ]
    | Supervise.Budget_exceeded { metric; limit; actual; at_round } ->
        [
          ("failure", Out.S "budget_exceeded"); ("metric", Out.S metric);
          ("limit", Out.F limit); ("actual", Out.F actual);
          ("at_round", Out.I at_round);
        ]
  in
  Out.emit ~kind:"quarantine" (base @ seed @ replay @ kind)

let skip_point ~label ~reason =
  incr skipped_points;
  Printf.printf "  SKIPPED%s: %s\n"
    (if label = "" then "" else Printf.sprintf " (%s)" label)
    reason;
  Out.emit ~kind:"skip" [ ("label", Out.S label); ("reason", Out.S reason) ]

(* Printed by bench/main.exe after the campaign; pairs with a non-zero
   exit so CI notices partial results. *)
let print_failure_summary () =
  if failures () > 0 then begin
    Printf.printf
      "\nWARNING: partial results — %d task(s) quarantined, %d point(s) \
       skipped.\nQuarantine records (with replay commands) are in the JSON \
       sink under kind=\"quarantine\".\n"
      !quarantined !skipped_points;
    Out.emit ~kind:"failure-summary"
      [
        ("quarantined", Out.I !quarantined);
        ("skipped_points", Out.I !skipped_points);
      ]
  end

(* ------------------------------------------------------------------ *)
(* Measurements.                                                       *)
(* ------------------------------------------------------------------ *)

type run_measure = {
  rounds : int;  (** decided round, or total if not terminated *)
  decided : bool;
  messages : int;
  bits : int;
  rand_calls : int;
  rand_bits : int;
  faults : int;
}

exception Violation of string
(* A run on which the non-faulty processes disagreed: a protocol bug. The
   supervision layer quarantines it — one bad point must not kill the
   campaign — but it is always reported, never averaged over. *)

let measure ?on_round proto cfg ~adversary ~inputs =
  let o =
    match
      Supervise.run ?on_round ~budget:!budget proto cfg ~adversary ~inputs
    with
    | Ok o -> o
    | Error (kind, _partial) -> raise (Supervise.Breach kind)
  in
  (* Disagreement between processes that did decide is a protocol bug; it
     becomes a quarantined failure under Supervise.map. A run that merely
     ran out of rounds surfaces as [decided = false] and is excluded from
     averages by [avg_runs]. *)
  let disagreement =
    let seen = ref None and bad = ref false in
    Array.iteri
      (fun pid d ->
        if not o.Sim.Engine.faulty.(pid) then
          match (d, !seen) with
          | None, _ -> ()
          | Some v, None -> seen := Some v
          | Some v, Some w -> if v <> w then bad := true)
      o.Sim.Engine.decisions;
    !bad
  in
  if disagreement then
    raise (Violation "run violated consensus — this is a bug, please report");
  if o.Sim.Engine.decided_round <> None && Sim.Engine.agreed_decision o = None
  then
    raise (Violation "run violated consensus — this is a bug, please report");
  {
    rounds =
      (match o.Sim.Engine.decided_round with
      | Some r -> r
      | None -> o.rounds_total);
    decided = o.decided_round <> None;
    messages = o.messages_sent;
    bits = o.bits_sent;
    rand_calls = o.rand_calls;
    rand_bits = o.rand_bits;
    faults = o.faults_used;
  }

(* journal codec for run_measure; the decoder rejects torn rows *)
let measure_to_string m =
  Printf.sprintf "%d %b %d %d %d %d %d" m.rounds m.decided m.messages m.bits
    m.rand_calls m.rand_bits m.faults

let measure_of_string s =
  match String.split_on_char ' ' s with
  | [ r; d; ms; b; rc; rb; f ] -> (
      try
        Some
          {
            rounds = int_of_string r;
            decided = bool_of_string d;
            messages = int_of_string ms;
            bits = int_of_string b;
            rand_calls = int_of_string rc;
            rand_bits = int_of_string rb;
            faults = int_of_string f;
          }
      with _ -> None)
  | _ -> None

let measure_codec = (measure_to_string, measure_of_string)

(* Average a list of measurements, excluding runs that hit max_rounds
   without deciding: their rounds column is a timeout artifact, not a
   measurement, and silently averaging it in would corrupt the fitted
   exponents. Returns [None] — a skipped point, reported and counted, the
   campaign continues — when no measurement survives, either because every
   run was quarantined upstream or because none decided in time. *)
let avg_runs ?(label = "") ms =
  let total = List.length ms in
  if total = 0 then begin
    skip_point ~label ~reason:"no surviving runs (all quarantined)";
    None
  end
  else begin
    let decided, timed_out = List.partition (fun m -> m.decided) ms in
    if timed_out <> [] && decided <> [] then begin
      Printf.printf
        "  warning%s: %d/%d runs hit max_rounds without deciding; excluded \
         from averages\n"
        (if label = "" then "" else Printf.sprintf " (%s)" label)
        (List.length timed_out) total;
      Out.emit ~kind:"warning"
        [
          ("label", Out.S label);
          ("non_terminated", Out.I (List.length timed_out));
          ("runs", Out.I total);
        ]
    end;
    match decided with
    | [] ->
        skip_point ~label
          ~reason:"no run decided within max_rounds — raise max_rounds";
        None
    | ms ->
        let n = float_of_int (List.length ms) in
        let favg g =
          List.fold_left (fun a m -> a +. float_of_int (g m)) 0. ms /. n
        in
        Some
          ( favg (fun m -> m.rounds),
            favg (fun m -> m.bits),
            favg (fun m -> m.rand_bits),
            favg (fun m -> m.messages) )
  end

(* ------------------------------------------------------------------ *)
(* Supervised parameter sweeps.                                        *)
(* ------------------------------------------------------------------ *)

(* Parallel parameter sweep: one pool task per (param, seed) pair — finer
   grain than parallelizing over seeds alone — returning the per-param
   result lists in sweep order, successes only. Failed tasks are
   quarantined (reported + counted, with a replay command when [replay] is
   given), so the sweep always completes its surviving points.

   [point] names a parameter for journal keys and quarantine labels. When
   [codec] is given and the journal is enabled, each completed (experiment,
   point, seed) task is journaled as it finishes, and journaled tasks are
   skipped on --resume — bit-identical results, since every task is a pure
   function of its (param, seed). *)
let sweep ?codec ?replay ~point ~params ~seeds f =
  let tasks =
    Array.of_list
      (List.concat_map (fun p -> List.map (fun s -> (p, s)) seeds) params)
  in
  let key (p, s) = Printf.sprintf "%s|%s|seed=%d" !Out.experiment (point p) s in
  let decode =
    match (codec, !journal) with
    | Some (_, dec), Some j ->
        fun task ->
          Option.bind (Supervise.Journal.lookup j (key task)) dec
    | _ -> fun _ -> None
  in
  let cached = Array.map decode tasks in
  let torun =
    Array.of_list
      (List.filter
         (fun i -> cached.(i) = None)
         (List.init (Array.length tasks) Fun.id))
  in
  let describe _k i =
    let p, s = tasks.(i) in
    {
      Supervise.d_label = Printf.sprintf "%s/seed=%d" (point p) s;
      d_seed = Some s;
      d_replay =
        (match replay with
        | Some r -> Some (r p s)
        | None ->
            Some
              (Printf.sprintf "dune exec bench/main.exe -- --only %s"
                 !Out.experiment));
    }
  in
  let fresh =
    Supervise.map ~budget:!budget ~describe
      (fun i ->
        let p, s = tasks.(i) in
        f p s)
      torun
  in
  (* merge journal hits and fresh results back into task order, recording
     fresh successes as we go *)
  let results = Array.map (fun c -> Option.map Result.ok c) cached in
  Array.iteri
    (fun k r ->
      let i = torun.(k) in
      (match (r, codec, !journal) with
      | Ok v, Some (enc, _), Some j ->
          Supervise.Journal.record j ~key:(key tasks.(i)) (enc v)
      | _ -> ());
      results.(i) <- Some r)
    fresh;
  let results =
    Array.map
      (function Some r -> r | None -> assert false (* every slot filled *))
      results
  in
  (* quarantine failures in task order, then regroup successes per param *)
  Array.iter
    (function Ok _ -> () | Error fl -> quarantine fl)
    results;
  let per_seed = List.length seeds in
  List.mapi
    (fun pi p ->
      let ok = ref [] in
      for k = (pi * per_seed) + per_seed - 1 downto pi * per_seed do
        match results.(k) with Ok v -> ok := v :: !ok | Error _ -> ()
      done;
      (p, !ok))
    params

(* Run one supervised task outside a sweep (the single-run figures); a
   failure is quarantined and the caller gets [None]. *)
let protected ~label f =
  match
    Supervise.protect ~budget:!budget
      ~descriptor:
        {
          Supervise.d_label = label;
          d_seed = None;
          d_replay =
            Some
              (Printf.sprintf "dune exec bench/main.exe -- --only %s"
                 !Out.experiment);
        }
      f
  with
  | Ok v -> Some v
  | Error fl ->
      quarantine fl;
      None

let optimal_run ?(adversary = Adversary.vote_splitter ()) ~n ~t ~seed () =
  let cfg = Sim.Config.make ~n ~t_max:t ~seed ~max_rounds:20000 () in
  let proto = Consensus.Optimal_omissions.protocol cfg in
  let inputs = Array.init n (fun i -> i mod 2) in
  measure proto cfg ~adversary ~inputs

(* With quarantined points a sweep can shrink below a fittable sample;
   surface that as nan (emitted as JSON null) instead of raising. *)
let fit_exponent ?(log_power = 0) ns ys =
  if List.length ys < 2 then Float.nan
  else
    Stats.growth_exponent ~log_power
      (Array.of_list (List.map float_of_int ns))
      (Array.of_list ys)
