(* Shared plumbing for the experiment harness. *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n-- %s --\n" title

let row fmt = Printf.printf fmt

(* ------------------------------------------------------------------ *)
(* Structured results: every experiment row is teed as a JSON record   *)
(* (JSON Lines) into BENCH_consensus.json, alongside the stdout table. *)
(* ------------------------------------------------------------------ *)

module Out = struct
  type jv = I of int | F of float | S of string | B of bool

  let sink : out_channel option ref = ref None
  let experiment = ref ""
  let started = ref 0.

  let set_path = function
    | None -> sink := None
    | Some path -> sink := Some (open_out path)

  let start_experiment id =
    experiment := id;
    started := Unix.gettimeofday ()

  let elapsed () = Unix.gettimeofday () -. !started

  let escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let jv_to_string = function
    | I i -> string_of_int i
    | F f ->
        (* JSON has no inf/nan literals *)
        if Float.is_finite f then Printf.sprintf "%.17g" f else "null"
    | S s -> Printf.sprintf "\"%s\"" (escape s)
    | B b -> string_of_bool b

  (* One self-contained JSON object per line: experiment id, record kind,
     wall-clock seconds since the experiment started, then the caller's
     parameter/metric fields in order. *)
  let emit ?(kind = "row") fields =
    match !sink with
    | None -> ()
    | Some ch ->
        let b = Buffer.create 128 in
        Buffer.add_string b
          (Printf.sprintf "{\"experiment\":\"%s\",\"kind\":\"%s\",\"wall_s\":%.3f"
             (escape !experiment) (escape kind) (elapsed ()));
        List.iter
          (fun (k, v) ->
            Buffer.add_string b
              (Printf.sprintf ",\"%s\":%s" (escape k) (jv_to_string v)))
          fields;
        Buffer.add_string b "}\n";
        output_string ch (Buffer.contents b);
        flush ch

  let close () =
    match !sink with
    | None -> ()
    | Some ch ->
        close_out ch;
        sink := None
end

type run_measure = {
  rounds : int;  (** decided round, or total if not terminated *)
  decided : bool;
  messages : int;
  bits : int;
  rand_calls : int;
  rand_bits : int;
  faults : int;
}

let measure ?on_round proto cfg ~adversary ~inputs =
  let o = Sim.Engine.run ?on_round proto cfg ~adversary ~inputs in
  (* Disagreement between processes that did decide is a protocol bug and
     aborts the experiment; a run that merely ran out of rounds surfaces as
     [decided = false] and is excluded from averages by [avg_runs]. *)
  let disagreement =
    let seen = ref None and bad = ref false in
    Array.iteri
      (fun pid d ->
        if not o.Sim.Engine.faulty.(pid) then
          match (d, !seen) with
          | None, _ -> ()
          | Some v, None -> seen := Some v
          | Some v, Some w -> if v <> w then bad := true)
      o.Sim.Engine.decisions;
    !bad
  in
  if disagreement then
    failwith "experiment run violated consensus — this is a bug, please report";
  if o.Sim.Engine.decided_round <> None && Sim.Engine.agreed_decision o = None
  then
    failwith "experiment run violated consensus — this is a bug, please report";
  {
    rounds =
      (match o.Sim.Engine.decided_round with
      | Some r -> r
      | None -> o.rounds_total);
    decided = o.decided_round <> None;
    messages = o.messages_sent;
    bits = o.bits_sent;
    rand_calls = o.rand_calls;
    rand_bits = o.rand_bits;
    faults = o.faults_used;
  }

(* Average a list of measurements, excluding runs that hit max_rounds
   without deciding: their rounds column is a timeout artifact, not a
   measurement, and silently averaging it in would corrupt the fitted
   exponents. Excluded runs are surfaced with a warning (and a JSON
   record), never dropped silently. *)
let avg_runs ?(label = "") ms =
  let total = List.length ms in
  if total = 0 then invalid_arg "avg_runs: no measurements";
  let decided, timed_out = List.partition (fun m -> m.decided) ms in
  if timed_out <> [] then begin
    Printf.printf
      "  warning%s: %d/%d runs hit max_rounds without deciding; excluded \
       from averages\n"
      (if label = "" then "" else Printf.sprintf " (%s)" label)
      (List.length timed_out) total;
    Out.emit ~kind:"warning"
      [
        ("label", Out.S label);
        ("non_terminated", Out.I (List.length timed_out));
        ("runs", Out.I total);
      ]
  end;
  let ms =
    match decided with
    | [] ->
        failwith
          (Printf.sprintf
             "avg_runs%s: no run decided within max_rounds — raise max_rounds"
             (if label = "" then "" else Printf.sprintf " (%s)" label))
    | _ -> decided
  in
  let n = float_of_int (List.length ms) in
  let favg g = List.fold_left (fun a m -> a +. float_of_int (g m)) 0. ms /. n in
  ( favg (fun m -> m.rounds),
    favg (fun m -> m.bits),
    favg (fun m -> m.rand_bits),
    favg (fun m -> m.messages) )

(* Average a measurement over seeds; the runs fan out across the domain
   pool (each is a pure function of its seed, so results are identical at
   any --jobs). *)
let avg_measure ?label ~seeds f = avg_runs ?label (Exec.map_list f seeds)

(* Parallel parameter sweep: one pool task per (param, seed) pair — finer
   grain than parallelizing over seeds alone — returning the per-param
   measurement lists in sweep order. *)
let sweep ~params ~seeds f =
  let tasks =
    List.concat_map (fun p -> List.map (fun s -> (p, s)) seeds) params
  in
  let ms = Exec.map_list (fun (p, s) -> f p s) tasks in
  let per_seed = List.length seeds in
  let rec split acc ms = function
    | [] -> List.rev acc
    | p :: ps ->
        let rec take k rest taken =
          if k = 0 then (List.rev taken, rest)
          else
            match rest with
            | [] -> invalid_arg "sweep: result underrun"
            | m :: rest -> take (k - 1) rest (m :: taken)
        in
        let taken, rest = take per_seed ms [] in
        split ((p, taken) :: acc) rest ps
  in
  split [] ms params

let optimal_run ?(adversary = Adversary.vote_splitter ()) ~n ~t ~seed () =
  let cfg = Sim.Config.make ~n ~t_max:t ~seed ~max_rounds:20000 () in
  let proto = Consensus.Optimal_omissions.protocol cfg in
  let inputs = Array.init n (fun i -> i mod 2) in
  measure proto cfg ~adversary ~inputs

let fit_exponent ?(log_power = 0) ns ys =
  Stats.growth_exponent ~log_power
    (Array.of_list (List.map float_of_int ns))
    (Array.of_list ys)
