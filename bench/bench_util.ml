(* Shared plumbing for the experiment harness: stdout tables, the
   JSON-lines results sink, and the supervision glue — quarantined sweeps,
   watchdog budgets, and the checkpoint journal behind --resume. *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n-- %s --\n" title

let row fmt = Printf.printf fmt

(* ------------------------------------------------------------------ *)
(* Structured results: every experiment row is teed as a JSON record   *)
(* (JSON Lines) into BENCH_consensus.json, alongside the stdout table. *)
(* ------------------------------------------------------------------ *)

(* Version of the JSON-lines schema written below; bump when a record's
   shape changes. Documented in EXPERIMENTS.md ("JSON schema"). *)
let schema_version = 2

module Out = struct
  type jv =
    | I of int
    | F of float
    | S of string
    | B of bool
    | L of jv list
    | Raw of string  (** pre-rendered JSON, emitted verbatim *)

  let sink : out_channel option ref = ref None
  let experiment = ref ""
  let started = ref 0.

  (* stable mode omits the wall_s stamp from every record, so two runs of
     the same campaign — e.g. interrupted-then-resumed vs uninterrupted —
     produce byte-identical files *)
  let stable = ref false
  let set_stable b = stable := b
  let is_stable () = !stable

  let set_path = function
    | None -> sink := None
    | Some path -> sink := Some (open_out path)

  let start_experiment id =
    experiment := id;
    started := Unix.gettimeofday ()

  let elapsed () = Unix.gettimeofday () -. !started

  let escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let rec jv_to_string = function
    | I i -> string_of_int i
    | F f ->
        (* JSON has no inf/nan literals *)
        if Float.is_finite f then Printf.sprintf "%.17g" f else "null"
    | S s -> Printf.sprintf "\"%s\"" (escape s)
    | B b -> string_of_bool b
    | L l -> "[" ^ String.concat "," (List.map jv_to_string l) ^ "]"
    | Raw s -> s

  (* One self-contained JSON object per line: experiment id, record kind,
     schema version, wall-clock seconds since the experiment started
     (unless in stable mode), then the caller's parameter/metric fields in
     order. *)
  let emit ?(kind = "row") fields =
    match !sink with
    | None -> ()
    | Some ch ->
        let b = Buffer.create 128 in
        Buffer.add_string b
          (Printf.sprintf
             "{\"experiment\":\"%s\",\"kind\":\"%s\",\"schema_version\":%d"
             (escape !experiment) (escape kind) schema_version);
        if not !stable then
          Buffer.add_string b (Printf.sprintf ",\"wall_s\":%.3f" (elapsed ()));
        List.iter
          (fun (k, v) ->
            Buffer.add_string b
              (Printf.sprintf ",\"%s\":%s" (escape k) (jv_to_string v)))
          fields;
        Buffer.add_string b "}\n";
        output_string ch (Buffer.contents b);
        flush ch

  let close () =
    match !sink with
    | None -> ()
    | Some ch ->
        close_out ch;
        sink := None
end

(* ------------------------------------------------------------------ *)
(* Supervision state: watchdog budget, quarantine ledger, journal.     *)
(* ------------------------------------------------------------------ *)

(* wired from --wall-budget / --round-budget / --msg-budget / --rand-budget *)
let budget = ref Supervise.Budget.unlimited

(* ------------------------------------------------------------------ *)
(* Tracing configuration (wired from --trace / --trace-dir /           *)
(* --trace-format / --trace-tail on bench/main.exe).                    *)
(* ------------------------------------------------------------------ *)

(* --trace: collect Trace.Metrics per run and tee kind="trace-metrics"
   records into the JSON sink *)
let trace_metrics = ref false

(* --trace-tail K: keep the last K rounds of events per supervised run;
   quarantine records then ship with the tail. 0 = off (the default: the
   engine's off path stays allocation-free). *)
let trace_tail_rounds = ref 0

(* --trace-dir DIR: write each run's full event trace to a file in DIR *)
let trace_dir : string option ref = ref None

(* --trace-format *)
let trace_format = ref Trace.Jsonl

let tracing_on () =
  !trace_metrics || !trace_tail_rounds > 0 || !trace_dir <> None

(* --net SPEC: base lossy-link transport spec for the kind="net"
   experiment (the sweep still varies the drop rate around it) *)
let net_base : Net.Spec.t option ref = ref None

(* --seeds N: override each experiment's default per-point seed list *)
let seeds_override : int option ref = ref None

let seed_list default =
  match !seeds_override with
  | None -> default
  | Some k -> List.init k (fun i -> i + 1)

(* Per-run trace files are named after the supervised task's label (the
   sweep point), with a per-label sequence number for tasks that measure
   more than once. The counter lives in domain-local storage: a task runs
   entirely on one domain, so same-label runs are numbered deterministically
   at any --jobs count. *)
let trace_seq_key : (string * int ref) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ("", ref 0))

let trace_file_path () =
  match !trace_dir with
  | None -> None
  | Some dir ->
      let label =
        match Supervise.current_label () with
        | Some l -> l
        | None -> "run"
      in
      let seq =
        let cur_label, count = Domain.DLS.get trace_seq_key in
        if cur_label = label then begin
          incr count;
          !count
        end
        else begin
          Domain.DLS.set trace_seq_key (label, ref 1);
          1
        end
      in
      let sanitized =
        String.map
          (fun c ->
            match c with
            | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
            | _ -> '_')
          label
      in
      Some
        (Filename.concat dir
           (Printf.sprintf "%s.%s.%d.trace.%s" !Out.experiment sanitized seq
              (Trace.format_extension !trace_format)))

(* the checkpoint journal behind --resume, or None when disabled *)
let journal : Supervise.Journal.t option ref = ref None

let enable_journal ~path ~resume =
  let j = Supervise.Journal.open_ ~path ~resume in
  if resume then begin
    Printf.printf "resume: %d journaled rows loaded from %s%s\n"
      (Supervise.Journal.entries j)
      path
      (match Supervise.Journal.corrupt j with
      | 0 -> ""
      | c -> Printf.sprintf " (%d corrupt lines skipped)" c);
    if Supervise.Journal.corrupt j > 0 then
      Out.emit ~kind:"journal-corrupt"
        [ ("skipped_lines", Out.I (Supervise.Journal.corrupt j)) ]
  end;
  journal := Some j

let close_journal () =
  match !journal with
  | None -> ()
  | Some j ->
      Supervise.Journal.close j;
      journal := None

(* the content-addressed run cache behind --cache, or None when off. The
   journal and the cache are complementary layers: the journal is one
   campaign's crash log (keyed by experiment/point/seed, deleted when the
   campaign completes), the cache is a cross-campaign memo keyed by run
   content. [sweep] consults journal first, cache second, and
   cross-populates on a hit in either, so a campaign can resume from
   whichever layer survives. *)
let store : Cache.Store.t option ref = ref None

let enable_cache ~dir =
  let s = Cache.Store.open_ ~dir () in
  Printf.printf "cache: %d entries in %s%s\n"
    (Cache.Store.entries s) dir
    (match Cache.Store.corrupt s with
    | 0 -> ""
    | c -> Printf.sprintf " (%d corrupt index lines skipped)" c);
  store := Some s

let close_cache () =
  match !store with
  | None -> ()
  | Some s ->
      Cache.Store.close s;
      store := None

(* Per-experiment cache accounting: [cache_mark] snapshots the store
   counters, [emit_cache_delta] reports the movement since the snapshot
   as one kind="cache" row. Counters are ints and the store is consulted
   only from the main domain's sweep scheduling (workers never touch it),
   so the rows are deterministic at any --jobs count. *)
let cache_mark () =
  match !store with
  | None -> (0, 0, 0)
  | Some s ->
      let st = Cache.Store.stats s in
      (st.Cache.Stats.hits, st.Cache.Stats.misses, st.Cache.Stats.writes)

let emit_cache_delta (h0, m0, w0) =
  match !store with
  | None -> ()
  | Some s ->
      let st = Cache.Store.stats s in
      Out.emit ~kind:"cache"
        [
          ("hits", Out.I (st.Cache.Stats.hits - h0));
          ("misses", Out.I (st.Cache.Stats.misses - m0));
          ("writes", Out.I (st.Cache.Stats.writes - w0));
        ]

(* quarantined tasks + skipped points, for the end-of-campaign summary *)
let quarantined = ref 0
let skipped_points = ref 0
let failures () = !quarantined + !skipped_points

let quarantine (f : Supervise.failure) =
  incr quarantined;
  Printf.printf "  QUARANTINED %s: %s\n" f.Supervise.label
    (Fmt.str "%a" Supervise.pp_failure_kind f.Supervise.kind);
  (match f.Supervise.replay with
  | Some cmd -> Printf.printf "    replay: %s\n" cmd
  | None -> ());
  let base =
    [ ("label", Out.S f.Supervise.label); ("index", Out.I f.Supervise.index) ]
  in
  let seed =
    match f.Supervise.seed with Some s -> [ ("seed", Out.I s) ] | None -> []
  in
  let replay =
    match f.Supervise.replay with
    | Some c -> [ ("replay", Out.S c) ]
    | None -> []
  in
  let kind =
    match f.Supervise.kind with
    | Supervise.Crashed { exn_text; _ } ->
        [ ("failure", Out.S "crashed"); ("exn", Out.S exn_text) ]
    | Supervise.Timeout { limit_s; elapsed_s } ->
        [
          ("failure", Out.S "timeout"); ("limit_s", Out.F limit_s);
          ("timeout_elapsed_s", Out.F elapsed_s);
        ]
    | Supervise.Budget_exceeded { metric; limit; actual; at_round } ->
        [
          ("failure", Out.S "budget_exceeded"); ("metric", Out.S metric);
          ("limit", Out.F limit); ("actual", Out.F actual);
          ("at_round", Out.I at_round);
        ]
    | Supervise.Degraded { induced; adversarial; t_max; residual } ->
        [
          ("failure", Out.S "degraded"); ("induced_faults", Out.I induced);
          ("adversarial_faults", Out.I adversarial); ("t_max", Out.I t_max);
          ("residual_losses", Out.I residual);
        ]
  in
  let trace =
    (* the tail's lines are already JSON event objects *)
    match f.Supervise.trace with
    | [] -> []
    | lines ->
        [ ("trace", Out.Raw ("[" ^ String.concat "," lines ^ "]")) ]
  in
  Out.emit ~kind:"quarantine" (base @ seed @ replay @ kind @ trace)

let skip_point ~label ~reason =
  incr skipped_points;
  Printf.printf "  SKIPPED%s: %s\n"
    (if label = "" then "" else Printf.sprintf " (%s)" label)
    reason;
  Out.emit ~kind:"skip" [ ("label", Out.S label); ("reason", Out.S reason) ]

(* Printed by bench/main.exe after the campaign; pairs with a non-zero
   exit so CI notices partial results. *)
let print_failure_summary () =
  if failures () > 0 then begin
    Printf.printf
      "\nWARNING: partial results — %d task(s) quarantined, %d point(s) \
       skipped.\nQuarantine records (with replay commands) are in the JSON \
       sink under kind=\"quarantine\".\n"
      !quarantined !skipped_points;
    Out.emit ~kind:"failure-summary"
      [
        ("quarantined", Out.I !quarantined);
        ("skipped_points", Out.I !skipped_points);
      ]
  end

(* ------------------------------------------------------------------ *)
(* Measurements.                                                       *)
(* ------------------------------------------------------------------ *)

type run_measure = {
  rounds : int;  (** decided round, or total if not terminated *)
  decided : bool;
  messages : int;
  bits : int;
  rand_calls : int;
  rand_bits : int;
  faults : int;
  metrics : Trace.Metrics.summary option;
      (** per-round trace metrics, when --trace is on (absent on
          journal-resumed rows: the journal codec keeps only the scalars) *)
}

exception Violation of string
(* A run on which the non-faulty processes disagreed: a protocol bug. The
   supervision layer quarantines it — one bad point must not kill the
   campaign — but it is always reported, never averaged over. *)

let measure ?on_round ?buffered proto cfg ~adversary ~inputs =
  (* Assemble the run's trace sinks. All stay [None]/empty unless a trace
     flag is set, keeping the default path identical to the untraced one. *)
  let tail =
    if !trace_tail_rounds > 0 then
      Some (Trace.Tail.create ~rounds:!trace_tail_rounds ())
    else None
  in
  let collector =
    (* under --stable-json the collector gets a constant clock: per-round
       wall_s stays 0 and two stable traced runs are byte-identical — the
       default gettimeofday clock is unreachable in stable mode *)
    if !trace_metrics then
      if Out.is_stable () then
        Some (Trace.Metrics.collector ~clock:(fun () -> 0.) ())
      else Some (Trace.Metrics.collector ())
    else None
  in
  let file_sink =
    match trace_file_path () with
    | None -> None
    | Some path -> Some (Trace.Sink.file ~path ~format:!trace_format)
  in
  let sinks =
    List.filter_map Fun.id
      [
        Option.map Trace.Tail.sink tail;
        Option.map fst collector;
        file_sink;
      ]
  in
  let trace = match sinks with [] -> None | l -> Some (Trace.Sink.tee_all l) in
  let close_file () = Option.iter Trace.Sink.close file_sink in
  (* A failing run re-raises with the tail attached, so the quarantine
     record ships with the last rounds of events. *)
  let fail kind =
    close_file ();
    match tail with
    | Some t -> raise (Supervise.Breach_traced (kind, Trace.Tail.lines t))
    | None -> raise (Supervise.Breach kind)
  in
  (* [buffered], when given, supersedes [proto]: the run goes through the
     allocation-free engine path (bit-identical outcome by the equivalence
     suite). *)
  let any =
    match buffered with
    | Some b -> Sim.Protocol_intf.Buffered b
    | None -> Sim.Protocol_intf.Legacy proto
  in
  let o =
    match
      Supervise.run_any ?on_round ?trace ~budget:!budget any cfg ~adversary
        ~inputs
    with
    | Ok o ->
        close_file ();
        o
    | Error (kind, _partial) -> fail kind
    | exception e ->
        close_file ();
        raise e
  in
  (* Disagreement between processes that did decide is a protocol bug; it
     becomes a quarantined failure under Supervise.map. A run that merely
     ran out of rounds surfaces as [decided = false] and is excluded from
     averages by [avg_runs]. *)
  let disagreement =
    let seen = ref None and bad = ref false in
    Array.iteri
      (fun pid d ->
        if not o.Sim.Engine.faulty.(pid) then
          match (d, !seen) with
          | None, _ -> ()
          | Some v, None -> seen := Some v
          | Some v, Some w -> if v <> w then bad := true)
      o.Sim.Engine.decisions;
    !bad
  in
  let violation msg =
    (* keep the plain Violation when no tail is kept, so untraced campaigns
       quarantine exactly as before; with a tail, ship it along *)
    match tail with
    | Some t ->
        raise
          (Supervise.Breach_traced
             ( Supervise.Crashed
                 { exn_text = "Violation: " ^ msg; backtrace = "" },
               Trace.Tail.lines t ))
    | None -> raise (Violation msg)
  in
  if disagreement then
    violation "run violated consensus — this is a bug, please report";
  if o.Sim.Engine.decided_round <> None && Sim.Engine.agreed_decision o = None
  then violation "run violated consensus — this is a bug, please report";
  {
    rounds =
      (match o.Sim.Engine.decided_round with
      | Some r -> r
      | None -> o.rounds_total);
    decided = o.decided_round <> None;
    messages = o.messages_sent;
    bits = o.bits_sent;
    rand_calls = o.rand_calls;
    rand_bits = o.rand_bits;
    faults = o.faults_used;
    metrics = Option.map (fun (_, summary) -> summary ()) collector;
  }

(* journal codec for run_measure; the decoder rejects torn rows *)
let measure_to_string m =
  Printf.sprintf "%d %b %d %d %d %d %d" m.rounds m.decided m.messages m.bits
    m.rand_calls m.rand_bits m.faults

let measure_of_string s =
  match String.split_on_char ' ' s with
  | [ r; d; ms; b; rc; rb; f ] -> (
      try
        Some
          {
            rounds = int_of_string r;
            decided = bool_of_string d;
            messages = int_of_string ms;
            bits = int_of_string b;
            rand_calls = int_of_string rc;
            rand_bits = int_of_string rb;
            faults = int_of_string f;
            metrics = None;
          }
      with _ -> None)
  | _ -> None

let measure_codec = (measure_to_string, measure_of_string)

(* Average a list of measurements, excluding runs that hit max_rounds
   without deciding: their rounds column is a timeout artifact, not a
   measurement, and silently averaging it in would corrupt the fitted
   exponents. Returns [None] — a skipped point, reported and counted, the
   campaign continues — when no measurement survives, either because every
   run was quarantined upstream or because none decided in time. *)
(* One kind="trace-metrics" record per traced run: the Trace.Metrics
   summary totals plus the per-round histograms. Emitted from the main
   domain (avg_runs runs after the sweep), never from workers, so record
   order is deterministic at any --jobs count. *)
let emit_trace_metrics ~label ms =
  List.iteri
    (fun i (m : run_measure) ->
      match m.metrics with
      | None -> ()
      | Some (s : Trace.Metrics.summary) ->
          let per_round g = Out.L (List.map (fun r -> Out.I (g r)) s.per_round) in
          Out.emit ~kind:"trace-metrics"
            ([
               ("label", Out.S label);
               ("run", Out.I i);
               ("rounds", Out.I s.rounds);
               ("messages", Out.I s.messages);
               ("bits", Out.I s.bits);
               ("omitted", Out.I s.omitted);
               ("corruptions", Out.I s.corruptions);
               ("coin_calls", Out.I s.coin_calls);
               ("coin_bits", Out.I s.coin_bits);
               ("decisions", Out.I s.decisions);
               ("max_round_messages", Out.I s.max_round_messages);
               ("max_round_bits", Out.I s.max_round_bits);
               ("max_round_coin_bits", Out.I s.max_round_coin_bits);
               ( "round_messages",
                 per_round (fun r -> r.Trace.Metrics.messages) );
               ("round_bits", per_round (fun r -> r.Trace.Metrics.bits));
               ( "round_coin_bits",
                 per_round (fun r -> r.Trace.Metrics.coin_bits) );
             ]
            @
            if Out.is_stable () then []
            else [ ("trace_wall_s", Out.F s.wall_total_s) ]))
    ms

let avg_runs ?(label = "") ms =
  emit_trace_metrics ~label ms;
  let total = List.length ms in
  if total = 0 then begin
    skip_point ~label ~reason:"no surviving runs (all quarantined)";
    None
  end
  else begin
    let decided, timed_out = List.partition (fun m -> m.decided) ms in
    if timed_out <> [] && decided <> [] then begin
      Printf.printf
        "  warning%s: %d/%d runs hit max_rounds without deciding; excluded \
         from averages\n"
        (if label = "" then "" else Printf.sprintf " (%s)" label)
        (List.length timed_out) total;
      Out.emit ~kind:"warning"
        [
          ("label", Out.S label);
          ("non_terminated", Out.I (List.length timed_out));
          ("runs", Out.I total);
        ]
    end;
    match decided with
    | [] ->
        skip_point ~label
          ~reason:"no run decided within max_rounds — raise max_rounds";
        None
    | ms ->
        let n = float_of_int (List.length ms) in
        let favg g =
          List.fold_left (fun a m -> a +. float_of_int (g m)) 0. ms /. n
        in
        (* Flag points whose per-seed round counts scatter wildly: an
           averaged row hides a bimodal protocol (e.g. fallback taken on
           some seeds only). Sample variance needs two points —
           Stats.stddev raises on fewer — so the check is guarded. *)
        (if List.length ms >= 2 then begin
           let rounds =
             Array.of_list (List.map (fun m -> float_of_int m.rounds) ms)
           in
           let mean = Stats.mean rounds in
           let sd = Stats.stddev rounds in
           if mean > 0. && sd > 0.5 *. mean then begin
             Printf.printf
               "  warning%s: high round-count variance across seeds (mean \
                %.1f, stddev %.1f)\n"
               (if label = "" then "" else Printf.sprintf " (%s)" label)
               mean sd;
             Out.emit ~kind:"warning"
               [
                 ("label", Out.S label);
                 ("high_variance", Out.S "rounds");
                 ("mean_rounds", Out.F mean);
                 ("stddev_rounds", Out.F sd);
               ]
           end
         end);
        Some
          ( favg (fun m -> m.rounds),
            favg (fun m -> m.bits),
            favg (fun m -> m.rand_bits),
            favg (fun m -> m.messages) )
  end

(* ------------------------------------------------------------------ *)
(* Supervised parameter sweeps.                                        *)
(* ------------------------------------------------------------------ *)

(* Parallel parameter sweep: one pool task per (param, seed) pair — finer
   grain than parallelizing over seeds alone — returning the per-param
   result lists in sweep order, successes only. Failed tasks are
   quarantined (reported + counted, with a replay command when [replay] is
   given), so the sweep always completes its surviving points.

   [point] names a parameter for journal keys and quarantine labels. When
   [codec] is given and the journal is enabled, each completed (experiment,
   point, seed) task is journaled as it finishes, and journaled tasks are
   skipped on --resume — bit-identical results, since every task is a pure
   function of its (param, seed). *)
let sweep ?codec ?replay ~point ~params ~seeds f =
  let tasks =
    Array.of_list
      (List.concat_map (fun p -> List.map (fun s -> (p, s)) seeds) params)
  in
  let key (p, s) = Printf.sprintf "%s|%s|seed=%d" !Out.experiment (point p) s in
  (* Journal first — this campaign's own checkpoint — then the
     cross-campaign cache. A hit in either back-fills the other, so a
     later resume can ride whichever layer survives; the store is only
     consulted on a journal miss, keeping its hit/miss counters honest.
     All lookups run on the main domain before dispatch, never in
     workers, so accounting and record order are --jobs-independent. *)
  let decode =
    match codec with
    | None -> fun _ -> None
    | Some (enc, dec) -> (
        fun task ->
          let k = key task in
          let from_journal =
            Option.bind
              (Option.bind !journal (fun j -> Supervise.Journal.lookup j k))
              dec
          in
          match from_journal with
          | Some v ->
              Option.iter
                (fun s -> Cache.Store.add s ~key:k (enc v))
                !store;
              Some v
          | None ->
              let from_store =
                Option.bind
                  (Option.bind !store (fun s -> Cache.Store.lookup s k))
                  dec
              in
              Option.iter
                (fun v ->
                  Option.iter
                    (fun j -> Supervise.Journal.record j ~key:k (enc v))
                    !journal)
                from_store;
              from_store)
  in
  let cached = Array.map decode tasks in
  let torun =
    Array.of_list
      (List.filter
         (fun i -> cached.(i) = None)
         (List.init (Array.length tasks) Fun.id))
  in
  let describe _k i =
    let p, s = tasks.(i) in
    {
      Supervise.d_label = Printf.sprintf "%s/seed=%d" (point p) s;
      d_seed = Some s;
      d_replay =
        (match replay with
        | Some r -> Some (r p s)
        | None ->
            Some
              (Printf.sprintf "dune exec bench/main.exe -- --only %s"
                 !Out.experiment));
    }
  in
  let fresh =
    Supervise.map ~budget:!budget ~describe
      (fun i ->
        let p, s = tasks.(i) in
        f p s)
      torun
  in
  (* merge journal hits and fresh results back into task order, recording
     fresh successes as we go *)
  let results = Array.map (fun c -> Option.map Result.ok c) cached in
  Array.iteri
    (fun k r ->
      let i = torun.(k) in
      (match (r, codec) with
      | Ok v, Some (enc, _) ->
          let tk = key tasks.(i) in
          Option.iter
            (fun j -> Supervise.Journal.record j ~key:tk (enc v))
            !journal;
          Option.iter (fun s -> Cache.Store.add s ~key:tk (enc v)) !store
      | _ -> ());
      results.(i) <- Some r)
    fresh;
  let results =
    Array.map
      (function Some r -> r | None -> assert false (* every slot filled *))
      results
  in
  (* quarantine failures in task order, then regroup successes per param *)
  Array.iter
    (function Ok _ -> () | Error fl -> quarantine fl)
    results;
  let per_seed = List.length seeds in
  List.mapi
    (fun pi p ->
      let ok = ref [] in
      for k = (pi * per_seed) + per_seed - 1 downto pi * per_seed do
        match results.(k) with Ok v -> ok := v :: !ok | Error _ -> ()
      done;
      (p, !ok))
    params

(* Run one supervised task outside a sweep (the single-run figures); a
   failure is quarantined and the caller gets [None]. With [cache_key]
   and [codec] and the store on, a successful result is memoized and a
   later campaign gets it without running — failures are never cached. *)
let protected ?cache_key ?codec ~label f =
  let from_store =
    match (cache_key, codec, !store) with
    | Some k, Some (_, dec), Some s -> Option.bind (Cache.Store.lookup s k) dec
    | _ -> None
  in
  match from_store with
  | Some v -> Some v
  | None -> (
      match
        Supervise.protect ~budget:!budget
          ~descriptor:
            {
              Supervise.d_label = label;
              d_seed = None;
              d_replay =
                Some
                  (Printf.sprintf "dune exec bench/main.exe -- --only %s"
                     !Out.experiment);
            }
          f
      with
      | Ok v ->
          (match (cache_key, codec, !store) with
          | Some k, Some (enc, _), Some s -> Cache.Store.add s ~key:k (enc v)
          | _ -> ());
          Some v
      | Error fl ->
          quarantine fl;
          None)

let optimal_run ?(adversary = Adversary.vote_splitter ()) ~n ~t ~seed () =
  let cfg = Sim.Config.make ~n ~t_max:t ~seed ~max_rounds:20000 () in
  let proto = Consensus.Optimal_omissions.protocol cfg in
  let buffered = Consensus.Optimal_omissions.protocol_buffered cfg in
  let inputs = Array.init n (fun i -> i mod 2) in
  measure ~buffered proto cfg ~adversary ~inputs

(* With quarantined points a sweep can shrink below a fittable sample;
   surface that as nan (emitted as JSON null) instead of raising. *)
let fit_exponent ?(log_power = 0) ns ys =
  if List.length ys < 2 then Float.nan
  else
    Stats.growth_exponent ~log_power
      (Array.of_list (List.map float_of_int ns))
      (Array.of_list ys)
