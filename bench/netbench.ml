(* kind="net" experiment: message inflation and effective-round overhead of
   the lossy-link transport (lib/net) vs. loss rate, for three protocols
   spanning the registry — flood (constant-round), dolev-strong (t+1
   rounds) and optimal-omissions (the paper's Algorithm 1). The retry
   budget is sized so every swept loss rate is fully masked (residual = 0,
   no induced faults); the degradation path itself is exercised by the CLI
   soak job and test/test_net.ml. *)

open Bench_util

type case = {
  id : string;
  n : int;
  t : int;
  build : Sim.Config.t -> Sim.Protocol_intf.any;
  rounds_for : Sim.Config.t -> int;
}

let cases ~quick =
  [
    {
      id = "flood";
      n = (if quick then 32 else 48);
      t = 4;
      build = (fun cfg -> Sim.Protocol_intf.Buffered (Consensus.Flood.protocol_buffered cfg));
      rounds_for = (fun cfg -> cfg.Sim.Config.t_max + 3);
    };
    {
      id = "dolev-strong";
      n = (if quick then 16 else 24);
      t = 2;
      build =
        (fun cfg ->
          Sim.Protocol_intf.Buffered (Consensus.Dolev_strong.protocol_buffered cfg));
      rounds_for = (fun cfg -> cfg.Sim.Config.t_max + 3);
    };
    {
      id = "optimal";
      n = (if quick then 31 else 62);
      t = (if quick then 1 else 2);
      build =
        (fun cfg ->
          Sim.Protocol_intf.Buffered
            (Consensus.Optimal_omissions.protocol_buffered cfg));
      rounds_for = (fun cfg -> Consensus.Optimal_omissions.rounds_needed cfg + 10);
    };
  ]

type net_measure = {
  rounds : int;
  decided : bool;
  messages : int;  (** sent, the engine's count *)
  delivered : int;  (** exchanges the transport actually carried *)
  attempts : int;
  retransmits : int;
  residual : int;
  induced : int;
  slots : int;
  net_rounds : int;
}

(* journal codec; the decoder rejects torn rows *)
let nm_to_string m =
  Printf.sprintf "%d %b %d %d %d %d %d %d %d %d" m.rounds m.decided m.messages
    m.delivered m.attempts m.retransmits m.residual m.induced m.slots
    m.net_rounds

let nm_of_string s =
  match String.split_on_char ' ' s with
  | [ r; d; ms; dl; a; rt; rs; ind; sl; nr ] -> (
      try
        Some
          {
            rounds = int_of_string r;
            decided = bool_of_string d;
            messages = int_of_string ms;
            delivered = int_of_string dl;
            attempts = int_of_string a;
            retransmits = int_of_string rt;
            residual = int_of_string rs;
            induced = int_of_string ind;
            slots = int_of_string sl;
            net_rounds = int_of_string nr;
          }
      with _ -> None)
  | _ -> None

(* The sweep's base spec: --net on bench/main.exe overrides it; the sweep
   then varies only the drop rate. retries=8 masks drop=0.2 with residual
   probability ~(0.36)^9 per exchange — comfortably below one residual per
   campaign, so the experiment measures overhead, not degradation. *)
let base_spec () =
  match !net_base with
  | Some s -> s
  | None -> { Net.Spec.default with Net.Spec.retries = 8 }

let run_case case drop seed =
  let spec = { (base_spec ()) with Net.Spec.drop } in
  let cfg0 = Sim.Config.make ~n:case.n ~t_max:case.t ~seed () in
  let cfg = { cfg0 with Sim.Config.max_rounds = case.rounds_for cfg0 } in
  let proto = case.build cfg in
  let inputs = Array.init case.n (fun i -> i mod 2) in
  match
    Supervise.run_net ~budget:!budget ~net:spec proto cfg
      ~adversary:Adversary.none ~inputs
  with
  | Error (kind, _) -> raise (Supervise.Breach kind)
  | Ok (o, d) ->
      {
        rounds =
          (match o.Sim.Engine.decided_round with
          | Some r -> r
          | None -> o.Sim.Engine.rounds_total);
        decided = o.Sim.Engine.decided_round <> None;
        messages = o.Sim.Engine.messages_sent;
        delivered = o.Sim.Engine.messages_sent - o.Sim.Engine.messages_omitted;
        attempts = d.Net.Degradation.attempts;
        retransmits = d.Net.Degradation.retransmits;
        residual = d.Net.Degradation.residual;
        induced = List.length d.Net.Degradation.induced_faulty;
        slots = d.Net.Degradation.slots;
        net_rounds = d.Net.Degradation.active_rounds;
      }

let net ~quick () =
  section "NET: lossy-link transport — inflation and round overhead vs loss";
  Printf.printf
    "Each exchange is data + ack with retransmit/backoff (retries=%d); a \
     fault-free\nexchange costs 2 virtual sub-slots, so overhead 1.00 means \
     no recovery cost.\nResidual losses (and induced omission faults) must \
     stay 0 at every swept rate.\n"
    (base_spec ()).Net.Spec.retries;
  let drops = if quick then [ 0.0; 0.1 ] else [ 0.0; 0.05; 0.1; 0.2 ] in
  let seeds = Bench_util.seed_list (if quick then [ 1; 2 ] else [ 1; 2; 3 ]) in
  List.iter
    (fun case ->
      subsection
        (Printf.sprintf "%s, n = %d, t = %d, adversary = none" case.id case.n
           case.t);
      row "%6s %8s %10s %10s %8s %10s %9s %9s %8s\n" "drop" "rounds" "msgs"
        "attempts" "retx" "inflation" "overhead" "residual" "induced";
      let per_drop =
        sweep
          ~codec:(nm_to_string, nm_of_string)
          (* the full transport spec plus (n, t) in the point: quick and
             full campaigns size the cases differently and --net rebases
             the sweep, and none of those runs may share a cache entry *)
          ~point:(fun drop ->
            Printf.sprintf "%s/n=%d/t=%d/%s" case.id case.n case.t
              (Net.Spec.to_string { (base_spec ()) with Net.Spec.drop }))
          ~replay:(fun drop seed ->
            Run_spec.to_command
              (Run_spec.make ~protocol:case.id ~n:case.n ~t_max:case.t ~seed
                 ~net:{ (base_spec ()) with Net.Spec.drop } ()))
          ~params:drops ~seeds
          (fun drop seed -> run_case case drop seed)
      in
      List.iter
        (fun (drop, ms) ->
          let label = Printf.sprintf "%s drop=%g" case.id drop in
          match ms with
          | [] -> skip_point ~label ~reason:"no surviving runs (all quarantined)"
          | ms ->
              let k = float_of_int (List.length ms) in
              let favg g =
                List.fold_left (fun a m -> a +. float_of_int (g m)) 0. ms /. k
              in
              let isum g = List.fold_left (fun a m -> a + g m) 0 ms in
              let attempts = favg (fun m -> m.attempts) in
              let delivered = favg (fun m -> m.delivered) in
              let inflation =
                if delivered > 0. then attempts /. delivered else 1.
              in
              let overhead =
                let slots = favg (fun m -> m.slots) in
                let nr = favg (fun m -> m.net_rounds) in
                if nr > 0. then slots /. (2. *. nr) else 1.
              in
              let residual = isum (fun m -> m.residual) in
              let induced = isum (fun m -> m.induced) in
              row "%6g %8.1f %10.0f %10.0f %8.0f %10.3f %9.2f %9d %8d\n" drop
                (favg (fun m -> m.rounds))
                (favg (fun m -> m.messages))
                attempts
                (favg (fun m -> m.retransmits))
                inflation overhead residual induced;
              Out.emit ~kind:"net"
                [
                  ("protocol", Out.S case.id);
                  ("n", Out.I case.n);
                  ("t", Out.I case.t);
                  ("drop", Out.F drop);
                  ("retries", Out.I (base_spec ()).Net.Spec.retries);
                  ( "spec",
                    Out.S
                      (Net.Spec.to_string
                         { (base_spec ()) with Net.Spec.drop }) );
                  ("seeds", Out.I (List.length ms));
                  ("rounds", Out.F (favg (fun m -> m.rounds)));
                  ("messages", Out.F (favg (fun m -> m.messages)));
                  ("attempts", Out.F attempts);
                  ("retransmits", Out.F (favg (fun m -> m.retransmits)));
                  ("inflation", Out.F inflation);
                  ("slots_per_round", Out.F (overhead *. 2.));
                  ("overhead", Out.F overhead);
                  ("residual", Out.I residual);
                  ("induced_faults", Out.I induced);
                ];
              if residual > 0 || induced > 0 then
                Printf.printf
                  "  warning (%s): %d residual losses / %d induced faults — \
                   raise retries\n"
                  label residual induced)
        per_drop)
    (cases ~quick)
