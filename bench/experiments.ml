(* Table 1 experiments: one section per row of the paper's Table 1.
   EXPERIMENTS.md records the paper-vs-measured comparison for each. *)

open Bench_util

(* ------------------------------------------------------------------ *)
(* T1-thm1: Theorem 1 — O(sqrt n log^2 n) rounds, O(n^2 log^3 n) bits,
   O(n^{3/2} log^2 n) random bits for Algorithm 1 at t = Theta(n).      *)
(* ------------------------------------------------------------------ *)

let t1_thm1 ~quick () =
  section "T1-thm1: Algorithm 1 (OptimalOmissionsConsensus), Table 1 row 1";
  Printf.printf
    "t = floor(n/31) (the algorithm's Theta(n) maximum), adversary = \
     vote-splitter, 3 seeds.\n";
  let ns = if quick then [ 64; 100; 144; 196 ] else [ 64; 100; 144; 196; 256; 400 ] in
  let seeds = Bench_util.seed_list [ 1; 2; 3 ] in
  row "%6s %5s %10s %14s %12s %10s\n" "n" "t" "rounds" "comm bits" "rand bits"
    "msgs";
  let per_n =
    sweep ~codec:measure_codec
      ~point:(fun n -> Printf.sprintf "n=%d" n)
      ~replay:(fun n seed ->
        Run_spec.to_command
          (Run_spec.make ~protocol:"optimal" ~n ~t_max:(max 1 (n / 31)) ~seed
             ~adversary:"splitter" ()))
      ~params:ns ~seeds
      (fun n seed -> optimal_run ~n ~t:(max 1 (n / 31)) ~seed ())
  in
  (* points whose every run was quarantined or timed out are skipped; the
     fits below use only the surviving (n, avg) pairs *)
  let kept = ref [] in
  List.iter
    (fun (n, ms) ->
      let t = max 1 (n / 31) in
      match avg_runs ~label:(Printf.sprintf "n=%d" n) ms with
      | None -> ()
      | Some (r, b, rb, m) ->
          kept := (n, r, b, rb) :: !kept;
          row "%6d %5d %10.0f %14.0f %12.0f %10.0f\n" n t r b rb m;
          Out.emit
            [
              ("n", Out.I n); ("t", Out.I t); ("rounds", Out.F r);
              ("comm_bits", Out.F b); ("rand_bits", Out.F rb); ("msgs", Out.F m);
            ])
    per_n;
  let kept = List.rev !kept in
  let ns_kept = List.map (fun (n, _, _, _) -> n) kept in
  let e_bits = fit_exponent ~log_power:3 ns_kept (List.map (fun (_, _, b, _) -> b) kept) in
  let e_rounds = fit_exponent ~log_power:2 ns_kept (List.map (fun (_, r, _, _) -> r) kept) in
  let e_rand = fit_exponent ~log_power:1 ns_kept (List.map (fun (_, _, _, rb) -> rb) kept) in
  Out.emit ~kind:"fit"
    [
      ("comm_bits_exponent", Out.F e_bits);
      ("rounds_exponent", Out.F e_rounds);
      ("rand_bits_exponent", Out.F e_rand);
    ];
  Printf.printf
    "\nfitted growth exponents (polylog factors divided out first):\n";
  Printf.printf
    "  comm bits / log^3 n : n^%.2f   (paper: n^2; the n^2 decision \
     broadcast + n^{3/2} polylog epochs)\n"
    e_bits;
  Printf.printf
    "  rounds    / log^2 n : n^%.2f   (paper: n^{1/2} at t = Theta(n); at \
     n <= 961 the epoch count (t/sqrt n) log n is clamped at its log n \
     floor, so the expected measured exponent here is ~0)\n"
    e_rounds;
  Printf.printf
    "  rand bits / log n   : n^%.2f   (paper: n^{3/2}; same clamping — one \
     coin per process per epoch gives ~n log n in this regime, exponent \
     ~1)\n"
    e_rand;
  Printf.printf
    "shape check vs the deterministic baseline appears under T1-abraham.\n"

(* ------------------------------------------------------------------ *)
(* T1-thm3: Theorem 3 — the T x R trade-off of Algorithm 4.            *)
(* ------------------------------------------------------------------ *)

let t1_thm3 ~quick () =
  section "T1-thm3: Algorithm 4 (ParamOmissions), Table 1 row 2";
  Printf.printf
    "Sweeping the super-process count x: randomness R falls, time T rises,\n\
     with T x R tracking ~n^2 polylog (Theorem 3). staggered-crash \
     adversary.\n";
  let ns = if quick then [ 64 ] else [ 64; 144 ] in
  List.iter
    (fun n ->
      subsection (Printf.sprintf "n = %d, t = %d" n (max 1 (n / 61)));
      row "%4s %8s %11s %11s %13s %14s\n" "x" "T" "R (bits)" "msgs"
        "comm bits" "T x max(R,1)";
      let t = max 1 (n / 61) in
      let xs = List.filter (fun x -> x <= n / 4) [ 1; 2; 4; 8; 16 ] in
      let per_x =
        sweep ~codec:measure_codec
          ~point:(fun x -> Printf.sprintf "n=%d/x=%d" n x)
          ~params:xs ~seeds:(Bench_util.seed_list [ 1; 2; 3 ]) (fun x seed ->
            let cfg0 = Sim.Config.make ~n ~t_max:t ~seed:0 () in
            let max_rounds =
              Consensus.Param_omissions.rounds_needed ~x cfg0 + 10
            in
            let cfg = Sim.Config.make ~n ~t_max:t ~seed ~max_rounds () in
            let proto = Consensus.Param_omissions.protocol ~x cfg in
            let inputs = Array.init n (fun i -> i mod 2) in
            measure proto cfg
              ~adversary:(Adversary.staggered_crash ~per_round:1)
              ~inputs)
      in
      List.iter
        (fun (x, ms) ->
          match avg_runs ~label:(Printf.sprintf "n=%d x=%d" n x) ms with
          | None -> ()
          | Some (r, b, rb, m) ->
              row "%4d %8.0f %11.1f %11.0f %13.0f %14.0f\n" x r rb m b
                (r *. Float.max rb 1.);
              Out.emit
                [
                  ("n", Out.I n); ("t", Out.I t); ("x", Out.I x);
                  ("rounds", Out.F r); ("rand_bits", Out.F rb);
                  ("msgs", Out.F m); ("comm_bits", Out.F b);
                  ("time_x_rand", Out.F (r *. Float.max rb 1.));
                ])
        per_x)
    ns

(* ------------------------------------------------------------------ *)
(* T1-bjbo: the [10] baseline — Omega(t / sqrt(n log n)) rounds.       *)
(* ------------------------------------------------------------------ *)

let t1_bjbo ~quick () =
  section "T1-bjbo: Bar-Joseph/Ben-Or baseline, Table 1 row 3";
  Printf.printf
    "Crash-model biased majority under the vote-splitting adversary, t = \
     n/4.\nThe forced rounds track the t / sqrt(n log n) lower-bound shape.\n";
  let ns = if quick then [ 64; 144; 256 ] else [ 64; 144; 256; 400; 576 ] in
  row "%6s %5s %8s %18s %8s\n" "n" "t" "rounds" "t/sqrt(n log2 n)" "ratio";
  let per_n =
    sweep ~codec:measure_codec
      ~point:(fun n -> Printf.sprintf "n=%d" n)
      ~replay:(fun n seed ->
        Run_spec.to_command
          (Run_spec.make ~protocol:"bjbo" ~n ~t_max:(n / 4) ~seed
             ~adversary:"splitter" ()))
      ~params:ns ~seeds:(Bench_util.seed_list [ 1; 2; 3; 4; 5 ])
      (fun n seed ->
        let t = n / 4 in
        let cfg = Sim.Config.make ~n ~t_max:t ~seed ~max_rounds:5000 () in
        let proto = Consensus.Bjbo.protocol cfg in
        let inputs = Array.init n (fun i -> i mod 2) in
        measure proto cfg ~adversary:(Adversary.vote_splitter ()) ~inputs)
  in
  List.iter
    (fun (n, ms) ->
      let t = n / 4 in
      match avg_runs ~label:(Printf.sprintf "n=%d" n) ms with
      | None -> ()
      | Some (r, _, _, _) ->
          let shape =
            float_of_int t
            /. sqrt (float_of_int n *. (log (float_of_int n) /. log 2.))
          in
          row "%6d %5d %8.1f %18.2f %8.2f\n" n t r shape (r /. shape);
          Out.emit
            [
              ("n", Out.I n); ("t", Out.I t); ("rounds", Out.F r);
              ("lower_bound_shape", Out.F shape); ("ratio", Out.F (r /. shape));
            ])
    per_n;
  Printf.printf
    "(a roughly constant ratio column = the measured rounds follow the \
     lower-bound shape)\n"

(* ------------------------------------------------------------------ *)
(* T1-abraham: the [1] bound — Omega(t^2) messages for everyone.       *)
(* ------------------------------------------------------------------ *)

let t1_abraham ~quick () =
  section "T1-abraham: Omega(t^2) message floor ([1]), Table 1 row 4";
  Printf.printf
    "Every protocol's message count sits above the eps t^2 lower bound; \
     the\ndeterministic baselines pay Theta(n^2 t) while Algorithm 1 stays \
     near-quadratic.\n";
  let n = if quick then 100 else 144 in
  let t_opt = max 1 (n / 31) in
  let t_big = n / 4 in
  row "%-24s %5s %12s %12s %10s\n" "protocol" "t" "messages" "t^2"
    "msgs/t^2";
  let entry name t msgs =
    row "%-24s %5d %12d %12d %10.0f\n" name t msgs (t * t)
      (float_of_int msgs /. float_of_int (t * t));
    Out.emit
      [
        ("protocol", Out.S name); ("t", Out.I t); ("messages", Out.I msgs);
        ("t_squared", Out.I (t * t));
        ("msgs_per_t2", Out.F (float_of_int msgs /. float_of_int (t * t)));
      ]
  in
  let n_ds = min n 100 in
  let t_ds = n_ds / 8 in
  (* five independent single runs: fan them across the pool, print in order *)
  let tasks =
    [|
      (fun () ->
        let cfg = Sim.Config.make ~n ~t_max:t_opt ~seed:1 ~max_rounds:20000 () in
        (measure (Consensus.Optimal_omissions.protocol cfg) cfg
           ~adversary:(Adversary.vote_splitter ())
           ~inputs:(Array.init n (fun i -> i mod 2)))
          .messages);
      (fun () ->
        let cfg0 = Sim.Config.make ~n ~t_max:t_opt ~seed:1 () in
        let max_rounds = Consensus.Param_omissions.rounds_needed ~x:4 cfg0 + 5 in
        let cfg = Sim.Config.make ~n ~t_max:t_opt ~seed:1 ~max_rounds () in
        (measure (Consensus.Param_omissions.protocol ~x:4 cfg) cfg
           ~adversary:(Adversary.staggered_crash ~per_round:1)
           ~inputs:(Array.init n (fun i -> i mod 2)))
          .messages);
      (fun () ->
        let cfg = Sim.Config.make ~n ~t_max:t_big ~seed:1 ~max_rounds:5000 () in
        (measure (Consensus.Bjbo.protocol cfg) cfg
           ~adversary:(Adversary.vote_splitter ())
           ~inputs:(Array.init n (fun i -> i mod 2)))
          .messages);
      (fun () ->
        let cfg = Sim.Config.make ~n ~t_max:t_big ~seed:1 ~max_rounds:5000 () in
        (measure (Consensus.Flood.protocol cfg) cfg
           ~adversary:(Adversary.staggered_crash ~per_round:2)
           ~inputs:(Array.init n (fun i -> i mod 2)))
          .messages);
      (fun () ->
        let cfg =
          Sim.Config.make ~n:n_ds ~t_max:t_ds ~seed:1 ~max_rounds:(t_ds + 5) ()
        in
        (measure (Consensus.Dolev_strong.protocol cfg) cfg
           ~adversary:(Adversary.random_omission ~p_omit:0.8)
           ~inputs:(Array.init n_ds (fun i -> i mod 2)))
          .messages);
    |]
  in
  let labels =
    [|
      "optimal-omissions"; "param-omissions(x=4)"; "bjbo (crash baseline)";
      "flood-min (deterministic)"; "dolev-strong [15]";
    |]
  in
  (* mapped over indices (not the thunks) so the cache key can name the
     protocol; the message count is a pure function of (label, n) *)
  let msgs =
    Supervise.Cached.map ~budget:!budget
      ~describe:(fun i _ ->
        { Supervise.d_label = labels.(i); d_seed = Some 1; d_replay = None })
      ?store:!store
      ~key:(fun i -> Printf.sprintf "t1-abraham|%s|n=%d" labels.(i) n)
      ~codec:(string_of_int, int_of_string_opt)
      (fun i -> tasks.(i) ())
      (Array.init (Array.length tasks) Fun.id)
  in
  (* a quarantined protocol loses its row; the others still print *)
  let entry_ok i name t =
    match msgs.(i) with
    | Ok m -> entry name t m
    | Error fl -> quarantine fl
  in
  entry_ok 0 "optimal-omissions" t_opt;
  entry_ok 1 "param-omissions(x=4)" t_opt;
  entry_ok 2 "bjbo (crash baseline)" t_big;
  entry_ok 3 "flood-min (deterministic)" t_big;
  (match msgs.(4) with
  | Error fl -> quarantine fl
  | Ok m ->
      row "%-24s %5d %12d %12d %10.0f   (n=%d: n parallel broadcasts)\n"
        "dolev-strong [15]" t_ds m (t_ds * t_ds)
        (float_of_int m /. float_of_int (t_ds * t_ds))
        n_ds;
      Out.emit
        [
          ("protocol", Out.S "dolev-strong"); ("t", Out.I t_ds);
          ("messages", Out.I m); ("t_squared", Out.I (t_ds * t_ds));
          ("msgs_per_t2", Out.F (float_of_int m /. float_of_int (t_ds * t_ds)));
          ("n", Out.I n_ds);
        ]);
  Printf.printf
    "\nrounds comparison at the same (n, t): dolev-strong takes t+2 rounds \
     (Theta(n) at t = Theta(n))\nwhile Algorithm 1's schedule is \
     (t/sqrt(n)) polylog — the Table 1 separation.\n"

(* ------------------------------------------------------------------ *)
(* T1-thm2: the lower bound T x (R+T) = Omega(t^2 / log n).            *)
(* ------------------------------------------------------------------ *)

(* journal codec for the coin-game result record ([%h] round-trips the
   float bound exactly) *)
let product_codec =
  ( (fun (r : Lowerbound.Product.result) ->
      Printf.sprintf "%d %d %d %d %d %d %h %b" r.n r.t r.coin_set r.rounds
        r.rand_calls r.product r.bound r.decided),
    fun s ->
      match String.split_on_char ' ' s with
      | [ n; t; k; r; rc; p; b; d ] -> (
          try
            Some
              {
                Lowerbound.Product.n = int_of_string n;
                t = int_of_string t;
                coin_set = int_of_string k;
                rounds = int_of_string r;
                rand_calls = int_of_string rc;
                product = int_of_string p;
                bound = float_of_string b;
                decided = bool_of_string d;
              }
          with _ -> None)
      | _ -> None )

let t1_thm2 ~quick () =
  section "T1-thm2: Theorem 2 lower bound — why a lot of randomness is needed";
  Printf.printf
    "Adaptive vote-splitting adversary (the Lemma 13-15 strategy) against \
     biased-majority\nvoting allowed k coin-flippers per round. t = n/4, 5 \
     seeds.\n";
  let ns = if quick then [ 64; 128 ] else [ 64; 128; 256 ] in
  List.iter
    (fun n ->
      let t = n / 4 in
      subsection (Printf.sprintf "n = %d, t = %d" n t);
      row "%8s %8s %10s %14s %14s %7s\n" "k" "T" "R" "T x (R+T)"
        "t^2/log2 n" "ratio";
      let seeds = Bench_util.seed_list [ 1; 2; 3; 4; 5 ] in
      let per_k =
        sweep ~codec:product_codec
          ~point:(fun k -> Printf.sprintf "n=%d/k=%d" n k)
          ~params:[ 1; 4; 16; n ] ~seeds
          (fun k seed -> Lowerbound.Product.run ~seed ~n ~t ~coin_set:k ())
      in
      List.iter
        (fun (k, rs) ->
          if rs = [] then
            skip_point
              ~label:(Printf.sprintf "n=%d k=%d" n k)
              ~reason:"no surviving runs (all quarantined)"
          else
          let avg g =
            List.fold_left (fun a r -> a +. float_of_int (g r)) 0. rs
            /. float_of_int (List.length rs)
          in
          let tr = avg (fun r -> r.Lowerbound.Product.rounds) in
          let rr = avg (fun r -> r.Lowerbound.Product.rand_calls) in
          let pp = avg (fun r -> r.Lowerbound.Product.product) in
          let bound =
            float_of_int (t * t) /. (log (float_of_int n) /. log 2.)
          in
          row "%8d %8.1f %10.1f %14.0f %14.0f %7.1f\n" k tr rr pp bound
            (pp /. bound);
          Out.emit
            [
              ("n", Out.I n); ("t", Out.I t); ("k", Out.I k);
              ("rounds", Out.F tr); ("rand_calls", Out.F rr);
              ("product", Out.F pp); ("bound", Out.F bound);
              ("ratio", Out.F (pp /. bound));
            ])
        per_k)
    ns;
  Printf.printf
    "\nReading: T falls as the per-round coin supply k grows (top rows), \
     while the product\nT x (R+T) always clears the Omega(t^2/log n) bound \
     — the paper's trade-off, measured.\n"

let all ~quick () =
  t1_thm1 ~quick ();
  t1_thm3 ~quick ();
  t1_bjbo ~quick ();
  t1_abraham ~quick ();
  t1_thm2 ~quick ()

(* ------------------------------------------------------------------ *)
(* B3: Appendix B.3 — the crash/omission communication separation.     *)
(* ------------------------------------------------------------------ *)

(* cache codec for the per-n B3 row; the two embedded measures reuse
   measure_codec (space-separated, so ';' is free as the outer separator) *)
let b3_codec =
  ( (fun (n, t, m_om, m_cr, om_d, cr_d) ->
      Printf.sprintf "%d;%d;%s;%s;%d;%d" n t (measure_to_string m_om)
        (measure_to_string m_cr) om_d cr_d),
    fun s ->
      match String.split_on_char ';' s with
      | [ n; t; mo; mc; od; cd ] -> (
          match (measure_of_string mo, measure_of_string mc) with
          | Some m_om, Some m_cr -> (
              try
                Some
                  ( int_of_string n,
                    int_of_string t,
                    m_om,
                    m_cr,
                    int_of_string od,
                    int_of_string cd )
              with _ -> None)
          | _ -> None)
      | _ -> None )

let b3 ~quick () =
  section "B3: crash-model subquadratic variant vs Algorithm 1 (Appendix B.3)";
  Printf.printf
    "Same voting core; the crash variant replaces the Theta(n^2) line-14 \
     broadcast with\nexpander dissemination — legal against crashes, \
     impossible against omissions\n(Dolev-Reischuk / Abraham et al.: \
     omissions force Omega(n^2) bits). The separation lives in\nthe \
     dissemination step; the voting epochs cost the same Otilde(n^{3/2}) \
     in both.\n";
  let ns = if quick then [ 64; 144; 256 ] else [ 64; 144; 256; 400 ] in
  row "%6s %5s %14s %14s %13s %13s %7s\n" "n" "t" "om total" "cr total"
    "om dissem" "cr dissem" "ratio";
  let results =
    Supervise.Cached.map ~budget:!budget
      ~describe:(fun _ n ->
        {
          Supervise.d_label = Printf.sprintf "b3/n=%d" n;
          d_seed = Some 1;
          d_replay =
            Some "dune exec bench/main.exe -- --only b3";
        })
      ?store:!store
      ~key:(fun n -> Printf.sprintf "b3|n=%d" n)
      ~codec:b3_codec
      (fun n ->
        let t = max 1 (n / 31) in
        let seed = 1 in
        let inputs = Array.init n (fun i -> i mod 2) in
        let adversary = Adversary.staggered_crash ~per_round:1 in
        (* Algorithm 1: dissemination = the line-14 broadcast slot *)
        let members = Array.init n (fun i -> i) in
        let params = Consensus.Params.default in
        let sh = Consensus.Core.make_shared ~members ~seed ~params ~t_max:t () in
        let v = Consensus.Core.rounds sh in
        let om_dissem = ref 0 in
        let cfg = Sim.Config.make ~n ~t_max:t ~seed ~max_rounds:20000 () in
        let m_om =
          measure
            ~on_round:(fun ~round envelopes ->
              if round >= v then
                Array.iter
                  (fun e -> om_dissem := !om_dissem + e.Sim.View.bits)
                  envelopes)
            (Consensus.Optimal_omissions.protocol cfg)
            cfg ~adversary ~inputs
        in
        (* crash variant: dissemination = the gossip + help slots *)
        let cr_dissem = ref 0 in
        let m_cr =
          measure
            ~on_round:(fun ~round envelopes ->
              if round >= v then
                Array.iter
                  (fun e -> cr_dissem := !cr_dissem + e.Sim.View.bits)
                  envelopes)
            (Consensus.Crash_subquadratic.protocol cfg)
            cfg ~adversary ~inputs
        in
        (n, t, m_om, m_cr, !om_dissem, !cr_dissem))
      (Array.of_list ns)
  in
  Array.iter
    (function
      | Error fl -> quarantine fl
      | Ok (n, t, m_om, m_cr, om_dissem, cr_dissem) ->
      row "%6d %5d %14d %14d %13d %13d %7.1f\n" n t m_om.bits m_cr.bits
        om_dissem cr_dissem
        (float_of_int om_dissem /. float_of_int (max 1 cr_dissem));
      Out.emit
        [
          ("n", Out.I n); ("t", Out.I t);
          ("omission_bits", Out.I m_om.bits); ("crash_bits", Out.I m_cr.bits);
          ("omission_dissem_bits", Out.I om_dissem);
          ("crash_dissem_bits", Out.I cr_dissem);
          ("ratio",
           Out.F (float_of_int om_dissem /. float_of_int (max 1 cr_dissem)));
        ])
    results;
  Printf.printf
    "(the dissemination ratio grows ~n/log^2 n: the crash variant sheds the \
     quadratic term,\n which the omission model provably cannot)\n"
