(* Performance gate over the engine benchmarks.

   Reads JSON-lines rows from a records file and runs whichever checks
   its rows enable (at least one family must be present):

   kind="micro" rows (the micro-engine experiment) are compared against
   the checked-in baseline bench/micro_baseline.json:

   - regression: words_per_round must not exceed 2x the baseline value
     (plus a small absolute slack so near-zero baselines don't make the
     gate flaky);
   - headline: at the largest measured flood n >= 256, the buffered path
     must allocate at least 5x fewer words per round than the legacy
     list-based shim path — the buffered refactor's acceptance bar.

   kind="scale-throughput" rows (the scale experiment, non-stable mode)
   are gated within the records file itself — throughput is machine-
   dependent, so there is no baseline, but the fast/classic ratio on one
   machine is meaningful:

   - headline: at flood n=1024, the broadcast fast path must sustain at
     least 5x the classic pointwise path's rounds per second — the
     broadcast-native delivery acceptance bar.

   kind="micro-throughput" records are ignored entirely: absolute
   throughput is a logged artifact, never gated.

   No JSON library: records are flat one-line objects written by
   Bench_util.Out, so plain substring field extraction is exact. Exit
   status 0 = gate passed, 1 = regression or missing data, 2 = usage. *)

type row = {
  protocol : string;
  path : string;
  n : int;
  words_per_round : float;
}

(* Extract the value following ["key":] in a flat JSON-lines record. *)
let field_raw line key =
  let pat = "\"" ^ key ^ "\":" in
  let plen = String.length pat in
  let llen = String.length line in
  let rec scan i =
    if i + plen > llen then None
    else if String.sub line i plen = pat then begin
      let start = i + plen in
      let stop = ref start in
      if start < llen && line.[start] = '"' then begin
        stop := start + 1;
        while !stop < llen && line.[!stop] <> '"' do
          incr stop
        done;
        Some (String.sub line (start + 1) (!stop - start - 1))
      end
      else begin
        while
          !stop < llen && line.[!stop] <> ',' && line.[!stop] <> '}'
        do
          incr stop
        done;
        Some (String.sub line start (!stop - start))
      end
    end
    else scan (i + 1)
  in
  scan 0

let parse_row line =
  match
    ( field_raw line "protocol",
      field_raw line "path",
      field_raw line "n",
      field_raw line "words_per_round" )
  with
  | Some protocol, Some path, Some n, Some wpr -> (
      match (int_of_string_opt n, float_of_string_opt wpr) with
      | Some n, Some words_per_round -> Some { protocol; path; n; words_per_round }
      | _ -> None)
  | _ -> None

let load_kind file ~kind parse =
  let ic = open_in file in
  let rows = ref [] in
  (try
     while true do
       let line = input_line ic in
       match field_raw line "kind" with
       | Some k when k = kind -> (
           match parse line with
           | Some r -> rows := r :: !rows
           | None -> ())
       | _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !rows

let load_rows file = load_kind file ~kind:"micro" parse_row

(* kind="scale-throughput" rows reuse the same record shape with
   rounds_per_sec in place of words_per_round. *)
let parse_scale line =
  match
    ( field_raw line "protocol",
      field_raw line "path",
      field_raw line "n",
      field_raw line "rounds_per_sec" )
  with
  | Some protocol, Some path, Some n, Some rps -> (
      match (int_of_string_opt n, float_of_string_opt rps) with
      | Some n, Some words_per_round -> Some { protocol; path; n; words_per_round }
      | _ -> None)
  | _ -> None

(* Later rows win: a records file may hold several runs appended. *)
let lookup rows ~protocol ~path ~n =
  List.fold_left
    (fun acc r ->
      if r.protocol = protocol && r.path = path && r.n = n then
        Some r.words_per_round
      else acc)
    None rows

let () =
  let records, baseline =
    match Sys.argv with
    | [| _; records; baseline |] -> (records, baseline)
    | _ ->
        prerr_endline "usage: perf_gate <records.json> <baseline.json>";
        exit 2
  in
  let current = load_rows records in
  let scale = load_kind records ~kind:"scale-throughput" parse_scale in
  if current = [] && scale = [] then begin
    Printf.eprintf
      "perf_gate: no kind=\"micro\" or kind=\"scale-throughput\" rows in %s\n\
       (run bench/main.exe --only micro-engine or --only scale first; the\n\
       scale experiment only emits throughput rows without --stable-json)\n"
      records;
    exit 1
  end;
  let failures = ref 0 in
  let fail fmt = Printf.ksprintf (fun s -> incr failures; Printf.printf "FAIL %s\n" s) fmt in
  if current <> [] then begin
    let base = load_rows baseline in
    if base = [] then begin
      Printf.eprintf "perf_gate: no kind=\"micro\" rows in baseline %s\n"
        baseline;
      exit 1
    end;
    (* Regression check: every baseline point must exist and stay within 2x
       (+256 words absolute slack for near-zero steady-state baselines). *)
    List.iter
      (fun b ->
        match lookup current ~protocol:b.protocol ~path:b.path ~n:b.n with
        | None ->
            fail "%s/%s n=%d: point missing from current records" b.protocol
              b.path b.n
        | Some w ->
            let limit = (2. *. b.words_per_round) +. 256. in
            if w > limit then
              fail "%s/%s n=%d: %.0f words/round > limit %.0f (baseline %.0f)"
                b.protocol b.path b.n w limit b.words_per_round
            else
              Printf.printf "ok   %-14s %-9s n=%-4d %12.0f words/round (baseline %.0f)\n"
                b.protocol b.path b.n w b.words_per_round)
      base;
    (* Headline check: buffered flood allocates >= 5x less than the shim at
       the largest measured n >= 256. *)
    (* only the legacy/buffered columns count: the masked column reaches
       larger n but has no legacy twin to compare against *)
    let flood_ns =
      List.filter_map
        (fun r ->
          if
            r.protocol = "flood" && r.n >= 256
            && (r.path = "legacy" || r.path = "buffered")
          then Some r.n
          else None)
        current
    in
    match flood_ns with
    | [] -> fail "no flood point with n >= 256 in current records"
    | ns -> (
        let n = List.fold_left max 0 ns in
        let legacy = lookup current ~protocol:"flood" ~path:"legacy" ~n in
        let buffered = lookup current ~protocol:"flood" ~path:"buffered" ~n in
        match (legacy, buffered) with
        | Some l, Some b ->
            let ratio = l /. Float.max 1. b in
            if ratio < 5. then
              fail "flood n=%d: legacy/buffered allocation ratio %.1fx < 5x" n
                ratio
            else
              Printf.printf
                "ok   flood n=%d legacy/buffered ratio %.1fx (>= 5x)\n" n ratio
        | _ -> fail "flood n=%d: missing legacy or buffered row" n)
  end;
  (* Throughput headline: the broadcast fast path must sustain >= 5x the
     classic pointwise path's rounds/sec for flood at n=1024. Both rows
     come from the same records file — same machine, same campaign — so
     the ratio is meaningful even though absolute throughput is not. *)
  if scale <> [] then begin
    let fast = lookup scale ~protocol:"flood" ~path:"fast" ~n:1024 in
    let classic = lookup scale ~protocol:"flood" ~path:"classic" ~n:1024 in
    match (fast, classic) with
    | Some f, Some c ->
        let ratio = f /. Float.max 1e-9 c in
        if ratio < 5. then
          fail "flood n=1024: fast/classic rounds-per-sec ratio %.1fx < 5x"
            ratio
        else
          Printf.printf "ok   flood n=1024 fast/classic throughput %.1fx (>= 5x)\n"
            ratio
    | _ ->
        fail
          "flood n=1024: missing fast or classic scale-throughput row (run \
           the scale experiment with --scale-path both)"
  end;
  if !failures > 0 then begin
    Printf.printf "perf gate: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "perf gate: all checks passed"
