(* Bechamel micro-benchmarks: one Test.make per Table-1 experiment (a
   scaled-down instance of each), plus the substrate hot paths. *)

open Bechamel
open Toolkit

let run_protocol make_proto ~n ~t ~adversary () =
  let cfg = Sim.Config.make ~n ~t_max:t ~seed:1 ~max_rounds:20000 () in
  let proto = make_proto cfg in
  let inputs = Array.init n (fun i -> i mod 2) in
  let o = Sim.Engine.run proto cfg ~adversary ~inputs in
  assert (Sim.Engine.agreed_decision o <> None)

let test_thm1 =
  Test.make ~name:"T1-thm1: optimal-omissions n=36"
    (Staged.stage
       (run_protocol
          (fun cfg -> Consensus.Optimal_omissions.protocol cfg)
          ~n:36 ~t:1
          ~adversary:(Adversary.vote_splitter ())))

let test_thm3 =
  Test.make ~name:"T1-thm3: param-omissions n=36 x=4"
    (Staged.stage (fun () ->
         let n = 36 in
         let cfg0 = Sim.Config.make ~n ~t_max:1 ~seed:1 () in
         let max_rounds =
           Consensus.Param_omissions.rounds_needed ~x:4 cfg0 + 5
         in
         let cfg = Sim.Config.make ~n ~t_max:1 ~seed:1 ~max_rounds () in
         let proto = Consensus.Param_omissions.protocol ~x:4 cfg in
         let inputs = Array.init n (fun i -> i mod 2) in
         let o =
           Sim.Engine.run proto cfg ~adversary:Sim.Adversary_intf.none ~inputs
         in
         assert (Sim.Engine.agreed_decision o <> None)))

let test_bjbo =
  Test.make ~name:"T1-bjbo: biased-majority n=64"
    (Staged.stage
       (run_protocol
          (fun cfg -> Consensus.Bjbo.protocol cfg)
          ~n:64 ~t:8
          ~adversary:(Adversary.vote_splitter ())))

let test_abraham =
  Test.make ~name:"T1-abraham: flood-min n=64"
    (Staged.stage
       (run_protocol
          (fun cfg -> Consensus.Flood.protocol cfg)
          ~n:64 ~t:8
          ~adversary:(Adversary.staggered_crash ~per_round:2)))

let test_thm2 =
  Test.make ~name:"T1-thm2: product experiment n=64"
    (Staged.stage (fun () ->
         let r = Lowerbound.Product.run ~seed:1 ~n:64 ~t:16 ~coin_set:8 () in
         assert r.Lowerbound.Product.decided))

let test_coin_game =
  Test.make ~name:"L12: coin game k=1024"
    (Staged.stage (fun () ->
         let rand = Sim.Rand.create ~seed:1L () in
         ignore (Lowerbound.Coin_game.imbalance rand ~k:1024)))

let test_expander =
  Test.make ~name:"G4: expander sample+prune n=256"
    (Staged.stage (fun () ->
         let g = Expander.sample ~n:256 ~delta:64 ~seed:9L in
         let removed = Array.init 256 (fun v -> v < 17) in
         ignore (Expander.prune g ~removed ~min_deg:21)))

(* ------------------------------------------------------------------ *)
(* Engine-path allocation microbenchmark (the "micro-engine"           *)
(* experiment), covering the full protocol registry — every protocol   *)
(* is ported to the buffered [step_into] path — measured on both       *)
(* engine paths. The gated metric is allocation only: kind="micro"     *)
(* rows carry words_per_round and are compared by bench/perf_gate.ml   *)
(* against bench/micro_baseline.json. Throughput (rounds per second)   *)
(* is machine-dependent, so it ships as separate kind=                 *)
(* "micro-throughput" records — a logged artifact, never gated and     *)
(* never part of the stable baseline file.                             *)
(* ------------------------------------------------------------------ *)

module Out = Bench_util.Out

(* [Gc.minor_words] reads the allocation pointer directly, so it is exact
   even when no minor collection has run inside the measurement window —
   [quick_stat.minor_words] is only updated at collections and can lag by
   a whole minor heap. *)
let words_allocated () =
  let s = Gc.quick_stat () in
  Gc.minor_words () +. s.Gc.major_words -. s.Gc.promoted_words

(* Total allocated words (all heaps: the envelope arena and the exact
   window are big enough to be allocated directly on the major heap, so a
   minor-words-only delta would undercount the very arrays the refactor
   removes), total rounds and wall time over [runs] runs of [f]. One
   warmup run first: the buffered path's reusable {!Sim.Engine.instance}
   pays its one-time buffer construction there — steady-state cost is
   what the perf gate tracks. *)
let measure_runs f ~runs =
  ignore (f () : Sim.Engine.outcome);
  Gc.full_major ();
  let w0 = words_allocated () in
  let t0 = Unix.gettimeofday () in
  let rounds = ref 0 in
  for _ = 1 to runs do
    let o = f () in
    rounds := !rounds + o.Sim.Engine.rounds_total
  done;
  let wall = Unix.gettimeofday () -. t0 in
  let w1 = words_allocated () in
  (w1 -. w0, !rounds, wall)

(* One (protocol, path, n) measurement: cache lookup, the gated
   kind="micro" row, the logged kind="micro-throughput" row. Shared by
   the legacy/buffered columns and the masked column below.

   Allocation counts are a pure function of the case (runs are
   seeded, the allocator is deterministic), so they cache like any
   other run result — payload "words_per_round rounds" with the
   float as %h for an exact round-trip. Throughput never caches:
   it measures this machine's clock, and a hit skips its row just
   as --stable-json omits it. *)
let measure_path ~name ~path ~n ~t ~runs f =
  let key =
    Printf.sprintf "micro-engine|%s|%s|n=%d|t=%d|runs=%d" name path n t runs
  in
    let cached =
      match !Bench_util.store with
      | None -> None
      | Some s ->
          Option.bind (Cache.Store.lookup s key) (fun payload ->
              match String.split_on_char ' ' payload with
              | [ w; r ] -> (
                  try Some (float_of_string w, int_of_string r)
                  with _ -> None)
              | _ -> None)
    in
    let wpr, rounds, fresh_wall =
      match cached with
      | Some (wpr, rounds) -> (wpr, rounds, None)
      | None ->
          let words, rounds, wall = measure_runs f ~runs in
          let wpr = words /. float_of_int (max 1 rounds) in
          Option.iter
            (fun s ->
              Cache.Store.add s ~key (Printf.sprintf "%h %d" wpr rounds))
            !Bench_util.store;
          (wpr, rounds, Some wall)
    in
    Out.emit ~kind:"micro"
      [
        ("protocol", Out.S name);
        ("path", Out.S path);
        ("n", Out.I n);
        ("t", Out.I t);
        ("runs", Out.I runs);
        ("rounds", Out.I rounds);
        ("words_per_round", Out.F wpr);
      ];
    (* throughput is a logged artifact only — machine-dependent, so it is
       neither gated by perf_gate nor written in stable (baseline) mode *)
    (match fresh_wall with
    | Some wall when not (Out.is_stable ()) ->
        Out.emit ~kind:"micro-throughput"
          [
            ("protocol", Out.S name);
            ("path", Out.S path);
            ("n", Out.I n);
            ("rounds_per_sec", Out.F (float_of_int rounds /. wall));
          ]
    | _ -> ());
  wpr

let engine_case ~name ~n ~t ~runs ~legacy ~buffered =
  let cfg = Sim.Config.make ~n ~t_max:t ~seed:1 ~max_rounds:20000 () in
  let inputs = Array.init n (fun i -> i mod 2) in
  let adversary = Sim.Adversary_intf.none in
  (* lazy so a fully cache-served case never constructs its protocols *)
  let legacy_proto = lazy (legacy cfg) in
  let inst = lazy (Sim.Engine.instance (buffered cfg) cfg) in
  let w_legacy =
    measure_path ~name ~path:"legacy" ~n ~t ~runs (fun () ->
        Sim.Engine.run (Lazy.force legacy_proto) cfg ~adversary ~inputs)
  in
  let w_buffered =
    measure_path ~name ~path:"buffered" ~n ~t ~runs (fun () ->
        Sim.Engine.run_instance (Lazy.force inst) ~adversary ~inputs)
  in
  Bench_util.row "%-14s n=%-4d t=%-3d %12.0f w/rnd legacy %12.0f buffered (%.1fx)\n"
    name n t w_legacy w_buffered
    (w_legacy /. Float.max 1. w_buffered)

(* Allocation on the compiled-mask delivery route: the buffered instance
   driven by a structured adversary whose plan carries per-sender masks,
   so an untraced run takes the mask-blit / broadcast-table path the
   scale experiment measures for throughput. Same gated metric
   (words/round), same baseline mechanics, path="masked". The adversary
   is rebuilt per run: strategies close over mutable schedule state. *)
let masked_case ~name ~n ~t ~runs ~buffered ~adversary =
  let cfg = Sim.Config.make ~n ~t_max:t ~seed:1 ~max_rounds:20000 () in
  let inputs = Array.init n (fun i -> i mod 2) in
  let inst = lazy (Sim.Engine.instance (buffered cfg) cfg) in
  let w =
    measure_path ~name ~path:"masked" ~n ~t ~runs (fun () ->
        Sim.Engine.run_instance (Lazy.force inst) ~adversary:(adversary ())
          ~inputs)
  in
  Bench_util.row "%-14s n=%-4d t=%-3d %12.0f w/rnd masked\n" name n t w

(* The sizes keep the legacy path affordable (dolev-strong relays are
   O(n^2) per round); flood includes n=256 even in quick mode because the
   5x acceptance bar is stated at n >= 256. Every registry protocol is
   covered, at one size in quick mode and two in full mode. *)
let engine_bench ~quick () =
  Bench_util.section
    "Engine path: allocated words/round (legacy shim vs buffered instance)";
  let runs = if quick then 3 else 6 in
  List.iter
    (fun n ->
      engine_case ~name:"flood" ~n ~t:8 ~runs
        ~legacy:Consensus.Flood.protocol
        ~buffered:Consensus.Flood.protocol_buffered)
    (if quick then [ 64; 256 ] else [ 64; 256; 512 ]);
  (* flood under a compiled-mask crash schedule at the sizes the scale
     sweep gates — allocation on the new delivery route, both modes *)
  List.iter
    (fun n ->
      masked_case ~name:"flood" ~n ~t:8 ~runs
        ~buffered:Consensus.Flood.protocol_buffered
        ~adversary:(fun () ->
          Adversary.crash_schedule [ (1, [ 0 ]); (2, [ 1 ]); (3, [ 2 ]) ]))
    [ 256; 1024 ];
  List.iter
    (fun n ->
      engine_case ~name:"dolev-strong" ~n ~t:4 ~runs
        ~legacy:Consensus.Dolev_strong.protocol
        ~buffered:Consensus.Dolev_strong.protocol_buffered)
    (if quick then [ 32 ] else [ 32; 64 ]);
  List.iter
    (fun n ->
      engine_case ~name:"optimal" ~n ~t:2 ~runs
        ~legacy:(fun cfg -> Consensus.Optimal_omissions.protocol cfg)
        ~buffered:(fun cfg -> Consensus.Optimal_omissions.protocol_buffered cfg))
    (if quick then [ 24 ] else [ 24; 48 ]);
  List.iter
    (fun n ->
      engine_case ~name:"early-stopping" ~n ~t:8 ~runs
        ~legacy:Consensus.Early_stopping.protocol
        ~buffered:Consensus.Early_stopping.protocol_buffered)
    (if quick then [ 64 ] else [ 64; 128 ]);
  List.iter
    (fun n ->
      engine_case ~name:"bjbo" ~n ~t:8 ~runs
        ~legacy:(fun cfg -> Consensus.Bjbo.protocol cfg)
        ~buffered:(fun cfg -> Consensus.Bjbo.protocol_buffered cfg))
    (if quick then [ 64 ] else [ 64; 128 ]);
  List.iter
    (fun n ->
      engine_case ~name:"phase-king" ~n ~t:2 ~runs
        ~legacy:Consensus.Phase_king.protocol
        ~buffered:Consensus.Phase_king.protocol_buffered)
    (if quick then [ 24 ] else [ 24; 48 ]);
  List.iter
    (fun n ->
      engine_case ~name:"crash-sub" ~n ~t:2 ~runs
        ~legacy:(fun cfg -> Consensus.Crash_subquadratic.protocol cfg)
        ~buffered:(fun cfg -> Consensus.Crash_subquadratic.protocol_buffered cfg))
    (if quick then [ 64 ] else [ 64; 128 ]);
  List.iter
    (fun n ->
      engine_case ~name:"param-x2" ~n ~t:1 ~runs
        ~legacy:(fun cfg -> Consensus.Param_omissions.protocol ~x:2 cfg)
        ~buffered:(fun cfg -> Consensus.Param_omissions.protocol_buffered ~x:2 cfg))
    (if quick then [ 36 ] else [ 36; 72 ]);
  List.iter
    (fun n ->
      engine_case ~name:"operative-broadcast" ~n ~t:8 ~runs
        ~legacy:(fun cfg -> Consensus.Operative_broadcast.protocol ~source:0 cfg)
        ~buffered:(fun cfg ->
          Consensus.Operative_broadcast.protocol_buffered ~source:0 cfg))
    (if quick then [ 64 ] else [ 64; 128 ])

let benchmark () =
  let tests =
    [
      test_thm1;
      test_thm3;
      test_bjbo;
      test_abraham;
      test_thm2;
      test_coin_game;
      test_expander;
    ]
  in
  Bench_util.section "Bechamel micro-benchmarks (one per experiment)";
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) ()
  in
  let instances = Instance.[ monotonic_clock ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true
                       ~predictors:[| Measure.run |])
          (Instance.monotonic_clock) results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              Printf.printf "  %-40s %12.0f ns/run\n%!" name est
          | _ -> Printf.printf "  %-40s (no estimate)\n%!" name)
        analyzed)
    tests
