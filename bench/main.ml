(* Experiment harness: regenerates every table and figure of the paper
   (see DESIGN.md section 4 for the experiment index and EXPERIMENTS.md for
   paper-vs-measured results).

   Usage:
     dune exec bench/main.exe                 # all experiments, default sizes
     dune exec bench/main.exe -- --quick      # smaller sweeps (CI)
     dune exec bench/main.exe -- --only t1-thm1,f3
     dune exec bench/main.exe -- --micro      # also run bechamel benches
     dune exec bench/main.exe -- --jobs 4     # domain-pool width (results
                                              # are identical at any width)
     dune exec bench/main.exe -- --json out.json  # JSON-lines sink
                                              # (default BENCH_consensus.json) *)

let experiments =
  [
    ("t1-thm1", Experiments.t1_thm1);
    ("t1-thm3", Experiments.t1_thm3);
    ("t1-bjbo", Experiments.t1_bjbo);
    ("t1-abraham", Experiments.t1_abraham);
    ("t1-thm2", Experiments.t1_thm2);
    ("b3", Experiments.b3);
    ("f1", Figures.f1);
    ("f2", Figures.f2);
    ("f3", Figures.f3);
    ("g4", Figures.g4);
    ("l12", Figures.l12);
    ("valency", Figures.valency);
    ("abl-delta", Ablations.abl_delta);
    ("abl-spread", Ablations.abl_spread);
    ("abl-epochs", Ablations.abl_epochs);
  ]

let () =
  let quick = ref false in
  let micro = ref None in
  let only = ref [] in
  let jobs = ref 0 in
  let json = ref "BENCH_consensus.json" in
  let spec =
    [
      ("--quick", Arg.Set quick, "smaller sweeps");
      ( "--only",
        Arg.String (fun s -> only := String.split_on_char ',' s),
        "comma-separated experiment ids" );
      ( "--micro",
        Arg.Unit (fun () -> micro := Some true),
        "also run bechamel micro-benchmarks" );
      ( "--no-micro",
        Arg.Unit (fun () -> micro := Some false),
        "skip bechamel micro-benchmarks" );
      ( "--jobs",
        Arg.Set_int jobs,
        "N  domains in the executor pool (default: recommended count; 1 = \
         serial)" );
      ( "--json",
        Arg.Set_string json,
        "FILE  JSON-lines results sink (default BENCH_consensus.json; \
         \"\" disables)" );
    ]
  in
  Arg.parse spec
    (fun _ -> ())
    "bench/main.exe [--quick] [--only ids] [--micro] [--jobs N] [--json FILE]";
  Exec.set_default_jobs !jobs;
  Bench_util.Out.set_path (if !json = "" then None else Some !json);
  let selected =
    match !only with
    | [] -> experiments
    | ids ->
        List.filter_map
          (fun id ->
            match List.assoc_opt id experiments with
            | Some f -> Some (id, f)
            | None ->
                Printf.eprintf "unknown experiment %S\n" id;
                exit 2)
          ids
  in
  Printf.printf
    "Reproduction harness: Hajiaghayi, Kowalski, Olkowski — Nearly-Optimal \
     Consensus\nTolerating Adaptive Omissions (PODC 2024). %s sweeps, %d \
     jobs.\n"
    (if !quick then "Quick" else "Default")
    (Exec.default_jobs ());
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (id, f) ->
      Bench_util.Out.start_experiment id;
      f ~quick:!quick ();
      (* one summary record per experiment: wall_s is the experiment's
         total wall-clock, stamped by emit *)
      Bench_util.Out.emit ~kind:"summary"
        [
          ("quick", Bench_util.Out.B !quick);
          ("jobs", Bench_util.Out.I (Exec.default_jobs ()));
        ])
    selected;
  let run_micro = match !micro with Some b -> b | None -> !only = [] in
  if run_micro then Micro.benchmark ();
  Printf.printf "\ntotal wall time: %.1f s\n" (Unix.gettimeofday () -. t0);
  Bench_util.Out.close ()
