(* Experiment harness: regenerates every table and figure of the paper
   (see DESIGN.md section 4 for the experiment index and EXPERIMENTS.md for
   paper-vs-measured results).

   Usage:
     dune exec bench/main.exe                 # all experiments, default sizes
     dune exec bench/main.exe -- --quick      # smaller sweeps (CI)
     dune exec bench/main.exe -- --only t1-thm1,f3
     dune exec bench/main.exe -- --micro      # also run bechamel benches
     dune exec bench/main.exe -- --jobs 4     # domain-pool width (results
                                              # are identical at any width)
     dune exec bench/main.exe -- --json out.json  # JSON-lines sink
                                              # (default BENCH_consensus.json)
     dune exec bench/main.exe -- --resume     # skip work journaled in
                                              # <json>.journal by an
                                              # interrupted campaign
     dune exec bench/main.exe -- --stable-json    # omit wall_s stamps, so
                                              # two runs diff byte-identical
     dune exec bench/main.exe -- --wall-budget 30 --rand-budget 1000000
                                              # per-task watchdog ceilings;
                                              # breaches are quarantined
     dune exec bench/main.exe -- --trace      # per-round trace metrics into
                                              # the JSON sink
     dune exec bench/main.exe -- --trace-dir traces --trace-format binary
                                              # full per-run event traces
     dune exec bench/main.exe -- --trace-tail 5  # quarantine records embed
                                              # the last 5 rounds of events
     dune exec bench/main.exe -- --seeds 8    # seeds 1..8 at every point
     dune exec bench/main.exe -- --cache DIR  # content-addressed run cache:
                                              # hits skip the protocol run,
                                              # results stay byte-identical

   A sweep task that crashes, times out, or breaches a budget is quarantined
   (a JSON record with a replay command, kind="quarantine"), the sweep keeps
   going, and the campaign exits non-zero with a partial-results summary. *)

let experiments =
  [
    ("t1-thm1", Experiments.t1_thm1);
    ("t1-thm3", Experiments.t1_thm3);
    ("t1-bjbo", Experiments.t1_bjbo);
    ("t1-abraham", Experiments.t1_abraham);
    ("t1-thm2", Experiments.t1_thm2);
    ("b3", Experiments.b3);
    ("f1", Figures.f1);
    ("f2", Figures.f2);
    ("f3", Figures.f3);
    ("g4", Figures.g4);
    ("l12", Figures.l12);
    ("valency", Figures.valency);
    ("abl-delta", Ablations.abl_delta);
    ("abl-spread", Ablations.abl_spread);
    ("abl-epochs", Ablations.abl_epochs);
    ("micro-engine", Micro.engine_bench);
    ("net", Netbench.net);
    ("scale", Scale.scale);
  ]

let () =
  let quick = ref false in
  let micro = ref None in
  let only = ref [] in
  let jobs = ref 0 in
  let seeds = ref 0 in
  let json = ref "BENCH_consensus.json" in
  let resume = ref false in
  let stable = ref false in
  let wall_budget = ref 0. in
  let round_budget = ref 0 in
  let msg_budget = ref 0 in
  let rand_budget = ref 0 in
  let trace = ref false in
  let trace_dir = ref "" in
  let trace_format = ref "jsonl" in
  let trace_tail = ref 0 in
  let net_spec = ref "" in
  let cache = ref "" in
  let no_cache = ref false in
  let spec =
    [
      ("--quick", Arg.Set quick, "smaller sweeps");
      ( "--only",
        Arg.String (fun s -> only := String.split_on_char ',' s),
        "comma-separated experiment ids" );
      ( "--micro",
        Arg.Unit (fun () -> micro := Some true),
        "also run bechamel micro-benchmarks" );
      ( "--no-micro",
        Arg.Unit (fun () -> micro := Some false),
        "skip bechamel micro-benchmarks" );
      ( "--jobs",
        Arg.Set_int jobs,
        "N  domains in the executor pool (default: recommended count; 1 = \
         serial)" );
      ("-j", Arg.Set_int jobs, "N  alias for --jobs");
      ( "--seeds",
        Arg.Set_int seeds,
        "N  run every sweep point on seeds 1..N instead of each \
         experiment's default seed list (0 = defaults)" );
      ( "--json",
        Arg.Set_string json,
        "FILE  JSON-lines results sink (default BENCH_consensus.json; \
         \"\" disables)" );
      ( "--resume",
        Arg.Set resume,
        "skip sweep tasks journaled in <json>.journal by a previous \
         (interrupted) campaign; results are bit-identical to an \
         uninterrupted run" );
      ( "--stable-json",
        Arg.Set stable,
        "omit wall_s stamps from JSON records, so two runs of the same \
         campaign produce byte-identical files" );
      ( "--wall-budget",
        Arg.Set_float wall_budget,
        "S  wall-clock watchdog per sweep task, seconds (0 = unlimited)" );
      ( "--round-budget",
        Arg.Set_int round_budget,
        "N  engine-round ceiling per sweep task (0 = unlimited)" );
      ( "--msg-budget",
        Arg.Set_int msg_budget,
        "N  message ceiling per sweep task (0 = unlimited)" );
      ( "--rand-budget",
        Arg.Set_int rand_budget,
        "N  random-bit ceiling per sweep task (0 = unlimited)" );
      ( "--trace",
        Arg.Set trace,
        "collect per-round trace metrics for every run and tee them into \
         the JSON sink as kind=\"trace-metrics\" records" );
      ( "--trace-dir",
        Arg.Set_string trace_dir,
        "DIR  write each run's full event trace to a file in DIR (created \
         if missing)" );
      ( "--trace-format",
        Arg.Set_string trace_format,
        "jsonl|binary  trace file encoding (default jsonl)" );
      ( "--trace-tail",
        Arg.Set_int trace_tail,
        "K  keep the last K rounds of events per run; quarantine records \
         then embed the tail (0 = off)" );
      ( "--net",
        Arg.Set_string net_spec,
        "SPEC  base lossy-link spec for the \"net\" experiment (same syntax \
         as consensus_sim --net; the sweep varies the drop rate around it)" );
      ( "--scale-path",
        Arg.String Scale.set_path,
        "both|classic|fast  delivery paths measured by the \"scale\" \
         experiment (default both; kind=\"scale\" rows are identical on \
         either path)" );
      ( "--cache",
        Arg.Set_string cache,
        "DIR  content-addressed run cache: protocol runs already in DIR are \
         served from it (kind=\"cache\" rows report hits/misses/writes), \
         fresh results are written back" );
      ( "--no-cache",
        Arg.Set no_cache,
        "ignore --cache for this campaign (every run executes)" );
    ]
  in
  Arg.parse spec
    (fun _ -> ())
    "bench/main.exe [--quick] [--only ids] [--micro] [--jobs N] [--seeds N]\n\
    \                [--json FILE] [--resume] [--stable-json] \
     [--wall-budget S]\n\
    \                [--round-budget N] [--msg-budget N] [--rand-budget N]\n\
    \                [--trace] [--trace-dir DIR] [--trace-format F] \
     [--trace-tail K]\n\
    \                [--cache DIR] [--no-cache]";
  Exec.set_default_jobs !jobs;
  Bench_util.Out.set_stable !stable;
  Bench_util.seeds_override := (if !seeds <= 0 then None else Some !seeds);
  if !net_spec <> "" then
    Bench_util.net_base := Some (Run_spec.Cli.net_or_die !net_spec);
  Bench_util.trace_metrics := !trace;
  Bench_util.trace_tail_rounds := max 0 !trace_tail;
  Bench_util.trace_format := Run_spec.Cli.format_or_die !trace_format;
  if !trace_dir <> "" then begin
    if not (Sys.file_exists !trace_dir) then Sys.mkdir !trace_dir 0o755;
    Bench_util.trace_dir := Some !trace_dir
  end;
  if !resume && !json = "" then begin
    Printf.eprintf "--resume needs a --json path (the journal lives beside it)\n";
    exit 2
  end;
  Bench_util.Out.set_path (if !json = "" then None else Some !json);
  if !json <> "" then
    Bench_util.enable_journal ~path:(!json ^ ".journal") ~resume:!resume;
  if (not !no_cache) && !cache <> "" then Bench_util.enable_cache ~dir:!cache;
  Bench_util.budget :=
    Run_spec.Cli.budget_of_flags
      {
        Run_spec.Cli.wall = !wall_budget;
        rounds = !round_budget;
        msgs = !msg_budget;
        rand = !rand_budget;
      };
  let selected =
    match !only with
    | [] -> experiments
    | ids ->
        List.filter_map
          (fun id ->
            match List.assoc_opt id experiments with
            | Some f -> Some (id, f)
            | None ->
                Printf.eprintf "unknown experiment %S\n" id;
                exit 2)
          ids
  in
  Printf.printf
    "Reproduction harness: Hajiaghayi, Kowalski, Olkowski — Nearly-Optimal \
     Consensus\nTolerating Adaptive Omissions (PODC 2024). %s sweeps, %d \
     jobs.\n"
    (if !quick then "Quick" else "Default")
    (Exec.default_jobs ());
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (id, f) ->
      Bench_util.Out.start_experiment id;
      let mark = Bench_util.cache_mark () in
      f ~quick:!quick ();
      (* one kind="cache" delta row per experiment when the store is on,
         then one summary record: wall_s is the experiment's total
         wall-clock, stamped by emit *)
      Bench_util.emit_cache_delta mark;
      Bench_util.Out.emit ~kind:"summary"
        [
          ("quick", Bench_util.Out.B !quick);
          ("jobs", Bench_util.Out.I (Exec.default_jobs ()));
        ])
    selected;
  (* bechamel micro-benches default off under --cache: they measure this
     machine's timings, which no cache can serve — --micro re-enables. *)
  let run_micro =
    match !micro with
    | Some b -> b
    | None -> !only = [] && Option.is_none !Bench_util.store
  in
  if run_micro then Micro.benchmark ();
  (match !Bench_util.store with
  | None -> ()
  | Some s ->
      Bench_util.Out.start_experiment "cache";
      let st = Cache.Store.stats s in
      Bench_util.Out.emit ~kind:"cache"
        [
          ("hits", Bench_util.Out.I st.Cache.Stats.hits);
          ("misses", Bench_util.Out.I st.Cache.Stats.misses);
          ("writes", Bench_util.Out.I st.Cache.Stats.writes);
          ("entries", Bench_util.Out.I (Cache.Store.entries s));
        ];
      Printf.printf "\ncache: %s (%d entries in %s)\n"
        (Fmt.str "%a" Cache.Stats.pp st)
        (Cache.Store.entries s) (Cache.Store.dir s));
  Printf.printf "\ntotal wall time: %.1f s\n" (Unix.gettimeofday () -. t0);
  Bench_util.print_failure_summary ();
  Bench_util.Out.close ();
  Bench_util.close_journal ();
  Bench_util.close_cache ();
  if Bench_util.failures () > 0 then exit 1
