(* Figure and appendix experiments: the structural mechanisms the paper's
   Figures 1-3 illustrate, the Theorem 4 graph properties, and the Lemma 12
   coin game. *)

open Bench_util

(* ------------------------------------------------------------------ *)
(* F1: Figure 1 — sqrt-decomposition + overlay expander.               *)
(* ------------------------------------------------------------------ *)

let f1 ~quick () =
  section "F1: Figure 1 — sqrt-decomposition with an expander overlay";
  let ns = if quick then [ 64; 256; 1024 ] else [ 64; 256; 1024; 4096 ] in
  row "%6s %8s %10s %7s %16s %10s\n" "n" "groups" "group sz" "Delta"
    "degree min/max" "edges";
  Exec.map
    (fun n ->
      let part = Groups.sqrt_partition (Array.init n (fun i -> i)) in
      let delta = Expander.default_delta n in
      let g = Expander.create_good ~n ~delta ~seed:11L () in
      let dmin = ref max_int and dmax = ref 0 in
      for v = 0 to n - 1 do
        let d = Expander.degree g v in
        if d < !dmin then dmin := d;
        if d > !dmax then dmax := d
      done;
      (n, Groups.group_count part, part.Groups.group_size, delta, !dmin, !dmax,
       Expander.edge_count g))
    (Array.of_list ns)
  |> Array.iter (fun (n, groups, gsize, delta, dmin, dmax, edges) ->
         row "%6d %8d %10d %7d %10d/%-5d %10d\n" n groups gsize delta dmin
           dmax edges;
         Out.emit
           [
             ("n", Out.I n); ("groups", Out.I groups);
             ("group_size", Out.I gsize); ("delta", Out.I delta);
             ("degree_min", Out.I dmin); ("degree_max", Out.I dmax);
             ("edges", Out.I edges);
           ]);
  Printf.printf
    "(the overlay graph is independent of the decomposition, exactly as in \
     the figure)\n"

(* ------------------------------------------------------------------ *)
(* F2: Figure 2 — the 3-round relay trace inside one epoch.            *)
(* ------------------------------------------------------------------ *)

(* cache codec for f2's (measure, per-slot trace) pair: the measure
   reuses measure_codec, the slot list is "slot:msgs:bits" comma-joined;
   the decoder rejects any torn slot token *)
let f2_codec =
  ( (fun ((m : run_measure), slots) ->
      measure_to_string m ^ ";"
      ^ String.concat ","
          (List.map
             (fun (s, msgs, bits) -> Printf.sprintf "%d:%d:%d" s msgs bits)
             slots)),
    fun s ->
      match String.split_on_char ';' s with
      | [ ms; sl ] ->
          Option.bind (measure_of_string ms) (fun m ->
              let parse tok =
                match String.split_on_char ':' tok with
                | [ a; b; c ] -> (
                    try
                      Some (int_of_string a, int_of_string b, int_of_string c)
                    with _ -> None)
                | _ -> None
              in
              let toks = if sl = "" then [] else String.split_on_char ',' sl in
              let parsed = List.filter_map parse toks in
              if List.length parsed = List.length toks then Some (m, parsed)
              else None)
      | _ -> None )

let f2 ~quick:_ () =
  section "F2: Figure 2 — binary-tree aggregation trace (one epoch)";
  let n = 256 in
  let t = max 1 (n / 31) in
  let cfg = Sim.Config.make ~n ~t_max:t ~seed:4 ~max_rounds:20000 () in
  let inputs = Array.init n (fun i -> i mod 2) in
  let part = Groups.sqrt_partition (Array.init n (fun i -> i)) in
  let s = part.Groups.group_size in
  let stages = Groups.stages s in
  let spread = Consensus.Params.spread_rounds Consensus.Params.default ~n in
  let epoch_len = (3 * stages) + spread in
  Printf.printf
    "n=%d: groups of %d, %d relay stages x 3 rounds + %d spreading rounds \
     per epoch\n\n"
    n s stages spread;
  row "%6s %-12s %10s %12s %14s\n" "slot" "kind" "messages" "bits"
    "bits/group";
  (* the per-slot trace is collected inside the task and returned with
     the measure, so a cache hit restores the whole figure without a run *)
  match
    protected ~cache_key:"f2|n=256" ~codec:f2_codec ~label:"f2/n=256"
      (fun () ->
        let proto = Consensus.Optimal_omissions.protocol cfg in
        let trace = Hashtbl.create 64 in
        let on_round ~round envelopes =
          if round <= epoch_len then begin
            let msgs = Array.length envelopes in
            let bits =
              Array.fold_left (fun a e -> a + e.Sim.View.bits) 0 envelopes
            in
            Hashtbl.replace trace round (msgs, bits)
          end
        in
        let m =
          measure ~on_round proto cfg ~adversary:(Adversary.group_killer ())
            ~inputs
        in
        let slots =
          List.sort compare
            (Hashtbl.fold
               (fun slot (msgs, bits) acc -> (slot, msgs, bits) :: acc)
               trace [])
        in
        (m, slots))
  with
  | None -> ()
  | Some ((_ : run_measure), slots) ->
  let trace = Hashtbl.create 64 in
  List.iter (fun (s, msgs, bits) -> Hashtbl.replace trace s (msgs, bits)) slots;
  for slot = 1 to epoch_len do
    let kind =
      if slot <= 3 * stages then begin
        let stage = ((slot - 1) / 3) + 1 in
        match (slot - 1) mod 3 with
        | 0 -> Printf.sprintf "A%d counts" stage
        | 1 -> Printf.sprintf "B%d confirm" stage
        | _ -> Printf.sprintf "C%d relay" stage
      end
      else Printf.sprintf "S%d spread" (slot - (3 * stages))
    in
    let msgs, bits = try Hashtbl.find trace slot with Not_found -> (0, 0) in
    row "%6d %-12s %10d %12d %14.0f\n" slot kind msgs bits
      (float_of_int bits /. float_of_int (Groups.group_count part));
    Out.emit
      [
        ("slot", Out.I slot); ("slot_kind", Out.S kind);
        ("messages", Out.I msgs); ("bits", Out.I bits);
        ("bits_per_group",
         Out.F (float_of_int bits /. float_of_int (Groups.group_count part)));
      ]
  done;
  let agg_bits =
    let acc = ref 0 in
    for slot = 1 to 3 * stages do
      match Hashtbl.find_opt trace slot with
      | Some (_, b) -> acc := !acc + b
      | None -> ()
    done;
    !acc
  in
  let log2n = log (float_of_int n) /. log 2. in
  Out.emit ~kind:"fit"
    [
      ("n", Out.I n);
      ("agg_bits_per_group", Out.I (agg_bits / Groups.group_count part));
      ("lemma2_bound", Out.F (float_of_int n *. log2n *. log2n));
    ];
  Printf.printf
    "\naggregation bits per group per epoch: %d (Lemma 2 bound shape: n \
     log^2 n = %.0f)\n"
    (agg_bits / Groups.group_count part)
    (float_of_int n *. log2n *. log2n);
  Printf.printf
    "(run under the group-killer adversary: like process c in Figure 2, \
     group 0's corrupted\n members are excluded from the counts while every \
     other group aggregates normally)\n"

(* ------------------------------------------------------------------ *)
(* F3: Figure 3 — the voting thresholds in action.                     *)
(* ------------------------------------------------------------------ *)

(* cache codec for f3's per-epoch aggregate rows, comma-joined
   "epoch:mean:set1:set0:coin:decided" with the mean as a %h hex float
   so the round-trip is bit-exact *)
let f3_codec =
  ( (fun rows ->
      String.concat ","
        (List.map
           (fun (ep, mean, s1, s0, coin, dec) ->
             Printf.sprintf "%d:%h:%d:%d:%d:%d" ep mean s1 s0 coin dec)
           rows)),
    fun s ->
      let parse tok =
        match String.split_on_char ':' tok with
        | [ ep; mean; s1; s0; coin; dec ] -> (
            try
              Some
                ( int_of_string ep,
                  float_of_string mean,
                  int_of_string s1,
                  int_of_string s0,
                  int_of_string coin,
                  int_of_string dec )
            with _ -> None)
        | _ -> None
      in
      let toks = if s = "" then [] else String.split_on_char ',' s in
      let parsed = List.filter_map parse toks in
      if List.length parsed = List.length toks then Some parsed else None )

let f3 ~quick () =
  section "F3: Figure 3 — biased-majority threshold dynamics";
  let n = if quick then 144 else 400 in
  let t = max 1 (n / 31) in
  (* the task runs the protocol with the vote log attached and reduces
     the log to per-epoch aggregates — the cacheable figure content *)
  let task () =
    let log = ref [] in
    let cfg = Sim.Config.make ~n ~t_max:t ~seed:12 ~max_rounds:20000 () in
    let proto = Consensus.Optimal_omissions.protocol ~vote_log:log cfg in
    let inputs = Array.init n (fun i -> i mod 2) in
    let (_ : run_measure) =
      measure proto cfg ~adversary:(Adversary.vote_splitter ()) ~inputs
    in
    let events = List.rev !log in
    let epochs =
      List.sort_uniq compare
        (List.map (fun e -> e.Consensus.Core.ev_epoch) events)
    in
    List.map
      (fun ep ->
        let evs =
          List.filter (fun e -> e.Consensus.Core.ev_epoch = ep) events
        in
        let frac e =
          float_of_int e.Consensus.Core.ev_ones
          /. float_of_int (e.ev_ones + e.ev_zeros)
        in
        let mean =
          List.fold_left (fun a e -> a +. frac e) 0. evs
          /. float_of_int (List.length evs)
        in
        let count p = List.length (List.filter p evs) in
        let starts p e =
          let r = e.Consensus.Core.ev_rule in
          String.length r >= String.length p
          && String.sub r 0 (String.length p) = p
        in
        ( ep,
          mean,
          count (starts "one"),
          count (starts "zero"),
          count (starts "coin"),
          count (fun e ->
              let r = e.Consensus.Core.ev_rule in
              String.length r > 8) ))
      epochs
  in
  match
    protected
      ~cache_key:(Printf.sprintf "f3|n=%d" n)
      ~codec:f3_codec
      ~label:(Printf.sprintf "f3/n=%d" n)
      task
  with
  | None -> ()
  | Some rows ->
  Printf.printf
    "n=%d under the vote-splitting adversary; per epoch: the ones-fraction \
     each operative\nprocess computed and which Figure-3 rule fired.\n\n" n;
  row "%6s %10s %8s %8s %8s %9s\n" "epoch" "mean 1s%" "set-1" "set-0" "coin"
    "decided";
  List.iter
    (fun (ep, mean, set_one, set_zero, coin, decided) ->
      row "%6d %9.1f%% %8d %8d %8d %9d\n" ep (100. *. mean) set_one set_zero
        coin decided;
      Out.emit
        [
          ("epoch", Out.I ep); ("mean_ones_pct", Out.F (100. *. mean));
          ("set_one", Out.I set_one);
          ("set_zero", Out.I set_zero);
          ("coin", Out.I coin);
          ("decided", Out.I decided);
        ])
    rows;
  Printf.printf
    "\n(thresholds: >18/30 sets 1, <15/30 sets 0, the window flips the \
     epoch's one coin;\n >27/30 or <3/30 arms the decided flag — compare \
     with Figure 3's bands)\n"

(* ------------------------------------------------------------------ *)
(* G4: Theorem 4 property report.                                      *)
(* ------------------------------------------------------------------ *)

let g4 ~quick () =
  section "G4: Theorem 4 — random-graph properties R(n, Delta/(n-1))";
  let ns = if quick then [ 128; 512 ] else [ 128; 512; 2048 ] in
  row "%6s %7s %9s %9s %9s %11s %7s\n" "n" "Delta" "deg-ok" "sparse"
    "expand" "core(n/15)" "ecc";
  Exec.map
    (fun n ->
      let delta = Expander.default_delta n in
      let g = Expander.create_good ~n ~delta ~seed:21L () in
      let deg = Expander.degree_bounds_ok g ~lo:0.5 ~hi:1.6 in
      let sparse =
        Expander.edge_sparsity_ok g ~samples:40 ~max_size:(n / 10)
          ~alpha:(float_of_int delta /. 4.)
          ~seed:31L
      in
      let expand =
        Expander.expansion_ok g ~samples:40 ~set_size:(n / 10) ~seed:41L
      in
      let removed = Array.init n (fun v -> v < n / 15) in
      let core = Expander.prune g ~removed ~min_deg:(delta / 3) in
      let size = Expander.mask_size core in
      let v = ref 0 in
      while not core.(!v) do
        incr v
      done;
      let ecc =
        match Expander.eccentricity_within g ~mask:core ~v:!v with
        | Some e -> string_of_int e
        | None -> "disc"
      in
      (n, delta, deg, sparse, expand, size, ecc))
    (Array.of_list ns)
  |> Array.iter (fun (n, delta, deg, sparse, expand, size, ecc) ->
         row "%6d %7d %9b %9b %9b %6d/%-4d %7s\n" n delta deg sparse expand
           size
           (n - (4 * (n / 15) / 3))
           ecc;
         Out.emit
           [
             ("n", Out.I n); ("delta", Out.I delta);
             ("degree_ok", Out.B deg); ("sparse_ok", Out.B sparse);
             ("expansion_ok", Out.B expand); ("core_size", Out.I size);
             ("core_bound", Out.I (n - (4 * (n / 15) / 3)));
             ("eccentricity", Out.S ecc);
           ]);
  Printf.printf
    "(core column: Lemma 4 survivor count vs its n - 4/3 |T| bound; ecc: \
     the 'shallow'\n property — the pruned core keeps O(log n) diameter)\n"

(* ------------------------------------------------------------------ *)
(* L12: the coin-flipping game (Lemma 12).                             *)
(* ------------------------------------------------------------------ *)

let l12 ~quick () =
  section "L12: Lemma 12 — hiding budget of the one-round coin game";
  let ks = if quick then [ 16; 64; 256; 1024 ] else [ 16; 64; 256; 1024; 4096 ] in
  let trials = if quick then 2000 else 5000 in
  row "%6s %9s %12s %12s %14s\n" "k" "alpha" "empirical" "8sqrt(k ln)"
    "empir/sqrt(k)";
  let grid =
    List.concat_map
      (fun k -> List.map (fun alpha -> (k, alpha)) [ 0.25; 0.05; 0.01 ])
      ks
  in
  Exec.map
    (fun (k, alpha) ->
      let rand = Sim.Rand.create ~seed:55L () in
      let h = Lowerbound.Coin_game.required_hides rand ~k ~alpha ~trials in
      (k, alpha, h))
    (Array.of_list grid)
  |> Array.iter (fun (k, alpha, h) ->
         let budget = Lowerbound.Coin_game.talagrand_budget ~k ~alpha in
         row "%6d %9.3f %12d %12.1f %14.2f\n" k alpha h budget
           (float_of_int h /. sqrt (float_of_int k));
         Out.emit
           [
             ("k", Out.I k); ("alpha", Out.F alpha); ("hides", Out.I h);
             ("talagrand_budget", Out.F budget);
             ("hides_per_sqrt_k", Out.F (float_of_int h /. sqrt (float_of_int k)));
           ]);
  Printf.printf
    "(empirical hides needed to bias with prob 1-alpha scale as sqrt(k \
     log(1/alpha)),\n inside the paper's 8 sqrt(k log(1/alpha)) budget — \
     the rightmost column is flat in k)\n"

let all ~quick () =
  f1 ~quick ();
  f2 ~quick ();
  f3 ~quick ();
  g4 ~quick ();
  l12 ~quick ()

(* ------------------------------------------------------------------ *)
(* VAL: Lemma 13 / Appendix C valency classification, exactly.         *)
(* ------------------------------------------------------------------ *)

let valency ~quick:_ () =
  section "VAL: Lemma 13 — exact valency of every initial state (toy game)";
  Printf.printf
    "One-coin biased-majority game, n=3, t=1, horizon 6: optimal adversary \
     probabilities\ncomputed exhaustively over all adaptive crash \
     strategies and coins.\n\n";
  let game = { Lowerbound.Valency.n = 3; t = 1; horizon = 6 } in
  row "%10s %8s %8s %8s %10s %12s\n" "inputs" "force1" "force0" "stall"
    "disagree" "valence";
  Exec.init 8 (fun mask ->
      let inputs = Array.init 3 (fun p -> (mask lsr p) land 1) in
      let a = Lowerbound.Valency.analyze game ~inputs in
      (inputs, a))
  |> Array.iter (fun (inputs, a) ->
         let v =
           match Lowerbound.Valency.classify ~threshold:0.4 a with
           | Lowerbound.Valency.Zero_valent -> "0-valent"
           | One_valent -> "1-valent"
           | Null_valent -> "null"
           | Bivalent -> "bivalent"
         in
         row "%9d%d%d %8.3f %8.3f %8.3f %10.3f %12s\n" inputs.(0) inputs.(1)
           inputs.(2) a.Lowerbound.Valency.force1 a.force0 a.stall a.disagree
           v;
         Out.emit
           [
             ("inputs",
              Out.S (Printf.sprintf "%d%d%d" inputs.(0) inputs.(1) inputs.(2)));
             ("force1", Out.F a.Lowerbound.Valency.force1);
             ("force0", Out.F a.force0); ("stall", Out.F a.stall);
             ("disagree", Out.F a.disagree); ("valence", Out.S v);
           ]);
  Printf.printf
    "\n(unanimous inputs are uni-valent — validity, proved exhaustively; \
     mixed inputs are\nbivalent — the Lemma 13 starting point; disagree = 0 \
     everywhere — exhaustive safety)\n";
  Printf.printf "\nstall probability vs crash budget (inputs 101):\n";
  row "%6s %10s\n" "t" "stall";
  Exec.map
    (fun t ->
      let a =
        Lowerbound.Valency.analyze { game with Lowerbound.Valency.t }
          ~inputs:[| 1; 0; 1 |]
      in
      (t, a.Lowerbound.Valency.stall))
    [| 0; 1; 2 |]
  |> Array.iter (fun (t, stall) ->
         row "%6d %10.3f\n" t stall;
         Out.emit ~kind:"stall" [ ("t", Out.I t); ("stall", Out.F stall) ])
