(** Lossy-link transport: the reduction from real-world link faults back to
    the paper's omission model.

    The paper (and {!Sim.Engine}) assumes a perfect synchronous network:
    the only message loss is the adaptive omission adversary's. A production
    network also drops, duplicates, delays and burst-loses messages on its
    own. This layer plugs into the engine's {!Sim.Link_intf} delivery hook
    and (1) injects seeded link faults, (2) recovers the synchronous round
    abstraction with a per-(sender, receiver, round) ack/retransmit
    synchronizer under capped exponential backoff, and (3) re-expresses the
    residual losses the retry budget could not mask as an {e induced
    omission adversary} composed with the run's configured adversary.

    Soundness condition of the reduction: the run is still within the
    source-paper model iff [|adversarial faults ∪ induced faults| <= t].
    {!Degradation.of_transport} computes that effective fault set; a run
    beyond it must be reported as degraded (see [Supervise.run_net]), never
    as a consensus result.

    Determinism: all link randomness comes from a private stream salted off
    the run seed — no wall clock, not charged to the protocol's counted
    source — so runs are bit-identical at any [--jobs] width and the
    protocol's randomness metrics are unchanged by the link layer. A spec
    with all fault probabilities at 0 draws nothing and emits nothing:
    outcome and trace are byte-identical to a linkless run. *)

module Spec : sig
  type t = {
    drop : float;  (** i.i.d. per-leg loss probability *)
    dup : float;  (** probability a delivered data leg arrives twice *)
    delay : float;  (** probability a delivered data leg arrives late *)
    delay_max : int;  (** late arrivals cost 1..delay_max extra sub-slots *)
    stall : float;  (** per-round probability a process goes quiet *)
    stall_len : int;  (** rounds a stalled process stays quiet *)
    burst_to_bad : float;  (** Gilbert–Elliott good->bad transition; 0 = off *)
    burst_to_good : float;  (** Gilbert–Elliott bad->good transition *)
    burst_drop : float;  (** loss probability while in the bad state *)
    retries : int;  (** retransmissions after the first attempt *)
    backoff_base : int;  (** sub-slots before the first retransmit *)
    backoff_cap : int;  (** backoff ceiling: min(cap, base * 2^(k-1)) *)
  }

  val default : t
  (** All fault probabilities 0; [retries = 4], [backoff = 1:8]. *)

  val zero_fault : t -> bool
  (** True iff every fault probability is 0 — the transport then draws no
      randomness and emits no event, and runs are byte-identical to linkless
      ones. *)

  val of_string : string -> (t, string) result
  (** Parses the [--net] syntax: comma-separated [key=value] fields over
      {!default}, with ':'-separated sub-fields — [drop=P], [dup=P],
      [delay=P[:MAX]], [stall=P[:LEN]], [burst=TO_BAD:TO_GOOD:DROP],
      [retries=N], [backoff=BASE[:CAP]]. Malformed input (unknown key,
      probability outside [0,1], bad arity) yields [Error] with a one-line
      message naming the offending key. *)

  val to_string : t -> string
  (** Canonical spec string ([of_string (to_string s) = Ok s]); ["drop=0"]
      for the all-default spec. *)

  val pp : Format.formatter -> t -> unit
end

module Transport : sig
  type t
  (** Mutable per-run link state: fault-model chains, retry accounting,
      virtual-slot clock, residual-loss log. Reusable across runs — the
      engine calls [reset] through the link hook at every run start. *)

  type stats = {
    attempts : int;  (** data-leg transmissions, first attempts included *)
    retransmits : int;
    drops : int;  (** lost legs, data and ack *)
    dups : int;
    delays : int;
    stalls : int;  (** stall onsets *)
    residual : int;  (** exchanges lost beyond the retry budget *)
    residual_edges : (int * int * int) list;
        (** (round, src, dst) per residual loss, chronological *)
    rounds : int;
    active_rounds : int;  (** rounds that carried at least one exchange *)
    slots : int;  (** total virtual sub-slots; fault-free exchange = 2 *)
  }

  val create : Spec.t -> Sim.Config.t -> t
  val reset : t -> seed:int -> unit
  val stats : t -> stats
  val spec : t -> Spec.t

  val link : t -> Sim.Link_intf.t
  (** The engine-facing hook. Pass to [Sim.Engine.run_any ?link]. *)
end

module Degradation : sig
  type t = {
    spec : Spec.t;
    attempts : int;
    retransmits : int;
    drops : int;
    dups : int;
    delays : int;
    stalls : int;
    residual : int;
    rounds : int;
    active_rounds : int;
    slots : int;
    induced_per_pid : int array;
        (** residual edges incident to each pid (an edge charges both
            endpoints) *)
    induced_faulty : int list;
        (** greedy vertex cover of the residual edges between
            adversary-non-faulty pids: the smallest induced fault set
            explaining every unmasked loss *)
    adversarial_faulty : int list;  (** the run adversary's final fault set *)
    effective_faulty : int list;  (** sorted union of the two *)
    t_max : int;
    beyond_model : bool;  (** [|effective_faulty| > t_max] *)
  }

  val of_transport : Transport.t -> faulty:bool array -> t_max:int -> t
  (** Snapshot the transport after a run and compose its induced faults
      with the adversary's ([faulty] is the outcome's final fault set). *)

  val greedy_cover : n:int -> (int * int) list -> int list
  (** Exposed for tests: highest-degree-first (lowest pid on ties) vertex
      cover, ascending blame order. *)

  val agreed_decision : t -> Sim.Engine.outcome -> int option
  (** The common decision of the processes outside [effective_faulty], or
      [None] if any is undecided or two disagree — the omission-model
      agreement check re-based on the effective fault set. *)

  val to_json : t -> string
  (** One-line flat JSON object (degradation-record schema in
      EXPERIMENTS.md). *)

  val pp : Format.formatter -> t -> unit
end
