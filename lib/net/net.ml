(* Lossy-link transport layer: seeded link-fault models, an ack/retransmit
   synchronizer recovering the synchronous round abstraction, and the
   graceful degradation of residual losses into induced omission faults.
   See net.mli for the model and the soundness condition. *)

(* ------------------------------------------------------------------ *)
(* Link-fault specification and its command-line syntax.               *)
(* ------------------------------------------------------------------ *)

module Spec = struct
  type t = {
    drop : float;
    dup : float;
    delay : float;
    delay_max : int;
    stall : float;
    stall_len : int;
    burst_to_bad : float;
    burst_to_good : float;
    burst_drop : float;
    retries : int;
    backoff_base : int;
    backoff_cap : int;
  }

  let default =
    {
      drop = 0.;
      dup = 0.;
      delay = 0.;
      delay_max = 2;
      stall = 0.;
      stall_len = 1;
      burst_to_bad = 0.;
      burst_to_good = 0.5;
      burst_drop = 0.5;
      retries = 4;
      backoff_base = 1;
      backoff_cap = 8;
    }

  let zero_fault s =
    s.drop = 0. && s.dup = 0. && s.delay = 0. && s.stall = 0.
    && s.burst_to_bad = 0.

  let err fmt = Printf.ksprintf (fun m -> Error ("net spec: " ^ m)) fmt

  let prob key v =
    match float_of_string_opt v with
    | None -> err "%s: not a number (got %S)" key v
    | Some p when p < 0. || p > 1. ->
        err "%s: probability must be within [0,1] (got %s)" key v
    | Some p -> Ok p

  let count key ~least v =
    match int_of_string_opt v with
    | None -> err "%s: not an integer (got %S)" key v
    | Some k when k < least -> err "%s: must be >= %d (got %d)" key least k
    | Some k -> Ok k

  let of_string str =
    let ( let* ) = Result.bind in
    let field acc part =
      let* acc = acc in
      match String.index_opt part '=' with
      | None -> err "missing '=' in %S" part
      | Some i ->
          let key = String.sub part 0 i in
          let v = String.sub part (i + 1) (String.length part - i - 1) in
          let sub = String.split_on_char ':' v in
          (match (key, sub) with
          | "drop", [ p ] ->
              let* p = prob "drop" p in
              Ok { acc with drop = p }
          | "dup", [ p ] ->
              let* p = prob "dup" p in
              Ok { acc with dup = p }
          | "delay", [ p ] ->
              let* p = prob "delay" p in
              Ok { acc with delay = p }
          | "delay", [ p; m ] ->
              let* p = prob "delay" p in
              let* m = count "delay" ~least:1 m in
              Ok { acc with delay = p; delay_max = m }
          | "stall", [ p ] ->
              let* p = prob "stall" p in
              Ok { acc with stall = p }
          | "stall", [ p; l ] ->
              let* p = prob "stall" p in
              let* l = count "stall" ~least:1 l in
              Ok { acc with stall = p; stall_len = l }
          | "burst", [ gb; bg; pd ] ->
              let* gb = prob "burst" gb in
              let* bg = prob "burst" bg in
              let* pd = prob "burst" pd in
              Ok
                {
                  acc with
                  burst_to_bad = gb;
                  burst_to_good = bg;
                  burst_drop = pd;
                }
          | "retries", [ k ] ->
              let* k = count "retries" ~least:0 k in
              Ok { acc with retries = k }
          | "backoff", [ b ] ->
              let* b = count "backoff" ~least:1 b in
              Ok { acc with backoff_base = b; backoff_cap = max b acc.backoff_cap }
          | "backoff", [ b; c ] ->
              let* b = count "backoff" ~least:1 b in
              let* c = count "backoff" ~least:1 c in
              if c < b then err "backoff: cap %d < base %d" c b
              else Ok { acc with backoff_base = b; backoff_cap = c }
          | ("drop" | "dup" | "delay" | "stall" | "burst" | "retries" | "backoff"), _
            ->
              err "%s: wrong number of ':'-separated fields in %S" key v
          | _ -> err "unknown key %S" key)
    in
    match String.trim str with
    | "" -> err "empty spec"
    | s -> List.fold_left field (Ok default) (String.split_on_char ',' s)

  let fl x = Printf.sprintf "%.12g" x

  let to_string s =
    let b = Buffer.create 64 in
    let add fmt =
      Printf.ksprintf
        (fun part ->
          if Buffer.length b > 0 then Buffer.add_char b ',';
          Buffer.add_string b part)
        fmt
    in
    if s.drop > 0. then add "drop=%s" (fl s.drop);
    if s.dup > 0. then add "dup=%s" (fl s.dup);
    if s.delay > 0. then add "delay=%s:%d" (fl s.delay) s.delay_max;
    if s.stall > 0. then add "stall=%s:%d" (fl s.stall) s.stall_len;
    if s.burst_to_bad > 0. then
      add "burst=%s:%s:%s" (fl s.burst_to_bad) (fl s.burst_to_good)
        (fl s.burst_drop);
    if s.retries <> default.retries then add "retries=%d" s.retries;
    if s.backoff_base <> default.backoff_base || s.backoff_cap <> default.backoff_cap
    then add "backoff=%d:%d" s.backoff_base s.backoff_cap;
    if Buffer.length b = 0 then "drop=0" else Buffer.contents b

  let pp ppf s = Fmt.string ppf (to_string s)
end

(* ------------------------------------------------------------------ *)
(* Transport: fault models + ack/retransmit synchronizer.              *)
(* ------------------------------------------------------------------ *)

module Transport = struct
  type stats = {
    attempts : int;
    retransmits : int;
    drops : int;
    dups : int;
    delays : int;
    stalls : int;
    residual : int;
    residual_edges : (int * int * int) list;
    rounds : int;
    active_rounds : int;
    slots : int;
  }

  type t = {
    spec : Spec.t;
    n : int;
    mutable rand : Sim.Rand.t;
    stall_left : int array;  (** remaining stalled rounds per pid *)
    ge_bad : Bytes.t;  (** Gilbert–Elliott state per directed link, n*n *)
    mutable attempts : int;
    mutable retransmits : int;
    mutable drops : int;
    mutable dups : int;
    mutable delays : int;
    mutable stalls : int;
    mutable residual : int;
    mutable residual_rev : (int * int * int) list;
    mutable slots : int;  (** committed virtual sub-slots of past rounds *)
    mutable round_slots : int;  (** slowest exchange of the current round *)
    mutable rounds : int;
    mutable active_rounds : int;  (** rounds that carried >= 1 exchange *)
  }

  (* The transport's randomness rides a private stream salted off the run
     seed: it never touches the run's counted source, so the protocol's
     randomness-complexity metrics (rand_calls / rand_bits) are identical
     with and without a lossy link. *)
  let salt = 0x6e6574 (* "net" *)

  let stream seed = Sim.Rand.create ~seed:(Int64.of_int (seed + salt)) ()

  let create spec (cfg : Sim.Config.t) =
    let n = cfg.Sim.Config.n in
    {
      spec;
      n;
      rand = stream cfg.Sim.Config.seed;
      stall_left = Array.make n 0;
      ge_bad = Bytes.make (n * n) '\000';
      attempts = 0;
      retransmits = 0;
      drops = 0;
      dups = 0;
      delays = 0;
      stalls = 0;
      residual = 0;
      residual_rev = [];
      slots = 0;
      round_slots = 0;
      rounds = 0;
      active_rounds = 0;
    }

  let reset t ~seed =
    t.rand <- stream seed;
    Array.fill t.stall_left 0 t.n 0;
    Bytes.fill t.ge_bad 0 (t.n * t.n) '\000';
    t.attempts <- 0;
    t.retransmits <- 0;
    t.drops <- 0;
    t.dups <- 0;
    t.delays <- 0;
    t.stalls <- 0;
    t.residual <- 0;
    t.residual_rev <- [];
    t.slots <- 0;
    t.round_slots <- 0;
    t.rounds <- 0;
    t.active_rounds <- 0

  (* Zero-probability faults must not consume randomness, so a spec with all
     probabilities at 0 leaves the stream untouched and the run is
     draw-for-draw identical to a linkless one. *)
  let hit t p = p > 0. && Sim.Rand.float t.rand < p

  let begin_round t ~round =
    ignore round;
    t.slots <- t.slots + t.round_slots;
    if t.round_slots > 0 then t.active_rounds <- t.active_rounds + 1;
    t.round_slots <- 0;
    t.rounds <- t.rounds + 1;
    if t.spec.Spec.stall > 0. then
      for pid = 0 to t.n - 1 do
        if t.stall_left.(pid) > 0 then
          t.stall_left.(pid) <- t.stall_left.(pid) - 1
        else if hit t t.spec.Spec.stall then begin
          t.stall_left.(pid) <- t.spec.Spec.stall_len;
          t.stalls <- t.stalls + 1
        end
      done

  (* One directed leg (data or ack). Stalled endpoints lose the leg without
     a draw — a stall models the whole process going quiet, not the link.
     With a burst model configured, the per-link Gilbert–Elliott chain steps
     once per leg and picks the loss probability of the state it lands in. *)
  let leg_lost t ~src ~dst =
    if t.stall_left.(src) > 0 || t.stall_left.(dst) > 0 then true
    else
      let p =
        if t.spec.Spec.burst_to_bad > 0. then begin
          let idx = (src * t.n) + dst in
          let bad = Bytes.get t.ge_bad idx = '\001' in
          let bad' =
            if bad then not (hit t t.spec.Spec.burst_to_good)
            else hit t t.spec.Spec.burst_to_bad
          in
          Bytes.set t.ge_bad idx (if bad' then '\001' else '\000');
          if bad' then t.spec.Spec.burst_drop else t.spec.Spec.drop
        end
        else t.spec.Spec.drop
      in
      hit t p

  (* One synchronized (src, dst, round) exchange: data leg out, ack leg
     back, retransmit with capped exponential backoff until acked or the
     retry budget is spent. Virtual time: a fault-free exchange costs 2
     sub-slots (data + ack window); delays and backoffs add to that; the
     round's cost is the slowest exchange (all exchanges of a round proceed
     in parallel).

     Two-generals residue: when the receiver got a copy but every ack was
     lost, the exchange is still [Delivered] — the receiver's state is what
     the round abstraction cares about; the sender's uncertainty only costs
     it the retransmissions. [Lost] therefore means the receiver never got
     any copy, and only those residuals become induced omissions. *)
  let transmit t ~trace ~round ~src ~dst =
    let spec = t.spec in
    let emit ev =
      match trace with None -> () | Some s -> Trace.Sink.emit s ev
    in
    let backoff k =
      min spec.Spec.backoff_cap (spec.Spec.backoff_base lsl (k - 1))
    in
    let time = ref 0 in
    let got = ref false in
    let acked = ref false in
    let k = ref 0 in
    while (not !acked) && !k <= spec.Spec.retries do
      incr k;
      let a = !k in
      t.attempts <- t.attempts + 1;
      if a > 1 then begin
        t.retransmits <- t.retransmits + 1;
        let b = backoff (a - 1) in
        time := !time + b;
        emit (Trace.Event.Retransmit { round; src; dst; attempt = a; backoff = b })
      end;
      let late = ref 0 in
      let data_ok =
        if !got then true
        else if leg_lost t ~src ~dst then begin
          t.drops <- t.drops + 1;
          emit (Trace.Event.Drop { round; src; dst; attempt = a });
          false
        end
        else begin
          if hit t spec.Spec.dup then begin
            t.dups <- t.dups + 1;
            emit (Trace.Event.Dup { round; src; dst; copies = 2 })
          end;
          if hit t spec.Spec.delay then begin
            let slots = 1 + Sim.Rand.int_below t.rand spec.Spec.delay_max in
            t.delays <- t.delays + 1;
            late := slots;
            emit (Trace.Event.Delay { round; src; dst; slots })
          end;
          true
        end
      in
      (* data slot + ack window: the sender waits the full window before
         retrying, so a failed attempt costs the same 2 sub-slots. *)
      time := !time + 2 + !late;
      if data_ok then begin
        got := true;
        if leg_lost t ~src:dst ~dst:src then begin
          t.drops <- t.drops + 1;
          emit (Trace.Event.Drop { round; src = dst; dst = src; attempt = a })
        end
        else begin
          acked := true;
          (* only recovery is worth an event: a fault-free first-attempt
             exchange emits nothing, keeping zero-fault traces byte-identical
             to linkless runs *)
          if a > 1 then emit (Trace.Event.Ack { round; src; dst; attempt = a })
        end
      end
    done;
    if !time > t.round_slots then t.round_slots <- !time;
    if !got then Sim.Link_intf.Delivered
    else begin
      t.residual <- t.residual + 1;
      t.residual_rev <- (round, src, dst) :: t.residual_rev;
      emit (Trace.Event.Degrade { round; src; dst; attempts = !k });
      Sim.Link_intf.Lost
    end

  let stats t =
    {
      attempts = t.attempts;
      retransmits = t.retransmits;
      drops = t.drops;
      dups = t.dups;
      delays = t.delays;
      stalls = t.stalls;
      residual = t.residual;
      residual_edges = List.rev t.residual_rev;
      rounds = t.rounds;
      active_rounds =
        (t.active_rounds + if t.round_slots > 0 then 1 else 0);
      slots = t.slots + t.round_slots;
    }

  let spec t = t.spec

  let link t =
    {
      Sim.Link_intf.name = "net:" ^ Spec.to_string t.spec;
      reset = (fun ~seed -> reset t ~seed);
      begin_round = (fun ~round -> begin_round t ~round);
      transmit =
        (fun ~trace ~round ~src ~dst -> transmit t ~trace ~round ~src ~dst);
    }
end

(* ------------------------------------------------------------------ *)
(* Degradation: residual losses as an induced omission adversary.      *)
(* ------------------------------------------------------------------ *)

module Degradation = struct
  type t = {
    spec : Spec.t;
    attempts : int;
    retransmits : int;
    drops : int;
    dups : int;
    delays : int;
    stalls : int;
    residual : int;
    rounds : int;
    active_rounds : int;
    slots : int;
    induced_per_pid : int array;
    induced_faulty : int list;
    adversarial_faulty : int list;
    effective_faulty : int list;
    t_max : int;
    beyond_model : bool;
  }

  (* Smallest-effort vertex cover of the residual edges: repeatedly blame
     the endpoint touching the most uncovered edges (lowest pid on ties).
     A cover is the right attribution because in the omission model every
     lost message must have a faulty endpoint — the cover is the smallest
     induced fault set that explains all residual losses. *)
  let greedy_cover ~n edges =
    let deg = Array.make n 0 in
    List.iter
      (fun (s, d) ->
        deg.(s) <- deg.(s) + 1;
        deg.(d) <- deg.(d) + 1)
      edges;
    let rec go edges cover =
      if edges = [] then List.rev cover
      else begin
        let best = ref 0 in
        for p = 1 to n - 1 do
          if deg.(p) > deg.(!best) then best := p
        done;
        let b = !best in
        let keep, gone = List.partition (fun (s, d) -> s <> b && d <> b) edges in
        List.iter
          (fun (s, d) ->
            deg.(s) <- deg.(s) - 1;
            deg.(d) <- deg.(d) - 1)
          gone;
        go keep (b :: cover)
      end
    in
    go edges []

  let of_transport tr ~faulty ~t_max =
    let s = Transport.stats tr in
    let n = Array.length faulty in
    let induced_per_pid = Array.make n 0 in
    List.iter
      (fun (_, src, dst) ->
        induced_per_pid.(src) <- induced_per_pid.(src) + 1;
        induced_per_pid.(dst) <- induced_per_pid.(dst) + 1)
      s.Transport.residual_edges;
    (* residual edges with an adversary-faulty endpoint are already covered
       by the configured adversary's fault set; only clean-edge losses
       induce new faults *)
    let need_blame =
      List.filter_map
        (fun (_, src, dst) ->
          if faulty.(src) || faulty.(dst) then None else Some (src, dst))
        s.Transport.residual_edges
    in
    let induced_faulty = greedy_cover ~n need_blame in
    let adversarial_faulty =
      Array.to_list
        (Array.of_seq
           (Seq.filter_map
              (fun i -> if faulty.(i) then Some i else None)
              (Seq.init n Fun.id)))
    in
    let effective_faulty =
      List.sort_uniq compare (adversarial_faulty @ induced_faulty)
    in
    {
      spec = Transport.spec tr;
      attempts = s.Transport.attempts;
      retransmits = s.Transport.retransmits;
      drops = s.Transport.drops;
      dups = s.Transport.dups;
      delays = s.Transport.delays;
      stalls = s.Transport.stalls;
      residual = s.Transport.residual;
      rounds = s.Transport.rounds;
      active_rounds = s.Transport.active_rounds;
      slots = s.Transport.slots;
      induced_per_pid;
      induced_faulty;
      adversarial_faulty;
      effective_faulty;
      t_max;
      beyond_model = List.length effective_faulty > t_max;
    }

  (* Agreement over the processes the reduction still vouches for: a pid in
     the effective fault set (adversarial or induced) is allowed anything,
     exactly as in the omission model. *)
  let agreed_decision d (o : Sim.Engine.outcome) =
    let n = Array.length o.Sim.Engine.decisions in
    let eff = Array.make n false in
    List.iter (fun p -> if p < n then eff.(p) <- true) d.effective_faulty;
    let result = ref None in
    let ok = ref true in
    let seen = ref false in
    Array.iteri
      (fun i dec ->
        if not eff.(i) then
          match dec with
          | None -> ok := false
          | Some v ->
              if !seen then (if !result <> Some v then ok := false)
              else begin
                seen := true;
                result := Some v
              end)
      o.Sim.Engine.decisions;
    if !ok then !result else None

  let int_list_json l =
    "[" ^ String.concat "," (List.map string_of_int l) ^ "]"

  let to_json d =
    Printf.sprintf
      {|{"spec":"%s","attempts":%d,"retransmits":%d,"drops":%d,"dups":%d,"delays":%d,"stalls":%d,"residual":%d,"rounds":%d,"active_rounds":%d,"slots":%d,"induced_faulty":%s,"adversarial_faulty":%s,"effective_faulty":%s,"t_max":%d,"beyond_model":%b}|}
      (Spec.to_string d.spec) d.attempts d.retransmits d.drops d.dups d.delays
      d.stalls d.residual d.rounds d.active_rounds d.slots
      (int_list_json d.induced_faulty)
      (int_list_json d.adversarial_faulty)
      (int_list_json d.effective_faulty)
      d.t_max d.beyond_model

  let pp ppf d =
    Fmt.pf ppf
      "net: attempts=%d retransmits=%d residual=%d induced=%a effective=%d/%d \
       t=%d%s slots=%d rounds=%d"
      d.attempts d.retransmits d.residual
      Fmt.(brackets (list ~sep:comma int))
      d.induced_faulty
      (List.length d.effective_faulty)
      (match d.induced_per_pid with a -> Array.length a)
      d.t_max
      (if d.beyond_model then " BEYOND MODEL" else "")
      d.slots d.rounds
end
