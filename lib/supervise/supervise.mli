(** Run supervision and fault containment for sweeps.

    The experiment campaigns in [bench/] and the fuzz soak run thousands of
    independent simulator tasks; at that scale stragglers and failures are
    expected, and one pathological run must not discard a whole campaign's
    work. This layer wraps {!Exec} and {!Sim.Engine.run} with:

    - {b watchdog budgets} ({!Budget}): every supervised task gets a
      wall-clock timeout plus round / message / random-bit ceilings — the
      [Config.max_rounds] semantics extended to all the paper's metrics. A
      breached budget yields a structured {!failure_kind} result, never an
      exception.
    - {b failure quarantine} ({!map}): every task runs to completion even
      when some fail; each failure carries the exception text, backtrace,
      seed and a replay command, so sweeps degrade to partial results plus
      a quarantine report instead of aborting.
    - {b checkpoint/resume} ({!Journal}): a crash-safe, corrupt-tolerant
      journal of completed work keyed by (experiment, point, seed);
      interrupted campaigns resume bit-identically because every task is a
      pure function of its seed.
    - {b chaos mode} ({!Chaos}): seeded fault injection — exceptions,
      artificial stragglers, corrupted journal rows — used by the test
      suite to prove the containment claims above. *)

(** Watchdog budgets for a supervised task. *)
module Budget : sig
  type t = {
    wall_s : float option;  (** wall-clock ceiling, seconds *)
    max_rounds : int option;  (** engine rounds ceiling (inclusive) *)
    max_messages : int option;  (** total messages ceiling (inclusive) *)
    max_rand_bits : int option;  (** total random bits ceiling (inclusive) *)
  }

  val unlimited : t

  val make :
    ?wall_s:float ->
    ?max_rounds:int ->
    ?max_messages:int ->
    ?max_rand_bits:int ->
    unit ->
    t

  val is_unlimited : t -> bool
  val pp : Format.formatter -> t -> unit
end

type breach = {
  metric : string;  (** ["rounds"], ["messages"] or ["rand_bits"] *)
  limit : float;
  actual : float;
  at_round : int;  (** round at which the watchdog tripped *)
}

type failure_kind =
  | Crashed of { exn_text : string; backtrace : string }
  | Timeout of { limit_s : float; elapsed_s : float }
  | Budget_exceeded of breach
  | Degraded of { induced : int; adversarial : int; t_max : int; residual : int }
      (** a lossy-link run left the omission model: the transport's induced
          faults plus the adversary's exceeded [t_max] (see
          [Net.Degradation] and {!run_net}) *)

exception Breach of failure_kind
(** Tasks running under {!map} may raise [Breach kind] to report a
    structured failure — {!run} errors are typically re-raised this way so
    the quarantine record keeps the precise kind instead of a generic
    [Crashed]. *)

exception Breach_traced of failure_kind * string list
(** Like {!Breach}, carrying the run's last-K-rounds trace tail as JSONL
    event lines ({!Trace.Tail.lines}); {!map} stores them in
    [failure.trace] so every quarantine record ships with its tail. *)

(** What a task is, for the quarantine report: a human label, the seed it
    is a pure function of, and a shell one-liner that reproduces it. *)
type descriptor = {
  d_label : string;
  d_seed : int option;
  d_replay : string option;
}

type failure = {
  index : int;  (** task index within the supervised batch *)
  label : string;
  seed : int option;
  replay : string option;  (** reproduction command, if the caller gave one *)
  kind : failure_kind;
  elapsed_s : float;
  trace : string list;
      (** last-K-rounds trace tail as JSONL event lines, when the task
          raised {!Breach_traced}; empty otherwise *)
}

val current_label : unit -> string option
(** Label (descriptor [d_label]) of the task the calling domain is
    currently running under {!map}, if any — lets code deep inside a task
    (e.g. the trace-file writer in [bench_util]) name its output after the
    sweep point. *)

val pp_failure_kind : Format.formatter -> failure_kind -> unit
val pp_failure : Format.formatter -> failure -> unit

val failure_json : failure -> string
(** The quarantine record as a single JSON-lines object (no trailing
    newline). Schema: [{"kind":"quarantine","index":i,"label":s,
    "seed":i?,"replay":s?,
    "failure":"crashed"|"timeout"|"budget_exceeded"|"degraded",
    ...kind-specific fields...,"elapsed_s":f}]. *)

val run :
  ?on_round:(round:int -> Sim.View.envelope array -> unit) ->
  ?trace:Trace.Sink.t ->
  ?link:Sim.Link_intf.t ->
  ?budget:Budget.t ->
  Sim.Protocol_intf.t ->
  Sim.Config.t ->
  adversary:Sim.Adversary_intf.t ->
  inputs:int array ->
  (Sim.Engine.outcome, failure_kind * Sim.Engine.outcome option) result
(** {!Sim.Engine.run} under a watchdog. The budget is checked after every
    round; a breached ceiling stops the engine (same semantics as
    [max_rounds]) and returns [Error (kind, Some partial_outcome)] with the
    partial outcome's counters intact — unless the run had already decided,
    which counts as [Ok]. A raising protocol or adversary (including
    {!Sim.Engine.Illegal_plan}) returns [Error (Crashed _, None)] instead
    of propagating. A run that merely hits [cfg.max_rounds] undecided is
    still [Ok]: not deciding is a measurement, not a supervision failure. *)

val run_any :
  ?on_round:(round:int -> Sim.View.envelope array -> unit) ->
  ?trace:Trace.Sink.t ->
  ?link:Sim.Link_intf.t ->
  ?budget:Budget.t ->
  Sim.Protocol_intf.any ->
  Sim.Config.t ->
  adversary:Sim.Adversary_intf.t ->
  inputs:int array ->
  (Sim.Engine.outcome, failure_kind * Sim.Engine.outcome option) result
(** {!run} generalised over the engine path: [Buffered] protocols run on
    the allocation-free {!Sim.Engine.run_buffered} path, [Legacy] ones
    through the list-based shim. [link] plugs a lossy transport into the
    delivery loop (see {!Sim.Link_intf}); prefer {!run_net}, which also
    computes the degradation report. *)

val run_net :
  ?on_round:(round:int -> Sim.View.envelope array -> unit) ->
  ?trace:Trace.Sink.t ->
  ?budget:Budget.t ->
  net:Net.Spec.t ->
  Sim.Protocol_intf.any ->
  Sim.Config.t ->
  adversary:Sim.Adversary_intf.t ->
  inputs:int array ->
  ( Sim.Engine.outcome * Net.Degradation.t,
    failure_kind * (Sim.Engine.outcome * Net.Degradation.t) option )
  result
(** {!run_any} over a lossy link described by [net]: builds the transport,
    runs, then composes the transport's residual losses with the
    adversary's fault set into a [Net.Degradation] report. When the
    effective fault set exceeds [cfg.t_max] the run is beyond the omission
    model: the result is [Error (Degraded _, Some (outcome, report))] — the
    outcome is preserved for forensics but must not be reported as a
    consensus result. Judge agreement of an [Ok] run with
    [Net.Degradation.agreed_decision], which re-bases the check on the
    effective fault set. *)

val map :
  ?jobs:int ->
  ?budget:Budget.t ->
  ?describe:(int -> 'a -> descriptor) ->
  ('a -> 'b) ->
  'a array ->
  ('b, failure) result array
(** Quarantining {!Exec.mapi}: every task is attempted, failures are
    contained. A task that raises yields [Error] with kind [Crashed] (or
    the precise kind if it raised {!Breach}); a task that completes but
    overran [budget.wall_s] yields [Error] with kind [Timeout]. Since no
    task ever raises into the pool, {!Exec}'s early-cancel fast path never
    engages — results land in input order with the same determinism
    contract as {!Exec.map}. Wall-clock enforcement is cooperative: the
    elapsed time is checked when the task returns (and, for engine tasks
    run through {!run}, at every round boundary). *)

val map_list :
  ?jobs:int ->
  ?budget:Budget.t ->
  ?describe:(int -> 'a -> descriptor) ->
  ('a -> 'b) ->
  'a list ->
  ('b, failure) result list

val protect :
  ?budget:Budget.t ->
  ?descriptor:descriptor ->
  (unit -> 'b) ->
  ('b, failure) result
(** {!map} over a single task. *)

(** Crash-safe checkpoint journal: one [key TAB payload] line per completed
    unit of work, flushed as it is written. Payload encoding/decoding is
    the caller's (decoders should reject truncated rows); corrupt or
    truncated lines are skipped and counted on load, so a row the chaos
    suite (or a mid-write kill) mangles costs exactly one recomputed task,
    never the campaign. Duplicate keys resolve to the latest record. *)
module Journal : sig
  type t

  val open_ : path:string -> resume:bool -> t
  (** [resume:false] truncates any existing journal and starts fresh;
      [resume:true] loads the surviving rows first, then appends. *)

  val lookup : t -> string -> string option
  val record : t -> key:string -> string -> unit
  (** Appends and flushes. Raises [Invalid_argument] if key or payload
      contain tabs or newlines. *)

  val entries : t -> int

  val corrupt : t -> int
  (** Corrupt lines skipped on load. *)

  val path : t -> string
  val close : t -> unit
end

(** Seeded fault injection, for proving the supervision layer contains
    what it claims to contain. *)
module Chaos : sig
  exception Injected of string

  val pick : seed:int -> n:int -> k:int -> int list
  (** [k] distinct victim indices in [0, n), drawn by a seeded shuffle —
      deterministic, sorted. *)

  type t

  val make :
    ?crash:int list ->
    ?straggle:int list ->
    ?straggle_s:float ->
    unit ->
    t
  (** A chaos plan over task indices: tasks in [crash] raise {!Injected};
      tasks in [straggle] sleep [straggle_s] (default 0.2 s) before
      running. Membership is precomputed into byte masks here, so {!wrap}
      is O(1) per task regardless of victim-list length. *)

  val wrap : t -> (int -> 'a -> 'b) -> int -> 'a -> 'b
  (** Apply the plan to an indexed task function (the shape {!Exec.mapi}
      and the [describe]-aware sweeps use). *)

  val protocol :
    ?pid:int -> crash_round:int -> Sim.Protocol_intf.t -> Sim.Protocol_intf.t
  (** Wrap a protocol so that [step] raises {!Injected} at [crash_round]
      (for process [pid] only, if given) — a pathological protocol bug on
      demand, used to test {!run}'s containment. *)

  val corrupt_row : string
  (** A line guaranteed to parse as neither a journal row nor JSON. *)

  val corrupt_journal : path:string -> unit
  (** Append {!corrupt_row} to a journal file — simulates a torn write. *)
end

module Cached : sig
  (** Content-addressed caching layer over {!run_any}, {!run_net} and
      {!map}. [key] is the caller's canonical serialization of
      everything that determines the result (a [Run_spec] string for
      protocol runs, an experiment point string for bench tasks); the
      store addresses it under [digest(fingerprint, key)], so a code
      fingerprint bump invalidates everything at once.

      Only successes are cached. Failures, budget breaches and degraded
      runs re-run (and re-report) every time: a quarantine served from a
      cache would hide a flaky environment. Hits emit a
      {!Trace.Event.Cache_hit} provenance event into the trace sink, if
      one is given, and never invoke [on_round]. *)

  val outcome_to_string : Sim.Engine.outcome -> string
  val outcome_of_string : string -> Sim.Engine.outcome option

  val net_to_string : Sim.Engine.outcome * Net.Degradation.t -> string
  val net_of_string : string -> (Sim.Engine.outcome * Net.Degradation.t) option

  val run_any :
    ?on_round:(round:int -> Sim.View.envelope array -> unit) ->
    ?trace:Trace.Sink.t ->
    ?link:Sim.Link_intf.t ->
    ?budget:Budget.t ->
    ?store:Cache.Store.t ->
    key:string ->
    Sim.Protocol_intf.any ->
    Sim.Config.t ->
    adversary:Sim.Adversary_intf.t ->
    inputs:int array ->
    (Sim.Engine.outcome, failure_kind * Sim.Engine.outcome option) result

  val run_net :
    ?on_round:(round:int -> Sim.View.envelope array -> unit) ->
    ?trace:Trace.Sink.t ->
    ?budget:Budget.t ->
    ?store:Cache.Store.t ->
    key:string ->
    net:Net.Spec.t ->
    Sim.Protocol_intf.any ->
    Sim.Config.t ->
    adversary:Sim.Adversary_intf.t ->
    inputs:int array ->
    ( Sim.Engine.outcome * Net.Degradation.t,
      failure_kind * (Sim.Engine.outcome * Net.Degradation.t) option )
    result

  val map :
    ?jobs:int ->
    ?budget:Budget.t ->
    ?describe:(int -> 'a -> descriptor) ->
    ?store:Cache.Store.t ->
    key:('a -> string) ->
    codec:(('b -> string) * (string -> 'b option)) ->
    ('a -> 'b) ->
    'a array ->
    ('b, failure) result array
  (** Cache-aware {!map}: each element is looked up first; only misses
      are dispatched to the domain pool; fresh successes are written
      back. Results land in input order, and [describe] sees original
      indices, so the quarantine/replay contract is unchanged. *)
end
