(* Run supervision and fault containment: watchdog budgets, quarantining
   map, checkpoint journal, chaos injection. See supervise.mli. *)

module Budget = struct
  type t = {
    wall_s : float option;
    max_rounds : int option;
    max_messages : int option;
    max_rand_bits : int option;
  }

  let unlimited =
    { wall_s = None; max_rounds = None; max_messages = None; max_rand_bits = None }

  let make ?wall_s ?max_rounds ?max_messages ?max_rand_bits () =
    (match wall_s with
    | Some w when w <= 0. -> invalid_arg "Budget.make: wall_s must be positive"
    | _ -> ());
    let pos name = function
      | Some l when l <= 0 ->
          invalid_arg (Printf.sprintf "Budget.make: %s must be positive" name)
      | _ -> ()
    in
    pos "max_rounds" max_rounds;
    pos "max_messages" max_messages;
    pos "max_rand_bits" max_rand_bits;
    { wall_s; max_rounds; max_messages; max_rand_bits }

  let is_unlimited b = b = unlimited

  let pp ppf b =
    let item name to_s = function
      | None -> None
      | Some v -> Some (Printf.sprintf "%s=%s" name (to_s v))
    in
    let items =
      List.filter_map Fun.id
        [
          item "wall_s" (Printf.sprintf "%g") b.wall_s;
          item "rounds" string_of_int b.max_rounds;
          item "messages" string_of_int b.max_messages;
          item "rand_bits" string_of_int b.max_rand_bits;
        ]
    in
    match items with
    | [] -> Fmt.pf ppf "unlimited"
    | l -> Fmt.pf ppf "%s" (String.concat " " l)
end

type breach = { metric : string; limit : float; actual : float; at_round : int }

type failure_kind =
  | Crashed of { exn_text : string; backtrace : string }
  | Timeout of { limit_s : float; elapsed_s : float }
  | Budget_exceeded of breach
  | Degraded of { induced : int; adversarial : int; t_max : int; residual : int }

exception Breach of failure_kind
exception Breach_traced of failure_kind * string list

type descriptor = {
  d_label : string;
  d_seed : int option;
  d_replay : string option;
}

type failure = {
  index : int;
  label : string;
  seed : int option;
  replay : string option;
  kind : failure_kind;
  elapsed_s : float;
  trace : string list;
}

(* Label of the task currently running under [map], per domain — the trace
   layer in bench_util uses it to name per-run trace files from inside
   worker tasks. *)
let label_key : string option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let current_label () = Domain.DLS.get label_key

let pp_failure_kind ppf = function
  | Crashed { exn_text; _ } -> Fmt.pf ppf "crashed: %s" exn_text
  | Timeout { limit_s; elapsed_s } ->
      Fmt.pf ppf "timeout: %.3f s elapsed (budget %.3f s)" elapsed_s limit_s
  | Budget_exceeded { metric; limit; actual; at_round } ->
      Fmt.pf ppf "budget exceeded: %s = %.0f > %.0f at round %d" metric actual
        limit at_round
  | Degraded { induced; adversarial; t_max; residual } ->
      Fmt.pf ppf
        "degraded beyond model: %d induced + %d adversarial faults > t=%d (%d \
         residual losses)"
        induced adversarial t_max residual

let pp_failure ppf f =
  Fmt.pf ppf "[%d] %s: %a" f.index f.label pp_failure_kind f.kind;
  match f.replay with
  | Some cmd -> Fmt.pf ppf "@.    replay: %s" cmd
  | None -> ()

(* --- JSON-lines quarantine record --- *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let failure_json f =
  let b = Buffer.create 160 in
  let field k v = Buffer.add_string b (Printf.sprintf ",\"%s\":%s" k v) in
  let str k s = field k (Printf.sprintf "\"%s\"" (json_escape s)) in
  Buffer.add_string b
    (Printf.sprintf "{\"kind\":\"quarantine\",\"index\":%d" f.index);
  str "label" f.label;
  (match f.seed with Some s -> field "seed" (string_of_int s) | None -> ());
  (match f.replay with Some r -> str "replay" r | None -> ());
  (match f.kind with
  | Crashed { exn_text; backtrace } ->
      str "failure" "crashed";
      str "exn" exn_text;
      if backtrace <> "" then str "backtrace" backtrace
  | Timeout { limit_s; elapsed_s } ->
      str "failure" "timeout";
      field "limit_s" (Printf.sprintf "%.3f" limit_s);
      field "timeout_elapsed_s" (Printf.sprintf "%.3f" elapsed_s)
  | Budget_exceeded { metric; limit; actual; at_round } ->
      str "failure" "budget_exceeded";
      str "metric" metric;
      field "limit" (Printf.sprintf "%.0f" limit);
      field "actual" (Printf.sprintf "%.0f" actual);
      field "at_round" (string_of_int at_round)
  | Degraded { induced; adversarial; t_max; residual } ->
      str "failure" "degraded";
      field "induced_faults" (string_of_int induced);
      field "adversarial_faults" (string_of_int adversarial);
      field "t_max" (string_of_int t_max);
      field "residual_losses" (string_of_int residual));
  field "elapsed_s" (Printf.sprintf "%.3f" f.elapsed_s);
  (* the trace tail's lines are already JSON objects (Trace.Event.to_json) *)
  if f.trace <> [] then field "trace" ("[" ^ String.concat "," f.trace ^ "]");
  Buffer.add_char b '}';
  Buffer.contents b

(* --- supervised engine run --- *)

let run_any ?on_round ?trace ?link ?(budget = Budget.unlimited) proto cfg
    ~adversary ~inputs =
  let started = Unix.gettimeofday () in
  let tripped = ref None in
  let stop (p : Sim.Engine.progress) =
    let hit metric limit actual =
      if !tripped = None then
        tripped := Some { metric; limit; actual; at_round = p.p_round }
    in
    (match budget.Budget.max_rounds with
    | Some l when p.p_round >= l -> hit "rounds" (float_of_int l) (float_of_int p.p_round)
    | _ -> ());
    (match budget.Budget.max_messages with
    | Some l when p.p_messages > l ->
        hit "messages" (float_of_int l) (float_of_int p.p_messages)
    | _ -> ());
    (match budget.Budget.max_rand_bits with
    | Some l when p.p_rand_bits > l ->
        hit "rand_bits" (float_of_int l) (float_of_int p.p_rand_bits)
    | _ -> ());
    (match budget.Budget.wall_s with
    | Some l ->
        let elapsed = Unix.gettimeofday () -. started in
        if elapsed > l then hit "wall_s" l elapsed
    | None -> ());
    !tripped <> None
  in
  let stop = if Budget.is_unlimited budget then None else Some stop in
  match
    Sim.Engine.run_any ?on_round ?stop ?trace ?link proto cfg ~adversary
      ~inputs
  with
  | o -> (
      match !tripped with
      | Some b when o.Sim.Engine.decided_round = None ->
          let kind =
            if b.metric = "wall_s" then
              Timeout { limit_s = b.limit; elapsed_s = b.actual }
            else Budget_exceeded b
          in
          Error (kind, Some o)
      | _ -> Ok o)
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      Error
        ( Crashed
            {
              exn_text = Printexc.to_string e;
              backtrace = Printexc.raw_backtrace_to_string bt;
            },
          None )

let run ?on_round ?trace ?link ?budget proto cfg ~adversary ~inputs =
  run_any ?on_round ?trace ?link ?budget (Sim.Protocol_intf.Legacy proto) cfg
    ~adversary ~inputs

(* --- supervised run over a lossy link --- *)

let run_net ?on_round ?trace ?budget ~net proto cfg ~adversary ~inputs =
  let tr = Net.Transport.create net cfg in
  let link = Net.Transport.link tr in
  let report (o : Sim.Engine.outcome) =
    Net.Degradation.of_transport tr ~faulty:o.Sim.Engine.faulty
      ~t_max:cfg.Sim.Config.t_max
  in
  match run_any ?on_round ?trace ~link ?budget proto cfg ~adversary ~inputs with
  | Ok o ->
      let d = report o in
      if d.Net.Degradation.beyond_model then
        (* the run left the omission model: report degradation, never a
           consensus result computed over too many faults *)
        Error
          ( Degraded
              {
                induced = List.length d.Net.Degradation.induced_faulty;
                adversarial = List.length d.Net.Degradation.adversarial_faulty;
                t_max = cfg.Sim.Config.t_max;
                residual = d.Net.Degradation.residual;
              },
            Some (o, d) )
      else Ok (o, d)
  | Error (kind, partial) ->
      Error (kind, Option.map (fun o -> (o, report o)) partial)

(* --- quarantining map --- *)

let map ?jobs ?(budget = Budget.unlimited) ?describe f xs =
  let describe i x =
    match describe with
    | Some d -> d i x
    | None -> { d_label = string_of_int i; d_seed = None; d_replay = None }
  in
  Exec.mapi ?jobs
    (fun i x ->
      let d = describe i x in
      Domain.DLS.set label_key (Some d.d_label);
      let t0 = Unix.gettimeofday () in
      let fail ?(trace = []) kind =
        Error
          {
            index = i;
            label = d.d_label;
            seed = d.d_seed;
            replay = d.d_replay;
            kind;
            elapsed_s = Unix.gettimeofday () -. t0;
            trace;
          }
      in
      let result =
        match f x with
        | v -> (
            match budget.Budget.wall_s with
            | Some l ->
                let elapsed = Unix.gettimeofday () -. t0 in
                if elapsed > l then
                  fail (Timeout { limit_s = l; elapsed_s = elapsed })
                else Ok v
            | None -> Ok v)
        | exception Breach kind -> fail kind
        | exception Breach_traced (kind, trace) -> fail ~trace kind
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            fail
              (Crashed
                 {
                   exn_text = Printexc.to_string e;
                   backtrace = Printexc.raw_backtrace_to_string bt;
                 })
      in
      Domain.DLS.set label_key None;
      result)
    xs

let map_list ?jobs ?budget ?describe f xs =
  Array.to_list (map ?jobs ?budget ?describe f (Array.of_list xs))

let protect ?budget ?descriptor f =
  let describe =
    match descriptor with Some d -> Some (fun _ () -> d) | None -> None
  in
  (map ~jobs:1 ?budget ?describe (fun () -> f ()) [| () |]).(0)

(* --- checkpoint journal --- *)

module Journal = struct
  type t = {
    path : string;
    tbl : (string, string) Hashtbl.t;
    mutable ch : out_channel option;
    mutable corrupt : int;
  }

  let well_formed s =
    not (String.exists (fun c -> c = '\t' || c = '\n' || c = '\r') s)

  let load t =
    match open_in t.path with
    | exception Sys_error _ -> ()
    | ic ->
        let rec go () =
          match input_line ic with
          | exception End_of_file -> close_in ic
          | line ->
              (match String.index_opt line '\t' with
              | Some k when k > 0 && String.index_from_opt line (k + 1) '\t' = None
                ->
                  Hashtbl.replace t.tbl (String.sub line 0 k)
                    (String.sub line (k + 1) (String.length line - k - 1))
              | _ -> if line <> "" then t.corrupt <- t.corrupt + 1);
              go ()
        in
        go ()

  let open_ ~path ~resume =
    let t = { path; tbl = Hashtbl.create 256; ch = None; corrupt = 0 } in
    if resume then load t;
    let flags =
      if resume then [ Open_append; Open_creat; Open_wronly ]
      else [ Open_trunc; Open_creat; Open_wronly ]
    in
    t.ch <- Some (open_out_gen flags 0o644 path);
    t

  let lookup t key = Hashtbl.find_opt t.tbl key

  let record t ~key payload =
    if not (well_formed key && well_formed payload) then
      invalid_arg "Journal.record: tabs/newlines not allowed in key or payload";
    Hashtbl.replace t.tbl key payload;
    match t.ch with
    | None -> ()
    | Some ch ->
        output_string ch key;
        output_char ch '\t';
        output_string ch payload;
        output_char ch '\n';
        (* flush per row: a kill costs at most the row being written, and
           the loader skips that torn line *)
        flush ch

  let entries t = Hashtbl.length t.tbl
  let corrupt t = t.corrupt
  let path t = t.path

  let close t =
    match t.ch with
    | None -> ()
    | Some ch ->
        close_out ch;
        t.ch <- None
end

(* --- chaos injection --- *)

module Chaos = struct
  exception Injected of string

  let () =
    Printexc.register_printer (function
      | Injected m -> Some (Printf.sprintf "Supervise.Chaos.Injected(%s)" m)
      | _ -> None)

  let pick ~seed ~n ~k =
    if k < 0 || k > n then invalid_arg "Chaos.pick: need 0 <= k <= n";
    let idx = Array.init n (fun i -> i) in
    let rand = Sim.Rand.create ~seed:(Int64.of_int seed) () in
    Sim.Rand.shuffle rand idx;
    List.sort compare (Array.to_list (Array.sub idx 0 k))

  type t = { crash_mask : Bytes.t; straggle_mask : Bytes.t; straggle_s : float }

  (* Membership is precomputed into a byte mask at plan-construction time:
     [wrap] runs once per task of a sweep, and a [List.mem] scan per task
     over large victim lists is O(tasks * victims). *)
  let mask_of l =
    let hi = List.fold_left (fun a i -> max a i) (-1) l in
    let m = Bytes.make (hi + 1) '\000' in
    List.iter (fun i -> if i >= 0 then Bytes.set m i '\001') l;
    m

  let tagged m i = i >= 0 && i < Bytes.length m && Bytes.get m i = '\001'

  let make ?(crash = []) ?(straggle = []) ?(straggle_s = 0.2) () =
    {
      crash_mask = mask_of crash;
      straggle_mask = mask_of straggle;
      straggle_s;
    }

  let wrap t f i x =
    if tagged t.crash_mask i then
      raise (Injected (Printf.sprintf "injected task failure at index %d" i));
    if tagged t.straggle_mask i then Unix.sleepf t.straggle_s;
    f i x

  let protocol ?pid ~crash_round (module P : Sim.Protocol_intf.S) :
      Sim.Protocol_intf.t =
    (module struct
      type state = P.state * int  (* pid riding along for the pid filter *)
      type msg = P.msg

      let name = P.name ^ "+chaos"
      let init cfg ~pid ~input = (P.init cfg ~pid ~input, pid)

      let step cfg (st, me) ~round ~inbox ~rand =
        if round = crash_round && (pid = None || pid = Some me) then
          raise
            (Injected
               (Printf.sprintf "injected protocol crash at round %d" round));
        let st', out = P.step cfg st ~round ~inbox ~rand in
        ((st', me), out)

      let observe (st, _) = P.observe st
      let msg_bits = P.msg_bits
      let msg_hint = P.msg_hint
    end)

  let corrupt_row = "\xffGARBAGE corrupted row \xfe{not json, no tab payload"

  let corrupt_journal ~path =
    let ch = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
    output_string ch corrupt_row;
    (* no trailing newline: simulates a torn write mid-row *)
    close_out ch
end

(* ------------------------------------------------------------------ *)
(* Content-addressed caching layer over run_any / run_net / map.       *)
(* ------------------------------------------------------------------ *)

module Cached = struct
  (* Engine-outcome codec. Tokens are space-separated; the two array
     fields come first and use "." when empty so the token count is
     fixed. Decisions are comma-joined with "-" for None; faulty is a
     0/1 character string. *)
  let outcome_to_string (o : Sim.Engine.outcome) =
    let dec =
      if Array.length o.Sim.Engine.decisions = 0 then "."
      else
        String.concat ","
          (Array.to_list
             (Array.map
                (function None -> "-" | Some v -> string_of_int v)
                o.Sim.Engine.decisions))
    in
    let fau =
      if Array.length o.Sim.Engine.faulty = 0 then "."
      else
        String.init
          (Array.length o.Sim.Engine.faulty)
          (fun i -> if o.Sim.Engine.faulty.(i) then '1' else '0')
    in
    Printf.sprintf "%s %s %d %s %d %d %d %d %d %d" dec fau
      o.Sim.Engine.rounds_total
      (match o.Sim.Engine.decided_round with
      | None -> "-"
      | Some r -> string_of_int r)
      o.Sim.Engine.messages_sent o.Sim.Engine.bits_sent
      o.Sim.Engine.messages_omitted o.Sim.Engine.rand_calls
      o.Sim.Engine.rand_bits o.Sim.Engine.faults_used

  let outcome_of_string s =
    match String.split_on_char ' ' s with
    | [ dec; fau; rt; dr; ms; bs; mo; rc; rb; fu ] -> (
        try
          let decisions =
            if dec = "." then [||]
            else
              Array.of_list
                (List.map
                   (function "-" -> None | v -> Some (int_of_string v))
                   (String.split_on_char ',' dec))
          in
          let faulty =
            if fau = "." then [||]
            else
              Array.init (String.length fau) (fun i ->
                  match fau.[i] with
                  | '1' -> true
                  | '0' -> false
                  | _ -> failwith "faulty")
          in
          Some
            {
              Sim.Engine.decisions;
              faulty;
              rounds_total = int_of_string rt;
              decided_round =
                (if dr = "-" then None else Some (int_of_string dr));
              messages_sent = int_of_string ms;
              bits_sent = int_of_string bs;
              messages_omitted = int_of_string mo;
              rand_calls = int_of_string rc;
              rand_bits = int_of_string rb;
              faults_used = int_of_string fu;
            }
        with _ -> None)
    | _ -> None

  let ints_to_token = function
    | [] -> "."
    | l -> String.concat "," (List.map string_of_int l)

  let ints_of_token = function
    | "." -> []
    | s -> List.map int_of_string (String.split_on_char ',' s)

  (* Degradation codec: Net.Spec.to_string is canonical (round-trips
     through of_string) and contains no spaces, so it is a safe leading
     token. *)
  let degradation_to_string (d : Net.Degradation.t) =
    Printf.sprintf "%s %d %d %d %d %d %d %d %d %d %d %s %s %s %s %d %b"
      (Net.Spec.to_string d.Net.Degradation.spec)
      d.Net.Degradation.attempts d.Net.Degradation.retransmits
      d.Net.Degradation.drops d.Net.Degradation.dups d.Net.Degradation.delays
      d.Net.Degradation.stalls d.Net.Degradation.residual
      d.Net.Degradation.rounds d.Net.Degradation.active_rounds
      d.Net.Degradation.slots
      (ints_to_token (Array.to_list d.Net.Degradation.induced_per_pid))
      (ints_to_token d.Net.Degradation.induced_faulty)
      (ints_to_token d.Net.Degradation.adversarial_faulty)
      (ints_to_token d.Net.Degradation.effective_faulty)
      d.Net.Degradation.t_max d.Net.Degradation.beyond_model

  let degradation_of_string s =
    match String.split_on_char ' ' s with
    | [ spec; at; rt; dr; du; de; st; rs; ro; ar; sl; ipp; ind; adv; eff; tm;
        bm ] -> (
        match Net.Spec.of_string spec with
        | Error _ -> None
        | Ok spec -> (
            try
              Some
                {
                  Net.Degradation.spec;
                  attempts = int_of_string at;
                  retransmits = int_of_string rt;
                  drops = int_of_string dr;
                  dups = int_of_string du;
                  delays = int_of_string de;
                  stalls = int_of_string st;
                  residual = int_of_string rs;
                  rounds = int_of_string ro;
                  active_rounds = int_of_string ar;
                  slots = int_of_string sl;
                  induced_per_pid = Array.of_list (ints_of_token ipp);
                  induced_faulty = ints_of_token ind;
                  adversarial_faulty = ints_of_token adv;
                  effective_faulty = ints_of_token eff;
                  t_max = int_of_string tm;
                  beyond_model = bool_of_string bm;
                }
            with _ -> None))
    | _ -> None

  let net_to_string (o, d) =
    outcome_to_string o ^ "\n" ^ degradation_to_string d

  let net_of_string s =
    match String.index_opt s '\n' with
    | None -> None
    | Some i -> (
        match
          ( outcome_of_string (String.sub s 0 i),
            degradation_of_string
              (String.sub s (i + 1) (String.length s - i - 1)) )
        with
        | Some o, Some d -> Some (o, d)
        | _ -> None)

  let emit_hit trace st key =
    match trace with
    | None -> ()
    | Some sink ->
        Trace.Sink.emit sink
          (Trace.Event.Cache_hit { key = Cache.Store.digest_key st key })

  (* Only successes are cached: failures and degraded runs must re-run
     (and re-report) every time — a quarantine served from a cache would
     hide a flaky environment. An undecodable payload (fingerprint
     collision, hand-edited store) falls through to a fresh run. *)
  let run_any ?on_round ?trace ?link ?budget ?store ~key proto cfg ~adversary
      ~inputs =
    let fresh () = run_any ?on_round ?trace ?link ?budget proto cfg ~adversary ~inputs in
    match store with
    | None -> fresh ()
    | Some st -> (
        match Option.bind (Cache.Store.lookup st key) outcome_of_string with
        | Some o ->
            emit_hit trace st key;
            Ok o
        | None ->
            let r = fresh () in
            (match r with
            | Ok o -> Cache.Store.add st ~key (outcome_to_string o)
            | Error _ -> ());
            r)

  let run_net ?on_round ?trace ?budget ?store ~key ~net proto cfg ~adversary
      ~inputs =
    let fresh () = run_net ?on_round ?trace ?budget ~net proto cfg ~adversary ~inputs in
    match store with
    | None -> fresh ()
    | Some st -> (
        match Option.bind (Cache.Store.lookup st key) net_of_string with
        | Some od ->
            emit_hit trace st key;
            Ok od
        | None ->
            let r = fresh () in
            (match r with
            | Ok od -> Cache.Store.add st ~key (net_to_string od)
            | Error _ -> ());
            r)

  (* Cache-aware quarantining map: consult the store per element, run
     only the misses through the domain pool, merge in input order and
     write fresh successes back. [describe] still sees original indices. *)
  let map ?jobs ?budget ?describe ?store ~key ~codec f xs =
    match store with
    | None -> map ?jobs ?budget ?describe f xs
    | Some st ->
        let enc, dec = codec in
        let n = Array.length xs in
        let cached = Array.make n None in
        Array.iteri
          (fun i x ->
            match Option.bind (Cache.Store.lookup st (key x)) dec with
            | Some v -> cached.(i) <- Some v
            | None -> ())
          xs;
        let torun_idx =
          Array.of_list
            (List.filter
               (fun i -> cached.(i) = None)
               (List.init n (fun i -> i)))
        in
        let describe' =
          Option.map (fun d j x -> d torun_idx.(j) x) describe
        in
        let fresh =
          map ?jobs ?budget ?describe:describe' f
            (Array.map (fun i -> xs.(i)) torun_idx)
        in
        Array.iteri
          (fun j r ->
            match r with
            | Ok v -> Cache.Store.add st ~key:(key xs.(torun_idx.(j))) (enc v)
            | Error _ -> ())
          fresh;
        let fresh_pos = Array.make n (-1) in
        Array.iteri (fun j i -> fresh_pos.(i) <- j) torun_idx;
        Array.init n (fun i ->
            match cached.(i) with
            | Some v -> Ok v
            | None -> fresh.(fresh_pos.(i)))
end
