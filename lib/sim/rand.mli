(** Counted deterministic random source.

    The paper's randomness-complexity metric counts (a) the number of calls to
    the random source and (b) the total number of random bits drawn. Every
    stream created from the same {!Counter.t} charges that counter, so the
    engine can hold one counter per run and protocols cannot forget to
    account for the randomness they use. *)

module Counter : sig
  type t

  val create : unit -> t
  val calls : t -> int
  val bits : t -> int
  val reset : t -> unit
end

type t

val create : ?counter:Counter.t -> seed:int64 -> unit -> t
(** A fresh stream. If [counter] is omitted a private counter is used
    (suitable for adversaries and tests, whose randomness is not charged to
    the algorithm). *)

val derive : t -> int -> t
(** [derive t i] is an independent stream determined by [t]'s seed and [i].
    It shares [t]'s counter. Deriving does not consume [t]. *)

val derive_into : into:t -> t -> int -> unit
(** [derive_into ~into t i] reseeds [into] so that it behaves exactly like
    [derive t i], without allocating a stream. [into] keeps its own counter,
    so it should have been created from [t]'s counter (e.g. via [derive]) for
    the accounting to remain shared. *)

val counter : t -> Counter.t

val bit : t -> int
(** One call to the source, one random bit (0 or 1). *)

val bits : t -> int -> int
(** [bits t k] is one call drawing [k] bits ([1 <= k <= 62]), returned as a
    non-negative integer. *)

val int_below : t -> int -> int
(** [int_below t m] is one call returning a uniform value in [0, m), by
    rejection sampling over the smallest [k] with [2^k >= m]. Every draw
    attempt consumes (and charges) [k] bits — rejected draws included — so
    the counted bits match the randomness actually drawn from the source;
    only the call count stays at one. *)

val float : t -> float
(** One call returning a uniform float in [0, 1). *)

val shuffle : t -> 'a array -> unit
(** Fisher-Yates shuffle; charges one call per element (plus any rejection
    re-draw bits, as in {!int_below}). *)
