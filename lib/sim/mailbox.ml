(** Grow-only message buffer — the flat struct-of-arrays replacement for
    the engine's per-process [(src, msg) list] mailboxes.

    A mailbox holds parallel [peers]/[msgs] arrays plus a length; {!clear}
    resets the length without touching the arrays, so a buffer reused
    across rounds allocates only until it reaches its high-water mark.
    Slots beyond [length] keep their old contents (and thus keep old
    messages alive) until overwritten — the retained memory is bounded by
    the largest round ever buffered, which is exactly the arena semantics
    the engine wants.

    On top of the pointwise slots, a mailbox can hold {e broadcast
    segments} ({!push_all}): one shared message record plus a destination
    range, standing for up to [hi - lo + 1] pointwise entries without
    materialising them. Segments remember the pointwise length at which
    they were pushed, so the logical emission order — the sequence of
    [(peer, msg)] pairs a pointwise-only writer would have produced — is
    fully reconstructible: {!iter}, {!fold} and {!to_list} expand segments
    in place, and {!flatten} rewrites the buffer into the equivalent
    pointwise-only form. Only outboxes carry segments; the engine always
    delivers into inboxes pointwise.

    The [peer] of a slot is the destination pid for outboxes and the
    source pid for inboxes. Readers must treat a mailbox as valid only for
    the duration of the call that received it: the engine clears and
    refills these buffers every round. *)

(** Round-shared broadcast table: the fast path's alternative to
    materialising one inbox row per (sender, destination) pair. Each entry
    is one surviving broadcast — source, shared message, destination range
    and an optional per-destination omission mask — appended once by the
    engine's delivery phase and read by {e every} receiver's inbox
    iteration, which filters the table down to the entries covering its
    own pid. Delivery work per broadcast drops from O(destinations)
    scattered writes to O(1), and all receivers scan the same compact,
    cache-resident arrays. *)
type 'm shared = {
  mutable s_src : int array;
  mutable s_msg : 'm array;
  mutable s_lo : int array;
  mutable s_hi : int array;
  mutable s_skip : int array;
  mutable s_mask : Bytes.t array;
      (** [Bytes.empty] = deliver to the whole range; otherwise a
          non-['\000'] byte at [dst] suppresses that destination *)
  mutable s_len : int;
}

type 'm t = {
  mutable peers : int array;
  mutable msgs : 'm array;
  mutable len : int;
  hint : int;  (** first-growth capacity for the pointwise arrays *)
  (* Inbound broadcast view: engine-attached round-shared table plus the
     receiving pid. [None] for outboxes and standalone buffers. *)
  mutable shared : 'm shared option;
  mutable owner : int;
  (* Broadcast segments, parallel arrays indexed 0 .. seg_len - 1. *)
  mutable seg_msg : 'm array;  (** the shared message record *)
  mutable seg_lo : int array;  (** destination range, inclusive *)
  mutable seg_hi : int array;
  mutable seg_skip : int array;  (** destination to skip, or -1 *)
  mutable seg_desc : bool array;  (** emission walks hi -> lo *)
  mutable seg_pos : int array;
      (** pointwise [len] at push time — the segment sits between pointwise
          slots [pos - 1] and [pos] in emission order *)
  mutable seg_len : int;
  mutable seg_total : int;  (** expanded size of all segments *)
  (* Scratch for {!flatten}, grow-only like the main arrays. *)
  mutable fl_peers : int array;
  mutable fl_msgs : 'm array;
}

let shared_create () =
  {
    s_src = [||];
    s_msg = [||];
    s_lo = [||];
    s_hi = [||];
    s_skip = [||];
    s_mask = [||];
    s_len = 0;
  }

let shared_clear sh = sh.s_len <- 0

let shared_grow sh m =
  let cap = Array.length sh.s_lo in
  let cap' = if cap = 0 then 16 else 2 * cap in
  let copy_int a = Array.append a (Array.make (cap' - cap) 0) in
  let msg' = Array.make cap' m in
  Array.blit sh.s_msg 0 msg' 0 sh.s_len;
  sh.s_msg <- msg';
  sh.s_src <- copy_int sh.s_src;
  sh.s_lo <- copy_int sh.s_lo;
  sh.s_hi <- copy_int sh.s_hi;
  sh.s_skip <- copy_int sh.s_skip;
  sh.s_mask <- Array.append sh.s_mask (Array.make (cap' - cap) Bytes.empty)

(** Append one surviving broadcast. Entries must arrive in the inbox
    order the pointwise engine would have produced: ascending [src], and
    within one sender the reverse of its emission order. *)
let shared_push sh ~src ~lo ~hi ~skip ~mask m =
  if sh.s_len = Array.length sh.s_lo then shared_grow sh m;
  let i = sh.s_len in
  sh.s_src.(i) <- src;
  sh.s_msg.(i) <- m;
  sh.s_lo.(i) <- lo;
  sh.s_hi.(i) <- hi;
  sh.s_skip.(i) <- skip;
  sh.s_mask.(i) <- mask;
  sh.s_len <- i + 1

(** Attach [sh] as the inbound broadcast view of inbox [t], owned by pid
    [owner]. Iteration then merges the pointwise rows with the table
    entries covering [owner]. *)
let attach_shared t sh ~owner =
  t.shared <- Some sh;
  t.owner <- owner

(* Does table entry [j] deliver to receiver [me]? *)
let[@inline] shared_covers sh j me =
  me >= Array.unsafe_get sh.s_lo j
  && me <= Array.unsafe_get sh.s_hi j
  && me <> Array.unsafe_get sh.s_skip j
  &&
  let mask = Array.unsafe_get sh.s_mask j in
  Bytes.length mask = 0 || Bytes.unsafe_get mask me = '\000'

let create ?(hint = 0) () =
  {
    peers = [||];
    msgs = [||];
    len = 0;
    hint;
    shared = None;
    owner = -1;
    seg_msg = [||];
    seg_lo = [||];
    seg_hi = [||];
    seg_skip = [||];
    seg_desc = [||];
    seg_pos = [||];
    seg_len = 0;
    seg_total = 0;
    fl_peers = [||];
    fl_msgs = [||];
  }

(** Expanded entry count: pointwise slots plus every segment destination,
    plus — on an inbox with an attached broadcast table — the table
    entries covering this receiver. *)
let length t =
  let base = t.len + t.seg_total in
  match t.shared with
  | Some sh when sh.s_len > 0 ->
      let c = ref 0 in
      for j = 0 to sh.s_len - 1 do
        if shared_covers sh j t.owner then incr c
      done;
      base + !c
  | _ -> base

(** Pointwise slots only (segments excluded). *)
let point_length t = t.len

let seg_count t = t.seg_len

let clear t =
  t.len <- 0;
  t.seg_len <- 0;
  t.seg_total <- 0

let peer t i =
  if i < 0 || i >= t.len then invalid_arg "Mailbox.peer: index out of bounds";
  t.peers.(i)

let msg t i =
  if i < 0 || i >= t.len then invalid_arg "Mailbox.msg: index out of bounds";
  t.msgs.(i)

(* The msgs array needs a seed element to exist; it is created lazily from
   the first message pushed, so the type stays fully polymorphic without an
   [Obj.magic] or a per-protocol dummy. *)
let grow t m =
  let cap = Array.length t.peers in
  let cap' = if cap = 0 then max t.hint 16 else 2 * cap in
  let peers' = Array.make cap' 0 in
  let msgs' = Array.make cap' m in
  Array.blit t.peers 0 peers' 0 t.len;
  Array.blit t.msgs 0 msgs' 0 t.len;
  t.peers <- peers';
  t.msgs <- msgs'

let push t ~peer m =
  if t.len = Array.length t.peers then grow t m;
  t.peers.(t.len) <- peer;
  t.msgs.(t.len) <- m;
  t.len <- t.len + 1

(** Expanded size of a segment over [lo..hi] skipping [skip]. *)
let seg_size ~lo ~hi ~skip =
  if hi < lo then 0
  else (hi - lo + 1) - (if skip >= lo && skip <= hi then 1 else 0)

let seg_grow t m =
  let cap = Array.length t.seg_lo in
  let cap' = if cap = 0 then 4 else 2 * cap in
  let copy_int a = Array.append a (Array.make (cap' - cap) 0) in
  let msg' = Array.make cap' m in
  Array.blit t.seg_msg 0 msg' 0 t.seg_len;
  t.seg_msg <- msg';
  t.seg_lo <- copy_int t.seg_lo;
  t.seg_hi <- copy_int t.seg_hi;
  t.seg_skip <- copy_int t.seg_skip;
  t.seg_desc <- Array.append t.seg_desc (Array.make (cap' - cap) false);
  t.seg_pos <- copy_int t.seg_pos

(** [push_all t ~lo ~hi ?skip ?desc m]: broadcast [m] to every destination
    in [lo..hi] except [skip] — one shared record instead of up to
    [hi - lo + 1] pointwise rows. [desc] records the emission direction
    ([hi] down to [lo]) so expansion reproduces the exact pointwise order.
    An empty range is dropped. *)
let push_all t ~lo ~hi ?(skip = -1) ?(desc = false) m =
  let size = seg_size ~lo ~hi ~skip in
  if size > 0 then begin
    if t.seg_len = Array.length t.seg_lo then seg_grow t m;
    let i = t.seg_len in
    t.seg_msg.(i) <- m;
    t.seg_lo.(i) <- lo;
    t.seg_hi.(i) <- hi;
    t.seg_skip.(i) <- skip;
    t.seg_desc.(i) <- desc;
    t.seg_pos.(i) <- t.len;
    t.seg_len <- i + 1;
    t.seg_total <- t.seg_total + size
  end

(* Expand one segment's destinations in emission order. *)
let seg_iter_dsts ~lo ~hi ~skip ~desc f =
  if desc then
    for dst = hi downto lo do
      if dst <> skip then f dst
    done
  else
    for dst = lo to hi do
      if dst <> skip then f dst
    done

(* Same in reverse emission order. *)
let seg_riter_dsts ~lo ~hi ~skip ~desc f =
  if desc then
    for dst = lo to hi do
      if dst <> skip then f dst
    done
  else
    for dst = hi downto lo do
      if dst <> skip then f dst
    done

(** Walk the buffer's entries in emission order without expanding
    segments: [point peer m] per pointwise slot, [seg ~lo ~hi ~skip ~desc
    ~size m] per broadcast segment. *)
let iter_entries t ~point ~seg =
  if t.seg_len = 0 then
    for i = 0 to t.len - 1 do
      point t.peers.(i) t.msgs.(i)
    done
  else begin
    let s = ref 0 in
    let flush_upto pos =
      while !s < t.seg_len && t.seg_pos.(!s) <= pos do
        let i = !s in
        seg ~lo:t.seg_lo.(i) ~hi:t.seg_hi.(i) ~skip:t.seg_skip.(i)
          ~desc:t.seg_desc.(i)
          ~size:
            (seg_size ~lo:t.seg_lo.(i) ~hi:t.seg_hi.(i) ~skip:t.seg_skip.(i))
          t.seg_msg.(i);
        incr s
      done
    in
    for i = 0 to t.len - 1 do
      flush_upto i;
      point t.peers.(i) t.msgs.(i)
    done;
    flush_upto t.len
  end

(** {!iter_entries} in reverse emission order (segments still unexpanded,
    visited after the pointwise slot they precede). *)
let riter_entries t ~point ~seg =
  if t.seg_len = 0 then
    for i = t.len - 1 downto 0 do
      point t.peers.(i) t.msgs.(i)
    done
  else begin
    let s = ref (t.seg_len - 1) in
    let flush_downto pos =
      (* segments at position > pos come after slot [pos] in emission
         order, so in reverse order they are visited first *)
      while !s >= 0 && t.seg_pos.(!s) > pos do
        let i = !s in
        seg ~lo:t.seg_lo.(i) ~hi:t.seg_hi.(i) ~skip:t.seg_skip.(i)
          ~desc:t.seg_desc.(i)
          ~size:
            (seg_size ~lo:t.seg_lo.(i) ~hi:t.seg_hi.(i) ~skip:t.seg_skip.(i))
          t.seg_msg.(i);
        decr s
      done
    in
    for i = t.len - 1 downto 0 do
      flush_downto i;
      point t.peers.(i) t.msgs.(i)
    done;
    flush_downto (-1)
  end

(* Inbox walk when a round-shared broadcast table is attached and
   non-empty: merge the pointwise rows (sorted by ascending peer) with
   the table entries covering this receiver (sorted by ascending src).
   The engine keeps the two sender sets disjoint — a sender delivers a
   round either through the table or through pointwise rows, never both —
   so the merge needs no tie-break. *)
let iter_merged t sh f =
  assert (t.seg_len = 0);
  let me = t.owner in
  let i = ref 0 in
  for j = 0 to sh.s_len - 1 do
    if shared_covers sh j me then begin
      let src = Array.unsafe_get sh.s_src j in
      while !i < t.len && Array.unsafe_get t.peers !i < src do
        f (Array.unsafe_get t.peers !i) (Array.unsafe_get t.msgs !i);
        incr i
      done;
      f src (Array.unsafe_get sh.s_msg j)
    end
  done;
  while !i < t.len do
    f (Array.unsafe_get t.peers !i) (Array.unsafe_get t.msgs !i);
    incr i
  done

let riter_merged t sh f =
  assert (t.seg_len = 0);
  let me = t.owner in
  let i = ref (t.len - 1) in
  for j = sh.s_len - 1 downto 0 do
    if shared_covers sh j me then begin
      let src = Array.unsafe_get sh.s_src j in
      while !i >= 0 && Array.unsafe_get t.peers !i > src do
        f (Array.unsafe_get t.peers !i) (Array.unsafe_get t.msgs !i);
        decr i
      done;
      f src (Array.unsafe_get sh.s_msg j)
    end
  done;
  while !i >= 0 do
    f (Array.unsafe_get t.peers !i) (Array.unsafe_get t.msgs !i);
    decr i
  done

let iter t f =
  match t.shared with
  | Some sh when sh.s_len > 0 -> iter_merged t sh f
  | _ ->
      iter_entries t ~point:f ~seg:(fun ~lo ~hi ~skip ~desc ~size:_ m ->
          seg_iter_dsts ~lo ~hi ~skip ~desc (fun dst -> f dst m))

(** Expanded walk in reverse emission order — the engine's arena fill. *)
let riter t f =
  match t.shared with
  | Some sh when sh.s_len > 0 -> riter_merged t sh f
  | _ ->
      riter_entries t ~point:f ~seg:(fun ~lo ~hi ~skip ~desc ~size:_ m ->
          seg_riter_dsts ~lo ~hi ~skip ~desc (fun dst -> f dst m))

(* Append one delivered row without the public-push indirection: capacity
   check against the live arrays, unsafe stores. [dst] is trusted — the
   engine validates destination ranges at emit time. *)
let[@inline] deliver_row inboxes ~peer dst m =
  let ib = Array.unsafe_get inboxes dst in
  if ib.len = Array.length ib.peers then grow ib m;
  let len = ib.len in
  Array.unsafe_set ib.peers len peer;
  Array.unsafe_set ib.msgs len m;
  ib.len <- len + 1

(** Bulk delivery in reverse emission order: exactly
    [riter t (fun dst m -> push inboxes.(dst) ~peer m)] with the
    per-destination closure dispatch and bounds checks hoisted out of the
    segment inner loops — the engine's fast-path [Deliver_all] blit. *)
let rdeliver t inboxes ~peer =
  riter_entries t
    ~point:(fun dst m -> deliver_row inboxes ~peer dst m)
    ~seg:(fun ~lo ~hi ~skip ~desc ~size:_ m ->
      (* reverse emission order, as in {!seg_riter_dsts} *)
      if desc then
        for dst = lo to hi do
          if dst <> skip then deliver_row inboxes ~peer dst m
        done
      else
        for dst = hi downto lo do
          if dst <> skip then deliver_row inboxes ~peer dst m
        done)

(** {!rdeliver} restricted to survivors: rows whose [mask] byte at [dst]
    is ['\000'] — the fast-path [Omit_mask] push. [mask] must cover every
    destination in the buffer. *)
let rdeliver_masked t inboxes ~peer ~mask =
  riter_entries t
    ~point:(fun dst m ->
      if Bytes.unsafe_get mask dst = '\000' then
        deliver_row inboxes ~peer dst m)
    ~seg:(fun ~lo ~hi ~skip ~desc ~size:_ m ->
      if desc then
        for dst = lo to hi do
          if dst <> skip && Bytes.unsafe_get mask dst = '\000' then
            deliver_row inboxes ~peer dst m
        done
      else
        for dst = hi downto lo do
          if dst <> skip && Bytes.unsafe_get mask dst = '\000' then
            deliver_row inboxes ~peer dst m
        done)

(** Smallest destination-range width among the buffer's segments
    ([max_int] when it has none). The engine routes a sender through the
    round-shared table only when its broadcasts are wide: every receiver
    scans the whole table, so a narrow (e.g. one-group) segment would tax
    n receivers for a handful of deliveries. *)
let min_seg_span t =
  let m = ref max_int in
  for i = 0 to t.seg_len - 1 do
    m := min !m (t.seg_hi.(i) - t.seg_lo.(i) + 1)
  done;
  !m

let fold t ~init f =
  let acc = ref init in
  iter t (fun peer m -> acc := f !acc peer m);
  !acc

(** The buffer's contents as the legacy [(peer, msg)] list, in emission
    order — what the list-based {!Protocol_intf.S.step} compatibility shim
    feeds to unported protocols. *)
let to_list t =
  let acc = ref [] in
  iter t (fun peer m -> acc := (peer, m) :: !acc);
  List.rev !acc

(** Rewrite the buffer into the equivalent pointwise-only form: every
    segment expanded in place, emission order preserved. No-op without
    segments; with segments it runs on grow-only scratch arrays, so a
    buffer reused across rounds stops allocating at its high-water mark. *)
let flatten t =
  if t.seg_len > 0 then begin
    let total = length t in
    let seed = t.seg_msg.(0) in
    if Array.length t.fl_peers < total then begin
      let cap = max total (2 * Array.length t.fl_peers) in
      t.fl_peers <- Array.make cap 0;
      t.fl_msgs <- Array.make cap seed
    end;
    let fp = t.fl_peers and fm = t.fl_msgs in
    let j = ref 0 in
    iter t (fun peer m ->
        fp.(!j) <- peer;
        fm.(!j) <- m;
        incr j);
    (* swap: the old pointwise arrays become next flatten's scratch *)
    let op = t.peers and om = t.msgs in
    t.peers <- fp;
    t.msgs <- fm;
    t.fl_peers <- op;
    t.fl_msgs <- om;
    t.len <- total;
    t.seg_len <- 0;
    t.seg_total <- 0
  end

(** [true] iff slots are in non-decreasing [peer] order — the engine's
    post-delivery debug assertion: the backward survivor push fills every
    inbox pre-sorted, so sortedness is a contract to check, not work to
    redo. Pointwise slots only (inboxes never hold segments). *)
let is_sorted_by_peer t =
  let ok = ref true in
  for i = 1 to t.len - 1 do
    if t.peers.(i - 1) > t.peers.(i) then ok := false
  done;
  !ok

(** Stable in-place insertion sort by ascending [peer] — the monomorphic
    replacement for the engine's old [List.sort (fun (a,_) (b,_) ->
    compare a b)]: same ascending-peer order, equal peers keep their
    relative slot order (duplicates preserved). Runs in O(len) when the
    buffer is already sorted, which is the engine's steady state.
    Pointwise slots only. *)
let sort_by_peer t =
  for i = 1 to t.len - 1 do
    let p = t.peers.(i) in
    if t.peers.(i - 1) > p then begin
      let m = t.msgs.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && t.peers.(!j) > p do
        t.peers.(!j + 1) <- t.peers.(!j);
        t.msgs.(!j + 1) <- t.msgs.(!j);
        decr j
      done;
      t.peers.(!j + 1) <- p;
      t.msgs.(!j + 1) <- m
    end
  done
