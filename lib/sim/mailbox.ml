(** Grow-only message buffer — the flat struct-of-arrays replacement for
    the engine's per-process [(src, msg) list] mailboxes.

    A mailbox holds parallel [peers]/[msgs] arrays plus a length; {!clear}
    resets the length without touching the arrays, so a buffer reused
    across rounds allocates only until it reaches its high-water mark.
    Slots beyond [length] keep their old contents (and thus keep old
    messages alive) until overwritten — the retained memory is bounded by
    the largest round ever buffered, which is exactly the arena semantics
    the engine wants.

    The [peer] of a slot is the destination pid for outboxes and the
    source pid for inboxes. Readers must treat a mailbox as valid only for
    the duration of the call that received it: the engine clears and
    refills these buffers every round. *)

type 'm t = {
  mutable peers : int array;
  mutable msgs : 'm array;
  mutable len : int;
  hint : int;  (** first-growth capacity (e.g. n for per-process buffers) *)
}

let create ?(hint = 0) () = { peers = [||]; msgs = [||]; len = 0; hint }
let length t = t.len
let clear t = t.len <- 0

let peer t i =
  if i < 0 || i >= t.len then invalid_arg "Mailbox.peer: index out of bounds";
  t.peers.(i)

let msg t i =
  if i < 0 || i >= t.len then invalid_arg "Mailbox.msg: index out of bounds";
  t.msgs.(i)

(* The msgs array needs a seed element to exist; it is created lazily from
   the first message pushed, so the type stays fully polymorphic without an
   [Obj.magic] or a per-protocol dummy. *)
let grow t m =
  let cap = Array.length t.peers in
  let cap' = if cap = 0 then max t.hint 16 else 2 * cap in
  let peers' = Array.make cap' 0 in
  let msgs' = Array.make cap' m in
  Array.blit t.peers 0 peers' 0 t.len;
  Array.blit t.msgs 0 msgs' 0 t.len;
  t.peers <- peers';
  t.msgs <- msgs'

let push t ~peer m =
  if t.len = Array.length t.peers then grow t m;
  t.peers.(t.len) <- peer;
  t.msgs.(t.len) <- m;
  t.len <- t.len + 1

let iter t f =
  for i = 0 to t.len - 1 do
    f t.peers.(i) t.msgs.(i)
  done

let fold t ~init f =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.peers.(i) t.msgs.(i)
  done;
  !acc

(** The buffer's contents as the legacy [(peer, msg)] list, in slot order —
    what the list-based {!Protocol_intf.S.step} compatibility shim feeds to
    unported protocols. *)
let to_list t =
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    acc := (t.peers.(i), t.msgs.(i)) :: !acc
  done;
  !acc

(** [true] iff slots are in non-decreasing [peer] order — the engine's
    post-delivery debug assertion: the backward survivor push fills every
    inbox pre-sorted, so sortedness is a contract to check, not work to
    redo. *)
let is_sorted_by_peer t =
  let ok = ref true in
  for i = 1 to t.len - 1 do
    if t.peers.(i - 1) > t.peers.(i) then ok := false
  done;
  !ok

(** Stable in-place insertion sort by ascending [peer] — the monomorphic
    replacement for the engine's old [List.sort (fun (a,_) (b,_) ->
    compare a b)]: same ascending-peer order, equal peers keep their
    relative slot order (duplicates preserved). Runs in O(len) when the
    buffer is already sorted, which is the engine's steady state. *)
let sort_by_peer t =
  for i = 1 to t.len - 1 do
    let p = t.peers.(i) in
    if t.peers.(i - 1) > p then begin
      let m = t.msgs.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && t.peers.(!j) > p do
        t.peers.(!j + 1) <- t.peers.(!j);
        t.msgs.(!j + 1) <- t.msgs.(!j);
        decr j
      done;
      t.peers.(!j + 1) <- p;
      t.msgs.(!j + 1) <- m
    end
  done
