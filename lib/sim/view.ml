(** What the full-information adaptive adversary sees each round, and the
    intervention it may order.

    The adversary intervenes between the local-computation phase and the
    communication phase: it has already seen the random bits drawn this round
    (they are reflected in [candidate] / [used_randomness]) and the messages
    the processes are about to send, and only then picks new corruptions and
    omissions.

    Allocation discipline: the engine allocates one view per run and
    refreshes it in place each round — the [obs] records, the [faulty]
    snapshot array and the [envelope] records are all reused. A view (and
    everything reachable from it) is therefore only valid for the duration
    of the adversary call that received it; an adversary that needs state
    across rounds must copy what it keeps, never stash the view. *)

type obs_core = {
  candidate : int option;  (** current candidate decision bit, if any *)
  operative : bool;  (** protocol-level operative status (paper's notion) *)
  decided : int option;  (** final decision once taken *)
}

type obs = {
  pid : int;
  mutable core : obs_core;
  mutable used_randomness : bool;
      (** accessed the random source this round *)
}

type envelope = {
  mutable src : int;
  mutable dst : int;
  mutable bits : int;  (** message size charged to communication complexity *)
  mutable hint : int option;  (** candidate value carried, when meaningful *)
}

type t = {
  mutable round : int;
  cfg : Config.t;
  faulty : bool array;
      (** fault set before this round's intervention (snapshot, refreshed in
          place each round) *)
  mutable faults_used : int;
  obs : obs array;
  mutable envelopes : envelope array;
      (** all messages produced this round; the array is exact-length for
          the round but its records live in a reused arena *)
}

type plan = {
  new_faults : int list;
      (** processes to corrupt now; lifetime total must stay within t_max *)
  omit : int -> int -> bool;
      (** [omit src dst]: drop this round's message from [src] to [dst].
          Must return [false] whenever neither endpoint is faulty — the
          engine enforces this. *)
}

let no_op = { new_faults = []; omit = (fun _ _ -> false) }

(** Omission predicate dropping every message to or from any pid in [pids]. *)
let omit_all_of pids =
  let set = Hashtbl.create (List.length pids * 2) in
  List.iter (fun p -> Hashtbl.replace set p ()) pids;
  fun src dst -> Hashtbl.mem set src || Hashtbl.mem set dst

(** Crash-style plan: corrupt [pids] and silence them completely. *)
let crash pids = { new_faults = pids; omit = omit_all_of pids }
