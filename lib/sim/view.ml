(** What the full-information adaptive adversary sees each round, and the
    intervention it may order.

    The adversary intervenes between the local-computation phase and the
    communication phase: it has already seen the random bits drawn this round
    (they are reflected in [candidate] / [used_randomness]) and the messages
    the processes are about to send, and only then picks new corruptions and
    omissions.

    Allocation discipline: the engine allocates one view per run and
    refreshes it in place each round — the [obs] records, the [faulty]
    snapshot array and the [envelope] records are all reused. A view (and
    everything reachable from it) is therefore only valid for the duration
    of the adversary call that received it; an adversary that needs state
    across rounds must copy what it keeps, never stash the view. *)

type obs_core = {
  candidate : int option;  (** current candidate decision bit, if any *)
  operative : bool;  (** protocol-level operative status (paper's notion) *)
  decided : int option;  (** final decision once taken *)
}

type obs = {
  pid : int;
  mutable core : obs_core;
  mutable used_randomness : bool;
      (** accessed the random source this round *)
}

type envelope = {
  mutable src : int;
  mutable dst : int;
  mutable bits : int;  (** message size charged to communication complexity *)
  mutable hint : int option;  (** candidate value carried, when meaningful *)
}

type t = {
  mutable round : int;
  cfg : Config.t;
  faulty : bool array;
      (** fault set before this round's intervention (snapshot, refreshed in
          place each round) *)
  mutable faults_used : int;
  obs : obs array;
  mutable envelopes : envelope array;
      (** all messages produced this round; the array is exact-length for
          the round but its records live in a reused arena. Read through
          {!val-envelopes}: the engine fills the arena lazily, so the field
          is only valid when [envelopes_ready] *)
  mutable envelopes_ready : bool;
  mutable refresh_envelopes : unit -> envelope array;
      (** installed by the engine; expands this round's pending messages
          (broadcasts included) into the envelope arena *)
}

(** The round's pending messages, one envelope per (src, dst) pair —
    broadcasts expanded. The engine materialises the array on first access
    each round; an adversary that never looks at the envelopes never pays
    for them. *)
let envelopes t =
  if not t.envelopes_ready then begin
    t.envelopes <- t.refresh_envelopes ();
    t.envelopes_ready <- true
  end;
  t.envelopes

(** Compiled per-sender omission verdict: what the adversary does to one
    sender's messages this round, decidable without a per-destination
    closure call. [Omit_mask b] drops exactly the destinations whose byte
    in [b] is non-zero ([b] is indexed by pid, length n). *)
type mask = Deliver_all | Omit_all | Omit_mask of Bytes.t

type plan = {
  new_faults : int list;
      (** processes to corrupt now; lifetime total must stay within t_max *)
  omit : int -> int -> bool;
      (** [omit src dst]: drop this round's message from [src] to [dst].
          Must return [false] whenever neither endpoint is faulty — the
          engine enforces this. *)
  compiled : (int -> mask) option;
      (** per-sender compiled form of [omit], when the strategy can
          precompute it: [compiled src] must agree with [omit src dst] for
          every [dst], and must not draw randomness or otherwise depend on
          call order. The engine prefers it wherever present (mask-blit
          delivery with aggregate counters); strategies whose predicate
          draws randomness per call — where the draw order is part of the
          observable bit-stream — must leave it [None]. *)
}

(** Plan with only the pointwise predicate — the compatibility
    constructor for hand-written strategies and tests. *)
let pointwise ~new_faults ~omit = { new_faults; omit; compiled = None }

let no_op =
  {
    new_faults = [];
    omit = (fun _ _ -> false);
    compiled = Some (fun _ -> Deliver_all);
  }

(** Omission predicate dropping every message to or from any pid in [pids]. *)
let omit_all_of pids =
  let set = Hashtbl.create (List.length pids * 2) in
  List.iter (fun p -> Hashtbl.replace set p ()) pids;
  fun src dst -> Hashtbl.mem set src || Hashtbl.mem set dst

(** Crash-style plan: corrupt [pids] and silence them completely.
    Pointwise (the helper does not know n, so it cannot build masks);
    adversaries that want the compiled path build their own plans. *)
let crash pids = { new_faults = pids; omit = omit_all_of pids; compiled = None }
