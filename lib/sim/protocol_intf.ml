(** Signature every consensus protocol implements.

    A protocol is a per-process deterministic state machine driven by the
    engine. Each round the engine calls {!S.step} once per process (faulty
    processes included — omission-faulty processes follow the protocol, only
    their messages are filtered). The state machine never learns who is
    faulty: it only sees delivered messages, exactly as in the model. *)

module type S = sig
  type state
  type msg

  val name : string

  val init : Config.t -> pid:int -> input:int -> state
  (** Initial state for process [pid] with input bit [input]. *)

  val step :
    Config.t ->
    state ->
    round:int ->
    inbox:(int * msg) list ->
    rand:Rand.t ->
    state * (int * msg) list
  (** Local-computation phase of [round] (rounds start at 1). [inbox] holds
      the messages delivered at the end of the previous round, sorted by
      sender. Returns the new state and the messages [(dst, msg)] to send in
      this round's communication phase. All randomness must come from
      [rand]. *)

  val observe : state -> View.obs_core
  (** Full-information observation of the state, also used by the engine to
      detect termination ([decided]). *)

  val msg_bits : msg -> int
  (** Size of a message in bits, charged to communication complexity. Must
      be at least 1 (a message carries at least one bit). *)

  val msg_hint : msg -> int option
  (** Candidate value carried by the message, if meaningful; exposed to the
      adversary through {!View.envelope}. *)
end

type t = (module S)

(** Uniform constructor every protocol exports: the single way protocols
    enter the registry. [build] packs the protocol for a configuration;
    [rounds_needed] is the round bound the harness should allow for it
    (used as [max_rounds] head-room by the registry). *)
module type BUILDER = sig
  val name : string
  (** Registry id (also the CLI spelling). *)

  val build : Config.t -> t
  val rounds_needed : Config.t -> int
end

type builder = (module BUILDER)
