(** Signature every consensus protocol implements.

    A protocol is a per-process deterministic state machine driven by the
    engine. Each round the engine calls {!S.step} once per process (faulty
    processes included — omission-faulty processes follow the protocol, only
    their messages are filtered). The state machine never learns who is
    faulty: it only sees delivered messages, exactly as in the model. *)

module type S = sig
  type state
  type msg

  val name : string

  val init : Config.t -> pid:int -> input:int -> state
  (** Initial state for process [pid] with input bit [input]. *)

  val step :
    Config.t ->
    state ->
    round:int ->
    inbox:(int * msg) list ->
    rand:Rand.t ->
    state * (int * msg) list
  (** Local-computation phase of [round] (rounds start at 1). [inbox] holds
      the messages delivered at the end of the previous round, sorted by
      sender. Returns the new state and the messages [(dst, msg)] to send in
      this round's communication phase. All randomness must come from
      [rand]. *)

  val observe : state -> View.obs_core
  (** Full-information observation of the state, also used by the engine to
      detect termination ([decided]). *)

  val msg_bits : msg -> int
  (** Size of a message in bits, charged to communication complexity. Must
      be at least 1 (a message carries at least one bit). *)

  val msg_hint : msg -> int option
  (** Candidate value carried by the message, if meaningful; exposed to the
      adversary through {!View.envelope}. *)
end

type t = (module S)

(** Allocation-free variant of {!S}: the engine hands the protocol its inbox
    as a reusable {!Mailbox.t} and an [emit] sink for outgoing messages, so
    the hot path builds no list cells. [step_into] must emit messages in the
    same order the list-based [step] would have returned them; the engine's
    equivalence suite holds protocols to that contract. Protocols that have
    not been ported run through {!Shim}. *)
module type BUFFERED = sig
  type state
  type msg

  val name : string
  val init : Config.t -> pid:int -> input:int -> state

  val step_into :
    Config.t ->
    state ->
    round:int ->
    inbox:msg Mailbox.t ->
    rand:Rand.t ->
    emit:(int -> msg -> unit) ->
    emit_all:(lo:int -> hi:int -> skip:int -> desc:bool -> msg -> unit) ->
    state
  (** Local-computation phase of [round]. [inbox] holds the previous round's
      deliveries sorted by sender and is only valid for the duration of this
      call. Each outgoing message is pushed with [emit dst msg]; a
      broadcast of one shared record to the pid range [lo..hi] (minus
      [skip]) goes through [emit_all] instead — the engine stores it as a
      single entry. [desc] declares the emission direction ([hi] down to
      [lo]); the flattened emission order, with [emit_all] expanded in its
      declared direction, must match what {!S.step} would return. *)

  val observe : state -> View.obs_core
  val msg_bits : msg -> int
  val msg_hint : msg -> int option
end

type buffered = (module BUFFERED)

(** [emit_all] realised by pointwise [emit] calls — what the list-based
    [step] wrappers thread through their shared cores so both paths run
    the same emission logic. *)
let emit_all_pointwise emit ~lo ~hi ~skip ~desc m =
  if desc then
    for dst = hi downto lo do
      if dst <> skip then emit dst m
    done
  else
    for dst = lo to hi do
      if dst <> skip then emit dst m
    done

(** Compatibility shim: run a list-based protocol on the buffered engine.
    The inbox is materialised as the legacy sorted list and the returned
    out-list replayed through [emit], so behaviour is identical (including
    message order) at the cost of the old per-step allocations. *)
module Shim (P : S) :
  BUFFERED with type state = P.state and type msg = P.msg = struct
  type state = P.state
  type msg = P.msg

  let name = P.name
  let init = P.init

  let step_into cfg st ~round ~inbox ~rand ~emit ~emit_all:_ =
    let st, out = P.step cfg st ~round ~inbox:(Mailbox.to_list inbox) ~rand in
    List.iter (fun (dst, m) -> emit dst m) out;
    st

  let observe = P.observe
  let msg_bits = P.msg_bits
  let msg_hint = P.msg_hint
end

(** A protocol on whichever path it supports; the engine runs both, and
    [Buffered] is preferred wherever one exists. *)
type any = Legacy of t | Buffered of buffered

(** Uniform constructor every protocol exports: the single way protocols
    enter the registry. [build] packs the protocol for a configuration;
    [rounds_needed] is the round bound the harness should allow for it
    (used as [max_rounds] head-room by the registry). *)
module type BUILDER = sig
  val name : string
  (** Registry id (also the CLI spelling). *)

  val build : Config.t -> t
  val rounds_needed : Config.t -> int
end

type builder = (module BUILDER)
