(** The engine's pluggable link layer.

    The paper's model assumes a perfect synchronous network: the only
    message loss comes from the adaptive omission adversary. A production
    network also loses messages on its own, so the engine exposes one
    delivery hook — consulted for every message the adversary let through —
    that a transport layer (lib/net) implements with seeded link-fault
    models plus ack/retransmit recovery.

    The contract mirrors {!Adversary_intf}: the engine owns the call order
    (ascending sender pid, emission order within a sender), the link owns
    its private randomness, and everything is a pure function of the run
    seed so runs stay bit-identical at any [--jobs] width. A [Lost] verdict
    is {e not} an adversary omission: the engine neither checks it against
    the fault set (no {!Engine.Illegal_plan}) nor counts it in
    [messages_omitted] — residual losses are the transport's to account
    for, as induced omission faults (see [Net.Degradation]). *)

type verdict = Delivered | Lost

type t = {
  name : string;
  reset : seed:int -> unit;
      (** called once at the start of every run with the run's seed, before
          any other hook — reseeds the link's private random stream and
          clears all per-run state, so one link value can be reused across
          runs (engine instances are) without state bleeding through *)
  begin_round : round:int -> unit;
      (** called once per executed round, before any [transmit] of that
          round — advances time-dependent fault state (transient stalls,
          per-round virtual-slot accounting) *)
  transmit :
    trace:Trace.Sink.t option -> round:int -> src:int -> dst:int -> verdict;
      (** one synchronized exchange: deliver the [src] -> [dst] message of
          [round], retransmitting within the transport's retry budget.
          [Delivered] means the receiver got at least one copy; [Lost] is a
          residual loss the budget could not mask. [trace] receives the
          exchange's drop/dup/delay/retransmit/ack/degrade events; a
          fault-free first-attempt exchange must emit nothing, so zero-fault
          transports leave traces byte-identical to linkless runs. *)
}
