(** The synchronous round engine with an adaptive full-information omission
    adversary — the execution model of Section 2 of the paper.

    Per round: (1) every process runs its local-computation phase, drawing
    from a counted random source; (2) the adversary inspects everything —
    states, fresh coins, pending messages — and picks new corruptions
    (within the lifetime budget [t_max]) plus per-edge omissions at faulty
    endpoints; (3) surviving messages are delivered for the next round.

    Model enforcement: a plan that omits a message between two non-faulty
    processes, or corrupts beyond the budget, raises {!Illegal_plan}. *)

exception Illegal_plan of string

type outcome = {
  decisions : int option array;
  faulty : bool array;  (** final fault set *)
  rounds_total : int;  (** rounds actually executed *)
  decided_round : int option;
      (** first round by whose local phase every non-faulty process had
          decided — the paper's time metric; [None] if [max_rounds] hit *)
  messages_sent : int;
  bits_sent : int;  (** omitted messages still count: the sender sent them *)
  messages_omitted : int;
  rand_calls : int;  (** calls to the random source (Theorem 2's R) *)
  rand_bits : int;  (** total random bits drawn *)
  faults_used : int;
}

type progress = {
  p_round : int;  (** rounds executed so far *)
  p_messages : int;
  p_bits : int;
  p_rand_calls : int;
  p_rand_bits : int;
}
(** Cumulative metric counters handed to the [stop] watchdog after each
    round. *)

val all_nonfaulty_decided : outcome -> bool

val agreed_decision : outcome -> int option
(** The common decision of the non-faulty processes, or [None] if any is
    undecided or two disagree. *)

type instance
(** A reusable engine instance for one (protocol, cfg) pair: every buffer
    the round loop needs — per-pid mailboxes, the envelope arena, the
    adversary view, omission scratch — is allocated by {!instance} and
    reused by each {!run_instance} call. Sweeps and benches that execute
    many runs of the same configuration amortise buffer construction to
    zero; each run resets all per-run state first, so outcomes and traces
    are bit-identical to fresh {!run_buffered} runs. *)

val instance : Protocol_intf.buffered -> Config.t -> instance

val run_instance :
  ?on_round:(round:int -> View.envelope array -> unit) ->
  ?stop:(progress -> bool) ->
  ?trace:Trace.Sink.t ->
  ?link:Link_intf.t ->
  instance ->
  adversary:Adversary_intf.t ->
  inputs:int array ->
  outcome
(** One run through a reusable instance — same contract as
    {!run_buffered}. An instance is not thread-safe: one run at a time. *)

val run :
  ?on_round:(round:int -> View.envelope array -> unit) ->
  ?stop:(progress -> bool) ->
  ?trace:Trace.Sink.t ->
  ?link:Link_intf.t ->
  Protocol_intf.t ->
  Config.t ->
  adversary:Adversary_intf.t ->
  inputs:int array ->
  outcome
(** Execute a run: a pure function of [(protocol, adversary, cfg, inputs)].
    Stops when every non-faulty process has decided or at [max_rounds].
    [on_round] observes each round's envelopes (before omissions) — used by
    the benches for traffic traces. [stop] is the watchdog hook: consulted
    after every round with the cumulative counters, and returning [true]
    ends the run with the same semantics as hitting [max_rounds]
    ([decided_round] stays [None]); {!Supervise} uses it to enforce
    message/randomness/wall-clock budgets.

    [trace], if given, receives the run's structured event stream:
    per round, [Round_start]; then per process in pid order [Coin] (when the
    counted source advanced), [Phase] (when the observable state changed)
    and [Decide] (on the decision transition); then one [Send] per envelope
    in ascending [src] order; [Corrupt] for each newly corrupted process in
    plan order; [Omit]/[Deliver] per message in delivery order; and a
    [Round_end] carrying the round's metric deltas. The stream is a pure
    function of [(protocol, adversary, cfg, inputs)] — no timestamps — so
    equal-seed runs produce identical traces. When [trace] is absent no
    event is constructed (tracing is zero-cost off).

    [link], if given, is the lossy-link transport hook (see
    {!Link_intf}): it is reset from the run seed before the first round,
    notified at the start of every round's communication phase, and
    consulted once per message the adversary let through. A [Lost] verdict
    drops the message like an omission but is {e not} model-checked (no
    {!Illegal_plan}) and not counted in [messages_omitted] — residual link
    losses are the transport layer's to account for as induced omission
    faults. When [link] is absent the delivery loop is unchanged and
    allocation-free (the link layer is zero-cost off).

    Raises [Invalid_argument] if [inputs] is not an n-vector of bits.

    The engine runs on reusable preallocated buffers (mailboxes, envelope
    arena, a single in-place-refreshed adversary view); list-based protocols
    are adapted through {!Protocol_intf.Shim}, which reintroduces the
    per-step list allocations but keeps behaviour — including event order —
    bit-identical. A {!View.t} and everything reachable from it is only
    valid during the adversary call that received it. *)

val run_buffered :
  ?on_round:(round:int -> View.envelope array -> unit) ->
  ?stop:(progress -> bool) ->
  ?trace:Trace.Sink.t ->
  ?link:Link_intf.t ->
  Protocol_intf.buffered ->
  Config.t ->
  adversary:Adversary_intf.t ->
  inputs:int array ->
  outcome
(** [run] for a protocol implementing {!Protocol_intf.BUFFERED}: the
    allocation-free path. Outcome and trace are bit-identical to running
    the same protocol's list-based [step] through {!run}, provided the
    protocol honours the emission-order contract of [step_into]. *)

val run_any :
  ?on_round:(round:int -> View.envelope array -> unit) ->
  ?stop:(progress -> bool) ->
  ?trace:Trace.Sink.t ->
  ?link:Link_intf.t ->
  Protocol_intf.any ->
  Config.t ->
  adversary:Adversary_intf.t ->
  inputs:int array ->
  outcome
(** Dispatch to {!run} or {!run_buffered} on the path the protocol
    supports. *)
