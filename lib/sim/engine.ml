(** Synchronous round engine with an adaptive full-information omission
    adversary.

    Round structure (Section 2 of the paper):
    + every process runs its local-computation phase (possibly drawing from
      its counted random source) and hands its outgoing messages to the
      engine;
    + the adversary inspects the complete system state — including the
      random bits just drawn and the pending messages — and may corrupt new
      processes (within its lifetime budget [t_max]) and omit any subset of
      messages incident to faulty processes;
    + the surviving messages are delivered, to be consumed at the beginning
      of the next round.

    The engine enforces the model: omissions between two non-faulty
    processes, or corruptions beyond the budget, raise {!Illegal_plan}. *)

exception Illegal_plan of string

let illegal fmt = Fmt.kstr (fun s -> raise (Illegal_plan s)) fmt

type outcome = {
  decisions : int option array;
  faulty : bool array;  (** final fault set *)
  rounds_total : int;  (** rounds actually executed *)
  decided_round : int option;
      (** round by whose local phase every non-faulty process had decided *)
  messages_sent : int;
  bits_sent : int;
  messages_omitted : int;
  rand_calls : int;
  rand_bits : int;
  faults_used : int;
}

type progress = {
  p_round : int;  (** rounds executed so far *)
  p_messages : int;
  p_bits : int;
  p_rand_calls : int;
  p_rand_bits : int;
}

(* Tracing state, allocated once per run and only when a sink is supplied:
   the previous observable state of every process (so Phase/Decide events
   fire on transitions, not every round) and the counter values at the start
   of the current round (so Round_end carries per-round deltas). *)
type tracer = {
  sink : Trace.Sink.t;
  prev_operative : bool array;
  prev_candidate : int option array;
  prev_decided : int option array;
  mutable r0_messages : int;
  mutable r0_bits : int;
  mutable r0_omitted : int;
  mutable r0_rand_calls : int;
  mutable r0_rand_bits : int;
}

let all_nonfaulty_decided outcome =
  let ok = ref true in
  Array.iteri
    (fun pid d ->
      if (not outcome.faulty.(pid)) && d = None then ok := false)
    outcome.decisions;
  !ok

(** Decision of the non-faulty processes if they agree, [None] otherwise. *)
let agreed_decision outcome =
  let value = ref None and ok = ref true in
  Array.iteri
    (fun pid d ->
      if not outcome.faulty.(pid) then
        match (d, !value) with
        | None, _ -> ok := false
        | Some v, None -> value := Some v
        | Some v, Some w -> if v <> w then ok := false)
    outcome.decisions;
  if !ok then !value else None

(** [run protocol cfg ~adversary ~inputs] executes a full run. [on_round],
    if given, is called once per round with the round's envelopes (before
    the adversary intervenes) — benches use it to trace per-slot traffic.
    [stop], if given, is consulted at the end of every round with the
    cumulative metric counters; returning [true] ends the run exactly as
    hitting [max_rounds] would — the supervision layer uses it to extend
    the [max_rounds] semantics to message/randomness/wall-clock budgets. *)
let run ?on_round ?stop ?trace (module P : Protocol_intf.S) (cfg : Config.t)
    ~(adversary : Adversary_intf.t) ~(inputs : int array) : outcome =
  let n = cfg.n in
  if Array.length inputs <> n then
    invalid_arg "Engine.run: inputs length must equal n";
  Array.iter
    (fun b -> if b <> 0 && b <> 1 then invalid_arg "Engine.run: inputs must be bits")
    inputs;
  let counter = Rand.Counter.create () in
  let root = Rand.create ~counter ~seed:(Int64.of_int cfg.seed) () in
  let adv_rand = Rand.create ~seed:(Int64.of_int (cfg.seed + 0x5eed)) () in
  let adv = adversary.create cfg adv_rand in
  let states = Array.init n (fun pid -> P.init cfg ~pid ~input:inputs.(pid)) in
  let inboxes : (int * P.msg) list array = Array.make n [] in
  let faulty = Array.make n false in
  let faults_used = ref 0 in
  let messages_sent = ref 0 in
  let bits_sent = ref 0 in
  let messages_omitted = ref 0 in
  let decided_round = ref None in
  let rounds_total = ref 0 in
  let used_randomness = Array.make n false in
  (* Outboxes of the current round, indexed by sender. *)
  let outboxes : (int * P.msg) list array = Array.make n [] in
  let tr =
    match trace with
    | None -> None
    | Some sink ->
        Some
          {
            sink;
            prev_operative =
              Array.init n (fun pid -> (P.observe states.(pid)).operative);
            prev_candidate =
              Array.init n (fun pid -> (P.observe states.(pid)).candidate);
            prev_decided =
              Array.init n (fun pid -> (P.observe states.(pid)).decided);
            r0_messages = 0;
            r0_bits = 0;
            r0_omitted = 0;
            r0_rand_calls = 0;
            r0_rand_bits = 0;
          }
  in
  let round = ref 1 in
  let stop_flag = ref false in
  while (not !stop_flag) && !round <= cfg.max_rounds do
    let r = !round in
    rounds_total := r;
    (match tr with
    | None -> ()
    | Some t ->
        t.r0_messages <- !messages_sent;
        t.r0_bits <- !bits_sent;
        t.r0_omitted <- !messages_omitted;
        t.r0_rand_calls <- Rand.Counter.calls counter;
        t.r0_rand_bits <- Rand.Counter.bits counter;
        Trace.Sink.emit t.sink (Trace.Event.Round_start { round = r }));
    (* Phase 1: local computation. *)
    for pid = 0 to n - 1 do
      let calls_before = Rand.Counter.calls counter in
      let bits_before = Rand.Counter.bits counter in
      let state', out =
        P.step cfg states.(pid) ~round:r ~inbox:inboxes.(pid)
          ~rand:(Rand.derive root ((r * n) + pid))
      in
      states.(pid) <- state';
      outboxes.(pid) <- out;
      used_randomness.(pid) <- Rand.Counter.calls counter > calls_before;
      inboxes.(pid) <- [];
      match tr with
      | None -> ()
      | Some t ->
          let calls_after = Rand.Counter.calls counter in
          if calls_after > calls_before then
            Trace.Sink.emit t.sink
              (Trace.Event.Coin
                 {
                   round = r;
                   pid;
                   calls = calls_after - calls_before;
                   bits = Rand.Counter.bits counter - bits_before;
                 });
          let obs = P.observe states.(pid) in
          if
            obs.operative <> t.prev_operative.(pid)
            || obs.candidate <> t.prev_candidate.(pid)
          then begin
            t.prev_operative.(pid) <- obs.operative;
            t.prev_candidate.(pid) <- obs.candidate;
            Trace.Sink.emit t.sink
              (Trace.Event.Phase
                 {
                   round = r;
                   pid;
                   operative = obs.operative;
                   candidate = obs.candidate;
                 })
          end;
          (match (t.prev_decided.(pid), obs.decided) with
          | None, Some v ->
              t.prev_decided.(pid) <- Some v;
              Trace.Sink.emit t.sink
                (Trace.Event.Decide { round = r; pid; value = v })
          | _ -> ())
    done;
    (* Termination is detected on the local phase: deciding is a local act. *)
    let everyone_decided = ref true in
    for pid = 0 to n - 1 do
      if (not faulty.(pid)) && (P.observe states.(pid)).decided = None then
        everyone_decided := false
    done;
    if !everyone_decided && !decided_round = None then decided_round := Some r;
    (* Phase 2: adversary intervention. *)
    let envelopes =
      let acc = ref [] in
      for pid = n - 1 downto 0 do
        List.iter
          (fun (dst, m) ->
            if dst < 0 || dst >= n then
              invalid_arg "Engine.run: message to out-of-range pid";
            acc :=
              { View.src = pid; dst; bits = max 1 (P.msg_bits m);
                hint = P.msg_hint m }
              :: !acc)
          outboxes.(pid)
      done;
      Array.of_list !acc
    in
    let view =
      {
        View.round = r;
        cfg;
        faulty = Array.copy faulty;
        faults_used = !faults_used;
        obs =
          Array.init n (fun pid ->
              {
                View.pid;
                core = P.observe states.(pid);
                used_randomness = used_randomness.(pid);
              });
        envelopes;
      }
    in
    (match on_round with Some f -> f ~round:r envelopes | None -> ());
    (match tr with
    | None -> ()
    | Some t ->
        Array.iter
          (fun (e : View.envelope) ->
            Trace.Sink.emit t.sink
              (Trace.Event.Send
                 { round = r; src = e.src; dst = e.dst; bits = e.bits;
                   hint = e.hint }))
          envelopes);
    let plan = adv view in
    List.iter
      (fun pid ->
        if pid < 0 || pid >= n then illegal "corruption of out-of-range pid %d" pid;
        if not faulty.(pid) then begin
          if !faults_used >= cfg.t_max then
            illegal "corruption budget t=%d exceeded at round %d" cfg.t_max r;
          faulty.(pid) <- true;
          incr faults_used;
          match tr with
          | None -> ()
          | Some t ->
              Trace.Sink.emit t.sink (Trace.Event.Corrupt { round = r; pid })
        end)
      plan.new_faults;
    (* Phase 3: communication. Omitted messages still count as sent: the
       sender transmitted them; the adversary suppressed delivery. *)
    for pid = 0 to n - 1 do
      List.iter
        (fun (dst, m) ->
          incr messages_sent;
          bits_sent := !bits_sent + max 1 (P.msg_bits m);
          if plan.omit pid dst then begin
            if (not faulty.(pid)) && not faulty.(dst) then
              illegal "omission between non-faulty %d -> %d at round %d" pid
                dst r;
            incr messages_omitted;
            match tr with
            | None -> ()
            | Some t ->
                Trace.Sink.emit t.sink
                  (Trace.Event.Omit { round = r; src = pid; dst })
          end
          else begin
            inboxes.(dst) <- (pid, m) :: inboxes.(dst);
            match tr with
            | None -> ()
            | Some t ->
                Trace.Sink.emit t.sink
                  (Trace.Event.Deliver { round = r; src = pid; dst })
          end)
        outboxes.(pid);
      outboxes.(pid) <- []
    done;
    for pid = 0 to n - 1 do
      inboxes.(pid) <-
        List.sort (fun (a, _) (b, _) -> compare a b) inboxes.(pid)
    done;
    (match tr with
    | None -> ()
    | Some t ->
        Trace.Sink.emit t.sink
          (Trace.Event.Round_end
             {
               round = r;
               messages = !messages_sent - t.r0_messages;
               bits = !bits_sent - t.r0_bits;
               omitted = !messages_omitted - t.r0_omitted;
               rand_calls = Rand.Counter.calls counter - t.r0_rand_calls;
               rand_bits = Rand.Counter.bits counter - t.r0_rand_bits;
             }));
    if !decided_round <> None then stop_flag := true;
    (match stop with
    | None -> ()
    | Some f ->
        if
          (not !stop_flag)
          && f
               {
                 p_round = r;
                 p_messages = !messages_sent;
                 p_bits = !bits_sent;
                 p_rand_calls = Rand.Counter.calls counter;
                 p_rand_bits = Rand.Counter.bits counter;
               }
        then stop_flag := true);
    incr round
  done;
  {
    decisions = Array.map (fun s -> (P.observe s).decided) states;
    faulty;
    rounds_total = !rounds_total;
    decided_round = !decided_round;
    messages_sent = !messages_sent;
    bits_sent = !bits_sent;
    messages_omitted = !messages_omitted;
    rand_calls = Rand.Counter.calls counter;
    rand_bits = Rand.Counter.bits counter;
    faults_used = !faults_used;
  }
