(** Synchronous round engine with an adaptive full-information omission
    adversary.

    Round structure (Section 2 of the paper):
    + every process runs its local-computation phase (possibly drawing from
      its counted random source) and hands its outgoing messages to the
      engine;
    + the adversary inspects the complete system state — including the
      random bits just drawn and the pending messages — and may corrupt new
      processes (within its lifetime budget [t_max]) and omit any subset of
      messages incident to faulty processes;
    + the surviving messages are delivered, to be consumed at the beginning
      of the next round.

    The engine enforces the model: omissions between two non-faulty
    processes, or corruptions beyond the budget, raise {!Illegal_plan}.

    Allocation discipline: the hot path runs on reusable buffers — per-pid
    {!Mailbox.t} outboxes/inboxes reset by count, an envelope arena sized to
    the high-water mark whose records are refreshed in place, one adversary
    {!View.t} whose observation and fault-snapshot arrays are reused across
    rounds, and a single derived random stream reseeded per step. Steady
    state allocates O(n) words per round (fresh [obs_core] observations)
    instead of O(messages). *)

exception Illegal_plan of string

let illegal fmt = Fmt.kstr (fun s -> raise (Illegal_plan s)) fmt

type outcome = {
  decisions : int option array;
  faulty : bool array;  (** final fault set *)
  rounds_total : int;  (** rounds actually executed *)
  decided_round : int option;
      (** round by whose local phase every non-faulty process had decided *)
  messages_sent : int;
  bits_sent : int;
  messages_omitted : int;
  rand_calls : int;
  rand_bits : int;
  faults_used : int;
}

type progress = {
  p_round : int;  (** rounds executed so far *)
  p_messages : int;
  p_bits : int;
  p_rand_calls : int;
  p_rand_bits : int;
}

(* Tracing state, allocated once per run and only when a sink is supplied:
   the previous observable state of every process (so Phase/Decide events
   fire on transitions, not every round) and the counter values at the start
   of the current round (so Round_end carries per-round deltas). *)
type tracer = {
  sink : Trace.Sink.t;
  prev_operative : bool array;
  prev_candidate : int option array;
  prev_decided : int option array;
  mutable r0_messages : int;
  mutable r0_bits : int;
  mutable r0_omitted : int;
  mutable r0_rand_calls : int;
  mutable r0_rand_bits : int;
}

let all_nonfaulty_decided outcome =
  let n = Array.length outcome.decisions in
  let ok = ref true in
  let pid = ref 0 in
  while !ok && !pid < n do
    if (not outcome.faulty.(!pid)) && outcome.decisions.(!pid) = None then
      ok := false;
    incr pid
  done;
  !ok

(** Decision of the non-faulty processes if they agree, [None] otherwise. *)
let agreed_decision outcome =
  let n = Array.length outcome.decisions in
  let value = ref None and ok = ref true in
  let pid = ref 0 in
  while !ok && !pid < n do
    if not outcome.faulty.(!pid) then
      (match (outcome.decisions.(!pid), !value) with
      | None, _ -> ok := false
      | Some v, None -> value := Some v
      | Some v, Some w -> if v <> w then ok := false);
    incr pid
  done;
  if !ok then !value else None

(** A reusable engine instance: every buffer the round loop needs —
    mailboxes, envelope arena, adversary view, omission scratch — allocated
    once and reused across runs. Benches and sweeps that execute many runs
    of the same (protocol, cfg) pair amortise the buffer construction away;
    runs through an instance are bit-identical to fresh {!run_buffered}
    runs because every run resets all per-run state before its first
    round. *)
type instance = {
  run_i :
    ?on_round:(round:int -> View.envelope array -> unit) ->
    ?stop:(progress -> bool) ->
    ?trace:Trace.Sink.t ->
    ?link:Link_intf.t ->
    adversary:Adversary_intf.t ->
    inputs:int array ->
    unit ->
    outcome;
}

(* The engine proper, written against the buffered protocol interface; the
   list-based [run] below routes legacy protocols through the shim. Event
   and metric ordering deliberately reproduces the original list-based
   engine bit for bit:
   - the envelope array groups senders in ascending pid order, and within a
     sender lists messages in *reverse* emission order (the old engine
     consed each outbox onto an accumulator);
   - omission decisions, metric counters and Omit/Deliver events run per
     sender in ascending pid order and *forward* emission order (the old
     delivery loop walked the outbox lists head-first);
   - inboxes arrive sorted by ascending sender, equal senders keeping
     reverse emission order (cons-then-stable-sort in the old engine; here
     the delivery pass pushes survivors back-to-front so the mailbox comes
     out already sorted). *)
let instance (module P : Protocol_intf.BUFFERED) (cfg : Config.t) : instance =
  let n = cfg.n in
  (* Mailboxes start tiny and grow on demand: a [~hint:n] here would cost
     O(n^2) words before the first round (2n buffers of n slots — ~256 MB
     at n = 4096), paid even by runs whose protocols broadcast through
     segments and never materialise n rows. Instance construction is
     O(n); the few doubling steps on the first heavy round are amortised
     away by reuse. *)
  let inboxes : P.msg Mailbox.t array =
    Array.init n (fun _ -> Mailbox.create ())
  in
  (* Round-shared broadcast table: the fast path delivers a surviving
     broadcast as one table entry instead of one row per destination;
     every inbox merges the table back in at read time. *)
  let bcast = Mailbox.shared_create () in
  Array.iteri (fun pid ib -> Mailbox.attach_shared ib bcast ~owner:pid) inboxes;
  let outboxes : P.msg Mailbox.t array =
    Array.init n (fun _ -> Mailbox.create ())
  in
  (* One emit / emit_all closure pair per sender, allocated once. The
     destination-range check lives here (not in the arena fill, which is
     now lazy and may never run). *)
  let emits =
    Array.init n (fun pid ->
        let ob = outboxes.(pid) in
        fun dst m ->
          if dst < 0 || dst >= n then
            invalid_arg "Engine.run: message to out-of-range pid";
          Mailbox.push ob ~peer:dst m)
  in
  let emit_alls =
    Array.init n (fun pid ->
        let ob = outboxes.(pid) in
        fun ~lo ~hi ~skip ~desc m ->
          if hi >= lo then begin
            if lo < 0 || hi >= n then
              invalid_arg "Engine.run: message to out-of-range pid";
            Mailbox.push_all ob ~lo ~hi ~skip ~desc m
          end)
  in
  let faulty = Array.make n false in
  let used_randomness = Array.make n false in
  (* Envelope arena: grow-only record pool refreshed in place each round.
     [arena_ensure] grows straight to a known round total so a heavy round
     costs one allocation, not a doubling cascade. *)
  let arena = ref ([||] : View.envelope array) in
  let arena_len = ref 0 in
  let arena_ensure total =
    let cap = Array.length !arena in
    if total > cap then begin
      let cap' = max total (2 * cap) in
      arena :=
        Array.init cap' (fun i ->
            if i < cap then (!arena).(i)
            else { View.src = 0; dst = 0; bits = 0; hint = None })
    end
  in
  let arena_push src dst bits hint =
    if !arena_len = Array.length !arena then arena_ensure (!arena_len + 1);
    let e = (!arena).(!arena_len) in
    e.View.src <- src;
    e.dst <- dst;
    e.bits <- bits;
    e.hint <- hint;
    incr arena_len
  in
  (* Exact-length window over the arena handed to the adversary / [on_round];
     rebuilt only when the round's message count changes (arena growth keeps
     record identity for retained slots, so a cached window stays valid). *)
  let exact = ref ([||] : View.envelope array) in
  let arena_window () =
    if !arena_len = 0 then [||] (* the static empty atom, no allocation *)
    else if !arena_len = Array.length !arena then !arena
    else begin
      if Array.length !exact <> !arena_len then
        exact := Array.sub !arena 0 !arena_len;
      !exact
    end
  in
  (* The single adversary view, refreshed in place each round. *)
  let view_obs =
    Array.init n (fun pid ->
        {
          View.pid;
          core = { View.candidate = None; operative = false; decided = None };
          used_randomness = false;
        })
  in
  let view =
    {
      View.round = 0;
      cfg;
      faulty = Array.make n false;
      faults_used = 0;
      obs = view_obs;
      envelopes = [||];
      envelopes_ready = true;
      refresh_envelopes = (fun () -> [||]);
    }
  in
  (* Lazy arena fill: expand every outbox — broadcast segments included —
     into envelope records, each sender walked in reverse emission order
     (the ordering note above). Installed as the view's refresher; runs
     at most once per round, and only when someone actually reads the
     envelopes (tracer, [on_round] hook, or an envelope-inspecting
     adversary). *)
  let fill_arena () =
    arena_len := 0;
    let total = ref 0 in
    for pid = 0 to n - 1 do
      total := !total + Mailbox.length outboxes.(pid)
    done;
    arena_ensure !total;
    for pid = 0 to n - 1 do
      Mailbox.riter outboxes.(pid) (fun dst m ->
          arena_push pid dst (max 1 (P.msg_bits m)) (P.msg_hint m))
    done;
    arena_window ()
  in
  view.View.refresh_envelopes <- fill_arena;
  (* Per-sender omission flags, grown to the largest outbox seen. *)
  let omit_scratch = ref Bytes.empty in
  let run_i ?on_round ?stop ?trace ?link ~(adversary : Adversary_intf.t)
      ~(inputs : int array) () : outcome =
    if Array.length inputs <> n then
      invalid_arg "Engine.run: inputs length must equal n";
    Array.iter
      (fun b ->
        if b <> 0 && b <> 1 then invalid_arg "Engine.run: inputs must be bits")
      inputs;
    (* The link layer's per-run state (fault-model channels, retransmit
       stats) is reset from the run seed before anything else happens, so a
       link — like an instance — can be reused across runs purely. *)
    (match link with
    | None -> ()
    | Some l -> l.Link_intf.reset ~seed:cfg.seed);
    let counter = Rand.Counter.create () in
    let root = Rand.create ~counter ~seed:(Int64.of_int cfg.seed) () in
    (* One scratch stream, reseeded per step; shares [root]'s counter. *)
    let step_rand = Rand.derive root 0 in
    let adv_rand = Rand.create ~seed:(Int64.of_int (cfg.seed + 0x5eed)) () in
    let adv = adversary.create cfg adv_rand in
    let states = Array.init n (fun pid -> P.init cfg ~pid ~input:inputs.(pid)) in
    Array.iter Mailbox.clear inboxes;
    Array.iter Mailbox.clear outboxes;
    Mailbox.shared_clear bcast;
    Array.fill faulty 0 n false;
    Array.fill used_randomness 0 n false;
    let faults_used = ref 0 in
    let messages_sent = ref 0 in
    let bits_sent = ref 0 in
    let messages_omitted = ref 0 in
    let decided_round = ref None in
    let rounds_total = ref 0 in
    let tr =
      match trace with
      | None -> None
      | Some sink ->
          Some
            {
              sink;
              prev_operative =
                Array.init n (fun pid -> (P.observe states.(pid)).operative);
              prev_candidate =
                Array.init n (fun pid -> (P.observe states.(pid)).candidate);
              prev_decided =
                Array.init n (fun pid -> (P.observe states.(pid)).decided);
              r0_messages = 0;
              r0_bits = 0;
              r0_omitted = 0;
              r0_rand_calls = 0;
              r0_rand_bits = 0;
            }
    in
    let round = ref 1 in
    let stop_flag = ref false in
    while (not !stop_flag) && !round <= cfg.max_rounds do
      let r = !round in
      rounds_total := r;
      (match tr with
      | None -> ()
      | Some t ->
          t.r0_messages <- !messages_sent;
          t.r0_bits <- !bits_sent;
          t.r0_omitted <- !messages_omitted;
          t.r0_rand_calls <- Rand.Counter.calls counter;
          t.r0_rand_bits <- Rand.Counter.bits counter;
          Trace.Sink.emit t.sink (Trace.Event.Round_start { round = r }));
      (* Phase 1: local computation. *)
      for pid = 0 to n - 1 do
        let calls_before = Rand.Counter.calls counter in
        let bits_before = Rand.Counter.bits counter in
        Mailbox.clear outboxes.(pid);
        Rand.derive_into ~into:step_rand root ((r * n) + pid);
        let state' =
          P.step_into cfg states.(pid) ~round:r ~inbox:inboxes.(pid)
            ~rand:step_rand ~emit:emits.(pid) ~emit_all:emit_alls.(pid)
        in
        states.(pid) <- state';
        used_randomness.(pid) <- Rand.Counter.calls counter > calls_before;
        Mailbox.clear inboxes.(pid);
        match tr with
        | None -> ()
        | Some t ->
            let calls_after = Rand.Counter.calls counter in
            if calls_after > calls_before then
              Trace.Sink.emit t.sink
                (Trace.Event.Coin
                   {
                     round = r;
                     pid;
                     calls = calls_after - calls_before;
                     bits = Rand.Counter.bits counter - bits_before;
                   });
            let obs = P.observe states.(pid) in
            if
              obs.operative <> t.prev_operative.(pid)
              || obs.candidate <> t.prev_candidate.(pid)
            then begin
              t.prev_operative.(pid) <- obs.operative;
              t.prev_candidate.(pid) <- obs.candidate;
              Trace.Sink.emit t.sink
                (Trace.Event.Phase
                   {
                     round = r;
                     pid;
                     operative = obs.operative;
                     candidate = obs.candidate;
                   })
            end;
            (match (t.prev_decided.(pid), obs.decided) with
            | None, Some v ->
                t.prev_decided.(pid) <- Some v;
                Trace.Sink.emit t.sink
                  (Trace.Event.Decide { round = r; pid; value = v })
            | _ -> ())
      done;
      (* Termination is detected on the local phase: deciding is a local act. *)
      let everyone_decided = ref true in
      let pid = ref 0 in
      while !everyone_decided && !pid < n do
        if (not faulty.(!pid)) && (P.observe states.(!pid)).decided = None then
          everyone_decided := false;
        incr pid
      done;
      if !everyone_decided && !decided_round = None then decided_round := Some r;
      (* Phase 2: adversary intervention. The envelope arena is no longer
         filled eagerly: the view refreshes it on first access (the
         tracer and [on_round] force it; an adversary that never reads
         envelopes skips the O(messages) expansion entirely). *)
      view.View.round <- r;
      Array.blit faulty 0 view.View.faulty 0 n;
      view.View.faults_used <- !faults_used;
      for pid = 0 to n - 1 do
        let o = view_obs.(pid) in
        o.View.core <- P.observe states.(pid);
        o.View.used_randomness <- used_randomness.(pid)
      done;
      view.View.envelopes_ready <- false;
      (match on_round with
      | Some f -> f ~round:r (View.envelopes view)
      | None -> ());
      (match tr with
      | None -> ()
      | Some t ->
          Array.iter
            (fun (e : View.envelope) ->
              Trace.Sink.emit t.sink
                (Trace.Event.Send
                   { round = r; src = e.src; dst = e.dst; bits = e.bits;
                     hint = e.hint }))
            (View.envelopes view));
      let plan = adv view in
      List.iter
        (fun pid ->
          if pid < 0 || pid >= n then illegal "corruption of out-of-range pid %d" pid;
          if not faulty.(pid) then begin
            if !faults_used >= cfg.t_max then
              illegal "corruption budget t=%d exceeded at round %d" cfg.t_max r;
            faulty.(pid) <- true;
            incr faults_used;
            match tr with
            | None -> ()
            | Some t ->
                Trace.Sink.emit t.sink (Trace.Event.Corrupt { round = r; pid })
          end)
        plan.new_faults;
      (* Phase 3: communication. Omitted messages still count as sent: the
         sender transmitted them; the adversary suppressed delivery. The
         forward pass decides omissions (in emission order — omission
         predicates may draw randomness per call); the backward pass pushes
         survivors so each destination mailbox comes out sorted by sender.
         Messages the adversary let through additionally cross the [link]
         layer (when one is plugged in): a [Lost] verdict is a residual
         link loss, marked '\002' — dropped like an omission but neither
         checked against the fault set nor counted in [messages_omitted];
         the transport accounts for it as an induced omission fault. *)
      (match link with
      | None -> ()
      | Some l -> l.Link_intf.begin_round ~round:r);
      let fast = (match tr with None -> true | Some _ -> false) && link = None in
      (* Last round's broadcast-table entries were consumed in phase 1;
         the table refills below (fast path only — it stays empty on the
         general path, whose inboxes then iterate as plain rows). *)
      Mailbox.shared_clear bcast;
      (match plan.compiled with
      | Some compiled when fast ->
          (* Mask-blit fast path: no tracer and no link, and the plan
             carries a compiled verdict per sender. Counters update in
             aggregate (one add per entry, broadcast segments unexpanded);
             the only per-destination work left is the inbox push for
             survivors — and the forward legality scan, which preserves
             the exact [Illegal_plan] the general path would raise (the
             first omitted message, in emission order, whose endpoints are
             both non-faulty). *)
          for pid = 0 to n - 1 do
            let ob = outboxes.(pid) in
            let total = Mailbox.length ob in
            if total > 0 then begin
              messages_sent := !messages_sent + total;
              Mailbox.iter_entries ob
                ~point:(fun _dst m ->
                  bits_sent := !bits_sent + max 1 (P.msg_bits m))
                ~seg:(fun ~lo:_ ~hi:_ ~skip:_ ~desc:_ ~size m ->
                  bits_sent := !bits_sent + (size * max 1 (P.msg_bits m)));
              (* A sender whose round is pure wide broadcast delivers
                 through the round-shared table: O(1) per segment instead
                 of one inbox row per destination. Mixed, pointwise or
                 narrow-segment (e.g. one-group) outboxes keep the
                 per-destination blit — every receiver scans the whole
                 table, so only segments covering at least half the
                 network pay for their scan slot — and the routing is
                 all-or-nothing per sender, so table sources and
                 pointwise inbox rows stay disjoint (the merge contract).
                 Segments are appended in reverse emission order — the
                 same per-sender order the pointwise blit produces. *)
              let pure_bcast =
                Mailbox.point_length ob = 0
                && Mailbox.seg_count ob > 0
                && 2 * Mailbox.min_seg_span ob >= n
              in
              match compiled pid with
              | View.Deliver_all ->
                  if pure_bcast then
                    Mailbox.riter_entries ob
                      ~point:(fun _ _ -> assert false)
                      ~seg:(fun ~lo ~hi ~skip ~desc:_ ~size:_ m ->
                        Mailbox.shared_push bcast ~src:pid ~lo ~hi ~skip
                          ~mask:Bytes.empty m)
                  else
                    (* senders ascend and each sender pushes in reverse
                       emission order, so inboxes come out sorted with the
                       same-sender order the legacy engine produced *)
                    Mailbox.rdeliver ob inboxes ~peer:pid
              | View.Omit_all ->
                  if not faulty.(pid) then
                    Mailbox.iter ob (fun dst _m ->
                        if not faulty.(dst) then
                          illegal
                            "omission between non-faulty %d -> %d at round %d"
                            pid dst r);
                  messages_omitted := !messages_omitted + total
              | View.Omit_mask b ->
                  let sender_faulty = faulty.(pid) in
                  Mailbox.iter ob (fun dst _m ->
                      if Bytes.get b dst <> '\000' then begin
                        if (not sender_faulty) && not faulty.(dst) then
                          illegal
                            "omission between non-faulty %d -> %d at round %d"
                            pid dst r;
                        incr messages_omitted
                      end);
                  if pure_bcast then
                    Mailbox.riter_entries ob
                      ~point:(fun _ _ -> assert false)
                      ~seg:(fun ~lo ~hi ~skip ~desc:_ ~size:_ m ->
                        Mailbox.shared_push bcast ~src:pid ~lo ~hi ~skip
                          ~mask:b m)
                  else Mailbox.rdeliver_masked ob inboxes ~peer:pid ~mask:b
            end
          done
      | _ ->
          (* General path: tracer or link present, or a pointwise-only
             plan. Broadcast segments are expanded in place first, then
             the per-message loop runs exactly as the legacy engine did —
             with the omission verdict read from the compiled mask when
             one exists (so traced runs still exercise mask semantics)
             and from the predicate otherwise. *)
          for pid = 0 to n - 1 do
            let ob = outboxes.(pid) in
            Mailbox.flatten ob;
            let len = Mailbox.length ob in
            if len > 0 then begin
              if Bytes.length !omit_scratch < len then
                omit_scratch := Bytes.create len;
              let om = !omit_scratch in
              (* per-sender verdict source: 0 = predicate, 1 = deliver
                 all, 2 = omit all, 3 = mask bytes *)
              let mode, mbytes =
                match plan.compiled with
                | None -> (0, Bytes.empty)
                | Some c -> (
                    match c pid with
                    | View.Deliver_all -> (1, Bytes.empty)
                    | View.Omit_all -> (2, Bytes.empty)
                    | View.Omit_mask b -> (3, b))
              in
              for i = 0 to len - 1 do
                let dst = Mailbox.peer ob i in
                incr messages_sent;
                bits_sent := !bits_sent + max 1 (P.msg_bits (Mailbox.msg ob i));
                let omitted =
                  match mode with
                  | 0 -> plan.omit pid dst
                  | 1 -> false
                  | 2 -> true
                  | _ -> Bytes.get mbytes dst <> '\000'
                in
                if omitted then begin
                  if (not faulty.(pid)) && not faulty.(dst) then
                    illegal "omission between non-faulty %d -> %d at round %d"
                      pid dst r;
                  incr messages_omitted;
                  Bytes.unsafe_set om i '\001';
                  match tr with
                  | None -> ()
                  | Some t ->
                      Trace.Sink.emit t.sink
                        (Trace.Event.Omit { round = r; src = pid; dst })
                end
                else begin
                  let delivered =
                    match link with
                    | None -> true
                    | Some l -> (
                        match
                          l.Link_intf.transmit ~trace ~round:r ~src:pid ~dst
                        with
                        | Link_intf.Delivered -> true
                        | Link_intf.Lost -> false)
                  in
                  if delivered then begin
                    Bytes.unsafe_set om i '\000';
                    match tr with
                    | None -> ()
                    | Some t ->
                        Trace.Sink.emit t.sink
                          (Trace.Event.Deliver { round = r; src = pid; dst })
                  end
                  else Bytes.unsafe_set om i '\002'
                end
              done;
              for i = len - 1 downto 0 do
                if Bytes.unsafe_get om i = '\000' then
                  Mailbox.push inboxes.(Mailbox.peer ob i) ~peer:pid
                    (Mailbox.msg ob i)
              done
            end
          done);
      (* The backward survivor push fills every inbox sorted by ascending
         sender already; assert the contract in debug builds instead of
         paying an O(n + len) re-sort scan on the steady-state hot path. *)
      assert (
        let sorted = ref true in
        for pid = 0 to n - 1 do
          if not (Mailbox.is_sorted_by_peer inboxes.(pid)) then sorted := false
        done;
        !sorted);
      (match tr with
      | None -> ()
      | Some t ->
          Trace.Sink.emit t.sink
            (Trace.Event.Round_end
               {
                 round = r;
                 messages = !messages_sent - t.r0_messages;
                 bits = !bits_sent - t.r0_bits;
                 omitted = !messages_omitted - t.r0_omitted;
                 rand_calls = Rand.Counter.calls counter - t.r0_rand_calls;
                 rand_bits = Rand.Counter.bits counter - t.r0_rand_bits;
               }));
      if !decided_round <> None then stop_flag := true;
      (match stop with
      | None -> ()
      | Some f ->
          if
            (not !stop_flag)
            && f
                 {
                   p_round = r;
                   p_messages = !messages_sent;
                   p_bits = !bits_sent;
                   p_rand_calls = Rand.Counter.calls counter;
                   p_rand_bits = Rand.Counter.bits counter;
                 }
          then stop_flag := true);
      incr round
    done;
    {
      decisions = Array.map (fun s -> (P.observe s).decided) states;
      faulty;
      rounds_total = !rounds_total;
      decided_round = !decided_round;
      messages_sent = !messages_sent;
      bits_sent = !bits_sent;
      messages_omitted = !messages_omitted;
      rand_calls = Rand.Counter.calls counter;
      rand_bits = Rand.Counter.bits counter;
      faults_used = !faults_used;
    }
  in
  { run_i }

(** Execute one run through a reusable {!instance}. *)
let run_instance ?on_round ?stop ?trace ?link (i : instance)
    ~(adversary : Adversary_intf.t) ~(inputs : int array) : outcome =
  i.run_i ?on_round ?stop ?trace ?link ~adversary ~inputs ()

(** [run protocol cfg ~adversary ~inputs] executes a full run of a
    list-based protocol through the compatibility shim. [on_round], if
    given, is called once per round with the round's envelopes (before the
    adversary intervenes) — benches use it to trace per-slot traffic.
    [stop], if given, is consulted at the end of every round with the
    cumulative metric counters; returning [true] ends the run exactly as
    hitting [max_rounds] would — the supervision layer uses it to extend
    the [max_rounds] semantics to message/randomness/wall-clock budgets. *)
let run ?on_round ?stop ?trace ?link (module P : Protocol_intf.S)
    (cfg : Config.t) ~(adversary : Adversary_intf.t) ~(inputs : int array) :
    outcome =
  let i = instance (module Protocol_intf.Shim (P)) cfg in
  i.run_i ?on_round ?stop ?trace ?link ~adversary ~inputs ()

(** Run a buffered protocol on the allocation-free path directly. *)
let run_buffered ?on_round ?stop ?trace ?link (p : Protocol_intf.buffered)
    (cfg : Config.t) ~(adversary : Adversary_intf.t) ~(inputs : int array) :
    outcome =
  let i = instance p cfg in
  i.run_i ?on_round ?stop ?trace ?link ~adversary ~inputs ()

(** Dispatch on whichever path the protocol supports. *)
let run_any ?on_round ?stop ?trace ?link (p : Protocol_intf.any)
    (cfg : Config.t) ~(adversary : Adversary_intf.t) ~(inputs : int array) :
    outcome =
  match p with
  | Protocol_intf.Legacy p ->
      run ?on_round ?stop ?trace ?link p cfg ~adversary ~inputs
  | Protocol_intf.Buffered p ->
      run_buffered ?on_round ?stop ?trace ?link p cfg ~adversary ~inputs
