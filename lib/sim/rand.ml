module Counter = struct
  type t = { mutable calls : int; mutable bits : int }

  let create () = { calls = 0; bits = 0 }
  let calls t = t.calls
  let bits t = t.bits

  let reset t =
    t.calls <- 0;
    t.bits <- 0

  let charge t k =
    t.calls <- t.calls + 1;
    t.bits <- t.bits + k

  (* Additional raw bits consumed within an already-charged call (rejection
     re-draws): bits accrue without counting another call. *)
  let charge_bits t k = t.bits <- t.bits + k
end

type t = { mutable base : int64; mutable state : int64; counter : Counter.t }

(* splitmix64: fast, high-quality 64-bit mixing; every run is a pure function
   of the seed, which the whole test suite relies on. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let golden = 0x9E3779B97F4A7C15L

let next t =
  t.state <- Int64.add t.state golden;
  mix64 t.state

let create ?counter ~seed () =
  let counter = match counter with Some c -> c | None -> Counter.create () in
  let base = mix64 (Int64.add seed golden) in
  { base; state = base; counter }

let derive t i =
  let base = mix64 (Int64.logxor t.base (mix64 (Int64.of_int (i + 1)))) in
  { base; state = base; counter = t.counter }

(* Same derivation as [derive], but reseeding an existing stream in place so
   the engine's inner loop does not allocate a stream per step. [into] must
   share [t]'s counter for the accounting to stay coherent. *)
let derive_into ~into t i =
  let base = mix64 (Int64.logxor t.base (mix64 (Int64.of_int (i + 1)))) in
  into.base <- base;
  into.state <- base

let counter t = t.counter

let raw_bits t k = Int64.to_int (Int64.shift_right_logical (next t) (64 - k))

let bit t =
  Counter.charge t.counter 1;
  raw_bits t 1

let bits t k =
  if k < 1 || k > 62 then invalid_arg "Rand.bits: k must be in [1, 62]";
  Counter.charge t.counter k;
  raw_bits t k

let int_below t m =
  if m <= 0 then invalid_arg "Rand.int_below: bound must be positive";
  (* Number of bits needed to cover [0, m); rejection sampling keeps the
     distribution exactly uniform. One logical call, but every draw attempt
     consumes k fresh bits from the source — rejected draws included —
     so each re-draw is charged too, or rand_bits would undercount the
     randomness the algorithm actually spent. *)
  let rec nbits acc v = if v = 0 then acc else nbits (acc + 1) (v lsr 1) in
  let k = max 1 (nbits 0 (m - 1)) in
  Counter.charge t.counter k;
  let rec draw () =
    let v = raw_bits t k in
    if v < m then v
    else begin
      Counter.charge_bits t.counter k;
      draw ()
    end
  in
  draw ()

let float t =
  Counter.charge t.counter 53;
  Int64.to_float (Int64.shift_right_logical (next t) 11) *. 0x1p-53

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int_below t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
