(** Structured per-round event tracing.

    The paper's claims are statements about per-round resource flows —
    rounds, communication bits, random bits (Table 1) — so the trace layer
    is both the measurement instrument and the debugging tool: every send,
    delivery, omission, corruption, coin draw, state-phase transition and
    decision the engine executes can be emitted as a typed event into a
    pluggable {!Sink}.

    Design constraints:
    - {b zero cost when off}: the engine takes an [option]al sink and
      allocates nothing on the off path; this library never installs global
      state.
    - {b deterministic}: events carry no timestamps, so two runs with the
      same seed produce byte-identical traces at any [--jobs] width
      (wall-clock lives only in {!Metrics}, outside the event stream).
    - {b bounded capture}: {!Ring} / {!Tail} keep the last K rounds in a
      preallocated buffer, cheap enough to leave on for every supervised
      run so quarantine records ship with their trace tail. *)

(** Serialization format of a trace file. *)
type format = Jsonl | Binary

val format_of_string : string -> format option
val format_to_string : format -> string

val format_extension : format -> string
(** ["jsonl"] or ["bin"]. *)

module Event : sig
  (** One engine event. [round] is 1-based; counters in [Round_end] are the
      round's own deltas, not cumulative totals. *)
  type t =
    | Round_start of { round : int }
    | Send of { round : int; src : int; dst : int; bits : int; hint : int option }
        (** a message handed to the communication phase (pre-adversary) *)
    | Corrupt of { round : int; pid : int }
        (** the adversary corrupted [pid] this round *)
    | Omit of { round : int; src : int; dst : int }
        (** the adversary suppressed this round's [src] -> [dst] message *)
    | Deliver of { round : int; src : int; dst : int }
        (** the message survived and will be consumed next round *)
    | Coin of { round : int; pid : int; calls : int; bits : int }
        (** [pid] drew from the counted random source during its local phase *)
    | Phase of { round : int; pid : int; operative : bool; candidate : int option }
        (** [pid]'s observable state changed (operative flag or candidate) *)
    | Decide of { round : int; pid : int; value : int }
    | Round_end of {
        round : int;
        messages : int;
        bits : int;
        omitted : int;
        rand_calls : int;
        rand_bits : int;
      }  (** per-round totals *)
    | Drop of { round : int; src : int; dst : int; attempt : int }
        (** the link lost attempt [attempt] of this exchange (lib/net only;
            the engine never emits link events) *)
    | Dup of { round : int; src : int; dst : int; copies : int }
        (** the link delivered [copies] > 1 copies of one attempt *)
    | Delay of { round : int; src : int; dst : int; slots : int }
        (** one attempt arrived [slots] virtual sub-slots late *)
    | Retransmit of { round : int; src : int; dst : int; attempt : int; backoff : int }
        (** the synchronizer re-sent after waiting [backoff] sub-slots *)
    | Ack of { round : int; src : int; dst : int; attempt : int }
        (** the ack for attempt [attempt] reached the sender *)
    | Degrade of { round : int; src : int; dst : int; attempts : int }
        (** the retry budget ran dry: a residual loss, re-expressed as an
            induced omission (see [Net.Degradation]) *)
    | Cache_hit of { key : string }
        (** provenance marker: this run was not executed — its outcome was
            served from a content-addressed store under [key] (the hex
            digest). Emitted as the only event of the run, at round 0. *)

  val round : t -> int
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit

  val to_json : t -> string
  (** One-line flat JSON object, no trailing newline. *)

  val of_json : string -> t option
  (** Parses exactly the lines {!to_json} writes. *)

  val to_binary : Buffer.t -> t -> unit
  (** Append the compact binary encoding (tag byte + LEB128 varints). *)

  exception Truncated

  val of_binary : string -> int ref -> t
  (** Decode one event at [!pos], advancing it. Raises {!Truncated} on a
      short read and [Failure] on an unknown tag. *)
end

(** A pluggable event consumer. *)
module Sink : sig
  type t

  val make : emit:(Event.t -> unit) -> close:(unit -> unit) -> t
  val emit : t -> Event.t -> unit
  val close : t -> unit
  val null : t
  val tee : t -> t -> t
  val tee_all : t list -> t

  val memory : unit -> t * (unit -> Event.t list)
  (** In-memory sink for tests: the second component returns the events
      recorded so far, oldest first. *)

  val jsonl : out_channel -> t
  (** One JSON object per line; [close] flushes but does not close the
      channel. *)

  val binary : out_channel -> t
  (** Compact binary codec for soak runs (writes the magic header, buffers
      ~64 KiB between writes); [close] flushes but does not close the
      channel. *)

  val file : path:string -> format:format -> t
  (** Opens [path], writes in [format]; [close] closes the file. *)
end

(** Preallocated event ring: O(1) add, keeps the newest [capacity] events,
    allocates only at creation. *)
module Ring : sig
  type t

  val create : capacity:int -> t
  val capacity : t -> int
  val length : t -> int
  val add : t -> Event.t -> unit

  val to_list : t -> Event.t list
  (** Oldest first. *)

  val sink : t -> Sink.t
end

(** Last-K-rounds capture over a {!Ring} — what quarantine records ship
    with. *)
module Tail : sig
  type t

  val create : ?capacity:int -> rounds:int -> unit -> t
  (** [capacity] bounds the event count (default 8192); [rounds] is the
      number of trailing rounds reported by {!events}. *)

  val sink : t -> Sink.t

  val events : t -> Event.t list
  (** The retained events of the last [rounds] distinct rounds, oldest
      first. *)

  val lines : t -> string list
  (** {!events} rendered as JSONL lines. *)
end

(** Per-round counters and a run summary derived from the event stream. *)
module Metrics : sig
  type per_round = {
    round : int;
    messages : int;
    bits : int;
    omitted : int;
    corruptions : int;
    coin_calls : int;
    coin_bits : int;
    decisions : int;
    wall_s : float;  (** wall-clock spent in this round (collector-side) *)
  }

  type summary = {
    rounds : int;
    messages : int;
    bits : int;
    omitted : int;
    corruptions : int;
    coin_calls : int;
    coin_bits : int;
    decisions : int;
    max_round_messages : int;
    max_round_bits : int;
    max_round_coin_bits : int;
    wall_total_s : float;
    per_round : per_round list;  (** chronological *)
  }

  val empty_summary : summary

  val collector : ?clock:(unit -> float) -> unit -> Sink.t * (unit -> summary)
  (** A sink that folds the stream into per-round counters; call the second
      component after the run for the summary. [clock] defaults to
      [Unix.gettimeofday]; pass a constant clock for deterministic
      summaries. *)

  val of_events : Event.t list -> summary
  (** Fold a recorded event list (deterministic: wall times are 0). *)

  val pp_summary : Format.formatter -> summary -> unit
end

(** Whole-trace files. *)
module File : sig
  exception Corrupt of string

  val write : path:string -> format:format -> Event.t list -> unit

  val read : string -> Event.t list
  (** Auto-detects the format (binary magic vs JSONL). Raises {!Corrupt} on
      undecodable content. *)
end

(** First-diverging-event comparison — the debuggable form of the test
    suite's "bit-identical" claims. *)
module Diff : sig
  type divergence = {
    index : int;  (** 0-based position of the first differing event *)
    left : Event.t option;  (** [None]: the left trace ended here *)
    right : Event.t option;  (** [None]: the right trace ended here *)
  }

  type outcome = Identical of int  (** event count *) | Diverged of divergence

  val events : Event.t list -> Event.t list -> outcome
  val files : left:string -> right:string -> outcome
  val pp_outcome : Format.formatter -> outcome -> unit
end
