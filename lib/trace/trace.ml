(* Structured per-round event tracing: the measurement instrument behind
   the paper's per-round resource flows (rounds, communication bits, random
   bits) and the debugging tool behind quarantine records. See trace.mli. *)

type format = Jsonl | Binary

let format_of_string = function
  | "jsonl" | "json" -> Some Jsonl
  | "binary" | "bin" -> Some Binary
  | _ -> None

let format_to_string = function Jsonl -> "jsonl" | Binary -> "binary"
let format_extension = function Jsonl -> "jsonl" | Binary -> "bin"

(* ------------------------------------------------------------------ *)
(* Events.                                                             *)
(* ------------------------------------------------------------------ *)

module Event = struct
  type t =
    | Round_start of { round : int }
    | Send of { round : int; src : int; dst : int; bits : int; hint : int option }
    | Corrupt of { round : int; pid : int }
    | Omit of { round : int; src : int; dst : int }
    | Deliver of { round : int; src : int; dst : int }
    | Coin of { round : int; pid : int; calls : int; bits : int }
    | Phase of { round : int; pid : int; operative : bool; candidate : int option }
    | Decide of { round : int; pid : int; value : int }
    | Round_end of {
        round : int;
        messages : int;
        bits : int;
        omitted : int;
        rand_calls : int;
        rand_bits : int;
      }
    (* Link-layer events (lib/net): emitted only by a lossy transport, never
       by the engine itself, so linkless traces are unchanged. *)
    | Drop of { round : int; src : int; dst : int; attempt : int }
    | Dup of { round : int; src : int; dst : int; copies : int }
    | Delay of { round : int; src : int; dst : int; slots : int }
    | Retransmit of { round : int; src : int; dst : int; attempt : int; backoff : int }
    | Ack of { round : int; src : int; dst : int; attempt : int }
    | Degrade of { round : int; src : int; dst : int; attempts : int }
    (* cache provenance: the run was not executed — its outcome was
       served from a content-addressed store under [key] (the hex
       digest, never the raw spec). Emitted before any round event. *)
    | Cache_hit of { key : string }

  let round = function
    | Cache_hit _ -> 0
    | Round_start { round }
    | Send { round; _ }
    | Corrupt { round; _ }
    | Omit { round; _ }
    | Deliver { round; _ }
    | Coin { round; _ }
    | Phase { round; _ }
    | Decide { round; _ }
    | Round_end { round; _ }
    | Drop { round; _ }
    | Dup { round; _ }
    | Delay { round; _ }
    | Retransmit { round; _ }
    | Ack { round; _ }
    | Degrade { round; _ } ->
        round

  let equal (a : t) (b : t) = a = b

  let opt_json = function None -> "null" | Some v -> string_of_int v

  let to_json = function
    | Round_start { round } ->
        Printf.sprintf {|{"ev":"round-start","round":%d}|} round
    | Send { round; src; dst; bits; hint } ->
        Printf.sprintf
          {|{"ev":"send","round":%d,"src":%d,"dst":%d,"bits":%d,"hint":%s}|}
          round src dst bits (opt_json hint)
    | Corrupt { round; pid } ->
        Printf.sprintf {|{"ev":"corrupt","round":%d,"pid":%d}|} round pid
    | Omit { round; src; dst } ->
        Printf.sprintf {|{"ev":"omit","round":%d,"src":%d,"dst":%d}|} round src
          dst
    | Deliver { round; src; dst } ->
        Printf.sprintf {|{"ev":"deliver","round":%d,"src":%d,"dst":%d}|} round
          src dst
    | Coin { round; pid; calls; bits } ->
        Printf.sprintf
          {|{"ev":"coin","round":%d,"pid":%d,"calls":%d,"bits":%d}|} round pid
          calls bits
    | Phase { round; pid; operative; candidate } ->
        Printf.sprintf
          {|{"ev":"phase","round":%d,"pid":%d,"operative":%b,"candidate":%s}|}
          round pid operative (opt_json candidate)
    | Decide { round; pid; value } ->
        Printf.sprintf {|{"ev":"decide","round":%d,"pid":%d,"value":%d}|} round
          pid value
    | Round_end { round; messages; bits; omitted; rand_calls; rand_bits } ->
        Printf.sprintf
          {|{"ev":"round-end","round":%d,"messages":%d,"bits":%d,"omitted":%d,"rand_calls":%d,"rand_bits":%d}|}
          round messages bits omitted rand_calls rand_bits
    | Drop { round; src; dst; attempt } ->
        Printf.sprintf
          {|{"ev":"drop","round":%d,"src":%d,"dst":%d,"attempt":%d}|} round src
          dst attempt
    | Dup { round; src; dst; copies } ->
        Printf.sprintf
          {|{"ev":"dup","round":%d,"src":%d,"dst":%d,"copies":%d}|} round src
          dst copies
    | Delay { round; src; dst; slots } ->
        Printf.sprintf
          {|{"ev":"delay","round":%d,"src":%d,"dst":%d,"slots":%d}|} round src
          dst slots
    | Retransmit { round; src; dst; attempt; backoff } ->
        Printf.sprintf
          {|{"ev":"retransmit","round":%d,"src":%d,"dst":%d,"attempt":%d,"backoff":%d}|}
          round src dst attempt backoff
    | Ack { round; src; dst; attempt } ->
        Printf.sprintf
          {|{"ev":"ack","round":%d,"src":%d,"dst":%d,"attempt":%d}|} round src
          dst attempt
    | Degrade { round; src; dst; attempts } ->
        Printf.sprintf
          {|{"ev":"degrade","round":%d,"src":%d,"dst":%d,"attempts":%d}|} round
          src dst attempts
    (* keys are hex digests: no commas, colons, or quotes to escape *)
    | Cache_hit { key } -> Printf.sprintf {|{"ev":"cache-hit","key":"%s"}|} key

  (* Parses exactly the flat one-line objects [to_json] writes: string
     values never contain commas or colons, so splitting is safe. *)
  let of_json line =
    let line = String.trim line in
    let n = String.length line in
    if n < 2 || line.[0] <> '{' || line.[n - 1] <> '}' then None
    else
      let fields = Hashtbl.create 8 in
      match
        String.split_on_char ',' (String.sub line 1 (n - 2))
        |> List.iter (fun part ->
               match String.index_opt part ':' with
               | None -> raise Exit
               | Some i ->
                   let key = String.trim (String.sub part 0 i) in
                   let value =
                     String.trim
                       (String.sub part (i + 1) (String.length part - i - 1))
                   in
                   let kl = String.length key in
                   if kl < 2 || key.[0] <> '"' || key.[kl - 1] <> '"' then
                     raise Exit;
                   Hashtbl.replace fields (String.sub key 1 (kl - 2)) value)
      with
      | exception Exit -> None
      | () -> (
          let str k =
            match Hashtbl.find_opt fields k with
            | Some v
              when String.length v >= 2
                   && v.[0] = '"'
                   && v.[String.length v - 1] = '"' ->
                String.sub v 1 (String.length v - 2)
            | _ -> raise Exit
          in
          let int k =
            match Hashtbl.find_opt fields k with
            | Some v -> int_of_string v
            | None -> raise Exit
          in
          let boolean k =
            match Hashtbl.find_opt fields k with
            | Some "true" -> true
            | Some "false" -> false
            | _ -> raise Exit
          in
          let opt k =
            match Hashtbl.find_opt fields k with
            | Some "null" -> None
            | Some v -> Some (int_of_string v)
            | None -> raise Exit
          in
          match
            match str "ev" with
            | "round-start" -> Round_start { round = int "round" }
            | "send" ->
                Send
                  {
                    round = int "round";
                    src = int "src";
                    dst = int "dst";
                    bits = int "bits";
                    hint = opt "hint";
                  }
            | "corrupt" -> Corrupt { round = int "round"; pid = int "pid" }
            | "omit" ->
                Omit { round = int "round"; src = int "src"; dst = int "dst" }
            | "deliver" ->
                Deliver
                  { round = int "round"; src = int "src"; dst = int "dst" }
            | "coin" ->
                Coin
                  {
                    round = int "round";
                    pid = int "pid";
                    calls = int "calls";
                    bits = int "bits";
                  }
            | "phase" ->
                Phase
                  {
                    round = int "round";
                    pid = int "pid";
                    operative = boolean "operative";
                    candidate = opt "candidate";
                  }
            | "decide" ->
                Decide
                  { round = int "round"; pid = int "pid"; value = int "value" }
            | "round-end" ->
                Round_end
                  {
                    round = int "round";
                    messages = int "messages";
                    bits = int "bits";
                    omitted = int "omitted";
                    rand_calls = int "rand_calls";
                    rand_bits = int "rand_bits";
                  }
            | "drop" ->
                Drop
                  {
                    round = int "round";
                    src = int "src";
                    dst = int "dst";
                    attempt = int "attempt";
                  }
            | "dup" ->
                Dup
                  {
                    round = int "round";
                    src = int "src";
                    dst = int "dst";
                    copies = int "copies";
                  }
            | "delay" ->
                Delay
                  {
                    round = int "round";
                    src = int "src";
                    dst = int "dst";
                    slots = int "slots";
                  }
            | "retransmit" ->
                Retransmit
                  {
                    round = int "round";
                    src = int "src";
                    dst = int "dst";
                    attempt = int "attempt";
                    backoff = int "backoff";
                  }
            | "ack" ->
                Ack
                  {
                    round = int "round";
                    src = int "src";
                    dst = int "dst";
                    attempt = int "attempt";
                  }
            | "degrade" ->
                Degrade
                  {
                    round = int "round";
                    src = int "src";
                    dst = int "dst";
                    attempts = int "attempts";
                  }
            | "cache-hit" -> Cache_hit { key = str "key" }
            | _ -> raise Exit
          with
          | e -> Some e
          | exception Exit -> None
          | exception Not_found -> None
          | exception Failure _ -> None)

  let pp ppf e =
    match e with
    | Round_start { round } -> Fmt.pf ppf "r%-4d round-start" round
    | Send { round; src; dst; bits; hint } ->
        Fmt.pf ppf "r%-4d send    %d -> %d (%d bits%s)" round src dst bits
          (match hint with
          | Some h -> Printf.sprintf ", hint %d" h
          | None -> "")
    | Corrupt { round; pid } -> Fmt.pf ppf "r%-4d corrupt pid %d" round pid
    | Omit { round; src; dst } ->
        Fmt.pf ppf "r%-4d omit    %d -> %d" round src dst
    | Deliver { round; src; dst } ->
        Fmt.pf ppf "r%-4d deliver %d -> %d" round src dst
    | Coin { round; pid; calls; bits } ->
        Fmt.pf ppf "r%-4d coin    pid %d (%d calls, %d bits)" round pid calls
          bits
    | Phase { round; pid; operative; candidate } ->
        Fmt.pf ppf "r%-4d phase   pid %d operative=%b candidate=%s" round pid
          operative
          (match candidate with Some c -> string_of_int c | None -> "-")
    | Decide { round; pid; value } ->
        Fmt.pf ppf "r%-4d decide  pid %d value %d" round pid value
    | Round_end { round; messages; bits; omitted; rand_calls; rand_bits } ->
        Fmt.pf ppf
          "r%-4d round-end msgs=%d bits=%d omitted=%d rand=%d calls/%d bits"
          round messages bits omitted rand_calls rand_bits
    | Drop { round; src; dst; attempt } ->
        Fmt.pf ppf "r%-4d drop    %d -> %d (attempt %d)" round src dst attempt
    | Dup { round; src; dst; copies } ->
        Fmt.pf ppf "r%-4d dup     %d -> %d (%d copies)" round src dst copies
    | Delay { round; src; dst; slots } ->
        Fmt.pf ppf "r%-4d delay   %d -> %d (%d slots)" round src dst slots
    | Retransmit { round; src; dst; attempt; backoff } ->
        Fmt.pf ppf "r%-4d retransmit %d -> %d (attempt %d, backoff %d)" round
          src dst attempt backoff
    | Ack { round; src; dst; attempt } ->
        Fmt.pf ppf "r%-4d ack     %d <- %d (attempt %d)" round src dst attempt
    | Degrade { round; src; dst; attempts } ->
        Fmt.pf ppf "r%-4d degrade %d -> %d lost after %d attempts" round src
          dst attempts
    | Cache_hit { key } -> Fmt.pf ppf "r0    cache-hit %s" key

  (* --- compact binary codec (tag byte + LEB128 varints) --- *)

  let tag = function
    | Round_start _ -> 0
    | Send _ -> 1
    | Corrupt _ -> 2
    | Omit _ -> 3
    | Deliver _ -> 4
    | Coin _ -> 5
    | Phase _ -> 6
    | Decide _ -> 7
    | Round_end _ -> 8
    | Drop _ -> 9
    | Dup _ -> 10
    | Delay _ -> 11
    | Retransmit _ -> 12
    | Ack _ -> 13
    | Degrade _ -> 14
    | Cache_hit _ -> 15

  let put_uv b n =
    if n < 0 then invalid_arg "Trace.Event: negative field in binary codec";
    let rec go n =
      if n < 0x80 then Buffer.add_char b (Char.chr n)
      else begin
        Buffer.add_char b (Char.chr (0x80 lor (n land 0x7f)));
        go (n lsr 7)
      end
    in
    go n

  let zigzag n = (n lsl 1) lxor (n asr 62)
  let unzigzag n = (n lsr 1) lxor (-(n land 1))

  let put_opt b = function
    | None -> put_uv b 0
    | Some v ->
        put_uv b 1;
        put_uv b (zigzag v)

  let to_binary b e =
    Buffer.add_char b (Char.chr (tag e));
    match e with
    | Round_start { round } -> put_uv b round
    | Send { round; src; dst; bits; hint } ->
        put_uv b round;
        put_uv b src;
        put_uv b dst;
        put_uv b bits;
        put_opt b hint
    | Corrupt { round; pid } ->
        put_uv b round;
        put_uv b pid
    | Omit { round; src; dst } | Deliver { round; src; dst } ->
        put_uv b round;
        put_uv b src;
        put_uv b dst
    | Coin { round; pid; calls; bits } ->
        put_uv b round;
        put_uv b pid;
        put_uv b calls;
        put_uv b bits
    | Phase { round; pid; operative; candidate } ->
        put_uv b round;
        put_uv b pid;
        put_uv b (if operative then 1 else 0);
        put_opt b candidate
    | Decide { round; pid; value } ->
        put_uv b round;
        put_uv b pid;
        put_uv b (zigzag value)
    | Round_end { round; messages; bits; omitted; rand_calls; rand_bits } ->
        put_uv b round;
        put_uv b messages;
        put_uv b bits;
        put_uv b omitted;
        put_uv b rand_calls;
        put_uv b rand_bits
    | Drop { round; src; dst; attempt }
    | Ack { round; src; dst; attempt }
    | Degrade { round; src; dst; attempts = attempt } ->
        put_uv b round;
        put_uv b src;
        put_uv b dst;
        put_uv b attempt
    | Dup { round; src; dst; copies = k }
    | Delay { round; src; dst; slots = k } ->
        put_uv b round;
        put_uv b src;
        put_uv b dst;
        put_uv b k
    | Retransmit { round; src; dst; attempt; backoff } ->
        put_uv b round;
        put_uv b src;
        put_uv b dst;
        put_uv b attempt;
        put_uv b backoff
    | Cache_hit { key } ->
        put_uv b (String.length key);
        Buffer.add_string b key

  exception Truncated

  let get_uv s pos =
    let rec go shift acc =
      if !pos >= String.length s then raise Truncated;
      let c = Char.code s.[!pos] in
      incr pos;
      let acc = acc lor ((c land 0x7f) lsl shift) in
      if c land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let get_opt s pos =
    match get_uv s pos with
    | 0 -> None
    | _ -> Some (unzigzag (get_uv s pos))

  let of_binary s pos =
    if !pos >= String.length s then raise Truncated;
    let tag = Char.code s.[!pos] in
    incr pos;
    let uv () = get_uv s pos in
    match tag with
    | 0 -> Round_start { round = uv () }
    | 1 ->
        let round = uv () in
        let src = uv () in
        let dst = uv () in
        let bits = uv () in
        let hint = get_opt s pos in
        Send { round; src; dst; bits; hint }
    | 2 ->
        let round = uv () in
        Corrupt { round; pid = uv () }
    | 3 ->
        let round = uv () in
        let src = uv () in
        Omit { round; src; dst = uv () }
    | 4 ->
        let round = uv () in
        let src = uv () in
        Deliver { round; src; dst = uv () }
    | 5 ->
        let round = uv () in
        let pid = uv () in
        let calls = uv () in
        Coin { round; pid; calls; bits = uv () }
    | 6 ->
        let round = uv () in
        let pid = uv () in
        let operative = uv () = 1 in
        Phase { round; pid; operative; candidate = get_opt s pos }
    | 7 ->
        let round = uv () in
        let pid = uv () in
        Decide { round; pid; value = unzigzag (uv ()) }
    | 8 ->
        let round = uv () in
        let messages = uv () in
        let bits = uv () in
        let omitted = uv () in
        let rand_calls = uv () in
        Round_end { round; messages; bits; omitted; rand_calls; rand_bits = uv () }
    | 9 ->
        let round = uv () in
        let src = uv () in
        let dst = uv () in
        Drop { round; src; dst; attempt = uv () }
    | 10 ->
        let round = uv () in
        let src = uv () in
        let dst = uv () in
        Dup { round; src; dst; copies = uv () }
    | 11 ->
        let round = uv () in
        let src = uv () in
        let dst = uv () in
        Delay { round; src; dst; slots = uv () }
    | 12 ->
        let round = uv () in
        let src = uv () in
        let dst = uv () in
        let attempt = uv () in
        Retransmit { round; src; dst; attempt; backoff = uv () }
    | 13 ->
        let round = uv () in
        let src = uv () in
        let dst = uv () in
        Ack { round; src; dst; attempt = uv () }
    | 14 ->
        let round = uv () in
        let src = uv () in
        let dst = uv () in
        Degrade { round; src; dst; attempts = uv () }
    | 15 ->
        let len = uv () in
        if !pos + len > String.length s then raise Truncated;
        let key = String.sub s !pos len in
        pos := !pos + len;
        Cache_hit { key }
    | t -> raise (Failure (Printf.sprintf "Trace: unknown binary tag %d" t))
end

(* ------------------------------------------------------------------ *)
(* Sinks.                                                              *)
(* ------------------------------------------------------------------ *)

let binary_magic = "CTRACE1\n"

module Sink = struct
  type t = { emit : Event.t -> unit; close : unit -> unit }

  let make ~emit ~close = { emit; close }
  let emit t e = t.emit e
  let close t = t.close ()
  let null = { emit = (fun _ -> ()); close = (fun () -> ()) }

  let tee a b =
    {
      emit =
        (fun e ->
          a.emit e;
          b.emit e);
      close =
        (fun () ->
          a.close ();
          b.close ());
    }

  let tee_all = function
    | [] -> null
    | [ s ] -> s
    | s :: rest -> List.fold_left tee s rest

  let memory () =
    let acc = ref [] in
    ( { emit = (fun e -> acc := e :: !acc); close = (fun () -> ()) },
      fun () -> List.rev !acc )

  let jsonl ch =
    {
      emit =
        (fun e ->
          output_string ch (Event.to_json e);
          output_char ch '\n');
      close = (fun () -> flush ch);
    }

  let binary ch =
    let b = Buffer.create 65536 in
    Buffer.add_string b binary_magic;
    let drain () =
      Buffer.output_buffer ch b;
      Buffer.clear b
    in
    {
      emit =
        (fun e ->
          Event.to_binary b e;
          if Buffer.length b >= 61440 then drain ());
      close =
        (fun () ->
          drain ();
          flush ch);
    }

  let file ~path ~format =
    let ch = open_out_bin path in
    let inner = match format with Jsonl -> jsonl ch | Binary -> binary ch in
    {
      inner with
      close =
        (fun () ->
          inner.close ();
          close_out ch);
    }
end

(* ------------------------------------------------------------------ *)
(* Preallocated event ring.                                            *)
(* ------------------------------------------------------------------ *)

module Ring = struct
  type t = { buf : Event.t array; mutable next : int; mutable len : int }

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Trace.Ring.create: capacity must be > 0";
    {
      buf = Array.make capacity (Event.Round_start { round = 0 });
      next = 0;
      len = 0;
    }

  let capacity t = Array.length t.buf
  let length t = t.len

  let add t e =
    let cap = Array.length t.buf in
    t.buf.(t.next) <- e;
    t.next <- (t.next + 1) mod cap;
    if t.len < cap then t.len <- t.len + 1

  let to_list t =
    let cap = Array.length t.buf in
    List.init t.len (fun i -> t.buf.((t.next - t.len + i + (2 * cap)) mod cap))

  let sink t = Sink.make ~emit:(add t) ~close:(fun () -> ())
end

(* ------------------------------------------------------------------ *)
(* Trace tails: the last K rounds of events.                           *)
(* ------------------------------------------------------------------ *)

module Tail = struct
  type t = { ring : Ring.t; rounds : int }

  let create ?(capacity = 8192) ~rounds () =
    if rounds <= 0 then invalid_arg "Trace.Tail.create: rounds must be > 0";
    { ring = Ring.create ~capacity; rounds }

  let sink t = Ring.sink t.ring

  let events t =
    match Ring.to_list t.ring with
    | [] -> []
    | evs ->
        let hi =
          List.fold_left (fun a e -> max a (Event.round e)) 0 evs
        in
        let lo = hi - t.rounds + 1 in
        List.filter (fun e -> Event.round e >= lo) evs

  let lines t = List.map Event.to_json (events t)
end

(* ------------------------------------------------------------------ *)
(* Derived per-round counters and run summary.                         *)
(* ------------------------------------------------------------------ *)

module Metrics = struct
  type per_round = {
    round : int;
    messages : int;
    bits : int;
    omitted : int;
    corruptions : int;
    coin_calls : int;
    coin_bits : int;
    decisions : int;
    wall_s : float;
  }

  type summary = {
    rounds : int;
    messages : int;
    bits : int;
    omitted : int;
    corruptions : int;
    coin_calls : int;
    coin_bits : int;
    decisions : int;
    max_round_messages : int;
    max_round_bits : int;
    max_round_coin_bits : int;
    wall_total_s : float;
    per_round : per_round list;  (** chronological *)
  }

  let empty_summary =
    {
      rounds = 0;
      messages = 0;
      bits = 0;
      omitted = 0;
      corruptions = 0;
      coin_calls = 0;
      coin_bits = 0;
      decisions = 0;
      max_round_messages = 0;
      max_round_bits = 0;
      max_round_coin_bits = 0;
      wall_total_s = 0.;
      per_round = [];
    }

  let collector ?(clock = Unix.gettimeofday) () =
    let acc = ref [] in
    (* intra-round state, reset at Round_start *)
    let corruptions = ref 0 in
    let coin_calls = ref 0 in
    let coin_bits = ref 0 in
    let decisions = ref 0 in
    let started = ref (clock ()) in
    let emit (e : Event.t) =
      match e with
      | Event.Round_start _ ->
          corruptions := 0;
          coin_calls := 0;
          coin_bits := 0;
          decisions := 0;
          started := clock ()
      | Event.Corrupt _ -> incr corruptions
      | Event.Coin { calls; bits; _ } ->
          coin_calls := !coin_calls + calls;
          coin_bits := !coin_bits + bits
      | Event.Decide _ -> incr decisions
      | Event.Round_end { round; messages; bits; omitted; rand_calls = _; _ } ->
          (* Round_end carries this round's deltas, not cumulative totals *)
          acc :=
            {
              round;
              messages;
              bits;
              omitted;
              corruptions = !corruptions;
              coin_calls = !coin_calls;
              coin_bits = !coin_bits;
              decisions = !decisions;
              wall_s = clock () -. !started;
            }
            :: !acc;
      | Event.Send _ | Event.Omit _ | Event.Deliver _ | Event.Phase _
      | Event.Drop _ | Event.Dup _ | Event.Delay _ | Event.Retransmit _
      | Event.Ack _ | Event.Degrade _ | Event.Cache_hit _ -> ()
    in
    let summary () =
      let rounds = List.rev !acc in
      List.fold_left
        (fun s (r : per_round) ->
          {
            rounds = s.rounds + 1;
            messages = s.messages + r.messages;
            bits = s.bits + r.bits;
            omitted = s.omitted + r.omitted;
            corruptions = s.corruptions + r.corruptions;
            coin_calls = s.coin_calls + r.coin_calls;
            coin_bits = s.coin_bits + r.coin_bits;
            decisions = s.decisions + r.decisions;
            max_round_messages = max s.max_round_messages r.messages;
            max_round_bits = max s.max_round_bits r.bits;
            max_round_coin_bits = max s.max_round_coin_bits r.coin_bits;
            wall_total_s = s.wall_total_s +. r.wall_s;
            per_round = s.per_round;
          })
        { empty_summary with per_round = rounds }
        rounds
    in
    (Sink.make ~emit ~close:(fun () -> ()), summary)

  let of_events events =
    let sink, summary = collector ~clock:(fun () -> 0.) () in
    List.iter (Sink.emit sink) events;
    summary ()

  let pp_summary ppf s =
    Fmt.pf ppf
      "rounds=%d messages=%d bits=%d omitted=%d corruptions=%d coin_calls=%d \
       coin_bits=%d decisions=%d peak-round: msgs=%d bits=%d coin_bits=%d"
      s.rounds s.messages s.bits s.omitted s.corruptions s.coin_calls
      s.coin_bits s.decisions s.max_round_messages s.max_round_bits
      s.max_round_coin_bits
end

(* ------------------------------------------------------------------ *)
(* Trace files: write a list of events, read either format back.       *)
(* ------------------------------------------------------------------ *)

module File = struct
  exception Corrupt of string

  let write ~path ~format events =
    let sink = Sink.file ~path ~format in
    List.iter (Sink.emit sink) events;
    Sink.close sink

  let read_all path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s

  let starts_with ~prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix

  let read path =
    let s = read_all path in
    if starts_with ~prefix:binary_magic s then begin
      let pos = ref (String.length binary_magic) in
      let acc = ref [] in
      (try
         while !pos < String.length s do
           acc := Event.of_binary s pos :: !acc
         done
       with
      | Event.Truncated ->
          raise (Corrupt (Printf.sprintf "%s: truncated binary event" path))
      | Failure m -> raise (Corrupt (Printf.sprintf "%s: %s" path m)));
      List.rev !acc
    end
    else
      String.split_on_char '\n' s
      |> List.filteri (fun i line ->
             ignore i;
             String.trim line <> "")
      |> List.map (fun line ->
             match Event.of_json line with
             | Some e -> e
             | None ->
                 raise
                   (Corrupt
                      (Printf.sprintf "%s: unparseable trace line: %s" path
                         line)))
end

(* ------------------------------------------------------------------ *)
(* Structural diff: the first diverging event of two traces.           *)
(* ------------------------------------------------------------------ *)

module Diff = struct
  type divergence = {
    index : int;  (** 0-based position of the first differing event *)
    left : Event.t option;  (** [None]: the left trace ended here *)
    right : Event.t option;  (** [None]: the right trace ended here *)
  }

  type outcome = Identical of int | Diverged of divergence

  let events a b =
    let rec go i a b =
      match (a, b) with
      | [], [] -> Identical i
      | [], r :: _ -> Diverged { index = i; left = None; right = Some r }
      | l :: _, [] -> Diverged { index = i; left = Some l; right = None }
      | l :: a', r :: b' ->
          if Event.equal l r then go (i + 1) a' b'
          else Diverged { index = i; left = Some l; right = Some r }
    in
    go 0 a b

  let files ~left ~right = events (File.read left) (File.read right)

  let pp_side ppf = function
    | Some e -> Fmt.pf ppf "%s" (Event.to_json e)
    | None -> Fmt.pf ppf "<end of trace>"

  let pp_outcome ppf = function
    | Identical n -> Fmt.pf ppf "traces identical (%d events)" n
    | Diverged { index; left; right } ->
        let round =
          match (left, right) with
          | Some e, _ | _, Some e -> Event.round e
          | None, None -> 0
        in
        Fmt.pf ppf
          "first divergence at event #%d (round %d)@.  left : %a@.  right: %a"
          index round pp_side left pp_side right
end
