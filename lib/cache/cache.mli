(** Persistent content-addressed result store.

    A store memoizes pure computations: the key is the canonical
    serialization of everything that determines the result (a
    {!Run_spec.t} string for protocol runs, an experiment-specific
    string for bench points), combined with a code fingerprint so an
    engine change can never surface a stale payload.

    On-disk layout under the store directory:

    {v
    <dir>/index            append-only "hexdigest TAB size" lines
    <dir>/objects/<hex>    one payload file per entry
    v}

    Crash safety follows the PR 3 journal discipline: the payload file
    is written to a temporary name and renamed into place {e before}
    its index line is appended and flushed, so a torn write leaves at
    worst an unreachable object or a truncated index line — both
    skipped (and counted) on the next open, costing one recompute, not
    a crash. *)

val fingerprint : string
(** Code fingerprint mixed into every digest. Bump whenever the engine
    or a protocol changes semantics: every existing entry silently
    becomes a miss, which is exactly the invalidation we want. *)

module Stats : sig
  type t = { mutable hits : int; mutable misses : int; mutable writes : int }

  val zero : unit -> t
  val pp : Format.formatter -> t -> unit
end

module Store : sig
  type t

  val open_ : ?fingerprint:string -> dir:string -> unit -> t
  (** Open (creating if needed) the store rooted at [dir]. The index is
      replayed; torn or corrupt lines are skipped and counted. The
      index file stays open in append mode for the store's lifetime —
      unlike the journal there is no truncating mode, because a cache
      is meant to persist across runs. *)

  val digest_key : t -> string -> string
  (** Hex digest of [fingerprint ^ "\x00" ^ key] — the content address
      an entry lives under; exposed so provenance events can name it. *)

  val lookup : t -> string -> string option
  (** [lookup t key] returns the stored payload, reading the object
      file on demand. A missing, truncated, or unreadable object drops
      the entry (counted as corrupt) and returns [None], so a
      subsequent {!add} repairs it. Counts a hit or a miss. *)

  val mem : t -> string -> bool
  (** Whether an index entry exists, without touching stats or disk. *)

  val add : t -> key:string -> string -> unit
  (** Store a payload. A key already present is left untouched (first
      write wins — every writer computes the same bytes for the same
      key, so dropping duplicates is sound and keeps concurrent [add]s
      from tearing). Counts a write only when one happens. *)

  val entries : t -> int
  (** Live index entries. *)

  val corrupt : t -> int
  (** Torn/corrupt index lines skipped at open plus payloads dropped by
      {!lookup}. *)

  val stats : t -> Stats.t
  (** A snapshot of the counters (never the live record), so two calls
      can be diffed for per-phase deltas. *)

  val dir : t -> string
  val close : t -> unit
end
