(* Content-addressed result store: append-only index + one object file
   per payload. Digests use stdlib MD5 (Digest) — the cache is a
   memoization layer over a trusted local directory, not a security
   boundary; what matters is that the address is a pure function of
   (fingerprint, key). *)

let fingerprint = "consensus-cache-v1"

module Stats = struct
  type t = { mutable hits : int; mutable misses : int; mutable writes : int }

  let zero () = { hits = 0; misses = 0; writes = 0 }

  let pp ppf s =
    Fmt.pf ppf "hits=%d misses=%d writes=%d" s.hits s.misses s.writes
end

module Store = struct
  type t = {
    dir : string;
    fingerprint : string;
    index : (string, int) Hashtbl.t; (* hex digest -> payload size *)
    oc : out_channel; (* index, append mode, flushed per entry *)
    mutable corrupt : int;
    stats : Stats.t;
    lock : Mutex.t;
  }

  let objects_dir dir = Filename.concat dir "objects"
  let index_path dir = Filename.concat dir "index"
  let object_path t hex = Filename.concat (objects_dir t.dir) hex

  let ensure_dir d = if not (Sys.file_exists d) then Unix.mkdir d 0o755

  let is_hex s =
    String.length s > 0
    && String.for_all
         (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false)
         s

  (* Replay the index. A well-formed line is "hex TAB size"; anything
     else — torn final line, garbage bytes, bad size — is skipped and
     counted. Duplicate digests are fine (lookup self-repair re-appends
     after rewriting an object); latest wins. *)
  let load_index path index =
    if not (Sys.file_exists path) then 0
    else begin
      let ic = open_in_bin path in
      let corrupt = ref 0 in
      (try
         while true do
           let line = input_line ic in
           match String.index_opt line '\t' with
           | Some i
             when i > 0
                  && i < String.length line - 1
                  && not (String.contains_from line (i + 1) '\t') -> (
               let hex = String.sub line 0 i in
               let size = String.sub line (i + 1) (String.length line - i - 1) in
               match int_of_string_opt size with
               | Some sz when sz >= 0 && is_hex hex ->
                   Hashtbl.replace index hex sz
               | _ -> incr corrupt)
           | _ -> incr corrupt
         done
       with End_of_file -> ());
      close_in ic;
      !corrupt
    end

  let open_ ?(fingerprint = fingerprint) ~dir () =
    ensure_dir dir;
    ensure_dir (objects_dir dir);
    let index = Hashtbl.create 256 in
    let corrupt = load_index (index_path dir) index in
    let oc =
      open_out_gen [ Open_wronly; Open_creat; Open_append; Open_binary ] 0o644
        (index_path dir)
    in
    {
      dir;
      fingerprint;
      index;
      oc;
      corrupt;
      stats = Stats.zero ();
      lock = Mutex.create ();
    }

  let digest_key t key =
    Digest.to_hex (Digest.string (t.fingerprint ^ "\x00" ^ key))

  let read_object path expected_size =
    match open_in_bin path with
    | exception _ -> None
    | ic ->
        let len = in_channel_length ic in
        let payload =
          if len <> expected_size then None
          else match really_input_string ic len with
            | s -> Some s
            | exception _ -> None
        in
        close_in_noerr ic;
        payload

  let mem t key = Hashtbl.mem t.index (digest_key t key)

  let lookup t key =
    let hex = digest_key t key in
    Mutex.lock t.lock;
    let r =
      match Hashtbl.find_opt t.index hex with
      | None ->
          t.stats.Stats.misses <- t.stats.Stats.misses + 1;
          None
      | Some size -> (
          match read_object (object_path t hex) size with
          | Some payload ->
              t.stats.Stats.hits <- t.stats.Stats.hits + 1;
              Some payload
          | None ->
              (* the object is gone or torn: drop the entry so the next
                 add can repair it, and recompute this once *)
              Hashtbl.remove t.index hex;
              t.corrupt <- t.corrupt + 1;
              t.stats.Stats.misses <- t.stats.Stats.misses + 1;
              None)
    in
    Mutex.unlock t.lock;
    r

  let add t ~key payload =
    let hex = digest_key t key in
    Mutex.lock t.lock;
    (try
       if not (Hashtbl.mem t.index hex) then begin
         (* object first (atomic via rename), index line after: a crash
            between the two leaves an unreachable object, never an index
            line pointing at nothing it can't detect *)
         let path = object_path t hex in
         let tmp =
           Printf.sprintf "%s.tmp.%d" path
             (Domain.self () :> int)
         in
         let oc = open_out_bin tmp in
         output_string oc payload;
         close_out oc;
         Sys.rename tmp path;
         Printf.fprintf t.oc "%s\t%d\n" hex (String.length payload);
         flush t.oc;
         Hashtbl.replace t.index hex (String.length payload);
         t.stats.Stats.writes <- t.stats.Stats.writes + 1
       end
     with e ->
       Mutex.unlock t.lock;
       raise e);
    Mutex.unlock t.lock

  let entries t = Hashtbl.length t.index
  let corrupt t = t.corrupt

  (* a snapshot, not the live record: callers diff two calls to get
     per-phase deltas, which aliasing would silently zero out *)
  let stats t =
    Mutex.lock t.lock;
    let s =
      {
        Stats.hits = t.stats.Stats.hits;
        misses = t.stats.Stats.misses;
        writes = t.stats.Stats.writes;
      }
    in
    Mutex.unlock t.lock;
    s
  let dir t = t.dir
  let close t = close_out_noerr t.oc
end
