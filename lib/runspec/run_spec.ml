(* One canonical record per run, one canonical string per record. The
   string is the API: the CLI accepts it (--spec), replay one-liners
   print it, and the cache addresses results by it. Keep the field
   order and spellings frozen — changing either silently invalidates
   every existing cache (which is what Cache.fingerprint is for). *)

type engine = Auto | Legacy

type t = {
  protocol : string;
  n : int;
  t_max : int;
  x : int option;
  seed : int;
  adversary : string;
  inputs : string;
  net : Net.Spec.t option;
  budget : Supervise.Budget.t;
  engine : engine;
}

(* --- adversary / input-pattern spelling tables (the run subcommand's
   historical vocabulary, now shared by every surface) --- *)

let adversaries =
  [
    ("none", fun () -> Adversary.none);
    ( "crash",
      fun () -> Adversary.crash_schedule [ (1, [ 0 ]); (2, [ 1 ]); (5, [ 2; 3 ]) ] );
    ("random", fun () -> Adversary.random_omission ~p_omit:0.7);
    ("group", fun () -> Adversary.group_killer ());
    ("splitter", fun () -> Adversary.vote_splitter ());
    ("staggered", fun () -> Adversary.staggered_crash ~per_round:3);
    ("eclipse", fun () -> Adversary.eclipse ~victim:0);
  ]

let inputs_table =
  [
    ("mixed", fun ~n ~seed:_ -> Array.init n (fun i -> i mod 2));
    ("ones", fun ~n ~seed:_ -> Array.make n 1);
    ("zeros", fun ~n ~seed:_ -> Array.make n 0);
    ( "random",
      fun ~n ~seed ->
        let rand = Sim.Rand.create ~seed:(Int64.of_int (seed + 99)) () in
        Array.init n (fun _ -> Sim.Rand.bit rand) );
  ]

let make ?x ?(adversary = "none") ?(inputs = "mixed") ?net
    ?(budget = Supervise.Budget.unlimited) ?(engine = Auto) ~protocol ~n
    ~t_max ~seed () =
  { protocol; n; t_max; x; seed; adversary; inputs; net; budget; engine }

let adversary spec =
  match List.assoc_opt spec.adversary adversaries with
  | Some f -> f ()
  | None -> invalid_arg ("Run_spec.adversary: unknown name " ^ spec.adversary)

let inputs spec =
  match List.assoc_opt spec.inputs inputs_table with
  | Some f -> f ~n:spec.n ~seed:spec.seed
  | None -> invalid_arg ("Run_spec.inputs: unknown pattern " ^ spec.inputs)

(* --- canonical serialization --- *)

let opt_i = function None -> "-" | Some v -> string_of_int v
let engine_str = function Auto -> "auto" | Legacy -> "legacy"

let to_string spec =
  (* net last: Net.Spec.to_string never contains spaces, but keeping the
     only compound token at the end makes the format trivially
     extensible *)
  Printf.sprintf "p=%s n=%d t=%d x=%s seed=%d a=%s i=%s engine=%s wall=%s \
                  rounds=%s msgs=%s rand=%s net=%s"
    spec.protocol spec.n spec.t_max (opt_i spec.x) spec.seed spec.adversary
    spec.inputs (engine_str spec.engine)
    (match spec.budget.Supervise.Budget.wall_s with
    | None -> "-"
    | Some w -> Printf.sprintf "%h" w)
    (opt_i spec.budget.Supervise.Budget.max_rounds)
    (opt_i spec.budget.Supervise.Budget.max_messages)
    (opt_i spec.budget.Supervise.Budget.max_rand_bits)
    (match spec.net with None -> "-" | Some s -> Net.Spec.to_string s)

let digest spec = Digest.to_hex (Digest.string (to_string spec))

let to_command spec =
  Printf.sprintf "dune exec bin/consensus_sim.exe -- run --spec '%s'"
    (to_string spec)

let of_string s =
  let ( let* ) = Result.bind in
  let field name tok =
    let pre = name ^ "=" in
    let pl = String.length pre in
    if String.length tok >= pl && String.sub tok 0 pl = pre then
      Ok (String.sub tok pl (String.length tok - pl))
    else Error (Printf.sprintf "run spec: expected %s=..., got %S" name tok)
  in
  let int name v =
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "run spec: %s must be an integer, not %S" name v)
  in
  let opt_int name = function
    | "-" -> Ok None
    | v -> Result.map Option.some (int name v)
  in
  match String.split_on_char ' ' (String.trim s) with
  | [ tp; tn; tt; tx; tseed; ta; ti; teng; twall; trounds; tmsgs; trand; tnet ]
    ->
      let* protocol = field "p" tp in
      let* n = Result.bind (field "n" tn) (int "n") in
      let* t_max = Result.bind (field "t" tt) (int "t") in
      let* x = Result.bind (field "x" tx) (opt_int "x") in
      let* seed = Result.bind (field "seed" tseed) (int "seed") in
      let* adversary = field "a" ta in
      let* inputs = field "i" ti in
      let* engine =
        Result.bind (field "engine" teng) (function
          | "auto" -> Ok Auto
          | "legacy" -> Ok Legacy
          | v -> Error (Printf.sprintf "run spec: engine must be auto or legacy, not %S" v))
      in
      let* wall =
        Result.bind (field "wall" twall) (function
          | "-" -> Ok None
          | v -> (
              match float_of_string_opt v with
              | Some f -> Ok (Some f)
              | None -> Error (Printf.sprintf "run spec: wall must be a float, not %S" v)))
      in
      let* rounds = Result.bind (field "rounds" trounds) (opt_int "rounds") in
      let* msgs = Result.bind (field "msgs" tmsgs) (opt_int "msgs") in
      let* rand = Result.bind (field "rand" trand) (opt_int "rand") in
      let* net =
        Result.bind (field "net" tnet) (function
          | "-" -> Ok None
          | v -> Result.map Option.some (Net.Spec.of_string v))
      in
      let* () =
        if List.mem_assoc adversary adversaries then Ok ()
        else
          Error
            (Printf.sprintf "run spec: unknown adversary %S; one of %s"
               adversary
               (String.concat ", " (List.map fst adversaries)))
      in
      let* () =
        if List.mem_assoc inputs inputs_table then Ok ()
        else
          Error
            (Printf.sprintf "run spec: unknown inputs %S; one of %s" inputs
               (String.concat ", " (List.map fst inputs_table)))
      in
      Ok
        {
          protocol;
          n;
          t_max;
          x;
          seed;
          adversary;
          inputs;
          net;
          budget =
            {
              Supervise.Budget.wall_s = wall;
              max_rounds = rounds;
              max_messages = msgs;
              max_rand_bits = rand;
            };
          engine;
        }
  | _ ->
      Error
        "run spec: expected 13 space-separated k=v tokens \
         (p n t x seed a i engine wall rounds msgs rand net)"

(* --- resolution and execution --- *)

let resolve spec =
  if spec.protocol = "param" then
    Ok
      ( Consensus.Param_omissions.builder ~x:(Option.value spec.x ~default:4) (),
        None )
  else
    match Harness.Registry.find spec.protocol with
    | Ok e ->
        Ok
          ( e.Harness.Registry.builder,
            match spec.engine with
            | Legacy -> None
            | Auto -> e.Harness.Registry.buffered )
    | Error msg -> Error (msg ^ " (plus \"param\", which takes -x)")

let config spec builder =
  let module B = (val builder : Sim.Protocol_intf.BUILDER) in
  let cfg0 = Sim.Config.make ~n:spec.n ~t_max:spec.t_max ~seed:spec.seed () in
  { cfg0 with Sim.Config.max_rounds = B.rounds_needed cfg0 }

let execute ?trace ?store spec =
  match resolve spec with
  | Error msg -> invalid_arg ("Run_spec.execute: " ^ msg)
  | Ok (builder, buffered) -> (
      let module B = (val builder : Sim.Protocol_intf.BUILDER) in
      let cfg = config spec builder in
      let proto =
        match (buffered, spec.engine) with
        | Some f, Auto -> Sim.Protocol_intf.Buffered (f cfg)
        | _ -> Sim.Protocol_intf.Legacy (B.build cfg)
      in
      let key = to_string spec in
      let adversary = adversary spec in
      let inputs = inputs spec in
      match spec.net with
      | None -> (
          match
            Supervise.Cached.run_any ?trace ~budget:spec.budget ?store ~key
              proto cfg ~adversary ~inputs
          with
          | Ok o -> Ok (o, None)
          | Error (k, p) -> Error (k, Option.map (fun o -> (o, None)) p))
      | Some net -> (
          match
            Supervise.Cached.run_net ?trace ~budget:spec.budget ?store ~key
              ~net proto cfg ~adversary ~inputs
          with
          | Ok (o, d) -> Ok (o, Some d)
          | Error (k, p) ->
              Error (k, Option.map (fun (o, d) -> (o, Some d)) p)))

module Cli = struct
  type budget_flags = { wall : float; rounds : int; msgs : int; rand : int }

  let no_budget = { wall = 0.; rounds = 0; msgs = 0; rand = 0 }

  let budget_of_flags b =
    let posf v = if v <= 0. then None else Some v in
    let posi v = if v <= 0 then None else Some v in
    {
      Supervise.Budget.wall_s = posf b.wall;
      max_rounds = posi b.rounds;
      max_messages = posi b.msgs;
      max_rand_bits = posi b.rand;
    }

  let net_or_die s =
    match Net.Spec.of_string s with
    | Ok spec -> spec
    | Error m ->
        Fmt.epr "%s@." m;
        Stdlib.exit 2

  let format_or_die s =
    match Trace.format_of_string s with
    | Some f -> f
    | None ->
        Fmt.epr "--trace-format must be jsonl or binary, not %S@." s;
        Stdlib.exit 2

  let store_of_flags ~cache ~no_cache =
    if no_cache || cache = "" then None
    else Some (Cache.Store.open_ ~dir:cache ())

  let adversary_names = List.map fst adversaries
  let inputs_names = List.map fst inputs_table
end
