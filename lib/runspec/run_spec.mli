(** The canonical description of one protocol run.

    A [Run_spec.t] captures everything that determines a run's outcome:
    protocol, system size and fault budget, seed, adversary, input
    pattern, engine path, watchdog budget, and the optional lossy-link
    spec. Its {!to_string} serialization is canonical — fixed field
    order, one spelling per value, exact float round-trip — and is
    shared by the [consensus_sim run --spec] CLI, quarantine replay
    one-liners ({!to_command}) and the content-addressed cache key, so
    "the same run" means the same string everywhere.

    Trace options are deliberately {e not} part of the record: tracing
    is an observer and never changes an outcome, so two runs differing
    only in observation share one cache entry. Provenance is kept
    honest by the [cache-hit] trace event instead. *)

type engine = Auto | Legacy

type t = {
  protocol : string;  (** registry id, or ["param"] (takes [x]) *)
  n : int;
  t_max : int;
  x : int option;  (** [param]'s generalization parameter *)
  seed : int;
  adversary : string;  (** one of {!Cli.adversary_names} *)
  inputs : string;  (** one of {!Cli.inputs_names} *)
  net : Net.Spec.t option;
  budget : Supervise.Budget.t;
  engine : engine;
}

val make :
  ?x:int ->
  ?adversary:string ->
  ?inputs:string ->
  ?net:Net.Spec.t ->
  ?budget:Supervise.Budget.t ->
  ?engine:engine ->
  protocol:string ->
  n:int ->
  t_max:int ->
  seed:int ->
  unit ->
  t
(** Defaults: no [x], adversary ["none"], inputs ["mixed"], no net spec,
    unlimited budget, [Auto] engine. *)

val to_string : t -> string
(** Canonical serialization: space-separated [k=v] tokens in a fixed
    order ([p n t x seed a i engine wall rounds msgs rand net]), ["-"]
    for absent options, the wall budget as a [%h] hex float so the
    round-trip is exact. Contains no tabs or newlines. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}; [Error] is a one-line message. Validates
    the adversary and inputs spellings and the field order. *)

val digest : t -> string
(** Hex digest of {!to_string} — a stable short name for the run. *)

val to_command : t -> string
(** A replay one-liner: [dune exec bin/consensus_sim.exe -- run --spec
    '<to_string>'] — the canonical serialization, directly executable. *)

val resolve :
  t ->
  ( Sim.Protocol_intf.builder
    * (Sim.Config.t -> Sim.Protocol_intf.buffered) option,
    string )
  result
(** The spec's protocol builder (plus the buffered constructor when one
    exists and [engine = Auto]); [Error] lists the registered protocols
    plus ["param"]. *)

val config : t -> Sim.Protocol_intf.builder -> Sim.Config.t
(** The run's engine configuration: [max_rounds] is the builder's
    schedule length for (n, t_max, seed). *)

val adversary : t -> Sim.Adversary_intf.t
(** Raises [Invalid_argument] on a spelling {!of_string} would reject. *)

val inputs : t -> int array
(** The input pattern instantiated at (n, seed); ["random"] draws from a
    stream salted off the seed. Raises [Invalid_argument] on a bad
    spelling. *)

val execute :
  ?trace:Trace.Sink.t ->
  ?store:Cache.Store.t ->
  t ->
  ( Sim.Engine.outcome * Net.Degradation.t option,
    Supervise.failure_kind
    * (Sim.Engine.outcome * Net.Degradation.t option) option )
  result
(** Run the spec under supervision — through {!Supervise.Cached} keyed
    by {!to_string} when [store] is given, so repeated executions of an
    identical spec are served from the cache (with a [cache-hit] trace
    event). The degradation report rides along when the spec has a net.
    Raises [Invalid_argument] if {!resolve} fails. *)

(** Shared CLI parsing for the flag spellings common to
    [bin/consensus_sim] and [bench/main.exe]: budgets, [--net],
    [--trace-format], [--cache]/[--no-cache]. Error behavior is
    identical on both surfaces — one line on stderr, exit 2. *)
module Cli : sig
  type budget_flags = { wall : float; rounds : int; msgs : int; rand : int }

  val no_budget : budget_flags
  (** All zero — every limit off. *)

  val budget_of_flags : budget_flags -> Supervise.Budget.t
  (** Zero or negative means unlimited, matching the historical flag
      semantics on both binaries. *)

  val net_or_die : string -> Net.Spec.t
  (** Parse a [--net] spec; on error print the parser's one-line message
      and exit 2. *)

  val format_or_die : string -> Trace.format
  (** Parse a [--trace-format] value; on error print
      ["--trace-format must be jsonl or binary, not ..."] and exit 2. *)

  val store_of_flags : cache:string -> no_cache:bool -> Cache.Store.t option
  (** Open the run cache the [--cache DIR] / [--no-cache] flags select:
      [None] when the dir is empty or [--no-cache] is given. *)

  val adversary_names : string list
  val inputs_names : string list
end
