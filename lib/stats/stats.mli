(** Descriptive statistics and regression used for checking the *shape* of
    measured complexity curves against the paper's asymptotic claims. *)

val mean : float array -> float
(** Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Sample variance (n-1 denominator). Raises [Invalid_argument] for fewer
    than two points — an undefined variance is a caller bug (insufficient
    samples), not a zero. *)

val stddev : float array -> float
(** [sqrt (variance xs)]; raises like {!variance} for fewer than two
    points. *)

val quantile : float -> float array -> float
(** Linear-interpolation quantile; [q] in [0, 1]. Sorts with
    [Float.compare]; raises [Invalid_argument] on an empty array, a [q]
    outside [0, 1] (NaN included), or any NaN input. *)

val median : float array -> float

type fit = { slope : float; intercept : float; r2 : float }

val linear_fit : float array -> float array -> fit
(** Ordinary least squares [y = slope * x + intercept]. Requires at least
    two points with non-degenerate xs. *)

val loglog_fit : float array -> float array -> fit
(** Fit [y = c * x^e] on log-log axes: [slope] is the exponent [e]. All
    coordinates must be positive. *)

val growth_exponent : ?log_power:int -> float array -> float array -> float
(** Growth exponent of [ys] versus [ns] after dividing out [log^k n] —
    compares a measured series against a claim like O(sqrt n * log^2 n).
    With [log_power > 0], any [n <= 1] raises [Invalid_argument]
    ([log 1 = 0] would otherwise divide to infinity and corrupt the fit). *)

val pp_fit : Format.formatter -> fit -> unit
