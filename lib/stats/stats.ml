(** Small descriptive-statistics toolkit used by the benches and tests to
    check the *shape* of measured complexity curves (growth exponents on
    log-log axes, confidence that one series dominates another, ...). *)

let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0. xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  (* A sample variance over fewer than two points is undefined; silently
     returning 0 masked insufficient-sample bugs in bench seed-averaging. *)
  if n < 2 then invalid_arg "Stats.variance: need at least two samples";
  let m = mean xs in
  let acc = Array.fold_left (fun a x -> a +. ((x -. m) ** 2.)) 0. xs in
  acc /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

let quantile q xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.quantile: empty";
  (* NaN fails every comparison, so range-check by negation; a NaN q or
     input would otherwise slip through and poison the interpolation. *)
  if not (q >= 0. && q <= 1.) then
    invalid_arg "Stats.quantile: q outside [0,1]";
  Array.iter
    (fun x -> if Float.is_nan x then invalid_arg "Stats.quantile: NaN input")
    xs;
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let pos = q *. float_of_int (n - 1) in
  (* clamp: float rounding in [q *. (n-1)] must never index past n-1 *)
  let clamp i = if i < 0 then 0 else if i > n - 1 then n - 1 else i in
  let lo = clamp (int_of_float (floor pos))
  and hi = clamp (int_of_float (ceil pos)) in
  if lo = hi then sorted.(lo)
  else begin
    let w = pos -. float_of_int lo in
    (sorted.(lo) *. (1. -. w)) +. (sorted.(hi) *. w)
  end

let median xs = quantile 0.5 xs

type fit = { slope : float; intercept : float; r2 : float }

(** Ordinary least squares y = slope*x + intercept. *)
let linear_fit xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.linear_fit: length mismatch";
  if n < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let mx = mean xs and my = mean ys in
  let sxy = ref 0. and sxx = ref 0. and syy = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0. then invalid_arg "Stats.linear_fit: degenerate xs";
  let slope = !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let r2 = if !syy = 0. then 1. else !sxy *. !sxy /. (!sxx *. !syy) in
  { slope; intercept; r2 }

(** Fit y = c * x^e on log-log axes; returns the exponent fit. Points with
    non-positive coordinates are rejected. *)
let loglog_fit xs ys =
  Array.iter
    (fun x -> if x <= 0. then invalid_arg "Stats.loglog_fit: x <= 0")
    xs;
  Array.iter
    (fun y -> if y <= 0. then invalid_arg "Stats.loglog_fit: y <= 0")
    ys;
  linear_fit (Array.map log xs) (Array.map log ys)

(** Growth exponent of [ys] as a function of [ns], with the polylogarithmic
    factor [log^k n] divided out first — used to compare a measured series
    against a claimed complexity like O(sqrt n * log^2 n). *)
let growth_exponent ?(log_power = 0) ns ys =
  if log_power > 0 then
    Array.iter
      (fun n ->
        (* log 1 = 0: dividing by (log n)^k would feed inf/NaN into
           loglog_fit and silently corrupt the fitted exponent *)
        if n <= 1. then
          invalid_arg "Stats.growth_exponent: n <= 1 with log_power > 0")
      ns;
  let adjust n y = y /. (log n ** float_of_int log_power) in
  let ys' = Array.mapi (fun i y -> adjust ns.(i) y) ys in
  (loglog_fit ns ys').slope

let pp_fit ppf f =
  Format.fprintf ppf "slope=%.3f intercept=%.3f r2=%.3f" f.slope f.intercept
    f.r2
