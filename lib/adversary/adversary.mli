(** Adaptive full-information adversary strategies, generic over the
    protocol: they read the per-process observations and pending envelopes
    and return corruptions plus per-edge omissions. The engine enforces
    legality; strategies stay within the budget themselves. *)

val none : Sim.Adversary_intf.t

val crash_schedule : (int * int list) list -> Sim.Adversary_intf.t
(** [(round, pids); ...]: crash the pids at the given rounds (silent from
    then on). Victims beyond the remaining budget are dropped. *)

val random_omission : p_omit:float -> Sim.Adversary_intf.t
(** Corrupt [t_max] uniformly-chosen processes at round 1, then omit each
    of their incident messages independently with probability [p_omit]. *)

val group_killer : ?group:int -> unit -> Sim.Adversary_intf.t
(** Corrupt a majority of one sqrt-decomposition group (contiguous pids)
    and silence all their intra-group traffic: the group's aggregation
    quorum collapses and its survivors go inoperative — Figure 2's faulty
    process, scaled up. Clamped to the budget. *)

val eclipse : victim:int -> Sim.Adversary_intf.t
(** Corrupt the processes observed sending to [victim] and omit exactly
    their exchanges with it: with enough budget the victim drops below
    Delta/3 live links and goes inoperative without being faulty itself —
    the non-faulty-but-inoperative case the paper's partition handles. *)

val vote_splitter : ?slack:int -> unit -> Sim.Adversary_intf.t
(** The Theorem 2 lower-bound strategy (Lemmas 13-15), with crash faults
    only: each round it crashes the |imbalance| - [slack] majority-value
    holders (coin-flippers first — the Lemma-12 coin game) and crashes one
    further process mid-round, delivering its vote to half the survivors so
    the two halves compute opposite majorities (Lemma 15's bivalence
    split). Budget drains at ~sqrt(k log n) + 1 per round. *)

val staggered_crash : per_round:int -> Sim.Adversary_intf.t
(** Crash [per_round] random live processes each round until the budget
    runs out. *)

val standard_suite : n:int -> Sim.Adversary_intf.t list
(** The strategies exercised by the integration test grid. *)

val chaotic :
  ?corrupt_rate:float -> ?omit_rate:float -> unit -> Sim.Adversary_intf.t
(** Chaos monkey: random corruptions over time and random per-message
    omissions at faulty endpoints — the strategy the property-based tests
    sweep over seeds. *)

val pointwise : Sim.Adversary_intf.t -> Sim.Adversary_intf.t
(** The same strategy with the compiled per-sender masks stripped from
    every plan, forcing the engine onto the general per-message delivery
    path. Observable behaviour is unchanged (compiled masks must agree
    with the predicate); the equivalence suite and the scale bench's
    classic column use this to compare the two paths. *)
