(** Adaptive full-information adversary strategies.

    Every strategy is generic over the protocol: it reads the per-process
    observations ({!Sim.View.obs}: candidate bit, operative flag, decided
    flag, coin usage this round) and the pending message envelopes, and
    returns corruptions and omissions. The engine enforces legality (budget,
    omissions only at faulty endpoints), so strategies here express intent
    and stay within [t_max] themselves. *)

let none = Sim.Adversary_intf.none

let take k l =
  let rec go k acc = function
    | [] -> List.rev acc
    | _ when k = 0 -> List.rev acc
    | x :: tl -> go (k - 1) (x :: acc) tl
  in
  go k [] l

(* Shared helper: maintain a crash set; each round corrupt the newly chosen
   victims and silence every message they send (classic crash semantics:
   outgoing only). The set is mirrored in a [Bytes] flag per pid, which
   both feeds the hot-path predicate (no hashing per message) and compiles
   to the per-sender verdict the engine's mask-blit path wants. *)
let crash_set_plan crashed crashed_b new_victims =
  List.iter
    (fun pid ->
      Hashtbl.replace crashed pid ();
      Bytes.set crashed_b pid '\001')
    new_victims;
  {
    Sim.View.new_faults = new_victims;
    omit = (fun src _dst -> Bytes.get crashed_b src <> '\000');
    compiled =
      Some
        (fun src ->
          if Bytes.get crashed_b src <> '\000' then Sim.View.Omit_all
          else Sim.View.Deliver_all);
  }

(** Crash the given processes at the given rounds (permanently silent from
    that round on). Schedule: [(round, pids); ...]. *)
let crash_schedule schedule =
  {
    Sim.Adversary_intf.name = "crash-schedule";
    create =
      (fun cfg _rand ->
        let crashed = Hashtbl.create 16 in
        let crashed_b = Bytes.make cfg.Sim.Config.n '\000' in
        fun view ->
          let victims =
            List.concat_map
              (fun (r, pids) -> if r = view.Sim.View.round then pids else [])
              schedule
          in
          let victims =
            List.filter
              (fun pid ->
                (not (Hashtbl.mem crashed pid)) && not view.Sim.View.faulty.(pid))
              victims
          in
          let budget = cfg.Sim.Config.t_max - view.faults_used in
          crash_set_plan crashed crashed_b (take budget victims));
  }

(** Corrupt [t_max] processes chosen uniformly at round 1, then omit each of
    their incident messages independently with probability [p_omit] — noisy
    but non-strategic omissions. *)
let random_omission ~p_omit =
  {
    Sim.Adversary_intf.name = Printf.sprintf "random-omission(p=%.2f)" p_omit;
    create =
      (fun cfg rand ->
        (* byte-per-pid snapshot of the fault set: the predicate below runs
           once per (src, dst) pair, so probing a Hashtbl there was the
           hottest lookup in randomized runs *)
        let faulty_b = Bytes.make cfg.Sim.Config.n '\000' in
        let chosen = ref false in
        fun view ->
          let new_faults =
            if !chosen then []
            else begin
              chosen := true;
              let perm = Array.init cfg.Sim.Config.n (fun i -> i) in
              Sim.Rand.shuffle rand perm;
              let victims =
                Array.to_list (Array.sub perm 0 cfg.Sim.Config.t_max)
              in
              List.iter (fun pid -> Bytes.set faulty_b pid '\001') victims;
              victims
            end
          in
          ignore view;
          {
            (* stays pointwise ([compiled = None]): the predicate draws one
               random float per incident message, and that draw order is
               part of the observable bit-stream *)
            Sim.View.new_faults;
            omit =
              (fun src dst ->
                (Bytes.get faulty_b src <> '\000'
                || Bytes.get faulty_b dst <> '\000')
                && Sim.Rand.float rand < p_omit);
            compiled = None;
          });
  }

(** Corrupt a majority of one sqrt-decomposition group (contiguous pids, as
    the protocols partition them) and silence all their intra-group traffic:
    the aggregation quorum of that group collapses and its survivors go
    inoperative — the scenario of Figure 2's faulty process, scaled up. The
    rest of the system must still decide. *)
let group_killer ?(group = 0) () =
  {
    Sim.Adversary_intf.name = Printf.sprintf "group-killer(g=%d)" group;
    create =
      (fun cfg _rand ->
        let n = cfg.Sim.Config.n in
        let part = Groups.sqrt_partition (Array.init n (fun i -> i)) in
        let members = Groups.group part group in
        let victims_wanted = (Array.length members / 2) + 1 in
        let victims =
          take (min victims_wanted cfg.Sim.Config.t_max)
            (Array.to_list members)
        in
        let victim_b = Bytes.make n '\000' in
        List.iter (fun pid -> Bytes.set victim_b pid '\001') victims;
        let member_b = Bytes.make n '\000' in
        Array.iter (fun pid -> Bytes.set member_b pid '\001') members;
        (* static fault structure, so the per-sender verdict compiles once:
           a victim silences its whole group (victims included), a
           non-victim member loses exactly its victim links, outsiders are
           untouched *)
        let compiled src =
          if Bytes.get victim_b src <> '\000' then Sim.View.Omit_mask member_b
          else if Bytes.get member_b src <> '\000' then
            Sim.View.Omit_mask victim_b
          else Sim.View.Deliver_all
        in
        let started = ref false in
        fun _view ->
          let new_faults =
            if !started then []
            else begin
              started := true;
              victims
            end
          in
          {
            Sim.View.new_faults;
            omit =
              (fun src dst ->
                (Bytes.get victim_b src <> '\000'
                && Bytes.get member_b dst <> '\000')
                || (Bytes.get victim_b dst <> '\000'
                   && Bytes.get member_b src <> '\000'));
            compiled = Some compiled;
          });
  }

(** Isolate [victim] by corrupting the processes that talk to it and
    omitting exactly their messages to the victim (and the victim's
    replies): with enough budget the victim's expander degree drops below
    Delta/3 and it goes inoperative without a single fault of its own —
    the non-faulty-but-inoperative case the paper's partition is built
    around. Needs t_max above the victim's degree to fully eclipse. *)
let eclipse ~victim =
  {
    Sim.Adversary_intf.name = Printf.sprintf "eclipse(victim=%d)" victim;
    create =
      (fun cfg _rand ->
        let corrupted = Hashtbl.create 16 in
        let corrupted_b = Bytes.make cfg.Sim.Config.n '\000' in
        let victim_b = Bytes.make cfg.Sim.Config.n '\000' in
        Bytes.set victim_b victim '\001';
        (* the two masks are maintained across rounds, so the verdict is a
           static three-way dispatch: the victim loses its links to the
           corrupted set, a corrupted process loses exactly its link to the
           victim, everyone else is untouched *)
        let compiled src =
          if src = victim then Sim.View.Omit_mask corrupted_b
          else if Bytes.get corrupted_b src <> '\000' then
            Sim.View.Omit_mask victim_b
          else Sim.View.Deliver_all
        in
        fun view ->
          let budget = cfg.Sim.Config.t_max - view.Sim.View.faults_used in
          (* corrupt the processes currently sending to the victim *)
          let senders = Hashtbl.create 16 in
          Array.iter
            (fun e ->
              if e.Sim.View.dst = victim && e.src <> victim then
                Hashtbl.replace senders e.src ())
            (Sim.View.envelopes view);
          let new_faults =
            Hashtbl.fold
              (fun src () acc ->
                if
                  (not (Hashtbl.mem corrupted src))
                  && not view.faulty.(src)
                then src :: acc
                else acc)
              senders []
          in
          let new_faults = take budget (List.sort compare new_faults) in
          List.iter
            (fun pid ->
              Hashtbl.replace corrupted pid ();
              Bytes.set corrupted_b pid '\001')
            new_faults;
          {
            Sim.View.new_faults;
            omit =
              (fun src dst ->
                (dst = victim && Hashtbl.mem corrupted src)
                || (src = victim && Hashtbl.mem corrupted dst));
            compiled = Some compiled;
          });
  }

(** The lower-bound adversary (Theorem 2, Lemmas 13-15), played with crash
    faults only — the weakest faults the bound covers. Each round, after the
    local phase (so it has seen the fresh coins), it

    + reads every live undecided process's candidate bit and computes the
      imbalance d = #ones - #zeros;
    + crashes |d| holders of the majority value — coin-flippers first: this
      is the per-round coin-flipping game of Lemma 12, hiding the drifted
      coins at a cost of ~sqrt(k log n) crashes when k processes flipped;
    + crashes one more process *mid-round*, delivering its (majority) vote
      to only half of the survivors: the two halves now compute opposite
      majorities, so deterministic tie-breaking cannot unify them — Lemma
      15's "+1" process per round that keeps the execution bivalent even
      with zero randomness.

    The budget therefore drains at ~(sqrt(k log n) + 1) per round, forcing
    T x (R + T) = Omega(t^2 / log n) before the adversary runs dry. *)
let vote_splitter ?(slack = 0) () =
  {
    Sim.Adversary_intf.name = "vote-splitter";
    create =
      (fun cfg _rand ->
        let crashed = Hashtbl.create 16 in
        let crashed_b = Bytes.make cfg.Sim.Config.n '\000' in
        let crash_compiled src =
          if Bytes.get crashed_b src <> '\000' then Sim.View.Omit_all
          else Sim.View.Deliver_all
        in
        fun view ->
          let c = [| 0; 0 |] in
          let holders = [| []; [] |] in
          let live = ref [] in
          Array.iter
            (fun o ->
              let pid = o.Sim.View.pid in
              if
                (not view.Sim.View.faulty.(pid))
                && not (Hashtbl.mem crashed pid)
              then
                match (o.core.candidate, o.core.decided) with
                | Some b, None ->
                    c.(b) <- c.(b) + 1;
                    holders.(b) <- (o.used_randomness, pid) :: holders.(b);
                    live := pid :: !live
                | _ -> ())
            view.obs;
          let d = c.(1) - c.(0) in
          let side = if d >= 0 then 1 else 0 in
          let budget = ref (cfg.Sim.Config.t_max - view.faults_used) in
          let kills = min !budget (max 0 (abs d - slack)) in
          let candidates =
            (* coin-flippers first (fresh randomness is what the coin-game
               adversary hides), then by pid for determinism *)
            List.sort
              (fun (r1, p1) (r2, p2) ->
                match (r1, r2) with
                | true, false -> -1
                | false, true -> 1
                | _ -> compare p1 p2)
              holders.(side)
          in
          let victims = List.map snd (take kills candidates) in
          budget := !budget - List.length victims;
          List.iter
            (fun pid ->
              Hashtbl.replace crashed pid ();
              Bytes.set crashed_b pid '\001')
            victims;
          (* Lemma 15 split: only meaningful when the kills reached exact
             balance; the splitter must hold the tie-breaking value 1. *)
          let balanced = abs d - List.length victims = 0 in
          let splitter =
            if (not balanced) || !budget < 1 then None
            else
              List.find_opt
                (fun pid ->
                  (not (Hashtbl.mem crashed pid))
                  && List.exists (fun (_, q) -> q = pid) holders.(1))
                (List.sort compare !live)
          in
          match splitter with
          | None ->
              {
                Sim.View.new_faults = victims;
                omit = (fun src _ -> Hashtbl.mem crashed src);
                compiled = Some crash_compiled;
              }
          | Some v ->
              (* deliver v's vote to the second half of the survivors only,
                 then silence v forever (a crash in the sending round) *)
              let survivors =
                List.filter
                  (fun pid -> pid <> v && not (Hashtbl.mem crashed pid))
                  (List.sort compare !live)
              in
              let h_size = (List.length survivors + 1) / 2 in
              let hidden_from = Hashtbl.create 16 in
              let hidden_b = Bytes.make cfg.Sim.Config.n '\000' in
              List.iteri
                (fun i pid ->
                  if i < h_size then begin
                    Hashtbl.replace hidden_from pid ();
                    Bytes.set hidden_b pid '\001'
                  end)
                survivors;
              (* v joins [crashed] for future rounds, but this round it
                 still delivers to the non-hidden half — the [src = v]
                 dispatch comes first in both forms for that reason *)
              let plan_omit src dst =
                if src = v then Hashtbl.mem hidden_from dst
                else Hashtbl.mem crashed src
              in
              Hashtbl.replace crashed v ();
              Bytes.set crashed_b v '\001';
              {
                Sim.View.new_faults = v :: victims;
                omit = plan_omit;
                compiled =
                  Some
                    (fun src ->
                      if src = v then Sim.View.Omit_mask hidden_b
                      else crash_compiled src);
              });
  }

(** Crash a fixed number of random live processes every round until the
    budget runs out — the blunt staggered-crash stresser. *)
let staggered_crash ~per_round =
  {
    Sim.Adversary_intf.name = Printf.sprintf "staggered-crash(%d)" per_round;
    create =
      (fun cfg rand ->
        let crashed = Hashtbl.create 16 in
        let crashed_b = Bytes.make cfg.Sim.Config.n '\000' in
        fun view ->
          let budget = cfg.Sim.Config.t_max - view.Sim.View.faults_used in
          let live = ref [] in
          for pid = cfg.Sim.Config.n - 1 downto 0 do
            if (not view.faulty.(pid)) && not (Hashtbl.mem crashed pid) then
              live := pid :: !live
          done;
          let live = Array.of_list !live in
          Sim.Rand.shuffle rand live;
          let k = min (min per_round budget) (Array.length live) in
          let victims = Array.to_list (Array.sub live 0 k) in
          crash_set_plan crashed crashed_b victims);
  }

(** All strategies exercised by the integration test grid, with feasible
    defaults. *)
let standard_suite ~n =
  let s = int_of_float (ceil (sqrt (float_of_int n))) in
  [
    none;
    crash_schedule [ (1, [ 0 ]); (3, [ 1; 2 ]) ];
    random_omission ~p_omit:0.5;
    random_omission ~p_omit:1.0;
    group_killer ();
    vote_splitter ();
    staggered_crash ~per_round:(max 1 (s / 2));
  ]

(** Chaos monkey: each round, with probability [corrupt_rate], corrupt one
    random live process (while budget lasts), and omit every message at a
    faulty endpoint independently with probability [omit_rate]. Driven by
    the adversary's private seed — the random-exploration strategy the
    property-based tests sweep. *)
let chaotic ?(corrupt_rate = 0.3) ?(omit_rate = 0.5) () =
  {
    Sim.Adversary_intf.name = "chaotic";
    create =
      (fun cfg rand ->
        (* byte-per-pid fault flags instead of a Hashtbl probe per message
           pair (see random_omission) *)
        let faulty_b = Bytes.make cfg.Sim.Config.n '\000' in
        fun view ->
          let new_faults =
            if
              view.Sim.View.faults_used < cfg.Sim.Config.t_max
              && Sim.Rand.float rand < corrupt_rate
            then begin
              let live = ref [] in
              for pid = cfg.Sim.Config.n - 1 downto 0 do
                if not view.faulty.(pid) then live := pid :: !live
              done;
              match !live with
              | [] -> []
              | l ->
                  let arr = Array.of_list l in
                  let victim = arr.(Sim.Rand.int_below rand (Array.length arr)) in
                  Bytes.set faulty_b victim '\001';
                  [ victim ]
            end
            else []
          in
          {
            (* pointwise for the same reason as random_omission: the
               per-message randomness draw order is bit-observable *)
            Sim.View.new_faults;
            omit =
              (fun src dst ->
                (Bytes.get faulty_b src <> '\000'
                || Bytes.get faulty_b dst <> '\000')
                && Sim.Rand.float rand < omit_rate);
            compiled = None;
          });
  }

(** [pointwise a]: [a] with the compiled per-sender masks stripped from
    every plan it returns, forcing the engine onto the general
    per-message delivery path. The observable run is unchanged — the
    engine's contract is that compiled masks agree with the predicate —
    which is exactly what the equivalence suite and the scale bench's
    classic column use this combinator to demonstrate. *)
let pointwise (a : Sim.Adversary_intf.t) =
  {
    a with
    Sim.Adversary_intf.create =
      (fun cfg rand ->
        let adv = a.Sim.Adversary_intf.create cfg rand in
        fun view -> { (adv view) with Sim.View.compiled = None });
  }
