(* Deterministic domain-pool executor: pre-indexed result slots + an atomic
   work counter. See exec.mli for the determinism contract. *)

let recommended_jobs () = max 1 (Domain.recommended_domain_count ())

(* 0 means "use the recommended count"; set once from --jobs at startup. *)
let default = ref 0

let set_default_jobs n =
  if n < 0 then invalid_arg "Exec.set_default_jobs: jobs must be >= 0";
  default := n

let default_jobs () = if !default <= 0 then recommended_jobs () else !default

type 'b slot =
  | Empty
  | Value of 'b
  | Raised of exn * Printexc.raw_backtrace
  | Cancelled  (** skipped by the early-cancel fast path *)

let mapi ?jobs f xs =
  let n = Array.length xs in
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Exec.mapi: jobs must be >= 1";
  let jobs = min jobs n in
  if jobs <= 1 then Array.mapi f xs
  else begin
    let slots = Array.make n Empty in
    let next = Atomic.make 0 in
    (* Early-cancel fast path: the lowest failed index seen so far. A task
       with a higher index than a known failure can never be the one whose
       exception is re-raised, so skipping it changes nothing observable —
       while tasks at lower indices must still run, since they may fail
       with an even lower index. [compare_and_set] keeps the value at the
       minimum under concurrent failures. *)
    let failed = Atomic.make max_int in
    let rec note_failure i =
      let cur = Atomic.get failed in
      if i < cur && not (Atomic.compare_and_set failed cur i) then
        note_failure i
    in
    (* Each worker claims the next unclaimed index; distinct indices mean
       distinct slots, so workers never write the same cell. *)
    let rec work () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (if i > Atomic.get failed then slots.(i) <- Cancelled
         else
           slots.(i) <-
             (match f i xs.(i) with
             | v -> Value v
             | exception e ->
                 let bt = Printexc.get_raw_backtrace () in
                 note_failure i;
                 Raised (e, bt)));
        work ()
      end
    in
    let spawned = Array.init (jobs - 1) (fun _ -> Domain.spawn work) in
    work ();
    Array.iter Domain.join spawned;
    (* In-order harvest: the lowest-indexed failure raises, deterministically.
       [Cancelled] slots only exist at indices above that failure, so the
       in-order scan raises before ever reaching one. *)
    Array.map
      (function
        | Value v -> v
        | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
        | Empty | Cancelled -> assert false)
      slots
  end

let map ?jobs f xs = mapi ?jobs (fun _ x -> f x) xs

let map_list ?jobs f xs = Array.to_list (map ?jobs f (Array.of_list xs))

let init ?jobs n f =
  if n < 0 then invalid_arg "Exec.init: negative size";
  mapi ?jobs (fun i () -> f i) (Array.make n ())
