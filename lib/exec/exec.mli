(** Deterministic domain-pool executor.

    Fans independent tasks across OCaml 5 domains while keeping results
    bit-identical and order-stable: every task writes into a pre-indexed
    slot, so the output array is a pure function of the input array — the
    job count only changes wall-clock time, never results. All simulator
    runs are pure functions of their seed (the test suite pins this), which
    is what makes the sweep loops in [bench/] and the fuzz soak batch loop
    embarrassingly parallel.

    [jobs = 1] bypasses the pool entirely and evaluates inline, reproducing
    the serial behaviour exactly (including stopping at the first
    exception). With [jobs > 1] the exception of the lowest-indexed failing
    task is re-raised in the caller, with its backtrace — still
    deterministic. Once a task has failed, tasks at {e higher} indices that
    have not started yet are cancelled (they can never win the
    lowest-index race), so a failing sweep aborts quickly instead of
    grinding through the remaining work; tasks at lower indices always
    still run. Callers that want every task attempted and failures
    contained should use [Supervise.map], which wraps each task so none
    raises into the pool. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count], clamped to at least 1. *)

val set_default_jobs : int -> unit
(** Set the pool width used when [?jobs] is omitted. [0] restores the
    recommended count; negative values are rejected. Typically wired to a
    [--jobs N] command-line flag once at startup. *)

val default_jobs : unit -> int
(** The current default pool width ({!recommended_jobs} unless overridden
    by {!set_default_jobs}). *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f xs] is [Array.map f xs] computed by up to [jobs] domains
    (the calling domain participates, so at most [jobs - 1] are spawned).
    Results land in input order regardless of completion order. *)

val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** Like {!map}, passing each task its index. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over lists, preserving order. *)

val init : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [init ~jobs n f] is [Array.init n f] with the [f i] evaluated by the
    pool. [n] must be non-negative. *)
