(** The fuzzing loop: generate scenarios, run the differential conformance
    suite on each, and on a violation greedily shrink to a minimal
    (n, t, strategy) counterexample with a one-line replay command. *)

type stats = {
  mutable scenarios : int;
  mutable runs : int;  (** protocol executions *)
  mutable checked : int;  (** executions with consensus properties asserted *)
  mutable determinism_checks : int;
}

let stats_zero () =
  { scenarios = 0; runs = 0; checked = 0; determinism_checks = 0 }

type failure = {
  original : Scenario.t;
  shrunk : Scenario.t;
  violation : Runner.violation;
  shrink_steps : int;
}

let replay_command s =
  Printf.sprintf "consensus_sim replay -s '%s'" (Scenario.to_string s)

let pp_failure ppf f =
  Fmt.pf ppf "violation %a@." Runner.pp_violation f.violation;
  Fmt.pf ppf "original : %s@." (Scenario.to_string f.original);
  Fmt.pf ppf "shrunk   : %s (%d shrink steps)@."
    (Scenario.to_string f.shrunk) f.shrink_steps;
  Fmt.pf ppf "replay   : %s@." (replay_command f.shrunk)

(* A scenario "still fails" when it reproduces a violation of the same
   protocol and property — chasing a different bug mid-shrink would make
   the minimum meaningless. *)
let reproduces ~protocols (v : Runner.violation) s =
  let report = Runner.run ~protocols s in
  List.find_opt
    (fun (v' : Runner.violation) ->
      v'.protocol = v.protocol && v'.property = v.property)
    (Runner.report_violations report)

(** Greedy descent through {!Scenario.shrink} candidates: take the first
    candidate that still reproduces the violation, repeat until none does
    (or a step cap, as a backstop against shrink cycles). *)
let minimise ?(max_steps = 300) ~protocols (v : Runner.violation) s =
  let rec go s v steps =
    if steps >= max_steps then (s, v, steps)
    else
      let candidates =
        List.filter
          (fun c -> Scenario.measure c < Scenario.measure s)
          (Scenario.shrink s)
      in
      match
        List.find_map
          (fun c ->
            match reproduces ~protocols v c with
            | Some v' -> Some (c, v')
            | None -> None)
          candidates
      with
      | Some (c, v') -> go c v' (steps + 1)
      | None -> (s, v, steps)
  in
  go s v 0

(** Run [count] generated scenarios (stopping early once [time_budget]
    wall-clock seconds have elapsed, if given) through the differential
    suite. Every 25th scenario is additionally replayed twice for
    bit-identical determinism. Returns the stats, or the first (shrunk)
    failure.

    Scenarios are evaluated in batches fanned across the {!Exec} domain
    pool. Each scenario is a pure function of [seed] and its index
    ([Sim.Rand.derive] off a never-advancing root), so results are
    identical at any [jobs]; the serial fold below consumes batch results
    in index order, reproducing the serial loop's stats and
    first-violation semantics exactly. *)
let run ?(protocols = Registry.all) ?(count = 500) ?(seed = 1) ?max_n
    ?time_budget ?jobs ?(progress = fun _ -> ()) ?journal ?store () :
    (stats, failure * stats) result =
  let stats = stats_zero () in
  (* checkpoint/resume: each clean scenario's stats contribution is
     journaled under a (seed, index) key; on resume those scenarios are
     folded from the journal without re-evaluation, so the final stats are
     identical to an uninterrupted soak. Violations are never journaled —
     an interrupted failing run re-finds the violation on resume. *)
  let key i = Printf.sprintf "fuzz|seed=%d|i=%d" seed i in
  let journal_cached i =
    match journal with
    | None -> None
    | Some j -> (
        match Supervise.Journal.lookup j (key i) with
        | None -> None
        | Some payload -> (
            match String.split_on_char ' ' payload with
            | [ r; c; d ] -> (
                try Some (int_of_string r, int_of_string c, int_of_string d)
                with _ -> None)
            | _ -> None))
  in
  let record i ~runs ~checked ~det =
    match journal with
    | None -> ()
    | Some j ->
        Supervise.Journal.record j ~key:(key i)
          (Printf.sprintf "%d %d %d" runs checked det)
  in
  let root = Sim.Rand.create ~seed:(Int64.of_int seed) () in
  (* content-addressed dedup across campaigns: the journal keys on
     (seed, index), the store keys on the scenario itself (plus the
     protocol set and which determinism check the rotation owes this
     index), so a repeated or reseeded soak skips every scenario any
     earlier campaign already proved clean. Violations are never stored
     — a failing scenario re-runs, re-shrinks and re-reports. *)
  let protocols_sig =
    String.concat ","
      (List.sort compare (List.map (fun e -> e.Registry.id) protocols))
  in
  let started = Unix.gettimeofday () in
  let out_of_time () =
    match time_budget with
    | Some b -> Unix.gettimeofday () -. started > b
    | None -> false
  in
  let jobs = match jobs with Some j -> j | None -> Exec.default_jobs () in
  let batch = max 1 (jobs * 4) in
  (* which registry entry the serial loop's rotating determinism check
     would pick for scenario [i] — pure in (i, s) *)
  let det_entry i s =
    if i mod 25 <> 0 then None
    else
      match
        List.filter
          (fun e -> s.Scenario.n >= e.Registry.min_n && Registry.in_model e s)
          protocols
      with
      | [] -> None
      | l -> Some (List.nth l (i / 25 mod List.length l))
  in
  let scenario_of i = Scenario.generate ?max_n (Sim.Rand.derive root i) in
  let store_key i s =
    Printf.sprintf "fuzz-scenario|%s|%s|det=%s" protocols_sig
      (Scenario.to_string s)
      (match det_entry i s with None -> "-" | Some e -> e.Registry.id)
  in
  let store_cached i =
    match store with
    | None -> None
    | Some st -> (
        match Cache.Store.lookup st (store_key i (scenario_of i)) with
        | None -> None
        | Some payload -> (
            match String.split_on_char ' ' payload with
            | [ r; c; d ] -> (
                try Some (int_of_string r, int_of_string c, int_of_string d)
                with _ -> None)
            | _ -> None))
  in
  let store_add i ~runs ~checked ~det =
    match store with
    | None -> ()
    | Some st ->
        Cache.Store.add st
          ~key:(store_key i (scenario_of i))
          (Printf.sprintf "%d %d %d" runs checked det)
  in
  let eval i =
    let s = scenario_of i in
    let report = Runner.run ~protocols s in
    let violation =
      match Runner.report_violations report with v :: _ -> Some v | [] -> None
    in
    (* the serial loop stops at a conformance violation before reaching the
       determinism check, so don't spend the replays in that case *)
    let det =
      if violation <> None then None
      else
        match det_entry i s with
        | None -> None
        | Some e -> Some (Runner.determinism_violation e s)
    in
    (s, report, violation, det)
  in
  let exception Found of failure in
  try
    let i = ref 0 in
    while !i < count && not (out_of_time ()) do
      let hi = min count (!i + batch) in
      let lo = !i in
      (* one lookup per index per batch — journal first (cheapest, no
         disk), then the store — so the store's hit/miss stats mean what
         they say *)
      let pre =
        Array.init (hi - lo) (fun k ->
            let idx = lo + k in
            match journal_cached idx with
            | Some r -> Some (`Journal, r)
            | None -> (
                match store_cached idx with
                | Some r -> Some (`Store, r)
                | None -> None))
      in
      let fresh =
        Array.of_list
          (List.filter
             (fun k -> pre.(k - lo) = None)
             (List.init (hi - lo) (fun k -> lo + k)))
      in
      let results = Exec.map ~jobs (fun k -> (k, eval k)) fresh in
      (* index the fresh results so the fold below can walk lo..hi-1 in
         order, interleaving journaled and freshly evaluated scenarios *)
      let tbl = Hashtbl.create (Array.length results) in
      Array.iter (fun (k, r) -> Hashtbl.add tbl k r) results;
      for idx = lo to hi - 1 do
        (match pre.(idx - lo) with
        | Some (src, (runs, checked, det)) ->
            stats.scenarios <- stats.scenarios + 1;
            stats.runs <- stats.runs + runs;
            stats.checked <- stats.checked + checked;
            stats.determinism_checks <- stats.determinism_checks + det;
            (* cross-populate so each layer ends the soak complete: a
               journal hit seeds the store, a store hit checkpoints the
               journal *)
            (match src with
            | `Journal -> store_add idx ~runs ~checked ~det
            | `Store -> record idx ~runs ~checked ~det)
        | None ->
            let s, (report : Runner.report), violation, det =
              Hashtbl.find tbl idx
            in
            stats.scenarios <- stats.scenarios + 1;
            let runs = List.length report.results in
            let checked =
              List.length
                (List.filter (fun r -> r.Runner.checked) report.results)
            in
            stats.runs <- stats.runs + runs;
            stats.checked <- stats.checked + checked;
            (match violation with
            | Some v ->
                let shrunk, v', steps = minimise ~protocols v s in
                raise
                  (Found
                     {
                       original = s;
                       shrunk;
                       violation = v';
                       shrink_steps = steps;
                     })
            | None -> ());
            (match det with
            | None -> ()
            | Some det_result -> (
                stats.determinism_checks <- stats.determinism_checks + 1;
                match det_result with
                | Some v ->
                    raise
                      (Found
                         {
                           original = s;
                           shrunk = s;
                           violation = v;
                           shrink_steps = 0;
                         })
                | None -> ()));
            let det = if det = None then 0 else 1 in
            record idx ~runs ~checked ~det;
            store_add idx ~runs ~checked ~det);
        if (idx + 1) mod 50 = 0 then
          progress
            (Printf.sprintf "%d scenarios, %d protocol runs, %d checked"
               stats.scenarios stats.runs stats.checked)
      done;
      i := hi
    done;
    Ok stats
  with Found f -> Error (f, stats)
