(** The fuzzing loop: generate scenarios, run the differential conformance
    suite on each, and on a violation greedily shrink to a minimal
    (n, t, strategy) counterexample with a one-line replay command. *)

type stats = {
  mutable scenarios : int;
  mutable runs : int;  (** protocol executions *)
  mutable checked : int;  (** executions with consensus properties asserted *)
  mutable determinism_checks : int;
}

let stats_zero () =
  { scenarios = 0; runs = 0; checked = 0; determinism_checks = 0 }

type failure = {
  original : Scenario.t;
  shrunk : Scenario.t;
  violation : Runner.violation;
  shrink_steps : int;
}

let replay_command s =
  Printf.sprintf "consensus_sim replay -s '%s'" (Scenario.to_string s)

let pp_failure ppf f =
  Fmt.pf ppf "violation %a@." Runner.pp_violation f.violation;
  Fmt.pf ppf "original : %s@." (Scenario.to_string f.original);
  Fmt.pf ppf "shrunk   : %s (%d shrink steps)@."
    (Scenario.to_string f.shrunk) f.shrink_steps;
  Fmt.pf ppf "replay   : %s@." (replay_command f.shrunk)

(* A scenario "still fails" when it reproduces a violation of the same
   protocol and property — chasing a different bug mid-shrink would make
   the minimum meaningless. *)
let reproduces ~protocols (v : Runner.violation) s =
  let report = Runner.run ~protocols s in
  List.find_opt
    (fun (v' : Runner.violation) ->
      v'.protocol = v.protocol && v'.property = v.property)
    (Runner.report_violations report)

(** Greedy descent through {!Scenario.shrink} candidates: take the first
    candidate that still reproduces the violation, repeat until none does
    (or a step cap, as a backstop against shrink cycles). *)
let minimise ?(max_steps = 300) ~protocols (v : Runner.violation) s =
  let rec go s v steps =
    if steps >= max_steps then (s, v, steps)
    else
      let candidates =
        List.filter
          (fun c -> Scenario.measure c < Scenario.measure s)
          (Scenario.shrink s)
      in
      match
        List.find_map
          (fun c ->
            match reproduces ~protocols v c with
            | Some v' -> Some (c, v')
            | None -> None)
          candidates
      with
      | Some (c, v') -> go c v' (steps + 1)
      | None -> (s, v, steps)
  in
  go s v 0

(** Run [count] generated scenarios (stopping early once [time_budget]
    CPU-seconds have elapsed, if given) through the differential suite.
    Every 25th scenario is additionally replayed twice for bit-identical
    determinism. Returns the stats, or the first (shrunk) failure. *)
let run ?(protocols = Registry.all) ?(count = 500) ?(seed = 1) ?max_n
    ?time_budget ?(progress = fun _ -> ()) () :
    (stats, failure * stats) result =
  let stats = stats_zero () in
  let root = Sim.Rand.create ~seed:(Int64.of_int seed) () in
  let started = Sys.time () in
  let out_of_time () =
    match time_budget with
    | Some b -> Sys.time () -. started > b
    | None -> false
  in
  let exception Found of failure in
  try
    let i = ref 0 in
    while !i < count && not (out_of_time ()) do
      let s = Scenario.generate ?max_n (Sim.Rand.derive root !i) in
      let report = Runner.run ~protocols s in
      stats.scenarios <- stats.scenarios + 1;
      stats.runs <- stats.runs + List.length report.results;
      stats.checked <-
        stats.checked
        + List.length
            (List.filter (fun r -> r.Runner.checked) report.results);
      (match Runner.report_violations report with
      | v :: _ ->
          let shrunk, v', steps = minimise ~protocols v s in
          raise
            (Found
               { original = s; shrunk; violation = v'; shrink_steps = steps })
      | [] -> ());
      (* periodic determinism regression check, rotating over protocols *)
      if !i mod 25 = 0 then begin
        let in_model =
          List.filter
            (fun e ->
              s.Scenario.n >= e.Registry.min_n && Registry.in_model e s)
            protocols
        in
        match in_model with
        | [] -> ()
        | l -> (
            let e = List.nth l (!i / 25 mod List.length l) in
            stats.determinism_checks <- stats.determinism_checks + 1;
            match Runner.determinism_violation e s with
            | Some v ->
                raise
                  (Found
                     {
                       original = s;
                       shrunk = s;
                       violation = v;
                       shrink_steps = 0;
                     })
            | None -> ())
      end;
      if (!i + 1) mod 50 = 0 then
        progress
          (Printf.sprintf "%d scenarios, %d protocol runs, %d checked"
             stats.scenarios stats.runs stats.checked);
      incr i
    done;
    Ok stats
  with Found f -> Error (f, stats)
