(** Differential conformance runner: execute registered protocols on the
    same scenario and check each against its spec — agreement, weak
    validity and termination for protocols whose fault model covers the
    scenario's strategy (the conditional delivery guarantee for the
    broadcast), plus the engine metric invariants on every run. *)

type violation = {
  protocol : string;
  property : string;
  detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

type run_result = {
  id : string;
  checked : bool;  (** in-model: the consensus properties were asserted *)
  outcome : Sim.Engine.outcome option;  (** [None] if the run raised *)
  violations : violation list;
}

type report = {
  scenario : Scenario.t;
  results : run_result list;
}

val report_violations : report -> violation list
val report_ok : report -> bool

val config_for : Registry.entry -> Scenario.t -> Sim.Config.t
(** The configuration the entry runs under: the scenario's budget clamped
    to the entry's tolerance, the entry's schedule bound as [max_rounds]. *)

val run_entry :
  ?trace:Trace.Sink.t ->
  ?net:Net.Spec.t ->
  ?force_legacy:bool ->
  Registry.entry ->
  Scenario.t ->
  run_result
(** Run one protocol on a scenario. [trace], if given, receives the run's
    engine event stream (see {!Sim.Engine.run}). [net], if given, runs the
    scenario over a lossy-link transport (a fresh [Net.Transport] per call;
    residual losses are not model-checked here — use [Supervise.run_net]
    for the degradation report). Ported protocols run on the buffered
    engine path unless [force_legacy] pins them to the list-based shim. *)

val run :
  ?protocols:Registry.entry list ->
  ?include_out_of_model:bool ->
  Scenario.t ->
  report
(** Run the differential suite. By default only protocols whose model
    covers the scenario are executed; [include_out_of_model] runs the rest
    too, asserting just the engine metric invariants. *)

val determinism_violation : Registry.entry -> Scenario.t -> violation option
(** Replay the scenario twice on one protocol and compare the outcome
    records bit for bit. *)

val pp_report : Format.formatter -> report -> unit
