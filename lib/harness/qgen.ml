(** QCheck arbitraries over the harness's generators, for the
    property-based test suites: scenarios (full algebra or the
    crash-compatible sub-algebra) and bare strategy terms, all with
    printers and shrinkers attached.

    The QCheck random state is only used to draw a root seed; the value is
    then a pure function of that seed through {!Sim.Rand}, so a fixed
    [~rand] in the test runner makes CI fully deterministic. *)

let rand_of st = Sim.Rand.create ~seed:(Int64.of_int (Random.State.bits st)) ()

let scenario_of ?max_n ?crash_bias () st =
  Scenario.generate ?max_n ?crash_bias (rand_of st)

(** Arbitrary scenario; [crash_bias 1.0] restricts to the crash-compatible
    sub-algebra (for the crash-model baselines). *)
let scenario ?max_n ?crash_bias () =
  QCheck.make
    ~print:Scenario.to_string
    ~shrink:(fun s -> QCheck.Iter.of_list (Scenario.shrink s))
    (scenario_of ?max_n ?crash_bias ())

(** Arbitrary strategy term (for codec/compilation properties). *)
let strategy ?(n = 16) ?(crash = false) () =
  QCheck.make
    ~print:Strategy.to_string
    ~shrink:(fun s -> QCheck.Iter.of_list (Strategy.shrink s))
    (fun st ->
      let rand = rand_of st in
      Scenario.gen_strategy rand ~n ~crash
        ~depth:(1 + Sim.Rand.int_below rand 3))
