(** A fuzzing scenario: a full, replayable description of one differential
    run — system size, fault budget, root seed, input vector and adversary
    strategy. Serializes to a single shell-safe token
    [n/t/seed/bits/strategy] so a failing case prints as a one-line replay
    command. *)

type t = {
  n : int;
  t_max : int;
  seed : int;
  inputs : int array;  (** length [n], bits *)
  strategy : Strategy.t;
}

let make ~n ~t_max ~seed ~inputs ~strategy =
  if Array.length inputs <> n then
    invalid_arg "Scenario.make: inputs length must equal n";
  Array.iter
    (fun b ->
      if b <> 0 && b <> 1 then invalid_arg "Scenario.make: inputs must be bits")
    inputs;
  if n <= 0 then invalid_arg "Scenario.make: n must be positive";
  if t_max < 0 || t_max >= n then
    invalid_arg "Scenario.make: t_max must be in [0, n)";
  { n; t_max; seed; inputs; strategy }

let to_string s =
  let bits = String.init s.n (fun i -> if s.inputs.(i) = 1 then '1' else '0') in
  Printf.sprintf "%d/%d/%d/%s/%s" s.n s.t_max s.seed bits
    (Strategy.to_string s.strategy)

let pp ppf s = Fmt.string ppf (to_string s)

exception Parse_error of string

let of_string str =
  let fail fmt =
    Printf.ksprintf
      (fun m -> raise (Parse_error (Printf.sprintf "%s in %S" m str)))
      fmt
  in
  match String.split_on_char '/' str with
  | n :: t_max :: seed :: bits :: strategy ->
      let int what v =
        match int_of_string_opt v with
        | Some i -> i
        | None -> fail "bad %s %S" what v
      in
      let n = int "n" n and t_max = int "t" t_max and seed = int "seed" seed in
      if String.length bits <> n then fail "inputs must have length n=%d" n;
      let inputs =
        Array.init n (fun i ->
            match bits.[i] with
            | '0' -> 0
            | '1' -> 1
            | c -> fail "bad input bit %c" c)
      in
      (* the strategy grammar contains no '/', but rejoin defensively *)
      let strategy =
        try Strategy.of_string (String.concat "/" strategy)
        with Strategy.Parse_error m -> fail "%s" m
      in
      (try make ~n ~t_max ~seed ~inputs ~strategy
       with Invalid_argument m -> fail "%s" m)
  | _ -> fail "expected n/t/seed/bits/strategy"

(* --- generation --- *)

let gen_target rand ~n ~crash =
  let k () = 1 + Sim.Rand.int_below rand (max 1 (n / 4)) in
  match Sim.Rand.int_below rand (if crash then 6 else 7) with
  | 0 ->
      let len = 1 + Sim.Rand.int_below rand 3 in
      Strategy.Pids (List.init len (fun _ -> Sim.Rand.int_below rand n))
  | 1 -> Lowest (k ())
  | 2 -> Random (k ())
  | 3 -> Flippers (k ())
  | 4 -> Holders (Sim.Rand.bit rand, k ())
  | 5 -> Majority (k ())
  | _ -> Group (Sim.Rand.int_below rand 3)

let gen_drop rand ~crash =
  if crash then if Sim.Rand.bit rand = 0 then Strategy.Out else All
  else
    match Sim.Rand.int_below rand 7 with
    | 0 -> Strategy.Out
    | 1 -> In
    | 2 -> All
    | 3 -> Flip (25 * (1 + Sim.Rand.int_below rand 4))
    | 4 -> Half
    | 5 -> ToHolders (Sim.Rand.bit rand)
    | _ -> Intra

(** Random strategy term. [crash] restricts to the crash-compatible
    sub-algebra (tail-position outgoing/total strikes, no [Until]/[Seq]
    de-activation), so the generated term always satisfies
    {!Strategy.crash_compatible}. *)
let rec gen_strategy rand ~n ~crash ~depth =
  let strike () =
    Strategy.Strike (gen_target rand ~n ~crash, gen_drop rand ~crash)
  in
  (* The vote-splitter archetype (cf. the paper's Lemma 15): corrupt [k]
     holders of bit [b] and deliver their votes only to the [b]-side, so the
     two sides count strictly opposite majorities. Kept as an explicit
     generator case because composing it from uniform parts is rare, and it
     is the canonical attack against majority-threshold protocols. *)
  let splitter () =
    let b = Sim.Rand.bit rand in
    let k = 2 + Sim.Rand.int_below rand 3 in
    Strategy.Strike (Holders (b, k), ToHolders (1 - b))
  in
  if depth <= 0 then
    if Sim.Rand.int_below rand 4 = 0 then Strategy.Idle else strike ()
  else
    let sub ?(crash = crash) () =
      gen_strategy rand ~n ~crash ~depth:(depth - 1)
    in
    (* crash mode only draws cases 0-7; the rest need the full algebra *)
    match Sim.Rand.int_below rand (if crash then 8 else 12) with
    | 0 -> Strategy.Idle
    | 1 | 2 -> strike ()
    | 3 | 4 -> From (1 + Sim.Rand.int_below rand 8, sub ())
    | 5 -> Both (sub (), sub ())
    | 6 | 7 -> Again (sub ())
    | 8 -> Until (1 + Sim.Rand.int_below rand 10, sub ~crash:false ())
    | 10 | 11 -> splitter ()
    | _ ->
        let len = 1 + Sim.Rand.int_below rand 3 in
        (* non-last elements of a Seq stop being active, so in crash mode
           they would break compatibility; here crash is false *)
        Seq (List.init len (fun _ -> sub ~crash:false ()))

let gen_inputs rand n =
  match Sim.Rand.int_below rand 5 with
  | 0 -> Array.make n 0
  | 1 -> Array.make n 1
  | 2 -> Array.init n (fun i -> i mod 2)
  | 3 ->
      let dissent = Sim.Rand.int_below rand n in
      let b = Sim.Rand.bit rand in
      Array.init n (fun i -> if i = dissent then 1 - b else b)
  | _ -> Array.init n (fun _ -> Sim.Rand.bit rand)

(** Generate a scenario from a counted-random stream. [crash_bias] is the
    probability of drawing from the crash-compatible sub-algebra, so the
    crash-model baselines get conformance coverage too. *)
let generate ?(max_n = 40) ?(crash_bias = 0.5) rand =
  let n = 4 + Sim.Rand.int_below rand (max_n - 3) in
  let t_max = Sim.Rand.int_below rand (max 1 (min (n - 1) (1 + (n / 4)))) in
  let seed = 1 + Sim.Rand.int_below rand 1_000_000 in
  let crash = Sim.Rand.float rand < crash_bias in
  let strategy =
    gen_strategy rand ~n ~crash ~depth:(1 + Sim.Rand.int_below rand 3)
  in
  let inputs = gen_inputs rand n in
  make ~n ~t_max ~seed ~inputs ~strategy

(* --- shrinking --- *)

(** Structurally smaller scenarios: shrink the strategy, the fault budget,
    the seed, and the system size (halving, truncating the inputs). Every
    candidate strictly decreases the lexicographic measure
    (n, strategy size, t_max, seed != 1, #ones), so greedy descent
    terminates. *)
let shrink s =
  let candidates = ref [] in
  let add c = candidates := c :: !candidates in
  (* smaller system, inputs truncated, budget clamped *)
  List.iter
    (fun n' ->
      if n' >= 2 && n' < s.n then
        add
          {
            s with
            n = n';
            t_max = min s.t_max (n' - 1);
            inputs = Array.sub s.inputs 0 n';
          })
    [ 4; s.n / 2; s.n - 1 ];
  (* smaller strategy *)
  List.iter
    (fun st -> add { s with strategy = st })
    (Strategy.shrink s.strategy);
  (* smaller budget *)
  if s.t_max > 0 then begin
    add { s with t_max = 0 };
    if s.t_max > 1 then add { s with t_max = s.t_max / 2 };
    add { s with t_max = s.t_max - 1 }
  end;
  (* canonical seed *)
  if s.seed <> 1 then add { s with seed = 1 };
  (* all-same inputs *)
  if Array.exists (fun b -> b = 1) s.inputs && Array.exists (fun b -> b = 0) s.inputs
  then begin
    add { s with inputs = Array.make s.n 0 };
    add { s with inputs = Array.make s.n 1 }
  end;
  List.rev !candidates

(** Well-founded measure decreased by shrinking (used to bound the greedy
    descent; [shrink] candidates are not all strictly smaller under it, so
    the minimiser also caps its step count). *)
let measure s =
  (s.n * 1000)
  + (Strategy.size s.strategy * 50)
  + (s.t_max * 5)
  + (if s.seed = 1 then 0 else 1)
  + Array.fold_left ( + ) 0 s.inputs
