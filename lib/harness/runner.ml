(** Differential conformance runner: execute registered protocols on the
    same scenario and check each against its spec — the consensus
    properties (agreement, weak validity, termination) for protocols whose
    fault model covers the scenario's strategy, plus the engine metric
    invariants on every run. *)

type violation = {
  protocol : string;
  property : string;
  detail : string;
}

let pp_violation ppf v =
  Fmt.pf ppf "[%s] %s: %s" v.protocol v.property v.detail

type run_result = {
  id : string;
  checked : bool;  (** in-model: the consensus properties were asserted *)
  outcome : Sim.Engine.outcome option;  (** [None] if the run raised *)
  violations : violation list;
}

type report = {
  scenario : Scenario.t;
  results : run_result list;
}

let report_violations r = List.concat_map (fun res -> res.violations) r.results
let report_ok r = report_violations r = []

(* Configuration a protocol entry actually runs under: the scenario's
   budget clamped to the entry's tolerance, and the entry's schedule bound
   as max_rounds. *)
let config_for (entry : Registry.entry) (s : Scenario.t) =
  let t_max = max 0 (min s.Scenario.t_max (entry.max_t s.Scenario.n)) in
  let cfg0 = Sim.Config.make ~n:s.n ~t_max ~seed:s.seed () in
  { cfg0 with Sim.Config.max_rounds = Registry.rounds_bound entry cfg0 }

(* Probe wrapper: records the operative flags of the last observed round
   and whether [source] stayed operative throughout — the conditional the
   broadcast guarantee hinges on. *)
let probed_adversary strategy ~source =
  let final_operative = ref [||] in
  let source_operative = ref true in
  let inner = Strategy.compile strategy in
  let adversary =
    {
      inner with
      Sim.Adversary_intf.create =
        (fun cfg rand ->
          let step = inner.Sim.Adversary_intf.create cfg rand in
          fun view ->
            final_operative :=
              Array.map (fun o -> o.Sim.View.core.operative) view.Sim.View.obs;
            (match source with
            | Some src ->
                if not view.Sim.View.obs.(src).core.operative then
                  source_operative := false
            | None -> ());
            step view);
    }
  in
  (adversary, final_operative, source_operative)

let check_metrics (cfg : Sim.Config.t) (o : Sim.Engine.outcome) =
  let bad = ref [] in
  let check property cond detail =
    if not cond then bad := (property, detail) :: !bad
  in
  let faulty_count =
    Array.fold_left (fun a f -> if f then a + 1 else a) 0 o.faulty
  in
  check "metric:fault-budget"
    (o.faults_used <= cfg.t_max)
    (Printf.sprintf "faults_used %d > t_max %d" o.faults_used cfg.t_max);
  check "metric:fault-count"
    (o.faults_used = faulty_count)
    (Printf.sprintf "faults_used %d <> |faulty| %d" o.faults_used faulty_count);
  check "metric:omitted<=sent"
    (o.messages_omitted <= o.messages_sent && o.messages_omitted >= 0)
    (Printf.sprintf "omitted %d vs sent %d" o.messages_omitted o.messages_sent);
  check "metric:bits>=messages"
    (o.bits_sent >= o.messages_sent)
    (Printf.sprintf "bits %d < messages %d" o.bits_sent o.messages_sent);
  check "metric:rounds<=max"
    (o.rounds_total <= cfg.max_rounds)
    (Printf.sprintf "rounds %d > max_rounds %d" o.rounds_total cfg.max_rounds);
  (match o.decided_round with
  | Some r ->
      check "metric:decided-round"
        (r >= 1 && r <= o.rounds_total)
        (Printf.sprintf "decided_round %d outside [1, %d]" r o.rounds_total)
  | None -> ());
  check "metric:rand-monotone"
    (o.rand_calls >= 0 && o.rand_bits >= o.rand_calls)
    (Printf.sprintf "rand bits %d < calls %d" o.rand_bits o.rand_calls);
  check "metric:rand-zero"
    (o.rand_calls > 0 || o.rand_bits = 0)
    (Printf.sprintf "0 calls but %d bits" o.rand_bits);
  Array.iteri
    (fun pid d ->
      match d with
      | Some v when v <> 0 && v <> 1 ->
          check "metric:decision-bit" false
            (Printf.sprintf "pid %d decided non-bit %d" pid v)
      | _ -> ())
    o.decisions;
  List.rev !bad

let check_consensus (s : Scenario.t) (o : Sim.Engine.outcome) =
  let bad = ref [] in
  if not (Sim.Engine.all_nonfaulty_decided o) then
    bad :=
      ("termination", "a non-faulty process never decided") :: !bad
  else begin
    match Sim.Engine.agreed_decision o with
    | None -> bad := ("agreement", "non-faulty processes disagree") :: !bad
    | Some v ->
        if not (Array.exists (fun b -> b = v) s.Scenario.inputs) then
          bad :=
            ( "validity",
              Printf.sprintf "decision %d is nobody's input" v )
            :: !bad
  end;
  List.rev !bad

let check_broadcast (s : Scenario.t) ~source ~final_operative
    ~source_operative (o : Sim.Engine.outcome) =
  let bad = ref [] in
  let input = s.Scenario.inputs.(source) in
  if not (Sim.Engine.all_nonfaulty_decided o) then
    bad := ("termination", "a non-faulty process never decided") :: !bad;
  Array.iteri
    (fun pid d ->
      match d with
      | Some v when (not o.faulty.(pid)) && v <> 0 && v <> input ->
          bad :=
            ( "broadcast-validity",
              Printf.sprintf "pid %d delivered %d, source sent %d" pid v input
            )
            :: !bad
      | _ -> ())
    o.decisions;
  (* the Section-6 guarantee: with the source non-faulty and operative
     throughout, every process still operative at the end delivers *)
  if (not o.faulty.(source)) && source_operative then
    Array.iteri
      (fun pid d ->
        if
          (not o.faulty.(pid))
          && pid < Array.length final_operative
          && final_operative.(pid)
          && d <> Some input
        then
          bad :=
            ( "broadcast-delivery",
              Printf.sprintf "operative pid %d decided %s, not source bit %d"
                pid
                (match d with Some v -> string_of_int v | None -> "nothing")
                input )
            :: !bad)
      o.decisions;
  List.rev !bad

(** Run one protocol on a scenario. [checked] in the result says whether
    the consensus/broadcast properties were asserted (the protocol's model
    covers the strategy) — the metric invariants are always asserted.
    [trace], if given, receives the run's engine event stream. Ported
    protocols run on the buffered engine path unless [force_legacy] pins
    them to the list-based shim (the equivalence suite uses this to compare
    the two). *)
let run_entry ?trace ?net ?(force_legacy = false) (entry : Registry.entry)
    (s : Scenario.t) : run_result =
  let checked = Registry.in_model entry s in
  let cfg = config_for entry s in
  let link =
    match net with
    | None -> None
    | Some spec -> Some (Net.Transport.link (Net.Transport.create spec cfg))
  in
  let source =
    match entry.kind with
    | Registry.Broadcast { source } -> Some source
    | Registry.Consensus -> None
  in
  let adversary, final_operative, source_operative =
    probed_adversary s.Scenario.strategy ~source
  in
  let protocol =
    if force_legacy then Sim.Protocol_intf.Legacy (Registry.build entry cfg)
    else Registry.build_any entry cfg
  in
  match
    Sim.Engine.run_any ?trace ?link protocol cfg ~adversary
      ~inputs:s.Scenario.inputs
  with
  | exception e ->
      {
        id = entry.id;
        checked;
        outcome = None;
        violations =
          [
            {
              protocol = entry.id;
              property =
                (match e with
                | Sim.Engine.Illegal_plan _ -> "illegal-plan"
                | _ -> "exception");
              detail = Printexc.to_string e;
            };
          ];
      }
  | o ->
      let metric = check_metrics cfg o in
      let spec =
        if not checked then []
        else
          match entry.kind with
          | Registry.Consensus -> check_consensus s o
          | Registry.Broadcast { source } ->
              check_broadcast s ~source
                ~final_operative:!final_operative
                ~source_operative:!source_operative o
      in
      {
        id = entry.id;
        checked;
        outcome = Some o;
        violations =
          List.map
            (fun (property, detail) ->
              { protocol = entry.id; property; detail })
            (metric @ spec);
      }

(** Run the differential suite. By default only protocols whose model
    covers the scenario are executed ([include_out_of_model] runs the rest
    too, asserting just the engine metric invariants). *)
let run ?(protocols = Registry.all) ?(include_out_of_model = false)
    (s : Scenario.t) : report =
  let results =
    List.filter_map
      (fun entry ->
        if s.Scenario.n < entry.Registry.min_n then None
        else if Registry.in_model entry s || include_out_of_model then
          Some (run_entry entry s)
        else None)
      protocols
  in
  { scenario = s; results }

(** Replay the scenario twice on one protocol and compare the outcome
    records bit for bit — the engine's pure-function-of-the-seed
    guarantee. *)
let determinism_violation (entry : Registry.entry) (s : Scenario.t) :
    violation option =
  let once () = run_entry entry s in
  let r1 = once () and r2 = once () in
  if r1.outcome = r2.outcome then None
  else
    Some
      {
        protocol = entry.id;
        property = "determinism";
        detail = "two runs with the same seed produced different outcomes";
      }

let pp_report ppf (r : report) =
  Fmt.pf ppf "scenario %s@." (Scenario.to_string r.scenario);
  List.iter
    (fun res ->
      match res.outcome with
      | None ->
          Fmt.pf ppf "  %-20s RAISED %s@." res.id
            (match res.violations with v :: _ -> v.detail | [] -> "?")
      | Some o ->
          Fmt.pf ppf
            "  %-20s %s rounds=%-4d msgs=%-7d omitted=%-6d faults=%d %s@."
            res.id
            (if res.checked then "checked" else "metrics")
            o.rounds_total o.messages_sent o.messages_omitted o.faults_used
            (match Sim.Engine.agreed_decision o with
            | Some v -> Printf.sprintf "decision=%d" v
            | None -> "no-agreement"))
    r.results;
  List.iter
    (fun v -> Fmt.pf ppf "  VIOLATION %a@." pp_violation v)
    (report_violations r)
