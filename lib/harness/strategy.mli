(** Compositional, serializable adversary-strategy algebra for the fuzzing
    harness: terms are generated, shrunk, printed, re-parsed for replay, and
    compiled to legal {!Sim.Adversary_intf.t} adversaries (the compiled
    closure clamps corruptions to the budget and only omits at faulty
    endpoints, so {!Sim.Engine.Illegal_plan} can never fire). *)

type target =
  | Pids of int list  (** explicit processes (out-of-range ids ignored) *)
  | Lowest of int  (** the [k] lowest-numbered live processes *)
  | Random of int  (** [k] uniformly random live processes *)
  | Flippers of int  (** [k] live processes that drew randomness this round *)
  | Holders of int * int  (** [k] live holders of candidate bit [b] *)
  | Majority of int  (** [k] live holders of the current majority candidate *)
  | Group of int  (** a majority of sqrt-decomposition group [g] *)

type drop =
  | Out  (** omit the victims' outgoing messages (crash semantics) *)
  | In  (** omit the victims' incoming messages *)
  | All  (** omit every message incident to a victim *)
  | Flip of int  (** each incident message independently, percent chance *)
  | Intra  (** only messages between two victims *)
  | Half  (** omit victims' outgoing messages to the lower half of pids *)
  | ToHolders of int
      (** omit victims' outgoing messages to current holders of candidate
          bit [b] — the Lemma-15-style adaptive split *)

type t =
  | Idle
  | Strike of target * drop
      (** corrupt the target (once, on first activation) and apply the drop
          to the accumulated victim set while active *)
  | Seq of t list  (** element [r-1] is active at round [r]; last persists *)
  | From of int * t  (** body active from round [r] on *)
  | Until of int * t  (** body active through round [r] *)
  | Both of t * t  (** union of two strategies *)
  | Again of t  (** re-evaluate the body's strikes every active round *)

val size : t -> int
(** Structural weight (constructors plus leaf complexity), chosen so every
    {!shrink} candidate is strictly smaller — the measure the greedy
    counterexample minimiser descends. *)

val crash_compatible : t -> bool
(** Whether the strategy stays inside the crash model: every strike is
    outgoing-silencing (or total) and active until the end of the run, so a
    victim never speaks again. The crash-model baselines are only checked
    against strategies satisfying this. *)

val to_string : t -> string
(** Compact textual form, re-read by {!of_string} — the replay codec. *)

val pp : Format.formatter -> t -> unit

exception Parse_error of string

val of_string : string -> t
(** Inverse of {!to_string}. Raises {!Parse_error} on malformed input. *)

val shrink : t -> t list
(** Structurally smaller candidates for the greedy minimiser. *)

val compile : ?name:string -> t -> Sim.Adversary_intf.t
(** Compile to an engine adversary. Always legal; deterministic given the
    engine's adversary seed. *)
