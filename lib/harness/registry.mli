(** First-class-module registry of every {!Sim.Protocol_intf.S}
    implementation in [lib/consensus], with the metadata the differential
    conformance runner needs. To register a new protocol, add an entry to
    {!all} with its fault model, tolerated budget, schedule bound and
    conformance kind; the fuzzer, the [fuzz]/[replay] subcommands and the
    property-based test suite pick it up automatically. *)

type model = Crash | Omission

type kind =
  | Consensus
      (** agreement + weak validity + termination among non-faulty *)
  | Broadcast of { source : int }
      (** decisions are the source's bit or the default 0; full delivery is
          only guaranteed while the source stays operative *)

type entry = {
  id : string;
  model : model;
  kind : kind;
  max_t : int -> int;  (** n -> largest tolerated fault budget *)
  min_n : int;  (** smallest supported system size *)
  build : Sim.Config.t -> Sim.Protocol_intf.t;
  rounds_bound : Sim.Config.t -> int;
      (** schedule length to use as [max_rounds]; termination is expected
          within it *)
}

val pp_model : Format.formatter -> model -> unit
val all : entry list
val find : string -> entry option
val ids : unit -> string list

val in_model : entry -> Scenario.t -> bool
(** Whether the protocol's guarantees cover the scenario (size fits and the
    strategy stays inside its fault model); out-of-model runs are still
    executed for engine-invariant checking but their decisions are not held
    to the consensus properties. *)
