(** First-class-module registry of every {!Sim.Protocol_intf.S}
    implementation in [lib/consensus], with the metadata the differential
    conformance runner needs. To register a new protocol, export a
    {!Sim.Protocol_intf.BUILDER} from its module and add
    [make ~model ~kind ~max_t ~min_n Its.builder] to {!all}; the fuzzer,
    the [fuzz]/[replay]/[run] subcommands and the property-based test suite
    pick it up automatically under the builder's [name]. *)

type model = Crash | Omission

type kind =
  | Consensus
      (** agreement + weak validity + termination among non-faulty *)
  | Broadcast of { source : int }
      (** decisions are the source's bit or the default 0; full delivery is
          only guaranteed while the source stays operative *)

type entry = {
  id : string;  (** the builder's [name] — also the CLI spelling *)
  model : model;
  kind : kind;
  max_t : int -> int;  (** n -> largest tolerated fault budget *)
  min_n : int;  (** smallest supported system size *)
  builder : Sim.Protocol_intf.builder;
  buffered : (Sim.Config.t -> Sim.Protocol_intf.buffered) option;
      (** allocation-free construction, for protocols ported to
          [step_into] *)
}

val make :
  ?buffered:(Sim.Config.t -> Sim.Protocol_intf.buffered) ->
  model:model ->
  kind:kind ->
  max_t:(int -> int) ->
  min_n:int ->
  Sim.Protocol_intf.builder ->
  entry
(** The only way entries are formed: the id is the builder's [name]. *)

val build : entry -> Sim.Config.t -> Sim.Protocol_intf.t
(** Instantiate the entry's protocol for a configuration. *)

val build_any : entry -> Sim.Config.t -> Sim.Protocol_intf.any
(** Instantiate on the protocol's preferred engine path: buffered when
    ported, legacy otherwise. The equivalence suite keeps the two paths
    bit-identical. *)

val rounds_bound : entry -> Sim.Config.t -> int
(** Schedule length to use as [max_rounds]; termination is expected within
    it. *)

val pp_model : Format.formatter -> model -> unit
val all : entry list
val find : string -> (entry, string) result
(** Look up a protocol by registry id. [Error] carries a one-line
    message naming the id and listing every registered protocol, ready
    to print. *)

val ids : unit -> string list

val in_model : entry -> Scenario.t -> bool
(** Whether the protocol's guarantees cover the scenario (size fits and the
    strategy stays inside its fault model); out-of-model runs are still
    executed for engine-invariant checking but their decisions are not held
    to the consensus properties. *)
