(** First-class-module registry of every {!Sim.Protocol_intf.S}
    implementation in [lib/consensus], with the metadata the differential
    conformance runner needs: which fault model the protocol is specified
    against, the largest budget it tolerates, and the conformance kind
    (consensus vs. source broadcast). Construction and schedule sizing go
    through each protocol's {!Sim.Protocol_intf.BUILDER}. *)

type model = Crash | Omission

type kind =
  | Consensus
      (** agreement + weak validity + termination among non-faulty *)
  | Broadcast of { source : int }
      (** decisions are the source's bit or the default 0; full delivery is
          only guaranteed while the source stays operative *)

type entry = {
  id : string;  (** the builder's [name] *)
  model : model;
  kind : kind;
  max_t : int -> int;  (** n -> largest tolerated fault budget *)
  min_n : int;  (** smallest supported system size *)
  builder : Sim.Protocol_intf.builder;
  buffered : (Sim.Config.t -> Sim.Protocol_intf.buffered) option;
      (** allocation-free construction, for protocols ported to
          [step_into] *)
}

let pp_model ppf m =
  Fmt.string ppf (match m with Crash -> "crash" | Omission -> "omission")

let make ?buffered ~model ~kind ~max_t ~min_n builder =
  let module B = (val builder : Sim.Protocol_intf.BUILDER) in
  { id = B.name; model; kind; max_t; min_n; builder; buffered }

let build e cfg =
  let module B = (val e.builder : Sim.Protocol_intf.BUILDER) in
  B.build cfg

(** The protocol on its preferred engine path: buffered when the entry has
    been ported, the legacy list path (through the engine's shim) otherwise.
    Both paths are bit-identical by the equivalence suite. *)
let build_any e cfg =
  match e.buffered with
  | Some f -> Sim.Protocol_intf.Buffered (f cfg)
  | None -> Sim.Protocol_intf.Legacy (build e cfg)

let rounds_bound e cfg =
  let module B = (val e.builder : Sim.Protocol_intf.BUILDER) in
  B.rounds_needed cfg

let all : entry list =
  [
    make ~model:Crash ~kind:Consensus
      ~max_t:(fun n -> n / 3)
      ~min_n:2 ~buffered:Consensus.Flood.protocol_buffered
      Consensus.Flood.builder;
    make ~model:Crash ~kind:Consensus
      ~max_t:(fun n -> n / 4)
      ~min_n:2 ~buffered:Consensus.Early_stopping.protocol_buffered
      Consensus.Early_stopping.builder;
    make ~model:Crash ~kind:Consensus
      ~max_t:(fun n -> n / 8)
      ~min_n:2
      ~buffered:(fun cfg -> Consensus.Bjbo.protocol_buffered cfg)
      (Consensus.Bjbo.builder ());
    make ~model:Crash ~kind:Consensus
      ~max_t:(fun n -> n / 31)
      ~min_n:4
      ~buffered:(fun cfg -> Consensus.Crash_subquadratic.protocol_buffered cfg)
      (Consensus.Crash_subquadratic.builder ());
    make ~model:Omission ~kind:Consensus
      ~max_t:(fun n -> n / 4)
      ~min_n:2 ~buffered:Consensus.Dolev_strong.protocol_buffered
      Consensus.Dolev_strong.builder;
    make ~model:Omission ~kind:Consensus
      ~max_t:(fun n -> (n - 1) / 6)
      ~min_n:2 ~buffered:Consensus.Phase_king.protocol_buffered
      Consensus.Phase_king.builder;
    make ~model:Omission ~kind:Consensus
      ~max_t:(fun n -> n / 31)
      ~min_n:4
      ~buffered:(fun cfg -> Consensus.Optimal_omissions.protocol_buffered cfg)
      (Consensus.Optimal_omissions.builder ());
    make ~model:Omission ~kind:Consensus
      ~max_t:(fun n -> n / 61)
      ~min_n:8
      ~buffered:(fun cfg -> Consensus.Param_omissions.protocol_buffered ~x:2 cfg)
      (Consensus.Param_omissions.builder ~x:2 ());
    make ~model:Omission
      ~kind:(Broadcast { source = 0 })
      ~max_t:(fun n -> n / 8)
      ~min_n:4
      ~buffered:(fun cfg ->
        Consensus.Operative_broadcast.protocol_buffered ~source:0 cfg)
      (Consensus.Operative_broadcast.builder ~source:0 ());
  ]

let ids () = List.map (fun e -> e.id) all

let find id =
  match List.find_opt (fun e -> e.id = id) all with
  | Some e -> Ok e
  | None ->
      Error
        (Printf.sprintf "unknown protocol %S; registered: %s" id
           (String.concat ", " (ids ())))

(** Protocols whose guarantees cover [scenario]: the system is large
    enough, and the strategy stays inside the protocol's fault model. The
    budget is clamped to the entry's tolerance by the runner. *)
let in_model entry (s : Scenario.t) =
  s.Scenario.n >= entry.min_n
  && (entry.model = Omission || Strategy.crash_compatible s.Scenario.strategy)
