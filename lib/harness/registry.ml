(** First-class-module registry of every {!Sim.Protocol_intf.S}
    implementation in [lib/consensus], with the metadata the differential
    conformance runner needs: which fault model the protocol is specified
    against, the largest budget it tolerates, a schedule bound for sizing
    [max_rounds], and the conformance kind (consensus vs. source
    broadcast). *)

type model = Crash | Omission

type kind =
  | Consensus
      (** agreement + weak validity + termination among non-faulty *)
  | Broadcast of { source : int }
      (** decisions are the source's bit or the default 0; full delivery is
          only guaranteed while the source stays operative *)

type entry = {
  id : string;
  model : model;
  kind : kind;
  max_t : int -> int;  (** n -> largest tolerated fault budget *)
  min_n : int;  (** smallest supported system size *)
  build : Sim.Config.t -> Sim.Protocol_intf.t;
  rounds_bound : Sim.Config.t -> int;
      (** schedule length to use as [max_rounds]; termination is expected
          within it *)
}

let pp_model ppf m =
  Fmt.string ppf (match m with Crash -> "crash" | Omission -> "omission")

let all : entry list =
  [
    {
      id = "flood";
      model = Crash;
      kind = Consensus;
      max_t = (fun n -> n / 3);
      min_n = 2;
      build = (fun cfg -> Consensus.Flood.protocol cfg);
      rounds_bound = (fun cfg -> cfg.Sim.Config.t_max + 3);
    };
    {
      id = "early-stopping";
      model = Crash;
      kind = Consensus;
      max_t = (fun n -> n / 4);
      min_n = 2;
      build = (fun cfg -> Consensus.Early_stopping.protocol cfg);
      rounds_bound = (fun cfg -> cfg.Sim.Config.t_max + 5);
    };
    {
      id = "bjbo";
      model = Crash;
      kind = Consensus;
      max_t = (fun n -> n / 8);
      min_n = 2;
      build = (fun cfg -> Consensus.Bjbo.protocol cfg);
      rounds_bound = (fun cfg -> 60 * (cfg.Sim.Config.t_max + 10));
    };
    {
      id = "crash-sub";
      model = Crash;
      kind = Consensus;
      max_t = (fun n -> n / 31);
      min_n = 4;
      build = (fun cfg -> Consensus.Crash_subquadratic.protocol cfg);
      rounds_bound =
        (fun cfg -> Consensus.Crash_subquadratic.rounds_needed cfg + 10);
    };
    {
      id = "dolev-strong";
      model = Omission;
      kind = Consensus;
      max_t = (fun n -> n / 4);
      min_n = 2;
      build = (fun cfg -> Consensus.Dolev_strong.protocol cfg);
      rounds_bound = (fun cfg -> cfg.Sim.Config.t_max + 3);
    };
    {
      id = "phase-king";
      model = Omission;
      kind = Consensus;
      max_t = (fun n -> (n - 1) / 6);
      min_n = 2;
      build = (fun cfg -> Consensus.Phase_king.protocol cfg);
      rounds_bound = (fun cfg -> Consensus.Phase_king.rounds_needed cfg + 1);
    };
    {
      id = "optimal";
      model = Omission;
      kind = Consensus;
      max_t = (fun n -> n / 31);
      min_n = 4;
      build = (fun cfg -> Consensus.Optimal_omissions.protocol cfg);
      rounds_bound =
        (fun cfg -> Consensus.Optimal_omissions.rounds_needed cfg + 10);
    };
    {
      id = "param-x2";
      model = Omission;
      kind = Consensus;
      max_t = (fun n -> n / 61);
      min_n = 8;
      build = (fun cfg -> Consensus.Param_omissions.protocol ~x:2 cfg);
      rounds_bound =
        (fun cfg -> Consensus.Param_omissions.rounds_needed ~x:2 cfg + 10);
    };
    {
      id = "operative-broadcast";
      model = Omission;
      kind = Broadcast { source = 0 };
      max_t = (fun n -> n / 8);
      min_n = 4;
      build = (fun cfg -> Consensus.Operative_broadcast.protocol ~source:0 cfg);
      rounds_bound =
        (fun cfg ->
          (2 * Consensus.Params.log2_ceil cfg.Sim.Config.n) + 3);
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all
let ids () = List.map (fun e -> e.id) all

(** Protocols whose guarantees cover [scenario]: the system is large
    enough, and the strategy stays inside the protocol's fault model. The
    budget is clamped to the entry's tolerance by the runner. *)
let in_model entry (s : Scenario.t) =
  s.Scenario.n >= entry.min_n
  && (entry.model = Omission || Strategy.crash_compatible s.Scenario.strategy)
