(** A fuzzing scenario: a full, replayable description of one differential
    run. Serializes to a single shell-safe token [n/t/seed/bits/strategy]
    so a failing case prints as a one-line replay command. *)

type t = {
  n : int;
  t_max : int;
  seed : int;
  inputs : int array;  (** length [n], bits *)
  strategy : Strategy.t;
}

val make :
  n:int ->
  t_max:int ->
  seed:int ->
  inputs:int array ->
  strategy:Strategy.t ->
  t
(** Validates the same invariants as {!Sim.Config.make} plus the input
    vector; raises [Invalid_argument] otherwise. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

exception Parse_error of string

val of_string : string -> t
(** Inverse of {!to_string}; raises {!Parse_error} on malformed input. *)

val gen_strategy : Sim.Rand.t -> n:int -> crash:bool -> depth:int -> Strategy.t
(** Random strategy term for an [n]-process system. [crash] restricts to
    the crash-compatible sub-algebra, so the result always satisfies
    {!Strategy.crash_compatible}. *)

val generate : ?max_n:int -> ?crash_bias:float -> Sim.Rand.t -> t
(** Draw a scenario: n in [4, max_n] (default 40), t below ~n/4, a seed,
    an input pattern (unanimous / mixed / single-dissent / random), and a
    strategy term. With probability [crash_bias] (default 0.5) the strategy
    comes from the crash-compatible sub-algebra, so the crash-model
    baselines get coverage too. *)

val shrink : t -> t list
(** Structurally smaller candidates for the greedy minimiser. *)

val measure : t -> int
(** Size measure used to order shrink candidates. *)
