(** The fuzzing loop: generate scenarios, run the differential conformance
    suite on each, and on a violation greedily shrink to a minimal
    (n, t, strategy) counterexample with a one-line replay command. *)

type stats = {
  mutable scenarios : int;
  mutable runs : int;  (** protocol executions *)
  mutable checked : int;  (** executions with consensus properties asserted *)
  mutable determinism_checks : int;
}

type failure = {
  original : Scenario.t;
  shrunk : Scenario.t;
  violation : Runner.violation;
  shrink_steps : int;
}

val replay_command : Scenario.t -> string
(** The one-liner that reproduces the scenario via [consensus_sim replay]. *)

val pp_failure : Format.formatter -> failure -> unit

val minimise :
  ?max_steps:int ->
  protocols:Registry.entry list ->
  Runner.violation ->
  Scenario.t ->
  Scenario.t * Runner.violation * int
(** Greedy descent through {!Scenario.shrink}: take the first candidate
    that still reproduces a violation of the same protocol and property,
    repeat to a fixpoint (capped at [max_steps]). Returns the minimum, its
    violation, and the steps taken. *)

val run :
  ?protocols:Registry.entry list ->
  ?count:int ->
  ?seed:int ->
  ?max_n:int ->
  ?time_budget:float ->
  ?jobs:int ->
  ?progress:(string -> unit) ->
  ?journal:Supervise.Journal.t ->
  ?store:Cache.Store.t ->
  unit ->
  (stats, failure * stats) result
(** Run [count] generated scenarios (stopping early after [time_budget]
    wall-clock seconds, if given). Every 25th scenario is additionally
    replayed twice for bit-identical determinism. Returns the stats, or the
    first failure, already shrunk.

    Scenario batches fan out across [jobs] domains (default
    {!Exec.default_jobs}); every scenario is a pure function of [seed] and
    its index, and batch results are folded in index order, so the outcome
    — stats, first violation, shrunk counterexample — is identical at any
    [jobs]. [jobs = 1] is the serial loop.

    With [journal], each clean scenario's stats contribution is recorded
    under a [(seed, index)] key as it completes; scenarios already present
    in the journal (opened with [~resume:true]) are folded from it without
    re-evaluation, so an interrupted soak resumed with the same [seed] and
    [count] reports stats identical to an uninterrupted one. Violations are
    never journaled: resuming a failing soak re-finds the violation. The
    caller closes the journal.

    With [store], clean scenarios are additionally deduplicated across
    campaigns through the content-addressed cache: the key is the
    scenario itself (plus the protocol set and the determinism-check
    assignment), so a repeated or reseeded soak skips work any earlier
    one already did. Hits checkpoint the journal and journal hits seed
    the store, so either layer alone suffices to resume. Violations are
    never stored. The caller closes the store. *)
