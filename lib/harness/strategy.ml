(** A compositional, serializable adversary-strategy algebra.

    The hand-written strategies in [lib/adversary] are points in the
    adversary space; the fuzzing harness needs to *search* that space, so a
    strategy here is a first-order term that can be generated, shrunk,
    printed and re-parsed for replay, and compiled to a legal
    {!Sim.Adversary_intf.t}.

    Legality is by construction: a compiled strike keeps a private victim
    set, only ever corrupts within the remaining budget, and only omits
    messages incident to its victims (who are faulty by then), so the
    engine's {!Sim.Engine.Illegal_plan} can never fire. *)

type target =
  | Pids of int list  (** explicit processes (out-of-range ids ignored) *)
  | Lowest of int  (** the [k] lowest-numbered live processes *)
  | Random of int  (** [k] uniformly random live processes *)
  | Flippers of int  (** [k] live processes that drew randomness this round *)
  | Holders of int * int  (** [k] live holders of candidate bit [b] *)
  | Majority of int  (** [k] live holders of the current majority candidate *)
  | Group of int  (** a majority of sqrt-decomposition group [g] *)

type drop =
  | Out  (** omit the victims' outgoing messages (crash semantics) *)
  | In  (** omit the victims' incoming messages *)
  | All  (** omit every message incident to a victim *)
  | Flip of int  (** each incident message independently, percent chance *)
  | Intra  (** only messages between two victims *)
  | Half  (** omit victims' outgoing messages to the lower half of pids *)
  | ToHolders of int
      (** omit victims' outgoing messages to current holders of candidate
          bit [b] — the Lemma-15-style adaptive split *)

type t =
  | Idle
  | Strike of target * drop
      (** corrupt the target (once, on first activation) and apply the drop
          to the accumulated victim set while active *)
  | Seq of t list  (** element [r-1] is active at round [r]; last persists *)
  | From of int * t  (** body active from round [r] on *)
  | Until of int * t  (** body active through round [r] *)
  | Both of t * t  (** union of two strategies *)
  | Again of t  (** re-evaluate the body's strikes every active round *)

(* --- structural helpers --- *)

(* Leaf weights are chosen so that every [shrink_target]/[shrink_drop]
   candidate is strictly lighter, which makes [size] (and hence the
   scenario measure) strictly decrease along every shrink step. *)
let target_weight = function
  | Pids l -> max 1 (List.length l)
  | Lowest k -> max 1 k
  | Random k | Flippers k | Holders (_, k) | Majority k -> max 1 k + 2
  | Group _ -> 3

let drop_weight = function
  | Out -> 0
  | In | All | Intra | Half | ToHolders _ -> 1
  | Flip p -> if p > 50 then 3 else 2

let rec size = function
  | Idle -> 1
  | Strike (tg, d) -> 2 + target_weight tg + drop_weight d
  | Seq l -> 1 + List.fold_left (fun a s -> a + size s) 0 l
  | From (r, b) | Until (r, b) ->
      1 + (if r > 1 then 1 else 0) + size b
  | Again b -> 1 + size b
  | Both (a, b) -> 1 + size a + size b

(** Conservative check that the strategy stays inside the crash model: every
    strike silences (at least) the victims' outgoing messages and remains
    active for the rest of the run, so a victim never speaks again — the
    crash-model protocols (flood, bjbo, early-stopping, crash-subquadratic)
    are only specified against such strategies. *)
let crash_compatible t =
  (* [tail] = the subterm stays active until the end of the run *)
  let rec go ~tail = function
    | Idle -> true
    | Strike (_, (Out | All)) -> tail
    | Strike (_, (In | Flip _ | Intra | Half | ToHolders _)) -> false
    | Seq [] -> true
    | Seq l ->
        let rec seq = function
          | [] -> true
          | [ last ] -> go ~tail last
          | x :: rest -> go ~tail:false x && seq rest
        in
        seq l
    | From (_, b) -> go ~tail b
    | Until (_, b) -> go ~tail:false b
    | Both (a, b) -> go ~tail a && go ~tail b
    | Again b -> go ~tail b
  in
  go ~tail:true t

(* --- printing / parsing ---

   Grammar (no whitespace):
     t      ::= "idle" | "strike(" target "," drop ")" | "seq[" t (";" t)* "]"
              | "from(" int "," t ")" | "until(" int "," t ")"
              | "both(" t "," t ")" | "again(" t ")"
     target ::= "p" int ("." int)* | "low" int | "rnd" int | "coin" int
              | "hold" bit "x" int | "maj" int | "grp" int
     drop   ::= "out" | "in" | "all" | "p" int | "intra" *)

let target_to_string = function
  | Pids l -> "p" ^ String.concat "." (List.map string_of_int l)
  | Lowest k -> Printf.sprintf "low%d" k
  | Random k -> Printf.sprintf "rnd%d" k
  | Flippers k -> Printf.sprintf "coin%d" k
  | Holders (b, k) -> Printf.sprintf "hold%dx%d" b k
  | Majority k -> Printf.sprintf "maj%d" k
  | Group g -> Printf.sprintf "grp%d" g

let drop_to_string = function
  | Out -> "out"
  | In -> "in"
  | All -> "all"
  | Flip p -> Printf.sprintf "p%d" p
  | Intra -> "intra"
  | Half -> "half"
  | ToHolders b -> Printf.sprintf "to%d" b

let rec to_string = function
  | Idle -> "idle"
  | Strike (tg, d) ->
      Printf.sprintf "strike(%s,%s)" (target_to_string tg) (drop_to_string d)
  | Seq l -> "seq[" ^ String.concat ";" (List.map to_string l) ^ "]"
  | From (r, b) -> Printf.sprintf "from(%d,%s)" r (to_string b)
  | Until (r, b) -> Printf.sprintf "until(%d,%s)" r (to_string b)
  | Both (a, b) -> Printf.sprintf "both(%s,%s)" (to_string a) (to_string b)
  | Again b -> Printf.sprintf "again(%s)" (to_string b)

let pp ppf t = Fmt.string ppf (to_string t)

exception Parse_error of string

(* Recursive-descent parser over a cursor into the string. *)
let of_string s =
  let pos = ref 0 in
  let len = String.length s in
  let fail fmt =
    Printf.ksprintf
      (fun m -> raise (Parse_error (Printf.sprintf "%s at %d in %S" m !pos s)))
      fmt
  in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let eat c =
    match peek () with
    | Some c' when c' = c -> incr pos
    | _ -> fail "expected %c" c
  in
  let lit w =
    let l = String.length w in
    if !pos + l <= len && String.sub s !pos l = w then (pos := !pos + l; true)
    else false
  in
  let int () =
    let start = !pos in
    while !pos < len && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
      incr pos
    done;
    if !pos = start then fail "expected integer";
    int_of_string (String.sub s start (!pos - start))
  in
  let target () =
    if lit "low" then Lowest (int ())
    else if lit "rnd" then Random (int ())
    else if lit "coin" then Flippers (int ())
    else if lit "hold" then begin
      let b = int () in
      eat 'x';
      Holders (b, int ())
    end
    else if lit "maj" then Majority (int ())
    else if lit "grp" then Group (int ())
    else if lit "p" then begin
      let first = int () in
      let l = ref [ first ] in
      while peek () = Some '.' do
        eat '.';
        l := int () :: !l
      done;
      Pids (List.rev !l)
    end
    else fail "expected target"
  in
  let drop () =
    (* "p<int>" must be tried before bare prefixes that share letters *)
    if lit "out" then Out
    else if lit "intra" then Intra
    else if lit "in" then In
    else if lit "all" then All
    else if lit "half" then Half
    else if lit "to" then ToHolders (int ())
    else if lit "p" then Flip (int ())
    else fail "expected drop"
  in
  let rec term () =
    if lit "idle" then Idle
    else if lit "strike(" then begin
      let tg = target () in
      eat ',';
      let d = drop () in
      eat ')';
      Strike (tg, d)
    end
    else if lit "seq[" then begin
      if peek () = Some ']' then (eat ']'; Seq [])
      else begin
        let l = ref [ term () ] in
        while peek () = Some ';' do
          eat ';';
          l := term () :: !l
        done;
        eat ']';
        Seq (List.rev !l)
      end
    end
    else if lit "from(" then begin
      let r = int () in
      eat ',';
      let b = term () in
      eat ')';
      From (r, b)
    end
    else if lit "until(" then begin
      let r = int () in
      eat ',';
      let b = term () in
      eat ')';
      Until (r, b)
    end
    else if lit "both(" then begin
      let a = term () in
      eat ',';
      let b = term () in
      eat ')';
      Both (a, b)
    end
    else if lit "again(" then begin
      let b = term () in
      eat ')';
      Again (b)
    end
    else fail "expected strategy term"
  in
  let t = term () in
  if !pos <> len then fail "trailing garbage";
  t

(* --- shrinking --- *)

let shrink_target = function
  | Pids [] | Pids [ _ ] -> []
  | Pids l -> [ Pids (List.filteri (fun i _ -> i > 0) l); Pids [ List.hd l ] ]
  | Lowest k -> if k <= 1 then [] else [ Lowest 1; Lowest (k / 2) ]
  | Random k -> (if k <= 1 then [] else [ Random 1; Random (k / 2) ]) @ [ Lowest k ]
  | Flippers k -> if k <= 1 then [ Lowest 1 ] else [ Flippers 1; Lowest k ]
  | Holders (b, k) -> (if k <= 1 then [] else [ Holders (b, 1) ]) @ [ Lowest k ]
  | Majority k -> (if k <= 1 then [] else [ Majority 1 ]) @ [ Lowest k ]
  | Group _ -> [ Lowest 2 ]

let shrink_drop = function
  | Out -> []
  | In | All | Intra | Half | ToHolders _ -> [ Out ]
  | Flip p -> [ Out; All ] @ (if p > 50 then [ Flip 50 ] else [])

(** Structurally smaller candidate strategies (every candidate has a
    strictly smaller {!size} or an equal size with simpler leaves), used by
    the greedy counterexample minimiser. *)
let rec shrink = function
  | Idle -> []
  | Strike (tg, d) ->
      Idle
      :: List.map (fun tg' -> Strike (tg', d)) (shrink_target tg)
      @ List.map (fun d' -> Strike (tg, d')) (shrink_drop d)
  | Seq l ->
      Idle :: l
      @ List.mapi (fun i _ -> Seq (List.filteri (fun j _ -> j <> i) l)) l
  | From (r, b) ->
      (Idle :: b :: (if r > 1 then [ From (1, b) ] else []))
      @ List.map (fun b' -> From (r, b')) (shrink b)
  | Until (r, b) ->
      (Idle :: b :: (if r > 1 then [ Until (1, b) ] else []))
      @ List.map (fun b' -> Until (r, b')) (shrink b)
  | Both (a, b) ->
      (Idle :: a :: b
      :: List.map (fun a' -> Both (a', b)) (shrink a))
      @ List.map (fun b' -> Both (a, b')) (shrink b)
  | Again b ->
      (Idle :: b :: List.map (fun b' -> Again b') (shrink b))

(* --- compilation --- *)

(* Per-strike mutable state: the victims it has claimed and whether it has
   already fired (non-[Again] strikes target once). *)
type strike_state = { victims : (int, unit) Hashtbl.t; mutable fired : bool }

type ctx = {
  cfg : Sim.Config.t;
  rand : Sim.Rand.t;  (* the adversary's private stream *)
  view : Sim.View.t;
  budget : int ref;
  (* pids corrupted earlier this round by other strikes of this strategy *)
  newly : (int, unit) Hashtbl.t;
  faults : int list ref;  (* accumulated new_faults of the round, reversed *)
  redo : bool;  (* inside [Again]: re-evaluate targets every round *)
}

let is_live ctx pid =
  (not ctx.view.Sim.View.faulty.(pid)) && not (Hashtbl.mem ctx.newly pid)

let live_pids ctx =
  let l = ref [] in
  for pid = ctx.cfg.Sim.Config.n - 1 downto 0 do
    if is_live ctx pid then l := pid :: !l
  done;
  !l

let take k l =
  let rec go k acc = function
    | [] -> List.rev acc
    | _ when k <= 0 -> List.rev acc
    | x :: tl -> go (k - 1) (x :: acc) tl
  in
  go k [] l

let eval_target ctx = function
  | Pids l ->
      List.filter (fun p -> p >= 0 && p < ctx.cfg.Sim.Config.n) l
  | Lowest k -> take k (live_pids ctx)
  | Random k ->
      let live = Array.of_list (live_pids ctx) in
      Sim.Rand.shuffle ctx.rand live;
      take k (Array.to_list live)
  | Flippers k ->
      let l = ref [] in
      Array.iter
        (fun o ->
          if o.Sim.View.used_randomness && is_live ctx o.pid then
            l := o.pid :: !l)
        ctx.view.obs;
      take k (List.rev !l)
  | Holders (b, k) ->
      let l = ref [] in
      Array.iter
        (fun o ->
          if o.Sim.View.core.candidate = Some b && is_live ctx o.pid then
            l := o.pid :: !l)
        ctx.view.obs;
      take k (List.rev !l)
  | Majority k ->
      let c = [| 0; 0 |] in
      Array.iter
        (fun o ->
          match o.Sim.View.core.candidate with
          | Some b when is_live ctx o.pid -> c.(b) <- c.(b) + 1
          | _ -> ())
        ctx.view.obs;
      let side = if c.(1) >= c.(0) then 1 else 0 in
      let l = ref [] in
      Array.iter
        (fun o ->
          if o.Sim.View.core.candidate = Some side && is_live ctx o.pid then
            l := o.pid :: !l)
        ctx.view.obs;
      take k (List.rev !l)
  | Group g ->
      let n = ctx.cfg.Sim.Config.n in
      let part = Groups.sqrt_partition (Array.init n (fun i -> i)) in
      let count = Groups.group_count part in
      let members = Groups.group part (((g mod count) + count) mod count) in
      take ((Array.length members / 2) + 1) (Array.to_list members)

(* Corrupt the targets of a strike within the budget; pids that are already
   faulty join the victim set for free (omitting at their edges is legal). *)
let claim ctx st pids =
  List.iter
    (fun pid ->
      if not (Hashtbl.mem st.victims pid) then
        if not (is_live ctx pid) then Hashtbl.replace st.victims pid ()
        else if !(ctx.budget) > 0 then begin
          decr ctx.budget;
          Hashtbl.replace ctx.newly pid ();
          ctx.faults := pid :: !(ctx.faults);
          Hashtbl.replace st.victims pid ()
        end)
    pids

let drop_predicate ctx st d =
  let mem pid = Hashtbl.mem st.victims pid in
  match d with
  | Out -> fun src _ -> mem src
  | In -> fun _ dst -> mem dst
  | All -> fun src dst -> mem src || mem dst
  | Intra -> fun src dst -> mem src && mem dst
  | Flip p ->
      let threshold = float_of_int p /. 100. in
      fun src dst ->
        (mem src || mem dst) && Sim.Rand.float ctx.rand < threshold
  | Half ->
      let half = ctx.cfg.Sim.Config.n / 2 in
      fun src dst -> mem src && dst < half
  | ToHolders b ->
      let obs = ctx.view.Sim.View.obs in
      fun src dst ->
        mem src && obs.(dst).Sim.View.core.candidate = Some b

(** Compile to an engine adversary. The compiled strategy clamps itself to
    the corruption budget and omits only at victim (hence faulty) edges, so
    every plan it emits is legal. *)
let compile ?(name = "strategy") t : Sim.Adversary_intf.t =
  {
    Sim.Adversary_intf.name;
    create =
      (fun cfg rand ->
        (* one mutable state per Strike occurrence, keyed by a preorder
           walk: rebuild the same keying every round *)
        let states : (int, strike_state) Hashtbl.t = Hashtbl.create 16 in
        let state_of key =
          match Hashtbl.find_opt states key with
          | Some s -> s
          | None ->
              let s = { victims = Hashtbl.create 8; fired = false } in
              Hashtbl.add states key s;
              s
        in
        fun view ->
          let ctx =
            {
              cfg;
              rand;
              view;
              budget = ref (cfg.Sim.Config.t_max - view.Sim.View.faults_used);
              newly = Hashtbl.create 8;
              faults = ref [];
              redo = false;
            }
          in
          let round = view.Sim.View.round in
          let preds = ref [] in
          (* Walk the term; [key] numbers Strike occurrences in preorder so
             each keeps its state across rounds. [active] says whether the
             current round falls inside the enclosing windows. *)
          let rec walk ctx key active = function
            | Idle -> key
            | Strike (tg, d) ->
                let st = state_of key in
                if active then begin
                  if ctx.redo || not st.fired then begin
                    st.fired <- true;
                    claim ctx st (eval_target ctx tg)
                  end;
                  if Hashtbl.length st.victims > 0 then
                    preds := drop_predicate ctx st d :: !preds
                end;
                key + 1
            | Seq l ->
                let len = List.length l in
                let active_idx = min (round - 1) (len - 1) in
                List.fold_left
                  (fun (i, key) sub ->
                    (i + 1, walk ctx key (active && i = active_idx) sub))
                  (0, key) l
                |> snd
            | From (r, b) -> walk ctx key (active && round >= r) b
            | Until (r, b) -> walk ctx key (active && round <= r) b
            | Both (a, b) ->
                let key = walk ctx key active a in
                walk ctx key active b
            | Again b -> walk { ctx with redo = true } key active b
          in
          ignore (walk ctx 0 true t);
          let preds = !preds in
          Sim.View.pointwise
            ~new_faults:(List.rev !(ctx.faults))
            ~omit:(fun src dst -> List.exists (fun p -> p src dst) preds));
  }
