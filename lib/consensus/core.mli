(** The voting core of OptimalOmissionsConsensus (Algorithm 1, lines 1-16),
    reusable over an arbitrary member set so that Algorithm 4 can run it
    inside each super-process.

    Each epoch = GroupBitsAggregation (Algorithm 2: ceil(log2 S) stages of
    the 3-round GroupRelay over the sqrt-decomposition, Figure 2) followed
    by GroupBitsSpreading (Algorithm 3: expander gossip of the per-group
    operative counts, Figure 1) and the biased-majority vote update
    (Figure 3). After the last epoch comes the line-14 decision-broadcast
    slot; {!finalize} consumes it (lines 15-16). *)

type counts = { ones : int; zeros : int }

val counts_zero : counts
val counts_add : counts -> counts -> counts

type msg =
  | Counts of { stage : int; bag : int; c : counts }
      (** GroupRelay round A: a source broadcasts its bag's counts *)
  | Confirm of { stage : int }  (** round B: transmitter acknowledgment *)
  | Result of { stage : int; left : counts option; right : counts option }
      (** round C: per-recipient relay of the children-bag counts *)
  | Spread_delta of (int * counts) list
      (** spreading gossip; [] is a heartbeat *)
  | Final of int  (** line-14 decision broadcast *)

type slot = Agg_a of int | Agg_b of int | Agg_c of int | Spread of int | Bcast

(** One vote-update record per operative process per epoch (the Figure 3
    bench trace). *)
type vote_event = {
  ev_pid : int;
  ev_epoch : int;
  ev_ones : int;
  ev_zeros : int;
  ev_rule : string;  (** "one" | "zero" | "coin", with "+decided" suffix *)
}

type shared = {
  members : int array;
  m : int;
  index_of : (int, int) Hashtbl.t;
  part : Groups.t;
  graph : Expander.t option;
  delta : int;
  op_threshold : int;
  stages : int;
  spread_rounds : int;
  epochs : int;
  epoch_len : int;
  schedule : slot array;
  vote_log : vote_event list ref option;
  contig : bool;
      (** member pids form a contiguous ascending range — whole-instance
          broadcasts then go out as one range entry *)
  final_broadcast : bool;
}

val make_shared :
  ?vote_log:vote_event list ref ->
  ?final_broadcast:bool ->
  members:int array ->
  seed:int ->
  params:Params.t ->
  t_max:int ->
  unit ->
  shared
(** Shared structures (partition, trees, Theorem-4 expander, schedule) — a
    pure function of (members, seed, params), hence identical at every
    process without communication. *)

val rounds : shared -> int
(** Schedule length: epochs * epoch_len + 1 (the broadcast slot). *)

type t

val create : shared -> pid:int -> input:int -> t
val candidate : t -> int

val set_candidate : t -> int -> unit
(** Override the candidate before stepping — Algorithm 4's sub-runs start
    from the value adopted in earlier round-robin phases. *)

val operative : t -> bool
val decided_flag : t -> bool
(** The line-12 safety flag. *)

val got_decision : t -> bool
(** Holds a line-14/15 decision after {!finalize}. *)

val step :
  t -> slot:int -> inbox:(int * msg) list -> rand:Sim.Rand.t -> (int * msg) list
(** Run local slot 1..[rounds]; mutates the state, returns messages
    addressed to global pids. A thin wrapper over {!step_into} — both
    engine paths run the same iterator-driven core. *)

val step_into :
  t ->
  slot:int ->
  iter:((int -> msg -> unit) -> unit) ->
  rand:Sim.Rand.t ->
  emit:(int -> msg -> unit) ->
  emit_all:(lo:int -> hi:int -> skip:int -> desc:bool -> msg -> unit) ->
  unit
(** Iterator core of {!step}: [iter f] must call [f src m] for every inbox
    message in delivery order (the buffered path iterates its mailbox
    directly — no intermediate list); outgoing messages go to [emit] in
    the exact order {!step} would list them. Full-group and full-instance
    broadcasts of one shared record go through [emit_all] (descending
    ranges, matching the legacy reverse-member wire order) whenever the
    relevant pid set is contiguous; {!step} realises them pointwise via
    {!Sim.Protocol_intf.emit_all_pointwise}. *)

val finalize : t -> inbox:(int * msg) list -> unit
(** Consume the broadcast slot's inbox (lines 15-16); call exactly once,
    on the round after the schedule ends. *)

val finalize_into : t -> iter:((int -> msg -> unit) -> unit) -> unit
(** Iterator core of {!finalize}; same [iter] contract as {!step_into}. *)

val line16_decision : t -> int option
(** The decision line 16 permits right after {!finalize}: the own value if
    the decided flag is armed, the adopted value for inoperative processes
    that received one, [None] for operative undecided processes (which must
    enter the deterministic fallback). *)

val msg_bits : shared -> msg -> int
val msg_hint : msg -> int option
