(** Dolev-Strong authenticated consensus — the paper's 40-year-old
    deterministic comparator ([15], Theorem 4): t+1 rounds of signed
    relaying, probability 1, against *any* t < n faults under
    authentication (simulated here by {!Auth}; see DESIGN.md).

    Every process acts as the designated sender of its own input in n
    parallel Dolev-Strong broadcasts. In round r, a relay message is
    accepted when it carries a valid chain of r distinct signatures
    starting at the origin; a newly accepted (origin, value) is co-signed
    and forwarded (at most two values per origin — a third changes
    nothing). After round t+1 every non-faulty process holds the same
    extracted value per origin (the classical chain argument: a chain of
    t+1 distinct signers contains a non-faulty one who relayed to all);
    the decision is the majority of extracted values.

    Complexities: t+2 rounds; O(n^2) messages per newly-accepted value
    giving the O(n * t) messages per broadcast, O(n^2 t) in total — the
    Theta(n) rounds / super-quadratic bits corner of Table 1 that
    Theorem 1 escapes. *)

type msg = Relay of { value : int; chain : Auth.signature list }

type state = {
  pid : int;
  n : int;
  t_max : int;
  (* values accepted per origin (at most 2 kept) *)
  accepted : (int, int list) Hashtbl.t;
  mutable to_relay : (int * Auth.signature list) list;  (** (value, chain) *)
  mutable decided : int option;
}

module M = struct
  type nonrec state = state
  type nonrec msg = msg

  let name = "dolev-strong"

  let init (cfg : Sim.Config.t) ~pid ~input =
    let st =
      {
        pid;
        n = cfg.n;
        t_max = cfg.t_max;
        accepted = Hashtbl.create 16;
        to_relay = [];
        decided = None;
      }
    in
    Hashtbl.replace st.accepted pid [ input ];
    st.to_relay <- [ (input, Auth.sign ~signer:pid ~payload:input ~chain:[]) ];
    st

  let accept st ~round ~value ~chain =
    match Auth.origin chain with
    | None -> ()
    | Some origin ->
        if
          Auth.valid_chain ~payload:value chain
          && Auth.length chain = round - 1
          && not (List.mem st.pid (List.map Auth.signer chain))
        then begin
          let known =
            match Hashtbl.find_opt st.accepted origin with
            | Some vs -> vs
            | None -> []
          in
          if (not (List.mem value known)) && List.length known < 2 then begin
            Hashtbl.replace st.accepted origin (value :: known);
            if round <= st.t_max + 1 then
              st.to_relay <-
                (value, Auth.sign ~signer:st.pid ~payload:value ~chain)
                :: st.to_relay
          end
        end

  let decide st =
    (* per origin: a uniquely-attested value counts; equivocation (never
       produced by omission faults) or silence contributes nothing *)
    let c = [| 0; 0 |] in
    Hashtbl.iter
      (fun _ vs -> match vs with [ v ] -> c.(v) <- c.(v) + 1 | _ -> ())
      st.accepted;
    st.decided <- Some (if c.(1) > c.(0) then 1 else 0)

  let step _cfg st ~round ~inbox ~rand:_ =
    List.iter
      (fun (_, Relay { value; chain }) -> accept st ~round ~value ~chain)
      inbox;
    if round > st.t_max + 1 then begin
      if st.decided = None then decide st;
      (st, [])
    end
    else begin
      let out = ref [] in
      List.iter
        (fun (value, chain) ->
          for dst = st.n - 1 downto 0 do
            if dst <> st.pid then
              out := (dst, Relay { value; chain }) :: !out
          done)
        st.to_relay;
      st.to_relay <- [];
      (st, !out)
    end

  let step_into _cfg st ~round ~inbox ~rand:_ ~emit:_ ~emit_all =
    Sim.Mailbox.iter inbox (fun _src (Relay { value; chain }) ->
        accept st ~round ~value ~chain);
    if round > st.t_max + 1 then begin
      if st.decided = None then decide st;
      st
    end
    else begin
      (* acceptance order ([to_relay] is consed), one broadcast entry per
         relayed chain — matches the list path's emission order exactly *)
      List.iter
        (fun (value, chain) ->
          emit_all ~lo:0 ~hi:(st.n - 1) ~skip:st.pid ~desc:false
            (Relay { value; chain }))
        (List.rev st.to_relay);
      st.to_relay <- [];
      st
    end

  let observe st =
    {
      Sim.View.candidate =
        (match Hashtbl.find_opt st.accepted st.pid with
        | Some [ v ] -> Some v
        | _ -> None);
      operative = true;
      decided = st.decided;
    }

  let msg_bits (Relay { chain; _ }) = 2 + Auth.bits chain
  let msg_hint (Relay { value; _ }) = Some value
end

let protocol (_cfg : Sim.Config.t) : Sim.Protocol_intf.t = (module M)

let protocol_buffered (_cfg : Sim.Config.t) : Sim.Protocol_intf.buffered =
  (module M)

let builder : Sim.Protocol_intf.builder =
  (module struct
    let name = "dolev-strong"
    let build = protocol
    let rounds_needed (cfg : Sim.Config.t) = cfg.t_max + 3
  end)
