(** Operative-partition reliable broadcast — the Section 6 "future
    directions" concept: a designated source disseminates its input bit
    over the Theorem-4 expander with the GroupBitsSpreading operative
    discipline. If the source stays operative, every operative process
    delivers within O(log n) rounds and O(n log^2 n) bits despite t
    adaptive omission faults; processes that hear nothing decide the
    default 0 at the timeout. *)

type state
type msg

val protocol :
  ?params:Params.t -> ?source:int -> Sim.Config.t -> Sim.Protocol_intf.t

val protocol_buffered :
  ?params:Params.t -> ?source:int -> Sim.Config.t -> Sim.Protocol_intf.buffered
(** The same protocol on the buffered engine path (shared iterator core —
    byte-identical to {!protocol} through the shim). *)

val builder : ?params:Params.t -> ?source:int -> unit -> Sim.Protocol_intf.builder
(** Registry constructor: id ["operative-broadcast"] (default source 0);
    schedule bound [2 log2_ceil n + 3]. *)
