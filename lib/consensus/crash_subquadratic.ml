(** Subquadratic-communication consensus for the *crash* model — the
    Appendix B.3 comparison point (Hajiaghayi et al., STOC'22, use
    Õ(n^{3/2}) bits against crashes; Dolev-Reischuk / Abraham et al. show
    omissions force Ω(n^2)).

    The protocol is Algorithm 1's voting {!Core} with the one
    super-quadratic step removed: instead of the line-14 all-to-all
    decision broadcast (Θ(n^2) bits), decided processes disseminate the
    value by expander gossip in O(log n) rounds and O(n log^2 n) bits,
    followed by a neighbor help/reply exchange for stragglers. Against
    crashes this is safe — a crashed process is silent toward *everyone*,
    so it cannot do what the paper's B.3 discussion warns omission faults
    can: feed the doubling/gossip machinery selectively. Against omission
    faults this protocol makes no claims; the benches run it under crash
    adversaries only and measure the communication separation.

    Typical-run bits: Õ(n^{3/2}) from the epochs + Õ(n log^2 n)
    dissemination. The deterministic fallback (phase-king, Θ(n^2 t)) runs
    with polynomially small probability, exactly as in Algorithm 1. Both
    engine paths share one iterator-driven [step_core], so they are
    byte-identical by construction. *)

type msg =
  | Core_msg of Core.msg
  | Gossip of int  (** disseminated decision *)
  | Help  (** straggler request *)
  | Pk_msg of Phase_king.msg
  | Decided of int

type phase =
  | Voting
  | Gossiping
  | Fallback of Phase_king.t
  | Waiting
  | Done of int

type state = {
  pid : int;
  core : Core.t;
  mutable phase : phase;
  mutable value : int option;  (** disseminated decision, once known *)
  sent_gossip_to : (int, unit) Hashtbl.t;
  mutable pending_replies : int list;  (** Help senders to answer *)
  mutable broadcast_help : bool;  (** last-resort full Help already sent *)
}

let iter_empty _f = ()

let make ?(params = Params.default) (cfg : Sim.Config.t) =
  let n = cfg.Sim.Config.n in
  let t_max = cfg.Sim.Config.t_max in
  let members = Array.init n (fun i -> i) in
  let shared =
    Core.make_shared ~final_broadcast:false ~members ~seed:cfg.Sim.Config.seed
      ~params ~t_max ()
  in
  let core_rounds = Core.rounds shared in
  let gossip_rounds = 2 * Params.log2_ceil n in
  let help_rounds = 2 * Params.log2_ceil n in
  let pk_rounds = Phase_king.rounds ~t_max in
  let decision_round = core_rounds + gossip_rounds + 1 in
  let graph =
    match shared.Core.graph with
    | Some g -> g
    | None -> invalid_arg "Crash_subquadratic.protocol: n must be >= 2"
  in
  let module M = struct
    type nonrec state = state
    type nonrec msg = msg

    let name = "crash-subquadratic"

    let init _cfg ~pid ~input =
      {
        pid;
        core = Core.create shared ~pid ~input;
        phase = Voting;
        value = None;
        sent_gossip_to = Hashtbl.create 16;
        pending_replies = [];
        broadcast_help = false;
      }

    (* Filtered views of the whole-inbox iterator: filtering happens
       during iteration, so the buffered path never materializes a list. *)
    let core_iter iter f =
      iter (fun src m ->
          match m with
          | Core_msg cm -> f src cm
          | Gossip _ | Help | Pk_msg _ | Decided _ -> ())

    let pk_iter iter f =
      iter (fun src m ->
          match m with
          | Pk_msg pm -> f src pm
          | Core_msg _ | Gossip _ | Help | Decided _ -> ())

    (* Adopt gossiped/decided values and collect Help requests, at any
       point of the run. *)
    let absorb st ~iter =
      iter (fun src m ->
          match m with
          | Gossip v | Decided v -> if st.value = None then st.value <- Some v
          | Help -> st.pending_replies <- src :: st.pending_replies
          | Core_msg _ | Pk_msg _ -> ())

    let emit_replies st ~emit =
      (match st.value with
      | None -> ()
      | Some v ->
          (* pending_replies holds Help senders newest-first — the order
             the old list path answered them in; one shared reply record *)
          let reply = Decided v in
          List.iter (fun dst -> emit dst reply) st.pending_replies);
      st.pending_replies <- []

    (* Crash model: no heartbeats needed — silence is unambiguous — so the
       gossip sends only the value, once per link: O(n Delta) messages in
       total instead of the omission model's quadratic broadcast. The
       neighbor array is walked backwards to keep the old fold-left-consed
       wire order; the once-per-link bookkeeping is per-neighbor, so the
       direction does not change what is sent. *)
    let gossip_emission_into st ~emit =
      match st.value with
      | None -> ()
      | Some v ->
          let gm = Gossip v in
          let nb = Expander.neighbors graph st.pid in
          for i = Array.length nb - 1 downto 0 do
            let q = nb.(i) in
            if not (Hashtbl.mem st.sent_gossip_to q) then begin
              Hashtbl.replace st.sent_gossip_to q ();
              emit q gm
            end
          done

    let broadcast_into st m ~emit_all =
      emit_all ~lo:0 ~hi:(n - 1) ~skip:st.pid ~desc:false m

    (* The whole state machine, once, for both engine paths. Replies to
       Help requests go out first, exactly as the old list path's
       [replies @ out]. *)
    let step_core st ~round ~iter ~rand ~emit ~emit_all =
      let emit_all_pk ~lo ~hi ~skip ~desc m =
        emit_all ~lo ~hi ~skip ~desc (Pk_msg m)
      in
      absorb st ~iter;
      emit_replies st ~emit;
      (match st.phase with
      | Done _ -> ()
      | Voting when round <= core_rounds ->
          Core.step_into st.core ~slot:round ~iter:(core_iter iter) ~rand
            ~emit:(fun dst m -> emit dst (Core_msg m))
            ~emit_all:(fun ~lo ~hi ~skip ~desc m ->
              emit_all ~lo ~hi ~skip ~desc (Core_msg m))
      | Voting ->
          (* round = core_rounds + 1: close the voting, start gossiping *)
          Core.finalize_into st.core ~iter:iter_empty;
          if Core.decided_flag st.core && st.value = None then
            st.value <- Some (Core.candidate st.core);
          st.phase <- Gossiping;
          gossip_emission_into st ~emit
      | Gossiping when round < decision_round -> gossip_emission_into st ~emit
      | Gossiping -> (
          (* decision point *)
          match st.value with
          | Some v -> st.phase <- Done v
          | None ->
              if Core.operative st.core then begin
                let pk =
                  Phase_king.create ~n ~t_max ~pid:st.pid ~participating:true
                    ~input:(Core.candidate st.core)
                in
                Phase_king.step_into pk ~local_round:1 ~iter:iter_empty
                  ~emit_all:emit_all_pk;
                st.phase <- Fallback pk
              end
              else st.phase <- Waiting)
      | Fallback pk ->
          let local_round = round - decision_round in
          if local_round <= pk_rounds - 1 then
            Phase_king.step_into pk ~local_round:(local_round + 1)
              ~iter:(pk_iter iter) ~emit_all:emit_all_pk
          else begin
            let pk = Phase_king.finalize_into pk ~iter:(pk_iter iter) in
            match Phase_king.decision pk with
            | Some v ->
                st.value <- Some v;
                st.phase <- Done v;
                broadcast_into st (Decided v) ~emit_all
            | None ->
                (* terminal hand-off: the help/reply exchange recovers the
                   value — a decided process always exists in-model *)
                st.phase <- Waiting
          end
      | Waiting -> (
          match st.value with
          | Some v -> st.phase <- Done v
          | None ->
              (* straggler: ask the neighborhood, then once everyone *)
              if round <= decision_round + help_rounds then begin
                let nb = Expander.neighbors graph st.pid in
                for i = Array.length nb - 1 downto 0 do
                  emit nb.(i) Help
                done
              end
              else if not st.broadcast_help then begin
                st.broadcast_help <- true;
                broadcast_into st Help ~emit_all
              end));
      (* a decided process keeps answering Help requests *)
      match st.phase with
      | Done v when st.value = None -> st.value <- Some v
      | _ -> ()

    let step _cfg st ~round ~inbox ~rand =
      let out = ref [] in
      let emit dst m = out := (dst, m) :: !out in
      step_core st ~round
        ~iter:(fun f -> List.iter (fun (src, m) -> f src m) inbox)
        ~rand ~emit
        ~emit_all:(Sim.Protocol_intf.emit_all_pointwise emit);
      (st, List.rev !out)

    let step_into _cfg st ~round ~inbox ~rand ~emit ~emit_all =
      step_core st ~round ~iter:(fun f -> Sim.Mailbox.iter inbox f) ~rand
        ~emit ~emit_all;
      st

    let observe st =
      {
        Sim.View.candidate = Some (Core.candidate st.core);
        operative = Core.operative st.core;
        decided = (match st.phase with Done v -> Some v | _ -> None);
      }

    let msg_bits = function
      | Core_msg m -> Core.msg_bits shared m
      | Gossip _ | Decided _ -> 2
      | Help -> 1
      | Pk_msg m -> Phase_king.msg_bits m

    let msg_hint = function
      | Core_msg m -> Core.msg_hint m
      | Gossip v | Decided v -> Some v
      | Pk_msg (Phase_king.Value v) | Pk_msg (Phase_king.King v) -> Some v
      | Help -> None
  end in
  ((module M : Sim.Protocol_intf.S), (module M : Sim.Protocol_intf.BUFFERED))

let protocol ?params (cfg : Sim.Config.t) : Sim.Protocol_intf.t =
  fst (make ?params cfg)

let protocol_buffered ?params (cfg : Sim.Config.t) :
    Sim.Protocol_intf.buffered =
  snd (make ?params cfg)

let rounds_needed ?(params = Params.default) (cfg : Sim.Config.t) =
  let members = Array.init cfg.Sim.Config.n (fun i -> i) in
  let shared =
    Core.make_shared ~final_broadcast:false ~members ~seed:cfg.Sim.Config.seed
      ~params ~t_max:cfg.Sim.Config.t_max ()
  in
  Core.rounds shared
  + (4 * Params.log2_ceil cfg.Sim.Config.n)
  + Phase_king.rounds ~t_max:cfg.Sim.Config.t_max
  + 8

let builder ?params () : Sim.Protocol_intf.builder =
  (module struct
    let name = "crash-sub"
    let build cfg = protocol ?params cfg
    let rounds_needed cfg = rounds_needed ?params cfg + 10
  end)
