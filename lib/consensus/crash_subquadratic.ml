(** Subquadratic-communication consensus for the *crash* model — the
    Appendix B.3 comparison point (Hajiaghayi et al., STOC'22, use
    Õ(n^{3/2}) bits against crashes; Dolev-Reischuk / Abraham et al. show
    omissions force Ω(n^2)).

    The protocol is Algorithm 1's voting {!Core} with the one
    super-quadratic step removed: instead of the line-14 all-to-all
    decision broadcast (Θ(n^2) bits), decided processes disseminate the
    value by expander gossip in O(log n) rounds and O(n log^2 n) bits,
    followed by a neighbor help/reply exchange for stragglers. Against
    crashes this is safe — a crashed process is silent toward *everyone*,
    so it cannot do what the paper's B.3 discussion warns omission faults
    can: feed the doubling/gossip machinery selectively. Against omission
    faults this protocol makes no claims; the benches run it under crash
    adversaries only and measure the communication separation.

    Typical-run bits: Õ(n^{3/2}) from the epochs + Õ(n log^2 n)
    dissemination. The deterministic fallback (phase-king, Θ(n^2 t)) runs
    with polynomially small probability, exactly as in Algorithm 1. *)

type msg =
  | Core_msg of Core.msg
  | Gossip of int  (** disseminated decision *)
  | Help  (** straggler request *)
  | Pk_msg of Phase_king.msg
  | Decided of int

type phase =
  | Voting
  | Gossiping
  | Fallback of Phase_king.t
  | Waiting
  | Done of int

type state = {
  pid : int;
  core : Core.t;
  mutable phase : phase;
  mutable value : int option;  (** disseminated decision, once known *)
  sent_gossip_to : (int, unit) Hashtbl.t;
  mutable pending_replies : int list;  (** Help senders to answer *)
  mutable broadcast_help : bool;  (** last-resort full Help already sent *)
}

let protocol ?(params = Params.default) (cfg : Sim.Config.t) :
    Sim.Protocol_intf.t =
  let n = cfg.Sim.Config.n in
  let t_max = cfg.Sim.Config.t_max in
  let members = Array.init n (fun i -> i) in
  let shared =
    Core.make_shared ~final_broadcast:false ~members ~seed:cfg.Sim.Config.seed
      ~params ~t_max ()
  in
  let core_rounds = Core.rounds shared in
  let gossip_rounds = 2 * Params.log2_ceil n in
  let help_rounds = 2 * Params.log2_ceil n in
  let pk_rounds = Phase_king.rounds ~t_max in
  let decision_round = core_rounds + gossip_rounds + 1 in
  let graph =
    match shared.Core.graph with
    | Some g -> g
    | None -> invalid_arg "Crash_subquadratic.protocol: n must be >= 2"
  in
  let module M = struct
    type nonrec state = state
    type nonrec msg = msg

    let name = "crash-subquadratic"

    let init _cfg ~pid ~input =
      {
        pid;
        core = Core.create shared ~pid ~input;
        phase = Voting;
        value = None;
        sent_gossip_to = Hashtbl.create 16;
        pending_replies = [];
        broadcast_help = false;
      }

    let core_inbox inbox =
      List.filter_map
        (fun (src, m) -> match m with Core_msg cm -> Some (src, cm) | _ -> None)
        inbox

    let pk_inbox inbox =
      List.filter_map
        (fun (src, m) -> match m with Pk_msg pm -> Some (src, pm) | _ -> None)
        inbox

    (* Adopt gossiped/decided values and collect Help requests, at any
       point of the run. *)
    let absorb st ~inbox =
      List.iter
        (fun (src, m) ->
          match m with
          | Gossip v | Decided v ->
              if st.value = None then st.value <- Some v
          | Help -> st.pending_replies <- src :: st.pending_replies
          | Core_msg _ | Pk_msg _ -> ())
        inbox

    let replies st =
      match st.value with
      | None ->
          st.pending_replies <- [];
          []
      | Some v ->
          let out = List.map (fun dst -> (dst, Decided v)) st.pending_replies in
          st.pending_replies <- [];
          out

    (* Crash model: no heartbeats needed — silence is unambiguous — so the
       gossip sends only the value, once per link: O(n Delta) messages in
       total instead of the omission model's quadratic broadcast. *)
    let gossip_emission st =
      match st.value with
      | None -> []
      | Some v ->
          Array.fold_left
            (fun acc q ->
              if Hashtbl.mem st.sent_gossip_to q then acc
              else begin
                Hashtbl.replace st.sent_gossip_to q ();
                (q, Gossip v) :: acc
              end)
            []
            (Expander.neighbors graph st.pid)

    let broadcast st m =
      let out = ref [] in
      for dst = n - 1 downto 0 do
        if dst <> st.pid then out := (dst, m) :: !out
      done;
      !out

    let step _cfg st ~round ~inbox ~rand =
      absorb st ~inbox;
      let replies = replies st in
      let st, out =
        match st.phase with
        | Done _ -> (st, [])
        | Voting when round <= core_rounds ->
            let msgs =
              Core.step st.core ~slot:round ~inbox:(core_inbox inbox) ~rand
            in
            (st, List.map (fun (dst, m) -> (dst, Core_msg m)) msgs)
        | Voting ->
            (* round = core_rounds + 1: close the voting, start gossiping *)
            Core.finalize st.core ~inbox:[];
            if Core.decided_flag st.core && st.value = None then
              st.value <- Some (Core.candidate st.core);
            st.phase <- Gossiping;
            (st, gossip_emission st)
        | Gossiping when round < decision_round -> (st, gossip_emission st)
        | Gossiping -> (
            (* decision point *)
            match st.value with
            | Some v ->
                st.phase <- Done v;
                (st, [])
            | None ->
                if Core.operative st.core then begin
                  let pk =
                    Phase_king.create ~n ~t_max ~pid:st.pid
                      ~participating:true ~input:(Core.candidate st.core)
                  in
                  let pk, out = Phase_king.step pk ~local_round:1 ~inbox:[] in
                  st.phase <- Fallback pk;
                  (st, List.map (fun (dst, m) -> (dst, Pk_msg m)) out)
                end
                else begin
                  st.phase <- Waiting;
                  (st, [])
                end)
        | Fallback pk ->
            let local_round = round - decision_round in
            if local_round <= pk_rounds - 1 then begin
              let pk, out =
                Phase_king.step pk ~local_round:(local_round + 1)
                  ~inbox:(pk_inbox inbox)
              in
              st.phase <- Fallback pk;
              (st, List.map (fun (dst, m) -> (dst, Pk_msg m)) out)
            end
            else begin
              let pk = Phase_king.finalize pk ~inbox:(pk_inbox inbox) in
              match Phase_king.decision pk with
              | Some v ->
                  st.value <- Some v;
                  st.phase <- Done v;
                  (st, broadcast st (Decided v))
              | None ->
                  st.phase <- Waiting;
                  (st, [])
            end
        | Waiting -> (
            match st.value with
            | Some v ->
                st.phase <- Done v;
                (st, [])
            | None ->
                (* straggler: ask the neighborhood, then once everyone *)
                if round <= decision_round + help_rounds then
                  ( st,
                    Array.fold_left
                      (fun acc q -> (q, Help) :: acc)
                      []
                      (Expander.neighbors graph st.pid) )
                else if not st.broadcast_help then begin
                  st.broadcast_help <- true;
                  (st, broadcast st Help)
                end
                else (st, []))
      in
      (* a decided process keeps answering Help requests *)
      (match st.phase with
      | Done v when st.value = None -> st.value <- Some v
      | _ -> ());
      (st, replies @ out)

    let observe st =
      {
        Sim.View.candidate = Some (Core.candidate st.core);
        operative = Core.operative st.core;
        decided = (match st.phase with Done v -> Some v | _ -> None);
      }

    let msg_bits = function
      | Core_msg m -> Core.msg_bits shared m
      | Gossip _ | Decided _ -> 2
      | Help -> 1
      | Pk_msg m -> Phase_king.msg_bits m

    let msg_hint = function
      | Core_msg m -> Core.msg_hint m
      | Gossip v | Decided v -> Some v
      | Pk_msg (Phase_king.Value v) | Pk_msg (Phase_king.King v) -> Some v
      | Help -> None
  end in
  (module M)

let rounds_needed ?(params = Params.default) (cfg : Sim.Config.t) =
  let members = Array.init cfg.Sim.Config.n (fun i -> i) in
  let shared =
    Core.make_shared ~final_broadcast:false ~members ~seed:cfg.Sim.Config.seed
      ~params ~t_max:cfg.Sim.Config.t_max ()
  in
  Core.rounds shared
  + (4 * Params.log2_ceil cfg.Sim.Config.n)
  + Phase_king.rounds ~t_max:cfg.Sim.Config.t_max
  + 8

let builder ?params () : Sim.Protocol_intf.builder =
  (module struct
    let name = "crash-sub"
    let build cfg = protocol ?params cfg
    let rounds_needed cfg = rounds_needed ?params cfg + 10
  end)
