(** ParamOmissions — Algorithm 4 (Theorem 3 / Theorem 8): the randomness /
    time trade-off. x super-processes of size ceil(n/x) run the truncated
    voting {!Core} in round-robin phases; decisions are flooded over the
    global expander and adopted as inputs for later phases; the safety rule
    of lines 15-30 (one counting exchange + decision broadcast + phase-king
    residue) lifts whp-agreement to probability 1.

    With T ~ sqrt(n x) rounds the sub-runs spend ~n^2/T random bits —
    Table 1, row Thm 3. *)

type state
type msg

val protocol : ?params:Params.t -> x:int -> Sim.Config.t -> Sim.Protocol_intf.t
(** [x] is the super-process count, clamped to what the partition allows. *)

val protocol_buffered :
  ?params:Params.t -> x:int -> Sim.Config.t -> Sim.Protocol_intf.buffered
(** The same protocol on the buffered engine path (shared iterator core —
    byte-identical to {!protocol} through the shim). *)

val rounds_needed : ?params:Params.t -> x:int -> Sim.Config.t -> int
(** Total schedule length, for sizing [Config.max_rounds]. *)

val builder : ?params:Params.t -> x:int -> unit -> Sim.Protocol_intf.builder
(** Registry constructor: id ["param-x<x>"]; schedule bound
    [rounds_needed + 10]. *)
