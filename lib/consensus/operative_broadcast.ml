(** Operative-partition reliable broadcast — the Section 6 "future
    directions" concept, implemented: *"the concept of operative processes,
    maintaining them locally at (relatively) low cost and using them for
    performing tasks such as efficient counting and information exchange,
    could be a game-changing concept"*.

    A designated source disseminates its input bit over the Theorem-4
    expander with the same operative-status discipline as
    GroupBitsSpreading: delta-gossip per link, heartbeats, permanent
    disregarding of silent neighbors, inoperative below Delta/3 received.
    Guarantee (from Lemmas 4-6): as long as the source stays operative,
    every operative process delivers within O(log n) rounds using
    O(n log^2 n) bits — against Theta(n^2) for naive broadcast and
    Theta(n^2 t) for authenticated broadcast, while still tolerating t
    adaptive omission faults.

    To fit the engine's decision interface: processes decide the delivered
    value; a process that heard nothing by the timeout decides the default
    0 (the source was faulty). If the source is non-faulty, the run is a
    consensus on its input. *)

type msg = Gossip of int  (** the source's value *) | Heartbeat

type state = {
  pid : int;
  source : int;
  rounds : int;
  graph : Expander.t;
  op_threshold : int;
  mutable value : int option;
  mutable operative : bool;
  sent_value_to : (int, unit) Hashtbl.t;
  disregarded : (int, unit) Hashtbl.t;
  mutable decided : int option;
}

let make ?(params = Params.default) ?(source = 0) (cfg : Sim.Config.t) =
  let n = cfg.Sim.Config.n in
  let delta = Params.delta params ~n in
  let graph =
    Expander.create_good ~attempts:params.Params.graph_attempts ~n ~delta
      ~seed:(Int64.of_int (cfg.Sim.Config.seed + 0xB0B)) ()
  in
  let rounds = 2 * Params.log2_ceil n in
  let module M = struct
    type nonrec state = state
    type nonrec msg = msg

    let name = Printf.sprintf "operative-broadcast(src=%d)" source

    let init _cfg ~pid ~input =
      {
        pid;
        source;
        rounds;
        graph;
        op_threshold = Expander.delta graph / 3;
        value = (if pid = source then Some input else None);
        operative = true;
        sent_value_to = Hashtbl.create 16;
        disregarded = Hashtbl.create 8;
        decided = None;
      }

    let receive st ~iter =
      let received = Hashtbl.create 16 in
      iter (fun src m ->
          if
            Expander.mem_edge st.graph st.pid src
            && not (Hashtbl.mem st.disregarded src)
          then begin
            Hashtbl.replace received src ();
            match m with
            | Gossip v -> if st.value = None then st.value <- Some v
            | Heartbeat -> ()
          end);
      Array.iter
        (fun q ->
          if
            (not (Hashtbl.mem st.disregarded q))
            && not (Hashtbl.mem received q)
          then Hashtbl.replace st.disregarded q ())
        (Expander.neighbors st.graph st.pid);
      if Hashtbl.length received < st.op_threshold then st.operative <- false

    (* Shared per-round logic for both engine paths. The neighbor array is
       walked backwards to keep the old consed wire order; the
       once-per-link bookkeeping is per-neighbor, so the direction does
       not change what each neighbor receives. *)
    let step_core st ~round ~iter ~emit =
      if round > 1 then receive st ~iter;
      if round > st.rounds then begin
        if st.decided = None then
          st.decided <- Some (match st.value with Some v -> v | None -> 0)
      end
      else if st.operative then begin
        (* one shared Gossip record for every first-time link this round *)
        let gm = match st.value with Some v -> Gossip v | None -> Heartbeat in
        let nb = Expander.neighbors st.graph st.pid in
        for i = Array.length nb - 1 downto 0 do
          let q = nb.(i) in
          if not (Hashtbl.mem st.disregarded q) then begin
            match st.value with
            | Some _ when not (Hashtbl.mem st.sent_value_to q) ->
                Hashtbl.replace st.sent_value_to q ();
                emit q gm
            | Some _ | None -> emit q Heartbeat
          end
        done
      end

    let step _cfg st ~round ~inbox ~rand:_ =
      let out = ref [] in
      step_core st ~round
        ~iter:(fun f -> List.iter (fun (src, m) -> f src m) inbox)
        ~emit:(fun dst m -> out := (dst, m) :: !out);
      (st, List.rev !out)

    let step_into _cfg st ~round ~inbox ~rand:_ ~emit ~emit_all:_ =
      step_core st ~round ~iter:(fun f -> Sim.Mailbox.iter inbox f) ~emit;
      st

    let observe st =
      {
        Sim.View.candidate = st.value;
        operative = st.operative;
        decided = st.decided;
      }

    let msg_bits = function Gossip _ -> 2 | Heartbeat -> 1
    let msg_hint = function Gossip v -> Some v | Heartbeat -> None
  end in
  ((module M : Sim.Protocol_intf.S), (module M : Sim.Protocol_intf.BUFFERED))

let protocol ?params ?source (cfg : Sim.Config.t) : Sim.Protocol_intf.t =
  fst (make ?params ?source cfg)

let protocol_buffered ?params ?source (cfg : Sim.Config.t) :
    Sim.Protocol_intf.buffered =
  snd (make ?params ?source cfg)

let builder ?params ?(source = 0) () : Sim.Protocol_intf.builder =
  (module struct
    let name = "operative-broadcast"
    let build cfg = protocol ?params ~source cfg
    let rounds_needed (cfg : Sim.Config.t) = (2 * Params.log2_ceil cfg.n) + 3
  end)
