(** ParamOmissions — Algorithm 4 of the paper (Theorem 3 / Theorem 8): the
    randomness-for-time trade-off.

    The n processes are split into x super-processes SP_1..SP_x of size
    ceil(n/x). In x round-robin phases, the members of SP_i run the
    truncated voting {!Core} (OptimalOmissionsConsensus up to line 16) among
    themselves; a member that obtained a decision floods it for
    2 ceil(log2 n) rounds over the global expander; every operative process
    that receives a flooded decision adopts it as its input for all later
    phases. A run on a *reliable* super-process (at most 1/30 of its members
    faulty, at least one member operative) pins the whole operative set to
    one value, after which no later sub-run can diverge (validity of the
    core). The safety rule of lines 15-30 — one counting exchange with the
    18/30 / 15/30 / 27/30 / 3/30 thresholds, then a decision broadcast —
    turns that whp-agreement into probability-1 agreement, falling back to
    the deterministic {!Phase_king} in the polynomially-unlikely residue.

    The phase-king residue (a fallback participant that heard nothing —
    only an eclipsed faulty process in-model) is resolved one round after
    the fallback finalize: adopt the first [Decided] broadcast, otherwise
    self-decide the phase-king working value. Without that step an
    undecided participant would never terminate, since the safety-rule
    deciders of line 26 broadcast nothing further.

    Randomness: only the sub-runs flip coins — x runs of size n/x cost
    ~x (n/x)^{3/2} = n^2 / T random bits at T ~ sqrt(n x) rounds, the
    trade-off curve of Table 1, row Thm 3. *)

type msg =
  | Sub of int * Core.msg  (** phase index, sub-run message *)
  | Flood of int option  (** flooded consensus decision; None = heartbeat *)
  | Safety_vote of int
  | Safety_final of int
  | Pk_msg of Phase_king.msg
  | Decided of int

type state = {
  pid : int;
  my_phase : int;  (** index of the super-process containing [pid] *)
  core : Core.t;  (** sub-run instance, stepped only during [my_phase] *)
  mutable consensus_decision : int option;
  mutable b : int;
  mutable operative : bool;
  disregarded : (int, unit) Hashtbl.t;
  mutable decided_flag : bool;
  mutable got_final : bool;
  mutable pk : Phase_king.t option;
  mutable decision : int option;
}

let log2_ceil = Params.log2_ceil

type plan = {
  x : int;
  sub_shared : Core.shared array;
  core_len : int array;
  phase_core_len : int;
  flood_rounds : int;
  phase_len : int;
  graph : Expander.t;
  op_threshold : int;
  pk_rounds : int;
  safety_start : int;  (** global round of the safety-vote emission *)
  sps : Groups.t;
}

let make_plan ~params (cfg : Sim.Config.t) ~x =
  let n = cfg.Sim.Config.n in
  let members = Array.init n (fun i -> i) in
  let sps = Groups.partition_into members x in
  let x = Groups.group_count sps in
  let sub_shared =
    Array.init x (fun i ->
        let sp = Groups.group sps i in
        Core.make_shared ~members:sp
          ~seed:(cfg.Sim.Config.seed + (1000003 * (i + 1)))
          ~params
          ~t_max:(max 1 (Array.length sp / 30))
          ())
  in
  let core_len = Array.map Core.rounds sub_shared in
  let phase_core_len = Array.fold_left max 0 core_len in
  let flood_rounds = 2 * log2_ceil n in
  let phase_len = phase_core_len + flood_rounds in
  let delta = Params.delta params ~n in
  let graph =
    Expander.create_good ~attempts:params.Params.graph_attempts ~n ~delta
      ~seed:(Int64.of_int (cfg.Sim.Config.seed + 0xF100D)) ()
  in
  {
    x;
    sub_shared;
    core_len;
    phase_core_len;
    flood_rounds;
    phase_len;
    graph;
    op_threshold = Expander.delta graph / 3;
    pk_rounds = Phase_king.rounds ~t_max:cfg.Sim.Config.t_max;
    safety_start = (x * phase_len) + 1;
    sps;
  }

let iter_empty _f = ()

let make ?(params = Params.default) ~x (cfg : Sim.Config.t) =
  let p = make_plan ~params cfg ~x in
  let n = cfg.Sim.Config.n in
  let module M = struct
    type nonrec state = state
    type nonrec msg = msg

    let name = Printf.sprintf "param-omissions(x=%d)" p.x

    let init _cfg ~pid ~input =
      let my_phase = Groups.group_of p.sps pid in
      {
        pid;
        my_phase;
        core = Core.create p.sub_shared.(my_phase) ~pid ~input;
        consensus_decision = None;
        b = input;
        operative = true;
        disregarded = Hashtbl.create 8;
        decided_flag = false;
        got_final = false;
        pk = None;
        decision = None;
      }

    let broadcast_into st m ~emit_all =
      emit_all ~lo:0 ~hi:(n - 1) ~skip:st.pid ~desc:false m

    (* Filtered views of the whole-inbox iterator: filtering happens
       during iteration, so the buffered path never materializes a list. *)
    let sub_iter ~phase iter f =
      iter (fun src m ->
          match m with
          | Sub (i, cm) when i = phase -> f src cm
          | Sub _ | Flood _ | Safety_vote _ | Safety_final _ | Pk_msg _
          | Decided _ ->
              ())

    let pk_iter iter f =
      iter (fun src m ->
          match m with
          | Pk_msg pm -> f src pm
          | Sub _ | Flood _ | Safety_vote _ | Safety_final _ | Decided _ -> ())

    (* Flood-round inbox processing: adopt the first flooded decision,
       disregard silent neighbors, drop to inoperative below Delta/3
       (lines 9-12 of Algorithm 4). *)
    let process_flood st ~iter =
      if st.operative then begin
        let received = Hashtbl.create 16 in
        iter (fun src m ->
            match m with
            | Flood d ->
                if
                  Expander.mem_edge p.graph st.pid src
                  && not (Hashtbl.mem st.disregarded src)
                then begin
                  Hashtbl.replace received src ();
                  match (st.consensus_decision, d) with
                  | None, Some v -> st.consensus_decision <- Some v
                  | _ -> ()
                end
            | Sub _ | Safety_vote _ | Safety_final _ | Pk_msg _ | Decided _
              ->
                ());
        Array.iter
          (fun q ->
            if
              (not (Hashtbl.mem st.disregarded q))
              && not (Hashtbl.mem received q)
            then Hashtbl.replace st.disregarded q ())
          (Expander.neighbors p.graph st.pid);
        if Hashtbl.length received < p.op_threshold then
          st.operative <- false
      end

    (* The neighbor array is walked backwards to keep the old fold-consed
       wire order; the disregarded test is per-neighbor, so the direction
       does not change what each neighbor receives. One shared record. *)
    let flood_emission_into st ~emit =
      if st.operative then begin
        let fm = Flood st.consensus_decision in
        let nb = Expander.neighbors p.graph st.pid in
        for i = Array.length nb - 1 downto 0 do
          let q = nb.(i) in
          if not (Hashtbl.mem st.disregarded q) then emit q fm
        done
      end

    (* Line 13: adopt the flooded decision as the candidate for the next
       phase; reset the per-phase flood slate. *)
    let end_of_phase st =
      (match st.consensus_decision with
      | Some v -> st.b <- v
      | None -> ());
      st.consensus_decision <- None

    (* Truncated sub-run finalize (the paper's "terminated at line 16"):
       keep the value only if the sub-run actually produced a decision. *)
    let finalize_sub st ~iter =
      Core.finalize_into st.core ~iter:(sub_iter ~phase:st.my_phase iter);
      if Core.decided_flag st.core || Core.got_decision st.core then begin
        st.b <- Core.candidate st.core;
        st.consensus_decision <- Some st.b
      end
      else st.consensus_decision <- None

    (* Lines 18-22: one all-to-all counting exchange with the Algorithm 1
       thresholds, deterministic in the middle window. *)
    let process_safety_votes st ~iter =
      if st.operative then begin
        let c = [| 0; 0 |] in
        c.(st.b) <- 1;
        iter (fun _src m ->
            match m with
            | Safety_vote v -> c.(v) <- c.(v) + 1
            | Sub _ | Flood _ | Safety_final _ | Pk_msg _ | Decided _ -> ());
        st.b <- Voting.update_deterministic ~ones:c.(1) ~zeros:c.(0) ~current:st.b;
        if Voting.ready ~ones:c.(1) ~zeros:c.(0) then st.decided_flag <- true
      end

    let process_safety_final st ~iter =
      if not (st.operative && st.decided_flag) then begin
        let adopted = ref None in
        iter (fun _src m ->
            match m with
            | Safety_final v when !adopted = None -> adopted := Some v
            | Safety_final _ | Sub _ | Flood _ | Safety_vote _ | Pk_msg _
            | Decided _ ->
                ());
        match !adopted with
        | Some v ->
            st.b <- v;
            st.got_final <- true
        | None -> ()
      end
      else st.got_final <- true

    let adopt_decided st ~iter =
      iter (fun _src m ->
          match m with
          | Decided v when st.decision = None -> st.decision <- Some v
          | Decided _ | Sub _ | Flood _ | Safety_vote _ | Safety_final _
          | Pk_msg _ ->
              ())

    (* The whole state machine, once, for both engine paths. *)
    let step_core st ~round ~iter ~rand ~emit ~emit_all =
      let emit_all_pk ~lo ~hi ~skip ~desc m =
        emit_all ~lo ~hi ~skip ~desc (Pk_msg m)
      in
      if st.decision <> None then ()
      else if round < p.safety_start then begin
        (* round-robin stage: phase-local slots 1..phase_len; the core runs
           in slots 1..core_len for the phase's super-process, flooding in
           the last flood_rounds slots *)
        let phase = (round - 1) / p.phase_len in
        let ls = round - (phase * p.phase_len) in
        let in_my_phase = phase = st.my_phase && st.operative in
        let cl = p.core_len.(st.my_phase) in
        (* entry processing (consume slot ls-1's messages) *)
        if ls = 1 then begin
          if phase > 0 then begin
            process_flood st ~iter;
            end_of_phase st
          end;
          (* sub-runs start from the value adopted in earlier phases *)
          if in_my_phase then Core.set_candidate st.core st.b
        end
        else if in_my_phase && ls = cl + 1 then finalize_sub st ~iter
        else if ls > p.phase_core_len + 1 then process_flood st ~iter;
        (* emission *)
        if in_my_phase && ls <= cl then
          Core.step_into st.core ~slot:ls ~iter:(sub_iter ~phase iter) ~rand
            ~emit:(fun dst m -> emit dst (Sub (phase, m)))
            ~emit_all:(fun ~lo ~hi ~skip ~desc m ->
              emit_all ~lo ~hi ~skip ~desc (Sub (phase, m)))
        else if ls > p.phase_core_len then flood_emission_into st ~emit
      end
      else begin
        let s = round - p.safety_start in
        if s = 0 then begin
          (* entry: close the last phase; emission: safety vote (line 17) *)
          process_flood st ~iter;
          end_of_phase st;
          if st.operative then broadcast_into st (Safety_vote st.b) ~emit_all
        end
        else if s = 1 then begin
          process_safety_votes st ~iter;
          if st.operative && st.decided_flag then
            broadcast_into st (Safety_final st.b) ~emit_all
        end
        else if s = 2 then begin
          process_safety_final st ~iter;
          if st.decided_flag || ((not st.operative) && st.got_final) then
            st.decision <- Some st.b
          else if st.operative then begin
            (* line 28: deterministic fallback among operative undecided *)
            let pk =
              Phase_king.create ~n ~t_max:cfg.Sim.Config.t_max ~pid:st.pid
                ~participating:true ~input:st.b
            in
            Phase_king.step_into pk ~local_round:1 ~iter:iter_empty
              ~emit_all:emit_all_pk;
            st.pk <- Some pk
          end
        end
        else begin
          match st.pk with
          | Some pk when s <= p.pk_rounds + 1 ->
              Phase_king.step_into pk ~local_round:(s - 1)
                ~iter:(pk_iter iter) ~emit_all:emit_all_pk
          | Some pk when s = p.pk_rounds + 2 -> (
              let pk = Phase_king.finalize_into pk ~iter:(pk_iter iter) in
              st.pk <- Some pk;
              match Phase_king.decision pk with
              | Some v ->
                  st.decision <- Some v;
                  broadcast_into st (Decided v) ~emit_all
              | None -> ())
          | Some pk when s = p.pk_rounds + 3 ->
              (* undecided residue: the safety-rule deciders of line 26
                 never broadcast again, so adopt a fallback decider's
                 [Decided] if one arrived, else self-decide the phase-king
                 working value — fallback decisions come from the same
                 line-15 adoption, so the values agree *)
              adopt_decided st ~iter;
              if st.decision = None then
                st.decision <- Some (Phase_king.value pk)
          | Some _ | None -> adopt_decided st ~iter
        end
      end

    let step _cfg st ~round ~inbox ~rand =
      let out = ref [] in
      let emit dst m = out := (dst, m) :: !out in
      step_core st ~round
        ~iter:(fun f -> List.iter (fun (src, m) -> f src m) inbox)
        ~rand ~emit
        ~emit_all:(Sim.Protocol_intf.emit_all_pointwise emit);
      (st, List.rev !out)

    let step_into _cfg st ~round ~inbox ~rand ~emit ~emit_all =
      step_core st ~round ~iter:(fun f -> Sim.Mailbox.iter inbox f) ~rand
        ~emit ~emit_all;
      st

    let observe st =
      {
        Sim.View.candidate = Some st.b;
        operative = st.operative;
        decided = st.decision;
      }

    let msg_bits = function
      | Sub (_, m) -> 2 + Core.msg_bits p.sub_shared.(0) m
      | Flood _ -> 2
      | Safety_vote _ -> 2
      | Safety_final _ -> 2
      | Pk_msg m -> Phase_king.msg_bits m
      | Decided _ -> 2

    let msg_hint = function
      | Sub (_, m) -> Core.msg_hint m
      | Flood d -> d
      | Safety_vote v | Safety_final v | Decided v -> Some v
      | Pk_msg (Phase_king.Value v) | Pk_msg (Phase_king.King v) -> Some v
  end in
  ((module M : Sim.Protocol_intf.S), (module M : Sim.Protocol_intf.BUFFERED))

let protocol ?params ~x (cfg : Sim.Config.t) : Sim.Protocol_intf.t =
  fst (make ?params ~x cfg)

let protocol_buffered ?params ~x (cfg : Sim.Config.t) :
    Sim.Protocol_intf.buffered =
  snd (make ?params ~x cfg)

(** Total schedule length, for sizing [Config.max_rounds]. *)
let rounds_needed ?(params = Params.default) ~x (cfg : Sim.Config.t) =
  let p = make_plan ~params cfg ~x in
  p.safety_start + 2 + p.pk_rounds + 4

let builder ?params ~x () : Sim.Protocol_intf.builder =
  (module struct
    let name = Printf.sprintf "param-x%d" x
    let build cfg = protocol ?params ~x cfg
    let rounds_needed cfg = rounds_needed ?params ~x cfg + 10
  end)
