(** Early-stopping (early-deciding) consensus for the crash model: decide
    at the first *clean* round (heard-from set did not shrink), hence in
    O(f+2) rounds for f actual crashes instead of the fixed t+1 — the
    adaptive-runtime baseline the paper's related work ([33, 34]) studies
    in the omission setting. Crash-model guarantees only. *)

type state
type msg

val protocol : Sim.Config.t -> Sim.Protocol_intf.t

val protocol_buffered : Sim.Config.t -> Sim.Protocol_intf.buffered
(** The same protocol on the buffered engine path (shared iterator core —
    byte-identical to {!protocol} through the shim). *)

val builder : Sim.Protocol_intf.builder
(** Registry constructor: id ["early-stopping"]; schedule bound
    [t_max + 5]. *)
