(** OptimalOmissionsConsensus — Algorithm 1 (Theorem 1 / Theorem 5): the
    voting {!Core} over all n processes, the decision broadcast (lines
    14-16), and the deterministic {!Phase_king} fallback (line 18) for the
    polynomially-unlikely undecided residue.

    Guarantees (for t < n/30, scaled constants): probability-1 agreement,
    validity and termination against any adaptive omission adversary;
    whp O((t/sqrt n) log^2 n) rounds, O(n (t log^3 n + n)) communication
    bits, and at most one random bit per operative process per epoch. *)

type state
type msg

val protocol :
  ?params:Params.t ->
  ?vote_log:Core.vote_event list ref ->
  Sim.Config.t ->
  Sim.Protocol_intf.t
(** Build the protocol for a configuration. The shared structures are
    computed once here from (n, seed, params). [vote_log] collects one
    event per operative process per epoch for the Figure-3 bench. *)

val protocol_buffered :
  ?params:Params.t ->
  ?vote_log:Core.vote_event list ref ->
  Sim.Config.t ->
  Sim.Protocol_intf.buffered
(** Same state machine on the allocation-free [step_into] path. *)

val rounds_needed : ?params:Params.t -> Sim.Config.t -> int
(** Upper bound on the schedule length (voting + fallback), for sizing
    [Config.max_rounds]. *)

val builder : ?params:Params.t -> unit -> Sim.Protocol_intf.builder
(** Registry constructor: id ["optimal"]; schedule bound
    [rounds_needed + 10]. *)
