(** Biased-majority randomized consensus in the style of Bar-Joseph and
    Ben-Or (PODC'98) — the crash-model baseline of Table 1 row [10] and
    the algorithm the Theorem-2 adversary plays against.

    [coin_set_size] limits which processes (pids below it) may flip coins —
    the randomness-starved variants of experiment T1-thm2. [theta_factor]
    scales the lean threshold theta = ceil(f * sqrt n); deciding requires
    clearing N/2 + t + theta, which no two processes can do for different
    values under t crashes. Crash-model guarantees only. *)

type state
type msg

val protocol :
  ?coin_set_size:int ->
  ?theta_factor:float ->
  Sim.Config.t ->
  Sim.Protocol_intf.t

val protocol_buffered :
  ?coin_set_size:int ->
  ?theta_factor:float ->
  Sim.Config.t ->
  Sim.Protocol_intf.buffered
(** The same protocol on the buffered engine path (shared iterator core —
    byte-identical to {!protocol} through the shim). *)

val builder :
  ?coin_set_size:int -> ?theta_factor:float -> unit -> Sim.Protocol_intf.builder
(** Registry constructor: id ["bjbo"]; schedule bound [60 (t_max + 10)]
    (whp termination is much earlier). *)
