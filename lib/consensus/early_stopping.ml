(** Early-stopping consensus for the crash model — the classic
    early-deciding algorithm the paper's related-work section contrasts
    with ([33, 34] study the omission-model variants; the crash version is
    the textbook one and serves as the adaptive-runtime baseline).

    Every round each live undecided process broadcasts its current minimum.
    A process decides at the first round in which its heard-from set did
    not shrink (a *clean* round: no failure newly visible to it), or at
    round t+2 at the latest. Each dirty round witnesses at least one fresh
    crash, so a run with f actual crashes decides in at most f+2 rounds —
    O(f) adaptive, against the fixed t+1 of flooding. A clean round also
    guarantees the local minimum is stable: any smaller value still in
    flight would have to travel through a crashing process, whose crash
    either delivered it here too or shrank the heard set.

    Deciders announce once ([final]); receivers adopt. Crash-model
    guarantees only (tests run it under crash adversaries). *)

type msg = Val of { v : int; final : bool }

module Int_set = Set.Make (Int)

type state = {
  pid : int;
  n : int;
  t_max : int;
  mutable v : int;
  mutable heard_prev : Int_set.t option;  (** heard-from set, last round *)
  mutable decided : int option;
  mutable announced : bool;
}

let protocol (_cfg : Sim.Config.t) : Sim.Protocol_intf.t =
  let module M = struct
    type nonrec state = state
    type nonrec msg = msg

    let name = "early-stopping"

    let init (cfg : Sim.Config.t) ~pid ~input =
      {
        pid;
        n = cfg.n;
        t_max = cfg.t_max;
        v = input;
        heard_prev = None;
        decided = None;
        announced = false;
      }

    let broadcast st m =
      let out = ref [] in
      for dst = st.n - 1 downto 0 do
        if dst <> st.pid then out := (dst, m) :: !out
      done;
      !out

    let process st ~round ~inbox =
      let final =
        List.fold_left
          (fun acc (_, Val { v; final }) ->
            match acc with None when final -> Some v | _ -> acc)
          None inbox
      in
      match final with
      | Some v ->
          st.v <- v;
          st.decided <- Some v
      | None ->
          let heard = ref (Int_set.singleton st.pid) in
          List.iter
            (fun (src, Val { v; _ }) ->
              heard := Int_set.add src !heard;
              if v < st.v then st.v <- v)
            inbox;
          let clean =
            match st.heard_prev with
            | Some prev -> Int_set.subset prev !heard
            | None -> false
          in
          st.heard_prev <- Some !heard;
          if clean || round > st.t_max + 2 then st.decided <- Some st.v

    let step _cfg st ~round ~inbox ~rand:_ =
      if round > 1 && st.decided = None then process st ~round ~inbox;
      match st.decided with
      | Some v when not st.announced ->
          st.announced <- true;
          (st, broadcast st (Val { v; final = true }))
      | Some _ -> (st, [])
      | None -> (st, broadcast st (Val { v = st.v; final = false }))

    let observe st =
      { Sim.View.candidate = Some st.v; operative = true; decided = st.decided }

    let msg_bits (Val _) = 3
    let msg_hint (Val { v; _ }) = Some v
  end in
  (module M)

let builder : Sim.Protocol_intf.builder =
  (module struct
    let name = "early-stopping"
    let build = protocol
    let rounds_needed (cfg : Sim.Config.t) = cfg.t_max + 5
  end)
