(** Early-stopping consensus for the crash model — the classic
    early-deciding algorithm the paper's related-work section contrasts
    with ([33, 34] study the omission-model variants; the crash version is
    the textbook one and serves as the adaptive-runtime baseline).

    Every round each live undecided process broadcasts its current minimum.
    A process decides at the first round in which its heard-from set did
    not shrink (a *clean* round: no failure newly visible to it), or at
    round t+2 at the latest. Each dirty round witnesses at least one fresh
    crash, so a run with f actual crashes decides in at most f+2 rounds —
    O(f) adaptive, against the fixed t+1 of flooding. A clean round also
    guarantees the local minimum is stable: any smaller value still in
    flight would have to travel through a crashing process, whose crash
    either delivered it here too or shrank the heard set.

    Deciders announce once ([final]); receivers adopt. Crash-model
    guarantees only (tests run it under crash adversaries). *)

type msg = Val of { v : int; final : bool }

module Int_set = Set.Make (Int)

type state = {
  pid : int;
  n : int;
  t_max : int;
  mutable v : int;
  mutable heard_prev : Int_set.t option;  (** heard-from set, last round *)
  mutable decided : int option;
  mutable announced : bool;
}

module M = struct
  type nonrec state = state
  type nonrec msg = msg

  let name = "early-stopping"

  let init (cfg : Sim.Config.t) ~pid ~input =
    {
      pid;
      n = cfg.n;
      t_max = cfg.t_max;
      v = input;
      heard_prev = None;
      decided = None;
      announced = false;
    }

  let broadcast_into st m ~emit_all =
    emit_all ~lo:0 ~hi:(st.n - 1) ~skip:st.pid ~desc:false m

  (* Two passes over the inbox iterator (iterators are re-runnable on both
     engine paths): first scan for a decision announcement, then — absent
     one — collect the heard-from set and the minimum. *)
  let process st ~round ~iter =
    let final = ref None in
    iter (fun _src (Val { v; final = fin }) ->
        if fin && !final = None then final := Some v);
    match !final with
    | Some v ->
        st.v <- v;
        st.decided <- Some v
    | None ->
        let heard = ref (Int_set.singleton st.pid) in
        iter (fun src (Val { v; _ }) ->
            heard := Int_set.add src !heard;
            if v < st.v then st.v <- v);
        let clean =
          match st.heard_prev with
          | Some prev -> Int_set.subset prev !heard
          | None -> false
        in
        st.heard_prev <- Some !heard;
        if clean || round > st.t_max + 2 then st.decided <- Some st.v

  (* Shared per-round logic — one shared message record per broadcast, in
     ascending destination order (the wire order the list path always
     had). *)
  let step_core st ~round ~iter ~emit_all =
    if round > 1 && st.decided = None then process st ~round ~iter;
    match st.decided with
    | Some v when not st.announced ->
        st.announced <- true;
        broadcast_into st (Val { v; final = true }) ~emit_all
    | Some _ -> ()
    | None -> broadcast_into st (Val { v = st.v; final = false }) ~emit_all

  let step _cfg st ~round ~inbox ~rand:_ =
    let out = ref [] in
    step_core st ~round
      ~iter:(fun f -> List.iter (fun (src, m) -> f src m) inbox)
      ~emit_all:
        (Sim.Protocol_intf.emit_all_pointwise (fun dst m ->
             out := (dst, m) :: !out));
    (st, List.rev !out)

  let step_into _cfg st ~round ~inbox ~rand:_ ~emit:_ ~emit_all =
    step_core st ~round ~iter:(fun f -> Sim.Mailbox.iter inbox f) ~emit_all;
    st

  let observe st =
    { Sim.View.candidate = Some st.v; operative = true; decided = st.decided }

  let msg_bits (Val _) = 3
  let msg_hint (Val { v; _ }) = Some v
end

let protocol (_cfg : Sim.Config.t) : Sim.Protocol_intf.t = (module M)

let protocol_buffered (_cfg : Sim.Config.t) : Sim.Protocol_intf.buffered =
  (module M)

let builder : Sim.Protocol_intf.builder =
  (module struct
    let name = "early-stopping"
    let build = protocol
    let rounds_needed (cfg : Sim.Config.t) = cfg.t_max + 5
  end)
