(** Classic deterministic flooding consensus for the crash model: t+1
    rounds of value-set flooding, decide the minimum. Baseline for the
    Omega(t^2)-messages row of Table 1 only — its validity condition does
    not hold under general omissions (see the module implementation notes),
    so tests exercise it under crash adversaries. *)

type state
type msg

val protocol : Sim.Config.t -> Sim.Protocol_intf.t

val protocol_buffered : Sim.Config.t -> Sim.Protocol_intf.buffered
(** Same state machine on the allocation-free [step_into] path: one shared
    message record per broadcast instead of one per destination. *)

val builder : Sim.Protocol_intf.builder
(** Registry constructor: id ["flood"]; schedule bound [t_max + 3]. *)
