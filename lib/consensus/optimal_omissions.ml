(** OptimalOmissionsConsensus — Algorithm 1 of the paper (Theorem 1 /
    Theorem 5): the voting {!Core} over all n processes, followed by the
    decision broadcast (lines 14-16) and, for the polynomially-unlikely
    undecided residue, the deterministic fallback (line 18, here
    {!Phase_king} — see DESIGN.md, substitution 3).

    Global round layout (V = [Core.rounds], P = [Phase_king.rounds]):
    - rounds 1..V: the voting core (epochs + the line-14 broadcast slot);
    - round V+1: consume the broadcast (lines 15-16) and decide, or start
      the fallback as an operative undecided participant;
    - rounds V+1 .. V+P: phase-king among operative undecided processes;
    - round V+P+1: fallback participants fix their decision and broadcast
      it (line 18); idle processes decide on any received decision
      (line 19);
    - round V+P+2: a participant whose phase-king run ended undecided (it
      heard no fallback message at all — possible only when the adversary
      fully eclipses it, or when it is the lone participant) resolves the
      residue: it adopts the first line-18 [Decided] broadcast it received,
      falling back to its own phase-king value when none arrived (the lone
      participant's value is the agreed one by the line-15 adoption), and
      terminates without broadcasting. Before this [Undecided] phase
      existed the process would re-run [Phase_king.finalize] on the
      already-finalized state every later round, double-consuming inboxes —
      the line-18/19 seam now has exactly one terminal transition.

    Both engine paths run one shared [step_core] over an inbox context of
    message-kind iterators (built from the legacy list or directly from the
    engine mailbox — no intermediate [(src, msg) list] on the hot path), so
    the two paths are byte-identical by construction. *)

type phase =
  | Voting of Core.t
  | Fallback of { core : Core.t; pk : Phase_king.t }
  | Undecided of { core : Core.t; value : int }
      (** line-18 residue: the fallback ended undecided; wait one round for
          a [Decided] broadcast, then self-decide [value] *)
  | Waiting of { core : Core.t }  (** line 19: idle until a decision arrives *)
  | Done of { core : Core.t; value : int }

type state = { phase : phase; pid : int }

type msg = Core_msg of Core.msg | Pk_msg of Phase_king.msg | Decided of int

let core_of = function
  | Voting c
  | Fallback { core = c; _ }
  | Undecided { core = c; _ }
  | Waiting { core = c }
  | Done { core = c; _ } -> c

(* The per-round inbox, viewed as one iterator per message kind plus the
   first-decision scan — each backed either by the legacy list or by the
   engine's mailbox, filtering during iteration. *)
type inbox_ctx = {
  iter_core : (int -> Core.msg -> unit) -> unit;
  iter_pk : (int -> Phase_king.msg -> unit) -> unit;
  first_decided : unit -> int option;
}

let ctx_of_list inbox =
  {
    iter_core =
      (fun f ->
        List.iter
          (fun (src, m) ->
            match m with
            | Core_msg cm -> f src cm
            | Pk_msg _ | Decided _ -> ())
          inbox);
    iter_pk =
      (fun f ->
        List.iter
          (fun (src, m) ->
            match m with
            | Pk_msg pm -> f src pm
            | Core_msg _ | Decided _ -> ())
          inbox);
    first_decided =
      (fun () ->
        List.fold_left
          (fun acc (_, m) ->
            match (acc, m) with
            | None, Decided v -> Some v
            | _, (Decided _ | Core_msg _ | Pk_msg _) -> acc)
          None inbox);
  }

let ctx_of_mailbox inbox =
  {
    iter_core =
      (fun f ->
        Sim.Mailbox.iter inbox (fun src m ->
            match m with
            | Core_msg cm -> f src cm
            | Pk_msg _ | Decided _ -> ()));
    iter_pk =
      (fun f ->
        Sim.Mailbox.iter inbox (fun src m ->
            match m with
            | Pk_msg pm -> f src pm
            | Core_msg _ | Decided _ -> ()));
    first_decided =
      (fun () ->
        Sim.Mailbox.fold inbox ~init:None (fun acc _src m ->
            match (acc, m) with
            | None, Decided v -> Some v
            | _, (Decided _ | Core_msg _ | Pk_msg _) -> acc));
  }

let iter_empty _f = ()

(** Build the protocol for a given configuration. The shared structures
    (partition, expander, schedule) are computed once here — they are pure
    functions of (n, seed, params), which is how all processes agree on them
    without communication. *)
let make ?(params = Params.default) ?vote_log (cfg : Sim.Config.t) =
  let members = Array.init cfg.Sim.Config.n (fun i -> i) in
  let shared =
    Core.make_shared ?vote_log ~members ~seed:cfg.Sim.Config.seed ~params
      ~t_max:cfg.Sim.Config.t_max ()
  in
  let core_rounds = Core.rounds shared in
  let pk_rounds = Phase_king.rounds ~t_max:cfg.Sim.Config.t_max in
  let module M = struct
    type nonrec state = state
    type nonrec msg = msg

    let name = "optimal-omissions"

    let init _cfg ~pid ~input =
      { phase = Voting (Core.create shared ~pid ~input); pid }

    (* The whole state machine, once, for both engine paths. *)
    let step_core st ~round ~ctx ~rand ~emit ~emit_all =
      let emit_all_core ~lo ~hi ~skip ~desc m =
        emit_all ~lo ~hi ~skip ~desc (Core_msg m)
      in
      let emit_all_pk ~lo ~hi ~skip ~desc m =
        emit_all ~lo ~hi ~skip ~desc (Pk_msg m)
      in
      match st.phase with
      | Done _ -> st
      | Voting core when round <= core_rounds ->
          Core.step_into core ~slot:round ~iter:ctx.iter_core ~rand
            ~emit:(fun dst m -> emit dst (Core_msg m))
            ~emit_all:emit_all_core;
          st
      | Voting core -> (
          (* round = core_rounds + 1: lines 15-16 *)
          Core.finalize_into core ~iter:ctx.iter_core;
          match Core.line16_decision core with
          | Some v -> { st with phase = Done { core; value = v } }
          | None ->
              if Core.operative core then begin
                let pk =
                  Phase_king.create ~n:cfg.Sim.Config.n
                    ~t_max:cfg.Sim.Config.t_max ~pid:st.pid
                    ~participating:true ~input:(Core.candidate core)
                in
                Phase_king.step_into pk ~local_round:1 ~iter:iter_empty
                  ~emit_all:emit_all_pk;
                { st with phase = Fallback { core; pk } }
              end
              else { st with phase = Waiting { core } })
      | Fallback { core; pk } ->
          let local_round = round - core_rounds - 1 in
          if local_round <= pk_rounds - 1 then begin
            Phase_king.step_into pk ~local_round:(local_round + 1)
              ~iter:ctx.iter_pk ~emit_all:emit_all_pk;
            st
          end
          else begin
            (* line 18: fix the fallback outcome; broadcast and decide *)
            let pk = Phase_king.finalize_into pk ~iter:ctx.iter_pk in
            match Phase_king.decision pk with
            | Some v ->
                emit_all ~lo:0
                  ~hi:(cfg.Sim.Config.n - 1)
                  ~skip:st.pid ~desc:false (Decided v);
                { st with phase = Done { core; value = v } }
            | None ->
                (* heard nothing all fallback long: resolve next round from
                   the line-18 broadcasts (terminal — no re-finalizing) *)
                { st with
                  phase = Undecided { core; value = Phase_king.value pk }
                }
          end
      | Undecided { core; value } -> (
          (* one round after line 18: adopt a broadcast decision if one
             reached us, else our own fallback value (we were the lone
             participant or are eclipsed-faulty); never broadcast *)
          match ctx.first_decided () with
          | Some v -> { st with phase = Done { core; value = v } }
          | None -> { st with phase = Done { core; value } })
      | Waiting { core } -> (
          (* line 19: adopt any decision that reaches us *)
          match ctx.first_decided () with
          | Some v -> { st with phase = Done { core; value = v } }
          | None -> st)

    let step _cfg st ~round ~inbox ~rand =
      let out = ref [] in
      let emit dst m = out := (dst, m) :: !out in
      let st' =
        step_core st ~round ~ctx:(ctx_of_list inbox) ~rand ~emit
          ~emit_all:(Sim.Protocol_intf.emit_all_pointwise emit)
      in
      (st', List.rev !out)

    let step_into _cfg st ~round ~inbox ~rand ~emit ~emit_all =
      step_core st ~round ~ctx:(ctx_of_mailbox inbox) ~rand ~emit ~emit_all

    let observe st =
      let core = core_of st.phase in
      {
        Sim.View.candidate = Some (Core.candidate core);
        operative = Core.operative core;
        decided =
          (match st.phase with Done { value; _ } -> Some value | _ -> None);
      }

    let msg_bits = function
      | Core_msg m -> Core.msg_bits shared m
      | Pk_msg m -> Phase_king.msg_bits m
      | Decided _ -> 2

    let msg_hint = function
      | Core_msg m -> Core.msg_hint m
      | Pk_msg (Phase_king.Value v) | Pk_msg (Phase_king.King v) -> Some v
      | Decided v -> Some v
  end in
  ((module M : Sim.Protocol_intf.S), (module M : Sim.Protocol_intf.BUFFERED))

let protocol ?params ?vote_log (cfg : Sim.Config.t) : Sim.Protocol_intf.t =
  fst (make ?params ?vote_log cfg)

let protocol_buffered ?params ?vote_log (cfg : Sim.Config.t) :
    Sim.Protocol_intf.buffered =
  snd (make ?params ?vote_log cfg)

(** Rounds the full schedule can occupy (voting + fallback), for sizing
    [Config.max_rounds]. *)
let rounds_needed ?(params = Params.default) (cfg : Sim.Config.t) =
  let members = Array.init cfg.Sim.Config.n (fun i -> i) in
  let shared =
    Core.make_shared ~members ~seed:cfg.Sim.Config.seed ~params
      ~t_max:cfg.Sim.Config.t_max ()
  in
  Core.rounds shared + Phase_king.rounds ~t_max:cfg.Sim.Config.t_max + 4

let builder ?params () : Sim.Protocol_intf.builder =
  (module struct
    let name = "optimal"
    let build cfg = protocol ?params cfg
    let rounds_needed cfg = rounds_needed ?params cfg + 10
  end)
