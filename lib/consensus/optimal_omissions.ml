(** OptimalOmissionsConsensus — Algorithm 1 of the paper (Theorem 1 /
    Theorem 5): the voting {!Core} over all n processes, followed by the
    decision broadcast (lines 14-16) and, for the polynomially-unlikely
    undecided residue, the deterministic fallback (line 18, here
    {!Phase_king} — see DESIGN.md, substitution 3).

    Global round layout (V = [Core.rounds], P = [Phase_king.rounds]):
    - rounds 1..V: the voting core (epochs + the line-14 broadcast slot);
    - round V+1: consume the broadcast (lines 15-16) and decide, or start
      the fallback as an operative undecided participant;
    - rounds V+1 .. V+P: phase-king among operative undecided processes;
    - round V+P+1: fallback participants fix their decision and broadcast
      it (line 18); idle processes decide on any received decision
      (line 19). *)

type phase =
  | Voting of Core.t
  | Fallback of { core : Core.t; pk : Phase_king.t }
  | Waiting of { core : Core.t }  (** line 19: idle until a decision arrives *)
  | Done of { core : Core.t; value : int }

type state = { phase : phase; pid : int }

type msg = Core_msg of Core.msg | Pk_msg of Phase_king.msg | Decided of int

let core_of = function
  | Voting c | Fallback { core = c; _ } | Waiting { core = c } | Done { core = c; _ } -> c

(** Build the protocol for a given configuration. The shared structures
    (partition, expander, schedule) are computed once here — they are pure
    functions of (n, seed, params), which is how all processes agree on them
    without communication. *)
let make ?(params = Params.default) ?vote_log (cfg : Sim.Config.t) =
  let members = Array.init cfg.Sim.Config.n (fun i -> i) in
  let shared =
    Core.make_shared ?vote_log ~members ~seed:cfg.Sim.Config.seed ~params
      ~t_max:cfg.Sim.Config.t_max ()
  in
  let core_rounds = Core.rounds shared in
  let pk_rounds = Phase_king.rounds ~t_max:cfg.Sim.Config.t_max in
  let module M = struct
    type nonrec state = state
    type nonrec msg = msg

    let name = "optimal-omissions"

    let init _cfg ~pid ~input =
      { phase = Voting (Core.create shared ~pid ~input); pid }

    let core_inbox inbox =
      List.filter_map
        (fun (src, m) ->
          match m with Core_msg cm -> Some (src, cm) | Pk_msg _ | Decided _ -> None)
        inbox

    let pk_inbox inbox =
      List.filter_map
        (fun (src, m) ->
          match m with Pk_msg pm -> Some (src, pm) | Core_msg _ | Decided _ -> None)
        inbox

    let decided_inbox inbox =
      List.fold_left
        (fun acc (_, m) ->
          match (acc, m) with
          | None, Decided v -> Some v
          | _, (Decided _ | Core_msg _ | Pk_msg _) -> acc)
        None inbox

    (* Mailbox counterparts of the inbox filters: same (src, msg) pairs in
       the same slot order as the list versions see them. *)
    let core_inbox_mb inbox =
      let acc = ref [] in
      for i = Sim.Mailbox.length inbox - 1 downto 0 do
        match Sim.Mailbox.msg inbox i with
        | Core_msg cm -> acc := (Sim.Mailbox.peer inbox i, cm) :: !acc
        | Pk_msg _ | Decided _ -> ()
      done;
      !acc

    let pk_inbox_mb inbox =
      let acc = ref [] in
      for i = Sim.Mailbox.length inbox - 1 downto 0 do
        match Sim.Mailbox.msg inbox i with
        | Pk_msg pm -> acc := (Sim.Mailbox.peer inbox i, pm) :: !acc
        | Core_msg _ | Decided _ -> ()
      done;
      !acc

    let decided_inbox_mb inbox =
      Sim.Mailbox.fold inbox ~init:None (fun acc _src m ->
          match (acc, m) with
          | None, Decided v -> Some v
          | _, (Decided _ | Core_msg _ | Pk_msg _) -> acc)

    let broadcast st m =
      let out = ref [] in
      for dst = cfg.Sim.Config.n - 1 downto 0 do
        if dst <> st.pid then out := (dst, m) :: !out
      done;
      !out

    let step _cfg st ~round ~inbox ~rand =
      match st.phase with
      | Done _ -> (st, [])
      | Voting core when round <= core_rounds ->
          let msgs = Core.step core ~slot:round ~inbox:(core_inbox inbox) ~rand in
          (st, List.map (fun (dst, m) -> (dst, Core_msg m)) msgs)
      | Voting core ->
          (* round = core_rounds + 1: lines 15-16 *)
          Core.finalize core ~inbox:(core_inbox inbox);
          (match Core.line16_decision core with
          | Some v -> ({ st with phase = Done { core; value = v } }, [])
          | None ->
              if Core.operative core then begin
                let pk =
                  Phase_king.create ~n:cfg.Sim.Config.n
                    ~t_max:cfg.Sim.Config.t_max ~pid:st.pid
                    ~participating:true ~input:(Core.candidate core)
                in
                let pk, out = Phase_king.step pk ~local_round:1 ~inbox:[] in
                ( { st with phase = Fallback { core; pk } },
                  List.map (fun (dst, m) -> (dst, Pk_msg m)) out )
              end
              else ({ st with phase = Waiting { core } }, []))
      | Fallback { core; pk } ->
          let local_round = round - core_rounds - 1 in
          if local_round <= pk_rounds - 1 then begin
            let pk, out =
              Phase_king.step pk ~local_round:(local_round + 1)
                ~inbox:(pk_inbox inbox)
            in
            ( { st with phase = Fallback { core; pk } },
              List.map (fun (dst, m) -> (dst, Pk_msg m)) out )
          end
          else begin
            (* line 18: agreement reached; broadcast and decide *)
            let pk = Phase_king.finalize pk ~inbox:(pk_inbox inbox) in
            match Phase_king.decision pk with
            | Some v ->
                ( { st with phase = Done { core; value = v } },
                  broadcast st (Decided v) )
            | None -> (st, [])
          end
      | Waiting { core } -> (
          (* line 19: adopt any decision that reaches us *)
          match decided_inbox inbox with
          | Some v -> ({ st with phase = Done { core; value = v } }, [])
          | None -> (st, []))

    (* Same state machine on the mailbox path; emission order mirrors the
       list path branch by branch. *)
    let step_into _cfg st ~round ~inbox ~rand ~emit =
      match st.phase with
      | Done _ -> st
      | Voting core when round <= core_rounds ->
          let msgs =
            Core.step core ~slot:round ~inbox:(core_inbox_mb inbox) ~rand
          in
          List.iter (fun (dst, m) -> emit dst (Core_msg m)) msgs;
          st
      | Voting core -> (
          (* round = core_rounds + 1: lines 15-16 *)
          Core.finalize core ~inbox:(core_inbox_mb inbox);
          match Core.line16_decision core with
          | Some v -> { st with phase = Done { core; value = v } }
          | None ->
              if Core.operative core then begin
                let pk =
                  Phase_king.create ~n:cfg.Sim.Config.n
                    ~t_max:cfg.Sim.Config.t_max ~pid:st.pid
                    ~participating:true ~input:(Core.candidate core)
                in
                let pk, out = Phase_king.step pk ~local_round:1 ~inbox:[] in
                List.iter (fun (dst, m) -> emit dst (Pk_msg m)) out;
                { st with phase = Fallback { core; pk } }
              end
              else { st with phase = Waiting { core } })
      | Fallback { core; pk } ->
          let local_round = round - core_rounds - 1 in
          if local_round <= pk_rounds - 1 then begin
            let pk, out =
              Phase_king.step pk ~local_round:(local_round + 1)
                ~inbox:(pk_inbox_mb inbox)
            in
            List.iter (fun (dst, m) -> emit dst (Pk_msg m)) out;
            { st with phase = Fallback { core; pk } }
          end
          else begin
            (* line 18: agreement reached; broadcast and decide *)
            let pk = Phase_king.finalize pk ~inbox:(pk_inbox_mb inbox) in
            match Phase_king.decision pk with
            | Some v ->
                let m = Decided v in
                for dst = 0 to cfg.Sim.Config.n - 1 do
                  if dst <> st.pid then emit dst m
                done;
                { st with phase = Done { core; value = v } }
            | None -> st
          end
      | Waiting { core } -> (
          match decided_inbox_mb inbox with
          | Some v -> { st with phase = Done { core; value = v } }
          | None -> st)

    let observe st =
      let core = core_of st.phase in
      {
        Sim.View.candidate = Some (Core.candidate core);
        operative = Core.operative core;
        decided =
          (match st.phase with Done { value; _ } -> Some value | _ -> None);
      }

    let msg_bits = function
      | Core_msg m -> Core.msg_bits shared m
      | Pk_msg m -> Phase_king.msg_bits m
      | Decided _ -> 2

    let msg_hint = function
      | Core_msg m -> Core.msg_hint m
      | Pk_msg (Phase_king.Value v) | Pk_msg (Phase_king.King v) -> Some v
      | Decided v -> Some v
  end in
  ((module M : Sim.Protocol_intf.S), (module M : Sim.Protocol_intf.BUFFERED))

let protocol ?params ?vote_log (cfg : Sim.Config.t) : Sim.Protocol_intf.t =
  fst (make ?params ?vote_log cfg)

let protocol_buffered ?params ?vote_log (cfg : Sim.Config.t) :
    Sim.Protocol_intf.buffered =
  snd (make ?params ?vote_log cfg)

(** Rounds the full schedule can occupy (voting + fallback), for sizing
    [Config.max_rounds]. *)
let rounds_needed ?(params = Params.default) (cfg : Sim.Config.t) =
  let members = Array.init cfg.Sim.Config.n (fun i -> i) in
  let shared =
    Core.make_shared ~members ~seed:cfg.Sim.Config.seed ~params
      ~t_max:cfg.Sim.Config.t_max ()
  in
  Core.rounds shared + Phase_king.rounds ~t_max:cfg.Sim.Config.t_max + 4

let builder ?params () : Sim.Protocol_intf.builder =
  (module struct
    let name = "optimal"
    let build cfg = protocol ?params cfg
    let rounds_needed cfg = rounds_needed ?params cfg + 10
  end)
