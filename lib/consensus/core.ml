(** The voting core of OptimalOmissionsConsensus (Algorithm 1, lines 1-16),
    reusable over an arbitrary member set so that Algorithm 4 can run it
    inside each super-process.

    An *epoch* consists of:
    - GroupBitsAggregation (Algorithm 2): ceil(log2 S) stages of the 3-round
      GroupRelay over the sqrt-decomposition into groups of size <= S =
      ceil(sqrt m) — sources broadcast their bag's operative counts to the
      whole group, transmitters confirm, transmitters relay the aggregated
      counts back (Figure 2);
    - GroupBitsSpreading (Algorithm 3): Theta(log m) gossip rounds over the
      predetermined expander, exchanging per-group operative counts with
      delta-encoding per link and permanent disregarding of silent links
      (Figure 1);
    - the biased-majority vote update (lines 9-12, Figure 3).

    After the last epoch comes one broadcast slot (line 14); {!finalize}
    consumes it (lines 15-16). The caller (Algorithm 1's wrapper or
    Algorithm 4) decides what to do with undecided processes.

    Operative-status rules (Appendix B.1):
    - a source that receives fewer than floor(|W|/2)+1 confirmations, or
      fewer than floor(|W|/2)+1 relayed results, becomes inoperative but
      keeps serving as a transmitter for the remainder of the current
      epoch's aggregation;
    - a spreading process that receives fewer than Delta/3 messages from
      its non-disregarded neighbors becomes inoperative;
    - inoperative processes stay idle from then on, in this and all future
      epochs (they only wait for a decision);
    - a neighbor that fails to deliver during spreading is disregarded
      permanently — silent links belong to faulty processes, so pruning
      them is conservative (the paper's "refuses to accept messages from
      them in any future round"). *)

type counts = { ones : int; zeros : int }

let counts_zero = { ones = 0; zeros = 0 }
let counts_add a b = { ones = a.ones + b.ones; zeros = a.zeros + b.zeros }

type msg =
  | Counts of { stage : int; bag : int; c : counts }
  | Confirm of { stage : int }
  | Result of { stage : int; left : counts option; right : counts option }
  | Spread_delta of (int * counts) list  (** (group, counts); [] = heartbeat *)
  | Final of int  (** decision broadcast of line 14 *)

type slot = Agg_a of int | Agg_b of int | Agg_c of int | Spread of int | Bcast

(** One vote-update record per operative process per epoch, for the Figure 3
    bench: (pid, epoch, ones, zeros, rule). *)
type vote_event = {
  ev_pid : int;
  ev_epoch : int;
  ev_ones : int;
  ev_zeros : int;
  ev_rule : string;  (** "one" | "zero" | "coin", "+decided" when armed *)
}

type shared = {
  members : int array;  (** global pids, ascending *)
  m : int;
  index_of : (int, int) Hashtbl.t;  (** global pid -> local index *)
  part : Groups.t;  (** sqrt-decomposition over local indices *)
  graph : Expander.t option;  (** spreading graph over local indices *)
  delta : int;
  op_threshold : int;  (** spreading operative threshold, Delta/3 *)
  stages : int;
  spread_rounds : int;
  epochs : int;
  epoch_len : int;
  schedule : slot array;
  vote_log : vote_event list ref option;  (** optional trace for benches *)
  contig : bool;
      (** the member pids form a contiguous ascending range — broadcasts to
          the whole instance can then go out as one range entry *)
  final_broadcast : bool;
      (** emit the line-14 all-to-all broadcast (Algorithm 1). The
          crash-model variant of Appendix B.3 disables it and disseminates
          decisions over the expander instead. *)
}

let log2_ceil = Params.log2_ceil

let make_shared ?vote_log ?(final_broadcast = true) ~members ~seed ~params ~t_max () =
  let m = Array.length members in
  if m = 0 then invalid_arg "Core.make_shared: empty member set";
  let index_of = Hashtbl.create (2 * m) in
  Array.iteri (fun i pid -> Hashtbl.replace index_of pid i) members;
  let part = Groups.sqrt_partition (Array.init m (fun i -> i)) in
  let graph =
    if m < 2 then None
    else begin
      let delta = Params.delta params ~n:m in
      Some
        (Expander.create_good ~attempts:params.Params.graph_attempts ~n:m
           ~delta ~seed:(Int64.of_int (seed + 0xA11CE)) ())
    end
  in
  let delta = match graph with Some g -> Expander.delta g | None -> 0 in
  let stages = Groups.stages part.Groups.group_size in
  let spread_rounds = Params.spread_rounds params ~n:m in
  let epochs = if m = 1 then 0 else Params.epoch_count params ~n:m ~t_max in
  let epoch_len = (3 * stages) + spread_rounds in
  let contig =
    let ok = ref true in
    Array.iteri (fun i pid -> if pid <> members.(0) + i then ok := false) members;
    !ok
  in
  let schedule =
    let slots = ref [ Bcast ] in
    for _ = 1 to epochs do
      for k = spread_rounds downto 1 do
        slots := Spread k :: !slots
      done;
      for s = stages downto 1 do
        slots := Agg_a s :: Agg_b s :: Agg_c s :: !slots
      done
    done;
    Array.of_list !slots
  in
  {
    members;
    m;
    index_of;
    part;
    graph;
    delta;
    op_threshold = delta / 3;
    stages;
    spread_rounds;
    epochs;
    epoch_len;
    schedule;
    vote_log;
    contig;
    final_broadcast;
  }

let rounds sh = Array.length sh.schedule

type t = {
  sh : shared;
  pid : int;  (** global pid *)
  me : int;  (** local index *)
  grp : int;
  rank : int;
  group_locals : int array;  (** local indices of my group, ascending *)
  group_size : int;
  group_contig : bool;
      (** the group's global pids are a contiguous ascending range *)
  group_lo : int;  (** global pid range of the group when [group_contig] *)
  group_hi : int;
  quorum : int;
  mutable b : int;
  mutable operative : bool;
  mutable inop_epoch : int;  (** epoch in which operative was lost, or -1 *)
  mutable decided : bool;  (** the safety flag of line 12 *)
  mutable got_decision : bool;  (** holds a line-14/15 decision *)
  (* --- aggregation state --- *)
  mutable agg : counts;  (** counts of my bag at the current layer *)
  mutable sourced : bool;  (** did I source in the current stage *)
  relay_tbl : (int, counts) Hashtbl.t;  (** child bag -> first counts *)
  (* --- spreading state --- *)
  bitpacks : counts option array;
  sent_to : (int * int, unit) Hashtbl.t;  (** (neighbor, group) already sent *)
  disregarded : (int, unit) Hashtbl.t;  (** silent neighbors, permanent *)
}

let create sh ~pid ~input =
  if input <> 0 && input <> 1 then invalid_arg "Core.create: input bit";
  let me =
    match Hashtbl.find_opt sh.index_of pid with
    | Some i -> i
    | None -> invalid_arg "Core.create: pid not a member"
  in
  let grp = Groups.group_of sh.part me in
  let group_locals = Groups.group sh.part grp in
  let group_size = Array.length group_locals in
  let group_contig =
    let ok = ref (group_size > 0) in
    let base = sh.members.(group_locals.(0)) in
    Array.iteri
      (fun i l -> if sh.members.(l) <> base + i then ok := false)
      group_locals;
    !ok
  in
  let group_lo = if group_size > 0 then sh.members.(group_locals.(0)) else 0 in
  let group_hi = group_lo + group_size - 1 in
  {
    sh;
    pid;
    me;
    grp;
    rank = Groups.rank_of sh.part me;
    group_locals;
    group_size;
    group_contig;
    group_lo;
    group_hi;
    quorum = (group_size / 2) + 1;
    b = input;
    operative = true;
    inop_epoch = -1;
    (* a singleton instance trivially holds the unanimous count *)
    decided = sh.m = 1;
    got_decision = false;
    agg = counts_zero;
    sourced = false;
    relay_tbl = Hashtbl.create 8;
    bitpacks = Array.make (Groups.group_count sh.part) None;
    sent_to = Hashtbl.create 64;
    disregarded = Hashtbl.create 8;
  }

let candidate st = st.b

(** Override the candidate before the instance has been stepped — used by
    Algorithm 4, whose sub-runs must start from the value adopted in earlier
    round-robin phases. *)
let set_candidate st b =
  if b <> 0 && b <> 1 then invalid_arg "Core.set_candidate: bit expected";
  st.b <- b
let operative st = st.operative
let decided_flag st = st.decided
let got_decision st = st.got_decision
let epoch_of st ~slot = (slot - 1) / st.sh.epoch_len
let global st local = st.sh.members.(local)
let local_of st pid = Hashtbl.find_opt st.sh.index_of pid

let become_inoperative st ~slot =
  if st.operative then begin
    st.operative <- false;
    st.inop_epoch <- epoch_of st ~slot
  end

(* Inoperative processes keep transmitting until the end of the aggregation
   of the epoch in which they lost the status, then go fully idle. *)
let transmits st ~slot =
  st.operative || (st.inop_epoch >= 0 && st.inop_epoch = epoch_of st ~slot)

let same_group st local = Groups.group_of st.sh.part local = st.grp

let is_neighbor st local =
  match st.sh.graph with
  | None -> false
  | Some g -> Expander.mem_edge g st.me local

(* ------------------------------------------------------------------ *)
(* Aggregation (Algorithm 2 + GroupRelay)                              *)
(* ------------------------------------------------------------------ *)

(* Both engine paths run the same iterator-driven slot logic: the list
   path feeds [iter_of_list], the buffered path iterates the engine's
   mailbox directly (no intermediate (src, msg) list on the hot path). *)
let iter_of_list inbox f = List.iter (fun (src, m) -> f src m) inbox

(* Entry to a stage's B slot: transmitters record the first-received counts
   per child bag (own contribution first — self-messages are handled
   locally, not through the network) and acknowledge each source heard —
   [confirm src] fires in arrival order, once per source. *)
let agg_process_a st ~slot ~s ~iter ~confirm =
  if transmits st ~slot then begin
    Hashtbl.reset st.relay_tbl;
    if st.sourced then
      Hashtbl.replace st.relay_tbl (st.rank lsr (s - 1)) st.agg;
    iter (fun src m ->
        match m with
        | Counts { stage; bag; c } when stage = s -> (
            match local_of st src with
            | Some l when same_group st l ->
                confirm src;
                if not (Hashtbl.mem st.relay_tbl bag) then
                  Hashtbl.replace st.relay_tbl bag c
            | Some _ | None -> ())
        | Counts _ | Confirm _ | Result _ | Spread_delta _ | Final _ -> ())
  end

(* Entry to a stage's C slot: sources count confirmations (self included)
   against the majority quorum of the whole group. *)
let agg_process_b st ~slot ~s ~iter =
  if st.sourced && st.operative then begin
    let confirms = ref 1 in
    iter (fun src m ->
        match m with
        | Confirm { stage } when stage = s -> (
            match local_of st src with
            | Some l when same_group st l -> incr confirms
            | Some _ | None -> ())
        | Counts _ | Confirm _ | Result _ | Spread_delta _ | Final _ -> ());
    if !confirms < st.quorum then become_inoperative st ~slot
  end

(* Entry to the slot after a stage's C slot: sources combine the relayed
   results into their bag counts for the next layer. Any received version
   works — every version a transmitter relays originates at an operative
   source of the child bag and hence contains every operative member's bit
   (the paper's Lemma 1 induction); we take our own transmitter version
   first and fill missing children from the others in sender order. *)
let agg_finalize_stage st ~slot ~s ~iter =
  if st.operative then begin
    let k = st.rank lsr s in
    let left_bag = 2 * k and right_bag = (2 * k) + 1 in
    let left = ref (Hashtbl.find_opt st.relay_tbl left_bag) in
    let right = ref (Hashtbl.find_opt st.relay_tbl right_bag) in
    let results = ref 1 in
    iter (fun src m ->
        match m with
        | Result { stage; left = l; right = r } when stage = s -> (
            match local_of st src with
            | Some lc when same_group st lc ->
                incr results;
                (match (!left, l) with None, Some _ -> left := l | _ -> ());
                (match (!right, r) with None, Some _ -> right := r | _ -> ())
            | Some _ | None -> ())
        | Counts _ | Confirm _ | Result _ | Spread_delta _ | Final _ -> ());
    if !results < st.quorum then become_inoperative st ~slot
    else begin
      let get = function Some c -> c | None -> counts_zero in
      st.agg <- counts_add (get !left) (get !right)
    end
  end

(* Group broadcast of one shared message record. Emission walks the member
   array backwards: the old list path built its output by fold-left
   consing, so the wire order (and hence the trace) is the reverse of the
   array — kept bit-identical here. A contiguous group goes out as one
   descending broadcast entry; scattered member sets (possible under
   Algorithm 4's sub-instances) fall back to pointwise emission. *)
let to_group_into st msg ~emit ~emit_all =
  if st.group_contig then
    emit_all ~lo:st.group_lo ~hi:st.group_hi ~skip:st.pid ~desc:true msg
  else
    for i = Array.length st.group_locals - 1 downto 0 do
      let l = st.group_locals.(i) in
      if l <> st.me then emit (global st l) msg
    done

(* Emission at a stage's C slot: the transmitter sends each group member the
   result pair for that member's parent bag. *)
let agg_emit_results_into st ~slot ~s ~emit =
  if transmits st ~slot then
    for i = Array.length st.group_locals - 1 downto 0 do
      let l = st.group_locals.(i) in
      if l <> st.me then begin
        let rank_l = Groups.rank_of st.sh.part l in
        let k = rank_l lsr s in
        let left = Hashtbl.find_opt st.relay_tbl (2 * k) in
        let right = Hashtbl.find_opt st.relay_tbl ((2 * k) + 1) in
        emit (global st l) (Result { stage = s; left; right })
      end
    done

(* ------------------------------------------------------------------ *)
(* Spreading (Algorithm 3)                                             *)
(* ------------------------------------------------------------------ *)

let spread_init st =
  Array.fill st.bitpacks 0 (Array.length st.bitpacks) None;
  Hashtbl.reset st.sent_to;
  if st.operative then st.bitpacks.(st.grp) <- Some st.agg

(* The (neighbor, group) sent-once bookkeeping is independent across
   neighbors, so walking the neighbor array backwards (to match the old
   fold-left-consed wire order) builds the same per-neighbor deltas. *)
let spread_emit_into st ~emit =
  match st.sh.graph with
  | None -> ()
  | Some g ->
      if st.operative then begin
        let nb = Expander.neighbors g st.me in
        for i = Array.length nb - 1 downto 0 do
          let q = nb.(i) in
          if not (Hashtbl.mem st.disregarded q) then begin
            let entries = ref [] in
            for grp = Array.length st.bitpacks - 1 downto 0 do
              match st.bitpacks.(grp) with
              | Some c when not (Hashtbl.mem st.sent_to (q, grp)) ->
                  Hashtbl.replace st.sent_to (q, grp) ();
                  entries := (grp, c) :: !entries
              | Some _ | None -> ()
            done;
            emit (global st q) (Spread_delta !entries)
          end
        done
      end

let spread_process st ~slot ~iter =
  if st.operative then begin
    match st.sh.graph with
    | None -> ()
    | Some g ->
        let received = Hashtbl.create 16 in
        iter (fun src m ->
            match m with
            | Spread_delta entries -> (
                match local_of st src with
                | Some l
                  when is_neighbor st l && not (Hashtbl.mem st.disregarded l)
                  ->
                    Hashtbl.replace received l ();
                    List.iter
                      (fun (grp, c) ->
                        if
                          grp >= 0
                          && grp < Array.length st.bitpacks
                          && st.bitpacks.(grp) = None
                        then st.bitpacks.(grp) <- Some c)
                      entries
                | Some _ | None -> ())
            | Counts _ | Confirm _ | Result _ | Final _ -> ());
        Array.iter
          (fun q ->
            if
              (not (Hashtbl.mem st.disregarded q))
              && not (Hashtbl.mem received q)
            then Hashtbl.replace st.disregarded q ())
          (Expander.neighbors g st.me);
        if Hashtbl.length received < st.sh.op_threshold then
          become_inoperative st ~slot
  end

(* ------------------------------------------------------------------ *)
(* Vote update (lines 9-12)                                            *)
(* ------------------------------------------------------------------ *)

let vote_update st ~slot ~rand =
  if st.operative then begin
    let ones = ref 0 and zeros = ref 0 in
    Array.iter
      (function
        | Some c ->
            ones := !ones + c.ones;
            zeros := !zeros + c.zeros
        | None -> ())
      st.bitpacks;
    let upd = Voting.update ~ones:!ones ~zeros:!zeros ~rand in
    st.b <- upd.Voting.b;
    let armed = Voting.ready ~ones:!ones ~zeros:!zeros in
    if armed then st.decided <- true;
    match st.sh.vote_log with
    | None -> ()
    | Some log ->
        let rule =
          (if upd.Voting.used_coin then "coin"
           else if upd.Voting.b = 1 then "one"
           else "zero")
          ^ if armed then "+decided" else ""
        in
        log :=
          {
            ev_pid = st.pid;
            ev_epoch = epoch_of st ~slot - 1;
            ev_ones = !ones;
            ev_zeros = !zeros;
            ev_rule = rule;
          }
          :: !log
  end

(* ------------------------------------------------------------------ *)
(* The per-slot driver                                                 *)
(* ------------------------------------------------------------------ *)

let epoch_begin st =
  st.sourced <- false;
  Hashtbl.reset st.relay_tbl;
  if st.operative then
    st.agg <-
      (if st.b = 1 then { ones = 1; zeros = 0 } else { ones = 0; zeros = 1 })

(* line 14 broadcasts to every member of the instance, not just the group;
   reverse member order for the same wire-order reason as [to_group_into] *)
let to_group_all_into st msg ~emit ~emit_all =
  if st.sh.contig then
    emit_all ~lo:st.sh.members.(0)
      ~hi:st.sh.members.(st.sh.m - 1)
      ~skip:st.pid ~desc:true msg
  else
    for i = Array.length st.sh.members - 1 downto 0 do
      let pid = st.sh.members.(i) in
      if pid <> st.pid then emit pid msg
    done

(** Iterator core of {!step}: [iter f] must call [f src m] for every
    message of the previous slot's inbox in delivery order; outgoing
    messages go to [emit], addressed to global pids, in the exact order the
    list path would return them. The entry pass emits the Confirm
    acknowledgments directly — an [Agg_a] slot is always followed by the
    matching [Agg_b] slot, and entry processing shares the emission's
    [transmits] guard. Full-group/full-instance broadcasts go through
    [emit_all] (one shared record + range); per-destination messages stay
    on [emit]. *)
let step_into st ~slot ~iter ~rand ~emit ~emit_all =
  (if slot > 1 then
     match st.sh.schedule.(slot - 2) with
     | Agg_a s ->
         (* one shared Confirm record for every acknowledged source *)
         let cm = Confirm { stage = s } in
         agg_process_a st ~slot ~s ~iter ~confirm:(fun src -> emit src cm)
     | Agg_b s -> agg_process_b st ~slot ~s ~iter
     | Agg_c s -> agg_finalize_stage st ~slot ~s ~iter
     | Spread k ->
         spread_process st ~slot ~iter;
         if k = st.sh.spread_rounds then vote_update st ~slot ~rand
     | Bcast -> invalid_arg "Core.step: stepped past the schedule");
  match st.sh.schedule.(slot - 1) with
  | Agg_a s ->
      if s = 1 then epoch_begin st;
      if st.operative then begin
        st.sourced <- true;
        to_group_into st
          (Counts { stage = s; bag = st.rank lsr (s - 1); c = st.agg })
          ~emit ~emit_all
      end
      else st.sourced <- false
  | Agg_b _ -> () (* the Confirms went out during the entry pass above *)
  | Agg_c s -> agg_emit_results_into st ~slot ~s ~emit
  | Spread k ->
      if k = 1 then spread_init st;
      spread_emit_into st ~emit
  | Bcast ->
      if st.sh.final_broadcast && st.operative && st.decided then
        to_group_all_into st (Final st.b) ~emit ~emit_all

(** Run local slot [slot] (1-based, up to [rounds sh]). Mutates the state
    and returns the messages to send, addressed to global pids. *)
let step st ~slot ~inbox ~rand =
  let out = ref [] in
  let emit dst m = out := (dst, m) :: !out in
  step_into st ~slot ~iter:(iter_of_list inbox) ~rand ~emit
    ~emit_all:(Sim.Protocol_intf.emit_all_pointwise emit);
  List.rev !out

(** Iterator core of {!finalize} (lines 15-16); same [iter] contract as
    {!step_into}. *)
let finalize_into st ~iter =
  if st.operative && st.decided then st.got_decision <- true
  else begin
    let adopted = ref None in
    iter (fun src m ->
        match m with
        | Final v when !adopted = None && local_of st src <> None ->
            adopted := Some v
        | Counts _ | Confirm _ | Result _ | Spread_delta _ | Final _ -> ());
    match !adopted with
    | Some v ->
        st.b <- v;
        st.got_decision <- true
    | None -> ()
  end

(** Consume the Bcast slot's inbox (lines 15-16). Must be called exactly
    once, on the round after [rounds sh] slots have been stepped. *)
let finalize st ~inbox = finalize_into st ~iter:(iter_of_list inbox)

(** Line 16: the decision available right after {!finalize}, if any. *)
let line16_decision st =
  if st.decided then Some st.b
  else if (not st.operative) && st.got_decision then Some st.b
  else None

(* ------------------------------------------------------------------ *)
(* Accounting                                                          *)
(* ------------------------------------------------------------------ *)

let msg_bits sh m =
  let b_count = log2_ceil (sh.part.Groups.group_size + 1) in
  let b_stage = log2_ceil (sh.stages + 1) in
  let b_group = log2_ceil (Groups.group_count sh.part + 1) in
  match m with
  | Counts _ -> 3 + b_stage + b_count + (2 * b_count)
  | Confirm _ -> 3 + b_stage
  | Result _ -> 5 + b_stage + (4 * b_count)
  | Spread_delta entries ->
      3 + (List.length entries * (b_group + (2 * b_count)))
  | Final _ -> 4

let msg_hint = function
  | Final v -> Some v
  | Counts _ | Confirm _ | Result _ | Spread_delta _ -> None
