(** Dolev-Strong authenticated consensus ([15], Theorem 4) — the paper's
    40-year-old deterministic comparator: n parallel signed broadcasts,
    t+2 rounds, O(n^2 t) messages, probability 1 against any t < n faults
    under (simulated) authentication. The Theta(n)-rounds corner of Table 1
    that Theorem 1 escapes. *)

type state
type msg

val protocol : Sim.Config.t -> Sim.Protocol_intf.t

val protocol_buffered : Sim.Config.t -> Sim.Protocol_intf.buffered
(** Same state machine on the allocation-free [step_into] path: one shared
    message record per relayed chain instead of one per destination. *)

val builder : Sim.Protocol_intf.builder
(** Registry constructor: id ["dolev-strong"]; schedule bound [t_max + 3]. *)
