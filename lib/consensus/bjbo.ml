(** Biased-majority randomized consensus in the style of Bar-Joseph and
    Ben-Or (PODC'98) — the crash-model baseline of Table 1, row [10], and
    the canonical algorithm the Theorem 2 lower-bound adversary plays
    against.

    Every round each live process broadcasts its candidate bit; counting the
    received bits (own included, N of them) it then applies thresholds with
    margin theta = ceil(sqrt n):
    - count(v) > N/2 + t + theta: decide v (and announce for one round);
    - count(v) > N/2 + theta: lean to v deterministically;
    - otherwise: flip a coin — or, when the process is outside the
      designated coin set, adopt the plain majority.

    The decide margin exceeds any two processes' count divergence (at most
    t under crashes), so no two processes can decide differently; a decided
    value drags every other process above the lean threshold the next
    round, after which unanimity closes the run. An adaptive adversary must
    therefore spend ~theta crashes per round to keep the counts inside the
    coin window — the Theta(t / sqrt n) round-complexity shape of [10].

    [coin_set_size] bounds how many processes may flip coins each round
    (processes with pid < k): the randomness-starved variants measured in
    experiment T1-thm2. With k = n this is the standard algorithm; with
    small k the vote-splitting adversary stalls it for ~t/sqrt(k log n)
    rounds, the paper's T x (R + T) = Omega(t^2 / log n) trade-off.

    This is a *crash-model* protocol (the paper's comparison point): under
    general omissions its guarantees are not claimed. *)

type msg = Vote of { b : int; final : bool }

type state = {
  pid : int;
  n : int;
  t_max : int;
  theta : int;
  coin_eligible : bool;
  mutable b : int;
  mutable decided : int option;
  mutable announced : bool;  (** already broadcast the decision once *)
}

let make ?(coin_set_size = max_int) ?(theta_factor = 0.5)
    (cfg : Sim.Config.t) =
  let module M = struct
    type nonrec state = state
    type nonrec msg = msg

    let name = "bjbo"

    let init (cfg : Sim.Config.t) ~pid ~input =
      {
        pid;
        n = cfg.n;
        t_max = cfg.t_max;
        theta =
          max 1
            (int_of_float (ceil (theta_factor *. sqrt (float_of_int cfg.n))));
        coin_eligible = pid < coin_set_size;
        b = input;
        decided = None;
        announced = false;
      }

    let broadcast_into st m ~emit_all =
      emit_all ~lo:0 ~hi:(st.n - 1) ~skip:st.pid ~desc:false m

    let process st ~iter ~rand =
      (* a decision announcement overrides counting *)
      let final = ref None in
      iter (fun _src (Vote { b; final = fin }) ->
          if fin && !final = None then final := Some b);
      match !final with
      | Some v ->
          st.b <- v;
          st.decided <- Some v
      | None ->
          let c = [| 0; 0 |] in
          c.(st.b) <- 1;
          iter (fun _src (Vote { b; _ }) -> c.(b) <- c.(b) + 1);
          let total = c.(0) + c.(1) in
          let decide_margin = (total / 2) + st.t_max + st.theta in
          let lean_margin = (total / 2) + st.theta in
          if c.(1) >= decide_margin then begin
            st.b <- 1;
            st.decided <- Some 1
          end
          else if c.(0) >= decide_margin then begin
            st.b <- 0;
            st.decided <- Some 0
          end
          else if c.(1) > lean_margin then st.b <- 1
          else if c.(0) > lean_margin then st.b <- 0
          else if st.coin_eligible then st.b <- Sim.Rand.bit rand
          else st.b <- (if c.(1) >= c.(0) then 1 else 0)

    (* Shared per-round logic for both engine paths: one shared message
       record per broadcast, ascending destination order. *)
    let step_core st ~round ~iter ~rand ~emit_all =
      if round > 1 then if st.decided = None then process st ~iter ~rand;
      match st.decided with
      | Some v when not st.announced ->
          st.announced <- true;
          broadcast_into st (Vote { b = v; final = true }) ~emit_all
      | Some _ -> ()
      | None -> broadcast_into st (Vote { b = st.b; final = false }) ~emit_all

    let step _cfg st ~round ~inbox ~rand =
      let out = ref [] in
      step_core st ~round
        ~iter:(fun f -> List.iter (fun (src, m) -> f src m) inbox)
        ~rand
        ~emit_all:
          (Sim.Protocol_intf.emit_all_pointwise (fun dst m ->
               out := (dst, m) :: !out));
      (st, List.rev !out)

    let step_into _cfg st ~round ~inbox ~rand ~emit:_ ~emit_all =
      step_core st ~round ~iter:(fun f -> Sim.Mailbox.iter inbox f) ~rand
        ~emit_all;
      st

    let observe st =
      {
        Sim.View.candidate = Some st.b;
        operative = true;
        decided = st.decided;
      }

    let msg_bits (Vote _) = 2
    let msg_hint (Vote { b; _ }) = Some b
  end in
  ignore cfg;
  ((module M : Sim.Protocol_intf.S), (module M : Sim.Protocol_intf.BUFFERED))

let protocol ?coin_set_size ?theta_factor (cfg : Sim.Config.t) :
    Sim.Protocol_intf.t =
  fst (make ?coin_set_size ?theta_factor cfg)

let protocol_buffered ?coin_set_size ?theta_factor (cfg : Sim.Config.t) :
    Sim.Protocol_intf.buffered =
  snd (make ?coin_set_size ?theta_factor cfg)

let builder ?coin_set_size ?theta_factor () : Sim.Protocol_intf.builder =
  (module struct
    let name = "bjbo"
    let build cfg = protocol ?coin_set_size ?theta_factor cfg
    let rounds_needed (cfg : Sim.Config.t) = 60 * (cfg.t_max + 10)
  end)
