(** Classic deterministic flooding consensus for the crash model: t+1
    rounds of broadcasting the set of input values seen so far, then decide
    on the minimum.

    Baseline only. It is the textbook crash-tolerant algorithm (O(t) rounds,
    O(n^2 t) bits) used here as the deterministic comparator for the
    message-complexity row of Table 1 ([1]'s Omega(t^2) bound). Under
    *general omission* faults its validity condition (as the paper states
    it) does not hold — a faulty process can input a minority value late —
    which is exactly why the paper's algorithms are built differently; tests
    exercise it under crash adversaries only. *)

type msg = Values of { zero : bool; one : bool }

type state = {
  pid : int;
  n : int;
  rounds : int;  (** t_max + 1 *)
  mutable zero : bool;
  mutable one : bool;
  mutable sent_zero : bool;
  mutable sent_one : bool;
  mutable decided : int option;
}

let some0 = Some 0
let some1 = Some 1

module M = struct
  type nonrec state = state
  type nonrec msg = msg

  let name = "flood-min"

  let init (cfg : Sim.Config.t) ~pid ~input =
    {
      pid;
      n = cfg.n;
      rounds = cfg.t_max + 1;
      zero = input = 0;
      one = input = 1;
      sent_zero = false;
      sent_one = false;
      decided = None;
    }

  (* The decide-or-flood core shared by both engine paths: past the
     schedule, take the decision; inside it, return the newly learned
     values to flood this round ([None] when there is nothing to send —
     flooding only new values keeps the per-link traffic O(1) amortized). *)
  let absorb st ~round =
    if round > st.rounds then begin
      if st.decided = None then st.decided <- Some (if st.zero then 0 else 1);
      None
    end
    else begin
      let zero = st.zero && not st.sent_zero in
      let one = st.one && not st.sent_one in
      if zero then st.sent_zero <- true;
      if one then st.sent_one <- true;
      if zero || one then Some (zero, one) else None
    end

  let step _cfg st ~round ~inbox ~rand:_ =
    List.iter
      (fun (_, Values { zero; one }) ->
        if zero then st.zero <- true;
        if one then st.one <- true)
      inbox;
    match absorb st ~round with
    | None -> (st, [])
    | Some (zero, one) ->
        let out = ref [] in
        for dst = st.n - 1 downto 0 do
          if dst <> st.pid then out := (dst, Values { zero; one }) :: !out
        done;
        (st, !out)

  let step_into _cfg st ~round ~inbox ~rand:_ ~emit:_ ~emit_all =
    Sim.Mailbox.iter inbox (fun _src (Values { zero; one }) ->
        if zero then st.zero <- true;
        if one then st.one <- true);
    (match absorb st ~round with
    | None -> ()
    | Some (zero, one) ->
        (* one shared record, one broadcast entry for the whole round *)
        emit_all ~lo:0 ~hi:(st.n - 1) ~skip:st.pid ~desc:false
          (Values { zero; one }));
    st

  let observe st =
    {
      Sim.View.candidate =
        (if st.zero then some0 else if st.one then some1 else some0);
      operative = true;
      decided = st.decided;
    }

  let msg_bits (Values _) = 2
  let msg_hint (Values { zero; _ }) = if zero then some0 else some1
end

let protocol (_cfg : Sim.Config.t) : Sim.Protocol_intf.t = (module M)

let protocol_buffered (_cfg : Sim.Config.t) : Sim.Protocol_intf.buffered =
  (module M)

let builder : Sim.Protocol_intf.builder =
  (module struct
    let name = "flood"
    let build = protocol
    let rounds_needed (cfg : Sim.Config.t) = cfg.t_max + 3
  end)
