(** Subquadratic-communication consensus for the *crash* model — the
    Appendix B.3 comparison point: Algorithm 1's voting core with the
    Theta(n^2) line-14 broadcast replaced by once-per-link expander gossip
    plus a straggler help/reply exchange (legal against crashes, where
    silence is unambiguous; impossible against omissions by the
    Dolev-Reischuk / Abraham et al. bounds). Crash-model guarantees only. *)

type state
type msg

val protocol : ?params:Params.t -> Sim.Config.t -> Sim.Protocol_intf.t

val protocol_buffered :
  ?params:Params.t -> Sim.Config.t -> Sim.Protocol_intf.buffered
(** The same protocol on the buffered engine path (shared iterator core —
    byte-identical to {!protocol} through the shim). *)

val rounds_needed : ?params:Params.t -> Sim.Config.t -> int

val builder : ?params:Params.t -> unit -> Sim.Protocol_intf.builder
(** Registry constructor: id ["crash-sub"]; schedule bound
    [rounds_needed + 10]. *)
