(** Deterministic omission-tolerant consensus — the fallback the paper
    invokes as "[15], Theorem 4" (Dolev-Strong). Dolev-Strong needs an
    authenticated setup the omission model does not provide, so we use a
    phase-king variant with the same interface the paper relies on:
    deterministic, O(t) rounds, O(n^2 t) bits, probability-1 agreement
    (DESIGN.md, substitution 3).

    Structure: K = 4 t + 2 phases of two rounds each. In the first round of
    a phase every participant broadcasts its value; in the second the phase's
    king (phase k's king is process k mod n) broadcasts the majority it saw.
    A participant keeps its majority value when the count clears m/2 + 2t
    (m = values it received) and otherwise adopts the king's value.

    Why this is correct under adaptive omissions with participants U:
    - faulty processes follow the protocol, so message *contents* are always
      honest — with unanimous inputs every message carries the common value
      and validity holds for any U and any t;
    - when U is the whole operative set (|U| >= n - 3t, t < n/30), counts at
      non-faulty participants differ by at most t, the strong threshold
      separates, and among kings 0..4t+1 at least one is a non-faulty
      participant (at most t faulty + 3t inoperative), after whose phase all
      non-faulty participants agree and stay strong.
    The two cases are exactly the ones Lemma 11 of the paper needs.

    A participant that hears *nothing* for the whole run (possible only for
    a faulty process fully eclipsed by the adversary) ends with
    [decision = None] rather than fabricating a decision from its own echo —
    the caller owns the residue (Algorithm 1 lines 18-19 resolve it by
    adopting a broadcast decision). Both engine paths share one
    iterator-driven core: the list-based entry points wrap the [_into]
    variants, so the two paths are byte-identical by construction. *)

type msg = Value of int | King of int

type t = {
  n : int;
  t_max : int;
  pid : int;
  participating : bool;
  mutable v : int;
  mutable maj : int;
  mutable strong : bool;
  mutable heard : bool;  (** received any fallback message this run *)
  mutable decision : int option;
}

let phases ~t_max = (4 * t_max) + 2

(** Number of engine rounds the protocol occupies (two per phase); the
    decision is available after one further call to {!finalize}. *)
let rounds ~t_max = 2 * phases ~t_max

let create ~n ~t_max ~pid ~participating ~input =
  if input <> 0 && input <> 1 then invalid_arg "Phase_king.create: input bit";
  {
    n;
    t_max;
    pid;
    participating;
    v = input;
    maj = input;
    strong = false;
    heard = false;
    decision = None;
  }

let king_of_phase st phase = phase mod st.n

(* Inbox iterators: the list path feeds [iter_of_list], the buffered path
   iterates its mailbox directly — no intermediate (src, msg) list. *)
let iter_of_list inbox f = List.iter (fun (src, m) -> f src m) inbox

let broadcast_into st m ~emit_all =
  emit_all ~lo:0 ~hi:(st.n - 1) ~skip:st.pid ~desc:false m

(* Adoption rule executed on entry to a phase, consuming the previous
   phase's king message. *)
let adopt st ~prev_phase ~iter =
  let king = king_of_phase st prev_phase in
  let king_value =
    if king = st.pid && st.participating then Some st.maj
    else begin
      let acc = ref None in
      iter (fun src m ->
          match m with
          | King v when src = king ->
              st.heard <- true;
              if !acc = None then acc := Some v
          | King _ | Value _ -> ());
      !acc
    end
  in
  if st.strong then st.v <- st.maj
  else
    match king_value with Some v -> st.v <- v | None -> st.v <- st.maj

(* Counting rule executed on entry to a phase's second round, consuming the
   participants' value broadcasts. Own value counts (no self-messages go
   through the engine). *)
let count st ~iter =
  let c = [| 0; 0 |] in
  if st.participating then c.(st.v) <- c.(st.v) + 1;
  iter (fun _src m ->
      match m with
      | Value v ->
          st.heard <- true;
          c.(v) <- c.(v) + 1
      | King _ -> ());
  let m_p = c.(0) + c.(1) in
  let maj = if c.(1) >= c.(0) then 1 else 0 in
  st.maj <- (if m_p = 0 then st.v else maj);
  st.strong <- m_p > 0 && 2 * c.(maj) > m_p + (4 * st.t_max)

(** Iterator core of {!step}: consumes the inbox through [iter] and hands
    outgoing messages to [emit_all] — every emission here is a full
    broadcast (ascending destination order, one shared message record). *)
let step_into st ~local_round ~iter ~emit_all =
  if st.participating then begin
    let phase = (local_round - 1) / 2 in
    if local_round mod 2 = 1 then begin
      if phase > 0 then adopt st ~prev_phase:(phase - 1) ~iter;
      broadcast_into st (Value st.v) ~emit_all
    end
    else begin
      count st ~iter;
      if king_of_phase st phase = st.pid then
        broadcast_into st (King st.maj) ~emit_all
    end
  end

(** [step st ~local_round ~inbox]: local rounds are 1-based and run from 1
    to [rounds ~t_max]. Odd rounds broadcast values (and first apply the
    previous king's verdict); even rounds count and let the king speak. *)
let step st ~local_round ~inbox =
  let out = ref [] in
  step_into st ~local_round ~iter:(iter_of_list inbox)
    ~emit_all:
      (Sim.Protocol_intf.emit_all_pointwise (fun dst m ->
           out := (dst, m) :: !out));
  (st, List.rev !out)

(** Iterator core of {!finalize}: consume the last phase's king message and
    fix the decision — unless the participant heard nothing at all, in
    which case the run ends undecided (see the header note). *)
let finalize_into st ~iter =
  if st.participating then begin
    adopt st ~prev_phase:(phases ~t_max:st.t_max - 1) ~iter;
    st.decision <- (if st.heard then Some st.v else None)
  end;
  st

let finalize st ~inbox = finalize_into st ~iter:(iter_of_list inbox)
let decision st = st.decision
let value st = st.v
let heard st = st.heard
let msg_bits = function Value _ -> 2 | King _ -> 2

(* --- standalone protocol wrapper --- *)

let rounds_needed (cfg : Sim.Config.t) = rounds ~t_max:cfg.t_max + 1

(** Phase-king as a standalone protocol (both engine paths): every process
    participates, the decision lands one round after the last phase (the
    {!finalize} round). Deterministic; tolerates adaptive omissions for
    t < n/6 (the strong-threshold separation argument) — at that budget a
    non-faulty process always hears a co-participant, so only fully
    eclipsed faulty processes can end undecided. *)
module M = struct
  type nonrec state = t
  type nonrec msg = msg

  let name = "phase-king"

  let init (cfg : Sim.Config.t) ~pid ~input =
    create ~n:cfg.n ~t_max:cfg.t_max ~pid ~participating:true ~input

  let step (cfg : Sim.Config.t) st ~round ~inbox ~rand:_ =
    let last = rounds ~t_max:cfg.t_max in
    if round <= last then step st ~local_round:round ~inbox
    else if round = last + 1 then (finalize st ~inbox, [])
    else (st, [])

  let step_into (cfg : Sim.Config.t) st ~round ~inbox ~rand:_ ~emit:_
      ~emit_all =
    let last = rounds ~t_max:cfg.t_max in
    let iter f = Sim.Mailbox.iter inbox f in
    if round <= last then step_into st ~local_round:round ~iter ~emit_all
    else if round = last + 1 then ignore (finalize_into st ~iter : t);
    st

  let observe st =
    {
      Sim.View.candidate = Some st.v;
      operative = true;
      decided = st.decision;
    }

  let msg_bits = msg_bits
  let msg_hint = function Value v -> Some v | King v -> Some v
end

let protocol (_cfg : Sim.Config.t) : Sim.Protocol_intf.t = (module M)

let protocol_buffered (_cfg : Sim.Config.t) : Sim.Protocol_intf.buffered =
  (module M)

let builder : Sim.Protocol_intf.builder =
  (module struct
    let name = "phase-king"
    let build = protocol
    let rounds_needed cfg = rounds_needed cfg + 1
  end)
