(** Deterministic omission-tolerant consensus used as the paper's line-18
    fallback (standing in for Dolev-Strong, which needs a PKI the omission
    model does not provide — DESIGN.md, substitution 3).

    4t+2 phases of two rounds each: participants broadcast values, then the
    phase's king broadcasts the majority it saw; a participant keeps its
    majority when the count clears m/2 + 2t and otherwise adopts the king.
    Correct in the two situations Lemma 11 needs: participants = the whole
    operative set (counts separate, some king among pids 0..4t+1 is a
    non-faulty participant), or an arbitrary participant set with unanimous
    inputs (omission faults cannot forge contents, so every message carries
    the common value). *)

type msg = Value of int | King of int

type t

val phases : t_max:int -> int
(** 4 t + 2. *)

val rounds : t_max:int -> int
(** Engine rounds occupied: two per phase. The decision needs one further
    {!finalize} call on the following round's inbox. *)

val create :
  n:int -> t_max:int -> pid:int -> participating:bool -> input:int -> t
(** Non-participants stay silent and never decide. *)

val step : t -> local_round:int -> inbox:(int * msg) list -> t * (int * msg) list
(** Local rounds are 1-based up to [rounds ~t_max]; odd rounds broadcast
    values (after applying the previous king's verdict), even rounds count
    and let the king speak. *)

val step_into :
  t ->
  local_round:int ->
  iter:((int -> msg -> unit) -> unit) ->
  emit_all:(lo:int -> hi:int -> skip:int -> desc:bool -> msg -> unit) ->
  unit
(** Iterator core of {!step}: [iter f] must call [f src m] for every inbox
    message in delivery order (a mailbox iterates directly — no
    intermediate list). Every emission here is a full broadcast, so
    outgoing messages go through [emit_all] (ascending destination order,
    one shared record); the list-based {!step} realises it pointwise via
    {!Sim.Protocol_intf.emit_all_pointwise}, so both engine paths run this
    same core. *)

val finalize : t -> inbox:(int * msg) list -> t
(** Consume the last king message and fix the decision. A participant that
    received no fallback message during the whole run ends with
    [decision = None] instead of echoing its own value — the caller owns
    that residue (Algorithm 1 lines 18-19). *)

val finalize_into : t -> iter:((int -> msg -> unit) -> unit) -> t
(** Iterator core of {!finalize}; same [iter] contract as {!step_into}. *)

val decision : t -> int option

val value : t -> int
(** Current working value — what {!finalize} would decide when the
    participant has heard at least one message. *)

val heard : t -> bool
(** Whether any fallback message has been received this run. *)

val msg_bits : msg -> int

val protocol : Sim.Config.t -> Sim.Protocol_intf.t
(** Phase-king as a standalone protocol: all processes participate; the
    decision lands at round [rounds ~t_max + 1] (the finalize round).
    Deterministic, omission-tolerant for t < n/6. *)

val protocol_buffered : Sim.Config.t -> Sim.Protocol_intf.buffered
(** The same standalone protocol on the buffered engine path (shared
    iterator core — byte-identical to {!protocol} through the shim). *)

val rounds_needed : Sim.Config.t -> int
(** Engine rounds the standalone protocol needs: [rounds ~t_max + 1]. *)

val builder : Sim.Protocol_intf.builder
(** Registry constructor: id ["phase-king"]; schedule bound
    [rounds_needed + 1]. *)
