(** Command-line driver: run any registered protocol against any adversary
    and print the three complexity metrics, inspect a Theorem-4
    communication graph, fuzz the protocol registry, replay counterexample
    scenarios, or compare trace files.

    Flag spellings are shared with bench/main.exe: --jobs, --seeds, --json,
    --wall-budget/--round-budget/--msg-budget/--rand-budget, --trace,
    --trace-dir, --trace-format, --trace-tail. *)

open Cmdliner

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let print_tail lines =
  if lines <> [] then begin
    Fmt.pr "trace tail (last rounds):@.";
    List.iter (fun l -> Fmt.pr "  %s@." l) lines
  end

let run_cmd spec0 seeds trace trace_dir trace_format trace_tail cache
    no_cache =
  let builder =
    match Run_spec.resolve spec0 with
    | Ok (b, _) -> b
    | Error msg ->
        Fmt.epr "%s@." msg;
        exit 2
  in
  let module B = (val builder : Sim.Protocol_intf.BUILDER) in
  let format = Run_spec.Cli.format_or_die trace_format in
  Option.iter ensure_dir trace_dir;
  let store = Run_spec.Cli.store_of_flags ~cache ~no_cache in
  let { Run_spec.protocol; n; t_max = t; _ } = spec0 in
  let failures = ref 0 in
  let run_one ~seed ~verbose =
    let spec = { spec0 with Run_spec.seed } in
    let proto_name = B.name in
    let tail =
      if trace_tail > 0 then Some (Trace.Tail.create ~rounds:trace_tail ())
      else None
    in
    let collector = if trace then Some (Trace.Metrics.collector ()) else None in
    let file_sink =
      Option.map
        (fun dir ->
          let path =
            Filename.concat dir
              (Printf.sprintf "run.%s.seed%d.trace.%s" B.name seed
                 (Trace.format_extension format))
          in
          (path, Trace.Sink.file ~path ~format))
        trace_dir
    in
    let sinks =
      List.filter_map Fun.id
        [
          Option.map Trace.Tail.sink tail;
          Option.map fst collector;
          Option.map snd file_sink;
        ]
    in
    let tsink =
      match sinks with [] -> None | l -> Some (Trace.Sink.tee_all l)
    in
    (* one result shape for the linkless and lossy-link paths; the
       degradation report rides along when the spec has a net. The spec's
       canonical string is also the cache key, so a repeated run with
       --cache is served from the store. *)
    let result = Run_spec.execute ?trace:tsink ?store spec in
    Option.iter (fun (path, s) -> Trace.Sink.close s;
        if verbose then Fmt.pr "trace written      : %s@." path)
      file_sink;
    match result with
    | Error ((Supervise.Degraded _ as kind), partial) ->
        (* beyond the omission model: a structured quarantine record with a
           replay one-liner (the canonical spec serialization), never a
           consensus verdict *)
        incr failures;
        let replay = Run_spec.to_command spec in
        let f =
          {
            Supervise.index = 0;
            label = Printf.sprintf "run/%s/seed%d" protocol seed;
            seed = Some seed;
            replay = Some replay;
            kind;
            elapsed_s = 0.;
            trace =
              (match tail with Some tl -> Trace.Tail.lines tl | None -> []);
          }
        in
        Fmt.pr "seed %-4d: DEGRADED BEYOND MODEL — %a@." seed
          Supervise.pp_failure_kind kind;
        (match partial with
        | Some (_, Some d) ->
            Fmt.pr "  degradation: %s@." (Net.Degradation.to_json d)
        | _ -> ());
        Fmt.pr "%s@." (Supervise.failure_json f);
        Fmt.pr "  replay: %s@." replay
    | Error (kind, _) ->
        incr failures;
        Fmt.pr "seed %-4d: SUPERVISION FAILURE — %a@." seed
          Supervise.pp_failure_kind kind;
        Option.iter (fun tl -> print_tail (Trace.Tail.lines tl)) tail
    | Ok (o, dopt) ->
        let agreement =
          (* with a lossy link, agreement is judged over the effective
             (adversarial + induced) fault set *)
          match dopt with
          | Some d -> Net.Degradation.agreed_decision d o
          | None -> Sim.Engine.agreed_decision o
        in
        if verbose then begin
          Fmt.pr "protocol           : %s@." proto_name;
          Fmt.pr "n / t / seed       : %d / %d / %d@." n t seed;
          Fmt.pr "adversary          : %s (faults used %d)@."
            (Run_spec.adversary spec).Sim.Adversary_intf.name
            o.Sim.Engine.faults_used;
          Fmt.pr "rounds (T)         : %d%s@." o.rounds_total
            (match o.decided_round with
            | Some r ->
                Printf.sprintf " (all non-faulty decided by round %d)" r
            | None -> " (DID NOT TERMINATE within max_rounds)");
          Fmt.pr "messages / bits    : %d / %d@." o.messages_sent o.bits_sent;
          Fmt.pr "rand calls / bits  : %d / %d@." o.rand_calls o.rand_bits;
          Fmt.pr "omitted messages   : %d@." o.messages_omitted;
          (* printed only for a spec that can actually fault, so a
             drop=0-style --net run stays byte-identical to a linkless one *)
          match (dopt, spec.Run_spec.net) with
          | Some d, Some ns when not (Net.Spec.zero_fault ns) ->
              Fmt.pr "net degradation    : %s@." (Net.Degradation.to_json d)
          | _ -> ()
        end
        else
          Fmt.pr "seed %-4d: rounds=%-5d msgs=%-8d bits=%-9d rand_bits=%-7d %s@."
            seed o.Sim.Engine.rounds_total o.messages_sent o.bits_sent
            o.rand_bits
            (match agreement with
            | Some v -> Printf.sprintf "decision=%d" v
            | None -> "NO AGREEMENT");
        Option.iter
          (fun (_, summary) ->
            Fmt.pr "%a@." Trace.Metrics.pp_summary (summary ()))
          collector;
        (match agreement with
        | Some v -> if verbose then Fmt.pr "decision           : %d (agreement holds)@." v
        | None ->
            if verbose then
              Fmt.pr "decision           : DISAGREEMENT OR MISSING DECISIONS@.";
            Option.iter (fun tl -> print_tail (Trace.Tail.lines tl)) tail;
            incr failures)
  in
  (match seeds with
  | None -> run_one ~seed:spec0.Run_spec.seed ~verbose:true
  | Some k ->
      Fmt.pr "protocol %s, n=%d t=%d, seeds 1..%d@." B.name n t k;
      for s = 1 to k do
        run_one ~seed:s ~verbose:false
      done);
  (match store with
  | None -> ()
  | Some st ->
      Fmt.pr "cache: %a (%d entries in %s)@." Cache.Stats.pp
        (Cache.Store.stats st) (Cache.Store.entries st) (Cache.Store.dir st);
      Cache.Store.close st);
  if !failures > 0 then exit 1

let graph_cmd n delta_c seed =
  let delta = Expander.default_delta ~c:delta_c n in
  let g = Expander.create_good ~n ~delta ~seed:(Int64.of_int seed) () in
  let degs = Array.init n (fun v -> float_of_int (Expander.degree g v)) in
  Fmt.pr "n=%d delta=%d edges=%d@." n delta (Expander.edge_count g);
  Fmt.pr "degree: min=%.0f mean=%.1f max=%.0f@."
    (Array.fold_left min degs.(0) degs)
    (Stats.mean degs)
    (Array.fold_left max degs.(0) degs);
  let removed = Array.init n (fun v -> v < n / 15) in
  let core = Expander.prune g ~removed ~min_deg:(delta / 3) in
  Fmt.pr "Lemma 4: removed %d nodes -> dense core of %d (bound n - 4/3|T| = %d)@."
    (n / 15)
    (Expander.mask_size core)
    (n - (4 * (n / 15) / 3));
  let v = ref 0 in
  while !v < n && not core.(!v) do
    incr v
  done;
  if !v < n then
    match Expander.eccentricity_within g ~mask:core ~v:!v with
    | Some e -> Fmt.pr "core eccentricity from node %d: %d@." !v e
    | None -> Fmt.pr "core is disconnected@."

(* --- fuzz / replay: the property-based differential harness --- *)

let fuzz_protocols spec =
  match spec with
  | None -> Harness.Registry.all
  | Some id -> (
      match Harness.Registry.find id with
      | Ok e -> [ e ]
      | Error msg ->
          Fmt.epr "%s@." msg;
          exit 2)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Re-run the shrunk counterexample's violating protocol with trace sinks:
   the full trace goes to a file, the tail is returned for the console and
   the JSON failure record. Deterministic — the scenario is a pure function
   of its seed, so this is the run the fuzzer saw. *)
let dump_failure_trace ~protocols ~dir ~format ~tail_rounds
    (f : Harness.Fuzz.failure) =
  let id = f.Harness.Fuzz.violation.Harness.Runner.protocol in
  match
    List.find_opt (fun e -> e.Harness.Registry.id = id) protocols
  with
  | None -> (None, [])
  | Some entry ->
      let tail = Trace.Tail.create ~rounds:tail_rounds () in
      let mem, events = Trace.Sink.memory () in
      let sink = Trace.Sink.tee (Trace.Tail.sink tail) mem in
      ignore (Harness.Runner.run_entry ~trace:sink entry f.Harness.Fuzz.shrunk);
      ensure_dir dir;
      let path =
        Filename.concat dir
          (Printf.sprintf "fuzz-counterexample.%s.trace.%s" entry.id
             (Trace.format_extension format))
      in
      Trace.File.write ~path ~format (events ());
      (Some path, Trace.Tail.lines tail)

let fuzz_cmd count seed max_n protocol smoke jobs json resume cache no_cache
    trace_dir trace_format trace_tail =
  let protocols = fuzz_protocols protocol in
  let count = if smoke then max count 1_000_000 else count in
  let time_budget = if smoke then Some 25.0 else None in
  let jobs = if jobs <= 0 then Exec.default_jobs () else jobs in
  let format = Run_spec.Cli.format_or_die trace_format in
  (* --json FILE: machine-readable result records in FILE, checkpoint
     journal beside it (FILE.journal) — same layout as bench/main.exe. *)
  let journal_path = Option.map (fun j -> j ^ ".journal") json in
  if resume && journal_path = None then begin
    Fmt.epr "fuzz: --resume needs --json FILE@.";
    exit 2
  end;
  let store = Run_spec.Cli.store_of_flags ~cache ~no_cache in
  let json_ch = Option.map (fun path -> open_out path) json in
  let emit_json fields =
    match json_ch with
    | None -> ()
    | Some ch ->
        output_string ch ("{" ^ String.concat "," fields ^ "}\n");
        flush ch
  in
  let journal =
    Option.map
      (fun path ->
        let j = Supervise.Journal.open_ ~path ~resume in
        if resume then
          Fmt.pr "fuzz: resuming — %d scenario(s) journaled%s@."
            (Supervise.Journal.entries j)
            (match Supervise.Journal.corrupt j with
            | 0 -> ""
            | c -> Fmt.str " (%d corrupt line(s) skipped)" c);
        j)
      journal_path
  in
  let result =
    Harness.Fuzz.run ~protocols ~count ~seed ~max_n ?time_budget ~jobs
      ~progress:(fun m -> Fmt.pr "fuzz: %s@." m)
      ?journal ?store ()
  in
  Option.iter Supervise.Journal.close journal;
  (match store with
  | None -> ()
  | Some st ->
      Fmt.pr "fuzz: cache %a (%d entries in %s)@." Cache.Stats.pp
        (Cache.Store.stats st) (Cache.Store.entries st) (Cache.Store.dir st);
      Cache.Store.close st);
  match result with
  | Ok stats ->
      Fmt.pr
        "fuzz: OK — %d scenarios, %d protocol runs (%d conformance-checked), \
         %d determinism checks, 0 violations@."
        stats.Harness.Fuzz.scenarios stats.runs stats.checked
        stats.determinism_checks;
      emit_json
        [
          "\"kind\":\"fuzz-ok\"";
          Printf.sprintf "\"schema_version\":%d" 2;
          Printf.sprintf "\"scenarios\":%d" stats.Harness.Fuzz.scenarios;
          Printf.sprintf "\"runs\":%d" stats.runs;
          Printf.sprintf "\"checked\":%d" stats.checked;
          Printf.sprintf "\"determinism_checks\":%d" stats.determinism_checks;
        ];
      Option.iter close_out json_ch
  | Error (f, stats) ->
      Fmt.pr "fuzz: FAILED after %d scenarios@." stats.Harness.Fuzz.scenarios;
      Fmt.pr "%a" Harness.Fuzz.pp_failure f;
      (* quarantine the counterexample with its trace: full trace file +
         last-K-rounds tail on the console and in the JSON record *)
      let path, tail =
        dump_failure_trace ~protocols ~dir:trace_dir ~format
          ~tail_rounds:(max 1 trace_tail) f
      in
      Option.iter (fun p -> Fmt.pr "fuzz: counterexample trace in %s@." p) path;
      print_tail tail;
      emit_json
        ([
           "\"kind\":\"quarantine\"";
           Printf.sprintf "\"schema_version\":%d" 2;
           Printf.sprintf "\"label\":\"fuzz-counterexample/%s\""
             (json_escape f.Harness.Fuzz.violation.Harness.Runner.protocol);
           Printf.sprintf "\"property\":\"%s\""
             (json_escape f.Harness.Fuzz.violation.Harness.Runner.property);
           Printf.sprintf "\"detail\":\"%s\""
             (json_escape f.Harness.Fuzz.violation.Harness.Runner.detail);
           Printf.sprintf "\"original\":\"%s\""
             (json_escape (Harness.Scenario.to_string f.Harness.Fuzz.original));
           Printf.sprintf "\"shrunk\":\"%s\""
             (json_escape (Harness.Scenario.to_string f.Harness.Fuzz.shrunk));
           Printf.sprintf "\"shrink_steps\":%d" f.Harness.Fuzz.shrink_steps;
           Printf.sprintf "\"replay\":\"%s\""
             (json_escape (Harness.Fuzz.replay_command f.Harness.Fuzz.shrunk));
         ]
        @ (match path with
          | Some p -> [ Printf.sprintf "\"trace_file\":\"%s\"" (json_escape p) ]
          | None -> [])
        @
        match tail with
        | [] -> []
        | lines -> [ "\"trace\":[" ^ String.concat "," lines ^ "]" ]);
      Option.iter close_out json_ch;
      exit 1

let replay_cmd scenario protocol all =
  let s =
    try Harness.Scenario.of_string scenario
    with Harness.Scenario.Parse_error m ->
      Fmt.epr "bad scenario: %s@." m;
      exit 2
  in
  let protocols = fuzz_protocols protocol in
  let report =
    Harness.Runner.run ~protocols ~include_out_of_model:all s
  in
  Fmt.pr "%a" Harness.Runner.pp_report report;
  if not (Harness.Runner.report_ok report) then exit 1

(* --- trace diff / show --- *)

let read_trace_or_die path =
  match Trace.File.read path with
  | events -> events
  | exception Trace.File.Corrupt m ->
      Fmt.epr "%s: corrupt trace: %s@." path m;
      exit 2
  | exception Sys_error m ->
      Fmt.epr "%s@." m;
      exit 2

let trace_diff_cmd left right =
  let l = read_trace_or_die left and r = read_trace_or_die right in
  match Trace.Diff.events l r with
  | Trace.Diff.Identical n ->
      Fmt.pr "identical: %d events@." n
  | Trace.Diff.Diverged _ as d ->
      Fmt.pr "%a@." Trace.Diff.pp_outcome d;
      exit 1

let trace_show_cmd path metrics =
  let events = read_trace_or_die path in
  if metrics then
    Fmt.pr "%a@." Trace.Metrics.pp_summary (Trace.Metrics.of_events events)
  else
    List.iter (fun e -> print_endline (Trace.Event.to_json e)) events

(* --- terms --- *)

let n_arg =
  Arg.(value & opt int 128 & info [ "n" ] ~doc:"Number of processes.")

let t_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "t" ] ~doc:"Fault budget (default n/31).")

let x_arg =
  Arg.(value & opt int 4 & info [ "x" ] ~doc:"Super-process count (param).")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.")

let seeds_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "seeds" ]
        ~doc:"Run seeds 1..$(docv) and print one summary line each.")

let delta_c_arg =
  Arg.(value & opt int 8 & info [ "delta-c" ] ~doc:"Degree constant.")

let budget_term =
  let wall =
    Arg.(
      value & opt float 0.
      & info [ "wall-budget" ]
          ~doc:"Wall-clock watchdog per run, seconds (0 = unlimited).")
  in
  let rounds =
    Arg.(
      value & opt int 0
      & info [ "round-budget" ]
          ~doc:"Engine-round ceiling per run (0 = unlimited).")
  in
  let msgs =
    Arg.(
      value & opt int 0
      & info [ "msg-budget" ] ~doc:"Message ceiling per run (0 = unlimited).")
  in
  let rand =
    Arg.(
      value & opt int 0
      & info [ "rand-budget" ]
          ~doc:"Random-bit ceiling per run (0 = unlimited).")
  in
  Term.(
    const (fun wall rounds msgs rand -> { Run_spec.Cli.wall; rounds; msgs; rand })
    $ wall $ rounds $ msgs $ rand)

let trace_flag =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:"Collect per-round trace metrics and print the summary.")

let trace_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-dir" ]
        ~doc:"Write full event traces to files in $(docv) (created if \
              missing).")

let trace_format_arg =
  Arg.(
    value & opt string "jsonl"
    & info [ "trace-format" ]
        ~doc:"Trace file encoding: jsonl or binary.")

let trace_tail_arg ~doc = Arg.(value & opt int 0 & info [ "trace-tail" ] ~doc)

let run_term =
  let protocol =
    Arg.(
      value & opt string "optimal"
      & info [ "protocol"; "p" ]
          ~doc:
            "Protocol (a registry id, or \"param\" which takes -x). \
             Registered: optimal, param-x2, bjbo, flood, early-stopping, \
             dolev-strong, phase-king, crash-sub, operative-broadcast.")
  in
  let adversary =
    Arg.(
      value
      & opt (enum (List.map (fun n -> (n, n)) Run_spec.Cli.adversary_names))
          "none"
      & info [ "adversary"; "a" ]
          ~doc:"Adversary: none, crash, random, group, splitter, staggered, eclipse.")
  in
  let inputs =
    Arg.(
      value
      & opt (enum (List.map (fun n -> (n, n)) Run_spec.Cli.inputs_names))
          "mixed"
      & info [ "inputs"; "i" ] ~doc:"Inputs: mixed, ones, zeros, random.")
  in
  let legacy_engine =
    Arg.(
      value & flag
      & info [ "legacy-engine" ]
          ~doc:
            "Run ported protocols through the list-based compatibility shim \
             instead of the buffered engine path (results are bit-identical \
             either way; this exists for comparison and debugging).")
  in
  let net =
    Arg.(
      value
      & opt (some string) None
      & info [ "net" ] ~docv:"SPEC"
          ~doc:
            "Run over a lossy-link transport: comma-separated key=value \
             fields — drop=P, dup=P, delay=P[:MAX], stall=P[:LEN], \
             burst=TO_BAD:TO_GOOD:DROP, retries=N, backoff=BASE[:CAP]. \
             Residual losses the retry budget cannot mask become induced \
             omission faults; a run whose induced + adversarial faults \
             exceed t is reported as degraded (exit 1, replay one-liner), \
             never as a consensus result.")
  in
  let spec_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "spec" ] ~docv:"SPEC"
          ~doc:
            "Run the canonical run-spec serialization $(docv) (as printed \
             by replay one-liners and cache provenance records) instead of \
             assembling one from the flags above; -p/-n/-t/-x/--seed/-a/-i/\
             --net/--legacy-engine and the budget flags are ignored.")
  in
  let cache_arg =
    Arg.(
      value & opt string ""
      & info [ "cache" ] ~docv:"DIR"
          ~doc:
            "Serve repeated runs from the content-addressed result store in \
             $(docv) (created if missing); misses run and write back.")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Ignore --cache: always execute.")
  in
  Term.(
    const (fun protocol n t x seed seeds adversary inputs bflags net trace
               trace_dir trace_format trace_tail legacy_engine spec_str cache
               no_cache ->
        let spec =
          match spec_str with
          | Some s -> (
              match Run_spec.of_string s with
              | Ok spec -> spec
              | Error m ->
                  Fmt.epr "%s@." m;
                  Stdlib.exit 2)
          | None ->
              let t = match t with Some t -> t | None -> max 1 (n / 31) in
              Run_spec.make
                ?x:(if protocol = "param" then Some x else None)
                ~adversary ~inputs
                ?net:(Option.map Run_spec.Cli.net_or_die net)
                ~budget:(Run_spec.Cli.budget_of_flags bflags)
                ~engine:(if legacy_engine then Run_spec.Legacy else Run_spec.Auto)
                ~protocol ~n ~t_max:t ~seed ()
        in
        run_cmd spec seeds trace trace_dir trace_format trace_tail cache
          no_cache)
    $ protocol $ n_arg $ t_arg $ x_arg $ seed_arg $ seeds_arg $ adversary
    $ inputs $ budget_term $ net $ trace_flag $ trace_dir_arg
    $ trace_format_arg $ trace_tail_arg
        ~doc:
          "Keep the last $(docv) rounds of events; printed when a run fails \
           or disagrees (0 = off)."
    $ legacy_engine $ spec_arg $ cache_arg $ no_cache)

let graph_term =
  Term.(const graph_cmd $ n_arg $ delta_c_arg $ seed_arg)

let fuzz_term =
  let count =
    Arg.(
      value & opt int 500
      & info [ "count"; "c" ] ~doc:"Number of generated scenarios.")
  in
  let max_n =
    Arg.(
      value & opt int 40
      & info [ "max-n" ] ~doc:"Largest generated system size.")
  in
  let protocol =
    Arg.(
      value
      & opt (some string) None
      & info [ "protocol"; "p" ]
          ~doc:"Fuzz only this registered protocol (default: all).")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"CI soak mode: run as many scenarios as fit in ~25 s.")
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "jobs"; "j" ]
          ~doc:
            "Domains in the executor pool (default: recommended count; 1 = \
             serial; results are identical at any width).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ]
          ~doc:
            "JSON-lines result sink: the final stats (kind=\"fuzz-ok\") or \
             the shrunk counterexample with its trace tail \
             (kind=\"quarantine\") land in $(docv); the checkpoint journal \
             behind $(b,--resume) lives beside it at $(docv).journal.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Skip scenarios already journaled by a previous (interrupted) \
             soak with the same seed; final stats are identical to an \
             uninterrupted run.")
  in
  let cache =
    Arg.(
      value & opt string ""
      & info [ "cache" ] ~docv:"DIR"
          ~doc:
            "Deduplicate clean scenarios across campaigns through the \
             content-addressed result store in $(docv): scenarios any \
             earlier soak already proved clean are folded from the store \
             instead of re-executed.")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Ignore --cache: always execute.")
  in
  Term.(
    const fuzz_cmd $ count $ seed_arg $ max_n $ protocol $ smoke $ jobs $ json
    $ resume $ cache $ no_cache
    $ Arg.(
        value & opt string "."
        & info [ "trace-dir" ]
            ~doc:
              "Directory for the counterexample trace dumped on failure \
               (created if missing).")
    $ trace_format_arg
    $ trace_tail_arg
        ~doc:
          "Rounds of events to keep in the failure record's trace tail \
           (default 5).")

let replay_term =
  let scenario =
    Arg.(
      required
      & opt (some string) None
      & info [ "scenario"; "s" ]
          ~doc:"Scenario to replay, as printed by fuzz (n/t/seed/bits/strategy).")
  in
  let protocol =
    Arg.(
      value
      & opt (some string) None
      & info [ "protocol"; "p" ]
          ~doc:"Replay only this registered protocol (default: all).")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Also run protocols whose fault model does not cover the \
                scenario (metric invariants only).")
  in
  Term.(const replay_cmd $ scenario $ protocol $ all)

let trace_cmd =
  let left =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"LEFT" ~doc:"First trace file (jsonl or binary).")
  in
  let right =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"RIGHT" ~doc:"Second trace file (jsonl or binary).")
  in
  let diff =
    Cmd.v
      (Cmd.info "diff"
         ~doc:
           "Compare two trace files and report the first diverging event \
            (exit 1 on divergence) — the debuggable form of the \
            bit-identical determinism claims.")
      Term.(const trace_diff_cmd $ left $ right)
  in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Trace file (jsonl or binary).")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the per-round metrics summary instead of the events.")
  in
  let show =
    Cmd.v
      (Cmd.info "show"
         ~doc:"Print a trace file as JSONL events (decodes binary traces).")
      Term.(const trace_show_cmd $ file $ metrics)
  in
  Cmd.group
    (Cmd.info "trace" ~doc:"Inspect and compare event trace files")
    [ diff; show ]

let cmds =
  [
    Cmd.v (Cmd.info "run" ~doc:"Run a consensus protocol in the simulator")
      run_term;
    Cmd.v (Cmd.info "graph" ~doc:"Inspect a Theorem-4 communication graph")
      graph_term;
    Cmd.v
      (Cmd.info "fuzz"
         ~doc:
           "Property-based differential fuzzing of all registered protocols \
            against generated adversary strategies")
      fuzz_term;
    Cmd.v
      (Cmd.info "replay"
         ~doc:"Replay a fuzz scenario and print the conformance report")
      replay_term;
    trace_cmd;
  ]

let () =
  let doc = "Omission-tolerant consensus simulator (PODC 2024 reproduction)" in
  exit (Cmd.eval (Cmd.group (Cmd.info "consensus_sim" ~doc) cmds))
