(** Command-line driver: run any protocol against any adversary and print
    the three complexity metrics, or inspect a Theorem-4 communication
    graph. *)

open Cmdliner

let protocol_conv =
  Arg.enum
    [ ("optimal", `Optimal);
      ("param", `Param);
      ("bjbo", `Bjbo);
      ("flood", `Flood);
      ("dolev-strong", `Dolev_strong);
      ("crash-sub", `Crash_sub);
    ]

let adversary_conv =
  Arg.enum
    [
      ("none", `None);
      ("crash", `Crash);
      ("random", `Random);
      ("group", `Group);
      ("splitter", `Splitter);
      ("staggered", `Staggered);
      ("eclipse", `Eclipse);
    ]

let inputs_conv =
  Arg.enum [ ("mixed", `Mixed); ("ones", `Ones); ("zeros", `Zeros); ("random", `Random) ]

let make_inputs kind n seed =
  match kind with
  | `Mixed -> Array.init n (fun i -> i mod 2)
  | `Ones -> Array.make n 1
  | `Zeros -> Array.make n 0
  | `Random ->
      let rand = Sim.Rand.create ~seed:(Int64.of_int (seed + 99)) () in
      Array.init n (fun _ -> Sim.Rand.bit rand)

let make_adversary kind =
  match kind with
  | `None -> Adversary.none
  | `Crash -> Adversary.crash_schedule [ (1, [ 0 ]); (2, [ 1 ]); (5, [ 2; 3 ]) ]
  | `Random -> Adversary.random_omission ~p_omit:0.7
  | `Group -> Adversary.group_killer ()
  | `Splitter -> Adversary.vote_splitter ()
  | `Staggered -> Adversary.staggered_crash ~per_round:3
  | `Eclipse -> Adversary.eclipse ~victim:0

let run_cmd protocol n t x seed adversary inputs_kind =
  let cfg0 = Sim.Config.make ~n ~t_max:t ~seed () in
  let proto, max_rounds =
    match protocol with
    | `Optimal ->
        ( Consensus.Optimal_omissions.protocol cfg0,
          Consensus.Optimal_omissions.rounds_needed cfg0 )
    | `Param ->
        ( Consensus.Param_omissions.protocol ~x cfg0,
          Consensus.Param_omissions.rounds_needed ~x cfg0 )
    | `Bjbo -> (Consensus.Bjbo.protocol cfg0, 60 * (t + 10))
    | `Flood -> (Consensus.Flood.protocol cfg0, t + 10)
    | `Dolev_strong -> (Consensus.Dolev_strong.protocol cfg0, t + 10)
    | `Crash_sub ->
        ( Consensus.Crash_subquadratic.protocol cfg0,
          Consensus.Crash_subquadratic.rounds_needed cfg0 )
  in
  let cfg = { cfg0 with Sim.Config.max_rounds } in
  let inputs = make_inputs inputs_kind n seed in
  let o = Sim.Engine.run proto cfg ~adversary:(make_adversary adversary) ~inputs in
  Fmt.pr "protocol           : %s@."
    (let module P = (val proto : Sim.Protocol_intf.S) in
     P.name);
  Fmt.pr "n / t / seed       : %d / %d / %d@." n t seed;
  Fmt.pr "adversary          : %s (faults used %d)@."
    (make_adversary adversary).Sim.Adversary_intf.name o.Sim.Engine.faults_used;
  Fmt.pr "rounds (T)         : %d%s@." o.rounds_total
    (match o.decided_round with
    | Some r -> Printf.sprintf " (all non-faulty decided by round %d)" r
    | None -> " (DID NOT TERMINATE within max_rounds)");
  Fmt.pr "messages / bits    : %d / %d@." o.messages_sent o.bits_sent;
  Fmt.pr "rand calls / bits  : %d / %d@." o.rand_calls o.rand_bits;
  Fmt.pr "omitted messages   : %d@." o.messages_omitted;
  (match Sim.Engine.agreed_decision o with
  | Some v -> Fmt.pr "decision           : %d (agreement holds)@." v
  | None ->
      Fmt.pr "decision           : DISAGREEMENT OR MISSING DECISIONS@.";
      exit 1);
  ()

let graph_cmd n delta_c seed =
  let delta = Expander.default_delta ~c:delta_c n in
  let g = Expander.create_good ~n ~delta ~seed:(Int64.of_int seed) () in
  let degs = Array.init n (fun v -> float_of_int (Expander.degree g v)) in
  Fmt.pr "n=%d delta=%d edges=%d@." n delta (Expander.edge_count g);
  Fmt.pr "degree: min=%.0f mean=%.1f max=%.0f@."
    (Array.fold_left min degs.(0) degs)
    (Stats.mean degs)
    (Array.fold_left max degs.(0) degs);
  let removed = Array.init n (fun v -> v < n / 15) in
  let core = Expander.prune g ~removed ~min_deg:(delta / 3) in
  Fmt.pr "Lemma 4: removed %d nodes -> dense core of %d (bound n - 4/3|T| = %d)@."
    (n / 15)
    (Expander.mask_size core)
    (n - (4 * (n / 15) / 3));
  let v = ref 0 in
  while !v < n && not core.(!v) do
    incr v
  done;
  if !v < n then
    match Expander.eccentricity_within g ~mask:core ~v:!v with
    | Some e -> Fmt.pr "core eccentricity from node %d: %d@." !v e
    | None -> Fmt.pr "core is disconnected@."

(* --- fuzz / replay: the property-based differential harness --- *)

let fuzz_protocols spec =
  match spec with
  | None -> Harness.Registry.all
  | Some id -> (
      match Harness.Registry.find id with
      | Some e -> [ e ]
      | None ->
          Fmt.epr "unknown protocol %S; registered: %s@." id
            (String.concat ", " (Harness.Registry.ids ()));
          exit 2)

let fuzz_cmd count seed max_n protocol smoke jobs journal_path resume =
  let protocols = fuzz_protocols protocol in
  let count = if smoke then max count 1_000_000 else count in
  let time_budget = if smoke then Some 25.0 else None in
  let jobs = if jobs <= 0 then Exec.default_jobs () else jobs in
  if resume && journal_path = None then begin
    Fmt.epr "fuzz: --resume needs --journal FILE@.";
    exit 2
  end;
  let journal =
    Option.map
      (fun path ->
        let j = Supervise.Journal.open_ ~path ~resume in
        if resume then
          Fmt.pr "fuzz: resuming — %d scenario(s) journaled%s@."
            (Supervise.Journal.entries j)
            (match Supervise.Journal.corrupt j with
            | 0 -> ""
            | c -> Fmt.str " (%d corrupt line(s) skipped)" c);
        j)
      journal_path
  in
  let result =
    Harness.Fuzz.run ~protocols ~count ~seed ~max_n ?time_budget ~jobs
      ~progress:(fun m -> Fmt.pr "fuzz: %s@." m)
      ?journal ()
  in
  Option.iter Supervise.Journal.close journal;
  match result with
  | Ok stats ->
      Fmt.pr
        "fuzz: OK — %d scenarios, %d protocol runs (%d conformance-checked), \
         %d determinism checks, 0 violations@."
        stats.Harness.Fuzz.scenarios stats.runs stats.checked
        stats.determinism_checks
  | Error (f, stats) ->
      Fmt.pr "fuzz: FAILED after %d scenarios@." stats.Harness.Fuzz.scenarios;
      Fmt.pr "%a" Harness.Fuzz.pp_failure f;
      exit 1

let replay_cmd scenario protocol all =
  let s =
    try Harness.Scenario.of_string scenario
    with Harness.Scenario.Parse_error m ->
      Fmt.epr "bad scenario: %s@." m;
      exit 2
  in
  let protocols = fuzz_protocols protocol in
  let report =
    Harness.Runner.run ~protocols ~include_out_of_model:all s
  in
  Fmt.pr "%a" Harness.Runner.pp_report report;
  if not (Harness.Runner.report_ok report) then exit 1

let n_arg =
  Arg.(value & opt int 128 & info [ "n" ] ~doc:"Number of processes.")

let t_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "t" ] ~doc:"Fault budget (default n/31).")

let x_arg =
  Arg.(value & opt int 4 & info [ "x" ] ~doc:"Super-process count (param).")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.")

let delta_c_arg =
  Arg.(value & opt int 8 & info [ "delta-c" ] ~doc:"Degree constant.")

let run_term =
  let protocol =
    Arg.(
      value
      & opt protocol_conv `Optimal
      & info [ "protocol"; "p" ] ~doc:"Protocol: optimal, param, bjbo, flood, dolev-strong, crash-sub.")
  in
  let adversary =
    Arg.(
      value
      & opt adversary_conv `None
      & info [ "adversary"; "a" ]
          ~doc:"Adversary: none, crash, random, group, splitter, staggered, eclipse.")
  in
  let inputs =
    Arg.(
      value
      & opt inputs_conv `Mixed
      & info [ "inputs"; "i" ] ~doc:"Inputs: mixed, ones, zeros, random.")
  in
  Term.(
    const (fun protocol n t x seed adversary inputs ->
        let t = match t with Some t -> t | None -> max 1 (n / 31) in
        run_cmd protocol n t x seed adversary inputs)
    $ protocol $ n_arg $ t_arg $ x_arg $ seed_arg $ adversary $ inputs)

let graph_term =
  Term.(const graph_cmd $ n_arg $ delta_c_arg $ seed_arg)

let fuzz_term =
  let count =
    Arg.(
      value & opt int 500
      & info [ "count"; "c" ] ~doc:"Number of generated scenarios.")
  in
  let max_n =
    Arg.(
      value & opt int 40
      & info [ "max-n" ] ~doc:"Largest generated system size.")
  in
  let protocol =
    Arg.(
      value
      & opt (some string) None
      & info [ "protocol"; "p" ]
          ~doc:"Fuzz only this registered protocol (default: all).")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"CI soak mode: run as many scenarios as fit in ~25 s.")
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "jobs"; "j" ]
          ~doc:
            "Domains in the executor pool (default: recommended count; 1 = \
             serial; results are identical at any width).")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ]
          ~doc:
            "Checkpoint file: each clean scenario is journaled as it \
             completes, so an interrupted soak can be resumed with \
             $(b,--resume).")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Skip scenarios already journaled in --journal FILE by a \
             previous (interrupted) soak with the same seed; final stats \
             are identical to an uninterrupted run.")
  in
  Term.(
    const fuzz_cmd $ count $ seed_arg $ max_n $ protocol $ smoke $ jobs
    $ journal $ resume)

let replay_term =
  let scenario =
    Arg.(
      required
      & opt (some string) None
      & info [ "scenario"; "s" ]
          ~doc:"Scenario to replay, as printed by fuzz (n/t/seed/bits/strategy).")
  in
  let protocol =
    Arg.(
      value
      & opt (some string) None
      & info [ "protocol"; "p" ]
          ~doc:"Replay only this registered protocol (default: all).")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Also run protocols whose fault model does not cover the \
                scenario (metric invariants only).")
  in
  Term.(const replay_cmd $ scenario $ protocol $ all)

let cmds =
  [
    Cmd.v (Cmd.info "run" ~doc:"Run a consensus protocol in the simulator")
      run_term;
    Cmd.v (Cmd.info "graph" ~doc:"Inspect a Theorem-4 communication graph")
      graph_term;
    Cmd.v
      (Cmd.info "fuzz"
         ~doc:
           "Property-based differential fuzzing of all registered protocols \
            against generated adversary strategies")
      fuzz_term;
    Cmd.v
      (Cmd.info "replay"
         ~doc:"Replay a fuzz scenario and print the conformance report")
      replay_term;
  ]

let () =
  let doc = "Omission-tolerant consensus simulator (PODC 2024 reproduction)" in
  exit (Cmd.eval (Cmd.group (Cmd.info "consensus_sim" ~doc) cmds))
